GO ?= go

.PHONY: build test check bench race vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race: the concurrency gate for the engine hot path and the parallel
# sweep runner (includes the serial-vs-parallel parity test).
race:
	$(GO) test -race ./internal/sim/... ./internal/bench/...

# check: the CI step — static analysis plus the race suite.
check: vet race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/sim/ ./internal/bench/
