GO ?= go

.PHONY: build test check bench race vet trace-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race: the concurrency gate for the engine hot path and the parallel
# sweep runner (includes the serial-vs-parallel parity test).
race:
	$(GO) test -race ./internal/sim/... ./internal/bench/...

# trace-smoke: run a traced simulation and validate the emitted Chrome
# trace (well-formed trace_event JSON, named lanes, monotonic per-track
# timestamps) and the NDJSON metric snapshots.
trace-smoke:
	$(GO) run ./cmd/ipipe-sim -app rkv -nic cn2350 -duration 5ms \
		-trace /tmp/ipipe-trace-smoke.json -metrics /tmp/ipipe-metrics-smoke.ndjson >/dev/null
	$(GO) run ./cmd/ipipe-trace check /tmp/ipipe-trace-smoke.json
	$(GO) run ./cmd/ipipe-trace check-metrics /tmp/ipipe-metrics-smoke.ndjson

# check: the CI step — static analysis, the race suite, and the
# observability smoke test.
check: vet race trace-smoke

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/sim/ ./internal/bench/
