GO ?= go

.PHONY: build test check bench race vet trace-smoke fault-smoke fault-pdes-smoke migrate-pdes-smoke scale-smoke invariant-smoke pdes-smoke pdes-bench obs-smoke obs-gate obs-baseline qos-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race: the concurrency gate for the engine hot path, the parallel
# sweep runner (includes the serial-vs-parallel parity test), the
# fault-injection / recovery suites, the scale-out router/batching
# code exercised from parallel sweeps, the PDES partition sync path
# (sim.Group windows, netsim cross-partition handoff, the mesh scale
# topology), the sharded tracer/collector emitting from parallel
# partition windows, the QoS lane/admission path running one LaneSched
# and Gate per partition under window-parallel execution, and the
# window-boundary barrier-action path (sim.Group.AtBarrier) that runs
# cluster-wide fault arms between conservative windows, and the
# deferred-commit migration path (sim.Group.DeferBarrier, the
# core/migrate.go commit point) that rewrites the actor table from
# window execution.
race:
	$(GO) test -race ./internal/sim/... ./internal/bench/... \
		./internal/fault/... ./internal/deploy/... ./internal/core/... \
		./internal/shard/... ./internal/workload/... ./internal/msgring/... \
		./internal/stats/... ./internal/invariant/... ./internal/sched/... \
		./internal/netsim/... ./internal/mesh/... ./internal/obs/... \
		./internal/pcie/... ./internal/qos/...

# trace-smoke: run a traced simulation and validate the emitted Chrome
# trace (well-formed trace_event JSON, named lanes, monotonic per-track
# timestamps) and the NDJSON metric snapshots.
trace-smoke:
	$(GO) run ./cmd/ipipe-sim -app rkv -nic cn2350 -duration 5ms \
		-trace /tmp/ipipe-trace-smoke.json -metrics /tmp/ipipe-metrics-smoke.ndjson >/dev/null
	$(GO) run ./cmd/ipipe-trace check /tmp/ipipe-trace-smoke.json
	$(GO) run ./cmd/ipipe-trace check-metrics /tmp/ipipe-metrics-smoke.ndjson

# fault-smoke: run the availability experiment under the default fault
# schedule with tracing on, validate the trace artifact, and confirm the
# injected faults appear as spans on the dedicated faults lanes.
fault-smoke:
	$(GO) run ./cmd/ipipe-bench -quick -trace /tmp/ipipe-fault-smoke.json \
		faults-availability >/dev/null
	$(GO) run ./cmd/ipipe-trace check /tmp/ipipe-fault-smoke.json
	@grep -q '"crash kv0"' /tmp/ipipe-fault-smoke.json || \
		{ echo "fault-smoke: no fault span in trace" >&2; exit 1; }
	@echo "fault-smoke: fault spans present"

# fault-pdes-smoke: golden-replay the faulted partitioned mesh along
# the PDES axis — every fault arm (barrier arms at window boundaries,
# local arms on owning engines) at 2 and 4 partitions, serial window
# merge vs parallel window execution; the per-partition invariant
# fingerprints must match byte-for-byte.
fault-pdes-smoke:
	$(GO) run ./cmd/ipipe-bench -quick -check -pdes 2 -parallel 2 \
		faults-pdes
	$(GO) run ./cmd/ipipe-bench -quick -check -pdes 4 -parallel 4 \
		faults-pdes
	@echo "fault-pdes-smoke: ok"

# migrate-pdes-smoke: golden-replay the migrating partitioned mesh —
# forced push+pull migrations whose node-local phases run on the owning
# partition engine and whose cluster-visible commits defer to window
# boundaries, with crash / NIC-down arms landing between the migration
# phases — at 2 and 4 partitions; the per-partition invariant
# fingerprints (including the migration conservation ledger) must match
# byte-for-byte between worker counts.
migrate-pdes-smoke:
	$(GO) run ./cmd/ipipe-bench -quick -check -pdes 2 -parallel 2 \
		migrate-pdes
	$(GO) run ./cmd/ipipe-bench -quick -check -pdes 4 -parallel 4 \
		migrate-pdes
	@echo "migrate-pdes-smoke: ok"

# scale-smoke: run the sharded scale-out sweeps end to end (router,
# multi-group deployment, client batching) in quick mode.
scale-smoke:
	$(GO) run ./cmd/ipipe-bench -quick scale-shards scale-batch >/dev/null
	@echo "scale-smoke: ok"

# invariant-smoke: audit runtime invariants on a live simulation, then
# golden-replay a registry subset covering faults, queue-model ablation,
# sharded scale-out, and a multi-cluster sweep (serial vs parallel
# fingerprints must match byte-for-byte). The full registry runs with
# `ipipe-bench -quick -check all` (~35s).
invariant-smoke:
	$(GO) run ./cmd/ipipe-sim -app rkv -nic cn2350 -duration 5ms -check >/dev/null
	$(GO) run ./cmd/ipipe-bench -quick -check \
		faults-availability fig17 ablate-queue scale-shards
	@echo "invariant-smoke: ok"

# pdes-smoke: golden-replay a registry subset along the PDES axis — the
# partitioned scale sweep plus classic controls, at 2 and 4 partitions,
# serial window merge vs parallel window execution; the per-partition
# invariant fingerprints must match byte-for-byte.
pdes-smoke:
	$(GO) run ./cmd/ipipe-bench -quick -check -pdes 2 -parallel 2 \
		scale-nodes fig17 scale-shards
	$(GO) run ./cmd/ipipe-bench -quick -check -pdes 4 -parallel 4 \
		scale-nodes fig17
	@echo "pdes-smoke: ok"

# pdes-bench: regenerate the wall-clock speedup matrix artifact
# (fingerprint-certified; speedup > 1 needs as many cores as workers).
pdes-bench:
	$(GO) run ./cmd/ipipe-bench -pdes-bench BENCH_pdes.json \
		-pdes-nodes 64,128,256 -pdes-workers 2,4,8
	@echo "pdes-bench: wrote BENCH_pdes.json"

# obs-smoke: trace a partitioned mesh run with window-parallel
# execution and validate the merged artifacts — including the
# cross-partition handoff span pairing.
obs-smoke:
	$(GO) run ./cmd/ipipe-sim -app mesh -nodes 8 -partitions 4 -pdes 4 \
		-duration 300us -trace /tmp/ipipe-obs-smoke.json \
		-metrics /tmp/ipipe-obs-smoke.ndjson >/dev/null
	$(GO) run ./cmd/ipipe-trace check /tmp/ipipe-obs-smoke.json
	$(GO) run ./cmd/ipipe-trace check-metrics /tmp/ipipe-obs-smoke.ndjson
	@grep -q '"handoff out"' /tmp/ipipe-obs-smoke.json || \
		{ echo "obs-smoke: no handoff spans in partitioned trace" >&2; exit 1; }
	@echo "obs-smoke: ok"

# qos-smoke: golden-replay the multi-tenant QoS experiment family along
# both determinism axes — serial vs parallel sweep on the classic
# clusters, and PDES at 1-vs-2 / 1-vs-4 window workers on the
# partitioned lane mesh — with the invariant checker (lane conservation,
# strict priority, control-shed violations, admission ledger) attached
# to every cluster.
qos-smoke:
	$(GO) run ./cmd/ipipe-bench -quick -check -qos
	@echo "qos-smoke: ok"

# obs-gate: the perf-trajectory gate — rebuild the observed-run summary
# and compare it against the committed BENCH_obs.json baseline.
# Deterministic fields (ops, quantiles, events, counters, watermarks,
# handoffs) must match exactly; allocation cost may not grow past its
# band. Regenerate the baseline intentionally with `make obs-baseline`.
obs-gate:
	$(GO) run ./cmd/ipipe-bench -quick -report /tmp/ipipe-obs-report.json \
		-baseline BENCH_obs.json
	@echo "obs-gate: ok"

# obs-baseline: regenerate the committed observed-run baseline after an
# intentional behavior change (review the diff before committing).
obs-baseline:
	$(GO) run ./cmd/ipipe-bench -quick -report BENCH_obs.json
	@echo "obs-baseline: wrote BENCH_obs.json"

# check: the CI step — static analysis, the race suite, and the
# observability and invariant smoke tests.
check: vet race trace-smoke fault-smoke fault-pdes-smoke migrate-pdes-smoke scale-smoke invariant-smoke pdes-smoke qos-smoke obs-smoke obs-gate

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/sim/ ./internal/bench/
