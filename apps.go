package ipipe

import (
	"repro/internal/actor"
	"repro/internal/apps/dt"
	"repro/internal/apps/nf"
	"repro/internal/apps/rkv"
	"repro/internal/apps/rta"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/nstack"
	"repro/internal/qos"
)

// This file re-exports the three distributed applications of §4 (and
// the §5.7 network functions) behind the spec-based deployment API, so
// examples and downstream users can stand up the paper's workloads in a
// few lines. Each application deploys from a spec struct — RKVSpec,
// DTSpec, RTASpec, FirewallSpec, IPSecSpec — embedding the shared
// DeployCommon policy block (placement, retry, failover, faults,
// tenancy) and implementing the DeploySpec interface, so harnesses can
// validate and deploy heterogeneous specs generically.

// Shared deployment-policy vocabulary.
type (
	// Placement says where an application's offloadable actors run.
	Placement = deploy.Placement
	// RetryPolicy is the client-side timeout/retry/backoff policy.
	RetryPolicy = deploy.RetryPolicy
	// FailoverPolicy configures the RKV leader-failover monitor.
	FailoverPolicy = deploy.FailoverPolicy
	// DeployCommon is the policy block embedded by every spec.
	DeployCommon = deploy.Common
	// DeploySpec is the generic spec surface (Validate + DeployApp).
	DeploySpec = deploy.Spec
	// DeployedApp is the surface every deployed application shares.
	DeployedApp = deploy.App
	// DeployValidationError is the typed spec-validation failure.
	DeployValidationError = deploy.ValidationError
	// TrafficClass tags requests and tenants (data/control/telemetry).
	TrafficClass = deploy.Class
)

// Traffic classes for multi-tenant QoS (see internal/qos).
const (
	TrafficData      = deploy.ClassData
	TrafficControl   = deploy.ClassControl
	TrafficTelemetry = deploy.ClassTelemetry
)

// Multi-tenant QoS vocabulary (see internal/qos and DESIGN.md §11).
type (
	// Tenancy is the QoS block a DeployCommon carries: tenant table,
	// lane bounds, SLO controller. A nil *Tenancy disables QoS entirely.
	Tenancy = qos.Tenancy
	// Tenant configures one tenant's admission budget and latency SLO.
	Tenant = qos.Tenant
	// LaneConfig bounds the per-lane queues and prices the lane pump.
	LaneConfig = qos.LaneConfig
	// SLOControllerConfig tunes the closed-loop SLO controller.
	SLOControllerConfig = qos.ControllerConfig
	// QoSRuntime is a deployment's installed QoS machinery (lane
	// schedulers, admission gates, controller, aggregated counters).
	QoSRuntime = qos.Runtime
	// QoSLane is a strict-priority lane (control > data > telemetry).
	QoSLane = qos.Lane
	// QoSConfigError is the typed Tenancy validation failure.
	QoSConfigError = qos.ConfigError
)

// Lanes in strict priority order (see QoSLane).
const (
	LaneControl   = qos.LaneControl
	LaneData      = qos.LaneData
	LaneTelemetry = qos.LaneTelemetry
)

// OnNIC / OnHost are the two common placements.
var (
	OnNIC  = deploy.NIC
	OnHost = deploy.Host
)

// DefaultRetry returns the client policy sized for a leader election or
// a lossy-link window: 500µs initial timeout, 8 retries, doubling to a
// 4ms cap.
func DefaultRetry() RetryPolicy { return deploy.DefaultRetry() }

// --- Replicated key-value store (Multi-Paxos + LSM) -------------------

// RKV aliases for the replicated key-value store.
type (
	// RKVSpec deploys a replica group: Spec.Deploy() replaces the old
	// positional DeployRKV.
	RKVSpec = deploy.RKVSpec
	// RKVApp is a deployed replica group plus its recovery machinery
	// (failover monitor, fault injector).
	RKVApp = deploy.RKV
	// RKVDeployment is the raw replica group.
	RKVDeployment = rkv.Deployment
	// RKVReplica is one replica's actor set.
	RKVReplica = rkv.Replica
	// RKVStatus is the typed status byte of RKV responses.
	RKVStatus = rkv.Status
)

// RKV message kinds.
const (
	RKVKindReq   = rkv.KindReq
	RKVKindElect = rkv.KindElect
)

// RKV response statuses (typed; see RKVStatusOf).
const (
	RKVStatusOK       = rkv.StatusOK
	RKVStatusNotFound = rkv.StatusNotFound
	RKVStatusRedirect = rkv.StatusRedirect
)

// RKVStatusOf reads the typed status byte of a response payload.
func RKVStatusOf(p []byte) RKVStatus { return rkv.StatusOf(p) }

// RKVPut / RKVGet / RKVDel build client request payloads.
func RKVPut(key, value []byte) []byte { return rkv.PutReq(key, value) }

// RKVGet builds a read request payload.
func RKVGet(key []byte) []byte { return rkv.GetReq(key) }

// RKVDel builds a delete request payload.
func RKVDel(key []byte) []byte { return rkv.DelReq(key) }

// --- Distributed transactions (OCC + 2PC) ------------------------------

// DT aliases for the transaction system.
type (
	// DTSpec deploys the transaction system: Spec.Deploy() replaces the
	// old positional DeployDT.
	DTSpec = deploy.DTSpec
	// DTApp is a deployed transaction system (coordinator, stores,
	// fault injector).
	DTApp = deploy.DT
	// DTCoordinator drives the four-phase protocol.
	DTCoordinator = dt.Coordinator
	// DTStore is a participant's extensible hash table.
	DTStore = dt.Store
	// DTTxn is a client transaction.
	DTTxn = dt.Txn
	// DTOp is one read or write operation.
	DTOp = dt.Op
	// DTOutcome is the typed outcome byte of transaction responses.
	DTOutcome = dt.Outcome
)

// DTKindTxn is the client-facing message kind.
const DTKindTxn = dt.KindTxn

// DT transaction outcomes (typed; see DTOutcomeOf).
const (
	DTOutcomeCommitted = dt.OutcomeCommitted
	DTOutcomeAborted   = dt.OutcomeAborted
)

// DTOutcomeOf reads the typed outcome byte of a response payload.
func DTOutcomeOf(p []byte) DTOutcome { return dt.OutcomeOf(p) }

// DTEncodeTxn / DTDecodeOutcome translate between transactions and wire
// payloads.
func DTEncodeTxn(t DTTxn) []byte { return dt.EncodeTxn(t) }

// DTDecodeOutcome splits a client response into typed outcome and read
// values.
func DTDecodeOutcome(p []byte) (DTOutcome, map[string][]byte) { return dt.DecodeOutcome(p) }

// --- Real-time analytics ------------------------------------------------

// RTA aliases.
type (
	// RTASpec deploys the analytics pipeline: Spec.Deploy() replaces
	// the old positional DeployRTA.
	RTASpec = deploy.RTASpec
	// RTAApp is a deployed pipeline.
	RTAApp = deploy.RTA
	// RTATopology wires filter → counter → ranker → aggregator.
	RTATopology = rta.Topology
	// RTAEntry is one ranked token.
	RTAEntry = rta.Entry
)

// RTAKindTuples is the client-facing message kind.
const RTAKindTuples = rta.KindTuples

// RTAEncodeTuples packs tuples for a client request.
func RTAEncodeTuples(tuples []string) []byte { return rta.EncodeTuples(tuples) }

// RTADecodeCounts unpacks an aggregator/ranker payload.
func RTADecodeCounts(p []byte) map[string]uint32 { return rta.DecodeCounts(p) }

// --- Network functions ---------------------------------------------------

// NF aliases.
type (
	// FirewallSpec deploys a software-TCAM firewall actor.
	FirewallSpec = deploy.FirewallSpec
	// IPSecSpec deploys an IPSec gateway actor.
	IPSecSpec = deploy.IPSecSpec
	// FirewallRule is a wildcard TCAM entry.
	FirewallRule = nf.Rule
	// FiveTuple is the firewall classification key.
	FiveTuple = nf.FiveTuple
	// NFVerdict is the typed verdict byte of NF responses.
	NFVerdict = nf.Verdict
)

// Firewall verdicts (typed; see NFVerdictOf).
const (
	NFVerdictAllow = nf.VerdictAllow
	NFVerdictDeny  = nf.VerdictDeny
)

// NFVerdictOf reads the typed verdict byte of a response payload.
func NFVerdictOf(p []byte) NFVerdict { return nf.VerdictOf(p) }

// UniformFirewallRules synthesizes n wildcard rules for experiments.
func UniformFirewallRules(n int) []FirewallRule { return nf.UniformRules(n) }

// Shim networking stack (Table 4's Nstack API): real Ethernet/IPv4/UDP
// framing for clients that want to send wire-format packets through the
// network functions.
type (
	// NetAddr is an L2/L3/L4 endpoint for Encap.
	NetAddr = nstack.Addr
	// NetMAC is an Ethernet address.
	NetMAC = nstack.MAC
)

// Encap builds a real Ethernet/IPv4/UDP frame (with a valid IPv4
// checksum) around payload.
func Encap(src, dst NetAddr, payload []byte, ttl uint8) []byte {
	return nstack.Encap(src, dst, payload, ttl)
}

// unexported compile-time checks that the facade stays wired.
var (
	_ = core.DefaultRegionBytes
	_ = actor.Stable
)
