package ipipe

import (
	"repro/internal/actor"
	"repro/internal/apps/dt"
	"repro/internal/apps/nf"
	"repro/internal/apps/rkv"
	"repro/internal/apps/rta"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/nstack"
)

// This file re-exports the three distributed applications of §4 (and
// the §5.7 network functions) behind the spec-based deployment API, so
// examples and downstream users can stand up the paper's workloads in a
// few lines. Each application deploys from a spec struct — RKVSpec,
// DTSpec, RTASpec, FirewallSpec, IPSecSpec — sharing the Placement /
// RetryPolicy / FailoverPolicy vocabulary and an optional fault
// schedule (see fault.go). The former positional Deploy* helpers remain
// as deprecated wrappers.

// Shared deployment-policy vocabulary.
type (
	// Placement says where an application's offloadable actors run.
	Placement = deploy.Placement
	// RetryPolicy is the client-side timeout/retry/backoff policy.
	RetryPolicy = deploy.RetryPolicy
	// FailoverPolicy configures the RKV leader-failover monitor.
	FailoverPolicy = deploy.FailoverPolicy
)

// OnNIC / OnHost are the two common placements.
var (
	OnNIC  = deploy.NIC
	OnHost = deploy.Host
)

// DefaultRetry returns the client policy sized for a leader election or
// a lossy-link window: 500µs initial timeout, 8 retries, doubling to a
// 4ms cap.
func DefaultRetry() RetryPolicy { return deploy.DefaultRetry() }

// --- Replicated key-value store (Multi-Paxos + LSM) -------------------

// RKV aliases for the replicated key-value store.
type (
	// RKVSpec deploys a replica group: Spec.Deploy() replaces the old
	// positional DeployRKV.
	RKVSpec = deploy.RKVSpec
	// RKVApp is a deployed replica group plus its recovery machinery
	// (failover monitor, fault injector).
	RKVApp = deploy.RKV
	// RKVDeployment is the raw replica group.
	RKVDeployment = rkv.Deployment
	// RKVReplica is one replica's actor set.
	RKVReplica = rkv.Replica
	// RKVStatus is the typed status byte of RKV responses.
	RKVStatus = rkv.Status
)

// RKV message kinds.
const (
	RKVKindReq   = rkv.KindReq
	RKVKindElect = rkv.KindElect
)

// RKV response statuses (typed; see RKVStatusOf).
const (
	RKVStatusOK       = rkv.StatusOK
	RKVStatusNotFound = rkv.StatusNotFound
	RKVStatusRedirect = rkv.StatusRedirect
)

// Deprecated: use RKVStatusNotFound / RKVStatusRedirect.
const (
	RKVNotFound = rkv.StatusNotFound
	RKVRedirect = rkv.StatusRedirect
)

// RKVStatusOf reads the typed status byte of a response payload.
func RKVStatusOf(p []byte) RKVStatus { return rkv.StatusOf(p) }

// DeployRKV registers the four RKV actor kinds on each node; the first
// node starts as Paxos leader.
//
// Deprecated: build an RKVSpec and call its Deploy method; the spec
// form also carries retry/failover policies and a fault schedule.
func DeployRKV(nodes []*Node, baseID ActorID, memLimit int, onNIC bool) (*RKVDeployment, error) {
	d, err := RKVSpec{
		Nodes:     nodes,
		BaseID:    baseID,
		MemLimit:  memLimit,
		Placement: Placement{OnNIC: onNIC},
	}.Deploy()
	if err != nil {
		return nil, err
	}
	return d.Deployment, nil
}

// RKVPut / RKVGet / RKVDel build client request payloads.
func RKVPut(key, value []byte) []byte { return rkv.PutReq(key, value) }

// RKVGet builds a read request payload.
func RKVGet(key []byte) []byte { return rkv.GetReq(key) }

// RKVDel builds a delete request payload.
func RKVDel(key []byte) []byte { return rkv.DelReq(key) }

// --- Distributed transactions (OCC + 2PC) ------------------------------

// DT aliases for the transaction system.
type (
	// DTSpec deploys the transaction system: Spec.Deploy() replaces the
	// old positional DeployDT.
	DTSpec = deploy.DTSpec
	// DTApp is a deployed transaction system (coordinator, stores,
	// fault injector).
	DTApp = deploy.DT
	// DTCoordinator drives the four-phase protocol.
	DTCoordinator = dt.Coordinator
	// DTStore is a participant's extensible hash table.
	DTStore = dt.Store
	// DTTxn is a client transaction.
	DTTxn = dt.Txn
	// DTOp is one read or write operation.
	DTOp = dt.Op
	// DTOutcome is the typed outcome byte of transaction responses.
	DTOutcome = dt.Outcome
)

// DTKindTxn is the client-facing message kind.
const DTKindTxn = dt.KindTxn

// DT transaction outcomes (typed; see DTOutcomeOf).
const (
	DTOutcomeCommitted = dt.OutcomeCommitted
	DTOutcomeAborted   = dt.OutcomeAborted
)

// Deprecated: use DTOutcomeCommitted / DTOutcomeAborted.
const (
	DTCommitted = dt.OutcomeCommitted
	DTAborted   = dt.OutcomeAborted
)

// DTOutcomeOf reads the typed outcome byte of a response payload.
func DTOutcomeOf(p []byte) DTOutcome { return dt.OutcomeOf(p) }

// DeployDT registers a transaction coordinator (plus host logging
// actor) on coordNode and one participant per entry of partNodes. It
// returns an error when partNodes is empty — such a coordinator could
// never commit anything.
//
// Deprecated: build a DTSpec and call its Deploy method; the spec form
// also arms the coordinator sweep (TxnTimeout) and lock leases.
func DeployDT(coordNode *Node, partNodes []*Node, baseID ActorID, onNIC bool) (*DTCoordinator, []*DTStore, error) {
	d, err := DTSpec{
		Coordinator:  coordNode,
		Participants: partNodes,
		BaseID:       baseID,
		Placement:    Placement{OnNIC: onNIC},
	}.Deploy()
	if err != nil {
		return nil, nil, err
	}
	return d.Coord, d.Stores, nil
}

// DTEncodeTxn / DTDecodeOutcome translate between transactions and wire
// payloads.
func DTEncodeTxn(t DTTxn) []byte { return dt.EncodeTxn(t) }

// DTDecodeOutcome splits a client response into typed outcome and read
// values.
func DTDecodeOutcome(p []byte) (DTOutcome, map[string][]byte) { return dt.DecodeOutcome(p) }

// --- Real-time analytics ------------------------------------------------

// RTA aliases.
type (
	// RTASpec deploys the analytics pipeline: Spec.Deploy() replaces
	// the old positional DeployRTA.
	RTASpec = deploy.RTASpec
	// RTAApp is a deployed pipeline.
	RTAApp = deploy.RTA
	// RTATopology wires filter → counter → ranker → aggregator.
	RTATopology = rta.Topology
	// RTAEntry is one ranked token.
	RTAEntry = rta.Entry
)

// RTAKindTuples is the client-facing message kind.
const RTAKindTuples = rta.KindTuples

// DeployRTA registers a filter→counter→ranker pipeline on node,
// forwarding consolidated top-n views to an aggregator actor created on
// aggNode's host; onUpdate observes each consolidated view.
//
// Deprecated: build an RTASpec and call its Deploy method.
func DeployRTA(node, aggNode *Node, baseID ActorID, discard []string, topN int, onNIC bool, onUpdate func([]RTAEntry)) (RTATopology, error) {
	d, err := RTASpec{
		Node:       node,
		Aggregator: aggNode,
		BaseID:     baseID,
		Discard:    discard,
		TopN:       topN,
		Placement:  Placement{OnNIC: onNIC},
		OnUpdate:   onUpdate,
	}.Deploy()
	if err != nil {
		return RTATopology{}, err
	}
	return d.Topology, nil
}

// RTAEncodeTuples packs tuples for a client request.
func RTAEncodeTuples(tuples []string) []byte { return rta.EncodeTuples(tuples) }

// RTADecodeCounts unpacks an aggregator/ranker payload.
func RTADecodeCounts(p []byte) map[string]uint32 { return rta.DecodeCounts(p) }

// --- Network functions ---------------------------------------------------

// NF aliases.
type (
	// FirewallSpec deploys a software-TCAM firewall actor.
	FirewallSpec = deploy.FirewallSpec
	// IPSecSpec deploys an IPSec gateway actor.
	IPSecSpec = deploy.IPSecSpec
	// FirewallRule is a wildcard TCAM entry.
	FirewallRule = nf.Rule
	// FiveTuple is the firewall classification key.
	FiveTuple = nf.FiveTuple
	// NFVerdict is the typed verdict byte of NF responses.
	NFVerdict = nf.Verdict
)

// Firewall verdicts (typed; see NFVerdictOf).
const (
	NFVerdictAllow = nf.VerdictAllow
	NFVerdictDeny  = nf.VerdictDeny
)

// Deprecated: use NFVerdictAllow / NFVerdictDeny.
const (
	NFAllow = nf.VerdictAllow
	NFDeny  = nf.VerdictDeny
)

// NFVerdictOf reads the typed verdict byte of a response payload.
func NFVerdictOf(p []byte) NFVerdict { return nf.VerdictOf(p) }

// DeployFirewall registers a software-TCAM firewall actor on the node.
//
// Deprecated: build a FirewallSpec and call its Deploy method.
func DeployFirewall(node *Node, id ActorID, rules []FirewallRule, onNIC bool) error {
	_, err := FirewallSpec{
		Node:      node,
		ID:        id,
		Rules:     rules,
		Placement: Placement{OnNIC: onNIC},
	}.Deploy()
	return err
}

// DeployIPSec registers an IPSec gateway actor (AES-256-CTR + SHA-1,
// accelerator-assisted on the NIC).
//
// Deprecated: build an IPSecSpec and call its Deploy method.
func DeployIPSec(node *Node, id ActorID, key, macKey []byte, onNIC bool) error {
	_, err := IPSecSpec{
		Node:      node,
		ID:        id,
		Key:       key,
		MACKey:    macKey,
		Placement: Placement{OnNIC: onNIC},
	}.Deploy()
	return err
}

// UniformFirewallRules synthesizes n wildcard rules for experiments.
func UniformFirewallRules(n int) []FirewallRule { return nf.UniformRules(n) }

// Shim networking stack (Table 4's Nstack API): real Ethernet/IPv4/UDP
// framing for clients that want to send wire-format packets through the
// network functions.
type (
	// NetAddr is an L2/L3/L4 endpoint for Encap.
	NetAddr = nstack.Addr
	// NetMAC is an Ethernet address.
	NetMAC = nstack.MAC
)

// Encap builds a real Ethernet/IPv4/UDP frame (with a valid IPv4
// checksum) around payload.
func Encap(src, dst NetAddr, payload []byte, ttl uint8) []byte {
	return nstack.Encap(src, dst, payload, ttl)
}

// unexported compile-time checks that the facade stays wired.
var (
	_ = core.DefaultRegionBytes
	_ = actor.Stable
)
