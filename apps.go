package ipipe

import (
	"repro/internal/actor"
	"repro/internal/apps/dt"
	"repro/internal/apps/nf"
	"repro/internal/apps/rkv"
	"repro/internal/apps/rta"
	"repro/internal/core"
	"repro/internal/nstack"
)

// This file re-exports the three distributed applications of §4 (and
// the §5.7 network functions) behind deployment helpers, so examples
// and downstream users can stand up the paper's workloads in a few
// lines.

// --- Replicated key-value store (Multi-Paxos + LSM) -------------------

// RKV aliases for the replicated key-value store.
type (
	// RKVDeployment is a deployed replica group.
	RKVDeployment = rkv.Deployment
	// RKVReplica is one replica's actor set.
	RKVReplica = rkv.Replica
)

// RKV message kinds and helpers.
const (
	RKVKindReq   = rkv.KindReq
	RKVStatusOK  = rkv.StatusOK
	RKVNotFound  = rkv.StatusNotFound
	RKVRedirect  = rkv.StatusRedirect
	RKVKindElect = rkv.KindElect
)

// DeployRKV registers the four RKV actor kinds on each node; the first
// node starts as Paxos leader. memLimit is the Memtable size that
// triggers minor compaction; onNIC offloads consensus and Memtable
// actors to the SmartNIC where available.
func DeployRKV(nodes []*Node, baseID ActorID, memLimit int, onNIC bool) (*RKVDeployment, error) {
	return rkv.Deploy(nodes, baseID, memLimit, onNIC)
}

// RKVPut / RKVGet / RKVDel build client request payloads.
func RKVPut(key, value []byte) []byte { return rkv.PutReq(key, value) }

// RKVGet builds a read request payload.
func RKVGet(key []byte) []byte { return rkv.GetReq(key) }

// RKVDel builds a delete request payload.
func RKVDel(key []byte) []byte { return rkv.DelReq(key) }

// --- Distributed transactions (OCC + 2PC) ------------------------------

// DT aliases for the transaction system.
type (
	// DTCoordinator drives the four-phase protocol.
	DTCoordinator = dt.Coordinator
	// DTStore is a participant's extensible hash table.
	DTStore = dt.Store
	// DTTxn is a client transaction.
	DTTxn = dt.Txn
	// DTOp is one read or write operation.
	DTOp = dt.Op
)

// DT message kinds and outcomes.
const (
	DTKindTxn   = dt.KindTxn
	DTCommitted = dt.OutcomeCommitted
	DTAborted   = dt.OutcomeAborted
)

// DeployDT registers a transaction coordinator (plus host logging
// actor) on coordNode and one participant per entry of partNodes.
// Returned stores expose each participant's data for inspection.
func DeployDT(coordNode *Node, partNodes []*Node, baseID ActorID, onNIC bool) (*DTCoordinator, []*DTStore, error) {
	var partIDs []actor.ID
	var stores []*dt.Store
	for i, n := range partNodes {
		st := dt.NewStore()
		id := baseID + 1 + ActorID(i)
		if err := n.Register(dt.NewParticipant(id, st), onNIC, 0); err != nil {
			return nil, nil, err
		}
		partIDs = append(partIDs, id)
		stores = append(stores, st)
	}
	loggerID := baseID + 1 + ActorID(len(partNodes))
	if err := coordNode.Register(dt.NewLogger(loggerID, nil), false, 0); err != nil {
		return nil, nil, err
	}
	coord := dt.NewCoordinator(baseID, partIDs, loggerID)
	if err := coordNode.Register(coord.Actor, onNIC, 0); err != nil {
		return nil, nil, err
	}
	return coord, stores, nil
}

// DTEncodeTxn / DTDecodeOutcome translate between transactions and wire
// payloads.
func DTEncodeTxn(t DTTxn) []byte { return dt.EncodeTxn(t) }

// DTDecodeOutcome splits a client response into outcome byte and read
// values.
func DTDecodeOutcome(p []byte) (byte, map[string][]byte) { return dt.DecodeOutcome(p) }

// --- Real-time analytics ------------------------------------------------

// RTA aliases.
type (
	// RTATopology wires filter → counter → ranker → aggregator.
	RTATopology = rta.Topology
	// RTAEntry is one ranked token.
	RTAEntry = rta.Entry
)

// RTAKindTuples is the client-facing message kind.
const RTAKindTuples = rta.KindTuples

// DeployRTA registers a filter→counter→ranker pipeline on node,
// forwarding consolidated top-n views to an aggregator actor created on
// aggNode's host; onUpdate observes each consolidated view.
func DeployRTA(node, aggNode *Node, baseID ActorID, discard []string, topN int, onNIC bool, onUpdate func([]RTAEntry)) (RTATopology, error) {
	topo := RTATopology{
		Filter:     baseID,
		Counter:    baseID + 1,
		Ranker:     baseID + 2,
		Aggregator: baseID + 3,
	}
	agg, _ := rta.NewAggregator(topo.Aggregator, topN, onUpdate)
	if err := aggNode.Register(agg, false, 0); err != nil {
		return topo, err
	}
	f, _ := rta.NewFilter(topo.Filter, topo, discard)
	c, _ := rta.NewCounter(topo.Counter, topo, rta.CounterConfig{})
	r, _ := rta.NewRanker(topo.Ranker, topo, topN)
	for _, a := range []*Actor{f, c, r} {
		if err := node.Register(a, onNIC, 0); err != nil {
			return topo, err
		}
	}
	return topo, nil
}

// RTAEncodeTuples packs tuples for a client request.
func RTAEncodeTuples(tuples []string) []byte { return rta.EncodeTuples(tuples) }

// RTADecodeCounts unpacks an aggregator/ranker payload.
func RTADecodeCounts(p []byte) map[string]uint32 { return rta.DecodeCounts(p) }

// --- Network functions ---------------------------------------------------

// NF aliases.
type (
	// FirewallRule is a wildcard TCAM entry.
	FirewallRule = nf.Rule
	// FiveTuple is the firewall classification key.
	FiveTuple = nf.FiveTuple
)

// Firewall verdicts.
const (
	NFAllow = nf.VerdictAllow
	NFDeny  = nf.VerdictDeny
)

// DeployFirewall registers a software-TCAM firewall actor on the node.
func DeployFirewall(node *Node, id ActorID, rules []FirewallRule, onNIC bool) error {
	fw := nf.NewFirewall(id, nf.NewTCAM(rules))
	return node.Register(fw, onNIC, 0)
}

// DeployIPSec registers an IPSec gateway actor (AES-256-CTR + SHA-1,
// accelerator-assisted on the NIC).
func DeployIPSec(node *Node, id ActorID, key, macKey []byte, onNIC bool) error {
	st, err := nf.NewIPSecState(key, macKey)
	if err != nil {
		return err
	}
	return node.Register(nf.NewIPSecGateway(id, st), onNIC, 0)
}

// UniformFirewallRules synthesizes n wildcard rules for experiments.
func UniformFirewallRules(n int) []FirewallRule { return nf.UniformRules(n) }

// Shim networking stack (Table 4's Nstack API): real Ethernet/IPv4/UDP
// framing for clients that want to send wire-format packets through the
// network functions.
type (
	// NetAddr is an L2/L3/L4 endpoint for Encap.
	NetAddr = nstack.Addr
	// NetMAC is an Ethernet address.
	NetMAC = nstack.MAC
)

// Encap builds a real Ethernet/IPv4/UDP frame (with a valid IPv4
// checksum) around payload.
func Encap(src, dst NetAddr, payload []byte, ttl uint8) []byte {
	return nstack.Encap(src, dst, payload, ttl)
}

// unexported compile-time checks that the facade stays wired.
var _ = core.DefaultRegionBytes
