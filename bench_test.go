// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each benchmark iteration regenerates the
// experiment end to end through the simulation (in quick mode, so
// `go test -bench=. -benchmem` completes in minutes); run
// `go run ./cmd/ipipe-bench all` for the full-resolution sweeps with
// the rendered tables.
package ipipe_test

import (
	"testing"

	ipipe "repro"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := ipipe.Experiment(id, true, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// §2.2.2 traffic control characterization.
func BenchmarkFig2_BandwidthVsCores10GbE(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig3_BandwidthVsCores25GbE(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4_BandwidthVsProcLatency(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig5_LatencyAtMaxThroughput(b *testing.B) { benchExperiment(b, "fig5") }

// §2.2.3 computing units.
func BenchmarkFig6_MessagingLatency(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkTable3_WorkloadsAndAccels(b *testing.B) { benchExperiment(b, "table3") }

// §2.2.4 onboard memory.
func BenchmarkTable2_MemoryHierarchy(b *testing.B) { benchExperiment(b, "table2") }

// §2.2.5 host communication.
func BenchmarkFig7_DMALatency(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkFig8_DMAThroughput(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9_RDMALatency(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10_RDMAThroughput(b *testing.B) { benchExperiment(b, "fig10") }

// §5.2–§5.3 application evaluation.
func BenchmarkFig13_HostCoreSavings(b *testing.B)       { benchExperiment(b, "fig13") }
func BenchmarkFig14_LatencyVsPerCore10GbE(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15_LatencyVsPerCore25GbE(b *testing.B) { benchExperiment(b, "fig15") }

// §5.4 scheduler, §5.5 overheads, Appendix B.3 migration.
func BenchmarkFig16_SchedulerDisciplines(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17_FrameworkOverhead(b *testing.B)    { benchExperiment(b, "fig17") }
func BenchmarkFig18_MigrationBreakdown(b *testing.B)   { benchExperiment(b, "fig18") }

// §5.6 Floem comparison and §5.7 network functions.
func BenchmarkFloem_RTAPerCore(b *testing.B) { benchExperiment(b, "floem") }
func BenchmarkNF_FirewallIPSec(b *testing.B) { benchExperiment(b, "nf") }

// Ablations of the design choices DESIGN.md calls out.
func BenchmarkAblateRingBatching(b *testing.B)   { benchExperiment(b, "ablate-ring") }
func BenchmarkAblateQueueModel(b *testing.B)     { benchExperiment(b, "ablate-queue") }
func BenchmarkAblateAccelBatching(b *testing.B)  { benchExperiment(b, "ablate-accel") }
func BenchmarkAblateMigrationOnOff(b *testing.B) { benchExperiment(b, "ablate-migration") }
func BenchmarkAblateWorkingSet(b *testing.B)     { benchExperiment(b, "ablate-workingset") }
func BenchmarkTable3Live(b *testing.B)           { benchExperiment(b, "table3-live") }
