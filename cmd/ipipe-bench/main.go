// Command ipipe-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ipipe-bench [-quick] [-seed N] [-parallel N] [-json] [experiment ...]
//
// With no arguments it lists the available experiment ids; "all" runs
// everything in paper order. Output is one aligned text table per
// experiment, with notes comparing against the numbers the paper
// reports. -json emits one NDJSON record per experiment instead,
// including wall time and simulated-event throughput. -cpuprofile and
// -memprofile write pprof profiles of the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "trim sweeps and windows for a fast run")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit one NDJSON record per experiment")
	seed := flag.Uint64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep-point worker count (1 = serial)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile to `file`")
	flag.Parse()

	ids := flag.Args()
	if *list || len(ids) == 0 {
		fmt.Println("experiments (run with: ipipe-bench [ids...] or 'all'):")
		for _, id := range bench.IDs() {
			fmt.Printf("  %-8s %s\n", id, bench.Title(id))
		}
		return
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = bench.IDs()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	opts := bench.Options{Quick: *quick, Seed: *seed, Parallel: *parallel}
	for _, id := range ids {
		r, err := bench.Run(id, opts)
		if err != nil {
			fatal(err)
		}
		switch {
		case *jsonOut:
			if err := r.FprintJSON(os.Stdout, opts); err != nil {
				fatal(err)
			}
		case *csvOut:
			r.FprintCSV(os.Stdout)
			fmt.Println()
		default:
			r.Fprint(os.Stdout)
			fmt.Println()
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ipipe-bench:", err)
	os.Exit(1)
}
