// Command ipipe-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ipipe-bench [-quick] [-seed N] [-parallel N] [-json] [experiment ...]
//
// With no arguments it lists the available experiment ids; "all" runs
// everything in paper order. Output is one aligned text table per
// experiment, with notes comparing against the numbers the paper
// reports. -json emits one NDJSON record per experiment instead,
// including wall time and simulated-event throughput. -cpuprofile and
// -memprofile write pprof profiles of the run.
//
// -check replaces the normal run with a golden-fingerprint replay: each
// experiment runs at two seeds, serially and with a parallel sweep,
// with the runtime invariant checker attached to every cluster; the
// invariant fingerprints must match byte-for-byte and no invariant may
// be violated. Exits nonzero otherwise.
//
// -qos selects the qos-* experiment family (multi-tenant lanes,
// admission, SLO controller). Combined with -check it replays the
// family along both determinism axes: serial vs parallel sweep, and
// PDES at 1 vs 2 and 1 vs 4 window workers.
//
// -pdes N shards partition-aware experiments (the scale-nodes family)
// across N engine partitions, executed by -parallel window workers.
// Combined with -check, the replay runs along the PDES axis instead:
// serial window merge vs parallel window execution, fingerprints
// byte-compared. -pdes-bench FILE writes the wall-clock speedup matrix
// (per size × worker count, with fingerprint certification and the
// machine's core count) as a JSON artifact.
//
// -report FILE re-runs a small experiment set (default: fig17 and
// scale-nodes; override with explicit ids) with tracing and metrics
// attached and writes the versioned run-summary artifact: merged
// sojourn histograms, gauge watermarks, scheduler timelines, counter
// totals, PDES handoff/round counts, and allocation cost. -baseline
// FILE compares the same summary against a stored artifact
// (BENCH_obs.json) and exits nonzero on any regression: deterministic
// fields must match exactly, allocation cost may not grow past its
// band. The two flags combine (write and gate in one run).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "trim sweeps and windows for a fast run")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit one NDJSON record per experiment")
	seed := flag.Uint64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep-point worker count (1 = serial)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile to `file`")
	traceFile := flag.String("trace", "", "write a Chrome trace of every simulated cluster to `file` (forces -parallel 1)")
	metricsFile := flag.String("metrics", "", "write NDJSON metric snapshots to `file` (forces -parallel 1)")
	metricsInterval := flag.Duration("metrics-interval", 100*time.Microsecond, "metric snapshot interval (virtual time)")
	check := flag.Bool("check", false, "golden replay: run with invariant checking at two seeds × serial/parallel and compare fingerprints")
	qosAxis := flag.Bool("qos", false, "run the qos-* experiment family; with -check, replay it along both the sweep axis and the PDES axis at 1/2/4 workers")
	pdes := flag.Int("pdes", 0, "engine partition count for partition-aware experiments (0 = their defaults); with -check, replays along the PDES axis")
	pdesBench := flag.String("pdes-bench", "", "write the PDES speedup matrix (JSON) to `file` and exit ('-' for stdout)")
	pdesNodes := flag.String("pdes-nodes", "", "comma-separated mesh sizes for -pdes-bench (default: the scale-nodes sweep sizes)")
	pdesWorkers := flag.String("pdes-workers", "2,4,8", "comma-separated window worker counts for -pdes-bench")
	reportFile := flag.String("report", "", "write the observed-run summary artifact (JSON) to `file` ('-' for stdout)")
	baselineFile := flag.String("baseline", "", "compare the observed-run summary against the artifact in `file`; exit nonzero on regression")
	flag.Parse()

	if *pdesBench != "" {
		opts := bench.Options{Quick: *quick, Seed: *seed, PDESParts: *pdes}
		sizes, err := intList(*pdesNodes)
		if err != nil {
			fatal(fmt.Errorf("-pdes-nodes: %w", err))
		}
		workers, err := intList(*pdesWorkers)
		if err != nil {
			fatal(fmt.Errorf("-pdes-workers: %w", err))
		}
		rep := bench.PDESBench(opts, sizes, workers)
		err = writeTo(*pdesBench, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		})
		if err != nil {
			fatal(err)
		}
		for _, e := range rep.Entries {
			if !e.FingerprintOK {
				fatal(fmt.Errorf("pdes-bench: nodes=%d workers=%d diverged from the serial merge", e.Nodes, e.Workers))
			}
		}
		return
	}

	if *reportFile != "" || *baselineFile != "" {
		opts := bench.Options{Quick: *quick, Seed: *seed,
			PDESParts: *pdes, PDESWorkers: *parallel}
		rep, err := bench.ObsReport(opts, flag.Args())
		if err != nil {
			fatal(err)
		}
		if *reportFile != "" {
			if err := writeTo(*reportFile, rep.WriteReport); err != nil {
				fatal(err)
			}
			if *reportFile != "-" {
				fmt.Fprintf(os.Stderr, "report: %d experiments -> %s\n",
					len(rep.Experiments), *reportFile)
			}
		}
		if *baselineFile != "" {
			f, err := os.Open(*baselineFile)
			if err != nil {
				fatal(err)
			}
			base, err := obs.ReadReport(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			if bad := obs.CompareReports(base, rep, obs.GateOptions{}); len(bad) > 0 {
				for _, line := range bad {
					fmt.Fprintln(os.Stderr, "obs-gate: REGRESSION:", line)
				}
				fmt.Fprintf(os.Stderr, "obs-gate: FAIL (%d regressions vs %s)\n", len(bad), *baselineFile)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "obs-gate: OK (%d experiments vs %s)\n",
				len(base.Experiments), *baselineFile)
		}
		return
	}

	ids := flag.Args()
	if *qosAxis && len(ids) == 0 {
		ids = bench.QoSExperimentIDs()
	}
	if *list || len(ids) == 0 {
		fmt.Println("experiments (run with: ipipe-bench [ids...] or 'all'):")
		for _, id := range bench.IDs() {
			fmt.Printf("  %-8s %s\n", id, bench.Title(id))
		}
		return
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = bench.IDs()
	}

	if *check {
		if *traceFile != "" || *metricsFile != "" {
			fatal(fmt.Errorf("-check cannot be combined with -trace/-metrics (both claim the cluster observer hook)"))
		}
		opts := bench.Options{Quick: *quick, Seed: *seed, PDESParts: *pdes}
		var rep *bench.ReplayReport
		var err error
		switch {
		case *qosAxis:
			rep, err = bench.GoldenReplayQoS(opts, []int{2, 4})
		case *pdes > 0:
			rep, err = bench.GoldenReplayPDES(ids, opts, *parallel)
		default:
			rep, err = bench.GoldenReplay(ids, opts, *parallel)
		}
		if err != nil {
			fatal(err)
		}
		rep.Fprint(os.Stdout)
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	// Observability: one tracer shared across every cluster the sweep
	// builds (groups prefixed r00/, r01/, ...), one collector per cluster
	// (each is bound to its engine) concatenated into one NDJSON stream.
	// Sweep points must then run serially: parallel workers would race on
	// the shared tracer and scramble registration order.
	// Sweep parallelism must drop to 1, but PDES window workers stay:
	// sinks are sharded per partition, so window-parallel execution
	// cannot perturb the artifacts.
	pdesW := *parallel
	var tracer *obs.Tracer
	var collectors []*obs.Collector
	if *traceFile != "" || *metricsFile != "" {
		if *parallel != 1 {
			fmt.Fprintln(os.Stderr, "ipipe-bench: -trace/-metrics force -parallel 1")
			*parallel = 1
		}
		if *traceFile != "" {
			tracer = obs.NewTracer()
		}
		run := 0
		core.SetDefaultObserver(func(c *core.Cluster) {
			prefix := fmt.Sprintf("r%02d/", run)
			run++
			if tracer != nil {
				c.EnableTracingPrefixed(tracer, prefix)
			}
			if *metricsFile != "" {
				col := obs.NewCollector(c.Eng, sim.Time(metricsInterval.Nanoseconds()))
				collectors = append(collectors, col)
				c.EnableMetricsPrefixed(col, prefix)
				col.Start()
			}
		})
		defer core.SetDefaultObserver(nil)
	}

	opts := bench.Options{Quick: *quick, Seed: *seed, Parallel: *parallel,
		PDESParts: *pdes, PDESWorkers: pdesW}
	for _, id := range ids {
		r, err := bench.Run(id, opts)
		if err != nil {
			fatal(err)
		}
		switch {
		case *jsonOut:
			if err := r.FprintJSON(os.Stdout, opts); err != nil {
				fatal(err)
			}
		case *csvOut:
			r.FprintCSV(os.Stdout)
			fmt.Println()
		default:
			r.Fprint(os.Stdout)
			fmt.Println()
		}
	}

	if tracer != nil {
		if err := writeTo(*traceFile, tracer.WriteChromeTrace); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d spans on %d tracks -> %s\n",
			tracer.Spans(), tracer.Tracks(), *traceFile)
	}
	if *metricsFile != "" {
		err := writeTo(*metricsFile, func(w io.Writer) error {
			for _, col := range collectors {
				col.Snapshot() // end-state record per cluster
				if err := col.WriteNDJSON(w); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics: %d clusters -> %s\n", len(collectors), *metricsFile)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ipipe-bench:", err)
	os.Exit(1)
}

// intList parses a comma-separated list of positive ints ("" = nil).
func intList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d out of range", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// writeTo writes an exporter's output to a file ("-" for stdout).
func writeTo(path string, write func(w io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
