// Command ipipe-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ipipe-bench [-quick] [-seed N] [experiment ...]
//
// With no arguments it lists the available experiment ids; "all" runs
// everything in paper order. Output is one aligned text table per
// experiment, with notes comparing against the numbers the paper
// reports.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "trim sweeps and windows for a fast run")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	ids := flag.Args()
	if *list || len(ids) == 0 {
		fmt.Println("experiments (run with: ipipe-bench [ids...] or 'all'):")
		for _, id := range bench.IDs() {
			fmt.Printf("  %-8s %s\n", id, bench.Title(id))
		}
		return
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = bench.IDs()
	}
	opts := bench.Options{Quick: *quick, Seed: *seed}
	for _, id := range ids {
		r, err := bench.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipipe-bench:", err)
			os.Exit(1)
		}
		if *csvOut {
			r.FprintCSV(os.Stdout)
		} else {
			r.Fprint(os.Stdout)
		}
		fmt.Println()
	}
}
