// Command ipipe-sim runs an ad-hoc iPipe cluster simulation: pick an
// application, a SmartNIC model (or none for the DPDK baseline), and a
// load, and it reports throughput, latency percentiles, host CPU usage,
// and runtime events (migrations, downgrades).
//
// Usage examples:
//
//	ipipe-sim -app rkv -nic cn2350 -duration 50ms -depth 16
//	ipipe-sim -app dt -nic none -size 1024
//	ipipe-sim -app rta -nic stingray -rate 500000
//	ipipe-sim -app echo -nic cn2360
//	ipipe-sim -app mesh -nodes 256 -partitions 8 -pdes 4
//
// The mesh app is the scale-out topology for the parallel (PDES)
// engine: -nodes echo-RPC servers sharded across -partitions engine
// partitions, windows executed by -pdes worker goroutines. Results are
// deterministic for a fixed seed regardless of -pdes, and so are the
// -trace/-metrics artifacts: each partition traces into its own shard
// and the export merges shards deterministically, so the emitted bytes
// are identical at any -pdes worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	ipipe "repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

func nicByFlag(name string) (*ipipe.NICModel, bool) {
	switch strings.ToLower(name) {
	case "none", "dpdk", "":
		return nil, true
	case "cn2350", "liquidio10":
		return ipipe.LiquidIOII_CN2350(), true
	case "cn2360", "liquidio25":
		return ipipe.LiquidIOII_CN2360(), true
	case "bluefield":
		return ipipe.BlueField_1M332A(), true
	case "stingray":
		return ipipe.Stingray_PS225(), true
	}
	return nil, false
}

func main() {
	app := flag.String("app", "rkv", "application: rkv | dt | rta | nf | echo | mesh")
	nicName := flag.String("nic", "cn2350", "SmartNIC: cn2350 | cn2360 | bluefield | stingray | none (DPDK baseline)")
	dur := flag.Duration("duration", 50*time.Millisecond, "virtual run duration")
	depth := flag.Int("depth", 16, "closed-loop outstanding requests (0 = use -rate)")
	rate := flag.Float64("rate", 0, "open-loop request rate (req/s) when -depth 0")
	size := flag.Int("size", 512, "request packet size (B)")
	shards := flag.Int("shards", 1, "RKV shard count: one Paxos group per shard over the node pool (rkv only)")
	batch := flag.Int("batch", 1, "coalesce up to this many same-shard requests into one message train (rkv only)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	loss := flag.Float64("loss", 0, "injected network packet loss rate [0,1)")
	queue := flag.String("queue", "auto", "NIC ingress model: auto | shared | shuffle | iokernel")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON file (chrome://tracing, Perfetto)")
	metricsFile := flag.String("metrics", "", "write NDJSON metric snapshots to `file`")
	metricsInterval := flag.Duration("metrics-interval", 100*time.Microsecond, "metric snapshot interval (virtual time)")
	check := flag.Bool("check", false, "audit runtime invariants during the run; exit 1 on any violation")
	meshNodes := flag.Int("nodes", 64, "server node count (mesh only)")
	partitions := flag.Int("partitions", 0, "engine partition count, 0 = min(8, nodes) (mesh only)")
	pdesWorkers := flag.Int("pdes", 1, "goroutines executing partition windows (mesh only; results identical at any count)")
	flag.Parse()

	if *app == "mesh" {
		// The mesh builds its cluster internally; observability attaches
		// through the default-observer hook. Partitioned tracing shards
		// per partition and metrics sample at window boundaries, so the
		// artifacts are byte-identical at any -pdes worker count.
		var meshTracer *obs.Tracer
		var meshCol *obs.Collector
		if *traceFile != "" || *metricsFile != "" {
			if *traceFile != "" {
				meshTracer = obs.NewTracer()
			}
			core.SetDefaultObserver(func(c *core.Cluster) {
				if meshTracer != nil {
					c.EnableTracing(meshTracer)
				}
				if *metricsFile != "" {
					meshCol = obs.NewCollector(c.Eng, sim.Time(metricsInterval.Nanoseconds()))
					c.EnableMetrics(meshCol)
					meshCol.Start()
				}
			})
			defer core.SetDefaultObserver(nil)
		}
		runMesh(mesh.Config{
			Nodes:      *meshNodes,
			Partitions: *partitions,
			Workers:    *pdesWorkers,
			Seed:       *seed,
			Depth:      *depth,
			ReqSize:    *size,
			Window:     ipipe.Duration(dur.Nanoseconds()),
			Check:      *check,
		})
		if meshTracer != nil {
			if err := writeTo(*traceFile, meshTracer.WriteChromeTrace); err != nil {
				fmt.Fprintf(os.Stderr, "ipipe-sim: trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "trace: %d spans on %d tracks -> %s\n",
				meshTracer.Spans(), meshTracer.Tracks(), *traceFile)
		}
		if meshCol != nil {
			meshCol.Snapshot() // end-state record
			if err := writeTo(*metricsFile, meshCol.WriteNDJSON); err != nil {
				fmt.Fprintf(os.Stderr, "ipipe-sim: metrics: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "metrics: %d snapshots -> %s\n", meshCol.Snapshots(), *metricsFile)
		}
		return
	}
	if *partitions > 1 {
		fmt.Fprintf(os.Stderr, "ipipe-sim: -partitions applies only to -app mesh (app %q runs on one engine)\n", *app)
		os.Exit(1)
	}

	nic, ok := nicByFlag(*nicName)
	if !ok {
		fmt.Fprintf(os.Stderr, "ipipe-sim: unknown NIC %q\n", *nicName)
		os.Exit(1)
	}
	offload := nic != nil
	window := ipipe.Duration(dur.Nanoseconds())

	cl := ipipe.NewCluster(*seed)
	cl.Net.LossRate = *loss

	var tracer *ipipe.Tracer
	if *traceFile != "" {
		tracer = ipipe.NewTracer()
		cl.EnableTracing(tracer)
	}
	var collector *ipipe.Collector
	if *metricsFile != "" {
		collector = ipipe.NewMetricsCollector(cl, ipipe.Duration(metricsInterval.Nanoseconds()))
		cl.EnableMetrics(collector)
	}
	var checker *ipipe.InvariantChecker
	if *check {
		checker = ipipe.NewInvariantChecker(cl)
	}
	mkNode := func(name string) *ipipe.Node {
		cfg := ipipe.NodeConfig{Name: name, NIC: nic, LinkGbps: linkOf(nic)}
		if nic != nil && *queue != "auto" {
			sc := baseline.Hybrid(nic)
			switch *queue {
			case "shared":
				sc.Shuffle = false
			case "shuffle":
				sc.Shuffle = true
			case "iokernel":
				sc.Shuffle = false
				sc.IOKernel = true
			default:
				fmt.Fprintf(os.Stderr, "ipipe-sim: unknown queue model %q\n", *queue)
				os.Exit(1)
			}
			cfg.SchedOverride = &sc
		}
		return cl.AddNode(cfg)
	}
	client := func() *ipipe.Client { return ipipe.NewClient(cl, "cli", linkOf(nic)) }

	drive := func(c *ipipe.Client, gen func(i uint64) ipipe.Request) {
		send := c.Send
		if *batch > 1 {
			send = ipipe.NewBatcher(c, 0, *batch).Add
		}
		if *depth > 0 {
			c.ClosedLoopVia(*depth, window, gen, send)
		} else {
			r := *rate
			if r <= 0 {
				r = 100000
			}
			c.OpenLoopVia(r, window, gen, send)
		}
	}

	// Each app is one table entry on the generic spec path: build returns
	// the spec (nil for the raw echo actor, which deploys no spec) and a
	// request-generator factory reading whatever it needs off the
	// deployed App. Validation and deployment below are app-agnostic —
	// the spec-API v2 replacement for the old five-arm switch.
	common := ipipe.DeployCommon{Placement: ipipe.Placement{OnNIC: offload}}
	var nodes []*ipipe.Node
	builders := map[string]func() (ipipe.DeploySpec, func(ipipe.DeployedApp) func(uint64) ipipe.Request){
		"rkv": func() (ipipe.DeploySpec, func(ipipe.DeployedApp) func(uint64) ipipe.Request) {
			nNodes := 3
			if *shards > nNodes {
				nNodes = *shards
			}
			for i := 0; i < nNodes; i++ {
				nodes = append(nodes, mkNode(fmt.Sprintf("kv%d", i)))
			}
			spc := ipipe.RKVSpec{Common: common, Nodes: nodes, BaseID: 100, MemLimit: 4 << 20, Shards: *shards}
			return spc, func(app ipipe.DeployedApp) func(uint64) ipipe.Request {
				d := app.(*ipipe.RKVApp)
				z := workload.NewZipf(cl.Eng.Rand(), 1_000_000, 0.99)
				return func(i uint64) ipipe.Request {
					key := []byte(fmt.Sprintf("k%07d", z.Next()))
					data := ipipe.RKVGet(key)
					if i%20 == 0 {
						data = ipipe.RKVPut(key, make([]byte, *size/4))
					}
					node, leader := d.LeaderFor(key)
					return ipipe.Request{Node: node, Dst: leader, Kind: ipipe.RKVKindReq,
						Data: data, Size: *size, FlowID: i}
				}
			}
		},
		"dt": func() (ipipe.DeploySpec, func(ipipe.DeployedApp) func(uint64) ipipe.Request) {
			coord := mkNode("coord")
			p1, p2 := mkNode("part1"), mkNode("part2")
			nodes = []*ipipe.Node{coord, p1, p2}
			spc := ipipe.DTSpec{Common: common, Coordinator: coord,
				Participants: []*ipipe.Node{p1, p2}, BaseID: 100}
			return spc, func(ipipe.DeployedApp) func(uint64) ipipe.Request {
				return func(i uint64) ipipe.Request {
					txn := ipipe.DTTxn{
						Reads: []ipipe.DTOp{
							{Key: []byte(fmt.Sprintf("r%d", i%512))},
							{Key: []byte(fmt.Sprintf("r%d", (i+7)%512))},
						},
						Writes: []ipipe.DTOp{{Key: []byte(fmt.Sprintf("w%d", i%256)), Value: make([]byte, *size/4)}},
					}
					return ipipe.Request{Node: "coord", Dst: 100, Kind: ipipe.DTKindTxn,
						Data: ipipe.DTEncodeTxn(txn), Size: *size, FlowID: i}
				}
			}
		},
		"rta": func() (ipipe.DeploySpec, func(ipipe.DeployedApp) func(uint64) ipipe.Request) {
			n := mkNode("worker")
			nodes = []*ipipe.Node{n}
			spc := ipipe.RTASpec{Common: common, Node: n, Aggregator: n, BaseID: 100,
				Discard: []string{"spam"}, TopN: 10}
			return spc, func(app ipipe.DeployedApp) func(uint64) ipipe.Request {
				topo := app.(*ipipe.RTAApp).Topology
				words := []string{"alpha", "beta", "gamma", "delta", "spam", "zeta"}
				return func(i uint64) ipipe.Request {
					batch := *size / 32
					if batch < 1 {
						batch = 1
					}
					tuples := make([]string, batch)
					for j := range tuples {
						tuples[j] = words[(int(i)+j)%len(words)]
					}
					return ipipe.Request{Node: "worker", Dst: topo.Filter, Kind: ipipe.RTAKindTuples,
						Data: ipipe.RTAEncodeTuples(tuples), Size: *size, FlowID: i}
				}
			}
		},
		"nf": func() (ipipe.DeploySpec, func(ipipe.DeployedApp) func(uint64) ipipe.Request) {
			n := mkNode("gw")
			nodes = []*ipipe.Node{n}
			spc := ipipe.FirewallSpec{Common: common, Node: n, ID: 100,
				Rules: ipipe.UniformFirewallRules(8192)}
			return spc, func(ipipe.DeployedApp) func(uint64) ipipe.Request {
				return func(i uint64) ipipe.Request {
					t := ipipe.FiveTuple{SrcIP: uint32(i) << 13, DstPort: 80, Proto: 6}
					return ipipe.Request{Node: "gw", Dst: 100, Data: t.Encode(), Size: *size, FlowID: i}
				}
			}
		},
		"echo": func() (ipipe.DeploySpec, func(ipipe.DeployedApp) func(uint64) ipipe.Request) {
			n := mkNode("srv")
			nodes = []*ipipe.Node{n}
			echo := &ipipe.Actor{ID: 100, Name: "echo",
				OnMessage: func(ctx ipipe.Ctx, m ipipe.Msg) ipipe.Duration {
					ctx.Reply(m)
					return 2 * ipipe.Microsecond
				}}
			if err := n.Register(echo, offload, 0); err != nil {
				panic(err)
			}
			return nil, func(ipipe.DeployedApp) func(uint64) ipipe.Request {
				return func(i uint64) ipipe.Request {
					return ipipe.Request{Node: "srv", Dst: 100, Size: *size, FlowID: i}
				}
			}
		},
	}
	build, ok := builders[*app]
	if !ok {
		fmt.Fprintf(os.Stderr, "ipipe-sim: unknown app %q\n", *app)
		os.Exit(1)
	}
	spc, mkGen := build()
	var deployed ipipe.DeployedApp
	if spc != nil {
		if err := spc.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "ipipe-sim: %v\n", err)
			os.Exit(1)
		}
		var err error
		if deployed, err = spc.DeployApp(); err != nil {
			fmt.Fprintf(os.Stderr, "ipipe-sim: %v\n", err)
			os.Exit(1)
		}
	}
	c := client()
	drive(c, mkGen(deployed))

	if collector != nil {
		collector.Start()
	}
	cl.Eng.Run()
	if collector != nil {
		collector.Snapshot() // end-state record
	}
	if checker != nil {
		checker.Finish()
		fmt.Fprintln(os.Stderr, checker.Summary())
		if err := checker.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "ipipe-sim: %v\n", err)
			os.Exit(1)
		}
	}

	if tracer != nil {
		if err := writeTo(*traceFile, tracer.WriteChromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "ipipe-sim: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d spans on %d tracks -> %s\n",
			tracer.Spans(), tracer.Tracks(), *traceFile)
	}
	if collector != nil {
		if err := writeTo(*metricsFile, collector.WriteNDJSON); err != nil {
			fmt.Fprintf(os.Stderr, "ipipe-sim: metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: %d snapshots -> %s\n", collector.Snapshots(), *metricsFile)
	}

	mode := "iPipe"
	if !offload {
		mode = "DPDK baseline"
	}
	el := window.Seconds()
	fmt.Printf("app=%s mode=%s size=%dB window=%v\n", *app, mode, *size, *dur)
	fmt.Printf("throughput: %.0f req/s (%d of %d answered)\n",
		float64(c.Received)/el, c.Received, c.Sent)
	fmt.Printf("latency: p50=%.2fus p99=%.2fus\n", c.Lat.Percentile(50), c.Lat.Percentile(99))
	for _, n := range nodes {
		line := fmt.Sprintf("node %-8s host-cores=%.2f", n.Name, n.HostCoresUsed())
		if n.Offloaded() {
			f, d := n.Sched.CoreModes()
			line += fmt.Sprintf("  nic[fcfs=%d drr=%d exec=%d fwd=%d down=%d up=%d push=%d pull=%d]",
				f, d, n.Sched.Completed, n.Sched.Forwarded,
				n.Sched.Downgrades, n.Sched.Upgrades, n.Sched.PushMigrations, n.Sched.PullMigrations)
		}
		fmt.Println(line)
	}
	_ = spec.WireOverheadBytes
}

// runMesh drives the PDES scale-out topology and reports.
func runMesh(cfg mesh.Config) {
	s := mesh.Run(cfg)
	fmt.Printf("app=mesh nodes=%d partitions=%d workers=%d window=%v\n",
		s.Nodes, s.Partitions, cfg.Workers, cfg.Window)
	fmt.Printf("throughput: %.1f kops/s (%d of %d answered)\n", s.TputKops, s.Ops, s.Sent)
	fmt.Printf("latency: p50=%.2fus p99=%.2fus\n", s.P50us, s.P99us)
	fmt.Printf("engine: %d events, %d cross-partition handoffs, %d sync windows, wall %v\n",
		s.Events, s.Crossed, s.Rounds, s.Wall)
	if cfg.Check {
		if s.Violations > 0 {
			fmt.Fprintf(os.Stderr, "ipipe-sim: %d partition ledgers reported violations\n", s.Violations)
			os.Exit(1)
		}
		fmt.Printf("invariants: %d partition ledgers clean\n", s.Partitions)
	}
}

func linkOf(nic *ipipe.NICModel) float64 {
	if nic == nil {
		return 10
	}
	return nic.LinkGbps
}

// writeTo writes an exporter's output to a file ("-" for stdout).
func writeTo(path string, write func(w io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
