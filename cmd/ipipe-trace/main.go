// Command ipipe-trace validates observability artifacts emitted by
// ipipe-sim / ipipe-bench:
//
//	ipipe-trace check out.json           # Chrome trace_event JSON
//	ipipe-trace check-metrics out.ndjson # NDJSON metric snapshots
//
// For traces it checks the file is well-formed trace_event JSON, every
// event carries a known phase, every lane is named, and timestamps are
// monotonic per (process, lane) — the invariants chrome://tracing and
// Perfetto rely on. For merged partitioned traces it additionally
// checks every cross-partition handoff stamp (xc, xsrc, xseq) pairs an
// "out" half with exactly one "in" half at the matching arrival time.
// Exit status 0 means valid; a summary is printed either way.
package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) != 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	switch cmd {
	case "check":
		st, err := obs.ValidateChromeTrace(f)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		fmt.Printf("%s: valid trace: %d events (%d spans, %d instants) across %d processes / %d tracks",
			path, st.Events, st.Spans, st.Instants, st.Processes, st.Tracks)
		if st.Handoffs > 0 || st.HandoffsInFlight > 0 {
			fmt.Printf("; %d cross-partition handoff pairs (%d in flight at window end)",
				st.Handoffs, st.HandoffsInFlight)
		}
		fmt.Println()
	case "check-metrics":
		st, err := obs.ValidateMetricsNDJSON(f)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		fmt.Printf("%s: valid metrics: %d records across %d registries\n",
			path, st.Records, st.Registries)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ipipe-trace check <trace.json> | check-metrics <metrics.ndjson>")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ipipe-trace:", err)
	os.Exit(1)
}
