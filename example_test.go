package ipipe_test

import (
	"fmt"

	ipipe "repro"
)

// Example deploys an echo actor on a SmartNIC and measures one request —
// the smallest complete iPipe program.
func Example() {
	cl := ipipe.NewCluster(1)
	node := cl.AddNode(ipipe.NodeConfig{Name: "srv", NIC: ipipe.LiquidIOII_CN2350()})
	echo := &ipipe.Actor{
		ID: 1,
		OnMessage: func(ctx ipipe.Ctx, m ipipe.Msg) ipipe.Duration {
			ctx.Reply(m)
			return 2 * ipipe.Microsecond
		},
	}
	if err := node.Register(echo, true, 0); err != nil {
		panic(err)
	}
	client := ipipe.NewClient(cl, "cli", 10)
	client.Send(ipipe.Request{Node: "srv", Dst: 1, Size: 512})
	cl.Eng.Run()
	fmt.Printf("answered=%d host-cores=%.1f\n", client.Received, node.HostCoresUsed())
	// Output:
	// answered=1 host-cores=0.0
}

// ExampleRKVSpec_Deploy stands up the paper's replicated key-value store
// on three SmartNIC-equipped replicas and performs a write then a read.
func ExampleRKVSpec_Deploy() {
	cl := ipipe.NewCluster(1)
	var nodes []*ipipe.Node
	for i := 0; i < 3; i++ {
		nodes = append(nodes, cl.AddNode(ipipe.NodeConfig{
			Name: fmt.Sprintf("kv%d", i), NIC: ipipe.LiquidIOII_CN2350(),
		}))
	}
	d, err := ipipe.RKVSpec{
		Common: ipipe.DeployCommon{Placement: ipipe.OnNIC},
		Nodes:  nodes, BaseID: 100, MemLimit: 1 << 20,
	}.Deploy()
	if err != nil {
		panic(err)
	}
	client := ipipe.NewClient(cl, "cli", 10)
	client.Send(ipipe.Request{
		Node: "kv0", Dst: d.LeaderActor(), Kind: ipipe.RKVKindReq,
		Data: ipipe.RKVPut([]byte("color"), []byte("teal")), Size: 256,
		OnResp: func(ipipe.Msg) {
			client.Send(ipipe.Request{
				Node: "kv0", Dst: d.LeaderActor(), Kind: ipipe.RKVKindReq,
				Data: ipipe.RKVGet([]byte("color")), Size: 256,
				OnResp: func(resp ipipe.Msg) {
					fmt.Printf("value=%s replicas-committed=%d\n",
						resp.Data[1:], d.Replicas[1].Consensus.LogLen())
				},
			})
		},
	})
	cl.Eng.Run()
	// Output:
	// value=teal replicas-committed=1
}

// ExampleExperiment regenerates one of the paper's tables.
func ExampleExperiment() {
	r, err := ipipe.Experiment("table2", true, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(r.Title)
	fmt.Println(len(r.Rows), "devices")
	// Output:
	// Memory hierarchy access latency (pointer chase)
	// 5 devices
}
