// analytics: the real-time analytics engine (§4, derived from
// FlexStorm): tuples flow filter → counter → ranker on the SmartNIC,
// consolidated top-n views land at a host-side aggregator. The demo
// swings the offered load so the ranker — the high-dispersion quicksort
// actor — migrates to the host when the NIC runs out of headroom, and
// comes back when load drops (dynamic, workload-aware offloading).
package main

import (
	"fmt"

	ipipe "repro"
)

func main() {
	cl := ipipe.NewCluster(7)
	node := cl.AddNode(ipipe.NodeConfig{
		Name: "worker",
		NIC:  ipipe.LiquidIOII_CN2350(),
	})

	var lastTop []ipipe.RTAEntry
	d, err := ipipe.RTASpec{
		Common:     ipipe.DeployCommon{Placement: ipipe.OnNIC},
		Node:       node,
		Aggregator: node,
		BaseID:     10,
		Discard:    []string{"spam", "noise"},
		TopN:       5,
		OnUpdate:   func(top []ipipe.RTAEntry) { lastTop = top },
	}.Deploy()
	if err != nil {
		panic(err)
	}
	topo := d.Topology

	words := []string{"go", "rust", "zig", "spam", "java", "python", "noise", "c"}
	client := ipipe.NewClient(cl, "cli", 10)
	send := func(i uint64, batch int) {
		tuples := make([]string, batch)
		for j := range tuples {
			tuples[j] = words[(int(i)+j)%len(words)]
		}
		client.Send(ipipe.Request{
			Node: "worker", Dst: topo.Filter, Kind: ipipe.RTAKindTuples,
			Data: ipipe.RTAEncodeTuples(tuples), Size: 512, FlowID: i,
		})
	}

	// Phase A: moderate load. Phase B: a burst of fat batches that
	// overloads the exclusive counter actor on the NIC. Phase C: calm,
	// so the runtime can pull actors back.
	var i uint64
	for at := ipipe.Duration(0); at < 10*ipipe.Millisecond; at += 20 * ipipe.Microsecond {
		at := at
		cl.Eng.At(at, func() { send(i, 16) })
		i++
	}
	for at := 10 * ipipe.Millisecond; at < 25*ipipe.Millisecond; at += 3 * ipipe.Microsecond {
		at := at
		cl.Eng.At(at, func() { send(i, 64) })
		i++
	}
	for at := 25 * ipipe.Millisecond; at < 40*ipipe.Millisecond; at += 20 * ipipe.Microsecond {
		at := at
		cl.Eng.At(at, func() { send(i, 16) })
		i++
	}
	cl.Eng.Run()

	fmt.Printf("batches sent: %d, acknowledged: %d\n", client.Sent, client.Received)
	fmt.Println("consolidated top-5 (spam/noise filtered):")
	for _, e := range lastTop {
		fmt.Printf("  %-8s %d\n", e.Token, e.Count)
	}
	fmt.Printf("push migrations: %d, pull migrations: %d (the runtime moved actors with load)\n",
		node.Sched.PushMigrations, node.Sched.PullMigrations)
	for _, rec := range node.Migrations {
		fmt.Printf("  migrated %-12s total=%v (phase3=%v, %dB of state)\n",
			rec.Actor, rec.Total(), rec.Phase[2], rec.BytesMoved)
	}
}
