// isolation: §3.4's protection story. Multiple tenants' actors share
// one SmartNIC; one tries to read another's state (trapped by the DMO
// region guard) and one spins forever (killed by the per-core timeout
// watchdog) — while the well-behaved tenant keeps its availability.
package main

import (
	"fmt"

	ipipe "repro"
)

func main() {
	cl := ipipe.NewCluster(13)
	node := cl.AddNode(ipipe.NodeConfig{
		Name:            "srv",
		NIC:             ipipe.LiquidIOII_CN2350(),
		WatchdogTimeout: 200 * ipipe.Microsecond,
	})

	// Tenant A: a well-behaved counter with private DMO state.
	var secretObj uint64
	tenantA := &ipipe.Actor{
		ID: 1, Name: "tenant-a",
		OnInit: func(ctx ipipe.Ctx) {
			secretObj, _ = ctx.Alloc(64)
			ctx.ObjWrite(secretObj, 0, []byte("tenant-a-secret"))
		},
		OnMessage: func(ctx ipipe.Ctx, m ipipe.Msg) ipipe.Duration {
			ctx.Reply(m)
			return 2 * ipipe.Microsecond
		},
	}

	// Tenant B: tries to read A's object through the DMO API.
	var stolen []byte
	var stealErr error
	tenantB := &ipipe.Actor{
		ID: 2, Name: "tenant-b-snoop",
		OnMessage: func(ctx ipipe.Ctx, m ipipe.Msg) ipipe.Duration {
			stolen, stealErr = ctx.ObjRead(secretObj, 0, 15)
			ctx.Reply(m)
			return ipipe.Microsecond
		},
	}

	// Tenant C: an infinite loop (modeled as an absurd execution cost).
	tenantC := &ipipe.Actor{
		ID: 3, Name: "tenant-c-spinner",
		OnMessage: func(ctx ipipe.Ctx, m ipipe.Msg) ipipe.Duration {
			return ipipe.Second // never yields
		},
	}

	for _, a := range []*ipipe.Actor{tenantA, tenantB, tenantC} {
		if err := node.Register(a, true, 0); err != nil {
			panic(err)
		}
	}

	client := ipipe.NewClient(cl, "cli", 10)
	// The snoop and the spinner fire early...
	client.Send(ipipe.Request{Node: "srv", Dst: 2, Size: 64})
	client.Send(ipipe.Request{Node: "srv", Dst: 3, Size: 64})
	// ...then tenant A serves a steady stream.
	for i := 0; i < 200; i++ {
		cl.Eng.At(ipipe.Duration(i+1)*20*ipipe.Microsecond, func() {
			client.Send(ipipe.Request{Node: "srv", Dst: 1, Size: 256})
		})
	}
	cl.Eng.Run()

	fmt.Printf("cross-actor read: data=%q err=%v (region guard, §3.4)\n", stolen, stealErr)
	fmt.Printf("isolation violations recorded against tenant-b: %d\n", node.Violations.Count(2))
	fmt.Printf("watchdog kills: %d (tenant-c deregistered, resources freed)\n", node.Watchdog.Kills)
	_, alive := cl.Table.Lookup(3)
	fmt.Printf("tenant-c still deployed: %v\n", alive)
	fmt.Printf("tenant-a availability: %d of %d requests answered, p99=%.2fus\n",
		client.Received-1, client.Sent-2, client.Lat.Percentile(99))
}
