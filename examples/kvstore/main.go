// kvstore: the paper's replicated key-value store (§4) — Multi-Paxos
// consensus over an LSM tree whose Memtable skip list lives in
// distributed memory objects — deployed on three SmartNIC-equipped
// replicas and driven with the §5.1 workload: 1M keys, Zipf 0.99,
// 95% reads / 5% writes.
package main

import (
	"fmt"

	ipipe "repro"
	"repro/internal/workload"
)

func main() {
	cl := ipipe.NewCluster(42)
	var nodes []*ipipe.Node
	for i := 0; i < 3; i++ {
		nodes = append(nodes, cl.AddNode(ipipe.NodeConfig{
			Name: fmt.Sprintf("kv%d", i),
			NIC:  ipipe.LiquidIOII_CN2350(),
		}))
	}

	// Deploy with a 16KB Memtable so minor compactions happen during
	// the short demo; the paper sized Memtables to NIC DRAM (≈32MB).
	d, err := ipipe.RKVSpec{
		Nodes:     nodes,
		BaseID:    100,
		MemLimit:  16 << 10,
		Placement: ipipe.OnNIC,
		Retry:     ipipe.DefaultRetry(),
	}.Deploy()
	if err != nil {
		panic(err)
	}
	leader := d.LeaderActor()

	client := ipipe.NewClient(cl, "cli", 10)
	z := workload.NewZipf(cl.Eng.Rand(), 1_000_000, 0.99)
	var ok, notFound int
	client.ClosedLoop(16, 50*ipipe.Millisecond, func(i uint64) ipipe.Request {
		key := []byte(fmt.Sprintf("key-%07d", z.Next()))
		data := ipipe.RKVGet(key)
		if i%20 == 0 { // 5% writes
			data = ipipe.RKVPut(key, make([]byte, 128))
		}
		return ipipe.Request{
			Node: "kv0", Dst: leader, Kind: ipipe.RKVKindReq,
			Data: data, Size: 512, FlowID: i,
			OnResp: func(resp ipipe.Msg) {
				switch ipipe.RKVStatusOf(resp.Data) {
				case ipipe.RKVStatusOK:
					ok++
				case ipipe.RKVStatusNotFound:
					notFound++
				}
			},
		}
	})
	cl.Eng.Run()

	fmt.Printf("operations: %d (ok=%d notFound=%d)\n", client.Received, ok, notFound)
	fmt.Printf("latency: p50=%.2fus p99=%.2fus\n",
		client.Lat.Percentile(50), client.Lat.Percentile(99))
	for i, r := range d.Replicas {
		fmt.Printf("replica %d: log=%d entries, memtable=%d keys (%d bytes), compactions=%d, sstables=%dB\n",
			i, r.Consensus.LogLen(), r.Memtable.List().Count(), r.Memtable.List().Bytes(),
			r.Memtable.Compactions, r.SST.TotalBytes())
	}
	fmt.Printf("leader host cores used: %.2f\n", nodes[0].HostCoresUsed())
}
