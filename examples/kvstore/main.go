// kvstore: the paper's replicated key-value store (§4) — Multi-Paxos
// consensus over an LSM tree whose Memtable skip list lives in
// distributed memory objects — scaled out over four shards (one Paxos
// group per shard, routed by consistent hashing) on six SmartNIC
// replicas, and driven with the §5.1 workload: 1M keys, Zipf 0.99,
// 95% reads / 5% writes, with same-shard requests coalesced into
// message trains (insight I6).
package main

import (
	"fmt"

	ipipe "repro"
	"repro/internal/workload"
)

func main() {
	cl := ipipe.NewCluster(42)
	var nodes []*ipipe.Node
	for i := 0; i < 6; i++ {
		nodes = append(nodes, cl.AddNode(ipipe.NodeConfig{
			Name: fmt.Sprintf("kv%d", i),
			NIC:  ipipe.LiquidIOII_CN2350(),
		}))
	}

	// Deploy 4 shards × 3 replicas rotated over the 6 nodes, with a
	// 16KB Memtable so minor compactions happen during the short demo;
	// the paper sized Memtables to NIC DRAM (≈32MB).
	d, err := ipipe.RKVSpec{
		Common: ipipe.DeployCommon{
			Placement: ipipe.OnNIC,
			Retry:     ipipe.DefaultRetry(),
		},
		Nodes:    nodes,
		BaseID:   100,
		MemLimit: 16 << 10,
		Shards:   4,
	}.Deploy()
	if err != nil {
		panic(err)
	}

	client := ipipe.NewClient(cl, "cli", 10)
	// Coalesce up to 8 same-shard requests staged within the default
	// 2µs window into one message train.
	batcher := ipipe.NewBatcher(client, 0, 8)
	z := workload.NewZipf(cl.Eng.Rand(), 1_000_000, 0.99)
	var ok, notFound int
	perShard := make([]int, d.Router.Shards())
	client.ClosedLoopVia(32, 50*ipipe.Millisecond, func(i uint64) ipipe.Request {
		key := []byte(fmt.Sprintf("key-%07d", z.Next()))
		data := ipipe.RKVGet(key)
		if i%20 == 0 { // 5% writes
			data = ipipe.RKVPut(key, make([]byte, 128))
		}
		shard := d.ShardFor(key)
		node, leader := d.LeaderFor(key)
		return ipipe.Request{
			Node: node, Dst: leader, Kind: ipipe.RKVKindReq,
			Data: data, Size: 512, FlowID: i,
			OnResp: func(resp ipipe.Msg) {
				perShard[shard]++
				switch ipipe.RKVStatusOf(resp.Data) {
				case ipipe.RKVStatusOK:
					ok++
				case ipipe.RKVStatusNotFound:
					notFound++
				}
			},
		}
	}, batcher.Add)
	cl.Eng.Run()

	fmt.Printf("operations: %d (ok=%d notFound=%d)\n", client.Received, ok, notFound)
	fmt.Printf("latency: p50=%.2fus p99=%.2fus\n",
		client.Lat.Percentile(50), client.Lat.Percentile(99))
	fmt.Printf("message trains: %d (coalesced %d requests)\n", batcher.Trains, batcher.Coalesced)
	for s, n := range perShard {
		g := d.Group(s)
		lead := g.Leader()
		fmt.Printf("shard %d: %d ops, leader=%s, log=%d entries, compactions=%d\n",
			s, n, lead.Node.Name, lead.Consensus.LogLen(), lead.Memtable.Compactions)
	}
	fmt.Printf("leader host cores used: %.2f\n", nodes[0].HostCoresUsed())
}
