// netfunc: the §5.7 network functions on iPipe — a software-TCAM
// firewall with 8K wildcard rules, and an IPSec gateway doing real
// AES-256-CTR + HMAC-SHA1 with the SmartNIC's crypto engines.
package main

import (
	"fmt"

	ipipe "repro"
)

func main() {
	cl := ipipe.NewCluster(9)
	node := cl.AddNode(ipipe.NodeConfig{Name: "gw", NIC: ipipe.LiquidIOII_CN2350()})

	// Firewall with 8K rules plus a couple of hand-written ones up front.
	rules := append([]ipipe.FirewallRule{
		{ // deny a specific host outright
			Value:    ipipe.FiveTuple{SrcIP: 0x0a000005},
			Mask:     ipipe.FiveTuple{SrcIP: 0xffffffff},
			Priority: -2,
		},
		{ // allow port 80 from anywhere
			Value:    ipipe.FiveTuple{DstPort: 80, Proto: 17},
			Mask:     ipipe.FiveTuple{DstPort: 0xffff, Proto: 0xff},
			Priority: -1,
			Allow:    true,
		},
	}, ipipe.UniformFirewallRules(8192)...)
	if _, err := (ipipe.FirewallSpec{
		Common: ipipe.DeployCommon{Placement: ipipe.OnNIC},
		Node:   node, ID: 1, Rules: rules,
	}).Deploy(); err != nil {
		panic(err)
	}
	if _, err := (ipipe.IPSecSpec{
		Common: ipipe.DeployCommon{Placement: ipipe.OnNIC},
		Node:   node, ID: 2, Key: make([]byte, 32),
		MACKey: []byte("gateway-mac-key"),
	}).Deploy(); err != nil {
		panic(err)
	}

	client := ipipe.NewClient(cl, "cli", 10)
	var allowed, denied, sealed int
	for i := 0; i < 2000; i++ {
		i := i
		at := ipipe.Duration(i) * 4 * ipipe.Microsecond
		cl.Eng.At(at, func() {
			if i%2 == 0 {
				// Real Ethernet/IPv4/UDP frames through the shim nstack.
				src := ipipe.NetAddr{MAC: ipipe.NetMAC{2, 0, 0, 0, 0, 1},
					IP: uint32(i) << 12, Port: uint16(40000 + i%1000)}
				dst := ipipe.NetAddr{MAC: ipipe.NetMAC{2, 0, 0, 0, 0, 2},
					IP: 0x0a000001, Port: uint16(22 + i%100)}
				if i%10 == 0 {
					src.IP = 0xc0a80001
					dst.Port = 80
				}
				frame := ipipe.Encap(src, dst, make([]byte, 64), 64)
				client.Send(ipipe.Request{
					Node: "gw", Dst: 1, Data: frame, Size: 1024, FlowID: uint64(i),
					OnResp: func(resp ipipe.Msg) {
						if ipipe.NFVerdictOf(resp.Data) == ipipe.NFVerdictAllow {
							allowed++
						} else {
							denied++
						}
					},
				})
			} else {
				client.Send(ipipe.Request{
					Node: "gw", Dst: 2, Data: make([]byte, 256), Size: 1024, FlowID: uint64(i),
					OnResp: func(resp ipipe.Msg) { sealed++ },
				})
			}
		})
	}
	cl.Eng.Run()

	fmt.Printf("firewall: %d allowed, %d denied (1KB packets, 8K+2 rules)\n", allowed, denied)
	fmt.Printf("ipsec: %d packets sealed with AES-256-CTR + HMAC-SHA1\n", sealed)
	fmt.Printf("AES engine invocations: %d, SHA-1: %d (hardware crypto, I4)\n",
		node.Accels.Invokes("AES"), node.Accels.Invokes("SHA-1"))
	fmt.Printf("latency: p50=%.2fus p99=%.2fus\n",
		client.Lat.Percentile(50), client.Lat.Percentile(99))
}
