// Quickstart: one SmartNIC-equipped server, one echo actor offloaded to
// the NIC, one client. Shows the minimal iPipe deployment loop: build a
// cluster, register an actor, drive requests, read measurements.
package main

import (
	"fmt"

	ipipe "repro"
)

func main() {
	cl := ipipe.NewCluster(1)

	// A server with a 10GbE LiquidIOII CN2350 SmartNIC.
	node := cl.AddNode(ipipe.NodeConfig{
		Name: "srv",
		NIC:  ipipe.LiquidIOII_CN2350(),
	})

	// An echo actor: replies with the request payload, costing 2µs of
	// reference-core time per invocation.
	echo := &ipipe.Actor{
		ID:   1,
		Name: "echo",
		OnMessage: func(ctx ipipe.Ctx, m ipipe.Msg) ipipe.Duration {
			ctx.Reply(m)
			return 2 * ipipe.Microsecond
		},
	}
	if err := node.Register(echo, true /* offload to the NIC */, 0); err != nil {
		panic(err)
	}

	// A client on the same switch, sending 1000 requests of 512B.
	client := ipipe.NewClient(cl, "cli", 10)
	for i := 0; i < 1000; i++ {
		at := ipipe.Duration(i) * 5 * ipipe.Microsecond
		i := i
		cl.Eng.At(at, func() {
			client.Send(ipipe.Request{Node: "srv", Dst: 1, Size: 512, FlowID: uint64(i)})
		})
	}
	cl.Eng.Run()

	fmt.Printf("sent=%d received=%d\n", client.Sent, client.Received)
	fmt.Printf("latency: p50=%.2fus p99=%.2fus\n",
		client.Lat.Percentile(50), client.Lat.Percentile(99))
	fmt.Printf("host cores used: %.3f (the echo ran entirely on the NIC)\n",
		node.HostCoresUsed())
}
