// transactions: the distributed transaction system of §4 — optimistic
// concurrency control with two-phase commit. A coordinator actor on one
// SmartNIC drives read-lock / validate / log / commit rounds against
// participant actors on two other SmartNICs; a logging actor pinned to
// the coordinator's host persists checkpointed coordinator logs.
package main

import (
	"fmt"

	ipipe "repro"
)

func main() {
	cl := ipipe.NewCluster(3)
	coordNode := cl.AddNode(ipipe.NodeConfig{Name: "coord", NIC: ipipe.LiquidIOII_CN2350()})
	p1 := cl.AddNode(ipipe.NodeConfig{Name: "part1", NIC: ipipe.LiquidIOII_CN2350()})
	p2 := cl.AddNode(ipipe.NodeConfig{Name: "part2", NIC: ipipe.LiquidIOII_CN2350()})

	d, err := ipipe.DTSpec{
		Common:       ipipe.DeployCommon{Placement: ipipe.OnNIC},
		Coordinator:  coordNode,
		Participants: []*ipipe.Node{p1, p2},
		BaseID:       100,
	}.Deploy()
	if err != nil {
		panic(err)
	}
	coord, stores := d.Coord, d.Stores

	client := ipipe.NewClient(cl, "cli", 10)
	// The §5.1 transaction shape: two reads and one write per txn, with
	// deliberate contention on a small hot write-set.
	var committed, aborted int
	client.ClosedLoop(12, 30*ipipe.Millisecond, func(i uint64) ipipe.Request {
		txn := ipipe.DTTxn{
			Reads: []ipipe.DTOp{
				{Key: []byte(fmt.Sprintf("acct-%03d", i%200))},
				{Key: []byte(fmt.Sprintf("acct-%03d", (i+37)%200))},
			},
			Writes: []ipipe.DTOp{{
				// Square the index so concurrent transactions collide on
				// the hot write set (consecutive i map to repeating keys).
				Key:   []byte(fmt.Sprintf("bal-%02d", (i*i)%12)),
				Value: []byte(fmt.Sprintf("v%d", i)),
			}},
		}
		return ipipe.Request{
			Node: "coord", Dst: 100, Kind: ipipe.DTKindTxn,
			Data: ipipe.DTEncodeTxn(txn), Size: 512, FlowID: i,
			OnResp: func(resp ipipe.Msg) {
				switch ipipe.DTOutcomeOf(resp.Data) {
				case ipipe.DTOutcomeCommitted:
					committed++
				case ipipe.DTOutcomeAborted:
					aborted++
				}
			},
		}
	})
	cl.Eng.Run()

	fmt.Printf("transactions: %d committed, %d aborted (%.1f%% abort rate under contention)\n",
		committed, aborted, 100*float64(aborted)/float64(committed+aborted))
	fmt.Printf("coordinator log checkpoints to host: %d\n", coord.Checkpoints)
	fmt.Printf("latency: p50=%.2fus p99=%.2fus\n",
		client.Lat.Percentile(50), client.Lat.Percentile(99))
	for i, st := range stores {
		g, l := st.Depths()
		fmt.Printf("participant %d store: %d records (extendible hash: global depth %d, max local %d, %d splits)\n",
			i+1, st.Len(), g, l, st.Splits)
	}
	fmt.Printf("coordinator host cores used: %.2f (protocol ran on the NIC)\n",
		coordNode.HostCoresUsed())
}
