package ipipe

import (
	"repro/internal/fault"
)

// Fault-injection surface: deployment specs carry a FaultSchedule whose
// faults become first-class simulator events (see internal/fault).
// Schedules can also be installed directly on a cluster with
// InstallFaults when no spec is involved.

// Fault aliases.
type (
	// Fault is one scheduled failure (node crash, NIC failure, overload
	// burst, link loss, flapping, partition, accelerator stall).
	Fault = fault.Fault
	// FaultKind enumerates the injectable fault classes.
	FaultKind = fault.Kind
	// FaultSchedule is a declarative set of faults.
	FaultSchedule = fault.Schedule
	// FaultInjector is an installed schedule: counters plus a
	// byte-deterministic activation log.
	FaultInjector = fault.Injector
)

// Fault kinds.
const (
	FaultNodeCrash   = fault.NodeCrash
	FaultNICDown     = fault.NICDown
	FaultNICOverload = fault.NICOverload
	FaultLinkLoss    = fault.LinkLoss
	FaultLinkFlap    = fault.LinkFlap
	FaultPartition   = fault.Partition
	FaultAccelStall  = fault.AccelStall
)

// FaultCrash builds a node crash/restart fault.
func FaultCrash(node string, at, dur Duration) Fault { return fault.Crash(node, at, dur) }

// FaultNICFail builds a SmartNIC-complex failure (actors re-home to the
// host).
func FaultNICFail(node string, at, dur Duration) Fault { return fault.NICFail(node, at, dur) }

// FaultOverload builds a NIC overload burst (service times × factor).
func FaultOverload(node string, at, dur Duration, factor float64) Fault {
	return fault.Overload(node, at, dur, factor)
}

// FaultLoss builds a lossy-link window on the node's traffic.
func FaultLoss(node string, at, dur Duration, rate float64) Fault {
	return fault.Loss(node, at, dur, rate)
}

// FaultFlap builds a flapping-link window (down period/2, up period/2).
func FaultFlap(node string, at, dur, period Duration) Fault {
	return fault.Flap(node, at, dur, period)
}

// FaultCut builds a partition isolating the given group from everyone
// else (including clients).
func FaultCut(at, dur Duration, nodes ...string) Fault { return fault.Cut(at, dur, nodes...) }

// FaultStall builds an accelerator stall on the node's named unit.
func FaultStall(node, unit string, at, dur Duration) Fault {
	return fault.Stall(node, unit, at, dur)
}

// InstallFaults validates a schedule and schedules every fault on the
// cluster's engine; call before Eng.Run. Specs install their Faults
// field through the same path.
func InstallFaults(c *Cluster, s FaultSchedule) (*FaultInjector, error) {
	return fault.Install(c, s)
}
