// Package actor implements iPipe's actor programming model (§3.1).
//
// An actor is a computation agent with self-contained private state that
// reacts to messages: it may mutate its own state and send asynchronous
// messages to other actors; actors never share memory. Each actor
// carries an init handler, an exec handler, a mailbox (a FIFO of pending
// messages), an exec lock deciding whether it may run on several cores
// at once, and runtime bookkeeping (dispersion statistics used by the
// scheduler, and its place in the actor table).
package actor

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/stats"
)

// ID identifies an actor uniquely within a deployment.
type ID uint32

// Kind tags message types; applications define their own kinds.
type Kind uint16

// Msg is an asynchronous message between actors.
type Msg struct {
	Kind Kind
	Src  ID
	Dst  ID
	// Data is the application payload.
	Data []byte
	// WireSize is the packet size this message occupied on the network
	// (0 for NIC/host-internal messages); the scheduler tracks request
	// sizes per actor from it (§3.2.3).
	WireSize int
	// FlowID steers dispatching.
	FlowID uint64
	// ArrivedAt is when the message entered the runtime (for sojourn
	// time accounting: queueing + execution).
	ArrivedAt sim.Time
	// Reply, when non-nil, lets infrastructure route a response to an
	// external client (e.g. the workload generator) without an actor ID.
	Reply func(resp Msg)
	// Via records how the message reached the current runtime, which
	// determines the I/O cost charged on delivery.
	Via Via
	// AuditSeq is the ingress-queue FIFO-audit sequence stamped on push
	// when invariant checking is enabled (0 otherwise); it lets the
	// checker match each pop to its push without a side table.
	AuditSeq uint64
	// Origin is the network node the request entered from; Reply routes
	// the response back there.
	Origin string
	// Tenant indexes the deployment's tenant table for multi-tenant
	// admission and SLO accounting (entries past the table — including
	// the zero value on untagged legacy traffic with an empty table —
	// are unconstrained).
	Tenant uint16
	// Class is the traffic class (qos.Class: data/control/telemetry)
	// steering the message through the node-front priority lanes. The
	// zero value is the data class, so untagged traffic is unchanged.
	Class uint8
}

// Via enumerates message ingress paths.
type Via uint8

// Ingress paths: from the network wire, over the PCIe message rings, or
// locally (same execution zone).
const (
	ViaLocal Via = iota
	ViaWire
	ViaRing
)

// Ctx is the capability surface handed to actor handlers. It is
// implemented by the runtime in internal/core; keeping it an interface
// here avoids a dependency cycle and keeps handlers testable with fakes.
type Ctx interface {
	// Now returns current virtual time.
	Now() sim.Time
	// Self returns the running actor's ID.
	Self() ID
	// Send delivers a message asynchronously to another actor, wherever
	// it lives (same core, other side of PCIe, or across the network).
	Send(dst ID, m Msg)
	// Reply responds to the client that originated the current request.
	Reply(m Msg)

	// Object store (DMO) operations; see internal/dmo for semantics.
	Alloc(size int) (uint64, error)
	Free(obj uint64) error
	ObjRead(obj uint64, off, n int) ([]byte, error)
	ObjWrite(obj uint64, off int, p []byte) error
	// ObjMigrate moves one object to the other side of the PCIe bus
	// (Table 4's dmo_migrate; the DT coordinator ships its full log
	// object to the host before checkpointing). It returns the bytes
	// moved. Accessing the object afterwards from this side fails until
	// it migrates back.
	ObjMigrate(obj uint64) (int, error)
	// ObjMemset / ObjMemcpy / ObjMemmove are Table 4's dmo_mmset,
	// dmo_mmcpy and dmo_mmmove: glibc-style bulk operations addressed by
	// object ID instead of pointer.
	ObjMemset(obj uint64, off, n int, b byte) error
	ObjMemcpy(dst uint64, dstOff int, src uint64, srcOff, n int) error
	ObjMemmove(obj uint64, dstOff, srcOff, n int) error

	// Accel invokes a named hardware accelerator over n bytes at the
	// given batch size and returns its modeled latency; ok is false when
	// this execution zone has no such unit (host cores compute inline
	// instead).
	Accel(name string, bytes, batch int) (sim.Time, bool)

	// OnNIC reports whether the handler is executing on the SmartNIC.
	OnNIC() bool
}

// Handler executes one message. It performs the actor's real work and
// returns the modeled execution cost of this invocation on the reference
// core (the 1.2GHz cnMIPS of the CN2350); the runtime scales the charge
// to whichever core actually runs it.
type Handler func(ctx Ctx, m Msg) sim.Time

// Actor is the unit of offloading.
type Actor struct {
	ID   ID
	Name string
	// OnInit initializes private state (allocating DMOs etc).
	OnInit func(ctx Ctx)
	// OnMessage is the exec handler.
	OnMessage Handler
	// Exclusive is the exec lock: when true the actor must not run on
	// multiple cores concurrently.
	Exclusive bool
	// MemBound in [0,1] captures how memory-bound the actor's work is;
	// it controls how much faster a host core runs it (I3).
	MemBound float64
	// Pinned constrains placement: actors that need host-only resources
	// (persistent storage for the LSM SSTable and logging actors) set
	// PinHost; PinNIC exists for symmetry and tests.
	PinHost bool
	PinNIC  bool
	// Shard tags the actor with its scale-out shard index so spans and
	// metrics attribute work per shard; only meaningful when Sharded is
	// set, since shard 0 is a valid index.
	Shard   int32
	Sharded bool

	// Mailbox holds messages awaiting DRR service (FCFS-mode messages
	// are run to completion straight off the shared queue).
	Mailbox Mailbox

	// Scheduler bookkeeping (§3.2.3): per-actor EWMA of request sojourn
	// (queueing + execution, driving the dispersion measure µ+3σ), of
	// pure execution latency (driving the DRR deficit gate, ALG 2's
	// exe_lat), request sizes, and invocation rate.
	ExecStats    stats.EWMA
	ServiceStats stats.EWMA
	SizeStats    stats.EWMA
	Invoked      uint64

	// InDRR marks the actor as downgraded to the DRR runnable queue.
	InDRR bool
	// Deficit is the actor's DRR deficit counter in nanoseconds.
	Deficit sim.Time

	// State tracks the migration protocol phase (§3.2.5).
	State MigState

	// running counts in-flight executions, enforcing Exclusive.
	running int
}

// MigState is the 4-phase migration automaton state of §3.2.5.
type MigState uint8

// Migration states: a stable actor is Stable; Prepare stops intake,
// Ready has drained execution, Gone means state moved to the other
// side, Clean means buffered requests were forwarded.
const (
	Stable MigState = iota
	Prepare
	Ready
	Gone
	Clean
)

// String renders the migration state.
func (s MigState) String() string {
	switch s {
	case Stable:
		return "Stable"
	case Prepare:
		return "Prepare"
	case Ready:
		return "Ready"
	case Gone:
		return "Gone"
	case Clean:
		return "Clean"
	default:
		return fmt.Sprintf("MigState(%d)", uint8(s))
	}
}

// InFlight reports whether the actor is mid-migration (any state past
// Stable): its placement is being rewritten by the §3.2.5 machinery,
// so bulk placement changes (crash re-homing, forced migrations) must
// skip it and let the in-flight protocol's commit finish the hand-off.
func (s MigState) InFlight() bool { return s != Stable }

// Dispersion returns the scheduler's dispersion measure for the actor:
// µ+3σ of its request execution latency (§3.2.3).
func (a *Actor) Dispersion() float64 { return a.ExecStats.Tail() }

// Load returns average execution latency scaled by invocation frequency,
// the quantity the migration policy ranks actors by (§3.2.5).
func (a *Actor) Load() float64 { return a.ExecStats.Mean() * float64(a.Invoked) }

// TryAcquire attempts to start an execution, honoring the exec lock.
func (a *Actor) TryAcquire() bool {
	if a.Exclusive && a.running > 0 {
		return false
	}
	a.running++
	return true
}

// Release ends an execution.
func (a *Actor) Release() {
	if a.running == 0 {
		panic("actor: Release without Acquire")
	}
	a.running--
}

// Running reports in-flight executions.
func (a *Actor) Running() int { return a.running }

// Observe folds one completed request into the actor's statistics.
func (a *Actor) Observe(sojourn, service sim.Time, wireSize int) {
	if a.ExecStats.Alpha == 0 {
		a.ExecStats.Alpha = 0.05
	}
	if a.ServiceStats.Alpha == 0 {
		a.ServiceStats.Alpha = 0.05
	}
	if a.SizeStats.Alpha == 0 {
		a.SizeStats.Alpha = 0.05
	}
	a.ExecStats.Observe(sojourn.Micros())
	if service > 0 {
		a.ServiceStats.Observe(service.Micros())
	}
	if wireSize > 0 {
		a.SizeStats.Observe(float64(wireSize))
	}
	a.Invoked++
}

// Mailbox is the actor's FIFO of pending messages. The hardware traffic
// manager (or the software shuffle layer) makes concurrent producers
// safe in the real system; in simulation ordering is the engine's.
type Mailbox struct {
	q []Msg
	// HighWater records the maximum backlog, which the DRR migration
	// trigger (mailbox length threshold) uses.
	HighWater int
}

// Push appends a message.
func (mb *Mailbox) Push(m Msg) {
	mb.q = append(mb.q, m)
	if len(mb.q) > mb.HighWater {
		mb.HighWater = len(mb.q)
	}
}

// Pop removes the oldest message.
func (mb *Mailbox) Pop() (Msg, bool) {
	if len(mb.q) == 0 {
		return Msg{}, false
	}
	m := mb.q[0]
	mb.q = mb.q[1:]
	return m, true
}

// Len returns the backlog.
func (mb *Mailbox) Len() int { return len(mb.q) }

// Drain removes and returns all pending messages (used by migration to
// forward buffered requests).
func (mb *Mailbox) Drain() []Msg {
	out := mb.q
	mb.q = nil
	return out
}

// Ref locates an actor in the deployment: which node, and which side of
// the PCIe bus. The actor table (actor_tbl) maps IDs to Refs.
type Ref struct {
	Node  string
	OnNIC bool
}

// Table is the actor table shared by a deployment's runtimes. It is
// copy-on-write: Lookup/Len read an immutable snapshot through an
// atomic pointer, while writers clone the map under a mutex and swap
// the pointer. Reads therefore never block and never race, which is
// what lets a partitioned (PDES) run keep the table shared while
// placements are rewritten: remote partitions only ever consume the
// immutable Node field of a Ref, so a read that lands on either side
// of a swap is equally correct. Under PDES the writers themselves are
// additionally serialized at conservative-window boundaries — watchdog
// kills drain at round hooks and migration/re-homing commits run as
// deferred barrier actions (core/migrate.go) — so the table is
// single-writer at any worker count and the write *order* is a pure
// function of simulation state. Writes are rare (registration,
// migrations, failures, kills) next to per-message lookups, so the
// clone cost is irrelevant.
type Table struct {
	refs atomic.Pointer[map[ID]Ref]
	mu   sync.Mutex // serializes writers
}

// NewTable returns an empty actor table.
func NewTable() *Table {
	t := &Table{}
	m := map[ID]Ref{}
	t.refs.Store(&m)
	return t
}

// Set records an actor's location.
func (t *Table) Set(id ID, ref Ref) {
	t.mu.Lock()
	old := *t.refs.Load()
	m := make(map[ID]Ref, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[id] = ref
	t.refs.Store(&m)
	t.mu.Unlock()
}

// Lookup finds an actor's location.
func (t *Table) Lookup(id ID) (Ref, bool) {
	r, ok := (*t.refs.Load())[id]
	return r, ok
}

// Delete removes an actor (deregistration).
func (t *Table) Delete(id ID) {
	t.mu.Lock()
	old := *t.refs.Load()
	m := make(map[ID]Ref, len(old))
	for k, v := range old {
		if k != id {
			m[k] = v
		}
	}
	t.refs.Store(&m)
	t.mu.Unlock()
}

// Len reports the number of registered actors.
func (t *Table) Len() int { return len(*t.refs.Load()) }
