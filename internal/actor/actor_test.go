package actor

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestMailboxFIFO(t *testing.T) {
	var mb Mailbox
	for i := 0; i < 5; i++ {
		mb.Push(Msg{Kind: Kind(i)})
	}
	for i := 0; i < 5; i++ {
		m, ok := mb.Pop()
		if !ok || m.Kind != Kind(i) {
			t.Fatalf("pop %d: got %v ok=%v", i, m.Kind, ok)
		}
	}
	if _, ok := mb.Pop(); ok {
		t.Fatal("pop from empty mailbox succeeded")
	}
}

func TestMailboxHighWater(t *testing.T) {
	var mb Mailbox
	for i := 0; i < 7; i++ {
		mb.Push(Msg{})
	}
	mb.Pop()
	mb.Push(Msg{})
	if mb.HighWater != 7 {
		t.Fatalf("HighWater = %d, want 7", mb.HighWater)
	}
}

func TestMailboxDrain(t *testing.T) {
	var mb Mailbox
	mb.Push(Msg{Kind: 1})
	mb.Push(Msg{Kind: 2})
	got := mb.Drain()
	if len(got) != 2 || got[0].Kind != 1 {
		t.Fatalf("Drain = %v", got)
	}
	if mb.Len() != 0 {
		t.Fatal("mailbox not empty after drain")
	}
}

func TestExecLockExclusive(t *testing.T) {
	a := &Actor{Exclusive: true}
	if !a.TryAcquire() {
		t.Fatal("first acquire failed")
	}
	if a.TryAcquire() {
		t.Fatal("second acquire on exclusive actor succeeded")
	}
	a.Release()
	if !a.TryAcquire() {
		t.Fatal("acquire after release failed")
	}
}

func TestExecLockShared(t *testing.T) {
	a := &Actor{Exclusive: false}
	for i := 0; i < 4; i++ {
		if !a.TryAcquire() {
			t.Fatalf("shared acquire %d failed", i)
		}
	}
	if a.Running() != 4 {
		t.Fatalf("Running = %d", a.Running())
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	a := &Actor{}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a.Release()
}

func TestObserveUpdatesStats(t *testing.T) {
	a := &Actor{}
	for i := 0; i < 100; i++ {
		a.Observe(10*sim.Microsecond, 8*sim.Microsecond, 512)
	}
	if a.Invoked != 100 {
		t.Fatalf("Invoked = %d", a.Invoked)
	}
	if m := a.ExecStats.Mean(); m < 9.9 || m > 10.1 {
		t.Fatalf("mean exec = %v µs, want 10", m)
	}
	if s := a.SizeStats.Mean(); s < 511 || s > 513 {
		t.Fatalf("mean size = %v, want 512", s)
	}
	if a.Dispersion() < a.ExecStats.Mean() {
		t.Fatal("dispersion below mean")
	}
}

func TestDispersionSeparatesWorkloads(t *testing.T) {
	low, high := &Actor{}, &Actor{}
	for i := 0; i < 1000; i++ {
		low.Observe(20*sim.Microsecond, 20*sim.Microsecond, 0)
		if i%2 == 0 {
			high.Observe(2*sim.Microsecond, 2*sim.Microsecond, 0)
		} else {
			high.Observe(38*sim.Microsecond, 38*sim.Microsecond, 0)
		}
	}
	if high.Dispersion() <= low.Dispersion() {
		t.Fatalf("bimodal actor dispersion %v should exceed constant %v",
			high.Dispersion(), low.Dispersion())
	}
}

func TestLoadRanksByFrequencyAndCost(t *testing.T) {
	hot, cold := &Actor{}, &Actor{}
	for i := 0; i < 1000; i++ {
		hot.Observe(10*sim.Microsecond, 10*sim.Microsecond, 0)
	}
	for i := 0; i < 10; i++ {
		cold.Observe(10*sim.Microsecond, 10*sim.Microsecond, 0)
	}
	if hot.Load() <= cold.Load() {
		t.Fatal("frequently invoked actor should carry more load")
	}
}

func TestTable(t *testing.T) {
	tbl := NewTable()
	tbl.Set(1, Ref{Node: "n0", OnNIC: true})
	tbl.Set(2, Ref{Node: "n1"})
	r, ok := tbl.Lookup(1)
	if !ok || r.Node != "n0" || !r.OnNIC {
		t.Fatalf("Lookup(1) = %v %v", r, ok)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	tbl.Delete(1)
	if _, ok := tbl.Lookup(1); ok {
		t.Fatal("deleted actor still present")
	}
}

func TestMigStateString(t *testing.T) {
	states := map[MigState]string{
		Stable: "Stable", Prepare: "Prepare", Ready: "Ready",
		Gone: "Gone", Clean: "Clean", MigState(99): "MigState(99)",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

// Property: mailbox length equals pushes minus pops under any op
// sequence, and drained content preserves order.
func TestMailboxProperty(t *testing.T) {
	f := func(ops []bool) bool {
		var mb Mailbox
		pushed, popped := 0, 0
		next := 0
		for _, push := range ops {
			if push {
				mb.Push(Msg{Kind: Kind(pushed)})
				pushed++
			} else if m, ok := mb.Pop(); ok {
				if int(m.Kind) != next {
					return false
				}
				next++
				popped++
			}
		}
		return mb.Len() == pushed-popped
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
