package dt

import (
	"bytes"
	"encoding/binary"
	"sort"

	"repro/internal/actor"
	"repro/internal/sim"
)

// Message kinds of the transaction protocol.
const (
	// KindTxn is the client request (EncodeTxn payload).
	KindTxn actor.Kind = iota + 16
	// KindPhase1 asks a participant to read the read-set keys it holds
	// and lock the write-set keys it holds.
	KindPhase1
	// KindPhase1Resp returns read values+versions and lock outcomes.
	KindPhase1Resp
	// KindValidate asks a participant to re-check read-set versions.
	KindValidate
	// KindValidateResp returns the validation verdict.
	KindValidateResp
	// KindCommit installs the write set and unlocks.
	KindCommit
	// KindCommitAck acknowledges installation.
	KindCommitAck
	// KindAbort unlocks the write-set keys of an aborted transaction.
	KindAbort
	// KindCheckpoint carries a full coordinator-log object to the
	// host logging actor (§4: issued when the log reaches its limit).
	KindCheckpoint
	// KindSweep asks the coordinator to abort in-flight transactions
	// older than its TxnTimeout (injected periodically by the deployment
	// layer; a recovery path, not part of the client protocol).
	KindSweep
)

// Outcome is the transaction verdict returned to the client in the
// first response byte.
type Outcome byte

// Outcome codes.
const (
	OutcomeCommitted Outcome = 1
	OutcomeAborted   Outcome = 2
)

// String names the outcome for logs and experiment output.
func (o Outcome) String() string {
	switch o {
	case OutcomeCommitted:
		return "committed"
	case OutcomeAborted:
		return "aborted"
	}
	return "invalid"
}

// OutcomeOf reads the outcome byte of a client response (0 on empty).
func OutcomeOf(p []byte) Outcome {
	if len(p) == 0 {
		return 0
	}
	return Outcome(p[0])
}

// logLimitBytes is the coordinator log capacity before checkpointing.
const logLimitBytes = 1 << 16

// Partition maps a key to one of n participants.
func Partition(key []byte, n int) int {
	return int(hashKey(key) % uint64(n))
}

// --- wire helpers ----------------------------------------------------

type wbuf struct{ bytes.Buffer }

func (w *wbuf) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}
func (w *wbuf) u8(v byte) { w.WriteByte(v) }
func (w *wbuf) blob(p []byte) {
	w.u8(byte(len(p)))
	w.Write(p)
}
func (w *wbuf) blob16(p []byte) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(len(p)))
	w.Write(b[:])
	w.Write(p)
}

type rbuf struct{ p []byte }

func (r *rbuf) u64() uint64 {
	v := binary.LittleEndian.Uint64(r.p)
	r.p = r.p[8:]
	return v
}
func (r *rbuf) u8() byte {
	v := r.p[0]
	r.p = r.p[1:]
	return v
}
func (r *rbuf) blob() []byte {
	n := int(r.u8())
	v := r.p[:n]
	r.p = r.p[n:]
	return v
}
func (r *rbuf) blob16() []byte {
	n := int(binary.LittleEndian.Uint16(r.p))
	r.p = r.p[2:]
	v := r.p[:n]
	r.p = r.p[n:]
	return v
}
func (r *rbuf) more() bool { return len(r.p) > 0 }

// --- participant -----------------------------------------------------

// DefaultLockLease bounds how long a write lock can be held without the
// owning transaction completing. A coordinator that crashes mid-2PC
// stops sending commits/aborts; the lease lets participants treat such
// stale locks as released so the store is never left locked forever.
const DefaultLockLease = 10 * sim.Millisecond

// lockHeld reports whether a record's lock is still live: set, and (when
// a lease is configured) younger than the lease.
func lockHeld(rec *Record, now, lease sim.Time) bool {
	if rec == nil || !rec.Locked {
		return false
	}
	return lease <= 0 || now-rec.LockedAt < lease
}

// NewParticipant builds a participant actor over its own Store with the
// DefaultLockLease. Costs are per-op hashtable charges consistent with
// Table 3's KV-cache profile (≈1.2µs per lookup/update on the reference
// core).
func NewParticipant(id actor.ID, st *Store) *actor.Actor {
	return NewParticipantLease(id, st, DefaultLockLease)
}

// NewParticipantLease is NewParticipant with an explicit lock lease
// (≤ 0 disables expiry — locks are then held until commit/abort).
func NewParticipantLease(id actor.ID, st *Store, lease sim.Time) *actor.Actor {
	const opCost = 1200 * sim.Nanosecond
	a := &actor.Actor{
		ID:        id,
		Name:      "dt-participant",
		Exclusive: true, // mutates the shared table
		MemBound:  0.35, // hashtable walks
	}
	a.OnMessage = func(ctx actor.Ctx, m actor.Msg) sim.Time {
		r := rbuf{m.Data}
		var cost sim.Time = 400 * sim.Nanosecond
		switch m.Kind {
		case KindPhase1:
			txn := r.u64()
			var w wbuf
			w.u64(txn)
			ok := byte(1)
			nRead := int(r.u8())
			reads := make([][]byte, 0, nRead)
			for i := 0; i < nRead; i++ {
				reads = append(reads, append([]byte(nil), r.blob()...))
			}
			nLock := int(r.u8())
			locks := make([][]byte, 0, nLock)
			for i := 0; i < nLock; i++ {
				locks = append(locks, append([]byte(nil), r.blob()...))
			}
			// Abort fast if anything in R or W is already locked (expired
			// leases do not count: their owner is presumed dead).
			for _, k := range append(append([][]byte{}, reads...), locks...) {
				cost += opCost
				if lockHeld(st.Get(k), ctx.Now(), lease) {
					ok = 0
				}
			}
			if ok == 1 {
				for _, k := range locks {
					rec := st.Get(k)
					if rec == nil {
						rec = &Record{}
						st.Put(k, rec)
						cost += opCost
					}
					rec.Locked = true
					rec.LockedAt = ctx.Now()
				}
			}
			w.u8(ok)
			w.u8(byte(len(reads)))
			for _, k := range reads {
				var val []byte
				var ver uint64
				if rec := st.Get(k); rec != nil {
					val, ver = rec.Value, rec.Version
				}
				w.blob(k)
				w.blob16(val)
				w.u64(ver)
			}
			ctx.Send(m.Src, actor.Msg{Kind: KindPhase1Resp, Data: w.Bytes()})
		case KindValidate:
			txn := r.u64()
			ok := byte(1)
			for r.more() {
				k := r.blob()
				ver := r.u64()
				cost += opCost
				rec := st.Get(k)
				cur := uint64(0)
				if rec != nil {
					cur = rec.Version
				}
				if lockHeld(rec, ctx.Now(), lease) || cur != ver {
					ok = 0
				}
			}
			var w wbuf
			w.u64(txn)
			w.u8(ok)
			ctx.Send(m.Src, actor.Msg{Kind: KindValidateResp, Data: w.Bytes()})
		case KindCommit:
			txn := r.u64()
			for r.more() {
				k := r.blob()
				val := r.blob16()
				cost += opCost
				rec := st.Get(k)
				if rec == nil {
					rec = &Record{}
					st.Put(k, rec)
				}
				rec.Value = append([]byte(nil), val...)
				rec.Version++
				rec.Locked = false
			}
			var w wbuf
			w.u64(txn)
			ctx.Send(m.Src, actor.Msg{Kind: KindCommitAck, Data: w.Bytes()})
		case KindAbort:
			_ = r.u64()
			for r.more() {
				k := r.blob()
				cost += opCost
				if rec := st.Get(k); rec != nil {
					rec.Locked = false
				}
			}
		}
		return cost
	}
	return a
}

// --- logging actor (host-pinned) --------------------------------------

// NewLogger builds the host logging actor that persists checkpointed
// coordinator logs (§4: "a logging actor pinned to the host since it
// requires persistent storage access").
func NewLogger(id actor.ID, onCheckpoint func(bytes int)) *actor.Actor {
	a := &actor.Actor{
		ID:      id,
		Name:    "dt-logger",
		PinHost: true,
		// Storage writes dominate; host disks are the substrate.
		MemBound: 0.6,
	}
	a.OnMessage = func(ctx actor.Ctx, m actor.Msg) sim.Time {
		if m.Kind == KindCheckpoint {
			if onCheckpoint != nil {
				onCheckpoint(len(m.Data))
			}
			// Sequential storage write: ≈25ns/byte reference-core charge
			// stands in for the I/O path.
			return 5*sim.Microsecond + sim.Time(len(m.Data)/40)
		}
		return sim.Microsecond
	}
	return a
}

// --- coordinator -------------------------------------------------------

type txnState struct {
	id      uint64
	txn     Txn
	client  actor.Msg
	pending int
	failed  bool
	// startedAt stamps arrival, for the sweep's staleness check.
	startedAt sim.Time
	// committed flips once the log append (the commit point) happens;
	// the sweep must never abort such a transaction.
	committed bool
	readVers  map[string]uint64
	readVals  map[string][]byte
	// lockedAt are participants that hold our locks.
	lockedAt map[actor.ID][]Op
	// readAt are participants holding our read keys.
	readAt map[actor.ID][]Op
}

// Coordinator drives the OCC/2PC protocol. Exported state supports the
// experiment harness.
type Coordinator struct {
	Actor *actor.Actor

	participants []actor.ID
	logger       actor.ID

	nextTxn  uint64
	inflight map[uint64]*txnState

	logObj    uint64
	logOffset int

	// TxnTimeout, when > 0, lets a KindSweep message abort in-flight
	// transactions older than this (stuck because a participant died
	// mid-protocol). Transactions past the commit point are finished as
	// committed instead — the log entry is the truth.
	TxnTimeout sim.Time

	// Committed/Aborted count outcomes.
	Committed uint64
	Aborted   uint64
	// TimeoutAborts counts aborts forced by the sweep.
	TimeoutAborts uint64
	// Checkpoints counts log-object migrations to the host.
	Checkpoints uint64
}

// NewCoordinator builds the coordinator actor.
func NewCoordinator(id actor.ID, participants []actor.ID, logger actor.ID) *Coordinator {
	c := &Coordinator{
		participants: participants,
		logger:       logger,
		inflight:     map[uint64]*txnState{},
	}
	a := &actor.Actor{
		ID:        id,
		Name:      "dt-coordinator",
		Exclusive: true,
		MemBound:  0.2,
	}
	a.OnInit = func(ctx actor.Ctx) {
		c.logObj, _ = ctx.Alloc(logLimitBytes)
	}
	a.OnMessage = c.onMessage
	c.Actor = a
	return c
}

func (c *Coordinator) onMessage(ctx actor.Ctx, m actor.Msg) sim.Time {
	switch m.Kind {
	case KindTxn:
		return c.startTxn(ctx, m)
	case KindPhase1Resp:
		return c.phase1Resp(ctx, m)
	case KindValidateResp:
		return c.validateResp(ctx, m)
	case KindCommitAck:
		return c.commitAck(ctx, m)
	case KindSweep:
		return c.sweep(ctx)
	}
	return 200 * sim.Nanosecond
}

// sweep aborts in-flight transactions older than TxnTimeout: their
// participants answered with a verdict that never completed (a death
// mid-2PC drops messages on the floor). Pre-commit-point transactions
// abort cleanly — lock-release messages go to every write-set
// participant, reachable or not, and participant lock leases cover the
// unreachable ones. Post-commit-point transactions finish as committed:
// the log append already decided them.
func (c *Coordinator) sweep(ctx actor.Ctx) sim.Time {
	if c.TxnTimeout <= 0 {
		return 200 * sim.Nanosecond
	}
	now := ctx.Now()
	stale := make([]uint64, 0, len(c.inflight))
	for id, st := range c.inflight {
		if now-st.startedAt >= c.TxnTimeout {
			stale = append(stale, id)
		}
	}
	// Sorted: the abort fan-out order must not depend on map order.
	sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
	cost := 300 * sim.Nanosecond
	for _, id := range stale {
		st := c.inflight[id]
		if st.committed {
			c.finish(ctx, st, OutcomeCommitted)
		} else {
			c.TimeoutAborts++
			c.abort(ctx, st)
		}
		cost += 600 * sim.Nanosecond
	}
	return cost
}

func (c *Coordinator) startTxn(ctx actor.Ctx, m actor.Msg) sim.Time {
	txn, ok := DecodeTxn(m.Data)
	if !ok {
		c.Aborted++
		resp := m
		resp.Data = []byte{byte(OutcomeAborted)}
		ctx.Reply(resp)
		return 400 * sim.Nanosecond
	}
	id := c.nextTxn
	c.nextTxn++
	st := &txnState{
		id: id, txn: txn, client: m,
		startedAt: ctx.Now(),
		readVers: map[string]uint64{},
		readVals: map[string][]byte{},
		lockedAt: map[actor.ID][]Op{},
		readAt:   map[actor.ID][]Op{},
	}
	for _, op := range txn.Reads {
		p := c.participants[Partition(op.Key, len(c.participants))]
		st.readAt[p] = append(st.readAt[p], op)
	}
	for _, op := range txn.Writes {
		p := c.participants[Partition(op.Key, len(c.participants))]
		st.lockedAt[p] = append(st.lockedAt[p], op)
	}
	c.inflight[id] = st
	// Phase 1: read + lock, one message per involved participant.
	parts := map[actor.ID]bool{}
	for p := range st.readAt {
		parts[p] = true
	}
	for p := range st.lockedAt {
		parts[p] = true
	}
	for _, p := range c.participants {
		if !parts[p] {
			continue
		}
		var w wbuf
		w.u64(id)
		w.u8(byte(len(st.readAt[p])))
		for _, op := range st.readAt[p] {
			w.blob(op.Key)
		}
		w.u8(byte(len(st.lockedAt[p])))
		for _, op := range st.lockedAt[p] {
			w.blob(op.Key)
		}
		st.pending++
		ctx.Send(p, actor.Msg{Kind: KindPhase1, Data: w.Bytes()})
	}
	return 800 * sim.Nanosecond
}

func (c *Coordinator) phase1Resp(ctx actor.Ctx, m actor.Msg) sim.Time {
	r := rbuf{m.Data}
	id := r.u64()
	st, ok := c.inflight[id]
	if !ok {
		return 200 * sim.Nanosecond
	}
	if r.u8() == 0 {
		st.failed = true
	}
	nReads := int(r.u8())
	for i := 0; i < nReads; i++ {
		k := string(r.blob())
		v := append([]byte(nil), r.blob16()...)
		ver := r.u64()
		st.readVals[k] = v
		st.readVers[k] = ver
	}
	st.pending--
	if st.pending > 0 {
		return 500 * sim.Nanosecond
	}
	if st.failed {
		c.abort(ctx, st)
		return 600 * sim.Nanosecond
	}
	// Phase 2: validate read versions.
	if len(st.readAt) == 0 {
		return c.logAndCommit(ctx, st) + 500*sim.Nanosecond
	}
	// Iterate participants in ring order, not map order: the send order
	// fixes the message sequence, which determinism depends on.
	for _, p := range c.participants {
		ops, ok := st.readAt[p]
		if !ok {
			continue
		}
		var w wbuf
		w.u64(id)
		for _, op := range ops {
			w.blob(op.Key)
			w.u64(st.readVers[string(op.Key)])
		}
		st.pending++
		ctx.Send(p, actor.Msg{Kind: KindValidate, Data: w.Bytes()})
	}
	return 700 * sim.Nanosecond
}

func (c *Coordinator) validateResp(ctx actor.Ctx, m actor.Msg) sim.Time {
	r := rbuf{m.Data}
	id := r.u64()
	st, ok := c.inflight[id]
	if !ok {
		return 200 * sim.Nanosecond
	}
	if r.u8() == 0 {
		st.failed = true
	}
	st.pending--
	if st.pending > 0 {
		return 400 * sim.Nanosecond
	}
	if st.failed {
		c.abort(ctx, st)
		return 600 * sim.Nanosecond
	}
	return c.logAndCommit(ctx, st)
}

// logAndCommit performs phases 3 and 4: append to the coordinator log
// (the commit point) and send commit messages.
func (c *Coordinator) logAndCommit(ctx actor.Ctx, st *txnState) sim.Time {
	var entry wbuf
	entry.u64(st.id)
	for _, op := range st.txn.Writes {
		entry.blob(op.Key)
		entry.blob16(op.Value)
	}
	e := entry.Bytes()
	if c.logOffset+len(e) > logLimitBytes {
		// Log full: migrate the log object to the host and checkpoint
		// (§4), then start a fresh log object.
		if _, err := ctx.ObjMigrate(c.logObj); err == nil {
			c.Checkpoints++
			ctx.Send(c.logger, actor.Msg{Kind: KindCheckpoint, Data: make([]byte, c.logOffset)})
		}
		c.logObj, _ = ctx.Alloc(logLimitBytes)
		c.logOffset = 0
	}
	ctx.ObjWrite(c.logObj, c.logOffset, e)
	c.logOffset += len(e)
	st.committed = true // commit point: the log entry decides the txn

	// Phase 4: commit to write-set participants.
	if len(st.lockedAt) == 0 {
		c.finish(ctx, st, OutcomeCommitted)
		return 900 * sim.Nanosecond
	}
	// Ring order, not map order (see phase1/phase2): keeps the commit
	// fan-out sequence deterministic.
	for _, p := range c.participants {
		ops, ok := st.lockedAt[p]
		if !ok {
			continue
		}
		var w wbuf
		w.u64(st.id)
		for _, op := range ops {
			w.blob(op.Key)
			w.blob16(op.Value)
		}
		st.pending++
		ctx.Send(p, actor.Msg{Kind: KindCommit, Data: w.Bytes()})
	}
	return 900 * sim.Nanosecond
}

func (c *Coordinator) commitAck(ctx actor.Ctx, m actor.Msg) sim.Time {
	r := rbuf{m.Data}
	id := r.u64()
	st, ok := c.inflight[id]
	if !ok {
		return 200 * sim.Nanosecond
	}
	st.pending--
	if st.pending == 0 {
		c.finish(ctx, st, OutcomeCommitted)
	}
	return 400 * sim.Nanosecond
}

func (c *Coordinator) abort(ctx actor.Ctx, st *txnState) {
	// Ring order for the same determinism reason as the other phases.
	for _, p := range c.participants {
		if _, ok := st.lockedAt[p]; !ok {
			continue
		}
		var w wbuf
		w.u64(st.id)
		for _, op := range st.lockedAt[p] {
			w.blob(op.Key)
		}
		ctx.Send(p, actor.Msg{Kind: KindAbort, Data: w.Bytes()})
	}
	c.finish(ctx, st, OutcomeAborted)
}

func (c *Coordinator) finish(ctx actor.Ctx, st *txnState, outcome Outcome) {
	delete(c.inflight, st.id)
	if outcome == OutcomeCommitted {
		c.Committed++
	} else {
		c.Aborted++
	}
	resp := st.client
	resp.Data = append([]byte{byte(outcome)}, encodeReadResults(st)...)
	ctx.Reply(resp)
}

// encodeReadResults packs the read-set values for the client.
func encodeReadResults(st *txnState) []byte {
	var w wbuf
	for _, op := range st.txn.Reads {
		w.blob(op.Key)
		w.blob16(st.readVals[string(op.Key)])
	}
	return w.Bytes()
}

// DecodeOutcome splits a client response into outcome and read values.
func DecodeOutcome(p []byte) (Outcome, map[string][]byte) {
	if len(p) == 0 {
		return 0, nil
	}
	out := Outcome(p[0])
	r := rbuf{p[1:]}
	vals := map[string][]byte{}
	for r.more() {
		k := string(r.blob())
		vals[k] = append([]byte(nil), r.blob16()...)
	}
	return out, vals
}
