package dt

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestStorePutGet(t *testing.T) {
	s := NewStore()
	s.Put([]byte("k1"), &Record{Value: []byte("v1"), Version: 1})
	s.Put([]byte("k2"), &Record{Value: []byte("v2"), Version: 2})
	if r := s.Get([]byte("k1")); r == nil || string(r.Value) != "v1" {
		t.Fatalf("Get(k1) = %v", r)
	}
	if r := s.Get([]byte("missing")); r != nil {
		t.Fatal("missing key returned a record")
	}
	// Overwrite replaces.
	s.Put([]byte("k1"), &Record{Value: []byte("v1b"), Version: 3})
	if r := s.Get([]byte("k1")); string(r.Value) != "v1b" || s.Len() != 2 {
		t.Fatalf("overwrite broken: %v len=%d", r, s.Len())
	}
}

func TestStoreSplitsAndDoubles(t *testing.T) {
	s := NewStore()
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		s.Put(k, &Record{Value: k, Version: uint64(i)})
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Splits == 0 || s.Doublings == 0 {
		t.Fatalf("no splits (%d) or doublings (%d) after 1000 inserts", s.Splits, s.Doublings)
	}
	// All keys still retrievable after restructuring.
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		r := s.Get(k)
		if r == nil || !bytes.Equal(r.Value, k) {
			t.Fatalf("key %d lost after splits", i)
		}
	}
	g, l := s.Depths()
	if l > g {
		t.Fatalf("local depth %d exceeds global %d", l, g)
	}
}

// Property: the extendible hash table behaves exactly like a map under
// random insert/overwrite sequences.
func TestStoreMatchesMapProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewStore()
		ref := map[string]uint64{}
		for i, op := range ops {
			k := []byte(fmt.Sprintf("k%d", op%300))
			s.Put(k, &Record{Version: uint64(i)})
			ref[string(k)] = uint64(i)
		}
		if s.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			r := s.Get([]byte(k))
			if r == nil || r.Version != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTxnCodecRoundTrip(t *testing.T) {
	in := Txn{
		Reads:  []Op{{Key: []byte("r1")}, {Key: []byte("r2")}},
		Writes: []Op{{Key: []byte("w1"), Value: []byte("value-1")}},
	}
	out, ok := DecodeTxn(EncodeTxn(in))
	if !ok {
		t.Fatal("decode failed")
	}
	if len(out.Reads) != 2 || len(out.Writes) != 1 {
		t.Fatalf("shape: %+v", out)
	}
	if string(out.Writes[0].Value) != "value-1" || string(out.Reads[1].Key) != "r2" {
		t.Fatalf("content: %+v", out)
	}
}

func TestTxnCodecMalformedInput(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},
		{5, 0}, // claims 5 reads, no data
		{1, 0, 3, 'a'},
		EncodeTxn(Txn{Reads: []Op{{Key: []byte("x")}}})[:2],
	}
	for i, p := range cases {
		if _, ok := DecodeTxn(p); ok && p != nil && len(p) < 4 {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
	// A hostile 2-byte count with truncated body must not panic.
	defer func() {
		if recover() != nil {
			t.Fatal("decoder panicked on malformed input")
		}
	}()
	DecodeTxn([]byte{255, 255, 1, 2, 3})
}

func TestPartitionStable(t *testing.T) {
	k := []byte("some-key")
	p := Partition(k, 4)
	for i := 0; i < 10; i++ {
		if Partition(k, 4) != p {
			t.Fatal("partition not stable")
		}
	}
	if p < 0 || p >= 4 {
		t.Fatalf("partition %d out of range", p)
	}
	// Different keys spread across partitions.
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[Partition([]byte(fmt.Sprintf("k%d", i)), 4)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d partitions used", len(seen))
	}
}

func TestDecodeOutcome(t *testing.T) {
	out, vals := DecodeOutcome(nil)
	if out != 0 || vals != nil {
		t.Fatal("empty outcome")
	}
	out, vals = DecodeOutcome([]byte{byte(OutcomeCommitted)})
	if out != OutcomeCommitted || len(vals) != 0 {
		t.Fatalf("bare outcome: %d %v", out, vals)
	}
}
