package dt_test

import (
	"fmt"
	"testing"

	"repro/internal/actor"
	"repro/internal/apps/dt"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

// deployDT builds the paper's DT topology: coordinator on one node,
// participants on two others, logging actor on the coordinator's host.
func deployDT(t *testing.T, offload bool) (*core.Cluster, *workload.Client, *dt.Coordinator, []*dt.Store) {
	t.Helper()
	cl := core.NewCluster(7)
	mk := func(name string) *core.Node {
		cfg := core.Config{Name: name}
		if offload {
			cfg.NIC = spec.LiquidIOII_CN2350()
		}
		return cl.AddNode(cfg)
	}
	nc := mk("coord")
	n1 := mk("part1")
	n2 := mk("part2")

	st1, st2 := dt.NewStore(), dt.NewStore()
	p1 := dt.NewParticipant(101, st1)
	p2 := dt.NewParticipant(102, st2)
	logger := dt.NewLogger(103, nil)
	coord := dt.NewCoordinator(100, []actor.ID{101, 102}, 103)

	if err := n1.Register(p1, offload, 0); err != nil {
		t.Fatal(err)
	}
	if err := n2.Register(p2, offload, 0); err != nil {
		t.Fatal(err)
	}
	if err := nc.Register(logger, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := nc.Register(coord.Actor, offload, 0); err != nil {
		t.Fatal(err)
	}
	client := workload.NewClient(cl, "cli", 10)
	return cl, client, coord, []*dt.Store{st1, st2}
}

func txnReq(i uint64, withWrite bool) workload.Request {
	txn := dt.Txn{
		Reads: []dt.Op{
			{Key: []byte(fmt.Sprintf("r-%d", i%50))},
			{Key: []byte(fmt.Sprintf("r-%d", (i+7)%50))},
		},
	}
	if withWrite {
		txn.Writes = []dt.Op{{
			Key:   []byte(fmt.Sprintf("w-%d", i%20)),
			Value: []byte(fmt.Sprintf("val-%d", i)),
		}}
	}
	return workload.Request{
		Node: "coord", Dst: 100, Kind: dt.KindTxn,
		Data: dt.EncodeTxn(txn), Size: 512, FlowID: i,
	}
}

func TestTransactionsCommitOnNIC(t *testing.T) {
	cl, client, coord, stores := deployDT(t, true)
	// Spaced transactions: no contention, all should commit.
	for i := uint64(0); i < 40; i++ {
		at := sim.Time(i) * 100 * sim.Microsecond
		i := i
		cl.Eng.At(at, func() { client.Send(txnReq(i, true)) })
	}
	cl.Eng.Run()
	if client.Received != 40 {
		t.Fatalf("client got %d of 40 responses", client.Received)
	}
	if coord.Committed != 40 || coord.Aborted != 0 {
		t.Fatalf("committed %d aborted %d", coord.Committed, coord.Aborted)
	}
	// Writes landed in the participant stores with bumped versions.
	total := 0
	for _, s := range stores {
		total += s.Len()
	}
	if total < 20 { // 20 distinct write keys plus read-miss records
		t.Fatalf("stores hold %d records", total)
	}
	for _, s := range stores {
		for i := 0; i < 20; i++ {
			if r := s.Get([]byte(fmt.Sprintf("w-%d", i))); r != nil {
				if r.Locked {
					t.Fatalf("key w-%d left locked", i)
				}
				if r.Version == 0 {
					t.Fatalf("key w-%d version not bumped", i)
				}
			}
		}
	}
}

func TestTransactionsReadYourWrites(t *testing.T) {
	cl, client, _, _ := deployDT(t, true)
	var got map[string][]byte
	write := dt.Txn{Writes: []dt.Op{{Key: []byte("k"), Value: []byte("hello")}}}
	read := dt.Txn{Reads: []dt.Op{{Key: []byte("k")}}}
	client.Send(workload.Request{
		Node: "coord", Dst: 100, Kind: dt.KindTxn, Data: dt.EncodeTxn(write), Size: 256,
		OnResp: func(resp actor.Msg) {
			client.Send(workload.Request{
				Node: "coord", Dst: 100, Kind: dt.KindTxn, Data: dt.EncodeTxn(read), Size: 256,
				OnResp: func(resp actor.Msg) {
					out, vals := dt.DecodeOutcome(resp.Data)
					if out != dt.OutcomeCommitted {
						t.Errorf("read txn outcome %d", out)
					}
					got = vals
				},
			})
		},
	})
	cl.Eng.Run()
	if string(got["k"]) != "hello" {
		t.Fatalf("read-your-writes: got %q", got["k"])
	}
}

func TestContendedTransactionsAbort(t *testing.T) {
	cl, client, coord, _ := deployDT(t, true)
	// A storm of transactions all writing the same key: lock conflicts
	// must produce aborts, and every abort must release its locks so
	// later transactions can still commit.
	for i := uint64(0); i < 100; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*2*sim.Microsecond, func() {
			txn := dt.Txn{
				Reads:  []dt.Op{{Key: []byte("hot-r")}},
				Writes: []dt.Op{{Key: []byte("hot-w"), Value: []byte(fmt.Sprintf("%d", i))}},
			}
			client.Send(workload.Request{
				Node: "coord", Dst: 100, Kind: dt.KindTxn,
				Data: dt.EncodeTxn(txn), Size: 256, FlowID: i,
			})
		})
	}
	cl.Eng.Run()
	if client.Received != 100 {
		t.Fatalf("responses %d of 100", client.Received)
	}
	if coord.Aborted == 0 {
		t.Fatal("no aborts under heavy write contention")
	}
	if coord.Committed == 0 {
		t.Fatal("no commits at all: aborts are not releasing locks")
	}
	if coord.Committed+coord.Aborted != 100 {
		t.Fatalf("outcome accounting: %d + %d != 100", coord.Committed, coord.Aborted)
	}
}

func TestCoordinatorLogCheckpoints(t *testing.T) {
	cl, client, coord, _ := deployDT(t, true)
	// Enough committed write transactions to overflow the 64KB log.
	const n = 3000
	done := 0
	var issue func(i uint64)
	issue = func(i uint64) {
		if i >= n {
			return
		}
		txn := dt.Txn{Writes: []dt.Op{{
			Key:   []byte(fmt.Sprintf("k-%d", i%500)),
			Value: make([]byte, 16),
		}}}
		client.Send(workload.Request{
			Node: "coord", Dst: 100, Kind: dt.KindTxn,
			Data: dt.EncodeTxn(txn), Size: 128, FlowID: i,
			OnResp: func(actor.Msg) { done++; issue(i + 1) },
		})
	}
	issue(0)
	cl.Eng.Run()
	if done != n {
		t.Fatalf("completed %d of %d", done, n)
	}
	if coord.Checkpoints == 0 {
		t.Fatal("log never checkpointed despite overflow volume")
	}
}

func TestTransactionsOnBaseline(t *testing.T) {
	cl, client, coord, _ := deployDT(t, false)
	for i := uint64(0); i < 20; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*100*sim.Microsecond, func() { client.Send(txnReq(i, true)) })
	}
	cl.Eng.Run()
	if coord.Committed != 20 {
		t.Fatalf("baseline committed %d of 20", coord.Committed)
	}
}

// TestDTLatencyAdvantage reproduces §5.3's direction: iPipe cuts DT
// request latency versus the DPDK baseline at low load.
func TestDTLatencyAdvantage(t *testing.T) {
	run := func(offload bool) float64 {
		cl, client, _, _ := deployDT(t, offload)
		for i := uint64(0); i < 50; i++ {
			i := i
			cl.Eng.At(sim.Time(i)*200*sim.Microsecond, func() { client.Send(txnReq(i, true)) })
		}
		cl.Eng.Run()
		if client.Received != 50 {
			t.Fatalf("offload=%v: %d of 50", offload, client.Received)
		}
		return client.Lat.Percentile(50)
	}
	base, ipipe := run(false), run(true)
	if ipipe >= base {
		t.Fatalf("iPipe DT median %vµs should beat baseline %vµs", ipipe, base)
	}
}
