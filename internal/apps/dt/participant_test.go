package dt

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/sim"
)

// sinkCtx captures sends for handler-level protocol tests.
type sinkCtx struct {
	sent []actor.Msg
}

func (c *sinkCtx) Now() sim.Time  { return 0 }
func (c *sinkCtx) Self() actor.ID { return 999 }
func (c *sinkCtx) Send(dst actor.ID, m actor.Msg) {
	m.Dst = dst
	c.sent = append(c.sent, m)
}
func (c *sinkCtx) Reply(m actor.Msg)                                     {}
func (c *sinkCtx) Alloc(size int) (uint64, error)                        { return 1, nil }
func (c *sinkCtx) Free(obj uint64) error                                 { return nil }
func (c *sinkCtx) ObjRead(o uint64, off, n int) ([]byte, error)          { return make([]byte, n), nil }
func (c *sinkCtx) ObjWrite(o uint64, off int, p []byte) error            { return nil }
func (c *sinkCtx) ObjMigrate(o uint64) (int, error)                      { return 0, nil }
func (c *sinkCtx) ObjMemset(o uint64, off, n int, b byte) error          { return nil }
func (c *sinkCtx) ObjMemcpy(d uint64, do int, s uint64, so, n int) error { return nil }
func (c *sinkCtx) ObjMemmove(o uint64, do, so, n int) error              { return nil }
func (c *sinkCtx) Accel(string, int, int) (sim.Time, bool)               { return 0, false }
func (c *sinkCtx) OnNIC() bool                                           { return true }

// phase1Msg builds a KindPhase1 message for one read and one lock key.
func phase1Msg(txn uint64, reads, locks [][]byte) actor.Msg {
	var w wbuf
	w.u64(txn)
	w.u8(byte(len(reads)))
	for _, k := range reads {
		w.blob(k)
	}
	w.u8(byte(len(locks)))
	for _, k := range locks {
		w.blob(k)
	}
	return actor.Msg{Kind: KindPhase1, Src: 999, Data: w.Bytes()}
}

func parsePhase1Resp(t *testing.T, m actor.Msg) (txn uint64, ok bool, vals map[string][]byte, vers map[string]uint64) {
	t.Helper()
	if m.Kind != KindPhase1Resp {
		t.Fatalf("kind %d", m.Kind)
	}
	r := rbuf{m.Data}
	txn = r.u64()
	ok = r.u8() == 1
	n := int(r.u8())
	vals = map[string][]byte{}
	vers = map[string]uint64{}
	for i := 0; i < n; i++ {
		k := string(r.blob())
		vals[k] = append([]byte(nil), r.blob16()...)
		vers[k] = r.u64()
	}
	return
}

func TestParticipantPhase1LocksAndReads(t *testing.T) {
	st := NewStore()
	st.Put([]byte("r1"), &Record{Value: []byte("v1"), Version: 3})
	p := NewParticipant(1, st)
	ctx := &sinkCtx{}
	p.OnMessage(ctx, phase1Msg(7, [][]byte{[]byte("r1")}, [][]byte{[]byte("w1")}))
	txn, ok, vals, vers := parsePhase1Resp(t, ctx.sent[0])
	if txn != 7 || !ok {
		t.Fatalf("txn=%d ok=%v", txn, ok)
	}
	if string(vals["r1"]) != "v1" || vers["r1"] != 3 {
		t.Fatalf("read result %q v%d", vals["r1"], vers["r1"])
	}
	if rec := st.Get([]byte("w1")); rec == nil || !rec.Locked {
		t.Fatal("write key not locked")
	}
}

func TestParticipantPhase1FailsOnLockedKey(t *testing.T) {
	st := NewStore()
	st.Put([]byte("w1"), &Record{Locked: true})
	p := NewParticipant(1, st)
	ctx := &sinkCtx{}
	p.OnMessage(ctx, phase1Msg(8, nil, [][]byte{[]byte("w1")}))
	_, ok, _, _ := parsePhase1Resp(t, ctx.sent[0])
	if ok {
		t.Fatal("phase 1 succeeded against a held lock")
	}
}

func TestParticipantValidateDetectsVersionChange(t *testing.T) {
	st := NewStore()
	st.Put([]byte("k"), &Record{Version: 5})
	p := NewParticipant(1, st)
	validate := func(ver uint64) bool {
		ctx := &sinkCtx{}
		var w wbuf
		w.u64(9)
		w.blob([]byte("k"))
		w.u64(ver)
		p.OnMessage(ctx, actor.Msg{Kind: KindValidate, Src: 999, Data: w.Bytes()})
		r := rbuf{ctx.sent[0].Data}
		r.u64()
		return r.u8() == 1
	}
	if !validate(5) {
		t.Fatal("matching version failed validation")
	}
	if validate(4) {
		t.Fatal("stale version passed validation")
	}
	// A locked key fails validation regardless of version.
	st.Get([]byte("k")).Locked = true
	if validate(5) {
		t.Fatal("locked key passed validation")
	}
}

func TestParticipantCommitInstallsAndUnlocks(t *testing.T) {
	st := NewStore()
	st.Put([]byte("w"), &Record{Value: []byte("old"), Version: 2, Locked: true})
	p := NewParticipant(1, st)
	ctx := &sinkCtx{}
	var w wbuf
	w.u64(10)
	w.blob([]byte("w"))
	w.blob16([]byte("new"))
	p.OnMessage(ctx, actor.Msg{Kind: KindCommit, Src: 999, Data: w.Bytes()})
	rec := st.Get([]byte("w"))
	if string(rec.Value) != "new" || rec.Version != 3 || rec.Locked {
		t.Fatalf("post-commit record: %q v%d locked=%v", rec.Value, rec.Version, rec.Locked)
	}
	if ctx.sent[0].Kind != KindCommitAck {
		t.Fatal("no commit ack")
	}
}

func TestParticipantAbortUnlocksOnly(t *testing.T) {
	st := NewStore()
	st.Put([]byte("w"), &Record{Value: []byte("keep"), Version: 2, Locked: true})
	p := NewParticipant(1, st)
	ctx := &sinkCtx{}
	var w wbuf
	w.u64(11)
	w.blob([]byte("w"))
	p.OnMessage(ctx, actor.Msg{Kind: KindAbort, Src: 999, Data: w.Bytes()})
	rec := st.Get([]byte("w"))
	if rec.Locked {
		t.Fatal("abort did not unlock")
	}
	if string(rec.Value) != "keep" || rec.Version != 2 {
		t.Fatal("abort modified the record")
	}
	if len(ctx.sent) != 0 {
		t.Fatal("abort should not be acknowledged")
	}
}
