// Package dt is the distributed transaction system of §4: optimistic
// concurrency control with two-phase commit, following FaSST/TAPIR-style
// designs. A coordinator actor drives the four-phase protocol (read and
// lock, validate, log, commit) against participant actors that store
// versioned records in an extensible hash table; a logging actor pinned
// to the host persists the coordinator log.
package dt

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"

	"repro/internal/sim"
)

// Record is a versioned, lockable value. LockedAt stamps lock
// acquisition so participants can expire locks whose owning coordinator
// died mid-2PC (see DefaultLockLease).
type Record struct {
	Value    []byte
	Version  uint64
	Locked   bool
	LockedAt sim.Time
}

// bucketCap is the extensible hash table's bucket capacity; overflowing
// a bucket splits it (doubling the directory when local depth reaches
// global depth).
const bucketCap = 4

type bucket struct {
	localDepth uint8
	keys       [][]byte
	recs       []*Record
}

// Store is an extensible (extendible) hash table of versioned records —
// the participant data store of §4.
type Store struct {
	globalDepth uint8
	dir         []*bucket

	// Splits counts bucket splits; Doublings directory doublings.
	Splits    uint64
	Doublings uint64
}

// NewStore returns an empty table with a depth-1 directory.
func NewStore() *Store {
	b0, b1 := &bucket{localDepth: 1}, &bucket{localDepth: 1}
	return &Store{globalDepth: 1, dir: []*bucket{b0, b1}}
}

func hashKey(k []byte) uint64 {
	h := fnv.New64a()
	h.Write(k)
	return h.Sum64()
}

func (s *Store) bucketFor(k []byte) *bucket {
	idx := hashKey(k) & ((1 << s.globalDepth) - 1)
	return s.dir[idx]
}

// Get returns the record for a key, or nil.
func (s *Store) Get(k []byte) *Record {
	b := s.bucketFor(k)
	for i, bk := range b.keys {
		if bytes.Equal(bk, k) {
			return b.recs[i]
		}
	}
	return nil
}

// Put inserts or replaces a record (splitting buckets as needed).
func (s *Store) Put(k []byte, r *Record) {
	for {
		b := s.bucketFor(k)
		for i, bk := range b.keys {
			if bytes.Equal(bk, k) {
				b.recs[i] = r
				return
			}
		}
		if len(b.keys) < bucketCap {
			b.keys = append(b.keys, append([]byte(nil), k...))
			b.recs = append(b.recs, r)
			return
		}
		s.split(b)
	}
}

// split divides an overflowing bucket, doubling the directory if its
// local depth has caught up with the global depth.
func (s *Store) split(b *bucket) {
	if b.localDepth == s.globalDepth {
		// Double the directory.
		nd := make([]*bucket, len(s.dir)*2)
		copy(nd, s.dir)
		copy(nd[len(s.dir):], s.dir)
		s.dir = nd
		s.globalDepth++
		s.Doublings++
	}
	b.localDepth++
	nb := &bucket{localDepth: b.localDepth}
	bit := uint64(1) << (b.localDepth - 1)
	keep := b.keys[:0]
	keepR := b.recs[:0]
	for i, k := range b.keys {
		if hashKey(k)&bit != 0 {
			nb.keys = append(nb.keys, k)
			nb.recs = append(nb.recs, b.recs[i])
		} else {
			keep = append(keep, k)
			keepR = append(keepR, b.recs[i])
		}
	}
	b.keys, b.recs = keep, keepR
	// Rewire directory entries that should now point at the new bucket.
	for i := range s.dir {
		if s.dir[i] == b && uint64(i)&bit != 0 {
			s.dir[i] = nb
		}
	}
	s.Splits++
}

// Len counts stored records.
func (s *Store) Len() int {
	seen := map[*bucket]bool{}
	n := 0
	for _, b := range s.dir {
		if !seen[b] {
			seen[b] = true
			n += len(b.keys)
		}
	}
	return n
}

// Locks counts records whose lock is live at time now under the given
// lease (lease ≤ 0 counts every set lock flag, expired or not). The
// recovery invariant after coordinator/participant failures is that
// this reaches zero once in-flight transactions resolve.
func (s *Store) Locks(now, lease sim.Time) int {
	seen := map[*bucket]bool{}
	n := 0
	for _, b := range s.dir {
		if !seen[b] {
			seen[b] = true
			for _, r := range b.recs {
				if lockHeld(r, now, lease) {
					n++
				}
			}
		}
	}
	return n
}

// Depths reports (global, max local) depths for invariant checks.
func (s *Store) Depths() (uint8, uint8) {
	var maxLocal uint8
	seen := map[*bucket]bool{}
	for _, b := range s.dir {
		if !seen[b] {
			seen[b] = true
			if b.localDepth > maxLocal {
				maxLocal = b.localDepth
			}
		}
	}
	return s.globalDepth, maxLocal
}

// --- wire encoding ---------------------------------------------------

// Op is one transaction operation.
type Op struct {
	Key   []byte
	Value []byte // nil for reads
}

// Txn is a client transaction: a read set and a write set.
type Txn struct {
	Reads  []Op
	Writes []Op
}

// EncodeTxn serializes a transaction for the client request payload.
func EncodeTxn(t Txn) []byte {
	var b bytes.Buffer
	writeOps := func(ops []Op, withVal bool) {
		var n [2]byte
		binary.LittleEndian.PutUint16(n[:], uint16(len(ops)))
		b.Write(n[:])
		for _, op := range ops {
			b.WriteByte(byte(len(op.Key)))
			b.Write(op.Key)
			if withVal {
				var vl [2]byte
				binary.LittleEndian.PutUint16(vl[:], uint16(len(op.Value)))
				b.Write(vl[:])
				b.Write(op.Value)
			}
		}
	}
	writeOps(t.Reads, false)
	writeOps(t.Writes, true)
	return b.Bytes()
}

// DecodeTxn parses a transaction payload; ok is false on malformed
// input (a hostile client must not crash the coordinator).
func DecodeTxn(p []byte) (Txn, bool) {
	var t Txn
	readOps := func(withVal bool) ([]Op, bool) {
		if len(p) < 2 {
			return nil, false
		}
		n := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		ops := make([]Op, 0, n)
		for i := 0; i < n; i++ {
			if len(p) < 1 {
				return nil, false
			}
			kl := int(p[0])
			p = p[1:]
			if len(p) < kl {
				return nil, false
			}
			op := Op{Key: append([]byte(nil), p[:kl]...)}
			p = p[kl:]
			if withVal {
				if len(p) < 2 {
					return nil, false
				}
				vl := int(binary.LittleEndian.Uint16(p))
				p = p[2:]
				if len(p) < vl {
					return nil, false
				}
				op.Value = append([]byte(nil), p[:vl]...)
				p = p[vl:]
			}
			ops = append(ops, op)
		}
		return ops, true
	}
	var ok bool
	if t.Reads, ok = readOps(false); !ok {
		return Txn{}, false
	}
	if t.Writes, ok = readOps(true); !ok {
		return Txn{}, false
	}
	return t, true
}
