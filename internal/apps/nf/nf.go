// Package nf implements the two network functions of §5.7 on iPipe: a
// firewall matching wildcard rules with a software TCAM, and an IPSec
// gateway datapath doing AES-256-CTR encryption with SHA-1
// authentication, accelerated by the NIC's crypto engines where
// available. The paper uses these to compare multicore SoC SmartNICs
// against FPGA solutions (ClickNP) for classic NF workloads.
package nf

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha1"
	"encoding/binary"

	"repro/internal/actor"
	"repro/internal/nstack"
	"repro/internal/sim"
)

// Message kinds.
const (
	// KindPacket carries a packet through a network function.
	KindPacket actor.Kind = iota + 64
)

// Verdict is the classification result returned in the first response
// byte.
type Verdict byte

// Verdicts.
const (
	VerdictAllow Verdict = 1
	VerdictDeny  Verdict = 2
)

// String names the verdict for logs and experiment output.
func (v Verdict) String() string {
	switch v {
	case VerdictAllow:
		return "allow"
	case VerdictDeny:
		return "deny"
	}
	return "invalid"
}

// VerdictOf reads the verdict byte of a response (0 on empty).
func VerdictOf(p []byte) Verdict {
	if len(p) == 0 {
		return 0
	}
	return Verdict(p[0])
}

// FiveTuple is the classification key.
type FiveTuple struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

// Encode packs a five-tuple into 13 bytes.
func (t FiveTuple) Encode() []byte {
	out := make([]byte, 13)
	binary.LittleEndian.PutUint32(out, t.SrcIP)
	binary.LittleEndian.PutUint32(out[4:], t.DstIP)
	binary.LittleEndian.PutUint16(out[8:], t.SrcPort)
	binary.LittleEndian.PutUint16(out[10:], t.DstPort)
	out[12] = t.Proto
	return out
}

// TupleFromFrame classifies a real Ethernet/IPv4/UDP frame through the
// shim networking stack (nstack): the firewall's production ingress
// path, as opposed to the pre-parsed 13-byte test vector format.
func TupleFromFrame(frame []byte) (FiveTuple, bool) {
	w := nstack.NewWQE(frame, 0)
	if err := w.Decap(); err != nil {
		return FiveTuple{}, false
	}
	return FiveTuple{
		SrcIP:   w.Headers.SrcIP,
		DstIP:   w.Headers.DstIP,
		SrcPort: w.Headers.SrcPort,
		DstPort: w.Headers.DstPort,
		Proto:   nstack.ProtoUDP,
	}, true
}

// DecodeFiveTuple unpacks a tuple; ok is false on short input.
func DecodeFiveTuple(p []byte) (FiveTuple, bool) {
	if len(p) < 13 {
		return FiveTuple{}, false
	}
	return FiveTuple{
		SrcIP:   binary.LittleEndian.Uint32(p),
		DstIP:   binary.LittleEndian.Uint32(p[4:]),
		SrcPort: binary.LittleEndian.Uint16(p[8:]),
		DstPort: binary.LittleEndian.Uint16(p[10:]),
		Proto:   p[12],
	}, true
}

// Rule is one wildcard TCAM entry: a packet matches when
// (field & Mask) == (Value & Mask) for every field. Lower Priority
// values win; Allow decides the verdict.
type Rule struct {
	Value    FiveTuple
	Mask     FiveTuple
	Priority int
	Allow    bool
}

// TCAM is a software ternary CAM: priority-ordered linear match over
// masked rules, exactly what the paper's firewall uses.
type TCAM struct {
	rules []Rule // sorted by priority
	// Lookups counts match operations, ScanDepth the total rules
	// scanned (drives the cost model).
	Lookups   uint64
	ScanDepth uint64
}

// NewTCAM builds a TCAM from rules (sorted by priority, stable).
func NewTCAM(rules []Rule) *TCAM {
	sorted := append([]Rule(nil), rules...)
	// Insertion sort keeps construction dependency-free and stable.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Priority < sorted[j-1].Priority; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return &TCAM{rules: sorted}
}

// Size returns the rule count.
func (t *TCAM) Size() int { return len(t.rules) }

func ruleMatches(r *Rule, p FiveTuple) bool {
	return p.SrcIP&r.Mask.SrcIP == r.Value.SrcIP&r.Mask.SrcIP &&
		p.DstIP&r.Mask.DstIP == r.Value.DstIP&r.Mask.DstIP &&
		p.SrcPort&r.Mask.SrcPort == r.Value.SrcPort&r.Mask.SrcPort &&
		p.DstPort&r.Mask.DstPort == r.Value.DstPort&r.Mask.DstPort &&
		p.Proto&r.Mask.Proto == r.Value.Proto&r.Mask.Proto
}

// Match returns the verdict of the highest-priority matching rule and
// how many rules were scanned. No match defaults to deny.
func (t *TCAM) Match(p FiveTuple) (bool, int) {
	t.Lookups++
	for i := range t.rules {
		t.ScanDepth++
		if ruleMatches(&t.rules[i], p) {
			return t.rules[i].Allow, i + 1
		}
	}
	return false, len(t.rules)
}

// NewFirewall builds the firewall actor. The cost model charges the
// masked-compare scan: with 8K rules and 1KB packets the paper reports
// 3.65–19.41µs per packet depending on load; a per-rule compare of
// ≈1.2ns on the reference core plus fixed parsing lands in that range
// for typical scan depths.
func NewFirewall(id actor.ID, tcam *TCAM) *actor.Actor {
	a := &actor.Actor{
		ID:        id,
		Name:      "nf-firewall",
		Exclusive: false, // read-only rule table
		MemBound:  0.45,  // Table 3 firewall: MPKI 1.6
	}
	a.OnMessage = func(ctx actor.Ctx, m actor.Msg) sim.Time {
		// Accept either a full frame (real deployments, parsed by the
		// shim nstack) or the compact 13-byte tuple encoding.
		tuple, ok := TupleFromFrame(m.Data)
		if !ok {
			tuple, ok = DecodeFiveTuple(m.Data)
		}
		if !ok {
			return 300 * sim.Nanosecond
		}
		allow, scanned := tcam.Match(tuple)
		resp := m
		if allow {
			resp.Data = []byte{byte(VerdictAllow)}
		} else {
			resp.Data = []byte{byte(VerdictDeny)}
		}
		ctx.Reply(resp)
		return 500*sim.Nanosecond + sim.Time(scanned)*1200*sim.Nanosecond/1000
	}
	return a
}

// IPSec is the gateway state: real keys, real crypto.
type IPSec struct {
	block  cipher.Block
	macKey []byte
	// Processed counts packets, Accelerated those that used the NIC
	// crypto engines.
	Processed   uint64
	Accelerated uint64
}

// NewIPSecState derives the cipher and MAC keys.
func NewIPSecState(key, macKey []byte) (*IPSec, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &IPSec{block: block, macKey: macKey}, nil
}

// Seal encrypts the payload with AES-256-CTR and appends an
// HMAC-SHA1 tag; iv is derived from the sequence number.
func (s *IPSec) Seal(seq uint64, payload []byte) []byte {
	iv := make([]byte, aes.BlockSize)
	binary.LittleEndian.PutUint64(iv, seq)
	out := make([]byte, len(payload))
	cipher.NewCTR(s.block, iv).XORKeyStream(out, payload)
	mac := hmac.New(sha1.New, s.macKey)
	mac.Write(iv)
	mac.Write(out)
	return append(out, mac.Sum(nil)...)
}

// Open verifies and decrypts a sealed packet.
func (s *IPSec) Open(seq uint64, sealed []byte) ([]byte, bool) {
	if len(sealed) < sha1.Size {
		return nil, false
	}
	body := sealed[:len(sealed)-sha1.Size]
	tag := sealed[len(sealed)-sha1.Size:]
	iv := make([]byte, aes.BlockSize)
	binary.LittleEndian.PutUint64(iv, seq)
	mac := hmac.New(sha1.New, s.macKey)
	mac.Write(iv)
	mac.Write(body)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return nil, false
	}
	out := make([]byte, len(body))
	cipher.NewCTR(s.block, iv).XORKeyStream(out, body)
	return out, true
}

// NewIPSecGateway builds the gateway actor: it seals each packet and
// replies with the ciphertext. On the NIC it drives the AES and SHA-1
// engines (I4); on the host it computes inline at AES-NI speeds.
func NewIPSecGateway(id actor.ID, st *IPSec) *actor.Actor {
	a := &actor.Actor{
		ID:        id,
		Name:      "nf-ipsec",
		Exclusive: false,
		MemBound:  0.2,
	}
	a.OnMessage = func(ctx actor.Ctx, m actor.Msg) sim.Time {
		st.Processed++
		seq := m.FlowID
		sealed := st.Seal(seq, m.Data)
		resp := m
		resp.Data = append([]byte{byte(VerdictAllow)}, sealed...)
		ctx.Reply(resp)
		n := len(m.Data)
		if n == 0 {
			n = 64
		}
		// Prefer the hardware engines; ctx.Accel charges their latency.
		aesCost, aesOK := ctx.Accel("AES", n, 8)
		shaCost, shaOK := ctx.Accel("SHA-1", n, 8)
		if aesOK && shaOK {
			st.Accelerated++
			// Engine waits already charged via ctx; only framing here.
			_ = aesCost
			_ = shaCost
			return 600 * sim.Nanosecond
		}
		// Host fallback: AES-NI ≈0.75ns/B plus SHA1 ≈1.9ns/B on the
		// reference-core scale (the 2.5X/7.0X engine speedups of §2.2.3
		// emerge from this asymmetry).
		return 800*sim.Nanosecond + sim.Time(float64(n)*2.65)
	}
	return a
}

// UniformRules synthesizes n wildcard rules for experiments: a spread
// of /16-style prefixes with every 16th rule an allow.
func UniformRules(n int) []Rule {
	rules := make([]Rule, 0, n)
	for i := 0; i < n; i++ {
		rules = append(rules, Rule{
			Value: FiveTuple{
				SrcIP: uint32(i) << 16,
				Proto: uint8(i % 2 * 6),
			},
			Mask: FiveTuple{
				SrcIP: 0xffff0000,
				Proto: uint8(i % 2 * 0xff),
			},
			Priority: i,
			Allow:    i%16 == 0,
		})
	}
	return rules
}
