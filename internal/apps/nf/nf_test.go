package nf

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/actor"
	"repro/internal/nstack"
	"repro/internal/sim"
)

type fakeCtx struct {
	replies []actor.Msg
	accel   bool
}

func (f *fakeCtx) Now() sim.Time                                          { return 0 }
func (f *fakeCtx) Self() actor.ID                                         { return 0 }
func (f *fakeCtx) Send(dst actor.ID, m actor.Msg)                         {}
func (f *fakeCtx) Reply(m actor.Msg)                                      { f.replies = append(f.replies, m) }
func (f *fakeCtx) Alloc(size int) (uint64, error)                         { return 1, nil }
func (f *fakeCtx) Free(obj uint64) error                                  { return nil }
func (f *fakeCtx) ObjRead(o uint64, off, n int) ([]byte, error)           { return make([]byte, n), nil }
func (f *fakeCtx) ObjWrite(o uint64, off int, p []byte) error             { return nil }
func (f *fakeCtx) ObjMigrate(o uint64) (int, error)                       { return 0, nil }
func (f *fakeCtx) ObjMemset(o uint64, off, n int, b byte) error           { return nil }
func (f *fakeCtx) ObjMemcpy(d uint64, do int, s2 uint64, so, n int) error { return nil }
func (f *fakeCtx) ObjMemmove(o uint64, do, so, n int) error               { return nil }

func (f *fakeCtx) OnNIC() bool { return f.accel }
func (f *fakeCtx) Accel(name string, b, bs int) (sim.Time, bool) {
	if !f.accel {
		return 0, false
	}
	return sim.Microsecond, true
}

func TestFiveTupleCodec(t *testing.T) {
	in := FiveTuple{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1234, DstPort: 80, Proto: 6}
	out, ok := DecodeFiveTuple(in.Encode())
	if !ok || out != in {
		t.Fatalf("round trip: %+v", out)
	}
	if _, ok := DecodeFiveTuple([]byte{1, 2}); ok {
		t.Fatal("short input accepted")
	}
}

func TestTCAMPriorityAndWildcards(t *testing.T) {
	rules := []Rule{
		{ // specific deny for one host, high priority
			Value:    FiveTuple{SrcIP: 0x0a000005},
			Mask:     FiveTuple{SrcIP: 0xffffffff},
			Priority: 0, Allow: false,
		},
		{ // allow the enclosing /16
			Value:    FiveTuple{SrcIP: 0x0a000000},
			Mask:     FiveTuple{SrcIP: 0xffff0000},
			Priority: 1, Allow: true,
		},
		{ // allow TCP port 80 from anywhere
			Value:    FiveTuple{DstPort: 80, Proto: 6},
			Mask:     FiveTuple{DstPort: 0xffff, Proto: 0xff},
			Priority: 2, Allow: true,
		},
	}
	tc := NewTCAM(rules)
	allow, _ := tc.Match(FiveTuple{SrcIP: 0x0a000005})
	if allow {
		t.Fatal("specific deny shadowed by broader allow")
	}
	allow, _ = tc.Match(FiveTuple{SrcIP: 0x0a00ffff})
	if !allow {
		t.Fatal("/16 allow failed")
	}
	allow, _ = tc.Match(FiveTuple{SrcIP: 0xc0a80001, DstPort: 80, Proto: 6})
	if !allow {
		t.Fatal("port-80 allow failed")
	}
	allow, _ = tc.Match(FiveTuple{SrcIP: 0xc0a80001, DstPort: 22, Proto: 6})
	if allow {
		t.Fatal("default should deny")
	}
}

func TestTCAMScanDepth(t *testing.T) {
	tc := NewTCAM(UniformRules(8192))
	if tc.Size() != 8192 {
		t.Fatalf("Size = %d", tc.Size())
	}
	_, depth1 := tc.Match(FiveTuple{SrcIP: 0 << 16})        // rule 0
	_, depthN := tc.Match(FiveTuple{SrcIP: 0xdead0000 + 1}) // no match
	if depth1 != 1 {
		t.Fatalf("first-rule match scanned %d", depth1)
	}
	if depthN != 8192 {
		t.Fatalf("miss scanned %d, want full table", depthN)
	}
}

func TestTCAMPriorityOrderIndependentOfInput(t *testing.T) {
	f := func(seed uint8) bool {
		// Insert rules in rotated order; match result must not change.
		base := UniformRules(32)
		rot := int(seed) % len(base)
		rotated := append(append([]Rule(nil), base[rot:]...), base[:rot]...)
		a, b := NewTCAM(base), NewTCAM(rotated)
		probe := FiveTuple{SrcIP: uint32(seed) << 16}
		ra, _ := a.Match(probe)
		rb, _ := b.Match(probe)
		return ra == rb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFirewallActorVerdicts(t *testing.T) {
	tc := NewTCAM(UniformRules(64))
	a := NewFirewall(1, tc)
	ctx := &fakeCtx{}
	a.OnMessage(ctx, actor.Msg{Data: FiveTuple{SrcIP: 0}.Encode()})       // rule 0: allow
	a.OnMessage(ctx, actor.Msg{Data: FiveTuple{SrcIP: 1 << 16}.Encode()}) // rule 1: deny
	if len(ctx.replies) != 2 {
		t.Fatalf("replies %d", len(ctx.replies))
	}
	if VerdictOf(ctx.replies[0].Data) != VerdictAllow || VerdictOf(ctx.replies[1].Data) != VerdictDeny {
		t.Fatalf("verdicts: %v %v", ctx.replies[0].Data, ctx.replies[1].Data)
	}
}

func TestFirewallCostGrowsWithScanDepth(t *testing.T) {
	tc := NewTCAM(UniformRules(8192))
	a := NewFirewall(1, tc)
	ctx := &fakeCtx{}
	early := a.OnMessage(ctx, actor.Msg{Data: FiveTuple{SrcIP: 0}.Encode()})
	miss := a.OnMessage(ctx, actor.Msg{Data: FiveTuple{SrcIP: 0xdead0001}.Encode()})
	if miss <= early {
		t.Fatal("full scan should cost more than first-rule hit")
	}
	// §5.7: 8K rules / 1KB packets land in single-digit µs unloaded.
	if miss < 3*sim.Microsecond || miss > 25*sim.Microsecond {
		t.Fatalf("full-scan cost %v outside the paper's range", miss)
	}
}

func TestIPSecSealOpenRoundTrip(t *testing.T) {
	st, err := NewIPSecState(make([]byte, 32), []byte("mac-key"))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("the quick brown fox")
	sealed := st.Seal(7, payload)
	if bytes.Contains(sealed, payload) {
		t.Fatal("ciphertext contains plaintext")
	}
	out, ok := st.Open(7, sealed)
	if !ok || !bytes.Equal(out, payload) {
		t.Fatalf("open: %v %q", ok, out)
	}
	// Wrong sequence (IV) fails authentication.
	if _, ok := st.Open(8, sealed); ok {
		t.Fatal("wrong-seq open succeeded")
	}
	// Tampering fails authentication.
	sealed[0] ^= 1
	if _, ok := st.Open(7, sealed); ok {
		t.Fatal("tampered open succeeded")
	}
}

func TestIPSecKeyValidation(t *testing.T) {
	if _, err := NewIPSecState([]byte("short"), []byte("k")); err == nil {
		t.Fatal("bad AES key accepted")
	}
}

func TestIPSecGatewayUsesAccelerators(t *testing.T) {
	st, _ := NewIPSecState(make([]byte, 32), []byte("k"))
	a := NewIPSecGateway(2, st)

	nic := &fakeCtx{accel: true}
	nicCost := a.OnMessage(nic, actor.Msg{FlowID: 1, Data: make([]byte, 1024)})
	if st.Accelerated != 1 {
		t.Fatal("NIC path did not use engines")
	}
	host := &fakeCtx{accel: false}
	hostCost := a.OnMessage(host, actor.Msg{FlowID: 2, Data: make([]byte, 1024)})
	if st.Processed != 2 {
		t.Fatalf("processed %d", st.Processed)
	}
	// The handler-returned cost excludes engine waits (charged via ctx),
	// so the host inline path must be the more expensive handler.
	if hostCost <= nicCost {
		t.Fatalf("host inline %v should exceed NIC framing %v", hostCost, nicCost)
	}
	// Both replies carry valid ciphertext.
	for i, r := range []actor.Msg{nic.replies[0], host.replies[0]} {
		if VerdictOf(r.Data) != VerdictAllow {
			t.Fatalf("reply %d verdict", i)
		}
		if _, ok := st.Open(uint64(i+1), r.Data[1:]); !ok {
			t.Fatalf("reply %d ciphertext invalid", i)
		}
	}
}

func TestFirewallParsesRealFrames(t *testing.T) {
	tc := NewTCAM([]Rule{{
		Value:    FiveTuple{DstPort: 9000, Proto: nstack.ProtoUDP},
		Mask:     FiveTuple{DstPort: 0xffff, Proto: 0xff},
		Priority: 0, Allow: true,
	}})
	a := NewFirewall(1, tc)
	ctx := &fakeCtx{}
	src := nstack.Addr{IP: 0x0a000001, Port: 1234}
	dst := nstack.Addr{IP: 0x0a000002, Port: 9000}
	frame := nstack.Encap(src, dst, []byte("payload"), 64)
	a.OnMessage(ctx, actor.Msg{Data: frame})
	if len(ctx.replies) != 1 || VerdictOf(ctx.replies[0].Data) != VerdictAllow {
		t.Fatalf("real-frame classification failed: %v", ctx.replies)
	}
	// A corrupted frame (bad checksum) fails nstack parsing and — being
	// 13+ bytes — falls back to the tuple decoder, classifying garbage
	// as deny-by-default rather than crashing.
	frame[nstack.EthHeaderLen+13] ^= 0xff
	a.OnMessage(ctx, actor.Msg{Data: frame})
	if len(ctx.replies) != 2 {
		t.Fatal("corrupted frame not answered")
	}
}

func TestTupleFromFrameRejectsGarbage(t *testing.T) {
	if _, ok := TupleFromFrame([]byte("short")); ok {
		t.Fatal("garbage frame parsed")
	}
}
