package rkv

import (
	"fmt"

	"repro/internal/actor"
	"repro/internal/core"
)

// Replica bundles one node's four RKV actors.
type Replica struct {
	Node      *core.Node
	Consensus *Consensus
	Memtable  *Memtable
	SST       *SSTStore
}

// Deployment is a replicated key-value store over a set of nodes; the
// first node starts as the Paxos leader.
type Deployment struct {
	Replicas []*Replica
}

// Leader returns the replica currently acting as leader (nil if none).
func (d *Deployment) Leader() *Replica {
	for _, r := range d.Replicas {
		if r.Consensus.IsLeader {
			return r
		}
	}
	return nil
}

// LeaderActor returns the leader's consensus actor ID for clients.
func (d *Deployment) LeaderActor() actor.ID {
	if l := d.Leader(); l != nil {
		return l.Consensus.Actor.ID
	}
	return 0
}

// Deploy registers the RKV actor set on each node. Actor IDs are
// baseID + 4k .. baseID + 4k+3 for replica k (consensus, memtable,
// sstable reader, compactor). onNIC offloads the consensus and Memtable
// actors to the SmartNIC where one exists; the SSTable read and
// compaction actors are always host-pinned.
func Deploy(nodes []*core.Node, baseID actor.ID, memLimit int, onNIC bool) (*Deployment, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("rkv: need at least one node")
	}
	d := &Deployment{}
	// Pre-compute consensus IDs so peers can be wired before creation.
	consID := make([]actor.ID, len(nodes))
	for k := range nodes {
		consID[k] = baseID + actor.ID(4*k)
	}
	for k, n := range nodes {
		memID := baseID + actor.ID(4*k) + 1
		sstID := baseID + actor.ID(4*k) + 2
		cmpID := baseID + actor.ID(4*k) + 3
		var peers []actor.ID
		for j, id := range consID {
			if j != k {
				peers = append(peers, id)
			}
		}
		sst := NewSSTStore(0)
		mt := NewMemtable(memID, memLimit, sstID, cmpID)
		cons := NewConsensus(consID[k], peers, memID, k == 0)
		cons.BallotOffset = uint64(k)
		if err := n.Register(NewSSTReader(sstID, sst), false, 0); err != nil {
			return nil, err
		}
		if err := n.Register(NewCompactor(cmpID, sst), false, 0); err != nil {
			return nil, err
		}
		if err := n.Register(mt.Actor, onNIC, 0); err != nil {
			return nil, err
		}
		if err := n.Register(cons.Actor, onNIC, 0); err != nil {
			return nil, err
		}
		d.Replicas = append(d.Replicas, &Replica{Node: n, Consensus: cons, Memtable: mt, SST: sst})
	}
	return d, nil
}

// TagShard labels every replica's offloadable actors with a scale-out
// shard index, so execution spans and metrics attribute work per shard
// when the group is one of several in a sharded deployment.
func (d *Deployment) TagShard(s int) {
	for _, r := range d.Replicas {
		for _, a := range []*actor.Actor{r.Consensus.Actor, r.Memtable.Actor} {
			a.Shard = int32(s)
			a.Sharded = true
		}
	}
}

// PutReq / GetReq / DelReq build client request payloads.
func PutReq(key, value []byte) []byte { return EncodeCmd(Cmd{Op: OpPut, Key: key, Value: value}) }

// GetReq builds a read request payload.
func GetReq(key []byte) []byte { return EncodeCmd(Cmd{Op: OpGet, Key: key}) }

// DelReq builds a delete request payload.
func DelReq(key []byte) []byte { return EncodeCmd(Cmd{Op: OpDel, Key: key}) }
