package rkv_test

import (
	"fmt"
	"testing"

	"repro/internal/actor"
	"repro/internal/apps/rkv"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

// deployRKV builds the paper's topology: one leader and two followers.
func deployRKV(t *testing.T, offload bool, memLimit int) (*core.Cluster, *workload.Client, *rkv.Deployment) {
	t.Helper()
	cl := core.NewCluster(11)
	var nodes []*core.Node
	for i := 0; i < 3; i++ {
		cfg := core.Config{Name: fmt.Sprintf("kv%d", i)}
		if offload {
			cfg.NIC = spec.LiquidIOII_CN2350()
		}
		nodes = append(nodes, cl.AddNode(cfg))
	}
	d, err := rkv.Deploy(nodes, 200, memLimit, offload)
	if err != nil {
		t.Fatal(err)
	}
	client := workload.NewClient(cl, "cli", 10)
	return cl, client, d
}

func put(client *workload.Client, leader actor.ID, key, val string, onResp func(actor.Msg)) {
	client.Send(workload.Request{
		Node: "kv0", Dst: leader, Kind: rkv.KindReq,
		Data: rkv.PutReq([]byte(key), []byte(val)), Size: 512,
		OnResp: onResp,
	})
}

func get(client *workload.Client, leader actor.ID, key string, onResp func(actor.Msg)) {
	client.Send(workload.Request{
		Node: "kv0", Dst: leader, Kind: rkv.KindReq,
		Data: rkv.GetReq([]byte(key)), Size: 512,
		OnResp: onResp,
	})
}

func TestWriteThenRead(t *testing.T) {
	cl, client, d := deployRKV(t, true, 1<<20)
	leader := d.LeaderActor()
	var got []byte
	put(client, leader, "hello", "world", func(resp actor.Msg) {
		if rkv.StatusOf(resp.Data) != rkv.StatusOK {
			t.Errorf("put status %d", resp.Data[0])
		}
		get(client, leader, "hello", func(resp actor.Msg) {
			got = resp.Data
		})
	})
	cl.Eng.Run()
	if len(got) == 0 || rkv.StatusOf(got) != rkv.StatusOK || string(got[1:]) != "world" {
		t.Fatalf("get returned %q", got)
	}
}

func TestWritesReplicateToFollowers(t *testing.T) {
	cl, client, d := deployRKV(t, true, 1<<20)
	leader := d.LeaderActor()
	for i := 0; i < 30; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*50*sim.Microsecond, func() {
			put(client, leader, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i), nil)
		})
	}
	cl.Eng.Run()
	for ri, r := range d.Replicas {
		if r.Consensus.LogLen() != 30 {
			t.Fatalf("replica %d committed %d of 30", ri, r.Consensus.LogLen())
		}
		// Every replica's Memtable holds the data (applied via commit /
		// learn messages).
		if r.Memtable.List().Count() != 30 {
			t.Fatalf("replica %d memtable has %d entries", ri, r.Memtable.List().Count())
		}
	}
}

func TestDeleteReturnsNotFound(t *testing.T) {
	cl, client, d := deployRKV(t, true, 1<<20)
	leader := d.LeaderActor()
	var status rkv.Status
	put(client, leader, "k", "v", func(actor.Msg) {
		client.Send(workload.Request{
			Node: "kv0", Dst: leader, Kind: rkv.KindReq,
			Data: rkv.DelReq([]byte("k")), Size: 128,
			OnResp: func(actor.Msg) {
				get(client, leader, "k", func(resp actor.Msg) { status = rkv.StatusOf(resp.Data) })
			},
		})
	})
	cl.Eng.Run()
	if status != rkv.StatusNotFound {
		t.Fatalf("get after delete = %d, want NotFound", status)
	}
}

func TestMinorCompactionAndSSTableRead(t *testing.T) {
	// Tiny Memtable so writes spill into SSTables quickly.
	cl, client, d := deployRKV(t, true, 4<<10)
	leader := d.LeaderActor()
	const n = 200
	done := 0
	var issue func(i int)
	issue = func(i int) {
		if i >= n {
			return
		}
		put(client, leader, fmt.Sprintf("key-%03d", i), fmt.Sprintf("value-%04d", i), func(actor.Msg) {
			done++
			issue(i + 1)
		})
	}
	issue(0)
	cl.Eng.Run()
	if done != n {
		t.Fatalf("completed %d of %d writes", done, n)
	}
	lead := d.Replicas[0]
	if lead.Memtable.Compactions == 0 {
		t.Fatal("no minor compactions despite tiny Memtable")
	}
	if lead.SST.TotalBytes() == 0 {
		t.Fatal("SSTables empty after compactions")
	}
	// Read a key that has certainly been flushed out of the Memtable:
	// it must come back from the SSTable read actor.
	var got []byte
	get(client, leader, "key-000", func(resp actor.Msg) { got = resp.Data })
	cl.Eng.Run()
	if len(got) == 0 || rkv.StatusOf(got) != rkv.StatusOK || string(got[1:]) != "value-0000" {
		t.Fatalf("SSTable read returned %q", got)
	}
	if lead.Memtable.Misses == 0 {
		t.Fatal("read did not miss the Memtable")
	}
}

func TestZipfWorkloadMixedOps(t *testing.T) {
	cl, client, d := deployRKV(t, true, 256<<10)
	leader := d.LeaderActor()
	z := workload.NewZipf(cl.Eng.Rand(), 1000, 0.99)
	ok, notFound := 0, 0
	// 95% reads / 5% writes as in §5.1.
	client.ClosedLoop(8, 30*sim.Millisecond, func(i uint64) workload.Request {
		key := fmt.Sprintf("zipf-%06d", z.Next())
		data := rkv.GetReq([]byte(key))
		if i%20 == 0 {
			data = rkv.PutReq([]byte(key), make([]byte, 100))
		}
		return workload.Request{
			Node: "kv0", Dst: leader, Kind: rkv.KindReq, Data: data, Size: 512, FlowID: i,
			OnResp: func(resp actor.Msg) {
				switch rkv.StatusOf(resp.Data) {
				case rkv.StatusOK:
					ok++
				case rkv.StatusNotFound:
					notFound++
				default:
					t.Errorf("unexpected status %d", resp.Data[0])
				}
			},
		}
	})
	cl.Eng.Run()
	if client.Received != client.Sent {
		t.Fatalf("responses %d of %d", client.Received, client.Sent)
	}
	if ok == 0 {
		t.Fatal("no successful operations")
	}
	// Zipf reads mostly hit recently-written hot keys once warm.
	if ok < notFound/4 {
		t.Fatalf("hit ratio implausible: ok=%d notFound=%d", ok, notFound)
	}
}

func TestLeaderElection(t *testing.T) {
	cl, client, d := deployRKV(t, true, 1<<20)
	leader := d.LeaderActor()
	// Commit some writes under the old leader.
	for i := 0; i < 10; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*50*sim.Microsecond, func() {
			put(client, leader, fmt.Sprintf("pre-%d", i), "x", nil)
		})
	}
	// "Fail" the leader: deregister it, then tell replica 1 to elect.
	cl.Eng.At(2*sim.Millisecond, func() {
		d.Replicas[0].Consensus.IsLeader = false
		client.Send(workload.Request{
			Node: "kv1", Dst: d.Replicas[1].Consensus.Actor.ID, Kind: rkv.KindElect,
			Data: []byte{0}, Size: 64,
		})
	})
	cl.Eng.RunUntil(4 * sim.Millisecond)
	if !d.Replicas[1].Consensus.IsLeader {
		t.Fatal("replica 1 did not become leader")
	}
	// New leader serves writes.
	newLeader := d.Replicas[1].Consensus.Actor.ID
	var status rkv.Status
	client.Send(workload.Request{
		Node: "kv1", Dst: newLeader, Kind: rkv.KindReq,
		Data: rkv.PutReq([]byte("post"), []byte("election")), Size: 256,
		OnResp: func(resp actor.Msg) { status = rkv.StatusOf(resp.Data) },
	})
	cl.Eng.Run()
	if status != rkv.StatusOK {
		t.Fatalf("write under new leader: status %d", status)
	}
	// Followers redirect writes.
	if d.Replicas[0].Consensus.IsLeader {
		t.Fatal("old leader still believes it leads")
	}
}

func TestFollowerRedirectsWrites(t *testing.T) {
	cl, client, d := deployRKV(t, true, 1<<20)
	follower := d.Replicas[1].Consensus.Actor.ID
	var status rkv.Status
	client.Send(workload.Request{
		Node: "kv1", Dst: follower, Kind: rkv.KindReq,
		Data: rkv.PutReq([]byte("k"), []byte("v")), Size: 128,
		OnResp: func(resp actor.Msg) { status = rkv.StatusOf(resp.Data) },
	})
	cl.Eng.Run()
	if status != rkv.StatusRedirect {
		t.Fatalf("follower write status %d, want redirect", status)
	}
}

func TestRKVOnBaseline(t *testing.T) {
	cl, client, d := deployRKV(t, false, 1<<20)
	leader := d.LeaderActor()
	var got []byte
	put(client, leader, "base", "line", func(actor.Msg) {
		get(client, leader, "base", func(resp actor.Msg) { got = resp.Data })
	})
	cl.Eng.Run()
	if len(got) == 0 || rkv.StatusOf(got) != rkv.StatusOK || string(got[1:]) != "line" {
		t.Fatalf("baseline RKV broken: %q", got)
	}
	_ = d
}
