package rkv

import (
	"bytes"
	"encoding/binary"
	"sort"

	"repro/internal/actor"
	"repro/internal/sim"
)

// Message kinds of the RKV application.
const (
	// KindReq is the client request (EncodeCmd payload).
	KindReq actor.Kind = iota + 32
	// KindGet asks the Memtable (or SSTable reader) for a key.
	KindGet
	// KindApply installs a committed write into the Memtable.
	KindApply
	// KindMinorCompact ships a drained Memtable to the compaction actor.
	KindMinorCompact
	// KindAccept / KindAccepted / KindLearn are Multi-Paxos phase-2/3
	// messages; KindPrepare / KindPromise drive leader election.
	KindAccept
	KindAccepted
	KindLearn
	KindPrepare
	KindPromise
	// KindElect tells a replica to run for leader (sent by an operator
	// or failure detector when the old leader dies).
	KindElect
)

// Op codes inside commands.
const (
	OpGet byte = iota + 1
	OpPut
	OpDel
)

// Status is the response status code (first byte of the client
// response). A typed code keeps RKV statuses out of the shared byte
// namespace of the other applications' outcomes.
type Status byte

// Response status codes.
const (
	StatusOK       Status = 1
	StatusNotFound Status = 2
	StatusRedirect Status = 3 // not the leader
)

// String names the status for logs and experiment output.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not-found"
	case StatusRedirect:
		return "redirect"
	}
	return "invalid"
}

// StatusOf extracts the status from a client response payload.
func StatusOf(p []byte) Status {
	if len(p) == 0 {
		return 0
	}
	return Status(p[0])
}

// Cmd is one key-value command.
type Cmd struct {
	Op    byte
	Key   []byte
	Value []byte
}

// EncodeCmd serializes a command.
func EncodeCmd(c Cmd) []byte {
	out := make([]byte, 0, 1+1+len(c.Key)+2+len(c.Value))
	out = append(out, c.Op, byte(len(c.Key)))
	out = append(out, c.Key...)
	var vl [2]byte
	binary.LittleEndian.PutUint16(vl[:], uint16(len(c.Value)))
	out = append(out, vl[:]...)
	out = append(out, c.Value...)
	return out
}

// DecodeCmd parses a command; ok is false on malformed input.
func DecodeCmd(p []byte) (Cmd, bool) {
	if len(p) < 4 {
		return Cmd{}, false
	}
	c := Cmd{Op: p[0]}
	kl := int(p[1])
	p = p[2:]
	if len(p) < kl+2 {
		return Cmd{}, false
	}
	c.Key = append([]byte(nil), p[:kl]...)
	p = p[kl:]
	vl := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) < vl {
		return Cmd{}, false
	}
	c.Value = append([]byte(nil), p[:vl]...)
	return c, true
}

// EncodeEntries / DecodeEntries serialize Memtable drains for the
// minor-compaction message.
func EncodeEntries(es []Entry) []byte {
	var b bytes.Buffer
	for _, e := range es {
		b.WriteByte(byte(len(e.Key)))
		b.Write(e.Key)
		if e.Tombstone {
			b.WriteByte(1)
			continue
		}
		b.WriteByte(0)
		var vl [4]byte
		binary.LittleEndian.PutUint32(vl[:], uint32(len(e.Value)))
		b.Write(vl[:])
		b.Write(e.Value)
	}
	return b.Bytes()
}

// DecodeEntries parses a minor-compaction payload.
func DecodeEntries(p []byte) []Entry {
	var out []Entry
	for len(p) >= 2 {
		kl := int(p[0])
		p = p[1:]
		if len(p) < kl+1 {
			break
		}
		e := Entry{Key: append([]byte(nil), p[:kl]...)}
		p = p[kl:]
		tomb := p[0]
		p = p[1:]
		if tomb == 1 {
			e.Tombstone = true
			out = append(out, e)
			continue
		}
		if len(p) < 4 {
			break
		}
		vl := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if len(p) < vl {
			break
		}
		e.Value = append([]byte(nil), p[:vl]...)
		p = p[vl:]
		out = append(out, e)
	}
	return out
}

// --- SSTables ---------------------------------------------------------

// Run is a sorted, deduplicated sequence of entries.
type Run []Entry

// SSTStore is the on-disk level structure shared by the SSTable read
// actor and the compaction actor. In the paper both actors live on the
// host because they need the persistent store; the disk — not memory —
// is the shared substrate, so sharing this struct between exactly those
// two actors preserves the no-shared-memory actor rule in spirit.
type SSTStore struct {
	// Levels[i] holds the runs of level i, newest first. Level limits
	// grow exponentially (×10 per level, as in LevelDB).
	Levels [][]Run
	// BaseLimit is level 1's byte limit; level i allows BaseLimit·10^(i-1).
	BaseLimit int
	// L0Runs bounds level 0 by run count.
	L0Runs int

	// MinorCompactions/MajorCompactions count events.
	MinorCompactions uint64
	MajorCompactions uint64
}

// NewSSTStore builds an empty store.
func NewSSTStore(baseLimit int) *SSTStore {
	if baseLimit <= 0 {
		baseLimit = 4 << 20
	}
	return &SSTStore{BaseLimit: baseLimit, L0Runs: 4}
}

func runBytes(r Run) int {
	n := 0
	for _, e := range r {
		n += len(e.Key) + len(e.Value)
	}
	return n
}

func levelBytes(runs []Run) int {
	n := 0
	for _, r := range runs {
		n += runBytes(r)
	}
	return n
}

// AddL0 installs a new level-0 run (a drained Memtable) and performs
// any cascading major compactions. It returns the bytes rewritten,
// which the compaction actor charges as work.
func (s *SSTStore) AddL0(entries []Entry) int {
	run := normalizeRun(entries)
	if len(s.Levels) == 0 {
		s.Levels = append(s.Levels, nil)
	}
	s.Levels[0] = append([]Run{run}, s.Levels[0]...)
	s.MinorCompactions++
	rewritten := 0
	// Cascade: compact level i into i+1 while over limit.
	for i := 0; i < len(s.Levels); i++ {
		over := false
		if i == 0 {
			over = len(s.Levels[0]) > s.L0Runs
		} else {
			limit := s.BaseLimit
			for k := 1; k < i; k++ {
				limit *= 10
			}
			over = levelBytes(s.Levels[i]) > limit
		}
		if !over {
			continue
		}
		if i+1 >= len(s.Levels) {
			s.Levels = append(s.Levels, nil)
		}
		// Merge all runs of level i and i+1 into one run at i+1.
		var all []Run
		all = append(all, s.Levels[i]...)
		all = append(all, s.Levels[i+1]...)
		merged := mergeRuns(all, i+2 == len(s.Levels))
		rewritten += runBytes(merged)
		s.Levels[i] = nil
		s.Levels[i+1] = []Run{merged}
		s.MajorCompactions++
	}
	return rewritten
}

// normalizeRun sorts entries and keeps the last occurrence of each key.
func normalizeRun(entries []Entry) Run {
	sort.SliceStable(entries, func(i, j int) bool {
		return bytes.Compare(entries[i].Key, entries[j].Key) < 0
	})
	out := entries[:0]
	for i := 0; i < len(entries); i++ {
		if i+1 < len(entries) && bytes.Equal(entries[i].Key, entries[i+1].Key) {
			continue // a newer duplicate follows
		}
		out = append(out, entries[i])
	}
	return Run(append([]Entry(nil), out...))
}

// mergeRuns k-way merges runs (earlier runs are newer and win ties).
// When bottom is true, tombstones are dropped.
func mergeRuns(runs []Run, bottom bool) Run {
	var out Run
	seen := map[string]bool{}
	type cursor struct {
		run Run
		pos int
	}
	cursors := make([]cursor, len(runs))
	for i, r := range runs {
		cursors[i] = cursor{run: r}
	}
	for {
		best := -1
		var bestKey []byte
		for i := range cursors {
			c := &cursors[i]
			if c.pos >= len(c.run) {
				continue
			}
			k := c.run[c.pos].Key
			if best == -1 || bytes.Compare(k, bestKey) < 0 {
				best, bestKey = i, k
			}
		}
		if best == -1 {
			break
		}
		e := cursors[best].run[cursors[best].pos]
		cursors[best].pos++
		if seen[string(e.Key)] {
			continue
		}
		seen[string(e.Key)] = true
		if bottom && e.Tombstone {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Lookup searches the levels newest-first.
func (s *SSTStore) Lookup(key []byte) ([]byte, bool) {
	k := padKey(key)
	for _, runs := range s.Levels {
		for _, r := range runs {
			i := sort.Search(len(r), func(i int) bool {
				return bytes.Compare(r[i].Key, k) >= 0
			})
			if i < len(r) && bytes.Equal(r[i].Key, k) {
				if r[i].Tombstone {
					return nil, false
				}
				return r[i].Value, true
			}
		}
	}
	return nil, false
}

// TotalBytes sums all levels.
func (s *SSTStore) TotalBytes() int {
	n := 0
	for _, runs := range s.Levels {
		n += levelBytes(runs)
	}
	return n
}

// --- Memtable actor -----------------------------------------------------

// Memtable is the LSM Memtable actor state.
type Memtable struct {
	Actor *actor.Actor

	list  *SkipList
	limit int
	// sstReader / compactor are the host-pinned actors.
	sstReader actor.ID
	compactor actor.ID

	// Compactions counts minor compactions issued.
	Compactions uint64
	// Hits/Misses count read outcomes served from the Memtable.
	Hits, Misses uint64
}

// NewMemtable builds the Memtable actor. limitBytes triggers minor
// compaction (the paper used Memtables around 32MB; tests use less).
func NewMemtable(id actor.ID, limitBytes int, sstReader, compactor actor.ID) *Memtable {
	mt := &Memtable{limit: limitBytes, sstReader: sstReader, compactor: compactor}
	a := &actor.Actor{
		ID:        id,
		Name:      "rkv-memtable",
		Exclusive: true,
		MemBound:  0.4, // skip-list pointer chasing
	}
	a.OnInit = func(ctx actor.Ctx) {
		mt.list, _ = NewSkipList(ctx)
	}
	a.OnMessage = func(ctx actor.Ctx, m actor.Msg) sim.Time {
		switch m.Kind {
		case KindApply:
			cmd, ok := DecodeCmd(m.Data)
			if !ok {
				return 300 * sim.Nanosecond
			}
			var val []byte
			if cmd.Op == OpPut {
				val = cmd.Value
			} // OpDel: nil value = tombstone
			mt.list.Put(ctx, cmd.Key, val)
			cost := mt.list.visitCost()
			if mt.list.Bytes() >= mt.limit {
				cost += mt.minorCompact(ctx)
			}
			// Writes are acknowledged by the consensus actor at the
			// commit point, not here.
			return cost
		case KindGet:
			cmd, ok := DecodeCmd(m.Data)
			if !ok {
				return 300 * sim.Nanosecond
			}
			v, found, tomb, _ := mt.list.Get(ctx, cmd.Key)
			cost := mt.list.visitCost()
			switch {
			case found && tomb:
				mt.Hits++
				resp := m
				resp.Data = []byte{byte(StatusNotFound)}
				ctx.Reply(resp)
			case found:
				mt.Hits++
				resp := m
				resp.Data = append([]byte{byte(StatusOK)}, v...)
				ctx.Reply(resp)
			default:
				// Miss: forward to the SSTable read actor, Reply intact.
				mt.Misses++
				ctx.Send(mt.sstReader, m)
			}
			return cost
		}
		return 200 * sim.Nanosecond
	}
	mt.Actor = a
	return mt
}

// minorCompact drains the skip list and ships it to the compaction
// actor; the Memtable then starts empty (§4: "Upon a minor compaction,
// the Memtable actor migrates its Memtable object to the host and
// issues a message to the compaction actor").
func (mt *Memtable) minorCompact(ctx actor.Ctx) sim.Time {
	entries, err := mt.list.Drain(ctx)
	if err != nil || len(entries) == 0 {
		return 0
	}
	mt.Compactions++
	payload := EncodeEntries(entries)
	ctx.Send(mt.compactor, actor.Msg{Kind: KindMinorCompact, Data: payload})
	// Serializing the drained table costs ≈2ns/byte on the reference
	// core; the PCIe transfer is charged by the messaging layer.
	return sim.Time(2 * len(payload))
}

// List exposes the skip list for white-box tests.
func (mt *Memtable) List() *SkipList { return mt.list }

// --- SSTable read actor ---------------------------------------------------

// NewSSTReader builds the host-pinned read actor over the shared store.
func NewSSTReader(id actor.ID, store *SSTStore) *actor.Actor {
	a := &actor.Actor{
		ID:       id,
		Name:     "rkv-sstread",
		PinHost:  true,
		MemBound: 0.6,
	}
	a.OnMessage = func(ctx actor.Ctx, m actor.Msg) sim.Time {
		cmd, ok := DecodeCmd(m.Data)
		if !ok {
			return 300 * sim.Nanosecond
		}
		v, found := store.Lookup(cmd.Key)
		resp := m
		if found {
			resp.Data = append([]byte{byte(StatusOK)}, v...)
		} else {
			resp.Data = []byte{byte(StatusNotFound)}
		}
		ctx.Reply(resp)
		// Each level probe costs a (cached) storage read.
		levels := len(store.Levels)
		if levels == 0 {
			levels = 1
		}
		return sim.Time(levels) * 4 * sim.Microsecond
	}
	return a
}

// --- Compaction actor ------------------------------------------------------

// NewCompactor builds the host-pinned compaction actor.
func NewCompactor(id actor.ID, store *SSTStore) *actor.Actor {
	a := &actor.Actor{
		ID:       id,
		Name:     "rkv-compact",
		PinHost:  true,
		MemBound: 0.7,
	}
	a.OnMessage = func(ctx actor.Ctx, m actor.Msg) sim.Time {
		if m.Kind != KindMinorCompact {
			return 200 * sim.Nanosecond
		}
		entries := DecodeEntries(m.Data)
		rewritten := store.AddL0(entries)
		// Sequential merge I/O: ≈5ns/byte reference charge.
		return 2*sim.Microsecond + sim.Time(5*(len(m.Data)+rewritten))
	}
	return a
}
