package rkv

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/actor"
)

func e(k, v string) Entry {
	return Entry{Key: padKey([]byte(k)), Value: []byte(v)}
}

func tomb(k string) Entry {
	return Entry{Key: padKey([]byte(k)), Tombstone: true}
}

func TestSSTStoreLookupNewestWins(t *testing.T) {
	s := NewSSTStore(1 << 20)
	s.AddL0([]Entry{e("a", "old"), e("b", "b1")})
	s.AddL0([]Entry{e("a", "new")})
	v, ok := s.Lookup([]byte("a"))
	if !ok || string(v) != "new" {
		t.Fatalf("Lookup(a) = %q %v", v, ok)
	}
	v, ok = s.Lookup([]byte("b"))
	if !ok || string(v) != "b1" {
		t.Fatalf("Lookup(b) = %q %v", v, ok)
	}
	if _, ok := s.Lookup([]byte("zz")); ok {
		t.Fatal("phantom key")
	}
}

func TestSSTStoreTombstoneHidesOlder(t *testing.T) {
	s := NewSSTStore(1 << 20)
	s.AddL0([]Entry{e("k", "v1")})
	s.AddL0([]Entry{tomb("k")})
	if _, ok := s.Lookup([]byte("k")); ok {
		t.Fatal("tombstone did not hide older value")
	}
}

func TestSSTStoreL0CascadeOnRunCount(t *testing.T) {
	s := NewSSTStore(1 << 30) // byte limits never bind; run count does
	for i := 0; i < s.L0Runs+1; i++ {
		s.AddL0([]Entry{e(fmt.Sprintf("k%d", i), "v")})
	}
	if s.MajorCompactions == 0 {
		t.Fatal("L0 run-count overflow did not trigger a major compaction")
	}
	if len(s.Levels) < 2 {
		t.Fatal("no level 1 created")
	}
	// All keys still visible after the merge.
	for i := 0; i < s.L0Runs+1; i++ {
		if _, ok := s.Lookup([]byte(fmt.Sprintf("k%d", i))); !ok {
			t.Fatalf("key k%d lost in compaction", i)
		}
	}
}

func TestSSTStoreByteLimitCascade(t *testing.T) {
	s := NewSSTStore(256) // tiny level-1 limit
	big := make([]byte, 200)
	for i := 0; i < 12; i++ {
		s.AddL0([]Entry{{Key: padKey([]byte(fmt.Sprintf("b%02d", i))), Value: big}})
	}
	if len(s.Levels) < 3 {
		t.Fatalf("cascade depth %d; byte limits never pushed to level 2", len(s.Levels))
	}
	for i := 0; i < 12; i++ {
		if _, ok := s.Lookup([]byte(fmt.Sprintf("b%02d", i))); !ok {
			t.Fatalf("key b%02d lost across cascades", i)
		}
	}
}

func TestSSTStoreBottomLevelDropsTombstones(t *testing.T) {
	s := NewSSTStore(1 << 30)
	s.AddL0([]Entry{e("dead", "v")})
	s.AddL0([]Entry{tomb("dead")})
	// Force merges until the tombstone reaches the bottom.
	for i := 0; i < s.L0Runs+2; i++ {
		s.AddL0([]Entry{e(fmt.Sprintf("pad%d", i), "v")})
	}
	total := 0
	for _, runs := range s.Levels {
		for _, r := range runs {
			for _, en := range r {
				if en.Tombstone {
					total++
				}
			}
		}
	}
	// After the full merge into the bottom level, the tombstone is gone
	// (it may linger only if some runs were not merged yet).
	if _, ok := s.Lookup([]byte("dead")); ok {
		t.Fatal("deleted key resurfaced")
	}
	_ = total
}

func TestNormalizeRunDedupsKeepingNewest(t *testing.T) {
	run := normalizeRun([]Entry{e("k", "v1"), e("a", "x"), e("k", "v2")})
	if len(run) != 2 {
		t.Fatalf("len = %d", len(run))
	}
	for _, en := range run {
		if bytes.Equal(en.Key, padKey([]byte("k"))) && string(en.Value) != "v2" {
			t.Fatalf("dedup kept %q, want newest v2", en.Value)
		}
	}
}

func TestMergeRunsOrderAndPrecedence(t *testing.T) {
	newer := Run{e("a", "new"), e("c", "c")}
	older := Run{e("a", "old"), e("b", "b")}
	out := mergeRuns([]Run{newer, older}, false)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	if string(out[0].Value) != "new" {
		t.Fatal("newer run should win ties")
	}
	for i := 1; i < len(out); i++ {
		if bytes.Compare(out[i-1].Key, out[i].Key) >= 0 {
			t.Fatal("merge output not sorted")
		}
	}
}

// Property: SSTStore lookups agree with a reference map under random
// write/delete flushes, regardless of compaction activity.
func TestSSTStoreMatchesMapProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewSSTStore(512)
		ref := map[string][]byte{}
		batch := []Entry{}
		flush := func() {
			if len(batch) > 0 {
				s.AddL0(batch)
				batch = nil
			}
		}
		for i, op := range ops {
			k := fmt.Sprintf("key-%02d", op%30)
			if op%5 == 0 {
				batch = append(batch, tomb(k))
				delete(ref, k)
			} else {
				v := []byte(fmt.Sprintf("v%d", i))
				batch = append(batch, Entry{Key: padKey([]byte(k)), Value: v})
				ref[k] = v
			}
			if op%3 == 0 {
				flush()
			}
		}
		flush()
		for k, want := range ref {
			got, ok := s.Lookup([]byte(k))
			if !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		for i := 0; i < 30; i++ {
			k := fmt.Sprintf("key-%02d", i)
			if _, inRef := ref[k]; !inRef {
				if _, ok := s.Lookup([]byte(k)); ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMemtableActorGetHitMissAndApply(t *testing.T) {
	ctx := newDmoCtx()
	mt := NewMemtable(1, 1<<20, 90, 91)
	mt.Actor.OnInit(ctx)

	var lastReply []byte
	reply := func(m []byte) { lastReply = m }

	// Apply a committed write.
	mt.Actor.OnMessage(ctx, msgWith(KindApply, EncodeCmd(Cmd{Op: OpPut, Key: []byte("k"), Value: []byte("v")}), nil))
	if mt.List().Count() != 1 {
		t.Fatalf("memtable count %d", mt.List().Count())
	}
	// Hit.
	mt.Actor.OnMessage(ctx, msgWith(KindGet, EncodeCmd(Cmd{Op: OpGet, Key: []byte("k")}), reply))
	if len(lastReply) == 0 || StatusOf(lastReply) != StatusOK || string(lastReply[1:]) != "v" {
		t.Fatalf("get hit reply %q", lastReply)
	}
	if mt.Hits != 1 {
		t.Fatalf("hits %d", mt.Hits)
	}
	// Tombstone.
	mt.Actor.OnMessage(ctx, msgWith(KindApply, EncodeCmd(Cmd{Op: OpDel, Key: []byte("k")}), nil))
	mt.Actor.OnMessage(ctx, msgWith(KindGet, EncodeCmd(Cmd{Op: OpGet, Key: []byte("k")}), reply))
	if StatusOf(lastReply) != StatusNotFound {
		t.Fatalf("get after delete reply %q", lastReply)
	}
}

// msgWith builds a message with an optional reply sink; the dmoCtx used
// in these unit tests has no Reply transport, so we use the fake sink
// via a wrapper ctx.
func msgWith(kind actor.Kind, data []byte, reply func([]byte)) actor.Msg {
	m := actor.Msg{Kind: kind, Data: data, Origin: "t"}
	if reply != nil {
		m.Reply = func(resp actor.Msg) { reply(resp.Data) }
	}
	return m
}
