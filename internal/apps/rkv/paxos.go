package rkv

import (
	"encoding/binary"
	"sort"

	"repro/internal/actor"
	"repro/internal/sim"
)

// Multi-Paxos consensus actor (§4): a distinguished leader receives
// client requests and coordinates accept/learn rounds over a replicated
// ordered log; in the common case consensus for a log instance needs a
// single round of accepts, and the committed command is disseminated
// with a learning round. On leader failure, a replica runs the
// two-phase prepare/promise election, picks the next available log
// instance, and fills gaps from the promises.

// instState is one log instance on a replica.
type instState struct {
	ballot    uint64
	cmd       []byte
	accepted  bool
	committed bool
	// Leader-side bookkeeping:
	acks   int
	client actor.Msg
}

// Consensus is a replica's consensus actor.
type Consensus struct {
	Actor *actor.Actor

	peers    []actor.ID // consensus actors of the other replicas
	memtable actor.ID   // local Memtable actor

	// IsLeader marks the distinguished proposer.
	IsLeader bool
	// BallotOffset is this replica's residue in the ballot space: replica
	// k of an n-replica group elects only with ballots ≡ k (mod n), so
	// concurrent candidates can never collide on a ballot number. Deploy
	// sets it to the replica index.
	BallotOffset uint64
	ballot       uint64
	promised     uint64
	log          map[uint64]*instState
	next         uint64 // next instance to allocate (leader)
	applied      uint64 // low-water mark of applied instances

	// Election bookkeeping.
	electing  bool
	promises  int
	merged    map[uint64]*instState
	onElected func()

	// OnLead, if set, observes every leadership claim with the winning
	// ballot (including the initial leader's implicit ballot-1 claim,
	// reported by the deployer). The invariant checker uses it to enforce
	// single-leader-per-ballot across a replica group.
	OnLead func(ballot uint64)

	// Commits and Redirects count outcomes.
	Commits   uint64
	Redirects uint64
}

// paxos wire format helpers: inst(8) ballot(8) cmd...
func encPaxos(inst, ballot uint64, cmd []byte) []byte {
	out := make([]byte, 16+len(cmd))
	binary.LittleEndian.PutUint64(out, inst)
	binary.LittleEndian.PutUint64(out[8:], ballot)
	copy(out[16:], cmd)
	return out
}

func decPaxos(p []byte) (inst, ballot uint64, cmd []byte, ok bool) {
	if len(p) < 16 {
		return 0, 0, nil, false
	}
	return binary.LittleEndian.Uint64(p), binary.LittleEndian.Uint64(p[8:]), p[16:], true
}

// NewConsensus builds a consensus actor. leader marks the initial
// distinguished proposer.
func NewConsensus(id actor.ID, peers []actor.ID, memtable actor.ID, leader bool) *Consensus {
	c := &Consensus{
		peers:    peers,
		memtable: memtable,
		IsLeader: leader,
		ballot:   1,
		log:      map[uint64]*instState{},
	}
	a := &actor.Actor{
		ID:        id,
		Name:      "rkv-consensus",
		Exclusive: true,
		MemBound:  0.15, // protocol state is small (Table 3: replication 1.9µs)
	}
	a.OnMessage = c.onMessage
	c.Actor = a
	return c
}

func (c *Consensus) majority() int { return (len(c.peers)+1)/2 + 1 }

// sortedLog returns the log's instance numbers in ascending order, so
// payloads built by iterating the log are byte-deterministic.
func (c *Consensus) sortedLog() []uint64 {
	insts := make([]uint64, 0, len(c.log))
	for inst := range c.log {
		insts = append(insts, inst)
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	return insts
}

func (c *Consensus) onMessage(ctx actor.Ctx, m actor.Msg) sim.Time {
	switch m.Kind {
	case KindReq:
		return c.clientReq(ctx, m)
	case KindAccept:
		return c.accept(ctx, m)
	case KindAccepted:
		return c.accepted(ctx, m)
	case KindLearn:
		return c.learn(ctx, m)
	case KindPrepare:
		return c.prepare(ctx, m)
	case KindPromise:
		return c.promise(ctx, m)
	case KindElect:
		c.StartElection(ctx, nil)
		return 1500 * sim.Nanosecond
	}
	return 200 * sim.Nanosecond
}

func (c *Consensus) clientReq(ctx actor.Ctx, m actor.Msg) sim.Time {
	cmd, ok := DecodeCmd(m.Data)
	if !ok {
		resp := m
		resp.Data = []byte{byte(StatusNotFound)}
		ctx.Reply(resp)
		return 300 * sim.Nanosecond
	}
	if cmd.Op == OpGet {
		// Reads are served by the local store path (leader leases make
		// this safe in the common case); forward with Reply intact.
		ctx.Send(c.memtable, actor.Msg{
			Kind: KindGet, Data: m.Data,
			Origin: m.Origin, Reply: m.Reply, WireSize: m.WireSize, FlowID: m.FlowID,
		})
		return 500 * sim.Nanosecond
	}
	if !c.IsLeader {
		c.Redirects++
		resp := m
		resp.Data = []byte{byte(StatusRedirect)}
		ctx.Reply(resp)
		return 400 * sim.Nanosecond
	}
	inst := c.next
	c.next++
	st := &instState{ballot: c.ballot, cmd: m.Data, accepted: true, acks: 1, client: m}
	c.log[inst] = st
	payload := encPaxos(inst, c.ballot, m.Data)
	for _, p := range c.peers {
		ctx.Send(p, actor.Msg{Kind: KindAccept, Data: payload})
	}
	if st.acks >= c.majority() {
		c.commit(ctx, inst, st)
	}
	return 900 * sim.Nanosecond
}

// accept is the follower's phase-2 handler.
func (c *Consensus) accept(ctx actor.Ctx, m actor.Msg) sim.Time {
	inst, ballot, cmd, ok := decPaxos(m.Data)
	if !ok || ballot < c.promised {
		return 300 * sim.Nanosecond
	}
	c.stepDown(ballot)
	st := c.log[inst]
	if st == nil {
		st = &instState{}
		c.log[inst] = st
	}
	st.ballot = ballot
	st.cmd = append([]byte(nil), cmd...)
	st.accepted = true
	ctx.Send(m.Src, actor.Msg{Kind: KindAccepted, Data: encPaxos(inst, ballot, nil)})
	return 700 * sim.Nanosecond
}

// accepted is the leader counting phase-2 acks.
func (c *Consensus) accepted(ctx actor.Ctx, m actor.Msg) sim.Time {
	inst, ballot, _, ok := decPaxos(m.Data)
	if !ok || !c.IsLeader || ballot != c.ballot {
		return 200 * sim.Nanosecond
	}
	st := c.log[inst]
	if st == nil || st.committed {
		return 200 * sim.Nanosecond
	}
	st.acks++
	if st.acks >= c.majority() {
		c.commit(ctx, inst, st)
	}
	return 400 * sim.Nanosecond
}

// commit fires once per instance: apply locally, learn to peers, and
// acknowledge the client — the consensus actor "sends a message to the
// LSM Memtable once during the commit phase" (§4).
func (c *Consensus) commit(ctx actor.Ctx, inst uint64, st *instState) {
	if st.committed {
		return
	}
	st.committed = true
	c.Commits++
	ctx.Send(c.memtable, actor.Msg{Kind: KindApply, Data: st.cmd})
	payload := encPaxos(inst, st.ballot, st.cmd)
	for _, p := range c.peers {
		ctx.Send(p, actor.Msg{Kind: KindLearn, Data: payload})
	}
	if st.client.Reply != nil {
		resp := st.client
		resp.Data = []byte{byte(StatusOK)}
		ctx.Reply(resp)
		st.client = actor.Msg{}
	}
}

// learn is the follower's phase-3 handler: mark committed and apply.
func (c *Consensus) learn(ctx actor.Ctx, m actor.Msg) sim.Time {
	inst, ballot, cmd, ok := decPaxos(m.Data)
	if !ok {
		return 200 * sim.Nanosecond
	}
	c.stepDown(ballot)
	st := c.log[inst]
	if st == nil {
		st = &instState{}
		c.log[inst] = st
	}
	if st.committed {
		return 200 * sim.Nanosecond
	}
	st.ballot = ballot
	st.cmd = append([]byte(nil), cmd...)
	st.committed = true
	c.Commits++
	if inst >= c.next {
		c.next = inst + 1
	}
	ctx.Send(c.memtable, actor.Msg{Kind: KindApply, Data: st.cmd})
	return 600 * sim.Nanosecond
}

// stepDown demotes a (possibly restarted) stale leader that observes a
// higher ballot in live protocol traffic: a new leader was elected while
// this replica was crashed or partitioned, so it must stop proposing and
// redirect clients until it wins an election of its own.
func (c *Consensus) stepDown(ballot uint64) {
	if ballot <= c.ballot {
		return
	}
	if ballot > c.promised {
		c.promised = ballot
	}
	c.ballot = ballot
	if c.IsLeader || c.electing {
		c.IsLeader = false
		c.electing = false
	}
}

// StartElection begins the two-phase leader election on this replica
// (invoked when the old leader fails). onElected fires on success.
func (c *Consensus) StartElection(ctx actor.Ctx, onElected func()) {
	c.electing = true
	c.promises = 1 // self
	c.merged = map[uint64]*instState{}
	c.onElected = onElected
	// Climb to the next ballot congruent to this replica's offset modulo
	// the group size: concurrent candidates can never pick the same
	// number, even after stepDown synchronized their ballot views.
	n := uint64(len(c.peers)) + 1
	next := c.ballot + 1
	c.ballot = next + (n+c.BallotOffset%n-next%n)%n
	c.promised = c.ballot
	for inst, st := range c.log {
		if st.accepted || st.committed {
			c.merged[inst] = &instState{ballot: st.ballot, cmd: st.cmd, committed: st.committed}
		}
	}
	payload := encPaxos(0, c.ballot, nil)
	for _, p := range c.peers {
		ctx.Send(p, actor.Msg{Kind: KindPrepare, Data: payload})
	}
	c.checkElected(ctx)
}

// prepare is the acceptor side of the election phase 1.
func (c *Consensus) prepare(ctx actor.Ctx, m actor.Msg) sim.Time {
	_, ballot, _, ok := decPaxos(m.Data)
	if !ok || ballot <= c.promised {
		return 300 * sim.Nanosecond
	}
	c.promised = ballot
	c.IsLeader = false
	c.electing = false
	// Return every accepted entry so the new leader can fill gaps. Sorted
	// instance order: the promise payload bytes must not depend on map
	// iteration order (determinism invariant).
	var out []byte
	for _, inst := range c.sortedLog() {
		st := c.log[inst]
		if st.accepted || st.committed {
			entry := encPaxos(inst, st.ballot, st.cmd)
			var el [4]byte
			binary.LittleEndian.PutUint32(el[:], uint32(len(entry)))
			out = append(out, el[:]...)
			out = append(out, entry...)
		}
	}
	hdr := encPaxos(0, ballot, nil)
	ctx.Send(m.Src, actor.Msg{Kind: KindPromise, Data: append(hdr, out...)})
	return 800 * sim.Nanosecond
}

// promise collects election phase-1 responses at the candidate.
func (c *Consensus) promise(ctx actor.Ctx, m actor.Msg) sim.Time {
	_, ballot, rest, ok := decPaxos(m.Data)
	if !ok || !c.electing || ballot != c.ballot {
		return 200 * sim.Nanosecond
	}
	c.promises++
	for len(rest) >= 4 {
		el := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if len(rest) < el {
			break
		}
		inst, b, cmd, ok2 := decPaxos(rest[:el])
		rest = rest[el:]
		if !ok2 {
			continue
		}
		cur := c.merged[inst]
		if cur == nil || b > cur.ballot {
			c.merged[inst] = &instState{ballot: b, cmd: append([]byte(nil), cmd...)}
		}
	}
	c.checkElected(ctx)
	return 700 * sim.Nanosecond
}

func (c *Consensus) checkElected(ctx actor.Ctx) {
	if !c.electing || c.promises < c.majority() {
		return
	}
	c.electing = false
	c.IsLeader = true
	if c.OnLead != nil {
		c.OnLead(c.ballot)
	}
	// Choose the next available instance and re-propose every merged
	// entry that is not yet committed locally, in sorted instance order
	// so the re-proposal message sequence is deterministic.
	insts := make([]uint64, 0, len(c.merged))
	for inst := range c.merged {
		insts = append(insts, inst)
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	for _, inst := range insts {
		st := c.merged[inst]
		if inst >= c.next {
			c.next = inst + 1
		}
		local := c.log[inst]
		if local != nil && local.committed {
			continue
		}
		ns := &instState{ballot: c.ballot, cmd: st.cmd, accepted: true, acks: 1}
		c.log[inst] = ns
		payload := encPaxos(inst, c.ballot, st.cmd)
		for _, p := range c.peers {
			ctx.Send(p, actor.Msg{Kind: KindAccept, Data: payload})
		}
	}
	if c.onElected != nil {
		c.onElected()
		c.onElected = nil
	}
}

// LogLen reports committed instances (tests).
func (c *Consensus) LogLen() int {
	n := 0
	for _, st := range c.log {
		if st.committed {
			n++
		}
	}
	return n
}
