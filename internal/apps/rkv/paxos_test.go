package rkv

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/sim"
)

// bus is a synchronous in-memory message router for unit-testing the
// consensus state machines without the full runtime: Send enqueues, and
// Pump drains until quiescent.
type bus struct {
	actors  map[actor.ID]*actor.Actor
	ctxs    map[actor.ID]*busCtx
	queue   []actor.Msg
	replies []actor.Msg
}

type busCtx struct {
	b    *bus
	self actor.ID
	dmo  *dmoCtx
}

func newBus() *bus {
	return &bus{actors: map[actor.ID]*actor.Actor{}, ctxs: map[actor.ID]*busCtx{}}
}

func (b *bus) add(a *actor.Actor) {
	b.actors[a.ID] = a
	ctx := &busCtx{b: b, self: a.ID, dmo: newDmoCtx()}
	b.ctxs[a.ID] = ctx
	if a.OnInit != nil {
		a.OnInit(ctx)
	}
}

func (b *bus) send(m actor.Msg) { b.queue = append(b.queue, m) }

func (b *bus) pump() {
	for len(b.queue) > 0 {
		m := b.queue[0]
		b.queue = b.queue[1:]
		a, ok := b.actors[m.Dst]
		if !ok {
			continue // e.g. the memtable, absent in pure-Paxos tests
		}
		a.OnMessage(b.ctxs[m.Dst], m)
	}
}

func (c *busCtx) Now() sim.Time  { return 0 }
func (c *busCtx) Self() actor.ID { return c.self }
func (c *busCtx) Send(dst actor.ID, m actor.Msg) {
	m.Src = c.self
	m.Dst = dst
	c.b.send(m)
}
func (c *busCtx) Reply(m actor.Msg) {
	c.b.replies = append(c.b.replies, m)
	if m.Reply != nil {
		m.Reply(m)
	}
}
func (c *busCtx) Alloc(size int) (uint64, error)               { return c.dmo.Alloc(size) }
func (c *busCtx) Free(obj uint64) error                        { return c.dmo.Free(obj) }
func (c *busCtx) ObjRead(o uint64, off, n int) ([]byte, error) { return c.dmo.ObjRead(o, off, n) }
func (c *busCtx) ObjWrite(o uint64, off int, p []byte) error   { return c.dmo.ObjWrite(o, off, p) }
func (c *busCtx) ObjMigrate(o uint64) (int, error)             { return c.dmo.ObjMigrate(o) }
func (c *busCtx) ObjMemset(o uint64, off, n int, b byte) error { return c.dmo.ObjMemset(o, off, n, b) }
func (c *busCtx) ObjMemcpy(d uint64, do int, s uint64, so, n int) error {
	return c.dmo.ObjMemcpy(d, do, s, so, n)
}
func (c *busCtx) ObjMemmove(o uint64, do, so, n int) error { return c.dmo.ObjMemmove(o, do, so, n) }
func (c *busCtx) Accel(string, int, int) (sim.Time, bool)  { return 0, false }
func (c *busCtx) OnNIC() bool                              { return true }

// threeReplicas wires leader + two followers (no memtables: apply
// messages fall on the floor, which pure-protocol tests ignore).
func threeReplicas(t *testing.T) (*bus, *Consensus, *Consensus, *Consensus) {
	t.Helper()
	b := newBus()
	leader := NewConsensus(1, []actor.ID{2, 3}, 99, true)
	f1 := NewConsensus(2, []actor.ID{1, 3}, 99, false)
	f2 := NewConsensus(3, []actor.ID{1, 2}, 99, false)
	b.add(leader.Actor)
	b.add(f1.Actor)
	b.add(f2.Actor)
	return b, leader, f1, f2
}

func clientWrite(b *bus, dst actor.ID, key, val string, onResp func(actor.Msg)) {
	b.send(actor.Msg{
		Kind: KindReq, Dst: dst, Origin: "cli",
		Data:  EncodeCmd(Cmd{Op: OpPut, Key: []byte(key), Value: []byte(val)}),
		Reply: onResp,
	})
}

func TestPaxosSingleRoundCommit(t *testing.T) {
	b, leader, f1, f2 := threeReplicas(t)
	var status Status
	clientWrite(b, 1, "k", "v", func(m actor.Msg) { status = StatusOf(m.Data) })
	b.pump()
	if status != StatusOK {
		t.Fatalf("client status %d", status)
	}
	// Everyone commits instance 0 after the learn round.
	for i, c := range []*Consensus{leader, f1, f2} {
		if c.LogLen() != 1 {
			t.Fatalf("replica %d committed %d instances", i, c.LogLen())
		}
	}
}

func TestPaxosDuplicateAcksCommitOnce(t *testing.T) {
	b, leader, _, _ := threeReplicas(t)
	clientWrite(b, 1, "k", "v", nil)
	b.pump()
	if leader.Commits != 1 {
		t.Fatalf("commits = %d", leader.Commits)
	}
	// Replay a stale Accepted ack: must not double-commit or panic.
	b.send(actor.Msg{Kind: KindAccepted, Dst: 1, Src: 2, Data: encPaxos(0, 1, nil)})
	b.pump()
	if leader.Commits != 1 {
		t.Fatalf("duplicate ack changed commits to %d", leader.Commits)
	}
}

func TestPaxosOrderedLog(t *testing.T) {
	b, leader, f1, _ := threeReplicas(t)
	for i := 0; i < 10; i++ {
		clientWrite(b, 1, "k", "v", nil)
	}
	b.pump()
	if leader.LogLen() != 10 || f1.LogLen() != 10 {
		t.Fatalf("logs: leader %d follower %d", leader.LogLen(), f1.LogLen())
	}
	if leader.next != 10 {
		t.Fatalf("next instance %d", leader.next)
	}
}

func TestPaxosStaleBallotRejected(t *testing.T) {
	b, _, f1, _ := threeReplicas(t)
	// Promise the follower to a high ballot, then send an old-ballot
	// accept: it must be ignored.
	b.send(actor.Msg{Kind: KindPrepare, Dst: 2, Src: 3, Data: encPaxos(0, 100, nil)})
	b.pump()
	b.send(actor.Msg{Kind: KindAccept, Dst: 2, Src: 1, Data: encPaxos(5, 1, []byte("cmd"))})
	b.pump()
	if st := f1.log[5]; st != nil && st.accepted {
		t.Fatal("stale-ballot accept was taken")
	}
}

func TestElectionAdoptsUncommittedEntries(t *testing.T) {
	b, leader, f1, f2 := threeReplicas(t)
	// Commit two instances normally.
	clientWrite(b, 1, "a", "1", nil)
	clientWrite(b, 1, "b", "2", nil)
	b.pump()
	// Simulate a partial round: the candidate itself accepted instance 2
	// but nobody committed it (the old leader "died" mid-round). A
	// value accepted only by replicas outside the promise quorum need
	// not be recovered — classic Paxos — so the deterministic case is
	// the candidate's own log.
	f2.log[2] = &instState{ballot: 1, cmd: EncodeCmd(Cmd{Op: OpPut, Key: []byte("c"), Value: []byte("3")}), accepted: true}
	leader.IsLeader = false

	// Follower 2 runs for leader.
	b.send(actor.Msg{Kind: KindElect, Dst: 3})
	b.pump()
	if !f2.IsLeader {
		t.Fatal("candidate did not win with a majority of promises")
	}
	// The new leader re-proposed the uncommitted instance 2, so it
	// commits cluster-wide.
	if f2.LogLen() < 3 {
		t.Fatalf("new leader committed %d instances, want 3 (incl. recovered)", f2.LogLen())
	}
	if f1.LogLen() < 3 {
		t.Fatalf("follower 1 committed %d instances", f1.LogLen())
	}
	// New writes go to a fresh instance.
	var status Status
	clientWrite(b, 3, "d", "4", func(m actor.Msg) { status = StatusOf(m.Data) })
	b.pump()
	if status != StatusOK {
		t.Fatalf("post-election write status %d", status)
	}
	if f2.next < 4 {
		t.Fatalf("next instance %d, want ≥4", f2.next)
	}
}

func TestElectionDeposesOldLeader(t *testing.T) {
	b, leader, f1, _ := threeReplicas(t)
	clientWrite(b, 1, "a", "1", nil)
	b.pump()
	b.send(actor.Msg{Kind: KindElect, Dst: 2})
	b.pump()
	if !f1.IsLeader {
		t.Fatal("candidate lost")
	}
	// The old leader saw the higher-ballot prepare and stepped down.
	if leader.IsLeader {
		t.Fatal("old leader did not step down on higher ballot")
	}
	// Writes to the old leader now redirect.
	var status Status
	clientWrite(b, 1, "x", "y", func(m actor.Msg) { status = StatusOf(m.Data) })
	b.pump()
	if status != StatusRedirect {
		t.Fatalf("old leader status %d, want redirect", status)
	}
}

func TestPaxosMalformedInputsSafe(t *testing.T) {
	b, leader, _, _ := threeReplicas(t)
	for _, kind := range []actor.Kind{KindReq, KindAccept, KindAccepted, KindLearn, KindPrepare, KindPromise} {
		b.send(actor.Msg{Kind: kind, Dst: 1, Data: []byte{1, 2}})
	}
	b.pump() // must not panic
	if leader.Commits != 0 {
		t.Fatal("garbage produced commits")
	}
}
