// Package rkv is the replicated key-value store of §4: Multi-Paxos
// consensus over an LSM-tree store. Four actor kinds implement it — a
// consensus actor (leader/follower Paxos roles), an LSM Memtable actor
// whose skip list is built from distributed memory objects exactly as
// in Figure 12-b, an SSTable read actor, and a compaction actor (the
// latter two pinned to the host, where persistent storage lives).
package rkv

import (
	"bytes"
	"encoding/binary"

	"repro/internal/actor"
	"repro/internal/sim"
)

// KeyLen is the fixed key size (16B keys, §5.1).
const KeyLen = 16

// MaxLevel bounds skip-list towers.
const MaxLevel = 12

// Skip-list node layout inside a DMO (Figure 12-b: "the key field is
// the same, but value and forwarding pointers are replaced by object
// IDs"):
//
//	key     [KeyLen]byte
//	valObj  uint64   // object ID of the value object; 0 = tombstone
//	valLen  uint32   // value size in bytes
//	level   uint8
//	forward [level]uint64 // object IDs of successor nodes; 0 = nil
const nodeHdr = KeyLen + 8 + 4 + 1

func nodeSize(level int) int { return nodeHdr + 8*level }

// SkipList is an LSM Memtable index whose nodes live in DMOs and are
// linked by object IDs, so the runtime can migrate the whole structure
// between NIC and host without rewriting a single link.
type SkipList struct {
	head  uint64 // object ID of the head sentinel
	level int    // current max level in use
	count int
	bytes int // application bytes (keys + values) resident
	rng   uint64

	// Visits counts node hops of the last operation (drives the cost
	// model: each hop is an object-table lookup plus a cache miss).
	Visits int
}

// NewSkipList allocates the head sentinel through the context.
func NewSkipList(ctx actor.Ctx) (*SkipList, error) {
	s := &SkipList{level: 1, rng: 0x9e3779b97f4a7c15}
	head, err := ctx.Alloc(nodeSize(MaxLevel))
	if err != nil {
		return nil, err
	}
	s.head = head
	var hdr [nodeHdr]byte
	hdr[KeyLen+12] = MaxLevel
	if err := ctx.ObjWrite(head, 0, hdr[:]); err != nil {
		return nil, err
	}
	return s, nil
}

// Count returns live entries (including tombstones).
func (s *SkipList) Count() int { return s.count }

// Bytes returns resident application bytes, the Memtable size that
// triggers minor compaction.
func (s *SkipList) Bytes() int { return s.bytes }

func (s *SkipList) randLevel() int {
	// xorshift64*; each coin flip promotes with p=1/4 as in LevelDB.
	lvl := 1
	for lvl < MaxLevel {
		s.rng ^= s.rng >> 12
		s.rng ^= s.rng << 25
		s.rng ^= s.rng >> 27
		if (s.rng*0x2545f4914f6cdd1d)>>62 != 0 {
			break
		}
		lvl++
	}
	return lvl
}

// nodeKey reads a node's key.
func (s *SkipList) nodeKey(ctx actor.Ctx, obj uint64) ([]byte, error) {
	s.Visits++
	return ctx.ObjRead(obj, 0, KeyLen)
}

// nodeVal reads a node's (value object ID, value length).
func (s *SkipList) nodeVal(ctx actor.Ctx, obj uint64) (uint64, int, error) {
	p, err := ctx.ObjRead(obj, KeyLen, 12)
	if err != nil {
		return 0, 0, err
	}
	return binary.LittleEndian.Uint64(p), int(binary.LittleEndian.Uint32(p[8:])), nil
}

func (s *SkipList) setVal(ctx actor.Ctx, obj, val uint64, n int) error {
	var b [12]byte
	binary.LittleEndian.PutUint64(b[:], val)
	binary.LittleEndian.PutUint32(b[8:], uint32(n))
	return ctx.ObjWrite(obj, KeyLen, b[:])
}

// forward reads node.forward[i].
func (s *SkipList) forward(ctx actor.Ctx, obj uint64, i int) (uint64, error) {
	p, err := ctx.ObjRead(obj, nodeHdr+8*i, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(p), nil
}

func (s *SkipList) setForward(ctx actor.Ctx, obj uint64, i int, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return ctx.ObjWrite(obj, nodeHdr+8*i, b[:])
}

func padKey(k []byte) []byte {
	var out [KeyLen]byte
	copy(out[:], k)
	return out[:]
}

// findPredecessors walks the list, filling update[] with the last node
// at each level whose key < k.
func (s *SkipList) findPredecessors(ctx actor.Ctx, k []byte, update *[MaxLevel]uint64) (uint64, error) {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for {
			nxt, err := s.forward(ctx, x, i)
			if err != nil {
				return 0, err
			}
			if nxt == 0 {
				break
			}
			nk, err := s.nodeKey(ctx, nxt)
			if err != nil {
				return 0, err
			}
			if bytes.Compare(nk, k) < 0 {
				x = nxt
				continue
			}
			break
		}
		update[i] = x
	}
	return s.forward(ctx, x, 0)
}

// Put inserts or overwrites a key. A nil value writes a tombstone
// (deletions are insertions with a deletion marker, §4).
func (s *SkipList) Put(ctx actor.Ctx, key, value []byte) error {
	s.Visits = 0
	k := padKey(key)
	var update [MaxLevel]uint64
	cand, err := s.findPredecessors(ctx, k, &update)
	if err != nil {
		return err
	}
	if cand != 0 {
		ck, err := s.nodeKey(ctx, cand)
		if err != nil {
			return err
		}
		if bytes.Equal(ck, k) {
			// Overwrite: free the old value object, attach the new one.
			old, oldLen, err := s.nodeVal(ctx, cand)
			if err != nil {
				return err
			}
			if old != 0 {
				s.bytes -= oldLen
				ctx.Free(old)
			}
			vo, n, err := s.allocValue(ctx, value)
			if err != nil {
				return err
			}
			s.bytes += n
			return s.setVal(ctx, cand, vo, n)
		}
	}
	lvl := s.randLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = s.head
		}
		s.level = lvl
	}
	node, err := ctx.Alloc(nodeSize(lvl))
	if err != nil {
		return err
	}
	vo, vn, err := s.allocValue(ctx, value)
	if err != nil {
		return err
	}
	hdr := make([]byte, nodeHdr)
	copy(hdr, k)
	binary.LittleEndian.PutUint64(hdr[KeyLen:], vo)
	binary.LittleEndian.PutUint32(hdr[KeyLen+8:], uint32(vn))
	hdr[KeyLen+12] = byte(lvl)
	if err := ctx.ObjWrite(node, 0, hdr); err != nil {
		return err
	}
	for i := 0; i < lvl; i++ {
		nxt, err := s.forward(ctx, update[i], i)
		if err != nil {
			return err
		}
		if err := s.setForward(ctx, node, i, nxt); err != nil {
			return err
		}
		if err := s.setForward(ctx, update[i], i, node); err != nil {
			return err
		}
	}
	s.count++
	s.bytes += KeyLen + vn
	return nil
}

// allocValue stores a value in its own object; nil values (tombstones)
// use object ID 0.
func (s *SkipList) allocValue(ctx actor.Ctx, value []byte) (uint64, int, error) {
	if value == nil {
		return 0, 0, nil
	}
	vo, err := ctx.Alloc(len(value))
	if err != nil {
		return 0, 0, err
	}
	if err := ctx.ObjWrite(vo, 0, value); err != nil {
		return 0, 0, err
	}
	return vo, len(value), nil
}

// Get returns (value, found, tombstone).
func (s *SkipList) Get(ctx actor.Ctx, key []byte) ([]byte, bool, bool, error) {
	s.Visits = 0
	k := padKey(key)
	var update [MaxLevel]uint64
	cand, err := s.findPredecessors(ctx, k, &update)
	if err != nil {
		return nil, false, false, err
	}
	if cand == 0 {
		return nil, false, false, nil
	}
	ck, err := s.nodeKey(ctx, cand)
	if err != nil {
		return nil, false, false, err
	}
	if !bytes.Equal(ck, k) {
		return nil, false, false, nil
	}
	vo, n, err := s.nodeVal(ctx, cand)
	if err != nil {
		return nil, false, false, err
	}
	if vo == 0 {
		return nil, true, true, nil
	}
	v, err := ctx.ObjRead(vo, 0, n)
	return v, true, false, err
}

// Entry is one key/value pair; Tombstone marks deletion.
type Entry struct {
	Key       []byte
	Value     []byte
	Tombstone bool
}

// Drain iterates all entries in key order, frees every node and value
// object, and resets the list (minor compaction hands the contents to
// the compaction actor).
func (s *SkipList) Drain(ctx actor.Ctx) ([]Entry, error) {
	var out []Entry
	x, err := s.forward(ctx, s.head, 0)
	if err != nil {
		return nil, err
	}
	for x != 0 {
		k, err := s.nodeKey(ctx, x)
		if err != nil {
			return nil, err
		}
		vo, n, err := s.nodeVal(ctx, x)
		if err != nil {
			return nil, err
		}
		e := Entry{Key: append([]byte(nil), k...)}
		if vo == 0 {
			e.Tombstone = true
		} else {
			e.Value, err = ctx.ObjRead(vo, 0, n)
			if err != nil {
				return nil, err
			}
			ctx.Free(vo)
		}
		out = append(out, e)
		nxt, err := s.forward(ctx, x, 0)
		if err != nil {
			return nil, err
		}
		ctx.Free(x)
		x = nxt
	}
	// Reset head forwards.
	for i := 0; i < MaxLevel; i++ {
		if err := s.setForward(ctx, s.head, i, 0); err != nil {
			return nil, err
		}
	}
	s.level = 1
	s.count = 0
	s.bytes = 0
	return out, nil
}

// visitCost converts the last operation's node hops into reference-core
// time: each hop is an object-table lookup plus an L2/DRAM touch.
func (s *SkipList) visitCost() sim.Time {
	return sim.Time(300 + 220*s.Visits)
}
