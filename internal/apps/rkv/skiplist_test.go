package rkv

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/actor"
	"repro/internal/dmo"
	"repro/internal/sim"
)

// dmoCtx is an actor.Ctx backed by a real dmo.Store, so skip-list unit
// tests exercise exactly the object semantics the runtime provides.
type dmoCtx struct {
	st *dmo.Store
	id uint32
}

func newDmoCtx() *dmoCtx {
	st := dmo.NewStore()
	st.Register(1, 256<<20)
	return &dmoCtx{st: st, id: 1}
}

func (d *dmoCtx) Now() sim.Time            { return 0 }
func (d *dmoCtx) Self() actor.ID           { return actor.ID(d.id) }
func (d *dmoCtx) Send(actor.ID, actor.Msg) {}
func (d *dmoCtx) Reply(m actor.Msg) {
	if m.Reply != nil {
		m.Reply(m)
	}
}
func (d *dmoCtx) Alloc(size int) (uint64, error) { return d.st.Alloc(d.id, size, dmo.NIC) }
func (d *dmoCtx) Free(obj uint64) error          { return d.st.Free(d.id, obj) }
func (d *dmoCtx) ObjRead(obj uint64, off, n int) ([]byte, error) {
	return d.st.Read(d.id, obj, off, n)
}
func (d *dmoCtx) ObjWrite(obj uint64, off int, p []byte) error {
	return d.st.Write(d.id, obj, off, p)
}
func (d *dmoCtx) ObjMigrate(obj uint64) (int, error) {
	return d.st.MigrateObject(d.id, obj, dmo.Host)
}
func (d *dmoCtx) ObjMemset(o uint64, off, n int, b byte) error {
	return d.st.Memset(d.id, o, off, n, b)
}
func (d *dmoCtx) ObjMemcpy(dst uint64, do int, src uint64, so, n int) error {
	return d.st.Memcpy(d.id, dst, do, src, so, n)
}
func (d *dmoCtx) ObjMemmove(o uint64, do, so, n int) error {
	return d.st.Memmove(d.id, o, do, so, n)
}
func (d *dmoCtx) Accel(string, int, int) (sim.Time, bool) { return 0, false }
func (d *dmoCtx) OnNIC() bool                             { return true }

func TestSkipListPutGet(t *testing.T) {
	ctx := newDmoCtx()
	s, err := NewSkipList(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		v := []byte(fmt.Sprintf("val-%d", i))
		if err := s.Put(ctx, k, v); err != nil {
			t.Fatal(err)
		}
	}
	if s.Count() != 200 {
		t.Fatalf("Count = %d", s.Count())
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		v, found, tomb, err := s.Get(ctx, k)
		if err != nil || !found || tomb {
			t.Fatalf("Get(%s): %v %v %v", k, found, tomb, err)
		}
		if string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(%s) = %q", k, v)
		}
	}
	if _, found, _, _ := s.Get(ctx, []byte("nope")); found {
		t.Fatal("phantom key")
	}
}

func TestSkipListOverwrite(t *testing.T) {
	ctx := newDmoCtx()
	s, _ := NewSkipList(ctx)
	s.Put(ctx, []byte("k"), []byte("v1"))
	before := s.Bytes()
	s.Put(ctx, []byte("k"), []byte("v2-longer"))
	if s.Count() != 1 {
		t.Fatalf("Count after overwrite = %d", s.Count())
	}
	if s.Bytes() <= before {
		t.Fatalf("bytes should grow with longer value: %d → %d", before, s.Bytes())
	}
	v, found, _, _ := s.Get(ctx, []byte("k"))
	if !found || string(v) != "v2-longer" {
		t.Fatalf("overwrite lost: %q", v)
	}
}

func TestSkipListTombstone(t *testing.T) {
	ctx := newDmoCtx()
	s, _ := NewSkipList(ctx)
	s.Put(ctx, []byte("k"), []byte("v"))
	s.Put(ctx, []byte("k"), nil) // deletion marker
	_, found, tomb, _ := s.Get(ctx, []byte("k"))
	if !found || !tomb {
		t.Fatalf("tombstone: found=%v tomb=%v", found, tomb)
	}
}

func TestSkipListDrainSortedAndResets(t *testing.T) {
	ctx := newDmoCtx()
	s, _ := NewSkipList(ctx)
	keys := []string{"delta", "alpha", "charlie", "bravo"}
	for _, k := range keys {
		s.Put(ctx, []byte(k), []byte("v-"+k))
	}
	objsBefore := ctx.st.Objects()
	entries, err := s.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("drained %d", len(entries))
	}
	if !sort.SliceIsSorted(entries, func(i, j int) bool {
		return bytes.Compare(entries[i].Key, entries[j].Key) < 0
	}) {
		t.Fatal("drain not sorted")
	}
	if s.Count() != 0 || s.Bytes() != 0 {
		t.Fatal("not reset after drain")
	}
	// Node and value objects were freed (only head remains of the list).
	if ctx.st.Objects() >= objsBefore {
		t.Fatalf("objects not freed: %d → %d", objsBefore, ctx.st.Objects())
	}
	// List usable after drain.
	if err := s.Put(ctx, []byte("new"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if v, found, _, _ := s.Get(ctx, []byte("new")); !found || string(v) != "x" {
		t.Fatal("list broken after drain")
	}
}

func TestSkipListVisitsGrowLogarithmically(t *testing.T) {
	ctx := newDmoCtx()
	s, _ := NewSkipList(ctx)
	for i := 0; i < 2000; i++ {
		s.Put(ctx, []byte(fmt.Sprintf("%08d", i)), []byte("v"))
	}
	s.Get(ctx, []byte("00001000"))
	if s.Visits > 200 {
		t.Fatalf("lookup visited %d nodes in a 2000-entry list; tower broken", s.Visits)
	}
	if s.visitCost() <= 0 {
		t.Fatal("no cost")
	}
}

func TestSkipListRegionExhaustion(t *testing.T) {
	st := dmo.NewStore()
	st.Register(1, 2048) // tiny region
	ctx := &dmoCtx{st: st, id: 1}
	s, err := NewSkipList(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for i := 0; i < 100 && firstErr == nil; i++ {
		firstErr = s.Put(ctx, []byte(fmt.Sprintf("k%02d", i)), make([]byte, 64))
	}
	if firstErr == nil {
		t.Fatal("tiny region never exhausted")
	}
}

// Property: skip list agrees with a reference map under random put/
// delete/get sequences.
func TestSkipListMatchesMap(t *testing.T) {
	f := func(ops []uint16) bool {
		ctx := newDmoCtx()
		s, _ := NewSkipList(ctx)
		ref := map[string]string{}
		for i, op := range ops {
			k := fmt.Sprintf("key-%02d", op%40)
			switch op % 3 {
			case 0, 1:
				v := fmt.Sprintf("v%d", i)
				if err := s.Put(ctx, []byte(k), []byte(v)); err != nil {
					return false
				}
				ref[k] = v
			case 2:
				s.Put(ctx, []byte(k), nil)
				delete(ref, k)
			}
		}
		for op := 0; op < 40; op++ {
			k := fmt.Sprintf("key-%02d", op)
			v, found, tomb, err := s.Get(ctx, []byte(k))
			if err != nil {
				return false
			}
			want, ok := ref[k]
			if ok {
				if !found || tomb || string(v) != want {
					return false
				}
			} else if found && !tomb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdCodec(t *testing.T) {
	c := Cmd{Op: OpPut, Key: []byte("k"), Value: []byte("value")}
	out, ok := DecodeCmd(EncodeCmd(c))
	if !ok || out.Op != OpPut || string(out.Key) != "k" || string(out.Value) != "value" {
		t.Fatalf("round trip: %+v %v", out, ok)
	}
	if _, ok := DecodeCmd([]byte{1}); ok {
		t.Fatal("short input accepted")
	}
	if _, ok := DecodeCmd(nil); ok {
		t.Fatal("nil input accepted")
	}
}

func TestEntriesCodec(t *testing.T) {
	in := []Entry{
		{Key: padKey([]byte("a")), Value: []byte("va")},
		{Key: padKey([]byte("b")), Tombstone: true},
		{Key: padKey([]byte("c")), Value: make([]byte, 300)},
	}
	out := DecodeEntries(EncodeEntries(in))
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	if !out[1].Tombstone || out[1].Value != nil {
		t.Fatal("tombstone lost")
	}
	if len(out[2].Value) != 300 {
		t.Fatal("long value truncated")
	}
}
