package rta

// Matcher is an Aho–Corasick multi-pattern substring matcher: the
// filter worker's "pattern matching module" (§4 cites Cox's regexp
// notes; multi-pattern dictionary matching is the workhorse case and a
// DFA walk per byte is exactly the per-byte cost the model charges).
type Matcher struct {
	next []map[byte]int32 // goto function per state
	fail []int32
	out  []bool
	// Patterns echoes the compiled dictionary.
	Patterns []string
}

// NewMatcher compiles the dictionary. Empty patterns are ignored.
func NewMatcher(patterns []string) *Matcher {
	m := &Matcher{}
	m.next = append(m.next, map[byte]int32{}) // root
	m.fail = append(m.fail, 0)
	m.out = append(m.out, false)
	for _, p := range patterns {
		if p == "" {
			continue
		}
		m.Patterns = append(m.Patterns, p)
		s := int32(0)
		for i := 0; i < len(p); i++ {
			c := p[i]
			nxt, ok := m.next[s][c]
			if !ok {
				nxt = int32(len(m.next))
				m.next = append(m.next, map[byte]int32{})
				m.fail = append(m.fail, 0)
				m.out = append(m.out, false)
				m.next[s][c] = nxt
			}
			s = nxt
		}
		m.out[s] = true
	}
	// BFS to build failure links.
	var queue []int32
	for _, s := range m.next[0] {
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for c, v := range m.next[u] {
			queue = append(queue, v)
			f := m.fail[u]
			for {
				if w, ok := m.next[f][c]; ok && w != v {
					m.fail[v] = w
					break
				}
				if f == 0 {
					m.fail[v] = 0
					break
				}
				f = m.fail[f]
			}
			if m.out[m.fail[v]] {
				m.out[v] = true
			}
		}
	}
	return m
}

// step advances the automaton by one byte.
func (m *Matcher) step(s int32, c byte) int32 {
	for {
		if nxt, ok := m.next[s][c]; ok {
			return nxt
		}
		if s == 0 {
			return 0
		}
		s = m.fail[s]
	}
}

// Match reports whether any pattern occurs in text.
func (m *Matcher) Match(text string) bool {
	if len(m.Patterns) == 0 {
		return false
	}
	s := int32(0)
	for i := 0; i < len(text); i++ {
		s = m.step(s, text[i])
		if m.out[s] {
			return true
		}
	}
	return false
}

// States reports the automaton size (tests and cost sanity checks).
func (m *Matcher) States() int { return len(m.next) }
