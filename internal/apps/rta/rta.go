// Package rta is the real-time analytics engine of §4 (derived from
// FlexStorm): data tuples flow through three workers — a filter that
// discards uninteresting tuples with a pattern-matching module, a
// counter that maintains sliding-window counts and periodically emits
// them, and a ranker that sorts by count and forwards the top-n to an
// aggregated ranker. Each worker consults a topology mapping table for
// its successor.
//
// The filter is a real Aho–Corasick multi-pattern matcher; the counter
// keeps a real sliding window; the ranker really sorts. Execution costs
// charged to the simulated cores are derived from the tuple volume and
// Table 3's Top-ranker profile.
package rta

import (
	"bytes"
	"encoding/binary"
	"sort"

	"repro/internal/actor"
	"repro/internal/sim"
)

// Message kinds of the RTA topology.
const (
	// KindTuples carries a batch of raw tuples (client → filter, or
	// filter → counter after filtering).
	KindTuples actor.Kind = iota + 1
	// KindEmit is the counter's periodic window emission to the ranker.
	KindEmit
	// KindTopN is the ranker's output to the aggregated ranker.
	KindTopN
)

// Topology is the mapping table each worker consults for its successor
// (the paper's "topology mapping table").
type Topology struct {
	Filter     actor.ID
	Counter    actor.ID
	Ranker     actor.ID
	Aggregator actor.ID
}

// EncodeTuples packs tuples (word strings) into a message payload.
func EncodeTuples(tuples []string) []byte {
	return []byte(joinSpace(tuples))
}

// DecodeTuples unpacks a payload into tuples.
func DecodeTuples(p []byte) []string {
	if len(p) == 0 {
		return nil
	}
	parts := bytes.Split(p, []byte{' '})
	out := make([]string, 0, len(parts))
	for _, w := range parts {
		if len(w) > 0 {
			out = append(out, string(w))
		}
	}
	return out
}

func joinSpace(ss []string) string {
	var b bytes.Buffer
	for i, s := range ss {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s)
	}
	return b.String()
}

// --- Filter worker -------------------------------------------------

// NewFilter builds the filter actor: tuples matching any of the
// discard patterns are dropped, the rest forward to the counter. It is
// stateless (§4: "Filter actor is a stateless one"), so it can run on
// multiple cores concurrently.
func NewFilter(id actor.ID, topo Topology, discard []string) (*actor.Actor, *Matcher) {
	m := NewMatcher(discard)
	a := &actor.Actor{
		ID:        id,
		Name:      "rta-filter",
		Exclusive: false,
		MemBound:  0.1,
	}
	a.OnMessage = func(ctx actor.Ctx, msg actor.Msg) sim.Time {
		tuples := DecodeTuples(msg.Data)
		kept := tuples[:0]
		var scanned int
		for _, t := range tuples {
			scanned += len(t)
			if !m.Match(t) {
				kept = append(kept, t)
			}
		}
		if len(kept) > 0 {
			ctx.Send(topo.Counter, actor.Msg{
				Kind: KindTuples, Data: EncodeTuples(kept),
				FlowID: msg.FlowID, Origin: msg.Origin, Reply: msg.Reply,
				WireSize: msg.WireSize,
			})
		} else if msg.Reply != nil {
			// Entire batch filtered: acknowledge to the client.
			ctx.Reply(actor.Msg{Kind: KindTuples, Origin: msg.Origin,
				Reply: msg.Reply, WireSize: 64})
		}
		// DFA matching: ≈6ns/byte on the reference core plus dispatch.
		return 300*sim.Nanosecond + sim.Time(6*scanned)
	}
	return a, m
}

// --- Counter worker ------------------------------------------------

// CounterConfig tunes the sliding window.
type CounterConfig struct {
	// WindowSlots is the number of sub-window slots (counts age out
	// slot by slot).
	WindowSlots int
	// EmitEvery emits the current window to the ranker after this many
	// tuple batches.
	EmitEvery int
}

// Counter is the sliding-window count state, exported for tests.
type Counter struct {
	cfg   CounterConfig
	slots []map[string]uint32
	cur   int
	since int
}

// NewCounterState builds counter state.
func NewCounterState(cfg CounterConfig) *Counter {
	if cfg.WindowSlots <= 0 {
		cfg.WindowSlots = 4
	}
	if cfg.EmitEvery <= 0 {
		cfg.EmitEvery = 8
	}
	c := &Counter{cfg: cfg}
	c.slots = make([]map[string]uint32, cfg.WindowSlots)
	for i := range c.slots {
		c.slots[i] = map[string]uint32{}
	}
	return c
}

// Add counts one tuple in the current slot.
func (c *Counter) Add(t string) { c.slots[c.cur][t]++ }

// Advance rotates to the next slot, expiring its previous contents.
func (c *Counter) Advance() {
	c.cur = (c.cur + 1) % len(c.slots)
	c.slots[c.cur] = map[string]uint32{}
}

// Totals sums counts across the window.
func (c *Counter) Totals() map[string]uint32 {
	out := map[string]uint32{}
	for _, s := range c.slots {
		for k, v := range s {
			out[k] += v
		}
	}
	return out
}

// EncodeCounts packs token counts for the emit message.
func EncodeCounts(m map[string]uint32) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	for _, k := range keys {
		var cnt [4]byte
		binary.LittleEndian.PutUint32(cnt[:], m[k])
		b.WriteByte(byte(len(k)))
		b.WriteString(k)
		b.Write(cnt[:])
	}
	return b.Bytes()
}

// DecodeCounts unpacks an emit payload.
func DecodeCounts(p []byte) map[string]uint32 {
	out := map[string]uint32{}
	for len(p) >= 1 {
		n := int(p[0])
		if len(p) < 1+n+4 {
			break
		}
		k := string(p[1 : 1+n])
		out[k] = binary.LittleEndian.Uint32(p[1+n : 1+n+4])
		p = p[1+n+4:]
	}
	return out
}

// NewCounter builds the counter actor. It uses a software-managed
// cache for statistics (§4) — modeled by the MemBound fraction — and
// periodically emits a window snapshot to the ranker.
func NewCounter(id actor.ID, topo Topology, cfg CounterConfig) (*actor.Actor, *Counter) {
	st := NewCounterState(cfg)
	a := &actor.Actor{
		ID:        id,
		Name:      "rta-counter",
		Exclusive: true, // mutates shared window state
		MemBound:  0.3,
	}
	a.OnMessage = func(ctx actor.Ctx, msg actor.Msg) sim.Time {
		tuples := DecodeTuples(msg.Data)
		for _, t := range tuples {
			st.Add(t)
		}
		st.since++
		cost := 200*sim.Nanosecond + sim.Time(len(tuples))*120*sim.Nanosecond
		if st.since >= st.cfg.EmitEvery {
			st.since = 0
			totals := st.Totals()
			st.Advance()
			payload := EncodeCounts(totals)
			ctx.Send(topo.Ranker, actor.Msg{Kind: KindEmit, Data: payload, FlowID: msg.FlowID})
			cost += sim.Time(len(totals)) * 80 * sim.Nanosecond
		}
		if msg.Reply != nil {
			ctx.Reply(actor.Msg{Kind: KindTuples, Origin: msg.Origin,
				Reply: msg.Reply, WireSize: 64})
		}
		return cost
	}
	return a, st
}

// --- Ranker worker -------------------------------------------------

// Entry is one ranked token.
type Entry struct {
	Token string
	Count uint32
}

// Ranker holds the ranker's consolidated top-n object (§4: "we
// consolidate all top-n data tuples into one object").
type Ranker struct {
	TopN int
	best map[string]uint32
}

// NewRankerState builds ranker state.
func NewRankerState(topN int) *Ranker {
	if topN <= 0 {
		topN = 10
	}
	return &Ranker{TopN: topN, best: map[string]uint32{}}
}

// Merge folds an emitted window in and returns the current top-n using
// a real sort (the paper's ranker performs quicksort).
func (r *Ranker) Merge(counts map[string]uint32) []Entry {
	for k, v := range counts {
		if v > r.best[k] {
			r.best[k] = v
		}
	}
	all := make([]Entry, 0, len(r.best))
	for k, v := range r.best {
		all = append(all, Entry{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Token < all[j].Token
	})
	if len(all) > r.TopN {
		all = all[:r.TopN]
	}
	// Bound retained state to a multiple of top-n so the object stays
	// small but stable.
	if len(r.best) > 64*r.TopN {
		keep := map[string]uint32{}
		for _, e := range all {
			keep[e.Token] = e.Count
		}
		r.best = keep
	}
	return all
}

// EncodeTopN packs ranked entries.
func EncodeTopN(es []Entry) []byte {
	m := make(map[string]uint32, len(es))
	for _, e := range es {
		m[e.Token] = e.Count
	}
	return EncodeCounts(m)
}

// sortCost models quicksort on n elements against Table 3's Top-ranker
// measurement (34µs for a 1KB request ≈ 128 8B elements ⇒ ≈38ns per
// n·log₂n unit).
func sortCost(n int) sim.Time {
	if n <= 1 {
		return 500 * sim.Nanosecond
	}
	log := 0
	for v := n; v > 1; v >>= 1 {
		log++
	}
	return sim.Time(38 * n * log)
}

// NewRanker builds the ranker actor. Its quicksort makes it the RTA
// topology's high-dispersion member — the one iPipe migrates to the
// host when network load is high (§4).
func NewRanker(id actor.ID, topo Topology, topN int) (*actor.Actor, *Ranker) {
	st := NewRankerState(topN)
	a := &actor.Actor{
		ID:        id,
		Name:      "rta-ranker",
		Exclusive: true,
		MemBound:  0.05, // compute-bound (Table 3: IPC 1.7, MPKI 0.1)
	}
	a.OnMessage = func(ctx actor.Ctx, msg actor.Msg) sim.Time {
		counts := DecodeCounts(msg.Data)
		top := st.Merge(counts)
		if topo.Aggregator != 0 {
			ctx.Send(topo.Aggregator, actor.Msg{Kind: KindTopN, Data: EncodeTopN(top)})
		}
		return sortCost(len(st.best))
	}
	return a, st
}

// NewAggregator builds the aggregated ranker that consolidates top-n
// streams from all workers; onUpdate observes each consolidated view
// (the experiment harness uses it).
func NewAggregator(id actor.ID, topN int, onUpdate func([]Entry)) (*actor.Actor, *Ranker) {
	st := NewRankerState(topN)
	a := &actor.Actor{
		ID:        id,
		Name:      "rta-aggregator",
		Exclusive: true,
		MemBound:  0.05,
	}
	a.OnMessage = func(ctx actor.Ctx, msg actor.Msg) sim.Time {
		top := st.Merge(DecodeCounts(msg.Data))
		if onUpdate != nil {
			onUpdate(top)
		}
		return sortCost(len(st.best))
	}
	return a, st
}
