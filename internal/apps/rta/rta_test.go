package rta

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/actor"
	"repro/internal/sim"
)

// fakeCtx is a minimal actor.Ctx for unit-testing handlers in isolation.
type fakeCtx struct {
	sent    []actor.Msg
	replies []actor.Msg
}

func (f *fakeCtx) Now() sim.Time                                          { return 0 }
func (f *fakeCtx) Self() actor.ID                                         { return 0 }
func (f *fakeCtx) Send(dst actor.ID, m actor.Msg)                         { m.Dst = dst; f.sent = append(f.sent, m) }
func (f *fakeCtx) Reply(m actor.Msg)                                      { f.replies = append(f.replies, m) }
func (f *fakeCtx) Alloc(size int) (uint64, error)                         { return 1, nil }
func (f *fakeCtx) Free(obj uint64) error                                  { return nil }
func (f *fakeCtx) ObjRead(o uint64, off, n int) ([]byte, error)           { return make([]byte, n), nil }
func (f *fakeCtx) ObjWrite(o uint64, off int, p []byte) error             { return nil }
func (f *fakeCtx) ObjMigrate(o uint64) (int, error)                       { return 0, nil }
func (f *fakeCtx) ObjMemset(o uint64, off, n int, b byte) error           { return nil }
func (f *fakeCtx) ObjMemcpy(d uint64, do int, s2 uint64, so, n int) error { return nil }
func (f *fakeCtx) ObjMemmove(o uint64, do, so, n int) error               { return nil }

func (f *fakeCtx) Accel(name string, b, bs int) (sim.Time, bool) { return 0, false }
func (f *fakeCtx) OnNIC() bool                                   { return true }

func TestMatcherBasics(t *testing.T) {
	m := NewMatcher([]string{"spam", "junk"})
	cases := map[string]bool{
		"this is spam": true,
		"junkmail":     true,
		"sp am":        false,
		"clean text":   false,
		"jjunkk":       true,
		"spa":          false,
		"sspam":        true,
	}
	for text, want := range cases {
		if got := m.Match(text); got != want {
			t.Errorf("Match(%q) = %v, want %v", text, got, want)
		}
	}
}

func TestMatcherOverlappingPatterns(t *testing.T) {
	m := NewMatcher([]string{"he", "she", "hers"})
	for _, text := range []string{"she", "hers", "ushers", "xhey"} {
		if !m.Match(text) {
			t.Errorf("Match(%q) = false", text)
		}
	}
	if m.Match("hr") || m.Match("es") {
		t.Error("false positives")
	}
}

func TestMatcherEmptyDictionary(t *testing.T) {
	m := NewMatcher(nil)
	if m.Match("anything") {
		t.Fatal("empty dictionary matched")
	}
	m2 := NewMatcher([]string{""})
	if m2.Match("x") {
		t.Fatal("empty pattern matched")
	}
}

// Property: Matcher agrees with strings.Contains for single patterns.
func TestMatcherAgreesWithContains(t *testing.T) {
	f := func(pat, text string) bool {
		if pat == "" {
			return true
		}
		// Constrain to small byte alphabets for meaningful overlap.
		norm := func(s string) string {
			b := []byte(s)
			for i := range b {
				b[i] = 'a' + b[i]%4
			}
			return string(b)
		}
		p, x := norm(pat), norm(text)
		if len(p) > 6 {
			p = p[:6]
		}
		m := NewMatcher([]string{p})
		return m.Match(x) == strings.Contains(x, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTupleCodecRoundTrip(t *testing.T) {
	in := []string{"alpha", "beta", "gamma"}
	out := DecodeTuples(EncodeTuples(in))
	if len(out) != 3 || out[0] != "alpha" || out[2] != "gamma" {
		t.Fatalf("round trip = %v", out)
	}
	if DecodeTuples(nil) != nil {
		t.Fatal("nil decode should be nil")
	}
}

func TestCountsCodecRoundTrip(t *testing.T) {
	in := map[string]uint32{"a": 1, "bb": 70000, "ccc": 3}
	out := DecodeCounts(EncodeCounts(in))
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	for k, v := range in {
		if out[k] != v {
			t.Fatalf("%q: %d != %d", k, out[k], v)
		}
	}
}

func TestFilterDropsMatching(t *testing.T) {
	topo := Topology{Counter: 2}
	a, _ := NewFilter(1, topo, []string{"bad"})
	ctx := &fakeCtx{}
	a.OnMessage(ctx, actor.Msg{Kind: KindTuples, Data: EncodeTuples([]string{"good", "badword", "fine"})})
	if len(ctx.sent) != 1 {
		t.Fatalf("forwarded %d messages", len(ctx.sent))
	}
	kept := DecodeTuples(ctx.sent[0].Data)
	if len(kept) != 2 || kept[0] != "good" || kept[1] != "fine" {
		t.Fatalf("kept %v", kept)
	}
	if ctx.sent[0].Dst != 2 {
		t.Fatal("not forwarded to counter")
	}
}

func TestFilterAcksFullyFilteredBatch(t *testing.T) {
	a, _ := NewFilter(1, Topology{Counter: 2}, []string{"x"})
	ctx := &fakeCtx{}
	replied := false
	a.OnMessage(ctx, actor.Msg{
		Data:   EncodeTuples([]string{"xx", "x1"}),
		Origin: "cli",
		Reply:  func(actor.Msg) { replied = true },
	})
	if len(ctx.sent) != 0 {
		t.Fatal("empty batch forwarded")
	}
	if len(ctx.replies) != 1 {
		t.Fatal("client not acknowledged")
	}
	_ = replied
}

func TestFilterCostScalesWithBytes(t *testing.T) {
	a, _ := NewFilter(1, Topology{Counter: 2}, []string{"q"})
	ctx := &fakeCtx{}
	small := a.OnMessage(ctx, actor.Msg{Data: EncodeTuples([]string{"ab"})})
	big := a.OnMessage(ctx, actor.Msg{Data: EncodeTuples([]string{strings.Repeat("ab", 500)})})
	if big <= small {
		t.Fatal("cost should grow with scanned bytes")
	}
}

func TestCounterWindowAndEmit(t *testing.T) {
	topo := Topology{Ranker: 3}
	a, st := NewCounter(2, topo, CounterConfig{WindowSlots: 2, EmitEvery: 2})
	ctx := &fakeCtx{}
	a.OnMessage(ctx, actor.Msg{Data: EncodeTuples([]string{"x", "x", "y"})})
	if len(ctx.sent) != 0 {
		t.Fatal("emitted before EmitEvery batches")
	}
	a.OnMessage(ctx, actor.Msg{Data: EncodeTuples([]string{"x"})})
	if len(ctx.sent) != 1 || ctx.sent[0].Kind != KindEmit {
		t.Fatalf("emit not sent: %v", ctx.sent)
	}
	counts := DecodeCounts(ctx.sent[0].Data)
	if counts["x"] != 3 || counts["y"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	_ = st
}

func TestCounterSlidingWindowExpiry(t *testing.T) {
	st := NewCounterState(CounterConfig{WindowSlots: 2, EmitEvery: 100})
	st.Add("k")
	st.Advance()
	st.Add("k")
	if st.Totals()["k"] != 2 {
		t.Fatalf("window should hold both slots: %v", st.Totals())
	}
	st.Advance() // wraps: expires the first slot
	if st.Totals()["k"] != 1 {
		t.Fatalf("expired slot still counted: %v", st.Totals())
	}
}

func TestRankerTopNOrdering(t *testing.T) {
	a, st := NewRanker(3, Topology{Aggregator: 4}, 3)
	ctx := &fakeCtx{}
	a.OnMessage(ctx, actor.Msg{Kind: KindEmit, Data: EncodeCounts(map[string]uint32{
		"a": 5, "b": 9, "c": 1, "d": 7, "e": 3,
	})})
	if len(ctx.sent) != 1 || ctx.sent[0].Kind != KindTopN {
		t.Fatalf("topn not forwarded: %v", ctx.sent)
	}
	top := DecodeCounts(ctx.sent[0].Data)
	if len(top) != 3 {
		t.Fatalf("topN size = %d", len(top))
	}
	for _, k := range []string{"b", "d", "a"} {
		if _, ok := top[k]; !ok {
			t.Fatalf("top3 missing %q: %v", k, top)
		}
	}
	_ = st
}

func TestRankerMergeKeepsMaxima(t *testing.T) {
	st := NewRankerState(2)
	st.Merge(map[string]uint32{"a": 5})
	top := st.Merge(map[string]uint32{"a": 3, "b": 4})
	if top[0].Token != "a" || top[0].Count != 5 {
		t.Fatalf("merge lost maximum: %v", top)
	}
}

func TestSortCostMonotone(t *testing.T) {
	if sortCost(10) >= sortCost(100) || sortCost(100) >= sortCost(1000) {
		t.Fatal("sort cost not monotone")
	}
	// Calibration: ≈128 elements should land near Table 3's 34µs.
	c := sortCost(128)
	if c < 25*sim.Microsecond || c > 45*sim.Microsecond {
		t.Fatalf("sortCost(128) = %v, want ≈34µs", c)
	}
}

func TestAggregatorObservesUpdates(t *testing.T) {
	var last []Entry
	a, _ := NewAggregator(4, 2, func(top []Entry) { last = top })
	ctx := &fakeCtx{}
	a.OnMessage(ctx, actor.Msg{Data: EncodeCounts(map[string]uint32{"z": 10, "y": 20})})
	if len(last) != 2 || last[0].Token != "y" {
		t.Fatalf("aggregated view = %v", last)
	}
}
