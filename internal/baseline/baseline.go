// Package baseline provides the comparators the paper evaluates iPipe
// against:
//
//   - the DPDK host-only baseline (§5.1): a node without a SmartNIC,
//     where the full application runs on host cores behind a
//     kernel-bypass stack — built by DPDKNode;
//   - Floem-style static offloading (§5.6): computations placed on the
//     SmartNIC at configuration time and never moved, with the
//     language runtime's queue-multiplexing overhead — FloemConfig;
//   - the standalone FCFS and DRR scheduling disciplines of §5.4 —
//     FCFSOnly and DRROnly scheduler configs.
package baseline

import (
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
)

// DPDKNode returns a node config for the DPDK baseline: no SmartNIC,
// everything on the host. The link speed matches what the iPipe node
// under comparison would use.
func DPDKNode(name string, linkGbps float64) core.Config {
	return core.Config{Name: name, LinkGbps: linkGbps, RawState: false}
}

// FloemMultiplexOverhead is the per-message queue-multiplexing cost of
// Floem's language runtime on NIC cores. Floem routes every element
// input through logical queues with per-packet state management; the
// paper attributes its lower per-core throughput partly to this
// multiplexing, which iPipe avoids with direct dispatch (§5.6).
const FloemMultiplexOverhead = 650 * sim.Nanosecond

// FloemConfig returns a node config modeling a Floem deployment on the
// given SmartNIC: offloaded elements are stationary (no migration), and
// dispatch pays the logical-queue multiplexing overhead.
func FloemConfig(name string, nic *spec.NICModel) core.Config {
	scfg := sched.DefaultConfig(nic.Cores)
	scfg.TailThresh = 0 // no adaptive downgrade: elements are static
	scfg.MeanThresh = 0
	scfg.Shuffle = !nic.HasTrafficManager
	scfg.ExtraDispatch = FloemMultiplexOverhead
	return core.Config{
		Name:             name,
		NIC:              nic,
		DisableMigration: true,
		SchedOverride:    &scfg,
	}
}

// FCFSOnly returns a scheduler config that never downgrades or
// migrates: pure first-come-first-served over the shared queue.
func FCFSOnly(nic *spec.NICModel) sched.Config {
	cfg := sched.DefaultConfig(nic.Cores)
	cfg.TailThresh = 0
	cfg.MeanThresh = 0
	cfg.Shuffle = !nic.HasTrafficManager
	return cfg
}

// DRROnly returns a scheduler config that serves every actor through
// the DRR runnable queue: the pure processor-sharing approximation.
func DRROnly(nic *spec.NICModel) sched.Config {
	cfg := sched.DefaultConfig(nic.Cores)
	cfg.TailThresh = 0
	cfg.MeanThresh = 0
	cfg.AllDRR = true
	cfg.Shuffle = !nic.HasTrafficManager
	return cfg
}

// Hybrid returns the full iPipe scheduler config for a NIC model (the
// thresholds of §3.2.3), for symmetric use beside FCFSOnly/DRROnly.
func Hybrid(nic *spec.NICModel) sched.Config {
	cfg := sched.DefaultConfig(nic.Cores)
	cfg.TailThresh = nic.TailThreshUs
	cfg.MeanThresh = nic.MeanThreshUs
	cfg.Shuffle = !nic.HasTrafficManager
	return cfg
}
