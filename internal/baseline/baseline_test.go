package baseline

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
)

func TestConfigsShapes(t *testing.T) {
	nic := spec.LiquidIOII_CN2350()
	f := FCFSOnly(nic)
	if f.TailThresh != 0 || f.MeanThresh != 0 || f.AllDRR {
		t.Fatalf("FCFSOnly misconfigured: %+v", f)
	}
	d := DRROnly(nic)
	if !d.AllDRR {
		t.Fatal("DRROnly must set AllDRR")
	}
	h := Hybrid(nic)
	if h.TailThresh != nic.TailThreshUs || h.MeanThresh != nic.MeanThreshUs {
		t.Fatal("Hybrid must carry the model thresholds")
	}
	// Off-path card selects the shuffle layer.
	if !Hybrid(spec.Stingray_PS225()).Shuffle {
		t.Fatal("Stingray hybrid should use the shuffle layer")
	}
	if Hybrid(nic).Shuffle {
		t.Fatal("LiquidIO has a traffic manager")
	}
}

func TestFloemConfigIsStatic(t *testing.T) {
	cfg := FloemConfig("srv", spec.LiquidIOII_CN2350())
	if !cfg.DisableMigration {
		t.Fatal("Floem elements must be stationary")
	}
	if cfg.SchedOverride == nil || cfg.SchedOverride.ExtraDispatch != FloemMultiplexOverhead {
		t.Fatal("Floem multiplexing overhead missing")
	}
	if cfg.SchedOverride.TailThresh != 0 {
		t.Fatal("Floem has no adaptive downgrade")
	}
}

func TestDPDKNodeHasNoNIC(t *testing.T) {
	cfg := DPDKNode("srv", 25)
	if cfg.NIC != nil || cfg.LinkGbps != 25 {
		t.Fatalf("DPDK node misconfigured: %+v", cfg)
	}
}

// TestDRROnlySchedulerServes exercises the AllDRR path end to end.
func TestDRROnlySchedulerServes(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DRROnly(spec.LiquidIOII_CN2350())
	served := 0
	s := sched.New(eng, cfg, sched.Hooks{
		Run: func(a *actor.Actor, m actor.Msg) sim.Time {
			served++
			return 2 * sim.Microsecond
		},
		FwdTax:  func(int) sim.Time { return 100 * sim.Nanosecond },
		Quantum: func(int) sim.Time { return 5 * sim.Microsecond },
	})
	a := &actor.Actor{ID: 1}
	s.AddActor(a)
	if !a.InDRR {
		t.Fatal("actor not placed in DRR under AllDRR")
	}
	for i := 0; i < 20; i++ {
		s.Arrive(actor.Msg{Dst: 1})
	}
	eng.Run()
	if served != 20 {
		t.Fatalf("DRR-only served %d of 20", served)
	}
	if a.InDRR != true {
		t.Fatal("actor left DRR despite AllDRR")
	}
}
