package bench

import (
	"fmt"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/msgring"
	"repro/internal/pcie"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

func init() {
	register("ablate-ring", "Ablation: message-ring DMA batching (scatter-gather aggregation, I6)", ablateRing)
	register("ablate-queue", "Ablation: hardware shared queue vs shuffle layer vs IOKernel dispatcher (§3.2.6)", ablateQueue)
	register("ablate-accel", "Ablation: accelerator invocation batching (I4)", ablateAccel)
	register("ablate-migration", "Ablation: dynamic migration on/off under a load swing", ablateMigration)
	register("ablate-workingset", "Ablation: working-set size vs NIC/host placement (I5)", ablateWorkingSet)
}

// ablateRing quantifies why the rings batch non-blocking DMA writes
// (§3.5): NIC→host message throughput and per-message core cost at
// batch sizes 1/4/16.
func ablateRing(opts Options) *Result {
	r := &Result{Header: []string{"batch", "msgs/s(M)", "core-cost/msg(ns)", "DMA-writes", "credit-syncs"}}
	const n = 20000
	batches := []int{1, 2, 4, 8, 16}
	rows := sweepMap(opts, len(batches), func(bi int) []any {
		batch := batches[bi]
		eng := sim.NewEngine(opts.seed())
		dma := pcie.New(eng, spec.LiquidIOII_CN2350().DMA)
		ch := msgring.NewChannel(eng, dma, 1024, batch)
		delivered := 0
		ch.OnHostReady = func() {
			for {
				ms, _ := ch.HostPoll(64)
				if len(ms) == 0 {
					return
				}
				delivered += len(ms)
			}
		}
		var coreCost sim.Time
		var push func(i int)
		push = func(i int) {
			if i >= n {
				ch.Flush()
				return
			}
			c, err := ch.NICPush(msgring.Message{Data: make([]byte, 64)})
			if err != nil {
				// Ring full: wait for credits.
				eng.After(sim.Microsecond, func() { push(i) })
				return
			}
			coreCost += c
			// Next push after the core-side cost elapses (a tight
			// producer loop).
			eng.After(c, func() { push(i + 1) })
		}
		push(0)
		eng.Run()
		el := eng.Now().Seconds()
		return []any{batch, float64(delivered) / el / 1e6, float64(coreCost) / float64(n),
			dma.Writes, ch.ToHost().CreditSyncs}
	})
	for _, row := range rows {
		r.Add(row...)
	}
	r.Note("aggregating messages into one scatter-gather PCIe write amortizes the per-transfer cost (I6)")
	return r
}

// ablateQueue compares the three §3.2.6 ingress designs on identical
// hardware and workload: the on-path hardware shared queue, the
// software shuffle layer with work stealing, and the IOKernel-style
// dedicated dispatcher core.
func ablateQueue(opts Options) *Result {
	window := 20 * sim.Millisecond
	if opts.Quick {
		window = 5 * sim.Millisecond
	}
	r := &Result{Header: []string{"queue", "flows", "load", "p50(us)", "p99(us)", "served"}}
	run := func(mode string, flows int, load float64) (p50, p99 float64, served uint64) {
		model := spec.LiquidIOII_CN2350()
		cfg := sched.DefaultConfig(model.Cores)
		switch mode {
		case "software-shuffle":
			cfg.Shuffle = true
		case "iokernel":
			cfg.IOKernel = true
		}
		cl := core.NewCluster(opts.seed())
		n := cl.AddNode(core.Config{Name: "srv", NIC: model, SchedOverride: &cfg, DisableMigration: true})
		a := &actor.Actor{
			ID: 1,
			OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
				ctx.Reply(m)
				return 8 * sim.Microsecond
			},
		}
		n.Register(a, true, 0)
		capacity := float64(model.Cores) / 8.4e-6
		client := workload.NewClient(cl, "cli", model.LinkGbps)
		client.OpenLoop(capacity*load, window, func(i uint64) workload.Request {
			return workload.Request{Node: "srv", Dst: 1, Size: 512, FlowID: i % uint64(flows)}
		})
		cl.Eng.Run()
		return client.Lat.Percentile(50), client.Lat.Percentile(99), client.Received
	}
	type point struct {
		flows int
		load  float64
		mode  string
	}
	var pts []point
	for _, flows := range []int{2, 64} {
		for _, load := range []float64{0.5, 0.9} {
			for _, mode := range []string{"hardware-shared", "software-shuffle", "iokernel"} {
				pts = append(pts, point{flows, load, mode})
			}
		}
	}
	rows := sweepMap(opts, len(pts), func(i int) []any {
		p := pts[i]
		p50, p99, served := run(p.mode, p.flows, p.load)
		return []any{p.mode, p.flows, fmt.Sprintf("%.1f", p.load), p50, p99, served}
	})
	for _, row := range rows {
		r.Add(row...)
	}
	r.Note("work stealing repairs the shuffle layer's flow-steering imbalance (ZygOS-style); the IOKernel dispatcher loses a core, adds a routing hop, and pins each flow to one worker to keep it ordered — so few-flow workloads can use only as many workers as flows; the hardware queue needs neither (I2)")
	return r
}

// ablateAccel sweeps the accelerator batch size on the IPSec datapath:
// batching amortizes invocation cost but ties up NIC cores (I4).
func ablateAccel(opts Options) *Result {
	r := &Result{Header: []string{"unit", "bsz", "per-req(us,1KB)", "throughput(Kops/unit)"}}
	m := spec.LiquidIOII_CN2350()
	for _, name := range []string{"AES", "SHA-1", "MD5", "CRC"} {
		a := m.Accels[name]
		for _, bsz := range []int{1, 8, 32} {
			lat, ok := a.Latency(bsz)
			if !ok {
				continue
			}
			r.Add(name, bsz, lat.Micros(), 1e-3/lat.Seconds())
		}
	}
	r.Note("batch 32 vs 1: AES %.1fX, MD5 %.1fX, CRC %.1fX per-request speedup (Table 3)",
		ratioAccel(m, "AES"), ratioAccel(m, "MD5"), ratioAccel(m, "CRC"))
	r.Note("the cost: a batching core holds requests back, adding queueing for incoming traffic (§2.2.3)")
	return r
}

func ratioAccel(m *spec.NICModel, name string) float64 {
	a := m.Accels[name]
	b1, _ := a.Latency(1)
	b32, ok := a.Latency(32)
	if !ok {
		return 1
	}
	return float64(b1) / float64(b32)
}

// ablateMigration contrasts dynamic migration with static placement
// under a load swing: moderate → overload → moderate. Static NIC
// placement collapses during the burst; iPipe sheds the hot actor to
// the host and recovers.
func ablateMigration(opts Options) *Result {
	window := 30 * sim.Millisecond
	if opts.Quick {
		window = 12 * sim.Millisecond
	}
	r := &Result{Header: []string{"placement", "served", "p50(us)", "p99(us)", "migrations"}}
	run := func(dynamic bool) []any {
		cl := core.NewCluster(opts.seed())
		n := cl.AddNode(core.Config{
			Name: "srv", NIC: spec.LiquidIOII_CN2350(),
			DisableMigration: !dynamic,
		})
		// A heavy stateful actor: 60µs per request on the NIC, ~17µs on
		// the host (compute-bound).
		heavy := &actor.Actor{
			ID: 1, MemBound: 0.1,
			OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
				ctx.Reply(m)
				return 60 * sim.Microsecond
			},
		}
		n.Register(heavy, true, 0)
		client := workload.NewClient(cl, "cli", 10)
		third := window / 3
		// Moderate (fits the NIC), burst (exceeds it), moderate.
		client.OpenLoop(100000, third, func(i uint64) workload.Request {
			return workload.Request{Node: "srv", Dst: 1, Size: 512, FlowID: i}
		})
		cl.Eng.At(third, func() {
			client.OpenLoop(400000, third, func(i uint64) workload.Request {
				return workload.Request{Node: "srv", Dst: 1, Size: 512, FlowID: i}
			})
		})
		cl.Eng.At(2*third, func() {
			client.OpenLoop(100000, third, func(i uint64) workload.Request {
				return workload.Request{Node: "srv", Dst: 1, Size: 512, FlowID: i}
			})
		})
		cl.Eng.Run()
		name := "static-NIC (Floem-style)"
		migs := uint64(0)
		if dynamic {
			name = "iPipe dynamic"
			migs = n.Sched.PushMigrations + n.Sched.PullMigrations
		}
		return []any{name, client.Received, client.Lat.Percentile(50), client.Lat.Percentile(99), migs}
	}
	rows := sweepMap(opts, 2, func(i int) []any { return run(i == 1) })
	for _, row := range rows {
		r.Add(row...)
	}
	r.Note("the burst exceeds the NIC processor's aggregate capacity for this actor; dynamic placement sheds it to the host mid-run (§5.6's argument against static offloading)")
	return r
}

// ablateWorkingSet quantifies implication I5: once an actor's working
// set exceeds the SmartNIC's L2 (4MB on the LiquidIOII), every pointer
// chase pays NIC DRAM latency (115ns) while the host still serves much
// of it from its larger L3 — so memory-hungry actors can run *slower*
// on the NIC despite the offload saving host cycles.
func ablateWorkingSet(opts Options) *Result {
	m := spec.LiquidIOII_CN2350()
	h := spec.IntelHost()
	r := &Result{Header: []string{"working-set", "accesses/req", "NIC-exec(us)", "host-exec(us)", "NIC/host"}}
	const accesses = 64
	for _, ws := range []int{256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20} {
		nic := float64(m.Memory.AccessCost(ws, accesses)) / 1e3
		host := float64(h.Memory.AccessCost(ws, accesses)) / 1e3
		r.Add(byteSize(ws), accesses, nic, host, nic/host)
	}
	r.Note("crossover at the NIC L2 capacity (4MB): beyond it the NIC pays DRAM on every miss (Table 2: 115ns vs host 22–62ns) — I5's rule for stateful offloading")
	return r
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	default:
		return fmt.Sprintf("%dKB", n>>10)
	}
}
