package bench

import (
	"fmt"

	"repro/internal/actor"
	"repro/internal/apps/dt"
	"repro/internal/apps/rkv"
	"repro/internal/apps/rta"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

func init() {
	register("fig13", "Host CPU cores used: DPDK vs iPipe, by packet size and link speed", fig13)
	register("fig14", "Latency vs per-core throughput, 10GbE, 512B (RTA/DT/RKV)", fig14)
	register("fig15", "Latency vs per-core throughput, 25GbE, 512B (RTA/DT/RKV)", fig15)
	register("fig17", "Framework overhead: RKV host CPU with and without iPipe", fig17)
}

// appRun is one measured deployment run.
type appRun struct {
	// CoresUsed per measured role node.
	CoresUsed map[string]float64
	// Tput is achieved ops/sec; P50/P99 are latency percentiles (µs),
	// valid only when LatOK (a window that completed nothing has no
	// latency — reporters print "-" rather than a fake 0).
	Tput     float64
	P50, P99 float64
	LatOK    bool
	Received uint64
	Sent     uint64
}

// latCell formats a latency percentile, "-" when the sample was empty.
func latCell(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// nicFor returns the NIC model for a link speed, or nil for DPDK mode.
func nicFor(linkGbps float64, offload bool) *spec.NICModel {
	if !offload {
		return nil
	}
	if linkGbps >= 25 {
		return spec.LiquidIOII_CN2360()
	}
	return spec.LiquidIOII_CN2350()
}

const appShards = 4

// runRTA deploys the analytics pipeline on 3 worker nodes and drives
// tuple batches at every worker. Measured role: "RTA Worker" (node 0).
func runRTA(seed uint64, linkGbps float64, offload bool, size, depth int, window sim.Time) appRun {
	cl := core.NewCluster(seed)
	nic := nicFor(linkGbps, offload)
	var nodes []*core.Node
	for i := 0; i < 3; i++ {
		nodes = append(nodes, cl.AddNode(core.Config{
			Name: fmt.Sprintf("w%d", i), NIC: nic, LinkGbps: linkGbps,
		}))
	}
	// Per node and shard: filter → counter → ranker; one aggregator on
	// worker 0's host.
	aggID := actor.ID(900)
	agg, _ := rta.NewAggregator(aggID, 10, nil)
	nodes[0].Register(agg, false, 0)
	id := actor.ID(1000)
	var filters []struct {
		node string
		id   actor.ID
	}
	for ni, n := range nodes {
		for s := 0; s < appShards; s++ {
			topo := rta.Topology{Filter: id, Counter: id + 1, Ranker: id + 2, Aggregator: aggID}
			f, _ := rta.NewFilter(topo.Filter, topo, []string{"xanadu", "qzx"})
			c, _ := rta.NewCounter(topo.Counter, topo, rta.CounterConfig{WindowSlots: 4, EmitEvery: 16})
			r, _ := rta.NewRanker(topo.Ranker, topo, 10)
			n.Register(f, offload, 0)
			n.Register(c, offload, 0)
			n.Register(r, offload, 0)
			filters = append(filters, struct {
				node string
				id   actor.ID
			}{n.Name, topo.Filter})
			id += 3
			_ = ni
		}
	}
	client := workload.NewClient(cl, "cli", linkGbps)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	// Tuples per request scale with packet size (§5.1).
	perReq := size / 32
	if perReq < 1 {
		perReq = 1
	}
	z := workload.NewZipf(cl.Eng.Rand(), uint64(len(words)), 0.9)
	client.ClosedLoop(depth*len(filters), window, func(i uint64) workload.Request {
		t := filters[int(i)%len(filters)]
		tuples := make([]string, perReq)
		for j := range tuples {
			tuples[j] = words[z.Next()]
		}
		return workload.Request{
			Node: t.node, Dst: t.id, Kind: rta.KindTuples,
			Data: rta.EncodeTuples(tuples), Size: size, FlowID: i,
		}
	})
	cl.Eng.RunUntil(window)
	return collect(cl, client, window, map[string]string{"RTA Worker": "w0"})
}

// runDT deploys coordinator + two participants. Measured roles:
// "DT Coord." (coordinator node) and "DT Parti." (participant node).
func runDT(seed uint64, linkGbps float64, offload bool, size, depth int, window sim.Time) appRun {
	cl := core.NewCluster(seed)
	nic := nicFor(linkGbps, offload)
	nc := cl.AddNode(core.Config{Name: "coord", NIC: nic, LinkGbps: linkGbps})
	n1 := cl.AddNode(core.Config{Name: "part1", NIC: nic, LinkGbps: linkGbps})
	n2 := cl.AddNode(core.Config{Name: "part2", NIC: nic, LinkGbps: linkGbps})
	var coords []actor.ID
	id := actor.ID(1000)
	for s := 0; s < appShards; s++ {
		st1, st2 := dt.NewStore(), dt.NewStore()
		p1 := dt.NewParticipant(id+1, st1)
		p2 := dt.NewParticipant(id+2, st2)
		logger := dt.NewLogger(id+3, nil)
		coord := dt.NewCoordinator(id, []actor.ID{id + 1, id + 2}, id+3)
		n1.Register(p1, offload, 0)
		n2.Register(p2, offload, 0)
		nc.Register(logger, false, 0)
		nc.Register(coord.Actor, offload, 0)
		coords = append(coords, id)
		id += 4
	}
	client := workload.NewClient(cl, "cli", linkGbps)
	valLen := size / 4
	client.ClosedLoop(depth*len(coords), window, func(i uint64) workload.Request {
		// Multi-key read-write txn: two reads, one write (§5.1).
		txn := dt.Txn{
			Reads: []dt.Op{
				{Key: []byte(fmt.Sprintf("r%d", i%256))},
				{Key: []byte(fmt.Sprintf("r%d", (i+11)%256))},
			},
			Writes: []dt.Op{{Key: []byte(fmt.Sprintf("w%d", i%128)), Value: make([]byte, valLen)}},
		}
		return workload.Request{
			Node: "coord", Dst: coords[int(i)%len(coords)], Kind: dt.KindTxn,
			Data: dt.EncodeTxn(txn), Size: size, FlowID: i,
		}
	})
	cl.Eng.RunUntil(window)
	return collect(cl, client, window, map[string]string{
		"DT Coord.": "coord", "DT Parti.": "part1",
	})
}

// runRKV deploys the replicated KV store (3 replicas × shards).
// Measured roles: "RKV Leader" (node 0) and "RKV Follower" (node 1).
func runRKV(seed uint64, linkGbps float64, offload bool, size, depth int, window sim.Time) appRun {
	cl := core.NewCluster(seed)
	nic := nicFor(linkGbps, offload)
	var nodes []*core.Node
	for i := 0; i < 3; i++ {
		nodes = append(nodes, cl.AddNode(core.Config{
			Name: fmt.Sprintf("kv%d", i), NIC: nic, LinkGbps: linkGbps,
		}))
	}
	var leaders []actor.ID
	base := actor.ID(1000)
	for s := 0; s < appShards; s++ {
		d, err := rkv.Deploy(nodes, base, 8<<20, offload)
		if err != nil {
			panic(err)
		}
		leaders = append(leaders, d.LeaderActor())
		base += 16
	}
	client := workload.NewClient(cl, "cli", linkGbps)
	z := workload.NewZipf(cl.Eng.Rand(), 100000, 0.99)
	valLen := size / 4
	client.ClosedLoop(depth*len(leaders), window, func(i uint64) workload.Request {
		key := []byte(fmt.Sprintf("k%07d", z.Next()))
		// 95% reads, 5% writes (§5.1).
		data := rkv.GetReq(key)
		if i%20 == 0 {
			data = rkv.PutReq(key, make([]byte, valLen))
		}
		return workload.Request{
			Node: "kv0", Dst: leaders[int(i)%len(leaders)], Kind: rkv.KindReq,
			Data: data, Size: size, FlowID: i,
		}
	})
	cl.Eng.RunUntil(window)
	return collect(cl, client, window, map[string]string{
		"RKV Leader": "kv0", "RKV Follower": "kv1",
	})
}

func collect(cl *core.Cluster, client *workload.Client, window sim.Time, roles map[string]string) appRun {
	out := appRun{CoresUsed: map[string]float64{}}
	for role, node := range roles {
		// Allocated cores: measured busy cores plus the pinned polling
		// thread every kernel-bypass runtime dedicates (§5.1).
		out.CoresUsed[role] = cl.Node(node).HostCoresAllocated()
	}
	out.Tput = float64(client.Received) / window.Seconds()
	out.P50, out.LatOK = client.Lat.PercentileOK(50)
	out.P99, _ = client.Lat.PercentileOK(99)
	out.Received = client.Received
	out.Sent = client.Sent
	return out
}

type roleRunner struct {
	app   string
	roles []string
	run   func(seed uint64, linkGbps float64, offload bool, size, depth int, window sim.Time) appRun
}

var roleRunners = []roleRunner{
	{"RTA", []string{"RTA Worker"}, runRTA},
	{"DT", []string{"DT Coord.", "DT Parti."}, runDT},
	{"RKV", []string{"RKV Leader", "RKV Follower"}, runRKV},
}

func fig13(opts Options) *Result {
	window := 5 * sim.Millisecond
	sizes := []int{64, 256, 512, 1024}
	if opts.Quick {
		window = 2 * sim.Millisecond
		sizes = []int{256, 1024}
	}
	r := &Result{Header: []string{"link", "role", "size(B)", "DPDK-cores", "iPipe-cores", "saved"}}
	// One sweep point per (link, app, size): each runs the DPDK baseline
	// and the iPipe deployment on its own pair of clusters.
	type point struct {
		link float64
		rr   roleRunner
		size int
	}
	var pts []point
	for _, link := range []float64{10, 25} {
		for _, rr := range roleRunners {
			for _, size := range sizes {
				pts = append(pts, point{link, rr, size})
			}
		}
	}
	type outcome struct{ base, off appRun }
	outs := sweepMap(opts, len(pts), func(i int) outcome {
		p := pts[i]
		return outcome{
			base: p.rr.run(opts.seed(), p.link, false, p.size, 24, window),
			off:  p.rr.run(opts.seed(), p.link, true, p.size, 24, window),
		}
	})
	var totalSaved10, totalSaved25 float64
	var n10, n25 int
	for i, p := range pts {
		for _, role := range p.rr.roles {
			saved := outs[i].base.CoresUsed[role] - outs[i].off.CoresUsed[role]
			r.Add(fmt.Sprintf("%.0fGbE", p.link), role, p.size,
				outs[i].base.CoresUsed[role], outs[i].off.CoresUsed[role], saved)
			if p.size >= 256 {
				if p.link == 10 {
					totalSaved10 += saved
					n10++
				} else {
					totalSaved25 += saved
					n25++
				}
			}
		}
	}
	if n10 > 0 && n25 > 0 {
		r.Note("mean cores saved (256B+): %.2f at 10GbE, %.2f at 25GbE (paper: up to 2.2 / 3.1; avg 1.8-2.2 / 2.5-3.1)",
			totalSaved10/float64(n10), totalSaved25/float64(n25))
	}
	r.Note("64B: NIC cores are consumed by packet forwarding, so savings shrink (paper: no room for actor execution)")
	return r
}

func latVsTput(opts Options, link float64) *Result {
	window := 5 * sim.Millisecond
	depths := []int{1, 2, 4, 8, 16, 32}
	if opts.Quick {
		window = 2 * sim.Millisecond
		depths = []int{2, 8, 32}
	}
	r := &Result{Header: []string{"app", "mode", "depth", "tput(Kops)", "per-core(Kops)", "p50(us)", "p99(us)"}}
	type point struct {
		rr      roleRunner
		offload bool
		di      int
	}
	var pts []point
	for _, rr := range roleRunners {
		for _, offload := range []bool{false, true} {
			for di := range depths {
				pts = append(pts, point{rr, offload, di})
			}
		}
	}
	runs := sweepMap(opts, len(pts), func(i int) appRun {
		p := pts[i]
		return p.rr.run(opts.seed(), link, p.offload, 512, depths[p.di], window)
	})
	type best struct{ dpdk, ipipe float64 }
	perCoreBest := map[string]*best{}
	latAtLow := map[string]*best{}
	for _, rr := range roleRunners {
		perCoreBest[rr.app] = &best{}
		latAtLow[rr.app] = &best{}
	}
	for i, p := range pts {
		run := runs[i]
		mode := "DPDK"
		if p.offload {
			mode = "iPipe"
		}
		// Per-core throughput normalizes by the measured primary
		// role's host usage (fractional cores, §5.3).
		cores := run.CoresUsed[p.rr.roles[0]]
		perCore := run.Tput / cores / 1e3
		r.Add(p.rr.app, mode, depths[p.di], run.Tput/1e3, perCore,
			latCell(run.P50, run.LatOK), latCell(run.P99, run.LatOK))
		b := perCoreBest[p.rr.app]
		if p.offload && perCore > b.ipipe {
			b.ipipe = perCore
		}
		if !p.offload && perCore > b.dpdk {
			b.dpdk = perCore
		}
		if p.di == 0 {
			if p.offload {
				latAtLow[p.rr.app].ipipe = run.P50
			} else {
				latAtLow[p.rr.app].dpdk = run.P50
			}
		}
	}
	for _, rr := range roleRunners {
		b := perCoreBest[rr.app]
		l := latAtLow[rr.app]
		r.Note("%s: per-core throughput iPipe/DPDK = %.1fX; low-load p50 saving = %.1fus (paper: 2.2-4.3X; 5.4-28.0us)",
			rr.app, b.ipipe/b.dpdk, l.dpdk-l.ipipe)
	}
	return r
}

func fig14(opts Options) *Result { return latVsTput(opts, 10) }
func fig15(opts Options) *Result { return latVsTput(opts, 25) }

func fig17(opts Options) *Result {
	window := 5 * sim.Millisecond
	loads := []int{10, 30, 50, 70, 90}
	if opts.Quick {
		window = 2 * sim.Millisecond
		loads = []int{30, 90}
	}
	// Host-only RKV: capacity reference from a saturating closed loop.
	run := func(raw bool, rate float64) (leader, follower float64, received uint64) {
		cl := core.NewCluster(opts.seed())
		var nodes []*core.Node
		for i := 0; i < 3; i++ {
			nodes = append(nodes, cl.AddNode(core.Config{
				Name: fmt.Sprintf("kv%d", i), RawState: raw,
			}))
		}
		var leaders []actor.ID
		base := actor.ID(1000)
		for s := 0; s < appShards; s++ {
			d, err := rkv.Deploy(nodes, base, 8<<20, false)
			if err != nil {
				panic(err)
			}
			leaders = append(leaders, d.LeaderActor())
			base += 16
		}
		client := workload.NewClient(cl, "cli", 10)
		z := workload.NewZipf(cl.Eng.Rand(), 100000, 0.99)
		client.OpenLoop(rate, window, func(i uint64) workload.Request {
			key := []byte(fmt.Sprintf("k%07d", z.Next()))
			data := rkv.GetReq(key)
			if i%20 == 0 {
				data = rkv.PutReq(key, make([]byte, 128))
			}
			return workload.Request{
				Node: "kv0", Dst: leaders[int(i)%len(leaders)], Kind: rkv.KindReq,
				Data: data, Size: 512, FlowID: i,
			}
		})
		cl.Eng.RunUntil(window + 2*sim.Millisecond)
		return cl.Node("kv0").HostCoresUsed(), cl.Node("kv1").HostCoresUsed(), client.Received
	}
	// Reference max rate: what 90% load means (from line rate at 512B,
	// as the paper drives network load).
	maxRate := spec.LineRatePPS(10, 512) * 0.30 // app-level ceiling
	r := &Result{Header: []string{"load(%)", "leader-no-ipipe", "leader-ipipe", "follower-no-ipipe", "follower-ipipe", "overhead(%)"}}
	// Points: loads × {raw, iPipe}; inner index 0 is the raw (no-iPipe)
	// deployment, 1 the instrumented one.
	type usage struct{ leader, follower float64 }
	g := grid{outer: len(loads), inner: 2}
	cells := sweepMap(opts, g.size(), func(i int) usage {
		li, ri := g.split(i)
		rate := maxRate * float64(loads[li]) / 100
		l, f, _ := run(ri == 0, rate)
		return usage{l, f}
	})
	var overheads []float64
	for li, load := range loads {
		raw, inst := cells[li*2], cells[li*2+1]
		ovh := 0.0
		if raw.leader > 0 {
			ovh = (inst.leader - raw.leader) / raw.leader * 100
		}
		overheads = append(overheads, ovh)
		r.Add(load, raw.leader, inst.leader, raw.follower, inst.follower, ovh)
	}
	var sum float64
	for _, o := range overheads {
		sum += o
	}
	r.Note("mean iPipe framework overhead on the leader: %.1f%% (paper: 12.3%% leader, 10.8%% follower)", sum/float64(len(overheads)))
	r.Note("sources: message handling, DMO address translation, scheduler statistics (§5.5)")
	return r
}
