// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation, each regenerating the same rows or
// series the paper reports (§2.2 characterization and §5 evaluation).
// Runners are registered by id ("fig2" … "fig18", "table2", "table3",
// "floem", "nf") and produce a Result that prints as an aligned table;
// cmd/ipipe-bench exposes them on the command line and bench_test.go as
// testing.B benchmarks.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Options tunes a run.
type Options struct {
	// Quick trims sweeps and windows for CI-speed runs.
	Quick bool
	// Seed makes runs reproducible; 0 uses 1.
	Seed uint64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry the paper-vs-measured commentary.
	Notes []string
}

// Add appends a row of cells (fmt.Sprint applied to each).
func (r *Result) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	r.Rows = append(r.Rows, row)
}

// Note appends commentary.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// FprintCSV renders the result as CSV (header row first, notes as
// trailing comment lines), for piping into plotting tools.
func (r *Result) FprintCSV(w io.Writer) {
	cw := csv.NewWriter(w)
	cw.Write(r.Header)
	for _, row := range r.Rows {
		cw.Write(row)
	}
	cw.Flush()
	for _, n := range r.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// Fprint renders the result as an aligned text table.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// Runner produces one experiment's result.
type Runner func(opts Options) *Result

type entry struct {
	id    string
	title string
	run   Runner
	order int
}

var registry = map[string]*entry{}
var nextOrder int

// register wires a runner under an id; called from init functions.
func register(id, title string, run Runner) {
	if _, dup := registry[id]; dup {
		panic("bench: duplicate experiment " + id)
	}
	registry[id] = &entry{id: id, title: title, run: run, order: nextOrder}
	nextOrder++
}

// IDs lists experiments in registration (paper) order.
func IDs() []string {
	es := make([]*entry, 0, len(registry))
	for _, e := range registry {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].order < es[j].order })
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.id
	}
	return out
}

// Title returns an experiment's title.
func Title(id string) string {
	if e, ok := registry[id]; ok {
		return e.title
	}
	return ""
}

// Run executes one experiment by id.
func Run(id string, opts Options) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	r := e.run(opts)
	r.ID = e.id
	r.Title = e.title
	return r, nil
}
