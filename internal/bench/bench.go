// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation, each regenerating the same rows or
// series the paper reports (§2.2 characterization and §5 evaluation).
// Runners are registered by id ("fig2" … "fig18", "table2", "table3",
// "floem", "nf") and produce a Result that prints as an aligned table;
// cmd/ipipe-bench exposes them on the command line and bench_test.go as
// testing.B benchmarks.
package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// Options tunes a run.
type Options struct {
	// Quick trims sweeps and windows for CI-speed runs.
	Quick bool
	// Seed makes runs reproducible; 0 uses 1.
	Seed uint64
	// Parallel is the worker count for fanning independent sweep points
	// across goroutines (each point runs its own seeded sim.Engine).
	// 0 or 1 runs points serially; results are identical either way.
	Parallel int
	// PDESParts shards each partition-aware experiment's simulations
	// across this many engine partitions (conservative PDES). 0 keeps
	// every experiment's default; classic experiments, whose topologies
	// are not partitioned, ignore it.
	PDESParts int
	// PDESWorkers bounds the goroutines executing one partitioned
	// simulation's windows. 0 or 1 is the serial merge; results are
	// byte-identical at any worker count (enforced by GoldenReplayPDES).
	PDESWorkers int
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry the paper-vs-measured commentary.
	Notes []string
	// Wall is the real time Run spent producing this result; Events is
	// the number of simulation events executed while doing so. Both are
	// filled by Run for bench-trajectory tracking (-json); they are not
	// part of the table output and not compared by parity tests.
	Wall   time.Duration
	Events uint64
}

// Add appends a row of cells (fmt.Sprint applied to each).
func (r *Result) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	r.Rows = append(r.Rows, row)
}

// Note appends commentary.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// FprintCSV renders the result as CSV (header row first, notes as
// trailing comment lines), for piping into plotting tools.
func (r *Result) FprintCSV(w io.Writer) {
	cw := csv.NewWriter(w)
	cw.Write(r.Header)
	for _, row := range r.Rows {
		cw.Write(row)
	}
	cw.Flush()
	for _, n := range r.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// Fprint renders the result as an aligned text table.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// Runner produces one experiment's result.
type Runner func(opts Options) *Result

type entry struct {
	id    string
	title string
	run   Runner
	order int
}

var registry = map[string]*entry{}
var nextOrder int

// register wires a runner under an id; called from init functions.
func register(id, title string, run Runner) {
	if _, dup := registry[id]; dup {
		panic("bench: duplicate experiment " + id)
	}
	registry[id] = &entry{id: id, title: title, run: run, order: nextOrder}
	nextOrder++
}

// IDs lists experiments in registration (paper) order.
func IDs() []string {
	es := make([]*entry, 0, len(registry))
	for _, e := range registry {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].order < es[j].order })
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.id
	}
	return out
}

// Title returns an experiment's title.
func Title(id string) string {
	if e, ok := registry[id]; ok {
		return e.title
	}
	return ""
}

// Run executes one experiment by id.
func Run(id string, opts Options) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	start := time.Now()
	ev0 := sim.TotalExecuted()
	r := e.run(opts)
	r.Wall = time.Since(start)
	r.Events = sim.TotalExecuted() - ev0
	r.ID = e.id
	r.Title = e.title
	return r, nil
}

// jsonRecord is the machine-readable form of a Result, one line of
// NDJSON per experiment, for tracking bench trajectories across PRs.
type jsonRecord struct {
	ID           string     `json:"id"`
	Title        string     `json:"title"`
	Header       []string   `json:"header"`
	Rows         [][]string `json:"rows"`
	Notes        []string   `json:"notes,omitempty"`
	WallMS       float64    `json:"wall_ms"`
	Events       uint64     `json:"events"`
	EventsPerSec float64    `json:"events_per_sec"`
	Seed         uint64     `json:"seed"`
	Quick        bool       `json:"quick"`
	Parallel     int        `json:"parallel"`
	PDESParts    int        `json:"pdes_parts,omitempty"`
	PDESWorkers  int        `json:"pdes_workers,omitempty"`
}

// FprintJSON renders the result as a single NDJSON record. opts should
// be the Options the result was produced with; they are embedded so a
// recorded trajectory is self-describing.
func (r *Result) FprintJSON(w io.Writer, opts Options) error {
	rec := jsonRecord{
		ID:          r.ID,
		Title:       r.Title,
		Header:      r.Header,
		Rows:        r.Rows,
		Notes:       r.Notes,
		WallMS:      float64(r.Wall.Microseconds()) / 1e3,
		Events:      r.Events,
		Seed:        opts.seed(),
		Quick:       opts.Quick,
		Parallel:    opts.workers(),
		PDESParts:   opts.PDESParts,
		PDESWorkers: opts.PDESWorkers,
	}
	if s := r.Wall.Seconds(); s > 0 {
		rec.EventsPerSec = float64(r.Events) / s
	}
	enc := json.NewEncoder(w)
	return enc.Encode(rec)
}
