package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func runQuick(t *testing.T, id string) *Result {
	t.Helper()
	r, err := Run(id, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if buf.Len() == 0 {
		t.Fatalf("%s printed nothing", id)
	}
	return r
}

func cell(t *testing.T, r *Result, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(r.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell %d,%d = %q: %v", row, col, r.Rows[row][col], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "table2", "table3", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "floem", "nf", "scale-shards", "scale-batch",
		"scale-nodes",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("unknown id accepted")
	}
	for _, id := range IDs() {
		if Title(id) == "" {
			t.Errorf("%s has no title", id)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	r := runQuick(t, "fig2")
	// 12 core rows; bandwidth monotone nondecreasing in cores per size.
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for col := 1; col <= 6; col++ {
		for row := 1; row < 12; row++ {
			if cell(t, r, row, col) < cell(t, r, row-1, col)-0.01 {
				t.Fatalf("bandwidth not monotone at row %d col %d", row, col)
			}
		}
	}
	// 64B with all cores stays below line rate.
	if cell(t, r, 11, 1) > 9 {
		t.Fatal("64B reached line rate")
	}
}

func TestFig4Shape(t *testing.T) {
	r := runQuick(t, "fig4")
	// Bandwidth non-increasing in added latency for each column.
	for col := 1; col <= 4; col++ {
		for row := 1; row < len(r.Rows); row++ {
			if cell(t, r, row, col) > cell(t, r, row-1, col)+0.05 {
				t.Fatalf("bandwidth increased with latency at row %d col %d", row, col)
			}
		}
	}
}

func TestFig5Shape(t *testing.T) {
	r := runQuick(t, "fig5")
	// 12-core latency stays within ~15% of 6-core (shared queue, I2).
	for row := range r.Rows {
		a6, a12 := cell(t, r, row, 1), cell(t, r, row, 2)
		if a12 > a6*1.15 {
			t.Fatalf("12-core avg %.2f exceeds 6-core %.2f by >15%%", a12, a6)
		}
	}
}

func TestFig6Speedup(t *testing.T) {
	r := runQuick(t, "fig6")
	for row := range r.Rows {
		nic, dpdk := cell(t, r, row, 1), cell(t, r, row, 3)
		if nic >= dpdk {
			t.Fatal("NIC messaging should beat DPDK")
		}
	}
}

func TestFig8Shape(t *testing.T) {
	r := runQuick(t, "fig8")
	// Non-blocking beats blocking at every payload.
	for row := range r.Rows {
		if cell(t, r, row, 2) <= cell(t, r, row, 1) {
			t.Fatal("non-blocking read should beat blocking")
		}
	}
}

func TestFig13CoreSavings(t *testing.T) {
	r := runQuick(t, "fig13")
	// iPipe never uses more host cores than DPDK (saved ≥ 0 everywhere).
	for row := range r.Rows {
		if cell(t, r, row, 5) < -0.05 {
			t.Fatalf("negative core savings in row %d: %v", row, r.Rows[row])
		}
	}
}

func TestFig16Orderings(t *testing.T) {
	r := runQuick(t, "fig16")
	for row := range r.Rows {
		fcfs, drr, hybrid := cell(t, r, row, 3), cell(t, r, row, 4), cell(t, r, row, 5)
		if r.Rows[row][1] == "low(exp)" {
			// Hybrid tracks FCFS (within 25%) and beats DRR.
			if hybrid > fcfs*1.25 {
				t.Errorf("row %d: low-dispersion hybrid %.0f strays from FCFS %.0f", row, hybrid, fcfs)
			}
			if hybrid > drr {
				t.Errorf("row %d: low-dispersion hybrid %.0f worse than DRR %.0f", row, hybrid, drr)
			}
		}
	}
}

func TestFig17Overhead(t *testing.T) {
	r := runQuick(t, "fig17")
	for row := range r.Rows {
		ovh := cell(t, r, row, 5)
		if ovh < 0 || ovh > 60 {
			t.Errorf("framework overhead %.1f%% implausible (paper ≈12%%)", ovh)
		}
	}
}

func TestFig18MemtableDominates(t *testing.T) {
	r := runQuick(t, "fig18")
	var memTotal, maxOther float64
	for row := range r.Rows {
		total := cell(t, r, row, 5)
		if r.Rows[row][0] == "LSMmem." {
			memTotal = total
		} else if total > maxOther {
			maxOther = total
		}
	}
	if memTotal < 25 || memTotal > 55 {
		t.Fatalf("LSM Memtable migration %.1fms, want ≈38ms (paper ≈36ms phase 3)", memTotal)
	}
	if memTotal < 10*maxOther {
		t.Fatalf("Memtable (%.1fms) should dwarf other actors (max %.1fms)", memTotal, maxOther)
	}
}

func TestNFInPaperRange(t *testing.T) {
	r := runQuick(t, "nf")
	// Firewall p50s land in the paper's 3.65–19.41µs envelope (±50%).
	for row := 0; row < 2; row++ {
		v := cell(t, r, row, 3)
		if v < 2 || v > 30 {
			t.Fatalf("firewall latency %.2fµs outside plausible envelope", v)
		}
	}
	// IPSec: 10GbE close to link, 25GbE close to link.
	g10, g25 := cell(t, r, 2, 3), cell(t, r, 3, 3)
	if g10 < 6 || g10 > 10.5 {
		t.Fatalf("IPSec 10GbE %.1f Gbps (paper 8.6)", g10)
	}
	if g25 < 15 || g25 > 26 {
		t.Fatalf("IPSec 25GbE %.1f Gbps (paper 22.9)", g25)
	}
}

func TestFloemOrdering(t *testing.T) {
	r := runQuick(t, "floem")
	// iPipe per-core ≥ Floem per-core at both sizes.
	if cell(t, r, 1, 4) < cell(t, r, 0, 4) {
		t.Fatal("iPipe should beat Floem at 512B")
	}
	if cell(t, r, 3, 4) < cell(t, r, 2, 4) {
		t.Fatal("iPipe should beat Floem at 64B")
	}
}

func TestTablesRender(t *testing.T) {
	for _, id := range []string{"table2", "table3", "fig7", "fig9", "fig10"} {
		runQuick(t, id)
	}
}

func TestAblationRingBatchingMonotone(t *testing.T) {
	r := runQuick(t, "ablate-ring")
	// Throughput rises and per-message core cost falls with batch size.
	for row := 1; row < len(r.Rows); row++ {
		if cell(t, r, row, 1) < cell(t, r, row-1, 1) {
			t.Fatal("batching should not reduce message throughput")
		}
		if cell(t, r, row, 2) > cell(t, r, row-1, 2) {
			t.Fatal("batching should not raise per-message core cost")
		}
	}
}

func TestAblationQueueShuffleTail(t *testing.T) {
	r := runQuick(t, "ablate-queue")
	// With few flows at high load, the shuffle layer's p99 should not
	// beat the hardware shared queue's by a wide margin (steering
	// imbalance costs something); both serve everything.
	for row := range r.Rows {
		if cell(t, r, row, 5) == 0 {
			t.Fatal("queue model served nothing")
		}
	}
}

func TestAblationMigrationHelps(t *testing.T) {
	r := runQuick(t, "ablate-migration")
	staticP50, dynP50 := cell(t, r, 0, 2), cell(t, r, 1, 2)
	if dynP50 >= staticP50 {
		t.Fatalf("dynamic migration p50 %.0f should beat static %.0f", dynP50, staticP50)
	}
	if cell(t, r, 1, 4) == 0 {
		t.Fatal("dynamic run performed no migrations")
	}
}

func TestAblationAccelSpeedups(t *testing.T) {
	r := runQuick(t, "ablate-accel")
	if len(r.Rows) < 9 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestAblationWorkingSetCrossover(t *testing.T) {
	r := runQuick(t, "ablate-workingset")
	// The NIC/host execution ratio must worsen once the working set
	// exceeds the NIC's 4MB L2 (I5).
	small := cell(t, r, 0, 4)
	big := cell(t, r, 3, 4)
	if big <= small {
		t.Fatalf("NIC/host ratio %f should worsen beyond L2 capacity (was %f)", big, small)
	}
}

func TestTable3LiveMatchesProfiles(t *testing.T) {
	r := runQuick(t, "table3-live")
	for row := range r.Rows {
		want, got := cell(t, r, row, 1), cell(t, r, row, 2)
		// The runtime adds ≈0.8µs of forwarding tax + reply send per
		// request; anything beyond ~1.5µs absolute drift means the cost
		// model and the runtime disagree.
		if diff := got - want; diff < -1.0 || diff > 1.5 {
			t.Errorf("%s: measured %.2fµs vs Table 3 %.2fµs", r.Rows[row][0], got, want)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	r, err := Run("table2", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.FprintCSV(&buf)
	out := buf.String()
	if !strings.HasPrefix(out, "device,") {
		t.Fatalf("CSV header missing: %q", out[:40])
	}
	if strings.Count(out, "\n") < len(r.Rows)+1 {
		t.Fatal("CSV rows missing")
	}
}

// TestScaleShardsQuick pins the headline scale-out acceptance: at
// θ=0.99 the 8-shard deployment must reach at least 80% of linear
// scaling over the 1-shard baseline (quick grid is {1,8} shards).
func TestScaleShardsQuick(t *testing.T) {
	r := runQuick(t, "scale-shards")
	if len(r.Rows) != 2 {
		t.Fatalf("quick scale-shards rows = %d, want 2", len(r.Rows))
	}
	if got := cell(t, r, 0, 1); got != 1 {
		t.Fatalf("row 0 shards = %v, want 1", got)
	}
	if got := cell(t, r, 1, 1); got != 8 {
		t.Fatalf("row 1 shards = %v, want 8", got)
	}
	base, scaled := cell(t, r, 0, 2), cell(t, r, 1, 2)
	if base <= 0 || scaled <= 0 {
		t.Fatalf("non-positive throughput: base %v scaled %v", base, scaled)
	}
	if ratio := scaled / base; ratio < 6.4 {
		t.Errorf("8-shard throughput %.1fx over 1 shard, want >= 6.4x (80%% of linear)", ratio)
	}
	for row := 0; row < 2; row++ {
		if bal := cell(t, r, row, 7); bal < 1 || bal > 2.5 {
			t.Errorf("row %d balance = %v, want within [1, 2.5]", row, bal)
		}
	}
}

// TestScaleBatchQuick checks train formation and that batching does not
// cost measurable throughput on either delivery path.
func TestScaleBatchQuick(t *testing.T) {
	r := runQuick(t, "scale-batch")
	if len(r.Rows) != 4 {
		t.Fatalf("quick scale-batch rows = %d, want 4", len(r.Rows))
	}
	for _, path := range []int{0, 1} {
		unbatched, batched := r.Rows[path*2], r.Rows[path*2+1]
		base, err := strconv.ParseFloat(unbatched[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		tput, err := strconv.ParseFloat(batched[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if tput < 0.85*base || tput > 1.15*base {
			t.Errorf("%s batched tput %v vs unbatched %v, want within 15%%", batched[0], tput, base)
		}
		trains, err := strconv.ParseFloat(batched[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		avg, err := strconv.ParseFloat(batched[6], 64)
		if err != nil {
			t.Fatal(err)
		}
		if trains <= 0 || avg < 1.5 {
			t.Errorf("%s trains = %v avg = %v, want coalescing (trains > 0, avg >= 1.5)", batched[0], trains, avg)
		}
		if got := unbatched[5]; got != "0" {
			t.Errorf("%s unbatched trains = %q, want 0", unbatched[0], got)
		}
	}
}
