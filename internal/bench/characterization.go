package bench

import (
	"fmt"

	"repro/internal/nicsim"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

func init() {
	register("fig2", "Bandwidth vs NIC cores, 10GbE LiquidIOII CN2350 (echo)", fig2)
	register("fig3", "Bandwidth vs NIC cores, 25GbE Stingray PS225 (echo)", fig3)
	register("fig4", "Bandwidth vs per-packet processing latency (all cores)", fig4)
	register("fig5", "Avg/p99 latency at max throughput, 6 vs 12 cores (CN2350)", fig5)
	register("fig6", "Send/recv latency: SmartNIC vs host DPDK vs host RDMA", fig6)
	register("fig7", "Per-core DMA read/write latency vs payload (CN2350)", fig7)
	register("fig8", "Per-core DMA read/write throughput vs payload (CN2350)", fig8)
	register("fig9", "RDMA one-sided read/write latency vs payload (BlueField)", fig9)
	register("fig10", "RDMA one-sided read/write throughput vs payload (BlueField)", fig10)
	register("table2", "Memory hierarchy access latency (pointer chase)", table2)
	register("table3", "Offloaded workloads and accelerators on the CN2350", table3)
}

var pktSizes = []int{64, 128, 256, 512, 1024, 1500}

// echoGbps drives an EchoServer at the link's line rate for a window
// and returns achieved goodput.
func echoGbps(seed uint64, m *spec.NICModel, cores, size int, extra sim.Time, window sim.Time) float64 {
	eng := sim.NewEngine(seed)
	e := nicsim.NewEchoServer(eng, m, cores)
	e.ExtraLatency = extra
	interval := sim.Time(1e9 / spec.LineRatePPS(m.LinkGbps, size))
	for at := sim.Time(0); at < window; at += interval {
		eng.At(at, func() { e.Receive(size) })
	}
	eng.RunUntil(window)
	return spec.GoodputGbps(float64(e.Echoed)/window.Seconds(), size)
}

func bwVsCores(opts Options, m *spec.NICModel) *Result {
	window := 4 * sim.Millisecond
	if opts.Quick {
		window = sim.Millisecond
	}
	r := &Result{Header: []string{"cores"}}
	for _, s := range pktSizes {
		r.Header = append(r.Header, fmt.Sprintf("%dB(Gbps)", s))
	}
	// Every (cores, size) cell is an independent simulation point.
	g := grid{outer: m.Cores, inner: len(pktSizes)}
	cells := sweepMap(opts, g.size(), func(i int) float64 {
		ci, si := g.split(i)
		return echoGbps(opts.seed(), m, ci+1, pktSizes[si], 0, window)
	})
	for c := 1; c <= m.Cores; c++ {
		row := []any{c}
		for si := range pktSizes {
			row = append(row, cells[(c-1)*len(pktSizes)+si])
		}
		r.Add(row...)
	}
	for _, s := range []int{256, 512, 1024, 1500} {
		if n, ok := m.CoresForLineRate(s); ok {
			r.Note("%dB reaches line rate at %d cores", s, n)
		}
	}
	r.Note("paper (CN2350): 10/6/4/3 cores for 256/512/1024/1500B; Stingray: 3/2/1/1; 64/128B never reach line rate")
	return r
}

func fig2(opts Options) *Result { return bwVsCores(opts, spec.LiquidIOII_CN2350()) }
func fig3(opts Options) *Result { return bwVsCores(opts, spec.Stingray_PS225()) }

func fig4(opts Options) *Result {
	window := 4 * sim.Millisecond
	if opts.Quick {
		window = sim.Millisecond
	}
	lio := spec.LiquidIOII_CN2350()
	sr := spec.Stingray_PS225()
	lats := []float64{0, 0.125, 0.25, 0.5, 1, 2, 4, 8, 16}
	r := &Result{Header: []string{"proc-lat(us)", "256B-10GbE", "1024B-10GbE", "256B-25GbE", "1024B-25GbE"}}
	cols := []struct {
		m    *spec.NICModel
		size int
	}{{lio, 256}, {lio, 1024}, {sr, 256}, {sr, 1024}}
	g := grid{outer: len(lats), inner: len(cols)}
	cells := sweepMap(opts, g.size(), func(i int) float64 {
		li, ci := g.split(i)
		c := cols[ci]
		return echoGbps(opts.seed(), c.m, c.m.Cores, c.size, sim.Micros(lats[li]), window)
	})
	for li, l := range lats {
		r.Add(l, cells[li*len(cols)], cells[li*len(cols)+1], cells[li*len(cols)+2], cells[li*len(cols)+3])
	}
	r.Note("computing headroom (model): 10GbE 256B=%.2fus 1024B=%.2fus; 25GbE 256B=%.2fus 1024B=%.2fus",
		lio.ComputeHeadroom(256).Micros(), lio.ComputeHeadroom(1024).Micros(),
		sr.ComputeHeadroom(256).Micros(), sr.ComputeHeadroom(1024).Micros())
	r.Note("paper: 2.5/9.8us (10GbE) and 0.7/2.6us (25GbE)")
	return r
}

func fig5(opts Options) *Result {
	m := spec.LiquidIOII_CN2350()
	window := 4 * sim.Millisecond
	if opts.Quick {
		window = sim.Millisecond
	}
	run := func(cores, size int) (avg, p99 float64) {
		eng := sim.NewEngine(opts.seed())
		e := nicsim.NewEchoServer(eng, m, cores)
		lat := stats.NewSample()
		e.OnEcho = func(s sim.Time) { lat.Observe(s.Micros()) }
		// Offered load: 98% of what `cores` can sustain at this size
		// (the paper's "operating at the maximum throughput").
		perPkt := m.EchoCost.Cost(size)
		interval := sim.Time(float64(perPkt) / float64(cores) / 0.98)
		line := sim.Time(1e9 / spec.LineRatePPS(m.LinkGbps, size))
		if interval < line {
			interval = line
		}
		for at := sim.Time(0); at < window; at += interval {
			eng.At(at, func() { e.Receive(size) })
		}
		eng.Run()
		return lat.Mean(), lat.Percentile(99)
	}
	r := &Result{Header: []string{"size(B)", "6core-avg(us)", "12core-avg(us)", "6core-p99(us)", "12core-p99(us)"}}
	sizes := []int{64, 512, 1024, 1500}
	type latPair struct{ avg, p99 float64 }
	g := grid{outer: len(sizes), inner: 2}
	cores := [2]int{6, 12}
	cells := sweepMap(opts, g.size(), func(i int) latPair {
		si, ci := g.split(i)
		a, p := run(cores[ci], sizes[si])
		return latPair{a, p}
	})
	for si, s := range sizes {
		c6, c12 := cells[si*2], cells[si*2+1]
		r.Add(s, c6.avg, c12.avg, c6.p99, c12.p99)
	}
	r.Note("paper: 12-core adds only ~4.1%%/3.4%% avg/p99 over 6-core — the hardware traffic manager gives a cheap shared queue (I2)")
	return r
}

func fig6(opts Options) *Result {
	m := spec.LiquidIOII_CN2350()
	h := spec.IntelHost()
	r := &Result{Header: []string{"size(B)", "NIC-send", "NIC-recv", "DPDK-send", "DPDK-recv", "RDMA-send", "RDMA-recv"}}
	sizes := []int{4, 8, 16, 32, 64, 128, 256, 512, 1024}
	var nicSum, dpdkSum, rdmaSum float64
	for _, s := range sizes {
		ns, nr := m.NICSendCost.Cost(s).Micros(), m.NICRecvCost.Cost(s).Micros()
		ds, dr := h.DPDKSendCost.Cost(s).Micros(), h.DPDKRecvCost.Cost(s).Micros()
		rs, rr := h.RDMASendCost.Cost(s).Micros(), h.RDMARecvCost.Cost(s).Micros()
		r.Add(s, ns, nr, ds, dr, rs, rr)
		nicSum += ns
		dpdkSum += ds
		rdmaSum += rs
	}
	r.Note("measured speedup of NIC hardware messaging (send, avg across sizes): %.1fX vs DPDK, %.1fX vs RDMA (paper: 4.6X / 4.2X)",
		dpdkSum/nicSum, rdmaSum/nicSum)
	return r
}

var dmaSizes = []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}

// dmaThroughput measures per-core op rate by replaying a tight loop on
// the engine: blocking ops issue one at a time; non-blocking ops are
// bounded by the issue occupancy and the engine's transfer bandwidth.
func dmaThroughput(seed uint64, prof spec.DMAProfile, size int, blocking, write bool) float64 {
	eng := sim.NewEngine(seed)
	dma := pcie.New(eng, prof)
	window := 2 * sim.Millisecond
	done := 0
	if blocking {
		var issue func()
		issue = func() {
			if eng.Now() >= window {
				return
			}
			fn := dma.ReadBlocking
			if write {
				fn = dma.WriteBlocking
			}
			fn(size, func() { done++; issue() })
		}
		issue()
		eng.RunUntil(window)
	} else {
		// The core issues every IssueOccupancy; completions lag.
		for at := sim.Time(0); at < window; at += pcie.IssueOccupancy {
			at := at
			eng.At(at, func() {
				if write {
					dma.WriteAsync(size, func() { done++ })
				} else {
					dma.ReadAsync(size, func() { done++ })
				}
			})
		}
		eng.RunUntil(window)
	}
	return float64(done) / window.Seconds() / 1e6 // Mops
}

func fig7(opts Options) *Result {
	prof := spec.LiquidIOII_CN2350().DMA
	r := &Result{Header: []string{"payload(B)", "blk-read(us)", "nonblk-read(us)", "blk-write(us)", "nonblk-write(us)"}}
	for _, s := range dmaSizes {
		r.Add(s, prof.ReadLatency(s).Micros(), prof.NonBlockingIssue.Micros(),
			prof.WriteLatency(s).Micros(), prof.NonBlockingIssue.Micros())
	}
	r.Note("non-blocking latency is payload-independent (command insertion only); blocking grows with payload — I6")
	return r
}

// dmaCombos are the four (blocking, write) column variants of the DMA
// throughput figures, in table column order.
var dmaCombos = [4]struct{ blocking, write bool }{
	{true, false}, {false, false}, {true, true}, {false, true},
}

func fig8(opts Options) *Result {
	prof := spec.LiquidIOII_CN2350().DMA
	r := &Result{Header: []string{"payload(B)", "blk-read(Mops)", "nonblk-read(Mops)", "blk-write(Mops)", "nonblk-write(Mops)"}}
	g := grid{outer: len(dmaSizes), inner: len(dmaCombos)}
	cells := sweepMap(opts, g.size(), func(i int) float64 {
		si, ci := g.split(i)
		c := dmaCombos[ci]
		return dmaThroughput(opts.seed(), prof, dmaSizes[si], c.blocking, c.write)
	})
	for si, s := range dmaSizes {
		r.Add(s, cells[si*4], cells[si*4+1], cells[si*4+2], cells[si*4+3])
	}
	// The 2KB non-blocking write is the last row's last column; the same
	// deterministic point the serial code recomputed.
	nb2k := cells[(len(dmaSizes)-1)*4+3]
	r.Note("2KB non-blocking write sustains ≈%.1f GB/s per core (paper: 2.1 GB/s)", nb2k*1e6*2048/1e9)
	return r
}

func fig9(opts Options) *Result {
	bf := spec.BlueField_1M332A().DMA
	lio := spec.LiquidIOII_CN2350().DMA
	r := &Result{Header: []string{"payload(B)", "rdma-read(us)", "rdma-write(us)", "dma-blk-read(us)", "dma-blk-write(us)"}}
	for _, s := range dmaSizes {
		r.Add(s, bf.ReadLatency(s).Micros(), bf.WriteLatency(s).Micros(),
			lio.ReadLatency(s).Micros(), lio.WriteLatency(s).Micros())
	}
	r.Note("RDMA verbs ≈2X native blocking DMA latency for small messages (paper, I6)")
	return r
}

func fig10(opts Options) *Result {
	bf := spec.BlueField_1M332A().DMA
	lio := spec.LiquidIOII_CN2350().DMA
	r := &Result{Header: []string{"payload(B)", "rdma-read(Mops)", "rdma-write(Mops)", "dma-blk-read(Mops)", "dma-blk-write(Mops)"}}
	cols := [4]struct {
		prof  spec.DMAProfile
		write bool
	}{{bf, false}, {bf, true}, {lio, false}, {lio, true}}
	g := grid{outer: len(dmaSizes), inner: len(cols)}
	cells := sweepMap(opts, g.size(), func(i int) float64 {
		si, ci := g.split(i)
		return dmaThroughput(opts.seed(), cols[ci].prof, dmaSizes[si], true, cols[ci].write)
	})
	for si, s := range dmaSizes {
		r.Add(s, cells[si*4], cells[si*4+1], cells[si*4+2], cells[si*4+3])
	}
	r.Note("small-message RDMA throughput trails native DMA; ≥512B they converge (paper: 1/3 below 256B)")
	return r
}

func table2(opts Options) *Result {
	r := &Result{Header: []string{"device", "L1(ns)", "L2(ns)", "L3(ns)", "DRAM(ns)", "line(B)"}}
	row := func(name string, m spec.MemoryProfile) {
		l3 := "N/A"
		if m.L3 != 0 {
			l3 = fmt.Sprintf("%.1f", float64(m.L3))
		}
		r.Add(name, float64(m.L1), float64(m.L2), l3, float64(m.DRAM), m.CacheLineBytes)
	}
	for _, m := range spec.AllNICs() {
		row(m.Name, m.Memory)
	}
	row("Host "+spec.IntelHost().Name, spec.IntelHost().Memory)
	r.Note("SmartNIC L2 ≈ host L3 latency; only the Stingray approaches host memory performance (I5)")
	return r
}

func table3(opts Options) *Result {
	m := spec.LiquidIOII_CN2350()
	r := &Result{Header: []string{"workload", "DS", "exec(us,1KB)", "IPC", "MPKI", "host-exec(us)"}}
	h := spec.IntelHost()
	for _, w := range spec.Workloads() {
		r.Add(w.Name, w.DataStruct, w.ExecLat1KB.Micros(), w.IPC, w.MPKI,
			h.WorkloadCost(w).Micros())
	}
	r.Add("---accelerators---", "", "", "", "", "")
	accNames := []string{"CRC", "MD5", "SHA-1", "3DES", "AES", "KASUMI", "SMS4", "SNOW3G", "FAU", "ZIP", "DFA"}
	for _, name := range accNames {
		a, ok := m.Accels[name]
		if !ok {
			continue
		}
		b1, _ := a.Latency(1)
		b8, ok8 := a.LatencyByBatch[8]
		b32, ok32 := a.LatencyByBatch[32]
		s8, s32 := "N/A", "N/A"
		if ok8 {
			s8 = fmt.Sprintf("%.1f", b8.Micros())
		}
		if ok32 {
			s32 = fmt.Sprintf("%.1f", b32.Micros())
		}
		r.Add(a.Name, fmt.Sprintf("bsz1=%.1f bsz8=%s bsz32=%s", b1.Micros(), s8, s32),
			"", a.IPC, a.MPKI, "")
	}
	r.Note("host-exec shows I3: memory-bound tasks (high MPKI) gain little from the beefy host core")
	r.Note("MD5/AES engines are 7.0X/2.5X faster than host equivalents (§2.2.3); batching amortizes invocation cost")
	return r
}
