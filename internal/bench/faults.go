package bench

import (
	"fmt"

	"repro/internal/actor"
	"repro/internal/apps/dt"
	"repro/internal/apps/rkv"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

// The faults-* experiment family measures the recovery machinery under
// the deterministic fault injector (internal/fault): request
// availability across crash/restart/loss/overload windows, leader
// failover recovery time, goodput through a network partition, and
// transaction-abort hygiene when a participant dies mid-2PC. None of
// these reproduce a paper figure — the paper's testbed never killed
// nodes — but they certify that the simulated stack degrades and heals
// the way §4's design (Paxos failover, coordinator logs, host fallback)
// promises.

func init() {
	register("faults-availability", "Request completion under the default crash/restart/loss/overload schedule (RKV, 3 replicas)", faultsAvailability)
	register("faults-recovery", "Leader-failover recovery time vs failure-detection delay (RKV)", faultsRecovery)
	register("faults-partition", "Goodput before / during / after a leader partition (RKV)", faultsPartition)
	register("faults-dt", "Transaction outcomes and lock hygiene with a participant crash mid-2PC (DT)", faultsDT)
}

// --- rotating RKV client ----------------------------------------------

// rkvProbe drives RKV requests with replica rotation: a timeout or a
// redirect moves the next attempt to the next replica, with the spec's
// capped exponential backoff. This is the client-side recovery story —
// workload.Client alone retries the same node forever, which cannot
// survive a node crash.
type rkvProbe struct {
	eng   *sim.Engine
	c     *workload.Client
	nodes []string
	cons  []actor.ID
	retry deploy.RetryPolicy

	issued    uint64
	completed uint64
	gaveUp    uint64
	retries   uint64
	redirects uint64
	// onDone observes each logical completion (issue index, now).
	onDone func(i uint64, isWrite bool)
}

func newRKVProbe(cl *core.Cluster, d *deploy.RKV, retry deploy.RetryPolicy, gbps float64) *rkvProbe {
	p := &rkvProbe{eng: cl.Eng, retry: retry}
	p.c = workload.NewClient(cl, "cli", gbps)
	for _, rep := range d.Replicas {
		p.nodes = append(p.nodes, rep.Node.Name)
		p.cons = append(p.cons, rep.Consensus.Actor.ID)
	}
	return p
}

// issue starts one logical request at the given replica.
func (p *rkvProbe) issue(i uint64, data []byte, isWrite bool, target int) {
	p.issued++
	done := new(bool)
	p.attempt(i, data, isWrite, target, 0, p.retry.Timeout, done)
}

func (p *rkvProbe) attempt(i uint64, data []byte, isWrite bool, target, attempt int, timeout sim.Time, done *bool) {
	rotate := func(kind *uint64) {
		if *done {
			return
		}
		if attempt >= p.retry.Retries {
			*done = true
			p.gaveUp++
			return
		}
		*kind++
		p.attempt(i, data, isWrite, (target+1)%len(p.nodes), attempt+1, p.grow(timeout), done)
	}
	p.c.Send(workload.Request{
		Node: p.nodes[target], Dst: p.cons[target], Kind: rkv.KindReq,
		Data: data, Size: 512, FlowID: i,
		OnResp: func(resp actor.Msg) {
			if *done {
				return
			}
			switch rkv.StatusOf(resp.Data) {
			case rkv.StatusOK, rkv.StatusNotFound:
				*done = true
				p.completed++
				if p.onDone != nil {
					p.onDone(i, isWrite)
				}
			case rkv.StatusRedirect:
				rotate(&p.redirects)
			}
		},
	})
	if timeout <= 0 {
		return
	}
	p.eng.After(timeout, func() { rotate(&p.retries) })
}

// grow applies the policy's backoff to a timeout, clamped like
// workload.Client: an uncapped policy still saturates at the sane
// ceiling rather than overflowing sim.Time into a negative wait.
func (p *rkvProbe) grow(t sim.Time) sim.Time {
	if p.retry.Backoff <= 1 {
		return t
	}
	ceil := p.retry.MaxTimeout
	if ceil <= 0 {
		ceil = workload.MaxUncappedTimeout
	}
	if f := float64(t) * p.retry.Backoff; f < float64(ceil) {
		return sim.Time(f)
	}
	return ceil
}

// availability returns the completed fraction in percent.
func (p *rkvProbe) availability() float64 {
	if p.issued == 0 {
		return 0
	}
	return 100 * float64(p.completed) / float64(p.issued)
}

// faultRetry is the client policy the faults experiments use: patient
// enough to ride out a multi-millisecond crash window, capped so tail
// drain stays short.
func faultRetry() deploy.RetryPolicy {
	return deploy.RetryPolicy{
		Timeout:    400 * sim.Microsecond,
		Retries:    10,
		Backoff:    2,
		MaxTimeout: 1600 * sim.Microsecond,
	}
}

// rkvFaultCluster builds the 3-replica RKV deployment the RKV fault
// experiments share.
func rkvFaultCluster(seed uint64, onNIC bool, sched fault.Schedule, failover deploy.FailoverPolicy) (*core.Cluster, *deploy.RKV) {
	cl := core.NewCluster(seed)
	var nodes []*core.Node
	for i := 0; i < 3; i++ {
		nodes = append(nodes, cl.AddNode(core.Config{
			Name: fmt.Sprintf("kv%d", i), NIC: spec.LiquidIOII_CN2350(), LinkGbps: 10,
		}))
	}
	d, err := deploy.RKVSpec{
		Common: deploy.Common{
			Placement: deploy.Placement{OnNIC: onNIC},
			Retry:     faultRetry(),
			Failover:  failover,
			Faults:    sched,
		},
		Nodes:    nodes,
		BaseID:   100,
		MemLimit: 8 << 20,
	}.Deploy()
	if err != nil {
		panic(err)
	}
	return cl, d
}

// mixedData returns the i-th probe payload: 90% reads, 10% writes over
// a small hot key space (keys are pre-written by flow order, so reads
// mostly hit).
func mixedData(i uint64) (data []byte, isWrite bool) {
	key := []byte(fmt.Sprintf("k%05d", i%512))
	if i%10 == 0 {
		return rkv.PutReq(key, make([]byte, 64)), true
	}
	return rkv.GetReq(key), false
}

// --- faults-availability ----------------------------------------------

func faultsAvailability(opts Options) *Result {
	window := 20 * sim.Millisecond
	every := 20 * sim.Microsecond
	if opts.Quick {
		window = 8 * sim.Millisecond
	}
	// The default schedule: a follower crash, a leader crash (forcing
	// failover), a lossy-link window on the new leader, then an overload
	// burst — each scaled to the run window.
	sched := func() fault.Schedule {
		w := float64(window)
		at := func(f float64) sim.Time { return sim.Time(w * f) }
		return fault.Schedule{Faults: []fault.Fault{
			fault.Crash("kv2", at(0.15), at(0.10)),
			fault.Crash("kv0", at(0.40), at(0.15)),
			fault.Loss("kv1", at(0.65), at(0.08), 0.25),
			fault.Overload("kv1", at(0.80), at(0.08), 3),
		}}
	}

	type outcome struct {
		probe     *rkvProbe
		elections uint64
		injected  int
		logLines  int
	}
	modes := []bool{true, false} // NIC placement, host placement
	outs := sweepMap(opts, len(modes), func(mi int) outcome {
		cl, d := rkvFaultCluster(opts.seed(), modes[mi], sched(), deploy.FailoverPolicy{})
		p := newRKVProbe(cl, d, faultRetry(), 10)
		n := int(window / every)
		for i := 0; i < n; i++ {
			i := uint64(i)
			cl.Eng.At(sim.Time(i)*every, func() {
				data, w := mixedData(i)
				p.issue(i, data, w, int(i)%len(p.nodes))
			})
		}
		cl.Eng.Run()
		return outcome{probe: p, elections: d.Elections, injected: d.Injector.Injected(), logLines: len(d.Injector.Log())}
	})

	r := &Result{Header: []string{"placement", "issued", "completed", "avail(%)", "rejected", "gave-up", "retries", "redirects", "elections", "faults"}}
	for mi, onNIC := range modes {
		o := outs[mi]
		placement := "host"
		if onNIC {
			placement = "nic"
		}
		r.Add(placement, o.probe.issued, o.probe.completed,
			fmt.Sprintf("%.2f", o.probe.availability()),
			0, o.probe.gaveUp, o.probe.retries, o.probe.redirects, o.elections, o.injected)
	}
	r.Note("schedule: follower crash, leader crash (failover), 25%% loss window, 3x overload burst; %d log lines per run", outs[0].logLines)
	r.Note("accounting: avail(%%) = completed/issued; rejected counts edge-shed (admission-denied) requests, which are never in issued — this family runs without admission gates, so it is structurally 0 (see workload.Client accounting contract)")
	r.Note("target: >=99%% completion — client-side rotation + backoff must ride out every window")
	return r
}

// --- faults-recovery ---------------------------------------------------

func faultsRecovery(opts Options) *Result {
	window := 12 * sim.Millisecond
	every := 10 * sim.Microsecond
	detects := []sim.Time{100 * sim.Microsecond, 200 * sim.Microsecond, 400 * sim.Microsecond}
	if opts.Quick {
		window = 6 * sim.Millisecond
		detects = []sim.Time{200 * sim.Microsecond}
	}
	crashAt := sim.Time(float64(window) * 0.3)
	crashDur := sim.Time(float64(window) * 0.4)

	type outcome struct {
		probe       *rkvProbe
		elections   uint64
		firstOK     sim.Time // first post-crash completion (any op)
		firstWrite  sim.Time // first post-crash write commit
		firstWriteN bool
		firstOKN    bool
	}
	outs := sweepMap(opts, len(detects), func(di int) outcome {
		sched := fault.Schedule{Faults: []fault.Fault{fault.Crash("kv0", crashAt, crashDur)}}
		cl, d := rkvFaultCluster(opts.seed(), true, sched, deploy.FailoverPolicy{Detect: detects[di]})
		p := newRKVProbe(cl, d, faultRetry(), 10)
		o := outcome{}
		issuedAt := map[uint64]sim.Time{}
		p.onDone = func(i uint64, isWrite bool) {
			if issuedAt[i] < crashAt {
				return
			}
			now := cl.Eng.Now()
			if !o.firstOKN {
				o.firstOKN, o.firstOK = true, now-crashAt
			}
			if isWrite && !o.firstWriteN {
				o.firstWriteN, o.firstWrite = true, now-crashAt
			}
		}
		n := int(window / every)
		for i := 0; i < n; i++ {
			i := uint64(i)
			at := sim.Time(i) * every
			issuedAt[i] = at
			cl.Eng.At(at, func() {
				// Alternate read/write probes so both recovery edges —
				// local reads on followers and leader-requiring writes —
				// are measured.
				key := []byte(fmt.Sprintf("k%05d", i%128))
				if i%2 == 0 {
					p.issue(i, rkv.PutReq(key, make([]byte, 64)), true, int(i)%len(p.nodes))
				} else {
					p.issue(i, rkv.GetReq(key), false, int(i)%len(p.nodes))
				}
			})
		}
		cl.Eng.Run()
		o.probe, o.elections = p, d.Elections
		return o
	})

	r := &Result{Header: []string{"detect(us)", "first-ok(us)", "first-write-ok(us)", "elections", "avail(%)", "gave-up"}}
	for di, detect := range detects {
		o := outs[di]
		fw := "-"
		if o.firstWriteN {
			fw = fmt.Sprintf("%.1f", o.firstWrite.Micros())
		}
		fo := "-"
		if o.firstOKN {
			fo = fmt.Sprintf("%.1f", o.firstOK.Micros())
		}
		r.Add(fmt.Sprintf("%.0f", detect.Micros()), fo, fw, o.elections,
			fmt.Sprintf("%.2f", o.probe.availability()), o.probe.gaveUp)
	}
	r.Note("leader kv0 crashes at %.1fms for %.1fms; write recovery tracks detect delay + election round",
		crashAt.Seconds()*1e3, crashDur.Seconds()*1e3)
	return r
}

// --- faults-partition --------------------------------------------------

func faultsPartition(opts Options) *Result {
	window := 15 * sim.Millisecond
	every := 15 * sim.Microsecond
	if opts.Quick {
		window = 6 * sim.Millisecond
	}
	w := float64(window)
	cutAt := sim.Time(w * 0.35)
	healAt := sim.Time(w * 0.65)

	type phaseStat struct {
		completed uint64
		writes    uint64
	}
	type outcome struct {
		phases [3]phaseStat
		probe  *rkvProbe
	}
	// One sweep point: the partition experiment is a single timeline;
	// sweepMap still routes it through the worker pool for parity.
	outs := sweepMap(opts, 1, func(int) outcome {
		sched := fault.Schedule{Faults: []fault.Fault{
			// Isolate the leader from replicas AND the client; Paxos
			// keeps its lease semantics simple here — no failover policy,
			// so writes stall until the partition heals.
			fault.Cut(cutAt, healAt-cutAt, "kv0"),
		}}
		cl, d := rkvFaultCluster(opts.seed(), true, sched, deploy.FailoverPolicy{Disabled: true})
		p := newRKVProbe(cl, d, faultRetry(), 10)
		o := outcome{}
		phaseOf := func(t sim.Time) int {
			switch {
			case t < cutAt:
				return 0
			case t < healAt:
				return 1
			default:
				return 2
			}
		}
		p.onDone = func(i uint64, isWrite bool) {
			ph := phaseOf(cl.Eng.Now())
			o.phases[ph].completed++
			if isWrite {
				o.phases[ph].writes++
			}
		}
		n := int(window / every)
		for i := 0; i < n; i++ {
			i := uint64(i)
			cl.Eng.At(sim.Time(i)*every, func() {
				data, isW := mixedData(i)
				p.issue(i, data, isW, int(i)%len(p.nodes))
			})
		}
		cl.Eng.Run()
		o.probe = p
		return o
	})
	o := outs[0]

	durs := [3]sim.Time{cutAt, healAt - cutAt, window - healAt}
	names := [3]string{"pre-cut", "partitioned", "healed"}
	r := &Result{Header: []string{"phase", "window(ms)", "completed", "goodput(Kops)", "writes-ok"}}
	for ph := range names {
		gp := float64(o.phases[ph].completed) / durs[ph].Seconds() / 1e3
		r.Add(names[ph], fmt.Sprintf("%.1f", durs[ph].Seconds()*1e3),
			o.phases[ph].completed, gp, o.phases[ph].writes)
	}
	r.Note("leader kv0 cut from replicas and client; reads keep flowing via follower memtables, writes stall until heal")
	r.Note("overall availability %.2f%% (gave-up %d of %d)", o.probe.availability(), o.probe.gaveUp, o.probe.issued)
	return r
}

// --- faults-dt ---------------------------------------------------------

func faultsDT(opts Options) *Result {
	window := 15 * sim.Millisecond
	every := 25 * sim.Microsecond
	if opts.Quick {
		window = 6 * sim.Millisecond
	}
	w := float64(window)
	crashAt := sim.Time(w * 0.3)
	crashDur := sim.Time(w * 0.25)
	const txnTimeout = sim.Millisecond
	const lockLease = 2 * sim.Millisecond

	type outcome struct {
		sent, committed, aborted, timeoutAborts uint64
		liveLocks, flaggedLocks                 int
		checkpoints                             uint64
	}
	outs := sweepMap(opts, 1, func(int) outcome {
		cl := core.NewCluster(opts.seed())
		mk := func(name string) *core.Node {
			return cl.AddNode(core.Config{Name: name, NIC: spec.LiquidIOII_CN2350(), LinkGbps: 10})
		}
		coord := mk("coord")
		parts := []*core.Node{mk("part1"), mk("part2"), mk("part3")}
		d, err := deploy.DTSpec{
			Common: deploy.Common{
				Placement: deploy.NIC,
				Faults: fault.Schedule{Faults: []fault.Fault{
					fault.Crash("part1", crashAt, crashDur),
				}},
			},
			Coordinator:  coord,
			Participants: parts,
			BaseID:       100,
			TxnTimeout:   txnTimeout,
			LockLease:    lockLease,
		}.Deploy()
		if err != nil {
			panic(err)
		}
		client := workload.NewClient(cl, "cli", 10)
		var sent uint64
		n := int(window / every)
		for i := 0; i < n; i++ {
			i := uint64(i)
			cl.Eng.At(sim.Time(i)*every, func() {
				sent++
				txn := dt.Txn{
					Reads: []dt.Op{
						{Key: []byte(fmt.Sprintf("r%d", i%256))},
						{Key: []byte(fmt.Sprintf("r%d", (i+11)%256))},
					},
					Writes: []dt.Op{{Key: []byte(fmt.Sprintf("w%d", i%128)), Value: make([]byte, 64)}},
				}
				client.Send(workload.Request{
					Node: "coord", Dst: 100, Kind: dt.KindTxn,
					Data: dt.EncodeTxn(txn), Size: 512, FlowID: i,
				})
			})
		}
		cl.Eng.Run()
		o := outcome{
			sent:          sent,
			committed:     d.Coord.Committed,
			aborted:       d.Coord.Aborted,
			timeoutAborts: d.Coord.TimeoutAborts,
			checkpoints:   d.Coord.Checkpoints,
		}
		now := cl.Eng.Now()
		for _, st := range d.Stores {
			o.liveLocks += st.Locks(now, lockLease)
			o.flaggedLocks += st.Locks(0, -1)
		}
		return o
	})
	o := outs[0]

	r := &Result{Header: []string{"metric", "value"}}
	r.Add("txns sent", o.sent)
	r.Add("committed", o.committed)
	r.Add("aborted", o.aborted)
	r.Add("  of which timeout-aborts", o.timeoutAborts)
	r.Add("resolved (committed+aborted)", o.committed+o.aborted)
	r.Add("live locks at end (lease-aware)", o.liveLocks)
	r.Add("stale lock flags at end", o.flaggedLocks)
	r.Add("log checkpoints", o.checkpoints)
	r.Note("part1 crashes at %.1fms for %.1fms; the coordinator sweep (txn timeout %v) aborts stranded txns, lock leases (%v) expire orphaned locks",
		crashAt.Seconds()*1e3, crashDur.Seconds()*1e3, txnTimeout, lockLease)
	r.Note("invariants: every txn resolves, live locks reach zero")
	return r
}
