package bench

import (
	"fmt"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/workload"
)

// The faults-pdes / qos-storm-pdes experiments certify the
// window-boundary fault path: a partitioned (PDES) echo mesh takes the
// full fault-arm matrix — cluster-wide barrier arms (crash, loss, flap,
// partition cut) running as sim.Group.AtBarrier actions, partition-local
// arms (NIC-down, overload, accelerator stall) on their owning engines —
// while retrying clients ride out the windows. Every column is
// deterministic and byte-identical at any window worker count, which is
// what `make fault-pdes-smoke` replays along the PDES axis.

func init() {
	register("faults-pdes", "Every fault arm on a partitioned (PDES) echo mesh: barrier arms at window boundaries, local arms on owning engines", faultsPDES)
	register("qos-storm-pdes", "Tenant storm + fault storm on the partitioned lane mesh: admission and lanes under window-boundary faults", qosStormPDES)
}

// pdesMeshSize resolves the mesh geometry shared by the PDES fault
// experiments: node count from quick mode, partition count from -pdes
// (default 4), clamped to the node count.
func pdesMeshSize(opts Options) (nodes, parts int, window sim.Time) {
	nodes, window = 12, 6*sim.Millisecond
	if opts.Quick {
		nodes, window = 8, 3*sim.Millisecond
	}
	parts = opts.PDESParts
	if parts <= 0 {
		parts = 4
	}
	if parts > nodes {
		parts = nodes
	}
	return nodes, parts, window
}

// buildPDESMesh creates the partitioned echo mesh: one NIC-pinned echo
// actor per node (ID 1+i), one client per node on the node's partition.
func buildPDESMesh(opts Options, nodes, parts int) (*core.Cluster, []*core.Node, []*workload.Client) {
	cl := core.NewPartitionedCluster(opts.seed(), parts)
	cl.SetPDESWorkers(opts.PDESWorkers)
	var nn []*core.Node
	for i := 0; i < nodes; i++ {
		n := cl.AddNode(core.Config{
			Name: fmt.Sprintf("n%03d", i), NIC: spec.LiquidIOII_CN2350(),
			LinkGbps: 10, DisableMigration: true,
		})
		a := &actor.Actor{
			ID: actor.ID(1 + i), Name: fmt.Sprintf("svc%03d", i), PinNIC: true,
			OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
				ctx.Reply(m)
				return sim.Microsecond
			},
		}
		if err := n.Register(a, true, 1<<20); err != nil {
			panic(err)
		}
		nn = append(nn, n)
	}
	clients := make([]*workload.Client, nodes)
	for i := 0; i < nodes; i++ {
		clients[i] = workload.NewClientAt(cl, fmt.Sprintf("c%03d", i), 10, nn[i].Part)
	}
	return cl, nn, clients
}

// pdesFaultSchedule covers every arm class, scaled to the run window:
// four barrier arms (two crashes — one jittered — a loss window, a flap,
// a partition cut) and three partition-local arms (overload, accel
// stall, NIC-down). All windows close before the run ends.
func pdesFaultSchedule(window sim.Time) fault.Schedule {
	w := float64(window)
	at := func(f float64) sim.Time { return sim.Time(w * f) }
	return fault.Schedule{Faults: []fault.Fault{
		fault.Crash("n000", at(0.15), at(0.12)),
		fault.Loss("n003", at(0.20), at(0.15), 0.5),
		fault.Flap("n004", at(0.40), at(0.15), at(0.05)),
		fault.Cut(at(0.60), at(0.12), "n000", "n001"),
		fault.Overload("n002", at(0.25), at(0.15), 4),
		fault.Stall("n005", "CRC", at(0.30), at(0.10)),
		fault.NICFail("n001", at(0.15), at(0.15)),
		{Kind: fault.NodeCrash, Node: "n006", At: at(0.70), Dur: at(0.10),
			Jitter: at(0.05)},
	}}
}

func faultsPDES(opts Options) *Result {
	nodes, parts, window := pdesMeshSize(opts)

	type outcome struct {
		nodes, parts             int
		sent, answered, rejected uint64
		retried, gaveUp          uint64
		p50, p99                 float64
		injected, activeEnd      int
		logLines                 int
		rounds, crossed          uint64
	}
	outs := sweepMap(opts, 1, func(int) outcome {
		cl, nn, clients := buildPDESMesh(opts, nodes, parts)
		in, err := fault.Install(cl, pdesFaultSchedule(window))
		if err != nil {
			panic(err)
		}

		// gaveUp[i] is written only by client i's partition engine.
		gaveUp := make([]uint64, nodes)
		for i := 0; i < nodes; i++ {
			i := i
			c := clients[i]
			dst := (i + 1) % nodes
			every(c.Eng(), 0, window, 10*sim.Microsecond, func(k uint64) {
				gi := i
				c.Send(workload.Request{
					Node: fmt.Sprintf("n%03d", dst), Dst: actor.ID(1 + dst),
					Size: 256, FlowID: uint64(i)<<32 | k,
					// Retry rides out the fault windows; MaxTimeout 0
					// exercises the uncapped-backoff clamp.
					Timeout: 100 * sim.Microsecond, Retries: 4, Backoff: 2,
					OnGiveUp: func() { gaveUp[gi]++ },
				})
			})
		}
		cl.RunUntil(window + sim.Millisecond) // drain room for late retries
		_ = nn

		o := outcome{nodes: nodes, parts: parts,
			injected: in.Injected(), activeEnd: in.Active(), logLines: len(in.Log())}
		lat := stats.NewSample()
		for i, c := range clients { // fixed order: deterministic merge
			o.sent += c.Sent
			o.answered += c.Received
			o.rejected += c.Rejected
			o.retried += c.Retried
			o.gaveUp += gaveUp[i]
			lat.Merge(c.Lat)
		}
		o.p50, o.p99 = lat.Percentile(50), lat.Percentile(99)
		if cl.Group != nil {
			o.rounds, o.crossed = cl.Group.Rounds(), cl.Group.Crossed()
		}
		return o
	})
	o := outs[0]

	r := &Result{Header: []string{"metric", "value"}}
	r.Add("nodes x partitions", fmt.Sprintf("%dx%d", o.nodes, o.parts))
	r.Add("requests sent/answered", fmt.Sprintf("%d/%d", o.sent, o.answered))
	r.Add("rejected (edge-shed)", o.rejected)
	r.Add("retried/gave-up", fmt.Sprintf("%d/%d", o.retried, o.gaveUp))
	r.Add("latency p50/p99 (us)", fmt.Sprintf("%.2f/%.2f", o.p50, o.p99))
	r.Add("faults injected/active-at-end", fmt.Sprintf("%d/%d", o.injected, o.activeEnd))
	r.Add("fault log lines", o.logLines)
	r.Add("windows/crossed", fmt.Sprintf("%d/%d", o.rounds, o.crossed))
	r.Note("schedule: crash n000+n006(jittered), nic-down n001, 4x overload n002, 50%% loss n003, flap n004, CRC stall n005, cut [n000 n001]")
	r.Note("barrier arms mutate shared state between conservative windows (sim.Group.AtBarrier); local arms run on the owning partition engine")
	r.Note("accounting: rejected counts admission-denied requests (never sent); this mesh has no gates, so it is structurally 0")
	return r
}

// qosStormPDES is the qos-storm variant on the partitioned lane mesh:
// token-bucket admission and priority lanes (no SLO controller — it is
// classic-only) under a fault storm of barrier and local arms. The
// client-edge accounting rows make the Sent/Rejected contract visible.
func qosStormPDES(opts Options) *Result {
	nodes, parts, window := pdesMeshSize(opts)

	type outcome struct {
		nodes, parts                int
		sent, answered              uint64
		cliRejected                 uint64
		offered, admitted, rejected [2]uint64
		enq, del, shed              [qos.NumLanes]uint64
		backpressured               uint64
		injected                    int
		logLines                    int
		rounds                      uint64
	}
	outs := sweepMap(opts, 1, func(int) outcome {
		cl, nn, clients := buildPDESMesh(opts, nodes, parts)
		rt, err := qos.Install(cl, nn, &qos.Tenancy{
			Tenants: []qos.Tenant{
				{Name: "even", RatePerSec: 250_000, Burst: 64},
				{Name: "odd", RatePerSec: 100_000, Burst: 64},
			},
			Lanes: qos.LaneConfig{DataCap: 32, TelemetryCap: 8, DispatchCost: 300 * sim.Nanosecond},
		})
		if err != nil {
			panic(err)
		}
		in, err := fault.Install(cl, pdesFaultSchedule(window))
		if err != nil {
			panic(err)
		}

		for i := 0; i < nodes; i++ {
			i := i
			c := clients[i]
			rt.Bind(c)
			tenant := uint16(i % 2)
			dst := (i + 1) % nodes
			// Even clients stay under budget; odd clients offer ~2.7x
			// theirs, so their gates shed at the edge while faults churn
			// the mesh underneath.
			interval := 5 * sim.Microsecond
			if tenant == 1 {
				interval = 3700 * sim.Nanosecond
			}
			every(c.Eng(), 0, window, interval, func(k uint64) {
				c.Send(workload.Request{
					Node: fmt.Sprintf("n%03d", dst), Dst: actor.ID(1 + dst),
					Size: 256, FlowID: uint64(i)<<32 | k, Tenant: tenant,
				})
			})
		}
		cl.RunUntil(window)

		o := outcome{nodes: nodes, parts: parts,
			injected: in.Injected(), logLines: len(in.Log())}
		for _, c := range clients {
			o.sent += c.Sent
			o.answered += c.Received
			o.cliRejected += c.Rejected
		}
		for t := 0; t < 2; t++ {
			o.offered[t] = rt.OfferedTo(t)
			o.admitted[t] = rt.AdmittedTo(t)
			o.rejected[t] = rt.RejectedTo(t)
		}
		o.enq, o.del, o.shed, o.backpressured = rt.LaneTotals()
		if cl.Group != nil {
			o.rounds = cl.Group.Rounds()
		}
		return o
	})
	o := outs[0]

	r := &Result{Header: []string{"metric", "value"}}
	r.Add("nodes x partitions", fmt.Sprintf("%dx%d", o.nodes, o.parts))
	r.Add("client edge sent/rejected/offered", fmt.Sprintf("%d/%d/%d",
		o.sent, o.cliRejected, o.sent+o.cliRejected))
	r.Add("requests answered", o.answered)
	for t, name := range []string{"even", "odd"} {
		r.Add(name+" offered/admitted/rejected",
			fmt.Sprintf("%d/%d/%d", o.offered[t], o.admitted[t], o.rejected[t]))
	}
	for l := qos.Lane(0); l < qos.NumLanes; l++ {
		r.Add(l.String()+" enq/del/shed",
			fmt.Sprintf("%d/%d/%d", o.enq[l], o.del[l], o.shed[l]))
	}
	r.Add("data backpressured", o.backpressured)
	r.Add("faults injected", o.injected)
	r.Add("fault log lines", o.logLines)
	r.Add("windows", o.rounds)
	r.Note("accounting: edge sent excludes admission-denied requests; offered = sent + rejected (workload.Client contract), and the gate ledger's rejected matches the client edge")
	r.Note("fault storm: the full faults-pdes arm matrix on the same mesh; the SLO controller stays off (classic-only)")
	return r
}
