package bench

import (
	"fmt"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/workload"
)

// The migrate-pdes experiment certifies §3.2.5 migration on a
// partitioned (PDES) cluster: every node force-pushes its actor to the
// host mid-window, fault arms (a crash and a NIC-complex failure) land
// between the migration phases, and after recovery every node pulls its
// actor back to the NIC. The node-local phases run on the owning
// partition's engine; the cluster-visible commit — the actor-table
// rewrite, host/NIC registration, buffered re-dispatch — defers to the
// next conservative-window boundary (sim.Group.DeferBarrier), so the
// copy-on-write actor table stays single-writer and every column is
// byte-identical at any worker count. `make migrate-pdes-smoke` replays
// this along the PDES axis.

func init() {
	register("migrate-pdes", "Forced push+pull migrations on a partitioned (PDES) mesh with fault arms landing between the migration phases", migratePDES)
}

// buildMigratePDESMesh is buildPDESMesh without the migration freeze:
// actors are unpinned, migration hooks are wired, and each actor owns a
// 256KB DMO region so the phase-3 object move has real bytes to charge.
func buildMigratePDESMesh(opts Options, nodes, parts int) (*core.Cluster, []*core.Node, []*workload.Client) {
	cl := core.NewPartitionedCluster(opts.seed(), parts)
	cl.SetPDESWorkers(opts.PDESWorkers)
	var nn []*core.Node
	for i := 0; i < nodes; i++ {
		n := cl.AddNode(core.Config{
			Name: fmt.Sprintf("n%03d", i), NIC: spec.LiquidIOII_CN2350(),
			LinkGbps: 10,
		})
		a := &actor.Actor{
			ID: actor.ID(1 + i), Name: fmt.Sprintf("svc%03d", i),
			OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
				ctx.Reply(m)
				return sim.Microsecond
			},
			OnInit: func(ctx actor.Ctx) { ctx.Alloc(256 << 10) },
		}
		if err := n.Register(a, true, 1<<20); err != nil {
			panic(err)
		}
		nn = append(nn, n)
	}
	clients := make([]*workload.Client, nodes)
	for i := 0; i < nodes; i++ {
		clients[i] = workload.NewClientAt(cl, fmt.Sprintf("c%03d", i), 10, nn[i].Part)
	}
	return cl, nn, clients
}

func migratePDES(opts Options) *Result {
	nodes, parts, window := pdesMeshSize(opts)
	w := float64(window)
	at := func(f float64) sim.Time { return sim.Time(w * f) }
	// Forced pushes land mid-window; the fault arms are timed off the
	// push into specific protocol phases (p1 = 200µs, p3 starts ~250µs
	// in and moves the 256KB region for ~590µs more).
	pushAt, pullAt := at(0.10), at(0.55)

	type outcome struct {
		nodes, parts         int
		sent, answered       uint64
		retried, gaveUp      uint64
		pushOK, pullOK       int
		pushRecs, pullRecs   int
		pushBytes, pullBytes int
		buffered             int
		p50, p99             float64
		injected             int
		rounds, crossed      uint64
	}
	outs := sweepMap(opts, 1, func(int) outcome {
		cl, nn, clients := buildMigratePDESMesh(opts, nodes, parts)
		in, err := fault.Install(cl, fault.Schedule{Faults: []fault.Fault{
			// Crash n000 mid phase-3 of its push (object move in flight);
			// the commit still lands — placement survives the crash like
			// durable state — and the node recovers before the pulls.
			fault.Crash("n000", pushAt+320*sim.Microsecond, at(0.10)),
			// Kill n001's NIC complex mid phase-1; re-homing skips the
			// in-flight actor and the push finishes onto the host.
			fault.NICFail("n001", pushAt+100*sim.Microsecond, at(0.10)),
		}})
		if err != nil {
			panic(err)
		}

		gaveUp := make([]uint64, nodes)
		for i := 0; i < nodes; i++ {
			i := i
			c := clients[i]
			dst := (i + 1) % nodes
			every(c.Eng(), 0, window, 10*sim.Microsecond, func(k uint64) {
				gi := i
				c.Send(workload.Request{
					Node: fmt.Sprintf("n%03d", dst), Dst: actor.ID(1 + dst),
					Size: 256, FlowID: uint64(i)<<32 | k,
					Timeout: 100 * sim.Microsecond, Retries: 4, Backoff: 2,
					OnGiveUp: func() { gaveUp[gi]++ },
				})
			})
		}

		// pushOK[i]/pullOK[i] are written only by node i's partition
		// engine (same single-writer discipline as gaveUp).
		pushOK := make([]bool, nodes)
		pullOK := make([]bool, nodes)
		for i := 0; i < nodes; i++ {
			i := i
			nn[i].Eng().At(pushAt, func() { pushOK[i] = nn[i].MigrateNow(actor.ID(1 + i)) })
			nn[i].Eng().At(pullAt, func() { pullOK[i] = nn[i].PullNow() })
		}
		cl.RunUntil(window + sim.Millisecond) // drain room for late retries

		o := outcome{nodes: nodes, parts: parts, injected: in.Injected()}
		lat := stats.NewSample()
		for i, c := range clients { // fixed order: deterministic merge
			o.sent += c.Sent
			o.answered += c.Received
			o.retried += c.Retried
			o.gaveUp += gaveUp[i]
			lat.Merge(c.Lat)
		}
		for i, n := range nn {
			if pushOK[i] {
				o.pushOK++
			}
			if pullOK[i] {
				o.pullOK++
			}
			for _, rec := range n.Migrations {
				if rec.Pull {
					o.pullRecs++
					o.pullBytes += rec.BytesMoved
				} else {
					o.pushRecs++
					o.pushBytes += rec.BytesMoved
				}
				o.buffered += rec.Buffered
			}
		}
		o.p50, o.p99 = lat.Percentile(50), lat.Percentile(99)
		if cl.Group != nil {
			o.rounds, o.crossed = cl.Group.Rounds(), cl.Group.Crossed()
		}
		return o
	})
	o := outs[0]

	r := &Result{Header: []string{"metric", "value"}}
	r.Add("nodes x partitions", fmt.Sprintf("%dx%d", o.nodes, o.parts))
	r.Add("requests sent/answered", fmt.Sprintf("%d/%d", o.sent, o.answered))
	r.Add("retried/gave-up", fmt.Sprintf("%d/%d", o.retried, o.gaveUp))
	r.Add("latency p50/p99 (us)", fmt.Sprintf("%.2f/%.2f", o.p50, o.p99))
	r.Add("forced push/pull accepted", fmt.Sprintf("%d/%d", o.pushOK, o.pullOK))
	r.Add("push records (count/bytes)", fmt.Sprintf("%d/%d", o.pushRecs, o.pushBytes))
	r.Add("pull records (count/bytes)", fmt.Sprintf("%d/%d", o.pullRecs, o.pullBytes))
	r.Add("buffered requests forwarded", o.buffered)
	r.Add("faults injected", o.injected)
	r.Add("windows/crossed", fmt.Sprintf("%d/%d", o.rounds, o.crossed))
	r.Note("node-local migration phases run on the owning partition engine; the table/registration commit defers to the next window boundary (DESIGN.md §13)")
	r.Note("arms: crash n000 mid phase-3 (commit lands anyway), NIC-down n001 mid phase-1 (re-homing skips the in-flight actor); a pull whose NIC dies in flight bounces back to the host and records nothing")
	r.Note("pull records carry the direction tag, so both directions are accounted (a pull may be refused while a policy migration holds the latch)")
	return r
}
