package bench

import (
	"fmt"

	"repro/internal/actor"
	"repro/internal/apps/dt"
	"repro/internal/apps/rkv"
	"repro/internal/apps/rta"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

func init() {
	register("fig18", "Actor migration elapsed time by phase (8 actors, 90% load)", fig18)
	register("floem", "Floem comparison: RTA per-host-core throughput (§5.6)", floem)
	register("nf", "Network functions on iPipe: firewall latency, IPSec bandwidth (§5.7)", nfExp)
}

// fig18 reproduces Appendix B.3 / Figure 18: deploy the three
// applications' actors on one SmartNIC, warm them under load, force a
// push migration of each, and report the four phase durations. The LSM
// Memtable is prefilled to ≈32MB as in the paper.
//
// Unlike the other runners this is ONE scenario, not a sweep: the eight
// migrations share a cluster and interleave on its timeline, so there is
// no independent point structure to fan out and it stays serial.
func fig18(opts Options) *Result {
	warm := 5 * sim.Millisecond
	if opts.Quick {
		warm = 2 * sim.Millisecond
	}
	cl := core.NewCluster(opts.seed())
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350(), DisableMigration: true})
	peer := cl.AddNode(core.Config{Name: "peer", NIC: spec.LiquidIOII_CN2350(), DisableMigration: true})

	// RTA trio.
	topo := rta.Topology{Filter: 1, Counter: 2, Ranker: 3}
	f, _ := rta.NewFilter(1, topo, []string{"drop"})
	c, _ := rta.NewCounter(2, topo, rta.CounterConfig{})
	rk, _ := rta.NewRanker(3, topo, 10)
	// DT coordinator + one participant (logger on host).
	st := dt.NewStore()
	parti := dt.NewParticipant(11, st)
	logger := dt.NewLogger(12, nil)
	coord := dt.NewCoordinator(10, []actor.ID{11}, 12)
	// RKV consensus pair + leader Memtable (SST actors host-side).
	sst := rkv.NewSSTStore(0)
	mem := rkv.NewMemtable(21, 256<<20, 22, 23) // huge limit: no compaction during prefill
	sstR := rkv.NewSSTReader(22, sst)
	comp := rkv.NewCompactor(23, sst)
	consF := rkv.NewConsensus(24, []actor.ID{20}, 21, false)
	consL := rkv.NewConsensus(20, []actor.ID{24}, 21, true)

	for _, reg := range []struct {
		n *core.Node
		a *actor.Actor
	}{
		{n, f}, {n, c}, {n, rk}, {n, coord.Actor}, {peer, parti}, {n, logger},
		{n, mem.Actor}, {n, sstR}, {n, comp}, {n, consL.Actor}, {peer, consF.Actor},
	} {
		if err := reg.n.Register(reg.a, true, 128<<20); err != nil {
			panic(err)
		}
	}

	client := workload.NewClient(cl, "cli", 10)
	// Prefill the Memtable to ≈32MB (4KB values).
	const prefill = 32 << 20 / 4096
	var fill func(i int)
	fill = func(i int) {
		if i >= prefill {
			return
		}
		client.Send(workload.Request{
			Node: "srv", Dst: 20, Kind: rkv.KindReq,
			Data: rkv.PutReq([]byte(fmt.Sprintf("fill-%06d", i)), make([]byte, 4096)),
			Size: 1024,
			OnResp: func(actor.Msg) {
				// Two at a time keeps prefill quick but bounded.
				fill(i + 2)
			},
		})
	}
	fill(0)
	fill(1)
	cl.Eng.Run()
	base := cl.Eng.Now()

	// Warm all actors under ≈90% load for the statistics and buffered-
	// request population, then force migrations one by one.
	z := workload.NewZipf(cl.Eng.Rand(), 1000, 0.99)
	client.OpenLoop(120000, warm+20*sim.Millisecond, func(i uint64) workload.Request {
		switch i % 4 {
		case 0:
			return workload.Request{Node: "srv", Dst: 1, Kind: rta.KindTuples,
				Data: rta.EncodeTuples([]string{"alpha", "beta"}), Size: 512, FlowID: i}
		case 1:
			txn := dt.Txn{Writes: []dt.Op{{Key: []byte(fmt.Sprintf("k%d", z.Next())), Value: make([]byte, 64)}}}
			return workload.Request{Node: "srv", Dst: 10, Kind: dt.KindTxn,
				Data: dt.EncodeTxn(txn), Size: 512, FlowID: i}
		case 2:
			return workload.Request{Node: "srv", Dst: 20, Kind: rkv.KindReq,
				Data: rkv.GetReq([]byte(fmt.Sprintf("fill-%06d", z.Next()))), Size: 512, FlowID: i}
		default:
			return workload.Request{Node: "peer", Dst: 11, Kind: dt.KindTxn,
				Data: dt.EncodeTxn(dt.Txn{Reads: []dt.Op{{Key: []byte("r")}}}), Size: 512, FlowID: i}
		}
	})
	// The 8 migrated actors of the figure: filter, counter, ranker,
	// coordinator, participant, both consensus actors, LSM Memtable.
	targets := []struct {
		node *core.Node
		id   actor.ID
		name string
	}{
		{n, 1, "Filter"}, {n, 2, "Count"}, {n, 3, "Rank"},
		{n, 10, "Coord."}, {peer, 11, "Parti."},
		{n, 20, "Consensus"}, {peer, 24, "Consensus-F"}, {n, 21, "LSMmem."},
	}
	for i, tgt := range targets {
		tgt := tgt
		cl.Eng.At(base+warm+sim.Time(i)*2*sim.Millisecond, func() { tgt.node.MigrateNow(tgt.id) })
	}
	cl.Eng.Run()

	r := &Result{Header: []string{"actor", "phase1(ms)", "phase2(ms)", "phase3(ms)", "phase4(ms)", "total(ms)", "bytes"}}
	recs := append(append([]core.MigrationRecord(nil), n.Migrations...), peer.Migrations...)
	used := make([]bool, len(recs))
	ms := func(t sim.Time) float64 { return t.Micros() / 1000 }
	var p3share, p4share, total float64
	for _, tgt := range targets {
		var rec core.MigrationRecord
		found := false
		want := tgt.name
		if want == "Consensus-F" {
			want = "Consensus"
		}
		for ci, cand := range recs {
			// Pull records (host→NIC) are a different protocol; Figure 18
			// measures the 4-phase push only.
			if cand.Pull {
				continue
			}
			if !used[ci] && cand.Actor != "" && actorLabel(cand.Actor) == want {
				rec, found = cand, true
				used[ci] = true
				break
			}
		}
		if !found {
			continue
		}
		r.Add(tgt.name, ms(rec.Phase[0]), ms(rec.Phase[1]), ms(rec.Phase[2]), ms(rec.Phase[3]),
			ms(rec.Total()), rec.BytesMoved)
		p3share += float64(rec.Phase[2])
		p4share += float64(rec.Phase[3])
		total += float64(rec.Total())
	}
	if len(r.Rows) == 0 {
		for _, rec := range recs {
			if rec.Pull {
				continue
			}
			r.Add(rec.Actor, ms(rec.Phase[0]), ms(rec.Phase[1]), ms(rec.Phase[2]), ms(rec.Phase[3]),
				ms(rec.Total()), rec.BytesMoved)
			p3share += float64(rec.Phase[2])
			p4share += float64(rec.Phase[3])
			total += float64(rec.Total())
		}
	}
	if total > 0 {
		r.Note("phase 3 (object move) = %.0f%% of total, phase 4 (buffered forwarding) = %.0f%% (paper: 67.8%% / 27.2%%)",
			p3share/total*100, p4share/total*100)
	}
	r.Note("paper: the 32MB LSM Memtable takes ≈35.8ms in phase 3")
	return r
}

// actorLabel maps runtime actor names to the figure's labels.
func actorLabel(name string) string {
	switch name {
	case "rta-filter":
		return "Filter"
	case "rta-counter":
		return "Count"
	case "rta-ranker":
		return "Rank"
	case "dt-coordinator":
		return "Coord."
	case "dt-participant":
		return "Parti."
	case "rkv-consensus":
		return "Consensus"
	case "rkv-memtable":
		return "LSMmem."
	}
	return name
}

// floem reproduces the §5.6 comparison: RTA on a Floem-style static
// runtime vs iPipe, at 512B (best case) and 64B (where iPipe migrates
// everything to the host and uses NIC cores purely for forwarding).
func floem(opts Options) *Result {
	window := 5 * sim.Millisecond
	if opts.Quick {
		window = 2 * sim.Millisecond
	}
	r := &Result{Header: []string{"size(B)", "runtime", "goodput(Gbps)", "host-cores", "Gbps/core"}}
	sizes := []int{512, 64}
	modes := []string{"Floem", "iPipe"}
	g := grid{outer: len(sizes), inner: len(modes)}
	runs := sweepMap(opts, g.size(), func(i int) appRun {
		si, mi := g.split(i)
		return runRTAVariant(opts.seed(), modes[mi], sizes[si], window)
	})
	var per512 map[string]float64 = map[string]float64{}
	var per64 map[string]float64 = map[string]float64{}
	for i := 0; i < g.size(); i++ {
		si, mi := g.split(i)
		size, mode := sizes[si], modes[mi]
		run := runs[i]
		gbps := run.Tput * float64(size) * 8 / 1e9
		cores := run.CoresUsed["RTA Worker"]
		perCore := gbps / cores
		r.Add(size, mode, gbps, cores, perCore)
		if size == 512 {
			per512[mode] = perCore
		} else {
			per64[mode] = perCore
		}
	}
	r.Note("512B: iPipe/Floem per-core = %.2fX (paper: 2.9 vs 1.6 Gbps/core = 1.8X)", per512["iPipe"]/per512["Floem"])
	r.Note("64B: iPipe/Floem per-core = %.2fX (paper: +88.3%%; iPipe moves actors to the host and forwards)", per64["iPipe"]/per64["Floem"])
	return r
}

// runRTAVariant deploys RTA under a given runtime flavour on one node.
func runRTAVariant(seed uint64, mode string, size int, window sim.Time) appRun {
	cl := core.NewCluster(seed)
	nicModel := spec.LiquidIOII_CN2350()
	var cfg core.Config
	switch mode {
	case "Floem":
		cfg = core.Config{Name: "w0", NIC: nicModel, DisableMigration: true}
		fc := *nicModel // Floem's runtime multiplexing overhead on dispatch
		_ = fc
		cfg = floemNodeConfig(nicModel)
	default:
		cfg = core.Config{Name: "w0", NIC: nicModel}
	}
	cfg.Name = "w0"
	n := cl.AddNode(cfg)
	var filters []actor.ID
	id := actor.ID(1000)
	for s := 0; s < appShards; s++ {
		topo := rta.Topology{Filter: id, Counter: id + 1, Ranker: id + 2}
		f, _ := rta.NewFilter(topo.Filter, topo, []string{"xanadu"})
		c, _ := rta.NewCounter(topo.Counter, topo, rta.CounterConfig{})
		rk, _ := rta.NewRanker(topo.Ranker, topo, 10)
		n.Register(f, true, 0)
		n.Register(c, true, 0)
		n.Register(rk, true, 0)
		filters = append(filters, topo.Filter)
		id += 3
	}
	client := workload.NewClient(cl, "cli", nicModel.LinkGbps)
	perReq := size / 32
	if perReq < 1 {
		perReq = 1
	}
	words := []string{"alpha", "beta", "gamma", "delta"}
	client.ClosedLoop(24*len(filters), window, func(i uint64) workload.Request {
		tuples := make([]string, perReq)
		for j := range tuples {
			tuples[j] = words[int(i+uint64(j))%len(words)]
		}
		return workload.Request{
			Node: "w0", Dst: filters[int(i)%len(filters)], Kind: rta.KindTuples,
			Data: rta.EncodeTuples(tuples), Size: size, FlowID: i,
		}
	})
	cl.Eng.RunUntil(window)
	return collect(cl, client, window, map[string]string{"RTA Worker": "w0"})
}

// floemNodeConfig builds the Floem node config (kept here to avoid an
// import cycle with internal/baseline in earlier revisions; it simply
// delegates).
func floemNodeConfig(nic *spec.NICModel) core.Config {
	return floemCfg(nic)
}

// nfExp reproduces §5.7: the firewall's packet latency under load with
// 8K wildcard rules, and the IPSec gateway's achieved bandwidth with
// crypto engines on the 10/25GbE LiquidIO cards.
func nfExp(opts Options) *Result {
	window := 5 * sim.Millisecond
	if opts.Quick {
		window = 2 * sim.Millisecond
	}
	r := &Result{Header: []string{"function", "config", "metric", "value"}}

	// Four independent points: two firewall load levels (paper:
	// 3.65–19.41µs from low to high load, 8K rules, 1KB packets) and the
	// IPSec gateway on both LiquidIO cards.
	fwLoads := []float64{0.2, 0.9}
	nics := []*spec.NICModel{spec.LiquidIOII_CN2350(), spec.LiquidIOII_CN2360()}
	vals := sweepMap(opts, len(fwLoads)+len(nics), func(i int) float64 {
		if i < len(fwLoads) {
			return runFirewall(opts.seed(), fwLoads[i], window).P50
		}
		return runIPSec(opts.seed(), nics[i-len(fwLoads)], window)
	})
	r.Add("Firewall", "8K rules, 1KB, 10GbE", "p50 low-load (us)", vals[0])
	r.Add("Firewall", "8K rules, 1KB, 10GbE", "p50 high-load (us)", vals[1])
	for ni, nic := range nics {
		r.Add("IPSec", fmt.Sprintf("1KB, %s", nic.Name), "goodput (Gbps)", vals[len(fwLoads)+ni])
	}
	r.Note("paper: firewall 3.65–19.41us across load; IPSec 8.6 Gbps (10GbE) / 22.9 Gbps (25GbE)")
	return r
}
