package bench

import (
	"repro/internal/actor"
	"repro/internal/apps/nf"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

// floemCfg delegates to the baseline package's Floem configuration.
func floemCfg(nic *spec.NICModel) core.Config {
	return baseline.FloemConfig("w0", nic)
}

// runFirewall deploys the 8K-rule TCAM firewall on the NIC and drives
// 1KB packets at the given fraction of line rate.
func runFirewall(seed uint64, load float64, window sim.Time) appRun {
	cl := core.NewCluster(seed)
	nic := spec.LiquidIOII_CN2350()
	n := cl.AddNode(core.Config{Name: "fw", NIC: nic, DisableMigration: true})
	tcam := nf.NewTCAM(nf.UniformRules(8192))
	fw := nf.NewFirewall(500, tcam)
	fw.PinNIC = true
	if err := n.Register(fw, true, 0); err != nil {
		panic(err)
	}
	client := workload.NewClient(cl, "cli", nic.LinkGbps)
	rnd := sim.NewRand(seed * 3)
	rate := spec.LineRatePPS(nic.LinkGbps, 1024) * load
	client.OpenLoop(rate, window, func(i uint64) workload.Request {
		t := nf.FiveTuple{
			SrcIP:   uint32(rnd.Intn(8192)) << 16,
			DstIP:   uint32(rnd.Uint64()),
			SrcPort: uint16(rnd.Intn(65536)),
			DstPort: 80,
			Proto:   6,
		}
		return workload.Request{Node: "fw", Dst: 500, Kind: nf.KindPacket,
			Data: t.Encode(), Size: 1024, FlowID: i}
	})
	cl.Eng.Run()
	return appRun{P50: client.Lat.Percentile(50), P99: client.Lat.Percentile(99),
		Tput: float64(client.Received) / window.Seconds(), CoresUsed: map[string]float64{}}
}

// runIPSec deploys the IPSec gateway on a LiquidIO card and measures
// achieved goodput for 1KB packets at line-rate offered load.
func runIPSec(seed uint64, nic *spec.NICModel, window sim.Time) float64 {
	cl := core.NewCluster(seed)
	n := cl.AddNode(core.Config{Name: "gw", NIC: nic, DisableMigration: true})
	var gws []actor.ID
	// One gateway actor per two NIC cores: the crypto engines serialize,
	// so a handful of actors model the firmware's worker pool.
	for i := 0; i < 4; i++ {
		st, err := nf.NewIPSecState(make([]byte, 32), []byte("ipsec-mac-key"))
		if err != nil {
			panic(err)
		}
		gw := nf.NewIPSecGateway(actor.ID(600+i), st)
		gw.PinNIC = true
		if err := n.Register(gw, true, 0); err != nil {
			panic(err)
		}
		gws = append(gws, gw.ID)
	}
	client := workload.NewClient(cl, "cli", nic.LinkGbps)
	const size = 1024
	rate := spec.LineRatePPS(nic.LinkGbps, size)
	client.OpenLoop(rate, window, func(i uint64) workload.Request {
		return workload.Request{Node: "gw", Dst: gws[int(i)%len(gws)], Kind: nf.KindPacket,
			Data: make([]byte, 256), Size: size, FlowID: i}
	})
	cl.Eng.RunUntil(window + 2*sim.Millisecond)
	return float64(client.Received) / window.Seconds() * size * 8 / 1e9
}
