package bench

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// observedRun executes an experiment serially with a default observer
// installed (the -trace/-metrics path of ipipe-bench) and returns the
// result plus the rendered trace and metrics bytes.
func observedRun(t *testing.T, id string) (*Result, []byte, []byte) {
	t.Helper()
	tracer := obs.NewTracer()
	var collectors []*obs.Collector
	run := 0
	core.SetDefaultObserver(func(c *core.Cluster) {
		prefix := fmt.Sprintf("r%02d/", run)
		run++
		c.EnableTracingPrefixed(tracer, prefix)
		col := obs.NewCollector(c.Eng, 100*sim.Microsecond)
		collectors = append(collectors, col)
		c.EnableMetricsPrefixed(col, prefix)
		col.Start()
	})
	defer core.SetDefaultObserver(nil)
	r, err := Run(id, Options{Quick: true, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	var trace, metrics bytes.Buffer
	if err := tracer.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	for _, col := range collectors {
		col.Snapshot()
		if err := col.WriteNDJSON(&metrics); err != nil {
			t.Fatal(err)
		}
	}
	return r, trace.Bytes(), metrics.Bytes()
}

// TestObservedRunParity extends the determinism contract to the
// observability path: running an experiment with tracing and metrics
// enabled must (a) leave the experiment's rows and notes byte-identical
// to a bare run, (b) produce valid trace and metrics artifacts, and
// (c) reproduce those artifacts byte-for-byte on a second run.
func TestObservedRunParity(t *testing.T) {
	const id = "fig17"
	bare, err := Run(id, Options{Quick: true, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	observed, trace1, metrics1 := observedRun(t, id)
	if !reflect.DeepEqual(bare.Rows, observed.Rows) {
		t.Fatalf("observation perturbed experiment rows:\nbare:     %v\nobserved: %v",
			bare.Rows, observed.Rows)
	}
	if !reflect.DeepEqual(bare.Notes, observed.Notes) {
		t.Fatalf("observation perturbed notes:\nbare:     %v\nobserved: %v",
			bare.Notes, observed.Notes)
	}
	if st, err := obs.ValidateChromeTrace(bytes.NewReader(trace1)); err != nil {
		t.Fatalf("invalid trace: %v", err)
	} else if st.Spans == 0 {
		t.Fatal("observed experiment produced an empty trace")
	}
	if st, err := obs.ValidateMetricsNDJSON(bytes.NewReader(metrics1)); err != nil {
		t.Fatalf("invalid metrics: %v", err)
	} else if st.Records == 0 {
		t.Fatal("observed experiment produced no metric records")
	}
	_, trace2, metrics2 := observedRun(t, id)
	if !bytes.Equal(trace1, trace2) {
		t.Fatal("repeated observed run produced different trace bytes")
	}
	if !bytes.Equal(metrics1, metrics2) {
		t.Fatal("repeated observed run produced different metrics bytes")
	}
}
