package bench

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/sim"
)

// The partitioned-observability contract, on the mesh the PDES engine
// was built for:
//
//  1. Non-perturbation: a run with tracing and metrics attached has the
//     same invariant fingerprint (and deterministic stats) as a bare
//     run — sharded sinks emit no events and the collector samples only
//     at window boundaries.
//  2. Worker independence: the exported trace and metrics artifacts are
//     byte-identical at 1, 2 and 4 window workers.

var obsMeshCfg = mesh.Config{
	Nodes: 8, Partitions: 4, Seed: 7,
	Window: 200 * sim.Microsecond, Check: true,
}

// observedMesh runs the mesh with observability attached and returns
// its stats plus the rendered artifacts.
func observedMesh(t *testing.T, workers int) (mesh.Stats, []byte, []byte) {
	t.Helper()
	tracer := obs.NewTracer()
	var col *obs.Collector
	core.SetDefaultObserver(func(c *core.Cluster) {
		c.EnableTracing(tracer)
		col = obs.NewCollector(c.Eng, 50*sim.Microsecond)
		c.EnableMetrics(col)
		col.Start()
	})
	defer core.SetDefaultObserver(nil)
	cfg := obsMeshCfg
	cfg.Workers = workers
	s := mesh.Run(cfg)
	var trace, metrics bytes.Buffer
	if err := tracer.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	col.Snapshot()
	if err := col.WriteNDJSON(&metrics); err != nil {
		t.Fatal(err)
	}
	return s, trace.Bytes(), metrics.Bytes()
}

func TestPDESObservabilityNonPerturbing(t *testing.T) {
	bare := mesh.Run(obsMeshCfg)
	if bare.Fingerprint == "" {
		t.Fatal("bare run produced no fingerprint")
	}

	var firstTrace, firstMetrics []byte
	for _, w := range []int{1, 2, 4} {
		s, trace, metrics := observedMesh(t, w)
		if s.Violations != 0 {
			t.Fatalf("workers=%d: %d invariant violations with observability on", w, s.Violations)
		}
		if s.Fingerprint != bare.Fingerprint {
			t.Fatalf("workers=%d: observability perturbed the invariant fingerprint", w)
		}
		if s.Ops != bare.Ops || s.P50us != bare.P50us || s.P99us != bare.P99us ||
			s.Events != bare.Events || s.Crossed != bare.Crossed || s.Rounds != bare.Rounds {
			t.Fatalf("workers=%d: observability perturbed results:\nbare:     %+v\nobserved: %+v", w, bare, s)
		}
		if firstTrace == nil {
			firstTrace, firstMetrics = trace, metrics
			st, err := obs.ValidateChromeTrace(bytes.NewReader(trace))
			if err != nil {
				t.Fatalf("invalid partitioned trace: %v", err)
			}
			if st.Spans == 0 || st.Handoffs == 0 {
				t.Fatalf("partitioned trace missing content: %d spans, %d handoff pairs", st.Spans, st.Handoffs)
			}
			if mt, err := obs.ValidateMetricsNDJSON(bytes.NewReader(metrics)); err != nil {
				t.Fatalf("invalid partitioned metrics: %v", err)
			} else if mt.Records == 0 {
				t.Fatal("partitioned run produced no metric records")
			}
			continue
		}
		if !bytes.Equal(trace, firstTrace) {
			t.Fatalf("workers=%d: trace bytes differ from workers=1", w)
		}
		if !bytes.Equal(metrics, firstMetrics) {
			t.Fatalf("workers=%d: metrics bytes differ from workers=1", w)
		}
	}
}

// TestObsReportDeterministic pins the report artifact itself: two
// builds of the same experiment set must produce byte-identical
// deterministic fields (the gate run in CI relies on this).
func TestObsReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := Options{Quick: true, Seed: 1}
	a, err := ObsReport(opts, []string{"scale-nodes"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ObsReport(opts, []string{"scale-nodes"})
	if err != nil {
		t.Fatal(err)
	}
	if bad := obs.CompareReports(a, b, obs.GateOptions{}); len(bad) != 0 {
		t.Fatalf("back-to-back reports fail the gate: %v", bad)
	}
	es := a.Experiments[0]
	if es.Ops == 0 || es.SojournUs.Count == 0 || es.Handoffs == 0 || es.Rounds == 0 {
		t.Fatalf("report missing expected content: %+v", es)
	}
}
