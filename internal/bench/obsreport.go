package bench

// The observed-run report: ipipe-bench -report re-runs a small set of
// experiments with tracing and metrics attached and condenses what the
// observability layer saw — merged sojourn histograms, gauge
// watermarks, scheduler timelines, counter totals, PDES handoff/round
// counts, and allocation cost — into the versioned obs.Report artifact
// (BENCH_obs.json). Paired with -baseline it becomes the perf gate
// (`make obs-gate`): deterministic fields must not drift, cost fields
// must not grow past their band.

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// DefaultReportIDs is the experiment set an unqualified -report runs:
// one classic multi-cluster sweep (fig17 exercises the host/NIC split)
// and the partitioned mesh sweep (scale-nodes exercises sharded sinks,
// window-mode metrics and cross-partition handoffs).
func DefaultReportIDs() []string { return []string{"fig17", "scale-nodes"} }

// ObsReport runs each experiment with observability attached and builds
// the run-summary artifact. Sweep parallelism is forced to 1: the
// clusters of a sweep share one tracer, and serial construction keeps
// registration order — and with it every deterministic field — exactly
// reproducible. (PDESWorkers is honored; window workers cannot change
// the artifact.)
func ObsReport(opts Options, ids []string) (*obs.Report, error) {
	if len(ids) == 0 {
		ids = DefaultReportIDs()
	}
	opts.Parallel = 1
	rep := &obs.Report{
		Version:    obs.ReportVersion,
		Seed:       opts.seed(),
		Quick:      opts.Quick,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note:       "deterministic fields gate exactly; allocs gate with a growth band; wall time is informational",
	}
	for _, id := range ids {
		es, err := obsReportOne(id, opts)
		if err != nil {
			return nil, err
		}
		rep.Experiments = append(rep.Experiments, *es)
	}
	return rep, nil
}

// timelineCap bounds the scheduler-decision events embedded per
// experiment; TimelineTotal still counts them all.
const timelineCap = 64

func obsReportOne(id string, opts Options) (*obs.ExperimentSummary, error) {
	tracer := obs.NewTracer()
	var collectors []*obs.Collector
	var clusters []*core.Cluster
	run := 0
	core.SetDefaultObserver(func(c *core.Cluster) {
		prefix := fmt.Sprintf("r%02d/", run)
		run++
		c.EnableTracingPrefixed(tracer, prefix)
		col := obs.NewCollector(c.Eng, 100*sim.Microsecond)
		collectors = append(collectors, col)
		c.EnableMetricsPrefixed(col, prefix)
		col.Start()
		clusters = append(clusters, c)
	})
	defer core.SetDefaultObserver(nil)

	// Mallocs/TotalAlloc deltas around the run give the allocation cost
	// the gate bands. GC between the reads only helps (both counters are
	// monotonic totals, not live-heap numbers).
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	r, err := Run(id, opts)
	if err != nil {
		return nil, err
	}
	runtime.ReadMemStats(&m1)

	es := &obs.ExperimentSummary{ID: id}
	soj := &obs.Histogram{}
	watermarks := map[string]float64{}
	counters := map[string]uint64{}
	for _, col := range collectors {
		col.Snapshot() // final end-state record, like the CLI path
		soj.Merge(col.MergedHistogram("sojourn_us"))
		for name, v := range col.Watermarks() {
			if cur, ok := watermarks[name]; !ok || v > cur {
				watermarks[name] = v
			}
		}
		for name, v := range col.CounterTotals() {
			counters[name] += v
		}
	}
	es.SojournUs = obs.SummarizeHistogram(soj)
	es.Ops = counters["nic_completed"] + counters["host_completed"]
	if len(watermarks) > 0 {
		es.Watermarks = watermarks
	}
	if len(counters) > 0 {
		es.Counters = counters
	}
	tracer.EachInstant(func(group, name string, at sim.Time) {
		es.TimelineTotal++
		if len(es.Timeline) < timelineCap {
			es.Timeline = append(es.Timeline, obs.TimelineEvent{TUs: at.Micros(), Group: group, Name: name})
		}
	})
	for _, c := range clusters {
		if c.Group != nil {
			es.Handoffs += c.Group.Crossed()
			es.Rounds += c.Group.Rounds()
		}
	}
	es.WallMS = float64(r.Wall.Microseconds()) / 1e3
	es.Events = r.Events
	if s := r.Wall.Seconds(); s > 0 {
		es.EventsPerSec = float64(r.Events) / s
	}
	es.Allocs = m1.Mallocs - m0.Mallocs
	es.AllocBytes = m1.TotalAlloc - m0.TotalAlloc
	return es, nil
}
