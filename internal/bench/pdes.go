package bench

// scale-nodes: the experiment family the parallel (PDES) engine exists
// for. The paper's testbed tops out at 8 SmartNIC nodes; this sweep
// blows the RKV-shaped workload up to hundreds of nodes — one echo-RPC
// actor per NIC, one closed-loop client per node, Zipf-skewed
// destinations — and shards the simulation across engine partitions.
// The registered experiment reports only deterministic quantities
// (ops, percentiles, event and handoff counts), so its table is
// byte-identical at any sweep or window worker count; wall-clock
// speedup is measured separately by PDESBench, whose report is the
// BENCH_pdes.json artifact.

import (
	"runtime"

	"repro/internal/mesh"
	"repro/internal/sim"
)

func init() {
	register("scale-nodes", "Scale-out node sweep on the partitioned engine (beyond the paper's 8-node testbed)", runScaleNodes)
}

// scaleNodeSizes picks the sweep's node counts.
func scaleNodeSizes(opts Options) []int {
	if opts.Quick {
		return []int{8, 16}
	}
	return []int{16, 64, 128, 256}
}

// scaleParts resolves the partition count for a mesh of n nodes under
// the run's options: an explicit -pdes value wins, otherwise the mesh
// default (min(8, n)).
func scaleParts(opts Options, n int) int {
	p := opts.PDESParts
	if p <= 0 {
		p = 8
	}
	if p > n {
		p = n
	}
	return p
}

func scaleWindow(opts Options) sim.Time {
	if opts.Quick {
		return 300 * sim.Microsecond
	}
	return sim.Millisecond
}

func runScaleNodes(opts Options) *Result {
	r := &Result{Header: []string{"nodes", "partitions", "ops", "tput_kops", "p50_us", "p99_us", "events", "crossed", "rounds"}}
	sizes := scaleNodeSizes(opts)
	runs := sweepMap(opts, len(sizes), func(i int) mesh.Stats {
		return mesh.Run(mesh.Config{
			Nodes:      sizes[i],
			Partitions: scaleParts(opts, sizes[i]),
			Workers:    opts.PDESWorkers,
			Seed:       opts.seed(),
			Window:     scaleWindow(opts),
		})
	})
	for _, s := range runs {
		r.Add(s.Nodes, s.Partitions, s.Ops, s.TputKops, s.P50us, s.P99us, s.Events, s.Crossed, s.Rounds)
	}
	r.Note("closed-loop echo-RPC mesh: one NIC-pinned actor + one depth-2 client per node, Zipf(0.99) destinations")
	r.Note("deterministic columns only — wall-clock speedup is reported by the separate PDES bench artifact")
	return r
}

// PDESBenchEntry is one (size, workers) measurement of the speedup
// matrix.
type PDESBenchEntry struct {
	Nodes      int     `json:"nodes"`
	Partitions int     `json:"partitions"`
	Workers    int     `json:"workers"`
	Ops        uint64  `json:"ops"`
	Events     uint64  `json:"events"`
	WallMS     float64 `json:"wall_ms"`
	// EventsPerSec is the engine's event throughput for this run.
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is the workers=1 wall-clock of the same (nodes,
	// partitions) point divided by this run's (1.0 for the baseline).
	Speedup float64 `json:"speedup"`
	// FingerprintOK reports that this run's per-partition invariant
	// fingerprints byte-match the workers=1 baseline — the determinism
	// contract holding at speed.
	FingerprintOK bool `json:"fingerprint_ok"`
}

// PDESBenchReport is the BENCH_pdes.json artifact: the parallel
// engine's wall-clock behavior on this machine, with the environment
// recorded so a single-core result is not mistaken for a scaling one.
type PDESBenchReport struct {
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	Seed       uint64           `json:"seed"`
	Quick      bool             `json:"quick"`
	Note       string           `json:"note"`
	Entries    []PDESBenchEntry `json:"entries"`
}

// PDESBench measures the speedup matrix: for every mesh size, a
// workers=1 baseline and then each requested worker count, all on the
// same seed and partition count. Every parallel run's invariant
// fingerprint is byte-compared against its baseline, so the artifact
// simultaneously certifies determinism and records honest wall-clock
// numbers (speedup > 1 requires GOMAXPROCS > 1; on one core the
// barrier overhead makes it ≤ 1 by construction).
func PDESBench(opts Options, sizes, workerCounts []int) *PDESBenchReport {
	if len(sizes) == 0 {
		sizes = scaleNodeSizes(opts)
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{2, 4, 8}
	}
	rep := &PDESBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       opts.seed(),
		Quick:      opts.Quick,
		Note:       "speedup is relative to the serial window merge (workers=1) at identical results; it needs as many cores as workers to exceed 1",
	}
	window := scaleWindow(opts)
	for _, n := range sizes {
		cfg := mesh.Config{
			Nodes:      n,
			Partitions: scaleParts(opts, n),
			Seed:       opts.seed(),
			Window:     window,
			Check:      true,
		}
		cfg.Workers = 1
		base := mesh.Run(cfg)
		baseEntry := PDESBenchEntry{
			Nodes: base.Nodes, Partitions: base.Partitions, Workers: 1,
			Ops: base.Ops, Events: base.Events,
			WallMS:        float64(base.Wall.Microseconds()) / 1e3,
			Speedup:       1,
			FingerprintOK: true,
		}
		if s := base.Wall.Seconds(); s > 0 {
			baseEntry.EventsPerSec = float64(base.Events) / s
		}
		rep.Entries = append(rep.Entries, baseEntry)
		for _, w := range workerCounts {
			if w <= 1 {
				continue
			}
			cfg.Workers = w
			run := mesh.Run(cfg)
			e := PDESBenchEntry{
				Nodes: run.Nodes, Partitions: run.Partitions, Workers: w,
				Ops: run.Ops, Events: run.Events,
				WallMS:        float64(run.Wall.Microseconds()) / 1e3,
				FingerprintOK: run.Fingerprint == base.Fingerprint && run.Violations == 0,
			}
			if s := run.Wall.Seconds(); s > 0 {
				e.EventsPerSec = float64(run.Events) / s
			}
			if run.Wall > 0 {
				e.Speedup = float64(base.Wall) / float64(run.Wall)
			}
			rep.Entries = append(rep.Entries, e)
		}
	}
	return rep
}
