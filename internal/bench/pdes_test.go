package bench

import (
	"strings"
	"testing"
)

// TestScaleNodesQuick: the sweep produces one row per size with live
// traffic and cross-partition handoffs, and the table is byte-identical
// between the serial window merge and parallel window execution — the
// registry-level statement of the PDES determinism contract.
func TestScaleNodesQuick(t *testing.T) {
	serial, err := Run("scale-nodes", Options{Quick: true, PDESWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(scaleNodeSizes(Options{Quick: true})) {
		t.Fatalf("expected one row per size, got %d", len(serial.Rows))
	}
	for i := range serial.Rows {
		if cell(t, serial, i, 2) == 0 {
			t.Fatalf("row %v: no ops completed", serial.Rows[i])
		}
		if cell(t, serial, i, 7) == 0 {
			t.Fatalf("row %v: no cross-partition traffic", serial.Rows[i])
		}
	}
	parallel, err := Run("scale-nodes", Options{Quick: true, PDESWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(serial.Rows, parallel.Rows) {
		t.Fatalf("scale-nodes diverged across window workers:\n  serial:   %v\n  parallel: %v",
			serial.Rows, parallel.Rows)
	}
}

func rowsEqual(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if strings.Join(a[i], "|") != strings.Join(b[i], "|") {
			return false
		}
	}
	return true
}

// TestScaleNodesPartsOverride: -pdes N reshards the sweep.
func TestScaleNodesPartsOverride(t *testing.T) {
	r, err := Run("scale-nodes", Options{Quick: true, PDESParts: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Rows {
		if got := cell(t, r, i, 1); got != 2 {
			t.Fatalf("row %d: partitions = %v, want 2", i, got)
		}
	}
}

// TestGoldenReplayPDESSubset: the PDES replay axis holds on a quick
// subset — the partitioned scale sweep, a classic experiment as the
// unpartitioned control, the faulted mesh (barrier-arm fault injection
// at window boundaries), and the migrating mesh (window-boundary
// migration commits with fault arms landing mid-phase) — with
// per-partition invariant ledgers attached and fingerprints
// byte-compared between worker counts.
func TestGoldenReplayPDESSubset(t *testing.T) {
	rep, err := GoldenReplayPDES([]string{"scale-nodes", "fig17", "faults-pdes", "migrate-pdes"}, Options{Quick: true, PDESParts: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clusters == 0 || rep.Checks == 0 {
		t.Fatalf("replay checked nothing: %+v", rep)
	}
	if !rep.OK() {
		var buf strings.Builder
		rep.Fprint(&buf)
		t.Fatal(buf.String())
	}
}

// TestPDESBenchQuick: the speedup matrix measures both worker counts,
// certifies fingerprints, and records the machine environment.
func TestPDESBenchQuick(t *testing.T) {
	rep := PDESBench(Options{Quick: true}, []int{8}, []int{2})
	if rep.GOMAXPROCS == 0 || rep.NumCPU == 0 {
		t.Fatalf("environment not recorded: %+v", rep)
	}
	if len(rep.Entries) != 2 {
		t.Fatalf("expected baseline + 1 parallel entry, got %d", len(rep.Entries))
	}
	for _, e := range rep.Entries {
		if !e.FingerprintOK {
			t.Fatalf("workers=%d diverged from the serial merge", e.Workers)
		}
		if e.Ops == 0 || e.Events == 0 {
			t.Fatalf("degenerate measurement: %+v", e)
		}
	}
	if rep.Entries[0].Ops != rep.Entries[1].Ops {
		t.Fatalf("ops differ across worker counts: %d vs %d", rep.Entries[0].Ops, rep.Entries[1].Ops)
	}
}
