package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/actor"
	"repro/internal/apps/rkv"
	"repro/internal/deploy"
	"repro/internal/fault"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/workload"
)

// The qos-* experiment family exercises the multi-tenant QoS stack
// (internal/qos) end to end: per-tenant token-bucket admission at the
// workload edge, the strict-priority lane scheduler in front of each
// node's FCFS/DRR actor scheduler, and the SLO controller that closes
// the loop through the batching window, the §3.2.3 migration
// thresholds, and the shard router. qos-storm and qos-skew run on
// classic (single-engine) clusters — the controller requires one, and
// classic runs are trivially byte-identical at any PDES worker count;
// qos-lanes runs lanes + admission on the partitioned echo mesh, the
// genuine PDES determinism coverage for the new layer.

func init() {
	register("qos-storm", "Tenant storm under a fault storm: admission + lanes + the SLO controller protect the well-behaved tenant (RKV, classic)", qosStorm)
	register("qos-skew", "Mid-run Zipf-skew shift onto one shard: the controller escalates batch window -> thresholds -> reshard (RKV, classic)", qosSkew)
	register("qos-lanes", "Priority lanes and admission on the partitioned echo mesh (PDES determinism coverage)", qosLanes)
}

// QoSExperimentIDs is the qos experiment family, for the -qos CLI axis
// and the QoS golden replay.
func QoSExperimentIDs() []string {
	return []string{"qos-storm", "qos-skew", "qos-lanes", "qos-storm-pdes"}
}

// qosTenantNames index the storm/skew tenant tables.
const (
	qosTenantProd  = 0
	qosTenantBatch = 1
	qosTenantNoisy = 2
	// qosTenantInfra is deliberately outside the tenant table: untabled
	// traffic (infrastructure telemetry) bypasses admission and is
	// bounded by lane shedding instead.
	qosTenantInfra = 3
)

// every schedules f at fixed intervals on eng over [start, end) —
// deterministic offered rates, unlike Poisson open loops.
func every(eng *sim.Engine, start, end, interval sim.Time, f func(i uint64)) {
	n := uint64((end - start) / interval)
	for i := uint64(0); i < n; i++ {
		i := i
		eng.At(start+sim.Time(i)*interval, func() { f(i) })
	}
}

// keysOnShard returns n distinct keys the router maps to shard g.
func keysOnShard(d *deploy.RKV, g, n int) [][]byte {
	keys := make([][]byte, 0, n)
	for i := 0; len(keys) < n; i++ {
		k := []byte(fmt.Sprintf("hot-%05d", i))
		if d.ShardFor(k) == g {
			keys = append(keys, k)
		}
	}
	return keys
}

// qosTelemetryBase is the actor ID of the per-node telemetry sink the
// storm experiment floods (900+i on kv<i>).
const qosTelemetryBase = 900

// qosRKVCluster builds the 4-node, 4-shard RKV deployment the storm and
// skew experiments share. Each node also carries a cheap NIC-side
// telemetry sink actor — monitoring streams are not KV requests.
func qosRKVCluster(seed uint64, sched fault.Schedule, t *qos.Tenancy) (*core.Cluster, *deploy.RKV) {
	cl := core.NewCluster(seed)
	var nodes []*core.Node
	for i := 0; i < 4; i++ {
		n := cl.AddNode(core.Config{
			Name: fmt.Sprintf("kv%d", i), NIC: spec.LiquidIOII_CN2350(), LinkGbps: 10,
		})
		sink := &actor.Actor{
			ID: actor.ID(qosTelemetryBase + i), Name: fmt.Sprintf("telemetry%d", i),
			PinNIC:    true,
			OnMessage: func(actor.Ctx, actor.Msg) sim.Time { return 200 * sim.Nanosecond },
		}
		if err := n.Register(sink, true, 1<<16); err != nil {
			panic(err)
		}
		nodes = append(nodes, n)
	}
	d, err := deploy.RKVSpec{
		Common: deploy.Common{
			Placement: deploy.NIC,
			Faults:    sched,
			Tenancy:   t,
		},
		Nodes: nodes, BaseID: 100, MemLimit: 8 << 20, Shards: 4, Replicas: 2,
	}.Deploy()
	if err != nil {
		panic(err)
	}
	return cl, d
}

// --- qos-storm ----------------------------------------------------------

// qosStormOutcome is one storm run's report material (tests assert on
// it directly via qosStormRun).
type qosStormOutcome struct {
	calm, storm, post *stats.Sample // prod latency per phase
	sloUs             float64
	stormStart        sim.Time
	stormEnd          sim.Time

	offered, admitted, rejected [3]uint64
	enq, del, shed              [qos.NumLanes]uint64
	backpressured               uint64

	// Client-edge accounting (workload.Client contract): sent excludes
	// admission-denied requests, which land in cliRejected instead.
	cliSent, cliRejected uint64

	ctlSent, ctlAnswered uint64
	ticks, shrinks       uint64
	tightens, reshards   uint64
	elections            uint64
}

func qosStormRun(opts Options) qosStormOutcome {
	window := 20 * sim.Millisecond
	if opts.Quick {
		window = 10 * sim.Millisecond
	}
	w := float64(window)
	at := func(f float64) sim.Time { return sim.Time(w * f) }
	stormStart, stormEnd := at(0.35), at(0.80)
	const sloUs = 250.0

	outs := sweepMap(opts, 1, func(int) qosStormOutcome {
		// The fault storm: the shard-3 leader crashes (forcing a
		// failover), a loss window hits kv1, and every surviving node
		// takes a 6x overload burst — the window where the controller
		// must react.
		odur := at(0.25)
		if opts.Quick {
			// The compressed window leaves less drain room before the
			// post phase; keep the saturation burst proportionally shorter.
			odur = at(0.20)
		}
		sched := fault.Schedule{Faults: []fault.Fault{
			fault.Crash("kv3", at(0.35), at(0.20)),
			fault.Loss("kv1", at(0.40), at(0.10), 0.25),
			fault.Overload("kv0", at(0.45), odur, 16),
			fault.Overload("kv1", at(0.45), odur, 16),
			fault.Overload("kv2", at(0.45), odur, 16),
		}}
		cl, d := qosRKVCluster(opts.seed(), sched, &qos.Tenancy{
			Tenants: []qos.Tenant{
				{Name: "prod", RatePerSec: 150_000, SLOp99Us: sloUs},
				{Name: "batch", RatePerSec: 60_000},
				{Name: "noisy", RatePerSec: 25_000},
			},
			Lanes:      qos.LaneConfig{DataCap: 128, TelemetryCap: 16, DispatchCost: 200 * sim.Nanosecond},
			Controller: qos.ControllerConfig{Enabled: true},
		})

		o := qosStormOutcome{
			calm: stats.NewSample(), storm: stats.NewSample(), post: stats.NewSample(),
			sloUs: sloUs, stormStart: stormStart, stormEnd: stormEnd,
		}
		phase := func(t sim.Time) *stats.Sample {
			switch {
			case t < stormStart:
				return o.calm
			case t < stormEnd:
				return o.storm
			default:
				return o.post
			}
		}

		prod := workload.NewClient(cl, "prod", 10)
		batch := workload.NewClient(cl, "batch", 10)
		noisy := workload.NewClient(cl, "noisy", 10)
		infra := workload.NewClient(cl, "infra", 10)
		for _, c := range []*workload.Client{prod, batch, noisy, infra} {
			d.QoS.Bind(c)
		}
		// The controller's cheapest knob: prod's train-coalescing window.
		batcher := workload.NewBatcher(prod, 0, 8)
		d.QoS.BindBatcher(batcher)

		// prod: 125K/s of 90/10 read/write spread over all shards, under
		// its 150K/s budget — the well-behaved tenant whose SLO must hold.
		every(cl.Eng, 0, window, 8*sim.Microsecond, func(i uint64) {
			key := []byte(fmt.Sprintf("p%05d", i%4096))
			data := rkv.GetReq(key)
			if i%10 == 0 {
				data = rkv.PutReq(key, make([]byte, 64))
			}
			node, leader := d.LeaderFor(key)
			sentAt := cl.Eng.Now()
			batcher.Add(workload.Request{
				Node: node, Dst: leader, Kind: rkv.KindReq,
				Data: data, Size: 512, FlowID: i,
				Tenant: qosTenantProd,
				OnResp: func(actor.Msg) {
					phase(sentAt).Observe((cl.Eng.Now() - sentAt).Seconds() * 1e6)
				},
			})
		})
		// batch: 50K/s of reads, no SLO — admission-controlled ballast.
		every(cl.Eng, 0, window, 20*sim.Microsecond, func(i uint64) {
			key := []byte(fmt.Sprintf("b%05d", i%2048))
			node, leader := d.LeaderFor(key)
			batch.Send(workload.Request{
				Node: node, Dst: leader, Kind: rkv.KindReq,
				Data: rkv.GetReq(key), Size: 512, FlowID: 1 << 20 & i, Tenant: qosTenantBatch,
			})
		})
		// noisy: offered at 100K/s against a 25K/s budget — 4x its
		// admitted rate — all of it hammering shard 0's hot keys.
		hot := keysOnShard(d, 0, 64)
		every(cl.Eng, 0, window, 10*sim.Microsecond, func(i uint64) {
			key := hot[i%uint64(len(hot))]
			node, leader := d.LeaderFor(key)
			noisy.Send(workload.Request{
				Node: node, Dst: leader, Kind: rkv.KindReq,
				Data: rkv.PutReq(key, make([]byte, 64)), Size: 512,
				FlowID: 2 << 20 & i, Tenant: qosTenantNoisy,
			})
		})
		// control probes: one read per 50µs rotating over the shards,
		// tagged ClassControl — admission always passes them and the lane
		// scheduler must never shed one.
		every(cl.Eng, 0, window, 50*sim.Microsecond, func(i uint64) {
			key := []byte(fmt.Sprintf("c%02d", i%64))
			node, leader := d.LeaderFor(key)
			o.ctlSent++
			prod.Send(workload.Request{
				Node: node, Dst: leader, Kind: rkv.KindReq,
				Data: rkv.GetReq(key), Size: 256, FlowID: 3 << 20 & i,
				Tenant: qosTenantProd, Class: uint8(qos.ClassControl),
				OnResp: func(actor.Msg) { o.ctlAnswered++ },
			})
		})
		// telemetry flood: 64-packet bursts every 250µs from an untabled
		// infrastructure tenant into the node's telemetry sink — the lane
		// watermark sheds the excess.
		every(cl.Eng, 0, window, 250*sim.Microsecond, func(i uint64) {
			t := int(i % 4)
			for j := 0; j < 64; j++ {
				infra.Send(workload.Request{
					Node: fmt.Sprintf("kv%d", t), Dst: actor.ID(qosTelemetryBase + t),
					Size: 128, FlowID: 4 << 20 & i,
					Tenant: qosTenantInfra, Class: uint8(qos.ClassTelemetry),
				})
			}
		})

		cl.Eng.Run()

		for t := 0; t < 3; t++ {
			o.offered[t] = d.QoS.OfferedTo(t)
			o.admitted[t] = d.QoS.AdmittedTo(t)
			o.rejected[t] = d.QoS.RejectedTo(t)
		}
		for _, c := range []*workload.Client{prod, batch, noisy, infra} {
			o.cliSent += c.Sent
			o.cliRejected += c.Rejected
		}
		o.enq, o.del, o.shed, o.backpressured = d.QoS.LaneTotals()
		ctl := d.QoS.Controller
		o.ticks, o.shrinks, o.tightens, o.reshards = ctl.Ticks, ctl.BatchShrinks, ctl.ThreshTightens, ctl.Reshards
		o.elections = d.Elections
		return o
	})
	return outs[0]
}

func qosStorm(opts Options) *Result {
	o := qosStormRun(opts)

	r := &Result{Header: []string{"metric", "value"}}
	for t, name := range []string{"prod", "batch", "noisy"} {
		r.Add(name+" offered/admitted/rejected",
			fmt.Sprintf("%d/%d/%d", o.offered[t], o.admitted[t], o.rejected[t]))
	}
	r.Add("prod p50 calm/storm/post (us)", fmt.Sprintf("%.1f/%.1f/%.1f",
		o.calm.Percentile(50), o.storm.Percentile(50), o.post.Percentile(50)))
	r.Add("prod p99 calm/storm/post (us)", fmt.Sprintf("%.1f/%.1f/%.1f",
		o.calm.Percentile(99), o.storm.Percentile(99), o.post.Percentile(99)))
	r.Add("prod SLO p99 (us)", fmt.Sprintf("%.0f", o.sloUs))
	for l := qos.Lane(0); l < qos.NumLanes; l++ {
		r.Add(l.String()+" enq/del/shed",
			fmt.Sprintf("%d/%d/%d", o.enq[l], o.del[l], o.shed[l]))
	}
	r.Add("data backpressured", o.backpressured)
	r.Add("client edge sent/rejected/offered", fmt.Sprintf("%d/%d/%d",
		o.cliSent, o.cliRejected, o.cliSent+o.cliRejected))
	r.Add("control probes sent/answered", fmt.Sprintf("%d/%d", o.ctlSent, o.ctlAnswered))
	r.Add("controller ticks", o.ticks)
	r.Add("controller actions (shrink/tighten/reshard)",
		fmt.Sprintf("%d/%d/%d", o.shrinks, o.tightens, o.reshards))
	r.Add("elections", o.elections)
	r.Note("storm %.1f-%.1fms: shard-3 leader crash, 25%% loss on kv1, 16x overload on every survivor; noisy tenant offers 4x its budget at shard 0",
		o.stormStart.Seconds()*1e3, o.stormEnd.Seconds()*1e3)
	r.Note("contract: prod p99 holds its SLO outside the storm, control is never shed, telemetry sheds absorb the flood")
	r.Note("accounting: edge sent excludes admission-denied requests (Rejected, never Sent); offered = sent + rejected, matching the gates' per-tenant ledger")
	return r
}

// --- qos-skew -----------------------------------------------------------

type qosSkewOutcome struct {
	spread, hot, recovered *stats.Sample
	sloUs                  float64
	shrinks, tightens      uint64
	reshards, ticks        uint64
	rejected               uint64
	liveShards             int
}

func qosSkewRun(opts Options) qosSkewOutcome {
	window := 16 * sim.Millisecond
	if opts.Quick {
		window = 8 * sim.Millisecond
	}
	w := float64(window)
	shiftAt := sim.Time(w * 0.5)
	lateAt := sim.Time(w * 0.85)
	const sloUs = 120.0

	outs := sweepMap(opts, 1, func(int) qosSkewOutcome {
		cl, d := qosRKVCluster(opts.seed(), fault.Schedule{}, &qos.Tenancy{
			Tenants: []qos.Tenant{
				{Name: "prod", RatePerSec: 500_000, SLOp99Us: sloUs},
			},
			Lanes: qos.LaneConfig{DispatchCost: 100 * sim.Nanosecond},
			// A snappier loop than the storm run, scaled to the window so
			// the escalation chain — batch window, migration thresholds,
			// reshard — completes inside the hot phase even in -quick runs.
			Controller: qos.ControllerConfig{
				Enabled:      true,
				Period:       window / 32,
				Cooldown:     window / 32,
				ThreshFactor: 0.1,
			},
		})

		o := qosSkewOutcome{
			spread: stats.NewSample(), hot: stats.NewSample(), recovered: stats.NewSample(),
			sloUs: sloUs,
		}
		phase := func(t sim.Time) *stats.Sample {
			switch {
			case t < shiftAt:
				return o.spread
			case t < lateAt:
				return o.hot
			default:
				return o.recovered
			}
		}

		prod := workload.NewClient(cl, "prod", 10)
		d.QoS.Bind(prod)
		batcher := workload.NewBatcher(prod, 0, 8)
		d.QoS.BindBatcher(batcher)

		// Phase A: Zipf(0.85) over 16K keys — load spreads over all four
		// shards. Phase B: the skew jumps to Zipf(1.25) over a key list
		// that lives entirely on shard 0 — the mid-run hot-shard shift the
		// controller exists for. Requests route by key at send time, so
		// the controller's reshard redirects the hot range mid-run.
		zipfA := workload.NewZipf(cl.Eng.Rand(), 16384, 0.85)
		zipfB := workload.NewZipf(cl.Eng.Rand(), 512, 0.99)
		hot := keysOnShard(d, 0, 512)
		every(cl.Eng, 0, window, 2500*sim.Nanosecond, func(i uint64) {
			var key []byte
			if cl.Eng.Now() < shiftAt {
				key = []byte(fmt.Sprintf("s%05d", zipfA.Next()))
			} else {
				key = hot[zipfB.Next()]
			}
			data := rkv.GetReq(key)
			if i%5 == 0 {
				data = rkv.PutReq(key, make([]byte, 64))
			}
			node, leader := d.LeaderFor(key)
			sentAt := cl.Eng.Now()
			batcher.Add(workload.Request{
				Node: node, Dst: leader, Kind: rkv.KindReq,
				Data: data, Size: 512, FlowID: i, Tenant: qosTenantProd,
				OnResp: func(actor.Msg) {
					phase(sentAt).Observe((cl.Eng.Now() - sentAt).Seconds() * 1e6)
				},
			})
		})

		cl.Eng.Run()

		ctl := d.QoS.Controller
		o.shrinks, o.tightens, o.reshards, o.ticks = ctl.BatchShrinks, ctl.ThreshTightens, ctl.Reshards, ctl.Ticks
		o.rejected = d.QoS.RejectedTo(qosTenantProd)
		o.liveShards = d.Router.Shards()
		return o
	})
	return outs[0]
}

func qosSkew(opts Options) *Result {
	o := qosSkewRun(opts)

	r := &Result{Header: []string{"phase", "p50(us)", "p99(us)", "samples"}}
	row := func(name string, s *stats.Sample) {
		r.Add(name, fmt.Sprintf("%.1f", s.Percentile(50)), fmt.Sprintf("%.1f", s.Percentile(99)), s.Count())
	}
	row("spread (Zipf 0.85, all shards)", o.spread)
	row("hot (Zipf 0.99, shard 0)", o.hot)
	row("recovered (post-escalation)", o.recovered)
	r.Note("SLO p99 %.0fus; controller escalation: %d batch shrinks, %d threshold tightens, %d reshard(s); %d/4 shards live at end",
		o.sloUs, o.shrinks, o.tightens, o.reshards, o.liveShards)
	r.Note("admission rejected %d prod requests at the edge while the hot shard drained", o.rejected)
	return r
}

// --- qos-lanes ----------------------------------------------------------

type qosLanesOutcome struct {
	nodes, parts                int
	ops, sent                   uint64
	p50, p99                    float64
	enq, del, shed              [qos.NumLanes]uint64
	backpressured               uint64
	offered, admitted, rejected [2]uint64
	crossed, rounds             uint64
}

func qosLanesRun(opts Options) qosLanesOutcome {
	nodes := 16
	window := sim.Millisecond
	if opts.Quick {
		nodes = 8
		window = 400 * sim.Microsecond
	}
	parts := opts.PDESParts
	if parts <= 0 {
		parts = 4
	}
	if parts > nodes {
		parts = nodes
	}

	outs := sweepMap(opts, 1, func(int) qosLanesOutcome {
		cl := core.NewPartitionedCluster(opts.seed(), parts)
		cl.SetPDESWorkers(opts.PDESWorkers)

		var nn []*core.Node
		for i := 0; i < nodes; i++ {
			n := cl.AddNode(core.Config{
				Name: fmt.Sprintf("n%03d", i), NIC: spec.LiquidIOII_CN2350(),
				LinkGbps: 10, DisableMigration: true,
			})
			a := &actor.Actor{
				ID: actor.ID(1 + i), Name: fmt.Sprintf("svc%03d", i), PinNIC: true,
				OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
					ctx.Reply(m)
					return sim.Microsecond
				},
			}
			if err := n.Register(a, true, 1<<20); err != nil {
				panic(err)
			}
			nn = append(nn, n)
		}

		// Lanes + admission only: the controller reads cross-node state
		// and is classic-only, so the partitioned run leaves it off — and
		// every remaining piece of QoS state (one gate per client, one
		// lane scheduler per node) lives on its owner's partition engine.
		rt, err := qos.Install(cl, nn, &qos.Tenancy{
			Tenants: []qos.Tenant{
				{Name: "even", RatePerSec: 300_000, Burst: 64},
				{Name: "odd", RatePerSec: 150_000, Burst: 64},
			},
			Lanes: qos.LaneConfig{DataCap: 32, TelemetryCap: 8, DispatchCost: 300 * sim.Nanosecond},
		})
		if err != nil {
			panic(err)
		}

		clients := make([]*workload.Client, nodes)
		for i := 0; i < nodes; i++ {
			node := cl.Node(fmt.Sprintf("n%03d", i))
			clients[i] = workload.NewClientAt(cl, fmt.Sprintf("c%03d", i), 10, node.Part)
			rt.Bind(clients[i])
		}
		for i := 0; i < nodes; i++ {
			i := i
			c := clients[i]
			tenant := uint16(i % 2)
			dest := func(k uint64) (string, actor.ID) {
				d := int(k) % nodes
				if d == i {
					d = (d + 1) % nodes
				}
				return fmt.Sprintf("n%03d", d), actor.ID(1 + d)
			}
			// Data plane: even clients pace at 250K/s, under their 300K/s
			// budget — the well-behaved tenant is never rejected. Odd
			// clients pace at 400K/s against a 150K/s budget, so their
			// gates reject most of the excess at the edge.
			interval := 4 * sim.Microsecond
			if tenant == 1 {
				interval = 2500 * sim.Nanosecond
			}
			every(c.Eng(), 0, window, interval, func(k uint64) {
				node, id := dest(k*7 + uint64(i))
				c.Send(workload.Request{
					Node: node, Dst: id, Size: 256,
					FlowID: uint64(i)<<32 | k, Tenant: tenant,
				})
			})
			// Control probes ride the top lane: never shed, never rejected.
			every(c.Eng(), 0, window, 25*sim.Microsecond, func(k uint64) {
				node, id := dest(k + uint64(i)*3)
				c.Send(workload.Request{
					Node: node, Dst: id, Size: 128,
					FlowID: 1<<48 | uint64(i)<<32 | k,
					Tenant: tenant, Class: uint8(qos.ClassControl),
				})
			})
			// Telemetry bursts from the untabled infrastructure tenant:
			// 24 back-to-back packets at one destination overrun the
			// 8-deep telemetry lane and shed the excess without touching
			// the tabled tenants' budgets.
			every(c.Eng(), 0, window, 100*sim.Microsecond, func(k uint64) {
				node, id := dest(k + uint64(i))
				for j := 0; j < 24; j++ {
					c.Send(workload.Request{
						Node: node, Dst: id, Size: 128,
						FlowID: 2<<48 | uint64(i)<<32 | k,
						Tenant: 99, Class: uint8(qos.ClassTelemetry),
					})
				}
			})
		}
		// One untabled bulk stream slams 96-deep data trains into the far
		// node: the 32-deep data watermark defers the overflow
		// (backpressure) but, unlike telemetry, never drops it.
		bulkDst := nodes - 1
		every(clients[0].Eng(), 0, window, 50*sim.Microsecond, func(k uint64) {
			for j := 0; j < 96; j++ {
				clients[0].Send(workload.Request{
					Node: fmt.Sprintf("n%03d", bulkDst), Dst: actor.ID(1 + bulkDst),
					Size: 128, FlowID: 3<<48 | k, Tenant: 98,
				})
			}
		})

		cl.RunUntil(window)

		o := qosLanesOutcome{nodes: nodes, parts: parts}
		lat := stats.NewSample()
		for _, c := range clients { // fixed order: deterministic percentiles
			o.ops += c.Received
			o.sent += c.Sent
			lat.Merge(c.Lat)
		}
		o.p50, o.p99 = lat.Percentile(50), lat.Percentile(99)
		o.enq, o.del, o.shed, o.backpressured = rt.LaneTotals()
		for t := 0; t < 2; t++ {
			o.offered[t] = rt.OfferedTo(t)
			o.admitted[t] = rt.AdmittedTo(t)
			o.rejected[t] = rt.RejectedTo(t)
		}
		if cl.Group != nil {
			o.crossed = cl.Group.Crossed()
			o.rounds = cl.Group.Rounds()
		}
		return o
	})
	return outs[0]
}

func qosLanes(opts Options) *Result {
	o := qosLanesRun(opts)

	r := &Result{Header: []string{"metric", "value"}}
	r.Add("nodes x partitions", fmt.Sprintf("%dx%d", o.nodes, o.parts))
	r.Add("requests sent/answered", fmt.Sprintf("%d/%d", o.sent, o.ops))
	r.Add("latency p50/p99 (us)", fmt.Sprintf("%.2f/%.2f", o.p50, o.p99))
	for l := qos.Lane(0); l < qos.NumLanes; l++ {
		r.Add(l.String()+" enq/del/shed",
			fmt.Sprintf("%d/%d/%d", o.enq[l], o.del[l], o.shed[l]))
	}
	r.Add("data backpressured", o.backpressured)
	for t, name := range []string{"even", "odd"} {
		r.Add(name+" offered/admitted/rejected",
			fmt.Sprintf("%d/%d/%d", o.offered[t], o.admitted[t], o.rejected[t]))
	}
	r.Add("handoffs/rounds", fmt.Sprintf("%d/%d", o.crossed, o.rounds))
	r.Note("partitioned echo mesh with tagged traffic; rows are byte-identical at any PDES worker count")
	r.Note("contract: control is never shed, telemetry bursts shed at the watermark, bulk data is deferred but never dropped, and the odd tenant's excess is rejected at the edge")
	return r
}
