package bench

import (
	"testing"

	"repro/internal/qos"
)

// TestQoSStormContract is the acceptance gate for the tenant-storm
// experiment: the misbehaving tenant offers 4x its admitted rate while
// a fault storm rages, and the QoS stack must (a) hold the well-behaved
// tenant's p99 SLO outside the storm, (b) never shed a control-lane
// message, (c) reject the noisy tenant's excess at the edge, and
// (d) drive the SLO controller to act on the breach.
func TestQoSStormContract(t *testing.T) {
	o := qosStormRun(Options{Quick: true, Seed: 1, Parallel: 1})

	if calm := o.calm.Percentile(99); calm > o.sloUs {
		t.Errorf("calm-phase p99 %.1fus breaches the %.0fus SLO", calm, o.sloUs)
	}
	if post := o.post.Percentile(99); post > o.sloUs {
		t.Errorf("post-storm p99 %.1fus breaches the %.0fus SLO", post, o.sloUs)
	}
	if storm := o.storm.Percentile(99); storm <= o.sloUs {
		t.Errorf("storm p99 %.1fus never breached the SLO — the storm is too mild to mean anything", storm)
	}
	if o.shed[qos.LaneControl] != 0 {
		t.Errorf("control lane shed %d messages; the contract says never", o.shed[qos.LaneControl])
	}
	if o.shed[qos.LaneTelemetry] == 0 {
		t.Error("telemetry flood never hit the shed watermark")
	}
	if o.rejected[qosTenantNoisy] == 0 {
		t.Error("noisy tenant at 4x its budget was never rejected")
	}
	if o.rejected[qosTenantProd] != 0 {
		t.Errorf("well-behaved prod tenant was rejected %d times", o.rejected[qosTenantProd])
	}
	if o.shrinks+o.tightens+o.reshards == 0 {
		t.Error("controller never acted on the storm breach")
	}
	if o.ticks == 0 {
		t.Error("controller never ticked")
	}
	// Lane conservation at quiescence: everything enqueued was delivered.
	for l := qos.Lane(0); l < qos.NumLanes; l++ {
		if o.enq[l] != o.del[l] {
			t.Errorf("%s: enqueued %d != delivered %d", l, o.enq[l], o.del[l])
		}
	}
}

// TestQoSSkewEscalation checks the controller's full escalation chain
// on a mid-run skew shift: batch-window shrink, threshold tighten, and
// finally a reshard that spreads the hot range — after which latency
// must actually recover.
func TestQoSSkewEscalation(t *testing.T) {
	o := qosSkewRun(Options{Quick: true, Seed: 1, Parallel: 1})

	if o.shrinks == 0 {
		t.Error("controller never shrank the batch window")
	}
	if o.tightens == 0 {
		t.Error("controller never tightened the migration thresholds")
	}
	if o.reshards != 1 {
		t.Errorf("controller resharded %d times, want exactly 1", o.reshards)
	}
	if o.liveShards != 3 {
		t.Errorf("%d live shards after the reshard, want 3", o.liveShards)
	}
	spread, hot, rec := o.spread.Percentile(50), o.hot.Percentile(50), o.recovered.Percentile(50)
	if hot <= spread {
		t.Errorf("hot-phase p50 %.1fus not above spread-phase %.1fus — the skew shift did nothing", hot, spread)
	}
	if rec >= hot {
		t.Errorf("recovered p50 %.1fus did not improve on hot-phase %.1fus", rec, hot)
	}
	if rec > o.sloUs {
		t.Errorf("recovered p50 %.1fus still above the %.0fus SLO", rec, o.sloUs)
	}
}

// TestQoSLanesContract checks the partitioned lane/admission run: every
// watermark action fires where designed, and only there.
func TestQoSLanesContract(t *testing.T) {
	o := qosLanesRun(Options{Quick: true, Seed: 1, Parallel: 1})

	if o.shed[qos.LaneControl] != 0 {
		t.Errorf("control lane shed %d messages", o.shed[qos.LaneControl])
	}
	if o.shed[qos.LaneData] != 0 {
		t.Errorf("data lane shed %d messages; data is deferred, never dropped", o.shed[qos.LaneData])
	}
	if o.shed[qos.LaneTelemetry] == 0 {
		t.Error("telemetry bursts never shed")
	}
	if o.backpressured == 0 {
		t.Error("bulk data stream never hit the backpressure watermark")
	}
	if o.rejected[0] != 0 {
		t.Errorf("well-behaved even tenant rejected %d times", o.rejected[0])
	}
	if o.rejected[1] == 0 {
		t.Error("odd tenant over budget was never rejected")
	}
	if o.ops == 0 || o.crossed == 0 {
		t.Errorf("mesh did no work: ops=%d handoffs=%d", o.ops, o.crossed)
	}
}

// TestQoSLanesPDESDeterminism runs the partitioned experiment at 1, 2,
// and 4 window workers and requires identical outcomes — the per-worker
// fingerprint contract, asserted on the raw counters.
func TestQoSLanesPDESDeterminism(t *testing.T) {
	base := qosLanesRun(Options{Quick: true, Seed: 1, Parallel: 1, PDESWorkers: 1})
	for _, workers := range []int{2, 4} {
		got := qosLanesRun(Options{Quick: true, Seed: 1, Parallel: 1, PDESWorkers: workers})
		if got != base {
			t.Errorf("outcome at %d workers diverged from 1 worker:\n 1: %+v\n%2d: %+v",
				workers, base, workers, got)
		}
	}
}

// TestGoldenReplayQoSSubset replays the whole qos family along both
// determinism axes (sweep serial-vs-parallel, PDES 1-vs-2 workers) with
// the invariant checker attached to every cluster.
func TestGoldenReplayQoSSubset(t *testing.T) {
	rep, err := GoldenReplayQoS(Options{Quick: true}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clusters == 0 || rep.Checks == 0 {
		t.Fatalf("replay checked nothing: %+v", rep)
	}
	if !rep.OK() {
		t.Fatalf("qos golden replay failed:\nviolations: %v\nmismatches: %v",
			rep.Violations, rep.Mismatches)
	}
}
