package bench

// Golden-fingerprint replay: rerun registered experiments with the
// runtime invariant checker attached to every cluster they build, then
// byte-compare the invariant fingerprints (per-epoch and final counter
// snapshots, see internal/invariant) between a serial and a parallel
// sweep of the same experiment at the same seed. Any divergence means
// the parallel sweep runner changed simulation behavior — exactly the
// class of bug a performance-focused refactor can introduce silently.

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/invariant"
)

// ReplayReport summarizes a GoldenReplay sweep.
type ReplayReport struct {
	// Experiments and Runs count experiment ids and individual checked
	// runs (each id runs at two seeds × serial/parallel = 4 runs).
	Experiments int
	Runs        int
	// Clusters counts clusters that had a checker attached; Checks the
	// individual invariant evaluations across all of them.
	Clusters int
	Checks   uint64
	// Violations holds every invariant violation observed, annotated
	// with the run that produced it.
	Violations []string
	// Mismatches lists runs whose serial and parallel fingerprints
	// differ byte-for-byte.
	Mismatches []string
}

// OK reports whether the replay saw no violations and no mismatches.
func (r *ReplayReport) OK() bool {
	return len(r.Violations) == 0 && len(r.Mismatches) == 0
}

// Fprint renders the report.
func (r *ReplayReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "golden replay: %d experiments, %d runs, %d checked clusters, %d invariant checks\n",
		r.Experiments, r.Runs, r.Clusters, r.Checks)
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  VIOLATION %s\n", v)
	}
	for _, m := range r.Mismatches {
		fmt.Fprintf(w, "  MISMATCH  %s\n", m)
	}
	if r.OK() {
		fmt.Fprintln(w, "  all invariants hold; serial and parallel fingerprints match")
	}
}

// checkedRun executes one experiment with an invariant checker attached
// to every cluster it builds, returning the run's combined fingerprint
// (per-cluster fingerprints sorted, so cluster creation order — which a
// parallel sweep does not fix — cannot affect the comparison).
func checkedRun(id, tag string, opts Options) (fingerprint string, violations []string, clusters int, checks uint64, err error) {
	var mu sync.Mutex
	var byCluster [][]*invariant.Checker
	core.SetDefaultObserver(func(c *core.Cluster) {
		// One checker per engine partition: a partitioned cluster's
		// conservation ledgers live at partition granularity (handoff
		// counters reconcile the cross-partition packets); a classic
		// cluster gets the usual single checker. Grouping per cluster
		// lets the post-run cross-partition reconciliation below sum one
		// cluster's ledgers without mixing clusters from a sweep.
		cchks := c.AttachCheckers()
		mu.Lock()
		byCluster = append(byCluster, cchks)
		mu.Unlock()
	})
	_, err = Run(id, opts)
	core.SetDefaultObserver(nil)
	if err != nil {
		return "", nil, 0, 0, err
	}
	var fps []string
	for _, cchks := range byCluster {
		// Cross-partition handoff reconciliation: after a drained run,
		// one cluster's outbound and inbound handoff ledgers must agree
		// (skipped automatically when events are still pending).
		invariant.CrossCheckHandoffs(cchks)
		for _, chk := range cchks {
			chk.Finish()
			checks += chk.Checks()
			for _, v := range chk.Violations() {
				violations = append(violations, fmt.Sprintf("%s %s: %s", id, tag, v.String()))
			}
			fps = append(fps, chk.Fingerprint())
		}
		clusters += len(cchks)
	}
	return invariant.SortFingerprints(fps), violations, clusters, checks, nil
}

// GoldenReplay runs each experiment id at two seeds (opts.Seed and
// opts.Seed+1), serially and with a parallel sweep of the given worker
// count, checking invariants throughout and byte-comparing the two
// fingerprints per (id, seed). Experiments that build no clusters (the
// raw device characterizations) contribute empty — trivially equal —
// fingerprints. GoldenReplay installs the process-wide cluster observer
// hook, so it must not run concurrently with other harness users.
func GoldenReplay(ids []string, opts Options, workers int) (*ReplayReport, error) {
	if workers < 2 {
		workers = 4
	}
	rep := &ReplayReport{}
	for _, id := range ids {
		rep.Experiments++
		for _, seed := range []uint64{opts.seed(), opts.seed() + 1} {
			runOpts := opts
			runOpts.Seed = seed

			runOpts.Parallel = 1
			sfp, sviol, scl, sch, err := checkedRun(id, fmt.Sprintf("seed=%d serial", seed), runOpts)
			if err != nil {
				return nil, err
			}
			runOpts.Parallel = workers
			pfp, pviol, pcl, pch, err := checkedRun(id, fmt.Sprintf("seed=%d parallel", seed), runOpts)
			if err != nil {
				return nil, err
			}

			rep.Runs += 2
			rep.Clusters += scl + pcl
			rep.Checks += sch + pch
			rep.Violations = append(rep.Violations, sviol...)
			rep.Violations = append(rep.Violations, pviol...)
			if sfp != pfp {
				rep.Mismatches = append(rep.Mismatches,
					fmt.Sprintf("%s seed=%d: serial and parallel invariant fingerprints differ", id, seed))
			}
		}
	}
	return rep, nil
}

// GoldenReplayPDES is GoldenReplay along the PDES axis: each experiment
// runs at two seeds with the serial window merge (PDESWorkers=1) and
// again with `workers` goroutines executing partition windows, sweep
// parallelism pinned to 1 on both sides so the only variable is the
// parallel engine. The per-partition invariant fingerprints must match
// byte for byte — the determinism contract of sim.Group. Classic
// (unpartitioned) experiments run identically on both sides and act as
// a no-regression control. Like GoldenReplay, this installs the
// process-wide cluster observer hook, so it must not run concurrently
// with other harness users.
func GoldenReplayPDES(ids []string, opts Options, workers int) (*ReplayReport, error) {
	if workers < 2 {
		workers = 2
	}
	rep := &ReplayReport{}
	for _, id := range ids {
		rep.Experiments++
		for _, seed := range []uint64{opts.seed(), opts.seed() + 1} {
			runOpts := opts
			runOpts.Seed = seed
			runOpts.Parallel = 1

			runOpts.PDESWorkers = 1
			sfp, sviol, scl, sch, err := checkedRun(id, fmt.Sprintf("seed=%d pdes-serial", seed), runOpts)
			if err != nil {
				return nil, err
			}
			runOpts.PDESWorkers = workers
			pfp, pviol, pcl, pch, err := checkedRun(id, fmt.Sprintf("seed=%d pdes-parallel", seed), runOpts)
			if err != nil {
				return nil, err
			}

			rep.Runs += 2
			rep.Clusters += scl + pcl
			rep.Checks += sch + pch
			rep.Violations = append(rep.Violations, sviol...)
			rep.Violations = append(rep.Violations, pviol...)
			if sfp != pfp {
				rep.Mismatches = append(rep.Mismatches,
					fmt.Sprintf("%s seed=%d: PDES serial-merge and parallel fingerprints differ", id, seed))
			}
		}
	}
	return rep, nil
}

// GoldenReplayQoS replays the qos-* experiment family along both
// determinism axes: the serial-vs-parallel sweep axis, and the PDES
// axis at every requested worker count (defaults 2 and 4, covering the
// 1/2/4-worker contract — each PDES pass compares a 1-worker run
// against an N-worker run of the same partitioned cluster). Reports are
// merged into one.
func GoldenReplayQoS(opts Options, workerCounts []int) (*ReplayReport, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{2, 4}
	}
	ids := QoSExperimentIDs()
	combined, err := GoldenReplay(ids, opts, 4)
	if err != nil {
		return nil, err
	}
	for _, w := range workerCounts {
		rep, err := GoldenReplayPDES(ids, opts, w)
		if err != nil {
			return nil, err
		}
		combined.Runs += rep.Runs
		combined.Clusters += rep.Clusters
		combined.Checks += rep.Checks
		combined.Violations = append(combined.Violations, rep.Violations...)
		combined.Mismatches = append(combined.Mismatches, rep.Mismatches...)
	}
	return combined, nil
}
