package bench

import (
	"strings"
	"testing"
)

// TestGoldenReplaySubset is the tier-1 slice of the golden-replay
// harness: a fault-schedule experiment (epoch fingerprints), a
// multi-cluster sweep, and the faulted-PDES mesh (window-boundary
// barrier arms + partition-local arms), quick mode, serial vs parallel.
// The full registry runs under `make invariant-smoke` / `ipipe-bench
// -check`.
func TestGoldenReplaySubset(t *testing.T) {
	rep, err := GoldenReplay([]string{"faults-availability", "fig17", "faults-pdes"}, Options{Quick: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clusters == 0 || rep.Checks == 0 {
		t.Fatalf("replay checked nothing: %+v", rep)
	}
	if !rep.OK() {
		var buf strings.Builder
		rep.Fprint(&buf)
		t.Fatal(buf.String())
	}
}

func TestGoldenReplayUnknownID(t *testing.T) {
	if _, err := GoldenReplay([]string{"no-such-experiment"}, Options{}, 2); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}
