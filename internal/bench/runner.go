// Parallel sweep execution for the experiment harness.
//
// Every experiment is a sweep of independent simulation points — sizes ×
// cores × loads × disciplines — and every point builds its own seeded
// sim.Engine, so points share no mutable state and can run on different
// OS threads. The helpers here fan points out across a bounded worker
// pool and collect results in deterministic sweep order: a parallel run
// produces byte-identical Result tables to a serial one (enforced by
// TestParallelParity), because parallelism only reorders wall-clock
// execution, never the per-point virtual-time simulation or the order
// results are assembled in.
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// workers resolves the sweep worker count for this run.
func (o Options) workers() int {
	if o.Parallel > 1 {
		return o.Parallel
	}
	return 1
}

// sweep executes point(i) for every i in [0, n) using the run's worker
// pool. point must confine its writes to per-i state (slot i of a result
// slice); it must not touch shared mutable state. With Parallel ≤ 1 the
// points run inline, in order, on the calling goroutine — the serial
// reference path. A panic in any point is re-raised on the caller after
// all workers drain, mirroring serial behaviour.
func sweep(o Options, n int, point func(i int)) {
	w := o.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			point(i)
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicV == nil {
								panicV = r
							}
							panicMu.Unlock()
						}
					}()
					point(i)
				}()
				panicMu.Lock()
				stop := panicV != nil
				panicMu.Unlock()
				if stop {
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(fmt.Sprintf("bench: sweep point panicked: %v", panicV))
	}
}

// sweepMap fans f over [0, n) and returns the results indexed by point —
// the workhorse the runners use: compute every point concurrently, then
// assemble rows serially in sweep order.
func sweepMap[T any](o Options, n int, f func(i int) T) []T {
	out := make([]T, n)
	sweep(o, n, func(i int) { out[i] = f(i) })
	return out
}

// grid flattens a 2-D sweep (outer × inner) into point indices for
// sweepMap and back. Row-major: index = oi*inner + ii.
type grid struct{ outer, inner int }

func (g grid) size() int             { return g.outer * g.inner }
func (g grid) split(i int) (int, int) { return i / g.inner, i % g.inner }
