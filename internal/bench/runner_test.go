package bench

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// TestParallelParity is the determinism contract of the sweep runner:
// for every registered experiment, the parallel path must produce
// byte-identical Result rows and notes to the serial path. Parallelism
// may only change wall-clock interleaving, never simulation outcomes.
func TestParallelParity(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			serial, err := Run(id, Options{Quick: true, Parallel: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := Run(id, Options{Quick: true, Parallel: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
				t.Fatalf("rows diverge between serial and parallel runs:\nserial:   %v\nparallel: %v",
					serial.Rows, parallel.Rows)
			}
			if !reflect.DeepEqual(serial.Notes, parallel.Notes) {
				t.Fatalf("notes diverge:\nserial:   %v\nparallel: %v", serial.Notes, parallel.Notes)
			}
		})
	}
}

func TestSweepCoversAllPointsInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		const n = 100
		out := sweepMap(Options{Parallel: workers}, n, func(i int) int { return i * i })
		for i := 0; i < n; i++ {
			if out[i] != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, out[i], i*i)
			}
		}
	}
}

func TestSweepRunsEachPointOnce(t *testing.T) {
	var counts [64]atomic.Int32
	sweep(Options{Parallel: 8}, len(counts), func(i int) { counts[i].Add(1) })
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("point %d ran %d times", i, got)
		}
	}
}

func TestSweepZeroAndOnePoints(t *testing.T) {
	ran := 0
	sweep(Options{Parallel: 8}, 0, func(int) { ran++ })
	if ran != 0 {
		t.Fatal("sweep over zero points ran something")
	}
	sweep(Options{Parallel: 8}, 1, func(int) { ran++ })
	if ran != 1 {
		t.Fatalf("sweep over one point ran %d times", ran)
	}
}

func TestSweepPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panic in a point was swallowed", workers)
				}
			}()
			sweep(Options{Parallel: workers}, 10, func(i int) {
				if i == 3 {
					panic("boom")
				}
			})
		}()
	}
}

func TestGridRoundTrip(t *testing.T) {
	g := grid{outer: 5, inner: 7}
	if g.size() != 35 {
		t.Fatalf("size = %d", g.size())
	}
	seen := map[[2]int]bool{}
	for i := 0; i < g.size(); i++ {
		o, in := g.split(i)
		if o < 0 || o >= 5 || in < 0 || in >= 7 {
			t.Fatalf("split(%d) = (%d,%d) out of range", i, o, in)
		}
		seen[[2]int{o, in}] = true
	}
	if len(seen) != 35 {
		t.Fatalf("split not a bijection: %d distinct cells", len(seen))
	}
}

// TestRunRecordsWallAndEvents checks the -json bookkeeping satellites:
// Run must stamp wall time and a nonzero simulation event count on
// results that actually simulate.
func TestRunRecordsWallAndEvents(t *testing.T) {
	r, err := Run("fig2", Options{Quick: true, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Wall <= 0 {
		t.Fatalf("Wall = %v, want > 0", r.Wall)
	}
	if r.Events == 0 {
		t.Fatal("Events = 0 for a simulation-backed experiment")
	}
}
