// The scale-* family measures the sharded RKV scale-out: aggregate
// throughput and tail latency as the key space spreads over independent
// Paxos groups (consistent-hash router), and the effect of client-side
// request batching (message trains amortizing per-packet cost, I6).
package bench

import (
	"fmt"

	"repro/internal/actor"
	"repro/internal/apps/rkv"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("scale-shards", "Sharded RKV scale-out: aggregate throughput and p99 vs shards x skew", scaleShards)
	register("scale-batch", "Client batching: sharded RKV throughput and latency vs train size", scaleBatch)
}

// scaleRun is one sharded deployment measurement.
type scaleRun struct {
	appRun
	// PerShard counts completions per shard; Balance is max/mean.
	PerShard []uint64
	Balance  float64
	// Trains/Coalesced mirror the batcher counters.
	Trains    uint64
	Coalesced uint64
}

// warmKeys hot Zipf ranks are written before the measurement window, so
// reads of the skewed head hit the NIC-resident Memtable rather than
// all falling through to the host SSTable path. Skew then works FOR the
// sharded deployment: the hottest shard serves the cheapest requests.
const warmKeys = 2048

// warmDepth paces warmup writes closed-loop so a single-shard leader is
// never driven past its write capacity; warmupBudget bounds the run in
// case warmup stalls (idle virtual time costs nothing to simulate).
const (
	warmDepth    = 16
	warmupBudget = 40 * sim.Millisecond
)

// runScale deploys RKV over an 8-node pool with the given shard count
// (3 replicas per group, leaders rotated), pre-warms the hot keys, then
// drives a closed loop of router-directed Zipf keys (95% reads) for
// `window` and reports aggregate throughput plus per-shard balance.
// batch > 1 coalesces same-leader requests into message trains within a
// 2µs window. onNIC offloads to CN2350 cards; false runs the host DPDK
// baseline, where trains amortize the per-packet receive cost.
func runScale(seed uint64, shards, batch, depth int, theta float64, window sim.Time, onNIC bool) scaleRun {
	const nNodes = 8
	cl := core.NewCluster(seed)
	var nodes []*core.Node
	for i := 0; i < nNodes; i++ {
		cfg := core.Config{Name: fmt.Sprintf("s%d", i), LinkGbps: 10}
		if onNIC {
			cfg.NIC = spec.LiquidIOII_CN2350()
		}
		nodes = append(nodes, cl.AddNode(cfg))
	}
	placement := deploy.Host
	if onNIC {
		placement = deploy.NIC
	}
	d, err := deploy.RKVSpec{
		Common: deploy.Common{
			Placement: placement,
			Failover:  deploy.FailoverPolicy{Disabled: true},
		},
		Nodes: nodes, BaseID: 1000, MemLimit: 8 << 20,
		Shards: shards, Replicas: 3,
		// 512 vnodes keep ring imbalance ≈3%, so the sweep measures the
		// workload's skew, not the router's.
		ShardVNodes: 512,
	}.Deploy()
	if err != nil {
		panic(err)
	}
	// The single client aggregates all shards' traffic; give it headroom
	// so the shared edge link never becomes the scaling bottleneck.
	client := workload.NewClient(cl, "cli", 100)
	b := workload.NewBatcher(client, 2*sim.Microsecond, batch)
	z := workload.NewZipf(cl.Eng.Rand(), 1_000_000, theta)
	req := func(key []byte, data []byte, flow uint64, onResp func(actor.Msg)) workload.Request {
		node, leader := d.LeaderFor(key)
		return workload.Request{
			Node: node, Dst: leader, Kind: rkv.KindReq,
			Data: data, Size: 256, FlowID: flow, OnResp: onResp,
		}
	}
	perShard := make([]uint64, shards)
	measure := func() {
		client.Lat = stats.NewSample() // measure the steady window only
		client.ClosedLoopVia(depth*shards, window, func(i uint64) workload.Request {
			key := []byte(fmt.Sprintf("k%07d", z.Next()))
			sh := d.ShardFor(key)
			// 95% reads, 5% writes (§5.1).
			data := rkv.GetReq(key)
			if i%20 == 0 {
				data = rkv.PutReq(key, make([]byte, 128))
			}
			return req(key, data, i, func(actor.Msg) { perShard[sh]++ })
		}, b.Add)
	}
	// Warmup acks fire at the consensus commit point while the KindApply
	// backlog is still draining into each Memtable; a sentinel GET per
	// shard flushes FIFO behind those applies, so measurement starts on
	// warm, quiescent stores.
	drain := func() {
		pending := 0
		for s := 0; s < shards; s++ {
			for k := 0; k < warmKeys; k++ {
				key := []byte(fmt.Sprintf("k%07d", k))
				if d.ShardFor(key) != s {
					continue
				}
				pending++
				client.Send(req(key, rkv.GetReq(key), uint64(2)<<32+uint64(s), func(actor.Msg) {
					pending--
					if pending == 0 {
						measure()
					}
				}))
				break
			}
		}
	}
	var warmDone, warmNext int
	var issueWarm func()
	issueWarm = func() {
		if warmNext >= warmKeys {
			return
		}
		key := []byte(fmt.Sprintf("k%07d", warmNext))
		flow := uint64(1)<<32 + uint64(warmNext)
		warmNext++
		client.Send(req(key, rkv.PutReq(key, make([]byte, 128)), flow, func(actor.Msg) {
			warmDone++
			if warmDone == warmKeys {
				drain()
			} else {
				issueWarm()
			}
		}))
	}
	for i := 0; i < warmDepth; i++ {
		issueWarm()
	}
	cl.Eng.RunUntil(warmupBudget + window)

	out := scaleRun{PerShard: perShard, Trains: b.Trains, Coalesced: b.Coalesced}
	var max, total uint64
	for _, c := range perShard {
		total += c
		if c > max {
			max = c
		}
	}
	out.Tput = float64(total) / window.Seconds()
	out.P50, out.LatOK = client.Lat.PercentileOK(50)
	out.P99, _ = client.Lat.PercentileOK(99)
	out.Received = total
	out.Sent = client.Sent
	if total > 0 {
		out.Balance = float64(max) * float64(shards) / float64(total)
	}
	return out
}

func scaleShards(opts Options) *Result {
	window := 5 * sim.Millisecond
	shardCounts := []int{1, 2, 4, 8}
	thetas := []float64{0.50, 0.99, 1.00}
	if opts.Quick {
		window = 2 * sim.Millisecond
		shardCounts = []int{1, 8}
		thetas = []float64{0.99}
	}
	const depth = 48
	r := &Result{Header: []string{"theta", "shards", "tput(Kops)", "scale(x)", "linear(%)", "p50(us)", "p99(us)", "balance"}}
	g := grid{outer: len(thetas), inner: len(shardCounts)}
	runs := sweepMap(opts, g.size(), func(i int) scaleRun {
		ti, si := g.split(i)
		return runScale(opts.seed(), shardCounts[si], 1, depth, thetas[ti], window, true)
	})
	for ti, theta := range thetas {
		base := runs[ti*len(shardCounts)].Tput // shardCounts[0] == 1
		for si, shards := range shardCounts {
			run := runs[ti*len(shardCounts)+si]
			scale := 0.0
			if base > 0 {
				scale = run.Tput / base
			}
			linear := scale / float64(shards) * 100
			r.Add(theta, shards, run.Tput/1e3, scale, linear,
				latCell(run.P50, run.LatOK), latCell(run.P99, run.LatOK), run.Balance)
			if theta == 0.99 && shards == shardCounts[len(shardCounts)-1] {
				r.Note("θ=0.99, %d shards: %.1fx aggregate over 1 shard (%.0f%% of linear; target ≥80%%)",
					shards, scale, linear)
			}
		}
	}
	r.Note("one Paxos group per shard, 3 replicas rotated over 8 nodes; consistent-hash router (512 vnodes/shard)")
	r.Note("balance = hottest shard's completion share vs fair (1.0 = even); skew concentrates keys, not shards")
	return r
}

func scaleBatch(opts Options) *Result {
	window := 5 * sim.Millisecond
	batches := []int{1, 2, 4, 8, 16}
	if opts.Quick {
		window = 2 * sim.Millisecond
		batches = []int{1, 8}
	}
	const shards, depth = 8, 16
	paths := []struct {
		name  string
		onNIC bool
	}{{"dpdk", false}, {"nic", true}}
	r := &Result{Header: []string{"path", "batch", "tput(Kops)", "p50(us)", "p99(us)", "trains", "avg-train"}}
	g := grid{outer: len(paths), inner: len(batches)}
	runs := sweepMap(opts, g.size(), func(i int) scaleRun {
		pi, bi := g.split(i)
		return runScale(opts.seed(), shards, batches[bi], depth, 0.99, window, paths[pi].onNIC)
	})
	for pi, path := range paths {
		base := runs[pi*len(batches)]
		for bi, batch := range batches {
			run := runs[pi*len(batches)+bi]
			avg := 0.0
			if run.Trains > 0 {
				avg = float64(run.Coalesced) / float64(run.Trains)
			}
			r.Add(path.name, batch, run.Tput/1e3, latCell(run.P50, run.LatOK), latCell(run.P99, run.LatOK),
				run.Trains, avg)
			if bi == len(batches)-1 && base.Tput > 0 && run.LatOK && base.LatOK {
				r.Note("%s batch=%d vs unbatched: %.2fx throughput, p50 %+.1fus",
					path.name, batch, run.Tput/base.Tput, run.P50-base.P50)
			}
		}
	}
	r.Note("%d shards, θ=0.99; trains coalesce same-leader requests issued within a 2us window (I6)", shards)
	r.Note("both paths hold throughput parity while trains cut client request packets ~2.3x: the replicas are compute-bound, DPDK receive latency hides under queueing, and the on-path card's traffic manager admits packets in hardware")
	return r
}
