package bench

import (
	"fmt"

	"repro/internal/actor"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("fig16", "P99 tail latency vs load: FCFS vs DRR vs iPipe hybrid", fig16)
}

// fig16 reproduces §5.4: four NIC-resident actors serve requests whose
// execution costs follow either a low-dispersion exponential
// distribution or the high-dispersion bimodal-2 (the paper derives its
// traces from the three applications; the service means below are the
// paper's: exponential mean 32µs / 27µs and bimodal 35/60µs / 25/55µs
// for the LiquidIOII and Stingray respectively). Arrivals are Poisson;
// the client measures P99 end to end.
func fig16(opts Options) *Result {
	window := 80 * sim.Millisecond
	loads := []float64{0.1, 0.3, 0.5, 0.7, 0.8, 0.9}
	if opts.Quick {
		window = 30 * sim.Millisecond
		loads = []float64{0.3, 0.7, 0.9}
	}
	r := &Result{Header: []string{"nic", "dispersion", "load", "FCFS-p99(us)", "DRR-p99(us)", "iPipe-p99(us)"}}

	type nicCase struct {
		model   *spec.NICModel
		expMean sim.Time
		b1, b2  sim.Time
	}
	cases := []nicCase{
		{spec.LiquidIOII_CN2350(), 32 * sim.Microsecond, 35 * sim.Microsecond, 60 * sim.Microsecond},
		{spec.Stingray_PS225(), 27 * sim.Microsecond, 25 * sim.Microsecond, 55 * sim.Microsecond},
	}

	// The workload generator replays application-trace-like request
	// mixes (§5.4). Low dispersion: six homogeneous actors whose costs
	// jitter around the exponential mean — downgrading cannot help, and
	// the hybrid should track FCFS. High dispersion: most requests are
	// light (b1-centred) across five actors, while one actor
	// concentrates rare, very heavy handlers (the ranker/compaction
	// class) — its share is kept below 1% of requests so the P99 tracks
	// the light mode, and its cost is scaled up from b2 so that it
	// actually blocks FCFS cores (with 12-way parallel FCFS service the
	// paper's raw 35/60µs modes cause no measurable head-of-line
	// blocking; see EXPERIMENTS.md).
	const actors = 6
	const heavyShare = 150 // heavy actor receives 1/heavyShare of traffic
	const heavyScale = 40  // heavy cost ≈ heavyScale × b2 (≈40% utilization share)
	run := func(nc nicCase, highDisp bool, cfg sched.Config, load float64, seed uint64) float64 {
		cl := core.NewCluster(seed)
		n := cl.AddNode(core.Config{
			Name: "srv", NIC: nc.model,
			DisableMigration: true, // isolate the NIC-side discipline
			WatchdogTimeout:  -1,   // heavy handlers are legitimate here
			SchedOverride:    &cfg,
		})
		rnd := sim.NewRand(seed * 7)
		var meanService float64
		for i := 0; i < actors; i++ {
			var dist workload.ServiceDist
			switch {
			case highDisp && i == actors-1:
				// The heavy actor: long-tailed around heavyScale·b2.
				dist = shiftedExp{base: nc.b2 * heavyScale, jit: workload.Exponential{R: rnd, M: nc.b2 * heavyScale}}
			case highDisp:
				// Light actors: tight around b1.
				dist = shiftedExp{base: nc.b1 * 8 / 10, jit: workload.Exponential{R: rnd, M: nc.b1 * 2 / 10}}
			default:
				// Low dispersion: mild jitter around the exponential mean.
				dist = shiftedExp{base: nc.expMean / 2, jit: workload.Exponential{R: rnd, M: nc.expMean / 2}}
			}
			d := dist
			a := &actor.Actor{
				ID: actor.ID(100 + i),
				// NIC service time must equal the drawn cost, so divide
				// out the runtime's scaling to reference-core units.
				OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
					ctx.Reply(m)
					return sim.Time(float64(d.Draw()) / nc.model.CyclesScale())
				},
			}
			if err := n.Register(a, true, 0); err != nil {
				panic(err)
			}
		}
		// Aggregate mean service for the capacity computation.
		if highDisp {
			light := float64(nc.b1)
			heavy := 2 * float64(nc.b2) * heavyScale
			meanService = light*(1-1/float64(heavyShare)) + heavy/float64(heavyShare)
		} else {
			meanService = float64(nc.expMean)
		}
		capacity := float64(nc.model.Cores) / (meanService / 1e9)
		client := workload.NewClient(cl, "cli", nc.model.LinkGbps)
		client.OpenLoop(capacity*load, window, func(i uint64) workload.Request {
			dst := actor.ID(100 + int(i)%(actors-1))
			if highDisp && i%heavyShare == 0 {
				dst = actor.ID(100 + actors - 1)
			}
			return workload.Request{Node: "srv", Dst: dst, Size: 512, FlowID: i}
		})
		cl.Eng.Run()
		return client.Lat.Percentile(99)
	}

	// Points: NIC × dispersion × load × discipline — every cell is one
	// independent cluster simulation.
	type point struct {
		nc       nicCase
		highDisp bool
		load     float64
		disc     int // 0 FCFS, 1 DRR, 2 hybrid
	}
	var pts []point
	for _, nc := range cases {
		for _, highDisp := range []bool{false, true} {
			for _, load := range loads {
				for disc := 0; disc < 3; disc++ {
					pts = append(pts, point{nc, highDisp, load, disc})
				}
			}
		}
	}
	p99s := sweepMap(opts, len(pts), func(i int) float64 {
		p := pts[i]
		var cfg sched.Config
		switch p.disc {
		case 0:
			cfg = baseline.FCFSOnly(p.nc.model)
		case 1:
			cfg = baseline.DRROnly(p.nc.model)
		default:
			cfg = baseline.Hybrid(p.nc.model)
		}
		return run(p.nc, p.highDisp, cfg, p.load, opts.seed())
	})
	for i := 0; i < len(pts); i += 3 {
		p := pts[i]
		disp := "low(exp)"
		if p.highDisp {
			disp = "high(bimodal2)"
		}
		r.Add(p.nc.model.Name, disp, fmt.Sprintf("%.1f", p.load), p99s[i], p99s[i+1], p99s[i+2])
	}
	r.Note("paper at 0.9 load: low dispersion — hybrid ≈ FCFS, beats DRR by 9.6%%/21.7%% (LiquidIO/Stingray)")
	r.Note("paper at 0.9 load: high dispersion — hybrid cuts FCFS tail by 68.7%%/61.4%% and DRR by 10.9%%/12.9%%")
	return r
}

// shiftedExp draws base + Exp(jit.M): a mildly jittered service time
// whose floor is deterministic (real handlers have a deterministic code
// path plus data-dependent tails).
type shiftedExp struct {
	base sim.Time
	jit  workload.Exponential
}

// Draw implements workload.ServiceDist.
func (s shiftedExp) Draw() sim.Time { return s.base + s.jit.Draw() }

// Mean implements workload.ServiceDist.
func (s shiftedExp) Mean() sim.Time { return s.base + s.jit.M }

// Name implements workload.ServiceDist.
func (s shiftedExp) Name() string { return "shifted-exp" }

var _ = stats.NewSample // keep stats import if assertions change
