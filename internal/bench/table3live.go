package bench

import (
	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/microbench"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

func init() {
	register("table3-live", "Table 3 validation: measured NIC service time of live workload actors", table3Live)
}

// table3Live closes the calibration loop for Table 3: each of the ten
// in-network workloads is deployed as a real actor on a simulated
// CN2350, driven with 1KB requests, and its *measured* per-request
// service time (from the scheduler's ServiceStats EWMA) is compared to
// the Table 3 figure the cost model was parameterized with. Divergence
// would mean the runtime adds unaccounted charges.
func table3Live(opts Options) *Result {
	r := &Result{Header: []string{"workload", "table3(us)", "measured(us)", "delta(%)"}}
	builders := []func() microbench.Workload{
		func() microbench.Workload { return microbench.NewCountMin(4, 4096) },
		func() microbench.Workload { return microbench.NewKVCache(4096) },
		func() microbench.Workload { return microbench.NewTopRanker(16) },
		func() microbench.Workload { return microbench.NewLeakyBucket(1e9, 1e6) },
		func() microbench.Workload { return microbench.NewLPMTrie() },
		func() microbench.Workload { return microbench.NewMaglev([]string{"a", "b", "c"}, 1021) },
		func() microbench.Workload { return microbench.NewPFabric() },
		func() microbench.Workload { return microbench.NewBayes(4, 8, 32) },
		func() microbench.Workload { return microbench.NewChainRep([]string{"h", "m", "t"}) },
	}
	rows := sweepMap(opts, len(builders), func(bi int) []any {
		w := builders[bi]()
		prof, _ := spec.WorkloadByName(w.Name())
		cl := core.NewCluster(opts.seed())
		n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350(), DisableMigration: true})
		a := microbench.Actor(1, w)
		if err := n.Register(a, true, 0); err != nil {
			panic(err)
		}
		client := workload.NewClient(cl, "cli", 10)
		const reqs = 200
		for i := 0; i < reqs; i++ {
			i := i
			// Space arrivals so queueing is ≈0 and measured service is
			// pure execution.
			cl.Eng.At(sim.Time(i)*200*sim.Microsecond, func() {
				client.Send(workload.Request{
					Node: "srv", Dst: 1, Data: make([]byte, 1000),
					Size: 1024, FlowID: uint64(i),
				})
			})
		}
		cl.Eng.Run()
		measured := a.ServiceStats.Mean()
		want := prof.ExecLat1KB.Micros()
		delta := (measured - want) / want * 100
		_ = actor.Stable
		return []any{w.Name(), want, measured, delta}
	})
	for _, row := range rows {
		r.Add(row...)
	}
	r.Note("measured = ServiceStats EWMA through the full runtime (includes forwarding tax and reply send); small positive deltas are those runtime charges")
	return r
}
