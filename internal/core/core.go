// Package core is the iPipe runtime (§3): it spans the SmartNIC and the
// host of each node, wiring together the actor scheduler
// (internal/sched), the host execution engine (internal/hostsim), the
// distributed-memory-object store (internal/dmo), the host↔NIC message
// rings (internal/msgring), the security isolation mechanisms
// (internal/isolation), and the simulated device and network substrates.
//
// A Cluster holds the shared simulation engine, the network, and the
// global actor table; Nodes are added with AddNode and actors deployed
// with Register. Baseline (DPDK, host-only) nodes are Nodes without a
// SmartNIC: traffic lands directly on host cores with DPDK I/O costs.
package core

import (
	"errors"
	"fmt"

	"repro/internal/actor"
	"repro/internal/dmo"
	"repro/internal/hostsim"
	"repro/internal/invariant"
	"repro/internal/isolation"
	"repro/internal/msgring"
	"repro/internal/netsim"
	"repro/internal/nicsim"
	"repro/internal/obs"
	"repro/internal/pcie"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
)

// DefaultRegionBytes is the per-actor DMO region carved at registration
// when the caller does not specify one (64MB, comfortably above every
// app actor's working set).
const DefaultRegionBytes = 64 << 20

// RespEnvelope wraps a response traveling back to an external client
// (the workload generator): Fn is the client's reply continuation, Msg
// the response. netsim handlers that see one invoke Fn(Msg).
type RespEnvelope struct {
	Fn  func(actor.Msg)
	Msg actor.Msg
}

// BatchEnvelope is a client-side message train: several requests bound
// for actors on the same node, coalesced into one wire packet so the
// per-packet receive cost — gate admission on a SmartNIC, the DPDK
// stack on a baseline host — is paid once for the whole train (the
// batched-DMA amortization of insight I6, applied at the client edge).
// Sizes[i] is message i's wire share of the packet; the responses
// travel individually.
type BatchEnvelope struct {
	Msgs  []actor.Msg
	Sizes []int
}

// Cluster is a deployment: one engine, one network, a shared actor
// table, and a set of nodes.
type Cluster struct {
	Eng   *sim.Engine
	Net   *netsim.Network
	Table *actor.Table
	nodes map[string]*Node

	// Group is non-nil on partitioned (PDES) clusters: nodes are
	// assigned round-robin to its engines and Eng aliases partition 0.
	Group       *sim.Group
	pdesWorkers int
	nextPart    int

	// pendingKills defers watchdog kills on partitioned clusters to the
	// next window boundary: entry p is appended only by partition p's
	// window goroutine and drained by the coordinator's OnRound hook in
	// partition order, so the shared-table rewrite never races a live
	// window and lands identically at any worker count.
	pendingKills [][]pendingKill

	tracer    *obs.Tracer
	collector *obs.Collector
	obsPrefix string
	checker   *invariant.Checker
	// checkers holds one invariant checker per partition (length 1 and
	// identical to checker on classic clusters). See AttachCheckers.
	checkers []*invariant.Checker

	// onMembership listeners observe node crash/recovery transitions
	// (see OnMembership in fault.go).
	onMembership []func(node string, down bool)
}

// NewCluster creates an empty cluster with a deterministic seed.
func NewCluster(seed uint64) *Cluster {
	eng := sim.NewEngine(seed)
	c := &Cluster{
		Eng:   eng,
		Net:   netsim.New(eng),
		Table: actor.NewTable(),
		nodes: map[string]*Node{},
	}
	if defaultObserver != nil {
		defaultObserver(c)
	}
	return c
}

// NewPartitionedCluster creates a cluster sharded across parts engine
// partitions for conservative parallel execution: AddNode assigns each
// node (all of its NIC/host/PCIe models) to a partition round-robin,
// and the network switch hands packets across partitions (see
// netsim.AttachOn). Drive it with Cluster.RunUntil; SetPDESWorkers
// picks the parallelism (any worker count produces byte-identical
// results). parts = 1 degenerates to a classic cluster.
//
// The §3.2.5 push/pull actor migration IS supported: the protocol's
// node-local phases run on the owning partition's engine and the
// cluster-visible commit — the actor-table rewrite, the host/NIC
// registration, the buffered re-dispatch — defers to the next
// conservative-window boundary via sim.Group.DeferBarrier, so the
// copy-on-write table stays single-writer and results are
// byte-identical at any worker count (DESIGN.md §13). The
// per-invocation watchdog is supported the same way — its kill path is
// deferred to the next window boundary, where the coordinator
// performs the table rewrite with no window in flight (kills land in
// partition order, deterministically at any worker count). Fault
// injection is supported too: fault.Install routes cluster-wide arms
// (crash, loss, flap, partition cuts) through sim.Group.AtBarrier
// window-boundary actions and partition-local arms (overload, accel
// stall, NIC-down) to the owning partition's engine. Tracing and
// metrics are also supported: each partition emits spans into its own
// obs.Sink and the collector samples at conservative-window
// boundaries, so artifacts are byte-identical at any worker count and
// observation never perturbs results (see EnableTracingPrefixed /
// EnableMetricsPrefixed).
func NewPartitionedCluster(seed uint64, parts int) *Cluster {
	if parts < 1 {
		parts = 1
	}
	g := sim.NewGroup(seed, parts)
	c := &Cluster{
		Eng:   g.Engine(0),
		Net:   netsim.NewPartitioned(g),
		Table: actor.NewTable(),
		nodes: map[string]*Node{},
	}
	if parts > 1 {
		c.Group = g
		c.pendingKills = make([][]pendingKill, parts)
		g.OnRound(func(sim.Time) { c.drainKills() })
	}
	if defaultObserver != nil {
		defaultObserver(c)
	}
	return c
}

// pendingKill is one watchdog kill deferred to a window boundary.
type pendingKill struct {
	n *Node
	a *actor.Actor
}

// drainKills performs deferred watchdog kills between conservative
// windows, in partition order (see pendingKills).
func (c *Cluster) drainKills() {
	for p := range c.pendingKills {
		kills := c.pendingKills[p]
		if len(kills) == 0 {
			continue
		}
		c.pendingKills[p] = nil
		for _, k := range kills {
			k.n.performKill(k.a)
		}
	}
}

// Partitions returns the number of engine partitions (1 on classic
// clusters).
func (c *Cluster) Partitions() int {
	if c.Group == nil {
		return 1
	}
	return c.Group.Partitions()
}

// SetPDESWorkers bounds the goroutines used by RunUntil on partitioned
// clusters; ≤ 1 runs all partitions on the caller's goroutine (the
// serial merge — same results, no parallelism).
func (c *Cluster) SetPDESWorkers(w int) { c.pdesWorkers = w }

// RunUntil advances the cluster to the deadline: the partitioned run
// loop on PDES clusters, plain Engine.RunUntil otherwise.
func (c *Cluster) RunUntil(deadline sim.Time) {
	if c.Group != nil {
		workers := c.pdesWorkers
		if workers < 1 {
			workers = 1
		}
		c.Group.RunUntil(deadline, workers)
		return
	}
	c.Eng.RunUntil(deadline)
}

// Tracer returns the cluster's tracer (nil when tracing is disabled).
func (c *Cluster) Tracer() *obs.Tracer { return c.tracer }

// Collector returns the cluster's metrics collector (nil when disabled).
func (c *Cluster) Collector() *obs.Collector { return c.collector }

// Node returns a node by name, or nil.
func (c *Cluster) Node(name string) *Node { return c.nodes[name] }

// Config describes one node.
type Config struct {
	Name string
	// NIC is the SmartNIC model; nil means a dumb NIC (baseline node).
	NIC *spec.NICModel
	// Host is the host server model. Defaults to spec.IntelHost().
	Host *spec.HostModel
	// HostCores limits how many host cores the runtime may use
	// (default: all of Host.Cores).
	HostCores int
	// LinkGbps overrides the node's link speed (default: NIC link, or
	// 10 for baseline nodes).
	LinkGbps float64
	// RingSlots/RingBatch size the host↔NIC channels.
	RingSlots int
	RingBatch int
	// WatchdogTimeout bounds per-invocation NIC core occupancy (§3.4);
	// 0 uses 1ms; negative disables.
	WatchdogTimeout sim.Time
	// DisableMigration pins the initial placement (the Floem-style
	// static configuration uses this).
	DisableMigration bool
	// RawState skips per-operation DMO translation and bookkeeping
	// charges, modeling a hand-rolled (non-iPipe) implementation; used
	// by the framework-overhead comparison (Figure 17).
	RawState bool
	// SchedOverride, if non-nil, replaces the NIC scheduler config
	// derived from the model (used by the Figure 16 ablations).
	SchedOverride *sched.Config
}

// MigrationRecord captures one migration's per-phase elapsed time
// (Figure 18 and Appendix B.3). Push migrations fill all four phases;
// pull migrations run a single object-move stage and record it as
// Phase[2] with Pull set, so Node.Migrations accounts both directions.
type MigrationRecord struct {
	Actor      string
	Start      sim.Time
	Phase      [4]sim.Time // elapsed per phase
	BytesMoved int
	Buffered   int // requests forwarded at commit (phase 4 on pushes)
	// Pull marks a host→NIC pull migration (§3.2.5's reverse direction).
	Pull bool
}

// Total returns the end-to-end migration time.
func (r MigrationRecord) Total() sim.Time {
	return r.Phase[0] + r.Phase[1] + r.Phase[2] + r.Phase[3]
}

// Node is one server: a host, optionally a SmartNIC running iPipe, and
// the glue between them.
type Node struct {
	c   *Cluster
	eng *sim.Engine
	cfg Config

	Name string
	// Part is the node's engine partition (0 on classic clusters).
	Part      int
	NICModel  *spec.NICModel
	HostModel *spec.HostModel

	Sched   *sched.Scheduler // nil on baseline nodes
	Host    *hostsim.Host
	Gate    *nicsim.TrafficGate
	Accels  *nicsim.AccelBank
	DMA     *pcie.Engine
	Chan    *msgring.Channel
	Objects *dmo.Store

	Watchdog   *isolation.Watchdog
	Violations *isolation.ViolationLog

	// lanes, when set, interposes class-priority lanes between the
	// traffic gate and the scheduler (see SetLaneDispatcher).
	lanes LaneDispatcher

	actors map[actor.ID]*actor.Actor

	// obs holds the node's trace tracks; latHist the per-node request
	// sojourn histogram. Both nil unless observability is enabled.
	obs     *nodeObs
	latHist *obs.Histogram

	// Migrations records completed push migrations for Figure 18.
	Migrations []MigrationRecord
	// Dropped counts undeliverable messages.
	Dropped uint64
	// flushArmed tracks the pending ring-flush timer.
	flushArmed bool

	// Failure-injection state (see fault.go): down marks the whole node
	// crashed, nicDown the SmartNIC processing complex alone, and
	// nicSlowdown > 1 dilates NIC-core service times (overload bursts).
	down        bool
	nicDown     bool
	nicSlowdown float64
	// DownDrops counts messages discarded because the node (or its NIC
	// complex) was down when they arrived or would have executed.
	DownDrops uint64
}

// migrationBandwidthGBs is the effective object-migration bandwidth
// (below raw PCIe: per-object table updates and message framing eat into
// it; calibrated so a 32MB Memtable takes ≈35ms as in Appendix B.3).
const migrationBandwidthGBs = 0.9

// AddNode creates, wires, and attaches a node.
func (c *Cluster) AddNode(cfg Config) *Node {
	if cfg.Name == "" {
		panic("core: node needs a name")
	}
	if _, dup := c.nodes[cfg.Name]; dup {
		panic(fmt.Sprintf("core: duplicate node %q", cfg.Name))
	}
	if cfg.Host == nil {
		cfg.Host = spec.IntelHost()
	}
	if cfg.HostCores <= 0 {
		cfg.HostCores = cfg.Host.Cores
	}
	if cfg.RingSlots == 0 {
		cfg.RingSlots = msgring.DefaultRingSlots
	}
	if cfg.RingBatch == 0 {
		cfg.RingBatch = 4
	}
	if cfg.WatchdogTimeout == 0 {
		// Generous default: legitimate heavy handlers (compaction,
		// ranker sorts) run for milliseconds; the watchdog targets
		// actors that never yield (§3.4).
		cfg.WatchdogTimeout = 50 * sim.Millisecond
	}
	link := cfg.LinkGbps
	if link == 0 {
		if cfg.NIC != nil {
			link = cfg.NIC.LinkGbps
		} else {
			link = 10
		}
	}

	eng, part := c.Eng, 0
	if c.Group != nil {
		// Migration IS supported here: the 4-phase protocol's node-local
		// phases run on this partition's engine and its cluster-visible
		// commit defers to the next window boundary (see migrate.go), so
		// the shared actor table stays single-writer. The watchdog's kill
		// path is deferred the same way (see killActor).
		part = c.nextPart % c.Group.Partitions()
		c.nextPart++
		eng = c.Group.Engine(part)
	}

	n := &Node{
		c:          c,
		eng:        eng,
		Part:       part,
		cfg:        cfg,
		Name:       cfg.Name,
		NICModel:   cfg.NIC,
		HostModel:  cfg.Host,
		Objects:    dmo.NewStore(),
		Violations: isolation.NewViolationLog(),
		actors:     map[actor.ID]*actor.Actor{},
	}

	n.Host = hostsim.New(eng, hostsim.Config{
		Cores:    cfg.HostCores,
		Steal:    true,
		PollCost: 50 * sim.Nanosecond,
	}, hostsim.Hooks{
		Run:     n.runOnHost,
		Unowned: n.hostUnowned,
		OnExec:  n.obsHostExec,
	})

	if cfg.NIC != nil {
		n.Gate = nicsim.NewTrafficGate(eng, cfg.NIC)
		n.Accels = nicsim.NewAccelBank(eng, cfg.NIC)
		n.DMA = pcie.New(eng, cfg.NIC.DMA)
		n.Chan = msgring.NewChannel(eng, n.DMA, cfg.RingSlots, cfg.RingBatch)
		n.Chan.OnHostReady = n.pumpToHost
		n.Chan.OnNICReady = n.pumpToNIC

		mech := isolation.FirmwareTimer
		if cfg.NIC.FullOS {
			mech = isolation.OSSignals
		}
		if cfg.WatchdogTimeout > 0 {
			n.Watchdog = isolation.NewWatchdog(cfg.WatchdogTimeout, mech, n.killActor)
		}

		scfg := sched.DefaultConfig(cfg.NIC.Cores)
		scfg.TailThresh = cfg.NIC.TailThreshUs
		scfg.MeanThresh = cfg.NIC.MeanThreshUs
		scfg.Shuffle = !cfg.NIC.HasTrafficManager
		if cfg.SchedOverride != nil {
			scfg = *cfg.SchedOverride
		}
		hooks := sched.Hooks{
			Run:          n.runOnNIC,
			FwdTax:       func(b int) sim.Time { return cfg.NIC.FwdTax.Cost(b) },
			Forward:      n.forwardToHost,
			OnExec:       n.obsSchedExec,
			OnModeSwitch: n.obsModeSwitch,
			OnMigrate:    n.obsMigrate,
			OnAutoscale:  n.obsAutoscale,
			Quantum: func(avg int) sim.Time {
				if avg <= 0 {
					avg = 512
				}
				q := cfg.NIC.ComputeHeadroom(avg)
				if q < sim.Microsecond {
					q = sim.Microsecond
				}
				return q
			},
		}
		if !cfg.DisableMigration {
			hooks.PushToHost = n.pushToHost
			hooks.PullFromHost = n.pullFromHost
		}
		n.Sched = sched.New(eng, scfg, hooks)
	}

	c.nodes[cfg.Name] = n
	c.Net.AttachOn(cfg.Name, link, n, part)
	if c.tracer != nil {
		n.enableTracing(c.tracer)
	}
	if c.collector != nil {
		n.enableMetrics(c.collector)
	}
	if len(c.checkers) > 0 {
		n.enableInvariants(c.checkers[part])
	}
	return n
}

// Offloaded reports whether this node runs iPipe on a SmartNIC.
func (n *Node) Offloaded() bool { return n.Sched != nil }

// Eng returns the engine this node's events run on (the partition
// engine under PDES, the cluster engine otherwise).
func (n *Node) Eng() *sim.Engine { return n.eng }

// LaneDispatcher sits between traffic-gate admission and the actor
// scheduler: wire messages are offered to it instead of going straight
// to Sched.Arrive, letting internal/qos impose class-priority lanes
// without core importing it. Offer runs on the node's engine.
type LaneDispatcher interface {
	Offer(m actor.Msg)
}

// SetLaneDispatcher interposes d on this node's wire→scheduler path
// (nil restores direct delivery). Only meaningful on offloaded nodes;
// local injections (Inject) bypass lanes by design — node-local control
// traffic is never queued behind the wire.
func (n *Node) SetLaneDispatcher(d LaneDispatcher) { n.lanes = d }

// arriveNIC hands one admitted wire message to the NIC-side runtime,
// through the lane dispatcher when one is installed.
func (n *Node) arriveNIC(m actor.Msg) {
	if n.lanes != nil {
		n.lanes.Offer(m)
		return
	}
	n.Sched.Arrive(m)
}

// Register deploys an actor on this node. onNIC selects initial
// placement (ignored and forced to host on baseline nodes or when the
// actor is PinHost). regionBytes ≤ 0 uses DefaultRegionBytes.
func (n *Node) Register(a *actor.Actor, onNIC bool, regionBytes int) error {
	if _, dup := n.actors[a.ID]; dup {
		return fmt.Errorf("core: actor %d already registered on %s", a.ID, n.Name)
	}
	if _, elsewhere := n.c.Table.Lookup(a.ID); elsewhere {
		return fmt.Errorf("core: actor %d already deployed", a.ID)
	}
	if regionBytes <= 0 {
		regionBytes = DefaultRegionBytes
	}
	if a.PinHost || n.Sched == nil {
		onNIC = false
	}
	if a.PinNIC && n.Sched != nil {
		onNIC = true
	}
	n.actors[a.ID] = a
	n.Objects.Register(uint32(a.ID), regionBytes)
	if a.OnInit != nil {
		a.OnInit(&execCtx{node: n, a: a, onNIC: onNIC, free: true})
	}
	if onNIC {
		n.Sched.AddActor(a)
	} else {
		n.Host.AddActor(a)
	}
	n.c.Table.Set(a.ID, actor.Ref{Node: n.Name, OnNIC: onNIC})
	return nil
}

// ActorSide reports where an actor currently runs on this node.
func (n *Node) ActorSide(id actor.ID) (dmo.Side, error) {
	ref, ok := n.c.Table.Lookup(id)
	if !ok || ref.Node != n.Name {
		return 0, errors.New("core: actor not on this node")
	}
	if ref.OnNIC {
		return dmo.NIC, nil
	}
	return dmo.Host, nil
}

// Deliver implements netsim.Handler: traffic from the wire.
func (n *Node) Deliver(pkt *netsim.Packet) {
	if n.down {
		// Crashed nodes drop everything on the floor: the client's retry
		// path is what recovers the request.
		n.DownDrops++
		return
	}
	switch p := pkt.Payload.(type) {
	case RespEnvelope:
		// A response to a client co-located on this node.
		p.Fn(p.Msg)
	case actor.Msg:
		m := p
		m.WireSize = pkt.Size
		m.FlowID = pkt.FlowID
		m.Via = actor.ViaWire
		if m.Origin == "" {
			m.Origin = pkt.Src
		}
		if n.Sched != nil && !n.nicDown {
			n.Gate.Admit(m.FlowID, pkt.Size, func() { n.arriveNIC(m) })
			return
		}
		// Baseline node: DPDK delivers straight to host cores after the
		// stack's receive latency.
		n.eng.After(n.HostModel.DPDKRecvCost.Cost(pkt.Size)-n.HostModel.DPDKRxOcc, func() {
			n.Host.Arrive(m)
		})
	case BatchEnvelope:
		msgs := make([]actor.Msg, len(p.Msgs))
		for i, m := range p.Msgs {
			m.WireSize = p.Sizes[i]
			m.Via = actor.ViaWire
			if m.Origin == "" {
				m.Origin = pkt.Src
			}
			msgs[i] = m
		}
		if n.Sched != nil && !n.nicDown {
			// One gate admission for the whole train; the scheduler then
			// sees the individual messages.
			n.Gate.Admit(pkt.FlowID, pkt.Size, func() {
				for _, m := range msgs {
					n.arriveNIC(m)
				}
			})
			return
		}
		n.eng.After(n.HostModel.DPDKRecvCost.Cost(pkt.Size)-n.HostModel.DPDKRxOcc, func() {
			for _, m := range msgs {
				n.Host.Arrive(m)
			}
		})
	default:
		n.Dropped++
	}
}

// runOnNIC is the scheduler's Run hook: execute the handler for real,
// return the modeled NIC-core service time.
func (n *Node) runOnNIC(a *actor.Actor, m actor.Msg) sim.Time {
	if n.down || n.nicDown {
		// The cores are dead: queued work drains as drops — no handler
		// runs, no state mutates, no reply leaves.
		n.DownDrops++
		return 100 * sim.Nanosecond
	}
	ctx := &execCtx{node: n, a: a, onNIC: true}
	ref := a.OnMessage(ctx, m)
	service := n.scaleNIC(ref) + ctx.extra
	if n.Watchdog != nil {
		service, _ = n.Watchdog.Check(a, service)
	}
	return ctx.finish(service)
}

// runOnHost is the host engine's Run hook.
func (n *Node) runOnHost(a *actor.Actor, m actor.Msg) sim.Time {
	if n.down {
		n.DownDrops++
		return 100 * sim.Nanosecond
	}
	ctx := &execCtx{node: n, a: a, onNIC: false}
	ref := a.OnMessage(ctx, m)
	service := n.scaleHost(ref, a) + ctx.extra
	switch m.Via {
	case actor.ViaWire:
		service += n.HostModel.DPDKRxOcc
	case actor.ViaRing:
		service += n.HostModel.RingRxOcc
	}
	if !n.cfg.RawState {
		// iPipe bookkeeping (EWMA updates, dispatch table) — part of the
		// measured framework overhead of Figure 17.
		service += 90 * sim.Nanosecond
	}
	return ctx.finish(service)
}

// scaleNIC converts a reference-core (CN2350) cost to this NIC's cores.
// An injected overload burst (nicSlowdown > 1) dilates the result.
func (n *Node) scaleNIC(ref sim.Time) sim.Time {
	t := sim.Time(float64(ref) * n.NICModel.CyclesScale())
	if n.nicSlowdown > 1 {
		t = sim.Time(float64(t) * n.nicSlowdown)
	}
	return t
}

// scaleHost converts a reference-core cost to a host core, crediting
// less speedup to memory-bound actors (I3).
func (n *Node) scaleHost(ref sim.Time, a *actor.Actor) sim.Time {
	h := n.HostModel
	mb := a.MemBound
	speed := h.ComputeSpeedup*(1-mb) + h.MemorySpeedup*mb
	return sim.Time(float64(ref) / speed)
}

// forwardToHost is the scheduler's Forward hook: NIC-received traffic
// owned by a host actor (or nobody) crosses the rings.
func (n *Node) forwardToHost(m actor.Msg) {
	m.Via = actor.ViaRing
	if _, err := n.Chan.NICPush(toRingMsg(m)); err != nil {
		// Ring full: in hardware the NIC retries; bounded retry here.
		n.eng.After(2*sim.Microsecond, func() { n.forwardToHost(m) })
		return
	}
	n.armFlush()
}

// armFlush guarantees a partially filled ring batch flushes within 1µs.
func (n *Node) armFlush() {
	if n.flushArmed {
		return
	}
	n.flushArmed = true
	n.eng.After(sim.Microsecond, func() {
		n.flushArmed = false
		n.Chan.Flush()
	})
}

// pumpToHost drains ready NIC→host messages into the host scheduler.
func (n *Node) pumpToHost() {
	for {
		msgs, _ := n.Chan.HostPoll(64)
		if len(msgs) == 0 {
			return
		}
		for _, rm := range msgs {
			m := fromRingMsg(rm)
			m.Via = actor.ViaRing
			n.Host.Arrive(m)
		}
	}
}

// pumpToNIC fetches host→NIC messages and injects them into the NIC
// scheduler.
func (n *Node) pumpToNIC() {
	n.Chan.NICPoll(64, func(msgs []msgring.Message) {
		for _, rm := range msgs {
			m := fromRingMsg(rm)
			m.Via = actor.ViaRing
			n.Sched.Arrive(m)
		}
	})
}

// hostUnowned routes host-side messages whose actor is not (or no
// longer) host-resident.
func (n *Node) hostUnowned(m actor.Msg) {
	ref, ok := n.c.Table.Lookup(m.Dst)
	if !ok {
		n.Dropped++
		return
	}
	if ref.Node == n.Name && ref.OnNIC && n.Sched != nil {
		m.Via = actor.ViaRing
		if _, err := n.Chan.HostPush(toRingMsg(m)); err != nil {
			n.eng.After(2*sim.Microsecond, func() { n.hostUnowned(m) })
		}
		return
	}
	if ref.Node != n.Name {
		// Mid-flight to a remote actor (rare): send it over the wire.
		n.sendRemote(m, ref.Node, false)
		return
	}
	// The actor is mid-migration (pulled off the host, not yet started
	// on the NIC): buffer in the runtime, as §3.2.5 prescribes.
	if a, ok := n.actors[m.Dst]; ok && a.State != actor.Stable {
		a.Mailbox.Push(m)
		return
	}
	n.Dropped++
}

// sendRemote serializes a message onto the network.
func (n *Node) sendRemote(m actor.Msg, dstNode string, fromNIC bool) {
	size := msgring.HeaderBytes + len(m.Data)
	if m.WireSize > size {
		size = m.WireSize
	}
	if size < 64 {
		size = 64
	}
	m.Via = actor.ViaWire
	n.c.Net.Send(&netsim.Packet{
		Src:     n.Name,
		Dst:     dstNode,
		Size:    size,
		FlowID:  m.FlowID,
		Payload: m,
	})
	_ = fromNIC
}

// killActor is the watchdog's OnKill: deregister everywhere and free
// resources (§3.4). On a partitioned cluster the kill fires mid-window
// on the owning partition's goroutine, so the rewrite is deferred to
// the next window boundary (the actor may execute a few more already
// queued invocations inside the current window — the documented PDES
// kill semantics).
func (n *Node) killActor(a *actor.Actor) {
	if n.c.Group != nil {
		n.c.pendingKills[n.Part] = append(n.c.pendingKills[n.Part], pendingKill{n: n, a: a})
		return
	}
	n.performKill(a)
}

// performKill deregisters the actor everywhere. Idempotent: a deferred
// kill may race a crash drain or a repeated watchdog trip for the same
// actor within one window.
func (n *Node) performKill(a *actor.Actor) {
	if _, live := n.actors[a.ID]; !live {
		return
	}
	if n.Sched != nil {
		n.Sched.RemoveActor(a.ID)
	}
	n.Host.RemoveActor(a.ID)
	n.Objects.DestroyActor(uint32(a.ID))
	n.c.Table.Delete(a.ID)
	delete(n.actors, a.ID)
}

// HostCoresUsed reports the node's host CPU usage in cores (Figure 13's
// y-axis).
func (n *Node) HostCoresUsed() float64 { return n.Host.CoresUsed() }

// HostCoresAllocated reports host CPU usage including the dedicated
// busy-polling runtime thread both the DPDK baseline and the iPipe host
// runtime pin (§5.1: runtime threads poll the message rings; DPDK cores
// poll RX queues). Kernel-bypass stacks occupy a core whether or not
// requests arrive, so a deployment never allocates less than one.
func (n *Node) HostCoresAllocated() float64 {
	used := n.Host.CoresUsed()
	if used < 1 {
		return 1
	}
	return used
}

// toRingMsg / fromRingMsg adapt actor messages to ring slots. The full
// message rides in the ring entry's App handle (the real system passes
// a packet-buffer pointer alongside); Data is what crosses PCIe and is
// checksummed.
func toRingMsg(m actor.Msg) msgring.Message {
	return msgring.Message{
		Kind:     uint16(m.Kind),
		SrcActor: uint32(m.Src),
		DstActor: uint32(m.Dst),
		Data:     m.Data,
		App:      m,
	}
}

func fromRingMsg(rm msgring.Message) actor.Msg {
	if m, ok := rm.App.(actor.Msg); ok {
		return m
	}
	return actor.Msg{
		Kind: actor.Kind(rm.Kind),
		Src:  actor.ID(rm.SrcActor),
		Dst:  actor.ID(rm.DstActor),
		Data: rm.Data,
	}
}
