package core_test

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/dmo"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

// echoActor replies to every request with the same payload.
func echoActor(id actor.ID, cost sim.Time) *actor.Actor {
	return &actor.Actor{
		ID:   id,
		Name: "echo",
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			ctx.Reply(m)
			return cost
		},
	}
}

func TestEndToEndNICEcho(t *testing.T) {
	cl := core.NewCluster(1)
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350()})
	if err := n.Register(echoActor(1, 2*sim.Microsecond), true, 0); err != nil {
		t.Fatal(err)
	}
	client := workload.NewClient(cl, "cli", 10)
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * 10 * sim.Microsecond
		i := i
		cl.Eng.At(at, func() {
			client.Send(workload.Request{Node: "srv", Dst: 1, Size: 512, FlowID: uint64(i)})
		})
	}
	cl.Eng.Run()
	if client.Received != 100 {
		t.Fatalf("received %d of 100 (dropped=%d)", client.Received, n.Dropped)
	}
	p50 := client.Lat.Percentile(50)
	// RTT: ~2µs wire each way + ~0.5µs forwarding + 2µs exec ≈ 5-10µs.
	if p50 < 3 || p50 > 20 {
		t.Fatalf("median latency %vµs implausible", p50)
	}
	// Entirely NIC-resident: host CPU should be ≈0.
	if used := n.HostCoresUsed(); used > 0.01 {
		t.Fatalf("NIC-resident echo used %.3f host cores", used)
	}
}

func TestEndToEndHostActorViaRings(t *testing.T) {
	cl := core.NewCluster(1)
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350()})
	a := echoActor(2, 2*sim.Microsecond)
	a.PinHost = true
	if err := n.Register(a, true, 0); err != nil { // forced to host by PinHost
		t.Fatal(err)
	}
	client := workload.NewClient(cl, "cli", 10)
	for i := 0; i < 50; i++ {
		at := sim.Time(i) * 20 * sim.Microsecond
		cl.Eng.At(at, func() {
			client.Send(workload.Request{Node: "srv", Dst: 2, Size: 256})
		})
	}
	cl.Eng.Run()
	if client.Received != 50 {
		t.Fatalf("received %d of 50", client.Received)
	}
	if used := n.HostCoresUsed(); used <= 0 {
		t.Fatal("host-resident actor consumed no host CPU")
	}
	// The messages crossed the PCIe rings.
	if n.Chan.ToHost().Pushed == 0 {
		t.Fatal("no ring traffic for a host-resident actor")
	}
}

func TestBaselineDPDKNode(t *testing.T) {
	cl := core.NewCluster(1)
	n := cl.AddNode(core.Config{Name: "srv"}) // no NIC
	if n.Offloaded() {
		t.Fatal("baseline node claims offload")
	}
	if err := n.Register(echoActor(3, 2*sim.Microsecond), true, 0); err != nil {
		t.Fatal(err)
	}
	client := workload.NewClient(cl, "cli", 10)
	for i := 0; i < 50; i++ {
		at := sim.Time(i) * 20 * sim.Microsecond
		cl.Eng.At(at, func() {
			client.Send(workload.Request{Node: "srv", Dst: 3, Size: 512})
		})
	}
	cl.Eng.Run()
	if client.Received != 50 {
		t.Fatalf("received %d of 50", client.Received)
	}
}

// TestCoreSavingsHeadline is the paper's headline claim in miniature:
// the same workload consumes fewer host cores with iPipe than with the
// DPDK baseline, because the actor work runs on the NIC.
func TestCoreSavingsHeadline(t *testing.T) {
	run := func(offload bool) float64 {
		cl := core.NewCluster(1)
		cfg := core.Config{Name: "srv"}
		if offload {
			cfg.NIC = spec.LiquidIOII_CN2350()
		}
		n := cl.AddNode(cfg)
		n.Register(echoActor(1, 3*sim.Microsecond), offload, 0)
		client := workload.NewClient(cl, "cli", 10)
		client.OpenLoop(200000, 20*sim.Millisecond, func(i uint64) workload.Request {
			return workload.Request{Node: "srv", Dst: 1, Size: 512, FlowID: i}
		})
		cl.Eng.Run()
		if client.Received < client.Sent*95/100 {
			t.Fatalf("offload=%v: only %d/%d responses", offload, client.Received, client.Sent)
		}
		return n.HostCoresUsed()
	}
	base, ipipe := run(false), run(true)
	if base < 0.3 {
		t.Fatalf("baseline host usage %.2f suspiciously low", base)
	}
	if ipipe > base/5 {
		t.Fatalf("iPipe host usage %.2f should be far below baseline %.2f", ipipe, base)
	}
}

func TestCrossPCIeActorMessaging(t *testing.T) {
	cl := core.NewCluster(1)
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350()})
	done := 0
	sink := &actor.Actor{
		ID: 20, Name: "sink", PinHost: true,
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			done++
			return sim.Microsecond
		},
	}
	relay := &actor.Actor{
		ID: 21, Name: "relay",
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			ctx.Send(20, actor.Msg{Kind: 9, Data: m.Data})
			return sim.Microsecond
		},
	}
	n.Register(sink, false, 0)
	n.Register(relay, true, 0)
	client := workload.NewClient(cl, "cli", 10)
	for i := 0; i < 10; i++ {
		at := sim.Time(i) * 30 * sim.Microsecond
		cl.Eng.At(at, func() {
			client.Send(workload.Request{Node: "srv", Dst: 21, Size: 128})
		})
	}
	cl.Eng.Run()
	if done != 10 {
		t.Fatalf("host sink saw %d of 10 relayed messages", done)
	}
}

func TestRemoteActorMessaging(t *testing.T) {
	cl := core.NewCluster(1)
	n1 := cl.AddNode(core.Config{Name: "a", NIC: spec.LiquidIOII_CN2350()})
	n2 := cl.AddNode(core.Config{Name: "b", NIC: spec.LiquidIOII_CN2350()})
	got := 0
	n2.Register(&actor.Actor{
		ID: 31, Name: "peer",
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			got++
			return sim.Microsecond
		},
	}, true, 0)
	n1.Register(&actor.Actor{
		ID: 30, Name: "origin",
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			ctx.Send(31, actor.Msg{Data: []byte("x")})
			return sim.Microsecond
		},
	}, true, 0)
	client := workload.NewClient(cl, "cli", 10)
	client.Send(workload.Request{Node: "a", Dst: 30, Size: 64})
	cl.Eng.Run()
	if got != 1 {
		t.Fatalf("remote actor saw %d messages", got)
	}
}

func TestPushMigrationUnderOverload(t *testing.T) {
	cl := core.NewCluster(1)
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350()})
	heavy := &actor.Actor{
		ID: 40, Name: "heavy",
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			ctx.Reply(m)
			return 200 * sim.Microsecond // far beyond NIC capacity at this rate
		},
	}
	heavy.OnInit = func(ctx actor.Ctx) {
		obj, _ := ctx.Alloc(1 << 20)
		ctx.ObjWrite(obj, 0, []byte("state"))
	}
	n.Register(heavy, true, 0)
	client := workload.NewClient(cl, "cli", 10)
	client.OpenLoop(50000, 30*sim.Millisecond, func(i uint64) workload.Request {
		return workload.Request{Node: "srv", Dst: 40, Size: 512, FlowID: i}
	})
	cl.Eng.Run()
	if len(n.Migrations) == 0 {
		t.Fatal("overloaded actor never migrated to the host")
	}
	rec := n.Migrations[0]
	if rec.BytesMoved < 1<<20 {
		t.Fatalf("migration moved %d bytes, want ≥1MB of DMO state", rec.BytesMoved)
	}
	if rec.Phase[2] <= rec.Phase[0] {
		t.Fatal("phase 3 (object move) should dominate phase 1")
	}
	// The actor must still be deployed somewhere on this node (it may
	// have been pulled back to the NIC once the open loop ended and
	// load dropped — that is the adaptive behavior working).
	if _, err := n.ActorSide(40); err != nil {
		t.Fatalf("actor lost after migration: %v", err)
	}
	_ = dmo.Host
	if client.Received < client.Sent/2 {
		t.Fatalf("too many lost responses across migration: %d/%d", client.Received, client.Sent)
	}
}

func TestMigrateNowRecordsPhases(t *testing.T) {
	cl := core.NewCluster(1)
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350()})
	a := echoActor(50, 2*sim.Microsecond)
	a.OnInit = func(ctx actor.Ctx) {
		ctx.Alloc(32 << 20) // a 32MB Memtable-sized object
	}
	n.Register(a, true, 0)
	if !n.MigrateNow(50) {
		t.Fatal("MigrateNow refused")
	}
	cl.Eng.Run()
	if len(n.Migrations) != 1 {
		t.Fatalf("migrations = %d", len(n.Migrations))
	}
	rec := n.Migrations[0]
	// Appendix B.3: a 32MB object takes ≈35ms in phase 3.
	p3 := rec.Phase[2]
	if p3 < 30*sim.Millisecond || p3 > 45*sim.Millisecond {
		t.Fatalf("phase 3 = %v, want ≈35ms for 32MB", p3)
	}
	if rec.Total() <= p3 {
		t.Fatal("total must include all phases")
	}
}

func TestWatchdogKillsRunawayActor(t *testing.T) {
	cl := core.NewCluster(1)
	n := cl.AddNode(core.Config{
		Name: "srv", NIC: spec.LiquidIOII_CN2350(),
		WatchdogTimeout: 100 * sim.Microsecond,
	})
	evil := &actor.Actor{
		ID: 60, Name: "evil",
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			return sim.Second // infinite loop
		},
	}
	n.Register(evil, true, 0)
	n.Register(echoActor(61, sim.Microsecond), true, 0)
	client := workload.NewClient(cl, "cli", 10)
	client.Send(workload.Request{Node: "srv", Dst: 60, Size: 64})
	for i := 0; i < 10; i++ {
		at := sim.Time(i+1) * 200 * sim.Microsecond
		cl.Eng.At(at, func() {
			client.Send(workload.Request{Node: "srv", Dst: 61, Size: 64})
		})
	}
	cl.Eng.Run()
	if n.Watchdog.Kills != 1 {
		t.Fatalf("watchdog kills = %d", n.Watchdog.Kills)
	}
	if _, ok := cl.Table.Lookup(60); ok {
		t.Fatal("killed actor still in table")
	}
	// Other actors keep running; availability preserved.
	if client.Received != 10 {
		t.Fatalf("echo served %d of 10 after the kill", client.Received)
	}
}

func TestIsolationViolationRecorded(t *testing.T) {
	cl := core.NewCluster(1)
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350()})
	var victimObj uint64
	victim := &actor.Actor{ID: 70, Name: "victim"}
	victim.OnInit = func(ctx actor.Ctx) { victimObj, _ = ctx.Alloc(64) }
	attacker := &actor.Actor{
		ID: 71, Name: "attacker",
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			if err := ctx.ObjWrite(victimObj, 0, []byte("pwn")); err == nil {
				t.Error("cross-actor write succeeded")
			}
			return sim.Microsecond
		},
	}
	n.Register(victim, true, 0)
	n.Register(attacker, true, 0)
	client := workload.NewClient(cl, "cli", 10)
	client.Send(workload.Request{Node: "srv", Dst: 71, Size: 64})
	cl.Eng.Run()
	if n.Violations.Count(71) != 1 {
		t.Fatalf("violations recorded: %d", n.Violations.Count(71))
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	cl := core.NewCluster(1)
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350()})
	a := echoActor(80, sim.Microsecond)
	if err := n.Register(a, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Register(echoActor(80, sim.Microsecond), true, 0); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	n2 := cl.AddNode(core.Config{Name: "srv2", NIC: spec.LiquidIOII_CN2350()})
	if err := n2.Register(echoActor(80, sim.Microsecond), true, 0); err == nil {
		t.Fatal("cross-node duplicate accepted")
	}
}

func TestFrameworkOverheadRawVsIPipe(t *testing.T) {
	run := func(raw bool) float64 {
		cl := core.NewCluster(1)
		n := cl.AddNode(core.Config{Name: "srv", RawState: raw})
		a := &actor.Actor{
			ID: 1, Name: "kv",
			OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
				// A stateful op: read-modify-write a DMO.
				obj, _ := ctx.Alloc(128)
				ctx.ObjWrite(obj, 0, m.Data)
				ctx.ObjRead(obj, 0, 64)
				ctx.Free(obj)
				ctx.Reply(m)
				return 3 * sim.Microsecond
			},
		}
		n.Register(a, false, 0)
		client := workload.NewClient(cl, "cli", 10)
		client.OpenLoop(100000, 20*sim.Millisecond, func(i uint64) workload.Request {
			return workload.Request{Node: "srv", Dst: 1, Size: 512, FlowID: i, Data: make([]byte, 64)}
		})
		cl.Eng.Run()
		return n.HostCoresUsed()
	}
	raw, ipipe := run(true), run(false)
	if ipipe <= raw {
		t.Fatalf("iPipe host-only (%v cores) should cost more than raw (%v): §5.5", ipipe, raw)
	}
	overhead := (ipipe - raw) / raw
	if overhead > 0.5 {
		t.Fatalf("framework overhead %.0f%% too large (paper: ≈12%%)", overhead*100)
	}
}
