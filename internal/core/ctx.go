package core

import (
	"repro/internal/actor"
	"repro/internal/dmo"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// execCtx implements actor.Ctx for one handler invocation. It records
// the modeled cost of every runtime service the handler uses (sends,
// DMO accesses, accelerator invocations) in extra; the Run hooks add
// extra to the handler's own compute cost.
type execCtx struct {
	node  *Node
	a     *actor.Actor
	onNIC bool
	extra sim.Time
	// free disables cost accounting (used for OnInit, which the paper
	// performs at registration time, off the data path).
	free bool
	// deferred collects the handler's outbound effects (sends, replies).
	// Handlers execute instantly in real time, but their messages must
	// leave when the modeled execution *finishes*, so the runtime
	// flushes these after the service time elapses.
	deferred []func()
}

func (c *execCtx) charge(d sim.Time) {
	if !c.free {
		c.extra += d
	}
}

// later queues an outbound effect; OnInit contexts run immediately.
func (c *execCtx) later(fn func()) {
	if c.free {
		fn()
		return
	}
	c.deferred = append(c.deferred, fn)
}

// finish schedules the deferred effects to fire when the modeled
// service completes and returns the service time unchanged.
func (c *execCtx) finish(service sim.Time) sim.Time {
	if len(c.deferred) > 0 {
		fns := c.deferred
		c.deferred = nil
		if service <= 0 {
			service = 1
		}
		c.node.eng.After(service, func() {
			for _, fn := range fns {
				fn()
			}
		})
	}
	return service
}

// Now implements actor.Ctx.
func (c *execCtx) Now() sim.Time { return c.node.eng.Now() }

// Self implements actor.Ctx.
func (c *execCtx) Self() actor.ID { return c.a.ID }

// OnNIC implements actor.Ctx.
func (c *execCtx) OnNIC() bool { return c.onNIC }

// Send implements actor.Ctx: asynchronous message to another actor,
// wherever it lives.
func (c *execCtx) Send(dst actor.ID, m actor.Msg) {
	n := c.node
	m.Src = c.a.ID
	m.Dst = dst
	ref, ok := n.c.Table.Lookup(dst)
	if !ok {
		n.Dropped++
		return
	}
	if ref.Node != n.Name {
		// Remote: serialize to the wire. Hardware-assisted messaging on
		// the NIC (Figure 6); DPDK/ring costs on the host.
		size := len(m.Data) + 48
		if size < 64 {
			size = 64
		}
		if c.onNIC {
			c.charge(n.NICModel.NICSendCost.Cost(size))
		} else if n.Offloaded() {
			// Host egress via the NIC: stage into the ring.
			c.charge(n.HostModel.RingTxOcc)
		} else {
			c.charge(n.HostModel.DPDKTxOcc)
		}
		m.Via = actor.ViaWire
		m.WireSize = size
		c.later(func() {
			n.c.Net.Send(&netsim.Packet{
				Src: n.Name, Dst: ref.Node, Size: size,
				FlowID:  m.FlowID,
				Payload: m,
			})
		})
		return
	}
	// Local node. The destination side is re-resolved at flush time:
	// the target may migrate between handler execution and completion.
	switch {
	case c.onNIC && ref.OnNIC:
		c.charge(100 * sim.Nanosecond)
		c.later(func() { c.deliverLocalFromNIC(m) })
	case c.onNIC && !ref.OnNIC:
		c.charge(150 * sim.Nanosecond)
		c.later(func() { c.deliverLocalFromNIC(m) })
	case !c.onNIC && ref.OnNIC:
		c.charge(60*sim.Nanosecond + n.HostModel.RingTxOcc)
		c.later(func() { c.deliverLocalFromHost(m) })
	default:
		c.charge(80 * sim.Nanosecond)
		c.later(func() { c.deliverLocalFromHost(m) })
	}
}

// deliverLocalFromNIC routes a NIC-originated local message to wherever
// the destination lives now.
func (c *execCtx) deliverLocalFromNIC(m actor.Msg) {
	n := c.node
	ref, ok := n.c.Table.Lookup(m.Dst)
	switch {
	case !ok:
		n.Dropped++
	case ref.Node != n.Name:
		n.sendRemote(m, ref.Node, true)
	case ref.OnNIC:
		m.Via = actor.ViaLocal
		n.Sched.Arrive(m)
	default:
		n.forwardToHost(m)
	}
}

// deliverLocalFromHost routes a host-originated local message.
func (c *execCtx) deliverLocalFromHost(m actor.Msg) {
	n := c.node
	ref, ok := n.c.Table.Lookup(m.Dst)
	switch {
	case !ok:
		n.Dropped++
	case ref.Node != n.Name:
		n.sendRemote(m, ref.Node, false)
	case ref.OnNIC:
		m.Via = actor.ViaRing
		if _, err := n.Chan.HostPush(toRingMsg(m)); err != nil {
			mm := m
			n.eng.After(2*sim.Microsecond, func() { n.hostUnowned(mm) })
		}
	default:
		m.Via = actor.ViaLocal
		n.Host.Arrive(m)
	}
}

// Reply implements actor.Ctx: route a response to the external client
// that originated the request.
func (c *execCtx) Reply(m actor.Msg) {
	n := c.node
	if m.Reply == nil || m.Origin == "" {
		n.Dropped++
		return
	}
	size := m.WireSize
	if size < 64 {
		size = 64
	}
	if c.onNIC {
		c.charge(n.NICModel.NICSendCost.Cost(size))
	} else if n.Offloaded() {
		c.charge(n.HostModel.RingTxOcc)
	} else {
		c.charge(n.HostModel.DPDKTxOcc)
	}
	resp := m
	resp.Reply = nil
	c.later(func() {
		n.c.Net.Send(&netsim.Packet{
			Src: n.Name, Dst: m.Origin, Size: size,
			FlowID:  m.FlowID,
			Payload: RespEnvelope{Fn: m.Reply, Msg: resp},
		})
	})
}

// side returns where this execution's objects live.
func (c *execCtx) side() dmo.Side {
	if c.onNIC {
		return dmo.NIC
	}
	return dmo.Host
}

// dmoOverhead is the per-operation DMO address-translation cost (object
// ID → base address lookup), one of the three framework overheads the
// paper measures in §5.5.
func (c *execCtx) dmoOverhead(bytes int) sim.Time {
	if c.node.cfg.RawState {
		return 0
	}
	return 60*sim.Nanosecond + sim.Time(float64(bytes)*0.02)
}

// Alloc implements actor.Ctx.
func (c *execCtx) Alloc(size int) (uint64, error) {
	c.charge(200 * sim.Nanosecond)
	return c.node.Objects.Alloc(uint32(c.a.ID), size, c.side())
}

// Free implements actor.Ctx.
func (c *execCtx) Free(obj uint64) error {
	c.charge(150 * sim.Nanosecond)
	err := c.node.Objects.Free(uint32(c.a.ID), obj)
	c.note(err)
	return err
}

// ObjRead implements actor.Ctx.
func (c *execCtx) ObjRead(obj uint64, off, n int) ([]byte, error) {
	c.charge(c.dmoOverhead(n))
	p, err := c.node.Objects.Read(uint32(c.a.ID), obj, off, n)
	c.note(err)
	return p, err
}

// ObjWrite implements actor.Ctx.
func (c *execCtx) ObjWrite(obj uint64, off int, p []byte) error {
	c.charge(c.dmoOverhead(len(p)))
	err := c.node.Objects.Write(uint32(c.a.ID), obj, off, p)
	c.note(err)
	return err
}

// ObjMigrate implements actor.Ctx: move one object across PCIe. The
// issuing core only stages the transfer; the bytes move at migration
// bandwidth in the background.
func (c *execCtx) ObjMigrate(obj uint64) (int, error) {
	to := dmo.Host
	if !c.onNIC {
		to = dmo.NIC
	}
	n, err := c.node.Objects.MigrateObject(uint32(c.a.ID), obj, to)
	c.note(err)
	if err != nil {
		return 0, err
	}
	c.charge(300 * sim.Nanosecond) // descriptor staging
	return n, nil
}

// ObjMemset implements actor.Ctx (dmo_mmset).
func (c *execCtx) ObjMemset(obj uint64, off, n int, b byte) error {
	c.charge(c.dmoOverhead(n))
	err := c.node.Objects.Memset(uint32(c.a.ID), obj, off, n, b)
	c.note(err)
	return err
}

// ObjMemcpy implements actor.Ctx (dmo_mmcpy).
func (c *execCtx) ObjMemcpy(dst uint64, dstOff int, src uint64, srcOff, n int) error {
	c.charge(c.dmoOverhead(n))
	err := c.node.Objects.Memcpy(uint32(c.a.ID), dst, dstOff, src, srcOff, n)
	c.note(err)
	return err
}

// ObjMemmove implements actor.Ctx (dmo_mmmove).
func (c *execCtx) ObjMemmove(obj uint64, dstOff, srcOff, n int) error {
	c.charge(c.dmoOverhead(n))
	err := c.node.Objects.Memmove(uint32(c.a.ID), obj, dstOff, srcOff, n)
	c.note(err)
	return err
}

// note records isolation violations (wrong-actor accesses).
func (c *execCtx) note(err error) {
	if err == dmo.ErrWrongActor {
		c.node.Violations.Record(c.a.ID)
	}
}

// Accel implements actor.Ctx: invoke a hardware unit if this zone has
// one. Host cores report ok=false and the handler computes inline.
func (c *execCtx) Accel(name string, bytes, batch int) (sim.Time, bool) {
	if !c.onNIC || c.node.Accels == nil {
		return 0, false
	}
	cost, ok := c.node.Accels.Invoke(name, bytes, batch, nil)
	if !ok {
		return 0, false
	}
	c.charge(cost)
	return cost, true
}
