package core_test

import (
	"fmt"
	"testing"

	"repro/internal/actor"
	"repro/internal/apps/rkv"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

// TestRetryRecoversFromLoss: with injected packet loss, client
// timeout/retry recovers every echo request.
func TestRetryRecoversFromLoss(t *testing.T) {
	cl := core.NewCluster(21)
	cl.Net.LossRate = 0.1
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350()})
	n.Register(&actor.Actor{
		ID: 1,
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			ctx.Reply(m)
			return sim.Microsecond
		},
	}, true, 0)
	client := workload.NewClient(cl, "cli", 10)
	const reqs = 300
	for i := 0; i < reqs; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*20*sim.Microsecond, func() {
			client.Send(workload.Request{
				Node: "srv", Dst: 1, Size: 256, FlowID: uint64(i),
				Timeout: 200 * sim.Microsecond, Retries: 8,
			})
		})
	}
	cl.Eng.Run()
	if client.Received != reqs {
		t.Fatalf("received %d of %d despite retries (lost=%d retried=%d)",
			client.Received, reqs, cl.Net.Lost(), client.Retried)
	}
	if cl.Net.Lost() == 0 || client.Retried == 0 {
		t.Fatalf("loss injection inert: lost=%d retried=%d", cl.Net.Lost(), client.Retried)
	}
}

// TestNoRetryLosesUnderLoss is the control: without retries, loss shows
// up as missing responses.
func TestNoRetryLosesUnderLoss(t *testing.T) {
	cl := core.NewCluster(22)
	cl.Net.LossRate = 0.2
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350()})
	n.Register(&actor.Actor{
		ID: 1,
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			ctx.Reply(m)
			return sim.Microsecond
		},
	}, true, 0)
	client := workload.NewClient(cl, "cli", 10)
	for i := 0; i < 200; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*10*sim.Microsecond, func() {
			client.Send(workload.Request{Node: "srv", Dst: 1, Size: 256, FlowID: uint64(i)})
		})
	}
	cl.Eng.Run()
	if client.Received == client.Sent {
		t.Fatal("20% loss lost nothing — injection broken")
	}
}

// TestPaxosToleratesSingleLinkLoss: with modest loss and client
// retries, the replicated KV store stays correct — Multi-Paxos commits
// with any majority, and a retried write lands in a fresh instance.
func TestPaxosToleratesSingleLinkLoss(t *testing.T) {
	cl := core.NewCluster(23)
	cl.Net.LossRate = 0.03
	var nodes []*core.Node
	for i := 0; i < 3; i++ {
		nodes = append(nodes, cl.AddNode(core.Config{
			Name: fmt.Sprintf("kv%d", i), NIC: spec.LiquidIOII_CN2350(),
		}))
	}
	d, err := rkv.Deploy(nodes, 100, 1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	leader := d.LeaderActor()
	client := workload.NewClient(cl, "cli", 10)
	const writes = 100
	acked := 0
	for i := 0; i < writes; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*100*sim.Microsecond, func() {
			client.Send(workload.Request{
				Node: "kv0", Dst: leader, Kind: rkv.KindReq,
				Data: rkv.PutReq([]byte(fmt.Sprintf("k%03d", i)), []byte("v")),
				Size: 256, FlowID: uint64(i),
				Timeout: 2 * sim.Millisecond, Retries: 5,
				OnResp: func(resp actor.Msg) {
					if rkv.StatusOf(resp.Data) == rkv.StatusOK {
						acked++
					}
				},
			})
		})
	}
	cl.Eng.Run()
	if acked != writes {
		t.Fatalf("acked %d of %d writes under loss (lost=%d)", acked, writes, cl.Net.Lost())
	}
	// Every acked key is readable at the leader afterwards.
	misses := 0
	done := 0
	for i := 0; i < writes; i++ {
		i := i
		client.Send(workload.Request{
			Node: "kv0", Dst: leader, Kind: rkv.KindReq,
			Data: rkv.GetReq([]byte(fmt.Sprintf("k%03d", i))), Size: 256,
			Timeout: 2 * sim.Millisecond, Retries: 5,
			OnResp: func(resp actor.Msg) {
				done++
				if rkv.StatusOf(resp.Data) != rkv.StatusOK {
					misses++
				}
			},
		})
	}
	cl.Eng.Run()
	if done != writes || misses != 0 {
		t.Fatalf("reads: done=%d misses=%d", done, misses)
	}
}
