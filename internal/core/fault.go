package core

import (
	"sort"

	"repro/internal/actor"
	"repro/internal/dmo"
)

// This file is the runtime side of failure injection (internal/fault
// schedules the events; the mechanisms live here):
//
//   - Fail/Recover crash and restart a whole node. While down, the node
//     drops arriving traffic and drains queued work without executing
//     handlers — no state mutates, no reply leaves. Actor state (DMO
//     regions, Paxos logs, stores) survives the restart, modeling the
//     battery-backed/persistent memory a production deployment would
//     use; recovery correctness then rests on the protocols (ballot
//     checks, lock leases, client retries), which is what the fault
//     experiments drive.
//   - FailNIC/RecoverNIC kill only the SmartNIC processing complex: the
//     scheduler's actors re-home to the host (the §3.2.5 migration
//     machinery, minus the dead NIC cores' cooperation) and ingress
//     falls back to the host path until the NIC returns.
//   - SetNICSlowdown dilates NIC-core service times, modeling an
//     overload burst or thermal throttle.
//
// Cluster.OnMembership lets deployment layers (leader failover, txn
// sweepers) observe crash/recovery transitions.

// OnMembership registers a listener invoked whenever a node crashes
// (down=true) or recovers (down=false). Listeners run synchronously in
// registration order; they model the deployment's failure detector, so
// reactions should be scheduled After a detection delay, not taken
// instantly.
func (c *Cluster) OnMembership(fn func(node string, down bool)) {
	c.onMembership = append(c.onMembership, fn)
}

func (c *Cluster) notifyMembership(node string, down bool) {
	for _, fn := range c.onMembership {
		fn(node, down)
	}
}

// Cluster returns the cluster this node belongs to.
func (n *Node) Cluster() *Cluster { return n.c }

// Down reports whether the node is currently crashed.
func (n *Node) Down() bool { return n.down }

// NICDown reports whether the node's SmartNIC complex is failed.
func (n *Node) NICDown() bool { return n.nicDown }

// Fail crashes the node: all traffic addressed to it drops, queued work
// drains without executing, and in-flight responses it already emitted
// still propagate (they left the wire before the crash). Idempotent.
func (n *Node) Fail() {
	if n.down {
		return
	}
	n.down = true
	n.c.notifyMembership(n.Name, true)
}

// Recover restarts a crashed node with its durable actor state intact.
// Idempotent.
func (n *Node) Recover() {
	if !n.down {
		return
	}
	n.down = false
	n.c.notifyMembership(n.Name, false)
}

// SetNICSlowdown dilates NIC-core service times by factor (> 1); a
// factor ≤ 1 restores normal speed. No-op on baseline nodes.
func (n *Node) SetNICSlowdown(factor float64) {
	if factor <= 1 {
		n.nicSlowdown = 0
		return
	}
	n.nicSlowdown = factor
}

// FailNIC kills the SmartNIC processing complex alone: every NIC-resident
// actor re-homes to the host (state moves over PCIe via the DMO store, as
// a crash-triggered variant of the §3.2.5 push migration), and ingress
// traffic takes the host path until RecoverNIC. Baseline nodes and
// already-failed NICs are no-ops.
func (n *Node) FailNIC() {
	if n.Sched == nil || n.nicDown {
		return
	}
	n.nicDown = true
	// The re-homing is a cluster-visible placement change, so it runs at
	// a commit point like any migration commit (migrate.go): inline on a
	// classic cluster, at the next window boundary on a partitioned one.
	// Eligibility is evaluated at commit time — an actor whose deferred
	// migration commit landed first is already host-resident, and one
	// still mid-flight is left to the migration machinery: a push commit
	// lands it on the host anyway, and a pull commit sees nicDown and
	// bounces it back (pullFromHost's dead-hardware guard).
	n.commit(func() {
		// Deterministic re-homing order: sorted actor IDs, never map order.
		ids := make([]actor.ID, 0, len(n.actors))
		for id := range n.actors {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			ref, ok := n.c.Table.Lookup(id)
			if !ok || ref.Node != n.Name || !ref.OnNIC {
				continue
			}
			a := n.actors[id]
			if a.State.InFlight() {
				continue
			}
			n.Sched.RemoveActor(id)
			n.Objects.MigrateActor(uint32(id), dmo.Host)
			n.Host.AddActor(a)
			n.c.Table.Set(id, actor.Ref{Node: n.Name, OnNIC: false})
			for _, m := range a.Mailbox.Drain() {
				m.Via = actor.ViaRing
				n.Host.Arrive(m)
			}
		}
	})
}

// RecoverNIC brings the SmartNIC complex back. Re-homed actors stay on
// the host; the scheduler's pull-migration policy moves them back when
// it sees spare NIC capacity, exactly as for any other host actor.
func (n *Node) RecoverNIC() {
	n.nicDown = false
}

// Inject delivers a message directly into the node's runtime, as a
// co-located control plane (an operator console, a failure detector)
// would. The message routes to whichever side currently owns the
// destination actor; a crashed node drops it.
func (n *Node) Inject(m actor.Msg) {
	if n.down {
		n.DownDrops++
		return
	}
	ref, ok := n.c.Table.Lookup(m.Dst)
	if !ok || ref.Node != n.Name {
		n.Dropped++
		return
	}
	m.Via = actor.ViaLocal
	if ref.OnNIC && n.Sched != nil && !n.nicDown {
		n.Sched.Arrive(m)
		return
	}
	n.Host.Arrive(m)
}
