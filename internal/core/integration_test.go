package core_test

import (
	"fmt"
	"testing"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

// TestOffPathNICEndToEnd runs the echo flow on a Stingray: no hardware
// traffic manager, so the scheduler uses the software shuffle layer
// with work stealing (§3.2.6).
func TestOffPathNICEndToEnd(t *testing.T) {
	cl := core.NewCluster(5)
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.Stingray_PS225()})
	n.Register(&actor.Actor{
		ID: 1,
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			ctx.Reply(m)
			return 2 * sim.Microsecond
		},
	}, true, 0)
	client := workload.NewClient(cl, "cli", 25)
	// Two flows only: the shuffle layer must steal to balance.
	for i := 0; i < 200; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*2*sim.Microsecond, func() {
			client.Send(workload.Request{Node: "srv", Dst: 1, Size: 512, FlowID: uint64(i % 2)})
		})
	}
	cl.Eng.Run()
	if client.Received != 200 {
		t.Fatalf("received %d of 200 via shuffle layer", client.Received)
	}
}

// TestBlueFieldNode exercises the RDMA-profile card: rings ride the
// higher-latency verb path, and the wimpy 0.8GHz cores charge more per
// handler than the Stingray.
func TestBlueFieldNode(t *testing.T) {
	run := func(model *spec.NICModel) float64 {
		cl := core.NewCluster(6)
		n := cl.AddNode(core.Config{Name: "srv", NIC: model})
		n.Register(&actor.Actor{
			ID: 1,
			OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
				ctx.Reply(m)
				return 10 * sim.Microsecond
			},
		}, true, 0)
		client := workload.NewClient(cl, "cli", 25)
		for i := 0; i < 50; i++ {
			i := i
			cl.Eng.At(sim.Time(i)*50*sim.Microsecond, func() {
				client.Send(workload.Request{Node: "srv", Dst: 1, Size: 512, FlowID: uint64(i)})
			})
		}
		cl.Eng.Run()
		if client.Received != 50 {
			t.Fatalf("%s: received %d of 50", model.Name, client.Received)
		}
		return client.Lat.Percentile(50)
	}
	bf := run(spec.BlueField_1M332A())
	sr := run(spec.Stingray_PS225())
	if bf <= sr {
		t.Fatalf("0.8GHz BlueField p50 %.2fµs should exceed 3GHz Stingray %.2fµs", bf, sr)
	}
}

// TestTinyRingBackpressure forces the host↔NIC rings to fill so the
// retry path (ErrRingFull → backoff) is exercised without losing
// messages.
func TestTinyRingBackpressure(t *testing.T) {
	cl := core.NewCluster(8)
	n := cl.AddNode(core.Config{
		Name: "srv", NIC: spec.LiquidIOII_CN2350(),
		RingSlots: 8, RingBatch: 1,
	})
	served := 0
	sink := &actor.Actor{
		ID: 2, Name: "sink", PinHost: true,
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			served++
			return 20 * sim.Microsecond // slow consumer: the ring backs up
		},
	}
	n.Register(sink, false, 0)
	client := workload.NewClient(cl, "cli", 10)
	// A burst far larger than the 8-slot ring.
	for i := 0; i < 100; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*sim.Microsecond, func() {
			client.Send(workload.Request{Node: "srv", Dst: 2, Size: 256, FlowID: uint64(i)})
		})
	}
	cl.Eng.Run()
	if served != 100 {
		t.Fatalf("served %d of 100 through an 8-slot ring (backpressure lost messages)", served)
	}
	if n.Chan.ToHost().CreditSyncs == 0 {
		t.Fatal("no credit syncs despite ring pressure")
	}
}

// TestHostToNICRingDirection drives the host→NIC direction hard: a
// host-pinned producer fans messages to a NIC-resident consumer.
func TestHostToNICRingDirection(t *testing.T) {
	cl := core.NewCluster(9)
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350()})
	got := 0
	nicSink := &actor.Actor{
		ID: 3, Name: "nic-sink", PinNIC: true,
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			got++
			return sim.Microsecond
		},
	}
	producer := &actor.Actor{
		ID: 4, Name: "producer", PinHost: true,
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			for k := 0; k < 10; k++ {
				ctx.Send(3, actor.Msg{Kind: 7, Data: []byte{byte(k)}})
			}
			return 2 * sim.Microsecond
		},
	}
	n.Register(nicSink, true, 0)
	n.Register(producer, false, 0)
	client := workload.NewClient(cl, "cli", 10)
	for i := 0; i < 20; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*30*sim.Microsecond, func() {
			client.Send(workload.Request{Node: "srv", Dst: 4, Size: 128, FlowID: uint64(i)})
		})
	}
	cl.Eng.Run()
	if got != 200 {
		t.Fatalf("NIC sink saw %d of 200 host-originated messages", got)
	}
}

// TestPinnedPlacementRespected verifies PinHost/PinNIC override the
// requested placement at registration.
func TestPinnedPlacementRespected(t *testing.T) {
	cl := core.NewCluster(10)
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350()})
	h := &actor.Actor{ID: 1, PinHost: true, OnMessage: func(actor.Ctx, actor.Msg) sim.Time { return 0 }}
	nn := &actor.Actor{ID: 2, PinNIC: true, OnMessage: func(actor.Ctx, actor.Msg) sim.Time { return 0 }}
	n.Register(h, true, 0)   // asked NIC, pinned host
	n.Register(nn, false, 0) // asked host, pinned NIC
	if ref, _ := cl.Table.Lookup(1); ref.OnNIC {
		t.Fatal("PinHost actor landed on the NIC")
	}
	if ref, _ := cl.Table.Lookup(2); !ref.OnNIC {
		t.Fatal("PinNIC actor landed on the host")
	}
}

// TestBaselineNodeForcesHostPlacement verifies nodes without a SmartNIC
// place everything on the host regardless of the request.
func TestBaselineNodeForcesHostPlacement(t *testing.T) {
	cl := core.NewCluster(11)
	n := cl.AddNode(core.Config{Name: "srv"})
	a := &actor.Actor{ID: 1, OnMessage: func(actor.Ctx, actor.Msg) sim.Time { return 0 }}
	if err := n.Register(a, true, 0); err != nil {
		t.Fatal(err)
	}
	if ref, _ := cl.Table.Lookup(1); ref.OnNIC {
		t.Fatal("baseline node claims NIC placement")
	}
}

// TestManyActorsManyNodes is a soak: 4 nodes × 8 actors with cross-node
// chatter; everything must drain with no drops.
func TestManyActorsManyNodes(t *testing.T) {
	cl := core.NewCluster(12)
	const nodes = 4
	const perNode = 8
	for ni := 0; ni < nodes; ni++ {
		n := cl.AddNode(core.Config{Name: fmt.Sprintf("n%d", ni), NIC: spec.LiquidIOII_CN2350()})
		for ai := 0; ai < perNode; ai++ {
			id := actor.ID(ni*perNode + ai + 1)
			peer := actor.ID((int(id) % (nodes * perNode)) + 1)
			n.Register(&actor.Actor{
				ID: id,
				OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
					if m.Kind == 1 && len(m.Data) > 0 && m.Data[0] > 0 {
						ctx.Send(peer, actor.Msg{Kind: 1, Data: []byte{m.Data[0] - 1}})
					}
					if m.Reply != nil {
						ctx.Reply(m)
					}
					return sim.Microsecond
				},
			}, ai%2 == 0, 0)
		}
	}
	client := workload.NewClient(cl, "cli", 10)
	for i := 0; i < 64; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*20*sim.Microsecond, func() {
			client.Send(workload.Request{
				Node: fmt.Sprintf("n%d", i%nodes), Dst: actor.ID(i%(nodes*perNode) + 1),
				Kind: 1, Data: []byte{8}, Size: 256, FlowID: uint64(i),
			})
		})
	}
	cl.Eng.Run()
	if client.Received != 64 {
		t.Fatalf("received %d of 64", client.Received)
	}
	var drops uint64
	for ni := 0; ni < nodes; ni++ {
		drops += cl.Node(fmt.Sprintf("n%d", ni)).Dropped
	}
	if drops != 0 {
		t.Fatalf("%d messages dropped in the mesh", drops)
	}
}

// TestDeterminism: identical seeds give identical traces; different
// seeds differ.
func TestDeterminism(t *testing.T) {
	run := func(seed uint64) (uint64, float64) {
		cl := core.NewCluster(seed)
		n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350()})
		n.Register(&actor.Actor{
			ID: 1,
			OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
				ctx.Reply(m)
				return sim.Time(1000 + cl.Eng.Rand().Intn(5000))
			},
		}, true, 0)
		client := workload.NewClient(cl, "cli", 10)
		client.OpenLoop(300000, 3*sim.Millisecond, func(i uint64) workload.Request {
			return workload.Request{Node: "srv", Dst: 1, Size: 256, FlowID: i}
		})
		cl.Eng.Run()
		return client.Received, client.Lat.Percentile(99)
	}
	r1, p1 := run(77)
	r2, p2 := run(77)
	if r1 != r2 || p1 != p2 {
		t.Fatalf("same seed diverged: %d/%f vs %d/%f", r1, p1, r2, p2)
	}
	r3, p3 := run(78)
	if r1 == r3 && p1 == p3 {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}
