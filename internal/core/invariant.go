package core

import (
	"repro/internal/invariant"
)

// This file wires internal/invariant into the node runtime, mirroring
// the obs wiring in obs.go: one checker per cluster, threaded into the
// network fabric and into every current and future node's scheduler,
// message rings, traffic gate, and DMO store.

// EnableInvariants attaches a runtime invariant checker to the cluster.
// Call at most once, before the engine runs (the FIFO and byte-shadow
// audits must see every push/alloc from the start); a nil checker is
// ignored. The fault injector picks the checker up at Install time and
// stamps a fingerprint epoch at every fault activation/restoration.
func (c *Cluster) EnableInvariants(chk *invariant.Checker) {
	if chk == nil || c.checker != nil {
		return
	}
	c.checker = chk
	c.Net.EnableInvariants(chk)
	for _, name := range c.nodeNames() {
		c.nodes[name].enableInvariants(chk)
	}
}

// Checker returns the cluster's invariant checker (nil when checking is
// disabled — the nil receiver is the no-op state).
func (c *Cluster) Checker() *invariant.Checker { return c.checker }

func (n *Node) enableInvariants(chk *invariant.Checker) {
	if n.Sched != nil {
		n.Sched.EnableInvariants(chk, n.Name)
	}
	if n.Chan != nil {
		n.Chan.EnableInvariants(chk, n.Name)
	}
	if n.Gate != nil {
		n.Gate.EnableInvariants(chk)
	}
	n.Objects.EnableInvariants(chk, n.Name)
}
