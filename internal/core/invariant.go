package core

import (
	"repro/internal/invariant"
)

// This file wires internal/invariant into the node runtime, mirroring
// the obs wiring in obs.go: one checker per cluster, threaded into the
// network fabric and into every current and future node's scheduler,
// message rings, traffic gate, and DMO store.

// EnableInvariants attaches a runtime invariant checker to the cluster.
// Call at most once, before the engine runs (the FIFO and byte-shadow
// audits must see every push/alloc from the start); a nil checker is
// ignored. The fault injector picks the checker up at Install time and
// stamps a fingerprint epoch at every fault activation/restoration.
func (c *Cluster) EnableInvariants(chk *invariant.Checker) {
	if chk == nil || len(c.checkers) > 0 {
		return
	}
	if c.Partitions() > 1 {
		panic("core: partitioned clusters take one checker per partition (AttachCheckers)")
	}
	c.checker = chk
	c.checkers = []*invariant.Checker{chk}
	c.Net.EnableInvariants(chk)
	for _, name := range c.nodeNames() {
		c.nodes[name].enableInvariants(chk)
	}
}

// AttachCheckers creates and wires one invariant checker per engine
// partition — the granularity conservation must be checked at under
// PDES, since each partition's ledger only sees its own events (cross-
// partition packets are reconciled by the handoff counters). On classic
// clusters it is EnableInvariants with a single fresh checker. Returns
// the checkers, in partition order; idempotent.
func (c *Cluster) AttachCheckers() []*invariant.Checker {
	if len(c.checkers) > 0 {
		return c.checkers
	}
	if c.Partitions() <= 1 {
		c.EnableInvariants(invariant.New(c.Eng))
		return c.checkers
	}
	c.checkers = make([]*invariant.Checker, c.Partitions())
	for p := range c.checkers {
		chk := invariant.New(c.Group.Engine(p))
		c.checkers[p] = chk
		c.Net.EnableInvariantsAt(p, chk)
	}
	c.checker = c.checkers[0]
	for _, name := range c.nodeNames() {
		n := c.nodes[name]
		n.enableInvariants(c.checkers[n.Part])
	}
	return c.checkers
}

// Checker returns the cluster's invariant checker (nil when checking is
// disabled — the nil receiver is the no-op state).
func (c *Cluster) Checker() *invariant.Checker { return c.checker }

// CheckerAt returns the invariant checker owning partition part (the
// single cluster checker on classic clusters; nil when checking is
// disabled — the nil receiver is the no-op state).
func (c *Cluster) CheckerAt(part int) *invariant.Checker {
	if part >= 0 && part < len(c.checkers) {
		return c.checkers[part]
	}
	return c.checker
}

// Checkers returns the attached checkers in partition order (length 1
// on classic clusters; nil when checking is disabled). Cluster-wide
// fault arms epoch every partition's ledger at the barrier time, and
// the replay harness reconciles their handoff counters cross-partition
// (invariant.CrossCheckHandoffs).
func (c *Cluster) Checkers() []*invariant.Checker { return c.checkers }

func (n *Node) enableInvariants(chk *invariant.Checker) {
	if n.Sched != nil {
		n.Sched.EnableInvariants(chk, n.Name)
	}
	if n.Chan != nil {
		n.Chan.EnableInvariants(chk, n.Name)
	}
	if n.Gate != nil {
		n.Gate.EnableInvariants(chk)
	}
	n.Objects.EnableInvariants(chk, n.Name)
}
