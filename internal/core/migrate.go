package core

import (
	"repro/internal/actor"
	"repro/internal/dmo"
	"repro/internal/sim"
)

// pushToHost runs the 4-phase NIC→host actor migration of §3.2.5:
//
//	Phase 1 (Prepare): the actor removes itself from the runtime
//	  dispatcher (and the DRR runnable queue); new requests buffer in
//	  the iPipe runtime.
//	Phase 2 (Ready): the actor finishes its in-flight work — for a DRR
//	  actor, every request already in its mailbox.
//	Phase 3 (Gone): the actor's distributed memory objects move to the
//	  host runtime and the host actor starts.
//	Phase 4 (Clean): buffered requests are forwarded to the host with
//	  rewritten destinations.
//
// The scheduler has already set the actor's state to Prepare and is
// holding the migration latch; we release it at the end.
func (n *Node) pushToHost(a *actor.Actor) {
	rec := MigrationRecord{Actor: a.Name, Start: n.eng.Now()}
	start := n.eng.Now()

	// Phase 1: state transition, dispatcher and runnable-queue removal,
	// runtime locking. Lightweight (Appendix B.3).
	pending := a.Mailbox.Drain() // in-flight work to finish in phase 2
	p1 := 200 * sim.Microsecond
	n.eng.After(p1, func() {
		rec.Phase[0] = n.eng.Now() - start
		phase2Start := n.eng.Now()

		// Phase 2: execute remaining requests for real so no state is
		// lost, charging their NIC-core service time sequentially.
		var p2 sim.Time
		for _, m := range pending {
			p2 += n.runOnNIC(a, m)
		}
		p2 += 50 * sim.Microsecond // drain barrier on executing cores
		a.State = actor.Ready
		n.eng.After(p2, func() {
			rec.Phase[1] = n.eng.Now() - phase2Start
			phase3Start := n.eng.Now()

			// Phase 3: move the DMOs across PCIe and start the host
			// actor. Cost is dominated by object bytes (Figure 18).
			bytes := n.Objects.MigrateActor(uint32(a.ID), dmo.Host)
			rec.BytesMoved = bytes
			p3 := 300*sim.Microsecond + sim.Time(float64(bytes)/migrationBandwidthGBs)
			n.eng.After(p3, func() {
				rec.Phase[2] = n.eng.Now() - phase3Start
				phase4Start := n.eng.Now()

				a.State = actor.Gone
				n.Sched.RemoveActor(a.ID)
				n.Host.AddActor(a)
				n.c.Table.Set(a.ID, actor.Ref{Node: n.Name, OnNIC: false})

				// Phase 4: forward requests buffered during migration,
				// rewriting their destination to the host runtime.
				buffered := a.Mailbox.Drain()
				rec.Buffered = len(buffered)
				p4 := sim.Time(len(buffered)) * 2 * sim.Microsecond
				n.eng.After(p4, func() {
					rec.Phase[3] = n.eng.Now() - phase4Start
					for _, m := range buffered {
						m.Via = actor.ViaRing
						n.Host.Arrive(m)
					}
					a.State = actor.Stable
					n.Migrations = append(n.Migrations, rec)
					n.Sched.MigrationDone()
				})
			})
		})
	})
}

// pullFromHost brings the least-loaded host actor back to the NIC when
// the SmartNIC has spare capacity (§3.2.5). Only the NIC initiates
// migration in either direction.
func (n *Node) pullFromHost() bool {
	if n.nicDown || n.down {
		return false
	}
	a := n.Host.LeastLoadedActor()
	if a == nil {
		return false
	}
	a.State = actor.Prepare
	n.Host.RemoveActor(a.ID)
	// Host actors run shared-nothing; in-flight messages route through
	// hostUnowned once the table flips. Move objects, then start the
	// NIC actor.
	bytes := n.Objects.MigrateActor(uint32(a.ID), dmo.NIC)
	d := 200*sim.Microsecond + sim.Time(float64(bytes)/migrationBandwidthGBs)
	n.eng.After(d, func() {
		n.Sched.AddActor(a)
		n.c.Table.Set(a.ID, actor.Ref{Node: n.Name, OnNIC: true})
		a.State = actor.Stable
		// Requests buffered while the actor was in flight resume on the
		// NIC side.
		for _, m := range a.Mailbox.Drain() {
			n.Sched.Arrive(m)
		}
		n.Sched.MigrationDone()
	})
	return true
}

// MigrateNow forces a push migration outside the scheduler's policy
// (used by the Figure 18 experiment to trigger migrations on demand).
func (n *Node) MigrateNow(id actor.ID) bool {
	if n.Sched == nil {
		return false
	}
	a, ok := n.Sched.Actor(id)
	if !ok || a.State != actor.Stable {
		return false
	}
	a.State = actor.Prepare
	n.pushToHost(a)
	return true
}
