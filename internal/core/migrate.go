package core

import (
	"repro/internal/actor"
	"repro/internal/dmo"
	"repro/internal/sim"
)

// Migration under PDES (DESIGN.md §13): the 4-phase protocol splits
// into node-local phases — drain, in-flight execution, the DMO move —
// that run on the owning partition's engine, and one cluster-visible
// *commit* — the actor-table rewrite, the host/NIC registration, the
// buffered-request re-dispatch — that must not race the other
// partitions' table reads. commit routes the latter: inline on a
// classic cluster (byte-identical to the pre-PDES behavior), deferred
// to the next conservative-window boundary on a partitioned one
// (sim.Group.DeferBarrier), where the coordinator applies it with no
// window in flight, in partition order — a pure function of the round
// structure, so results are identical at any worker count.
func (n *Node) commit(fn func()) {
	if n.c.Group != nil {
		n.c.Group.DeferBarrier(n.Part, fn)
		return
	}
	fn()
}

// pushToHost runs the 4-phase NIC→host actor migration of §3.2.5:
//
//	Phase 1 (Prepare): the actor removes itself from the runtime
//	  dispatcher (and the DRR runnable queue); new requests buffer in
//	  the iPipe runtime.
//	Phase 2 (Ready): the actor finishes its in-flight work — for a DRR
//	  actor, every request already in its mailbox.
//	Phase 3 (Gone): the actor's distributed memory objects move to the
//	  host runtime and the host actor starts.
//	Phase 4 (Clean): buffered requests are forwarded to the host with
//	  rewritten destinations.
//
// The scheduler has already set the actor's state to Prepare and is
// holding the migration latch; we release it at the end. The phase-3→4
// hand-off is the commit point: everything before it is partition-local
// and everything at it goes through commit (see above).
func (n *Node) pushToHost(a *actor.Actor) {
	chk := n.c.CheckerAt(n.Part)
	chk.MigrateBegin(n.Name, a.Name, true)
	rec := MigrationRecord{Actor: a.Name, Start: n.eng.Now()}
	start := n.eng.Now()

	// Phase 1: state transition, dispatcher and runnable-queue removal,
	// runtime locking. Lightweight (Appendix B.3).
	pending := a.Mailbox.Drain() // in-flight work to finish in phase 2
	p1 := 200 * sim.Microsecond
	n.eng.After(p1, func() {
		rec.Phase[0] = n.eng.Now() - start
		phase2Start := n.eng.Now()

		// Phase 2: execute remaining requests for real so no state is
		// lost, charging their NIC-core service time sequentially.
		var p2 sim.Time
		for _, m := range pending {
			p2 += n.runOnNIC(a, m)
		}
		p2 += 50 * sim.Microsecond // drain barrier on executing cores
		a.State = actor.Ready
		n.eng.After(p2, func() {
			rec.Phase[1] = n.eng.Now() - phase2Start
			phase3Start := n.eng.Now()

			// Phase 3: move the DMOs across PCIe and start the host
			// actor. Cost is dominated by object bytes (Figure 18).
			bytes := n.Objects.MigrateActor(uint32(a.ID), dmo.Host)
			rec.BytesMoved = bytes
			p3 := 300*sim.Microsecond + sim.Time(float64(bytes)/migrationBandwidthGBs)
			n.eng.After(p3, func() {
				rec.Phase[2] = n.eng.Now() - phase3Start
				// Node-local side of the hand-off: the NIC dispatcher
				// forgets the actor; arrivals keep buffering (Gone
				// forwards to the host, where hostUnowned parks them in
				// the mailbox until the commit lands).
				a.State = actor.Gone
				n.Sched.RemoveActor(a.ID)

				n.commit(func() {
					if _, live := n.actors[a.ID]; !live {
						// Killed (watchdog/crash drain) while in flight:
						// don't resurrect it on the host — just release
						// the latch so the node can migrate again.
						chk.MigrateAbort(n.Name, a.Name, true)
						n.Sched.MigrationDone()
						return
					}
					phase4Start := n.eng.Now()
					n.Host.AddActor(a)
					n.c.Table.Set(a.ID, actor.Ref{Node: n.Name, OnNIC: false})

					// Phase 4: forward requests buffered during migration,
					// rewriting their destination to the host runtime.
					buffered := a.Mailbox.Drain()
					rec.Buffered = len(buffered)
					chk.MigrateCommit(n.Name, a.Name, true, bytes, len(buffered))
					n.obsMigrateCommit(a, true, rec.Start, bytes)
					p4 := sim.Time(len(buffered)) * 2 * sim.Microsecond
					n.eng.After(p4, func() {
						rec.Phase[3] = n.eng.Now() - phase4Start
						for _, m := range buffered {
							m.Via = actor.ViaRing
							n.Host.Arrive(m)
						}
						chk.MigrateForward(n.Name, len(buffered))
						a.State = actor.Stable
						n.Migrations = append(n.Migrations, rec)
						n.Sched.MigrationDone()
					})
				})
			})
		})
	})
}

// pullFromHost brings the least-loaded host actor back to the NIC when
// the SmartNIC has spare capacity (§3.2.5). Only the NIC initiates
// migration in either direction. The NIC-side start — Sched.AddActor,
// the table flip, the buffered re-dispatch — is the commit point and
// goes through commit, like the push path's phase-3→4 hand-off.
func (n *Node) pullFromHost() bool {
	if n.nicDown || n.down {
		return false
	}
	a := n.Host.LeastLoadedActor()
	if a == nil {
		return false
	}
	chk := n.c.CheckerAt(n.Part)
	chk.MigrateBegin(n.Name, a.Name, false)
	rec := MigrationRecord{Actor: a.Name, Start: n.eng.Now(), Pull: true}
	a.State = actor.Prepare
	n.Host.RemoveActor(a.ID)
	// Host actors run shared-nothing; in-flight messages route through
	// hostUnowned once the table flips. Move objects, then start the
	// NIC actor.
	bytes := n.Objects.MigrateActor(uint32(a.ID), dmo.NIC)
	rec.BytesMoved = bytes
	d := 200*sim.Microsecond + sim.Time(float64(bytes)/migrationBandwidthGBs)
	n.eng.After(d, func() {
		n.commit(func() {
			if _, live := n.actors[a.ID]; !live {
				chk.MigrateAbort(n.Name, a.Name, false)
				n.Sched.MigrationDone()
				return
			}
			if n.nicDown || n.down {
				// The NIC complex died while the objects were in flight
				// (the crash re-homing skips mid-migration actors and
				// leaves them to us): bounce the actor back to the host
				// instead of starting it on dead cores.
				n.Objects.MigrateActor(uint32(a.ID), dmo.Host)
				n.Host.AddActor(a)
				n.c.Table.Set(a.ID, actor.Ref{Node: n.Name, OnNIC: false})
				a.State = actor.Stable
				buffered := a.Mailbox.Drain()
				for _, m := range buffered {
					m.Via = actor.ViaRing
					n.Host.Arrive(m)
				}
				chk.MigrateAbort(n.Name, a.Name, false)
				n.Sched.MigrationDone()
				return
			}
			n.Sched.AddActor(a)
			n.c.Table.Set(a.ID, actor.Ref{Node: n.Name, OnNIC: true})
			rec.Phase[2] = n.eng.Now() - rec.Start // object move + commit wait
			a.State = actor.Stable
			// Requests buffered while the actor was in flight resume on the
			// NIC side.
			buffered := a.Mailbox.Drain()
			rec.Buffered = len(buffered)
			chk.MigrateCommit(n.Name, a.Name, false, bytes, len(buffered))
			n.obsMigrateCommit(a, false, rec.Start, bytes)
			for _, m := range buffered {
				n.Sched.Arrive(m)
			}
			chk.MigrateForward(n.Name, len(buffered))
			n.Migrations = append(n.Migrations, rec)
			n.Sched.MigrationDone()
		})
	})
	return true
}

// MigrateNow forces a push migration outside the scheduler's policy
// (used by the Figure 18 experiment and the migrate-pdes family to
// trigger migrations on demand). It acquires the scheduler's single-
// migration latch — returning false when a policy- or forced migration
// is already in flight, instead of interleaving with it — and refuses
// to run the 4-phase protocol against dead hardware: a crashed node or
// a failed NIC complex defers to the fault-path re-homing (FailNIC).
func (n *Node) MigrateNow(id actor.ID) bool {
	if n.Sched == nil || n.down || n.nicDown {
		return false
	}
	a, ok := n.Sched.Actor(id)
	if !ok || a.State != actor.Stable {
		return false
	}
	if !n.Sched.TryLatchMigration() {
		return false
	}
	a.State = actor.Prepare
	n.pushToHost(a)
	return true
}

// PullNow forces a pull migration of the least-loaded host actor — the
// symmetric forced API to MigrateNow, under the same latch and
// dead-hardware rules. Returns false when no host actor is eligible.
func (n *Node) PullNow() bool {
	if n.Sched == nil || n.down || n.nicDown {
		return false
	}
	if !n.Sched.TryLatchMigration() {
		return false
	}
	if !n.pullFromHost() {
		n.Sched.MigrationDone()
		return false
	}
	return true
}
