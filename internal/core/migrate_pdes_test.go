package core_test

// Migration-path regression tests: the forced-migration latch and
// dead-hardware guards (classic clusters), pull-migration records, and
// the window-boundary migration commit on partitioned (PDES) clusters,
// including fault arms landing between migration phases.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/dmo"
	"repro/internal/invariant"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

// TestMigrateNowHoldsLatch: a forced migration acquires the scheduler's
// single-migration latch, so a second forced migration while one is in
// flight is refused instead of interleaving with it and double-running
// MigrationDone. (Before the fix both calls returned true and the two
// protocols ran concurrently on one node.)
func TestMigrateNowHoldsLatch(t *testing.T) {
	cl := core.NewCluster(1)
	chk := invariant.New(cl.Eng)
	cl.EnableInvariants(chk)
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350(), DisableMigration: true})
	a1, a2 := echoActor(1, sim.Microsecond), echoActor(2, sim.Microsecond)
	a2.Name = "echo2"
	n.Register(a1, true, 0)
	n.Register(a2, true, 0)

	if !n.MigrateNow(1) {
		t.Fatal("first MigrateNow refused on an idle node")
	}
	if n.MigrateNow(2) {
		t.Fatal("second MigrateNow accepted while a migration is in flight (latch not held)")
	}
	cl.Eng.Run()
	if len(n.Migrations) != 1 {
		t.Fatalf("migrations recorded = %d, want exactly the latched one", len(n.Migrations))
	}
	// Latch released at the end of the protocol: the refused migration
	// can be retried now.
	if !n.MigrateNow(2) {
		t.Fatal("MigrateNow refused after the in-flight migration completed")
	}
	cl.Eng.Run()
	if len(n.Migrations) != 2 {
		t.Fatalf("migrations recorded = %d after retry, want 2", len(n.Migrations))
	}
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestMigrateNowDeadHardware: forcing a push on a crashed node or a
// failed NIC complex must refuse instead of running the 4-phase
// protocol against dead hardware. (Before the fix a crashed node
// happily drained, executed, and moved objects.)
func TestMigrateNowDeadHardware(t *testing.T) {
	cl := core.NewCluster(1)
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350(), DisableMigration: true})
	n.Register(echoActor(1, sim.Microsecond), true, 0)

	n.Fail()
	if n.MigrateNow(1) {
		t.Fatal("MigrateNow ran the migration protocol on a crashed node")
	}
	if n.PullNow() {
		t.Fatal("PullNow ran on a crashed node")
	}
	n.Recover()

	n.FailNIC() // re-homes the actor to the host
	cl.Eng.Run()
	if n.MigrateNow(1) {
		t.Fatal("MigrateNow accepted with the NIC complex down")
	}
	if n.PullNow() {
		t.Fatal("PullNow accepted with the NIC complex down (would start the actor on dead cores)")
	}
	n.RecoverNIC()
	// With the NIC back, the host-resident actor is pullable again.
	if !n.PullNow() {
		t.Fatal("PullNow refused after RecoverNIC")
	}
	cl.Eng.Run()
	if side, err := n.ActorSide(1); err != nil || side != dmo.NIC {
		t.Fatalf("actor side after pull = %v/%v, want NIC", side, err)
	}
}

// TestPullRecordsMigration: pull migrations append a MigrationRecord
// with the direction tag, so Node.Migrations accounts both directions
// (the Figure 18 ledger used to silently undercount pulls).
func TestPullRecordsMigration(t *testing.T) {
	cl := core.NewCluster(1)
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350(), DisableMigration: true})
	a := echoActor(7, sim.Microsecond)
	a.OnInit = func(ctx actor.Ctx) { ctx.Alloc(1 << 20) }
	n.Register(a, true, 0)

	if !n.MigrateNow(7) {
		t.Fatal("push refused")
	}
	cl.Eng.Run()
	if !n.PullNow() {
		t.Fatal("pull refused")
	}
	cl.Eng.Run()

	if len(n.Migrations) != 2 {
		t.Fatalf("migrations recorded = %d, want push + pull", len(n.Migrations))
	}
	push, pull := n.Migrations[0], n.Migrations[1]
	if push.Pull {
		t.Fatal("push record tagged as pull")
	}
	if !pull.Pull {
		t.Fatal("pull migration not tagged: Figure 18 ledger would undercount")
	}
	if pull.BytesMoved < 1<<20 {
		t.Fatalf("pull moved %d bytes, want the 1MB DMO region", pull.BytesMoved)
	}
	if pull.Total() <= 0 {
		t.Fatal("pull record has no elapsed time")
	}
}

// runMigrationMeshPDES drives a 4-node, 2-partition mesh through forced
// push migrations with crash and NIC-down arms landing between the
// migration phases, pulls after recovery, and live cross-partition
// traffic throughout. It returns the per-partition invariant
// fingerprints plus a placement digest; everything is asserted
// byte-identical across worker counts by the callers.
func runMigrationMeshPDES(t *testing.T, seed uint64, workers int) string {
	t.Helper()
	const nodes, parts = 4, 2
	window := 3 * sim.Millisecond

	cl := core.NewPartitionedCluster(seed, parts)
	chks := cl.AttachCheckers()
	cl.SetPDESWorkers(workers)
	var nn []*core.Node
	for i := 0; i < nodes; i++ {
		n := cl.AddNode(core.Config{ // note: no DisableMigration
			Name: fmt.Sprintf("n%02d", i), NIC: spec.LiquidIOII_CN2350(), LinkGbps: 10,
		})
		a := &actor.Actor{
			ID: actor.ID(1 + i), Name: fmt.Sprintf("svc%02d", i),
			OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
				ctx.Reply(m)
				return sim.Microsecond
			},
			OnInit: func(ctx actor.Ctx) { ctx.Alloc(256 << 10) },
		}
		if err := n.Register(a, true, 1<<20); err != nil {
			t.Fatal(err)
		}
		nn = append(nn, n)
	}
	clients := make([]*workload.Client, nodes)
	for i := 0; i < nodes; i++ {
		clients[i] = workload.NewClientAt(cl, fmt.Sprintf("c%02d", i), 10, nn[i].Part)
	}
	for i := 0; i < nodes; i++ {
		i := i
		c := clients[i]
		dst := (i + 1) % nodes
		var tick func(k uint64)
		tick = func(k uint64) {
			c.Send(workload.Request{
				Node: fmt.Sprintf("n%02d", dst), Dst: actor.ID(1 + dst),
				Size: 256, FlowID: uint64(i)<<32 | k,
			})
			if next := c.Eng().Now() + 10*sim.Microsecond; next <= window {
				c.Eng().At(next, func() { tick(k + 1) })
			}
		}
		c.Eng().At(sim.Time(i+1)*sim.Microsecond, func() { tick(0) })
	}

	// Forced pushes at 500µs on every node, from the owning partition's
	// engine — mid-window, exactly the context the deferred commit
	// exists for.
	migrated := make([]bool, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		nn[i].Eng().At(500*sim.Microsecond, func() { migrated[i] = nn[i].MigrateNow(actor.ID(1 + i)) })
	}
	// Fault arms landing between migration phases 1–4:
	//   - n0 crashes at the 750µs window boundary (mid phase 2/3) and
	//     recovers at 1.5ms — both cluster-wide barrier arms.
	//   - n1's NIC complex dies at 600µs (mid phase 1) on its own
	//     partition engine — a local arm — and returns at 1.5ms.
	cl.Group.AtBarrier(750*sim.Microsecond, func() { nn[0].Fail() })
	cl.Group.AtBarrier(1500*sim.Microsecond, func() { nn[0].Recover() })
	nn[1].Eng().At(600*sim.Microsecond, func() { nn[1].FailNIC() })
	nn[1].Eng().At(1500*sim.Microsecond, func() { nn[1].RecoverNIC() })
	// Pulls after recovery: the pushed actors come back to the NIC.
	for i := 0; i < nodes; i++ {
		i := i
		nn[i].Eng().At(2*sim.Millisecond, func() { nn[i].PullNow() })
	}

	cl.RunUntil(window + time500)

	for i := 0; i < nodes; i++ {
		if !migrated[i] {
			t.Fatalf("forced push on n%02d was refused", i)
		}
	}
	// Placement digest: every actor must still be resolvable on its
	// node, whatever side it ended on.
	var digest strings.Builder
	for i := 0; i < nodes; i++ {
		side, err := nn[i].ActorSide(actor.ID(1 + i))
		if err != nil {
			t.Fatalf("actor %d lost after migrations+faults: %v", 1+i, err)
		}
		fmt.Fprintf(&digest, "n%02d=%s migs=%d;", i, side, len(nn[i].Migrations))
	}

	invariant.CrossCheckHandoffs(chks)
	fps := make([]string, 0, len(chks))
	for _, chk := range chks {
		chk.Finish()
		if err := chk.Err(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		fps = append(fps, chk.Fingerprint())
	}
	return digest.String() + "\n" + invariant.SortFingerprints(fps)
}

const time500 = 500 * sim.Microsecond

// TestMigrationUnderPDESFaultArms: crash and NIC-down arms landing
// between migration phases 1–4 on a partitioned cluster leave the
// actor table, DMO byte accounting, and handoff ledgers consistent —
// invariant-checked at both seeds — and the whole run (fingerprints
// and placements) is byte-identical at 1, 2, and 4 workers.
func TestMigrationUnderPDESFaultArms(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		base := runMigrationMeshPDES(t, seed, 1)
		for _, w := range []int{2, 4} {
			if got := runMigrationMeshPDES(t, seed, w); got != base {
				t.Fatalf("seed=%d: run diverged at %d workers:\n got %q\nwant %q", seed, w, got, base)
			}
		}
	}
}

// TestPartitionedClusterAllowsMigration: AddNode no longer requires
// DisableMigration on partitioned clusters (the old rejection), and a
// plain forced migration commits at a window boundary with the table
// flipped to the host side.
func TestPartitionedClusterAllowsMigration(t *testing.T) {
	cl := core.NewPartitionedCluster(3, 2)
	n0 := cl.AddNode(core.Config{Name: "a", NIC: spec.LiquidIOII_CN2350()})
	n1 := cl.AddNode(core.Config{Name: "b", NIC: spec.LiquidIOII_CN2350()})
	n0.Register(echoActor(1, sim.Microsecond), true, 0)
	n1.Register(echoActor(2, sim.Microsecond), true, 0)
	// Traffic keeps both partitions' windows advancing.
	c := workload.NewClientAt(cl, "cli", 10, n0.Part)
	for i := 0; i < 50; i++ {
		i := i
		c.Eng().At(sim.Time(i)*20*sim.Microsecond, func() {
			c.Send(workload.Request{Node: "b", Dst: 2, Size: 256, FlowID: uint64(i)})
		})
	}
	ok := false
	n1.Eng().At(200*sim.Microsecond, func() { ok = n1.MigrateNow(2) })
	cl.RunUntil(2 * sim.Millisecond)
	if !ok {
		t.Fatal("MigrateNow refused on a partitioned cluster")
	}
	side, err := n1.ActorSide(2)
	if err != nil || side != dmo.Host {
		t.Fatalf("actor side = %v/%v, want Host after the deferred commit", side, err)
	}
	if len(n1.Migrations) != 1 || n1.Migrations[0].Pull {
		t.Fatalf("migration record missing or mistagged: %+v", n1.Migrations)
	}
	if c.Received == 0 {
		t.Fatal("no traffic answered across the migration")
	}
}
