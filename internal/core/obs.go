package core

import (
	"fmt"
	"sort"

	"repro/internal/actor"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
)

// This file wires internal/obs into the node runtime. The substrate
// packages (netsim, nicsim, pcie) carry their own tracer hooks; the
// scheduler and host engine stay observability-free and report through
// their Hooks callbacks, which the runtime translates into spans here.
//
// Track layout per node (one trace group = one Chrome-trace process):
//
//	nic core 0..N   one lane per NIC core (actor executions, forwards)
//	sched           instantaneous scheduler decisions
//	traffic mgr     the PPS gate's pipeline occupancy
//	accel <name>    one lane per accelerator unit
//	dma             the DMA engine's transfer occupancy
//	host core 0..M  one lane per host core
//	link tx/rx      the node's two link directions (netsim)

// nodeObs holds a node's trace tracks; nil when tracing is disabled.
// All emission goes through the node's partition sink (sink 0 on
// classic clusters), so nodes on different PDES partitions never share
// a span buffer.
type nodeObs struct {
	sink       *obs.Sink
	group      obs.GroupID
	nicTracks  []obs.TrackID
	hostTracks []obs.TrackID
	schedTrack obs.TrackID
}

// defaultObserver, when set, is applied to every cluster at creation —
// the hook the experiment harness uses to observe clusters it builds
// internally.
var defaultObserver func(*Cluster)

// SetDefaultObserver installs (or, with nil, clears) a function applied
// to every Cluster created by NewCluster. It must be set before the
// clusters of interest are built and cleared afterwards.
func SetDefaultObserver(fn func(*Cluster)) { defaultObserver = fn }

// EnableTracing attaches a tracer to the cluster: every current and
// future node gets a trace group with lanes for its NIC cores, host
// cores, scheduler decisions, device units, and link directions. Call at
// most once, with an enabled tracer; a nil tracer is ignored.
func (c *Cluster) EnableTracing(tr *obs.Tracer) { c.EnableTracingPrefixed(tr, "") }

// EnableTracingPrefixed is EnableTracing with a prefix prepended to
// every group name. The experiment harness uses it to share one tracer
// across the many clusters of a sweep ("r03/srv") without colliding
// node names.
// On a partitioned (PDES) cluster every node emits through its
// partition's obs.Sink — private buffers, merged deterministically at
// export — so tracing stays valid, race-free, and byte-identical at any
// worker count.
func (c *Cluster) EnableTracingPrefixed(tr *obs.Tracer, prefix string) {
	if !tr.Enabled() || c.tracer != nil {
		return
	}
	c.tracer = tr
	c.obsPrefix = prefix
	c.Net.EnableTracing(tr, func(node string) obs.GroupID { return tr.Group(prefix + node) })
	for _, name := range c.nodeNames() {
		c.nodes[name].enableTracing(tr)
	}
}

// EnableMetrics enrolls every current and future node's runtime state
// with the collector: scheduler counters, core-mode split, FCFS tail,
// backlogs, host CPU, and a request-sojourn histogram per node.
func (c *Cluster) EnableMetrics(col *obs.Collector) { c.EnableMetricsPrefixed(col, "") }

// EnableMetricsPrefixed is EnableMetrics with a prefix prepended to
// every registry name (see EnableTracingPrefixed). When both tracing and
// metrics are prefixed they must use the same prefix.
// On a partitioned (PDES) cluster the collector is switched to window
// mode (obs.Collector.AttachGroup): the round coordinator samples at
// conservative-window boundaries instead of scheduling engine events,
// so metrics cannot perturb the window structure or the deterministic
// cross-partition merge.
func (c *Cluster) EnableMetricsPrefixed(col *obs.Collector, prefix string) {
	if col == nil || c.collector != nil {
		return
	}
	c.collector = col
	c.obsPrefix = prefix
	col.AttachGroup(c.Group)
	for _, name := range c.nodeNames() {
		c.nodes[name].enableMetrics(col)
	}
}

// ObsPrefix returns the group-name prefix installed by
// EnableTracingPrefixed / EnableMetricsPrefixed ("" when unprefixed).
// Layers that add their own trace groups (the fault injector) use it to
// stay consistent with the cluster's node groups.
func (c *Cluster) ObsPrefix() string { return c.obsPrefix }

// nodeNames returns node names sorted, so group and track registration
// order — and hence exported trace bytes — never depend on map order.
func (c *Cluster) nodeNames() []string {
	names := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (n *Node) enableTracing(tr *obs.Tracer) {
	g := tr.Group(n.c.obsPrefix + n.Name)
	sink := tr.Sink(n.Part)
	o := &nodeObs{sink: sink, group: g, schedTrack: obs.NoTrack}
	if n.Sched != nil {
		for i := 0; i < n.Sched.NumCores(); i++ {
			o.nicTracks = append(o.nicTracks, tr.NewTrack(g, fmt.Sprintf("nic core %d", i)))
		}
		o.schedTrack = tr.NewTrack(g, "sched")
		n.Gate.EnableTracing(sink, g)
		n.Accels.EnableTracing(sink, g)
		n.DMA.EnableTracing(sink, g)
	}
	for i := 0; i < n.cfg.HostCores; i++ {
		o.hostTracks = append(o.hostTracks, tr.NewTrack(g, fmt.Sprintf("host core %d", i)))
	}
	n.obs = o
}

func (n *Node) enableMetrics(col *obs.Collector) {
	reg := col.Registry(n.c.obsPrefix + n.Name)
	if s := n.Sched; s != nil {
		reg.Counter("nic_completed", func() uint64 { return s.Completed })
		reg.Counter("nic_forwarded", func() uint64 { return s.Forwarded })
		reg.Counter("downgrades", func() uint64 { return s.Downgrades })
		reg.Counter("upgrades", func() uint64 { return s.Upgrades })
		reg.Counter("push_migrations", func() uint64 { return s.PushMigrations })
		reg.Counter("pull_migrations", func() uint64 { return s.PullMigrations })
		reg.Counter("core_moves", func() uint64 { return s.CoreMoves })
		reg.Gauge("fcfs_tail_us", s.FCFSTail)
		reg.Gauge("fcfs_mean_us", s.FCFSMean)
		reg.Gauge("fcfs_cores", func() float64 { f, _ := s.CoreModes(); return float64(f) })
		reg.Gauge("drr_cores", func() float64 { _, d := s.CoreModes(); return float64(d) })
		reg.Gauge("queue_backlog", func() float64 { return float64(s.QueueBacklog()) })
		reg.Gauge("drr_backlog", func() float64 { return float64(s.DRRBacklog()) })
	}
	reg.Counter("host_completed", func() uint64 { return n.Host.Completed })
	reg.Gauge("host_cores_used", n.Host.CoresUsed)
	reg.Gauge("host_backlog", func() float64 { return float64(n.Host.Backlog()) })
	n.latHist = reg.Histogram("sojourn_us")
}

// actorLabel names a span after its actor.
func actorLabel(a *actor.Actor) string {
	if a == nil {
		return "forward"
	}
	if a.Name != "" {
		return a.Name
	}
	return fmt.Sprintf("actor %d", a.ID)
}

// obsSchedExec is the scheduler's OnExec hook: one span per completed
// NIC-core operation.
func (n *Node) obsSchedExec(coreID int, mode sched.Mode, a *actor.Actor, m actor.Msg, start, end sim.Time) {
	if n.latHist != nil && a != nil {
		n.latHist.Observe((end - m.ArrivedAt).Micros())
	}
	o := n.obs
	if o == nil || coreID >= len(o.nicTracks) {
		return
	}
	wait := start - m.ArrivedAt
	if wait < 0 {
		wait = 0
	}
	name := actorLabel(a)
	if mode == sched.DRR {
		name += " [drr]"
	}
	o.sink.Span(o.nicTracks[coreID], name, start, end, execArgs(a, m, wait))
}

// execArgs assembles span annotations for one executed message,
// including the actor's shard tag when it carries one.
func execArgs(a *actor.Actor, m actor.Msg, wait sim.Time) obs.Args {
	args := obs.Args{Req: m.FlowID, HasReq: m.FlowID != 0, Bytes: m.WireSize, Wait: wait}
	if a != nil && a.Sharded {
		args.Shard, args.HasShard = a.Shard, true
	}
	return args
}

// obsHostExec is the host engine's OnExec hook.
func (n *Node) obsHostExec(coreID int, a *actor.Actor, m actor.Msg, start, end sim.Time) {
	if n.latHist != nil {
		n.latHist.Observe((end - m.ArrivedAt).Micros())
	}
	o := n.obs
	if o == nil || coreID >= len(o.hostTracks) {
		return
	}
	wait := start - m.ArrivedAt
	if wait < 0 {
		wait = 0
	}
	o.sink.Span(o.hostTracks[coreID], actorLabel(a), start, end, execArgs(a, m, wait))
}

// obsModeSwitch marks an actor's FCFS↔DRR transition on the sched lane.
func (n *Node) obsModeSwitch(a *actor.Actor, to sched.Mode) {
	o := n.obs
	if o == nil {
		return
	}
	verb := "downgrade "
	if to == sched.FCFS {
		verb = "upgrade "
	}
	o.sink.Instant(o.schedTrack, verb+actorLabel(a), n.eng.Now())
}

// obsMigrate marks a migration decision on the sched lane.
func (n *Node) obsMigrate(a *actor.Actor, push bool) {
	o := n.obs
	if o == nil {
		return
	}
	if push {
		o.sink.Instant(o.schedTrack, "push "+actorLabel(a), n.eng.Now())
		return
	}
	o.sink.Instant(o.schedTrack, "pull from host", n.eng.Now())
}

// obsMigrateCommit emits the migration's hand-off span on the sched
// lane: start is when the protocol began its node-local phases, the
// end is the commit point — under PDES the window boundary where the
// coordinator applied the table rewrite. The span lands in the node's
// own partition sink, so partitioned traces stay race-free and merge
// byte-identically at any worker count.
func (n *Node) obsMigrateCommit(a *actor.Actor, push bool, start sim.Time, bytes int) {
	o := n.obs
	if o == nil {
		return
	}
	dir := "migrate→host "
	if !push {
		dir = "migrate→nic "
	}
	o.sink.Span(o.schedTrack, dir+actorLabel(a), start, n.eng.Now(), obs.Args{Bytes: bytes})
}

// obsAutoscale marks a core changing scheduling group.
func (n *Node) obsAutoscale(coreID int, from, to sched.Mode) {
	o := n.obs
	if o == nil {
		return
	}
	o.sink.Instant(o.schedTrack, fmt.Sprintf("core %d %s→%s", coreID, from, to), n.eng.Now())
}
