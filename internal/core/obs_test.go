package core_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

// observedRun drives a NIC-resident echo workload with tracing and
// metrics enabled and returns the rendered trace, the NDJSON metrics,
// and the workload result.
func observedRun(t *testing.T, seed uint64, trace, metrics bool) (traceOut, metricsOut []byte, received uint64, p99 float64) {
	t.Helper()
	cl := core.NewCluster(seed)
	var tr *obs.Tracer
	if trace {
		tr = obs.NewTracer()
		cl.EnableTracing(tr)
	}
	var col *obs.Collector
	if metrics {
		col = obs.NewCollector(cl.Eng, 50*sim.Microsecond)
		cl.EnableMetrics(col)
	}
	n := cl.AddNode(core.Config{Name: "srv", NIC: spec.LiquidIOII_CN2350()})
	if err := n.Register(&actor.Actor{
		ID:   1,
		Name: "kv-shard",
		OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			ctx.Reply(m)
			return sim.Time(1000 + cl.Eng.Rand().Intn(4000))
		},
	}, true, 0); err != nil {
		t.Fatal(err)
	}
	client := workload.NewClient(cl, "cli", 10)
	client.OpenLoop(200000, 2*sim.Millisecond, func(i uint64) workload.Request {
		return workload.Request{Node: "srv", Dst: 1, Size: 512, FlowID: i + 1}
	})
	if col != nil {
		col.Start()
	}
	cl.Eng.Run()
	if col != nil {
		col.Snapshot()
	}
	if tr != nil {
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("trace write: %v", err)
		}
		traceOut = buf.Bytes()
	}
	if col != nil {
		var buf bytes.Buffer
		if err := col.WriteNDJSON(&buf); err != nil {
			t.Fatalf("metrics write: %v", err)
		}
		metricsOut = buf.Bytes()
	}
	return traceOut, metricsOut, client.Received, client.Lat.Percentile(99)
}

// TestTraceEndToEnd drives a request stream through link → traffic
// manager → NIC core and checks the exported trace is valid Chrome
// trace_event JSON with the expected lanes populated.
func TestTraceEndToEnd(t *testing.T) {
	trace, metrics, received, _ := observedRun(t, 42, true, true)
	if received == 0 {
		t.Fatal("no requests completed")
	}
	st, err := obs.ValidateChromeTrace(bytes.NewReader(trace))
	if err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	if st.Spans == 0 || st.Processes < 2 {
		t.Fatalf("trace too thin: %+v", st)
	}
	out := string(trace)
	for _, lane := range []string{`"srv"`, `"cli"`, `"nic core 0"`, `"link tx"`, `"link rx"`, `"kv-shard"`} {
		if !strings.Contains(out, lane) {
			t.Errorf("trace missing %s", lane)
		}
	}
	ms, err := obs.ValidateMetricsNDJSON(bytes.NewReader(metrics))
	if err != nil {
		t.Fatalf("invalid metrics: %v", err)
	}
	if ms.Records < 2 {
		t.Fatalf("expected periodic snapshots, got %d", ms.Records)
	}
	for _, key := range []string{`"fcfs_tail_us"`, `"nic_completed"`, `"sojourn_us"`} {
		if !strings.Contains(string(metrics), key) {
			t.Errorf("metrics missing %s", key)
		}
	}
}

// TestTraceCausalOrdering: for a sampled request, the client's link-tx
// span must precede the server's link-rx span, which must precede the
// NIC-core execution span — the cross-layer causality the trace exists
// to show.
func TestTraceCausalOrdering(t *testing.T) {
	trace, _, _, _ := observedRun(t, 7, true, false)
	// Pull out ts values for req 5 by lane, in emitted order. Spans are
	// sorted by track, so per-lane order is by start time.
	var txTS, rxTS, execTS []string
	for _, line := range strings.Split(string(trace), "\n") {
		if !strings.Contains(line, `"req":5,`) && !strings.Contains(line, `"req":5}`) {
			continue
		}
		switch {
		case strings.Contains(line, `"name":"frame"`):
			// Distinguish tx/rx by pid later; collect all frame spans.
			txTS = append(txTS, line)
		case strings.Contains(line, `"name":"kv-shard"`):
			execTS = append(execTS, line)
		}
	}
	_ = rxTS
	if len(txTS) < 2 || len(execTS) < 1 {
		t.Fatalf("req 5 not fully traced: %d frame spans, %d exec spans", len(txTS), len(execTS))
	}
	ts := func(line string) float64 {
		i := strings.Index(line, `"ts":`)
		if i < 0 {
			t.Fatalf("no ts in %s", line)
		}
		rest := line[i+5:]
		end := 0
		for end < len(rest) && (rest[end] == '.' || (rest[end] >= '0' && rest[end] <= '9')) {
			end++
		}
		v, err := strconv.ParseFloat(rest[:end], 64)
		if err != nil {
			t.Fatalf("bad ts in %s: %v", line, err)
		}
		return v
	}
	var frameMin, frameMax float64
	for i, l := range txTS {
		v := ts(l)
		if i == 0 || v < frameMin {
			frameMin = v
		}
		if i == 0 || v > frameMax {
			frameMax = v
		}
	}
	exec := ts(execTS[0])
	if !(frameMin < exec) {
		t.Fatalf("request frame (ts %v) not before execution (ts %v)", frameMin, exec)
	}
}

// TestObservationDoesNotPerturb: results with tracing+metrics on must be
// identical to results with observation off — the tracer may only watch.
func TestObservationDoesNotPerturb(t *testing.T) {
	_, _, recvOn, p99On := observedRun(t, 99, true, true)
	_, _, recvOff, p99Off := observedRun(t, 99, false, false)
	if recvOn != recvOff || p99On != p99Off {
		t.Fatalf("observation perturbed the run: %d/%f observed vs %d/%f bare",
			recvOn, p99On, recvOff, p99Off)
	}
}

// TestTraceDeterministicBytes: identical seeds must render byte-identical
// trace and metrics files.
func TestTraceDeterministicBytes(t *testing.T) {
	t1, m1, _, _ := observedRun(t, 1234, true, true)
	t2, m2, _, _ := observedRun(t, 1234, true, true)
	if !bytes.Equal(t1, t2) {
		t.Fatal("same seed produced different trace bytes")
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("same seed produced different metrics bytes")
	}
}
