// Package deploy is the spec-based deployment API: each application is
// stood up from a declarative spec struct (RKVSpec, DTSpec, RTASpec,
// FirewallSpec, IPSecSpec) that bundles what the old positional helpers
// took as bare arguments — nodes, actor IDs, placement — with the
// shared policy vocabulary (Placement, RetryPolicy, FailoverPolicy) and
// an optional fault.Schedule installed at deploy time.
//
// Spec-API v2 factors the policy fields every spec duplicated into one
// embedded Common block — Placement, Retry, Failover, Faults, and the
// multi-tenant qos.Tenancy — and gives harnesses a generic surface:
// every spec implements Spec (Validate + DeployApp) and every deployed
// app implements App, so ipipe-sim, ipipe-bench, and the golden-replay
// harness iterate specs without per-app switch arms. A zero Common is
// the legacy behavior, byte-for-byte.
//
// The specs also wire the recovery machinery that positional deployment
// never could: an RKVSpec installs a leader-failover monitor that
// triggers a Paxos election when the leader's node dies, and a DTSpec
// with a TxnTimeout arms the coordinator's sweep that aborts
// transactions stranded by a participant death. Both are passive until
// a failure actually occurs, so fault-free runs are bit-identical to
// the legacy helpers' output.
package deploy

import (
	"fmt"

	"repro/internal/actor"
	"repro/internal/apps/dt"
	"repro/internal/apps/nf"
	"repro/internal/apps/rkv"
	"repro/internal/apps/rta"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/qos"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Placement says where an application's offloadable actors run.
// Host-pinned actors (SSTable readers, compactors, loggers) ignore it.
type Placement struct {
	// OnNIC offloads the offloadable actors to the SmartNIC where the
	// node has one; false keeps everything on the host.
	OnNIC bool
}

// NIC and Host are the two common placements.
var (
	NIC  = Placement{OnNIC: true}
	Host = Placement{OnNIC: false}
)

// RetryPolicy is the client-side recovery vocabulary shared by every
// spec: requests time out and re-send with capped exponential backoff.
// Apply copies it onto a workload.Request.
type RetryPolicy struct {
	// Timeout is the first re-send interval (0 disables retries).
	Timeout sim.Time
	// Retries bounds re-sends.
	Retries int
	// Backoff multiplies the interval after every unanswered attempt
	// (values ≤ 1 keep it fixed).
	Backoff float64
	// MaxTimeout caps the grown interval (0 = uncapped).
	MaxTimeout sim.Time
}

// DefaultRetry tolerates a leader election or a lossy-link window:
// 500µs initial timeout, 8 retries, doubling to a 4ms cap (≈20ms of
// total patience).
func DefaultRetry() RetryPolicy {
	return RetryPolicy{
		Timeout:    500 * sim.Microsecond,
		Retries:    8,
		Backoff:    2,
		MaxTimeout: 4 * sim.Millisecond,
	}
}

// Apply copies the policy onto a request (leaving destination and
// payload fields alone).
func (p RetryPolicy) Apply(r *workload.Request) {
	r.Timeout = p.Timeout
	r.Retries = p.Retries
	r.Backoff = p.Backoff
	r.MaxTimeout = p.MaxTimeout
}

// FailoverPolicy controls the RKV leader-failover monitor.
type FailoverPolicy struct {
	// Detect models the failure detector's timeout: how long after a
	// leader-node death the election is triggered (0 = DefaultDetect).
	Detect sim.Time
	// Disabled turns the monitor off entirely.
	Disabled bool
}

// DefaultDetect is the default failure-detection delay.
const DefaultDetect = 200 * sim.Microsecond

// installFaults installs a spec's fault schedule (nil injector when the
// schedule is empty).
func installFaults(cl *core.Cluster, s fault.Schedule) (*fault.Injector, error) {
	if len(s.Faults) == 0 {
		return nil, nil
	}
	return fault.Install(cl, s)
}

// --- RKV --------------------------------------------------------------

// RKVSpec deploys the replicated key-value store (Multi-Paxos + LSM),
// either as one replica group over Nodes (the paper's §5.1 setup) or —
// with Shards > 1 — as a sharded scale-out: one independent Paxos group
// per shard, leaders rotated across the node pool, with a
// consistent-hash router directing keys to groups.
type RKVSpec struct {
	// Common is the shared policy block (placement, retry, failover,
	// faults, tenancy). Placement offloads consensus and Memtable actors
	// when OnNIC (SSTable reader and compactor stay host-pinned);
	// Failover configures the leader-failover monitor per group.
	Common
	// Nodes is the node pool. A single-group deployment replicates on
	// every node (the first starts as Paxos leader); a sharded one
	// spreads each group's Replicas over the pool, shard s leading on
	// Nodes[s % len(Nodes)].
	Nodes []*core.Node
	// BaseID is the first actor ID; group g's replica k uses
	// BaseID + g·4·len(Nodes) + 4k .. +4k+3.
	BaseID actor.ID
	// MemLimit is the Memtable size triggering minor compaction.
	MemLimit int
	// Shards splits the key space over that many independent replica
	// groups (0 or 1 = the classic single group).
	Shards int
	// Replicas bounds each group's replication factor. 0 keeps the
	// legacy behavior for a single group (replicate on every node) and
	// defaults to min(3, len(Nodes)) when sharded.
	Replicas int
	// ShardVNodes sets the router's virtual nodes per shard
	// (0 = shard.DefaultVNodes).
	ShardVNodes int
}

// RKV is a deployed replica group set plus its recovery machinery. The
// embedded Deployment is Groups[0], so single-group callers keep their
// old surface; sharded callers route through ShardFor/LeaderFor.
type RKV struct {
	*rkv.Deployment
	// Groups holds one replica group per shard.
	Groups []*rkv.Deployment
	// Router maps keys to shards (nil is never returned; a single-group
	// deployment gets a one-shard ring).
	Router   *shard.Ring
	Spec     RKVSpec
	Injector *fault.Injector
	// QoS is the installed tenancy runtime (nil when the spec had no
	// Tenancy block).
	QoS *qos.Runtime
	// Elections counts failover-triggered elections across all groups.
	Elections uint64
}

// AppName implements App.
func (r *RKV) AppName() string { return "rkv" }

// FaultInjector implements App.
func (r *RKV) FaultInjector() *fault.Injector { return r.Injector }

// QoSRuntime implements App.
func (r *RKV) QoSRuntime() *qos.Runtime { return r.QoS }

// Validate implements Spec.
func (s RKVSpec) Validate() error {
	if len(s.Nodes) == 0 {
		return &ValidationError{Spec: "RKVSpec", Field: "Nodes", Reason: "needs at least one node"}
	}
	if s.Replicas > len(s.Nodes) {
		return &ValidationError{Spec: "RKVSpec", Field: "Replicas",
			Reason: fmt.Sprintf("wants %d replicas from %d nodes", s.Replicas, len(s.Nodes))}
	}
	if s.Shards < 0 {
		return &ValidationError{Spec: "RKVSpec", Field: "Shards", Reason: "must be >= 0"}
	}
	return s.Common.validate("RKVSpec")
}

// DeployApp implements Spec.
func (s RKVSpec) DeployApp() (App, error) { return s.Deploy() }

// Deploy stands up the spec.
func (s RKVSpec) Deploy() (*RKV, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	shards := s.Shards
	if shards < 1 {
		shards = 1
	}
	reps := s.Replicas
	if reps <= 0 {
		if shards > 1 {
			reps = 3
			if reps > len(s.Nodes) {
				reps = len(s.Nodes)
			}
		} else {
			reps = len(s.Nodes) // legacy: one group over every node
		}
	}
	cl := s.Nodes[0].Cluster()
	out := &RKV{Spec: s}
	for g := 0; g < shards; g++ {
		// Rotate each group's replica set so leaders (replica 0) land on
		// distinct nodes and follower load spreads evenly.
		nodes := make([]*core.Node, reps)
		for k := range nodes {
			nodes[k] = s.Nodes[(g+k)%len(s.Nodes)]
		}
		base := s.BaseID + actor.ID(g*4*len(s.Nodes))
		d, err := rkv.Deploy(nodes, base, s.MemLimit, s.Placement.OnNIC)
		if err != nil {
			return nil, err
		}
		if shards > 1 {
			d.TagShard(g)
		}
		out.Groups = append(out.Groups, d)
	}
	out.Deployment = out.Groups[0]
	if chk := cl.Checker(); chk.Enabled() {
		// Report every leadership claim (initial leaders and election
		// winners) so the checker can enforce single-leader-per-ballot
		// within each replica group.
		for g, d := range out.Groups {
			label := fmt.Sprintf("rkv-g%02d", g)
			for k, rep := range d.Replicas {
				k := k
				rep.Consensus.OnLead = func(ballot uint64) {
					chk.LeaderClaim(label, ballot, k)
				}
				if rep.Consensus.IsLeader {
					chk.LeaderClaim(label, 1, k)
				}
			}
		}
	}
	vn := s.ShardVNodes
	if vn <= 0 {
		vn = shard.DefaultVNodes
	}
	out.Router = shard.New(shards, vn)
	if !s.Failover.Disabled {
		out.installFailover(cl)
	}
	if shards > 1 {
		out.registerShardMetrics(cl)
	}
	var err error
	if out.Injector, err = installFaults(cl, s.Faults); err != nil {
		return nil, err
	}
	if out.QoS, err = installTenancy(cl, s.Nodes, s.Tenancy); err != nil {
		return nil, err
	}
	if out.QoS != nil && shards > 1 {
		// Give the SLO controller the scale-out knob: drop the busiest
		// group from the ring (its key range remaps to the survivors),
		// but never below one live shard.
		out.QoS.BindReshard(out.hottestShard, func(g int) {
			if out.Router.Shards() > 1 && out.Router.Live(g) {
				out.Reshard(g)
			}
		})
	}
	return out, nil
}

// hottestShard returns the live group with the most consensus commits.
func (r *RKV) hottestShard() int {
	best, bestCommits := 0, uint64(0)
	for g, d := range r.Groups {
		var commits uint64
		for _, rep := range d.Replicas {
			commits += rep.Consensus.Commits
		}
		if commits > bestCommits {
			best, bestCommits = g, commits
		}
	}
	return best
}

// ShardFor returns the shard owning key per the router.
func (r *RKV) ShardFor(key []byte) int { return r.Router.Lookup(key) }

// Group returns shard g's replica group.
func (r *RKV) Group(g int) *rkv.Deployment { return r.Groups[g] }

// LeaderFor routes a key: the node name and consensus actor ID of the
// owning group's current leader (falling back to the group's first
// replica while an election is in flight, whose redirect machinery
// then points the client at the winner).
func (r *RKV) LeaderFor(key []byte) (string, actor.ID) {
	g := r.Groups[r.Router.Lookup(key)]
	rep := g.Leader()
	if rep == nil {
		rep = g.Replicas[0]
	}
	return rep.Node.Name, rep.Consensus.Actor.ID
}

// Reshard removes shard g from the router after its group is lost
// beyond recovery: only that shard's ≈1/N of the key space remaps (to
// the surviving groups); every other key keeps its owner. The group's
// actors are not torn down — they simply stop receiving routed keys.
func (r *RKV) Reshard(g int) { r.Router.Remove(g) }

// installFailover registers a membership listener modeling each replica
// group's failure detector: when the node hosting a group's current
// leader dies, after the detection delay the group's first live replica
// (in replica order) is told to run an election. Passive until a node
// actually fails.
func (r *RKV) installFailover(cl *core.Cluster) {
	detect := r.Spec.Failover.Detect
	if detect <= 0 {
		detect = DefaultDetect
	}
	cl.OnMembership(func(node string, down bool) {
		if !down {
			return
		}
		for _, g := range r.Groups {
			if !groupHostsLeader(g, node) {
				continue
			}
			g := g
			cl.Eng.After(detect, func() {
				// Re-check at detection time: the leader may have recovered,
				// or an election may already have installed a live one.
				if l := liveLeader(g); l != nil {
					return
				}
				for _, rep := range g.Replicas {
					if rep.Node.Down() {
						continue
					}
					r.Elections++
					rep.Node.Inject(actor.Msg{Kind: rkv.KindElect, Dst: rep.Consensus.Actor.ID})
					return
				}
			})
		}
	})
}

// registerShardMetrics exposes per-shard commit/redirect counters when
// the cluster has a metrics collector, so sharded runs can attribute
// load per shard alongside the shard-tagged execution spans.
func (r *RKV) registerShardMetrics(cl *core.Cluster) {
	col := cl.Collector()
	if col == nil {
		return
	}
	for g, d := range r.Groups {
		d := d
		reg := col.Registry(fmt.Sprintf("%srkv-shard%02d", cl.ObsPrefix(), g))
		reg.Counter("commits", func() uint64 {
			var t uint64
			for _, rep := range d.Replicas {
				t += rep.Consensus.Commits
			}
			return t
		})
		reg.Counter("redirects", func() uint64 {
			var t uint64
			for _, rep := range d.Replicas {
				t += rep.Consensus.Redirects
			}
			return t
		})
	}
}

// groupHostsLeader reports whether the named node hosts a replica of g
// that currently believes it is leader.
func groupHostsLeader(g *rkv.Deployment, node string) bool {
	for _, rep := range g.Replicas {
		if rep.Node.Name == node && rep.Consensus.IsLeader {
			return true
		}
	}
	return false
}

// liveLeader returns g's leader replica if its node is up (nil
// otherwise).
func liveLeader(g *rkv.Deployment) *rkv.Replica {
	l := g.Leader()
	if l == nil || l.Node.Down() {
		return nil
	}
	return l
}

// --- DT ----------------------------------------------------------------

// DTSpec deploys the distributed transaction system (OCC + 2PC).
type DTSpec struct {
	// Common is the shared policy block. Placement offloads coordinator
	// and participants when OnNIC (the logger stays host-pinned);
	// Failover is unused (the coordinator's sweep is the recovery path).
	Common
	// Coordinator hosts the coordinator actor and the host-pinned logger.
	Coordinator *core.Node
	// Participants hosts one participant actor each (must be non-empty:
	// a coordinator with no participants can never commit anything).
	Participants []*core.Node
	// BaseID is the coordinator's actor ID; participant i uses
	// BaseID+1+i and the logger BaseID+1+len(Participants).
	BaseID actor.ID
	// TxnTimeout arms the coordinator sweep: in-flight transactions
	// older than this abort cleanly (0 disables the sweep).
	TxnTimeout sim.Time
	// LockLease bounds participant write-lock tenure (0 = the package
	// default, negative = locks never expire).
	LockLease sim.Time
}

// DT is a deployed transaction system.
type DT struct {
	Coord    *dt.Coordinator
	Stores   []*dt.Store
	Spec     DTSpec
	Injector *fault.Injector
	// QoS is the installed tenancy runtime (nil without a Tenancy block).
	QoS *qos.Runtime
}

// AppName implements App.
func (d *DT) AppName() string { return "dt" }

// FaultInjector implements App.
func (d *DT) FaultInjector() *fault.Injector { return d.Injector }

// QoSRuntime implements App.
func (d *DT) QoSRuntime() *qos.Runtime { return d.QoS }

// Validate implements Spec. It rejects an empty participant set — the
// legacy helper silently accepted one and produced a coordinator that
// aborted every transaction.
func (s DTSpec) Validate() error {
	if s.Coordinator == nil {
		return &ValidationError{Spec: "DTSpec", Field: "Coordinator", Reason: "needs a coordinator node"}
	}
	if len(s.Participants) == 0 {
		return &ValidationError{Spec: "DTSpec", Field: "Participants",
			Reason: "needs at least one participant node (a coordinator without participants cannot commit transactions)"}
	}
	return s.Common.validate("DTSpec")
}

// DeployApp implements Spec.
func (s DTSpec) DeployApp() (App, error) { return s.Deploy() }

// Deploy stands up the spec.
func (s DTSpec) Deploy() (*DT, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	lease := s.LockLease
	switch {
	case lease == 0:
		lease = dt.DefaultLockLease
	case lease < 0:
		lease = 0
	}
	var partIDs []actor.ID
	var stores []*dt.Store
	for i, n := range s.Participants {
		st := dt.NewStore()
		id := s.BaseID + 1 + actor.ID(i)
		if err := n.Register(dt.NewParticipantLease(id, st, lease), s.Placement.OnNIC, 0); err != nil {
			return nil, err
		}
		partIDs = append(partIDs, id)
		stores = append(stores, st)
	}
	loggerID := s.BaseID + 1 + actor.ID(len(s.Participants))
	if err := s.Coordinator.Register(dt.NewLogger(loggerID, nil), false, 0); err != nil {
		return nil, err
	}
	coord := dt.NewCoordinator(s.BaseID, partIDs, loggerID)
	coord.TxnTimeout = s.TxnTimeout
	if err := s.Coordinator.Register(coord.Actor, s.Placement.OnNIC, 0); err != nil {
		return nil, err
	}
	out := &DT{Coord: coord, Stores: stores, Spec: s}
	if s.TxnTimeout > 0 {
		out.installSweep()
	}
	var err error
	if out.Injector, err = installFaults(s.Coordinator.Cluster(), s.Faults); err != nil {
		return nil, err
	}
	nodes := append([]*core.Node{s.Coordinator}, s.Participants...)
	if out.QoS, err = installTenancy(s.Coordinator.Cluster(), nodes, s.Tenancy); err != nil {
		return nil, err
	}
	return out, nil
}

// installSweep injects a KindSweep message into the coordinator every
// TxnTimeout/2 so stranded transactions abort within ~1.5× the timeout.
// The ticker stops re-arming once it is the only pending event, letting
// Engine.Run terminate (the same guard obs.Collector uses).
func (d *DT) installSweep() {
	eng := d.Spec.Coordinator.Cluster().Eng
	interval := d.Spec.TxnTimeout / 2
	if interval < 1 {
		interval = 1
	}
	coordID := d.Coord.Actor.ID
	node := d.Spec.Coordinator
	var tick func()
	tick = func() {
		if eng.Pending() == 0 {
			return // simulation drained; a sweep would keep it alive forever
		}
		node.Inject(actor.Msg{Kind: dt.KindSweep, Dst: coordID})
		eng.After(interval, tick)
	}
	eng.After(interval, tick)
}

// --- RTA ---------------------------------------------------------------

// RTASpec deploys the real-time analytics pipeline.
type RTASpec struct {
	// Common is the shared policy block; Placement offloads the pipeline
	// when OnNIC (the aggregator stays host-pinned). Retry and Failover
	// are unused (the pipeline is one-way).
	Common
	// Node hosts the filter → counter → ranker pipeline.
	Node *core.Node
	// Aggregator hosts the host-pinned aggregator actor.
	Aggregator *core.Node
	// BaseID is the filter's actor ID (counter +1, ranker +2,
	// aggregator +3).
	BaseID actor.ID
	// Discard lists tokens the filter drops.
	Discard []string
	// TopN sizes the ranker and aggregator views.
	TopN int
	// OnUpdate observes each consolidated top-N view.
	OnUpdate func([]rta.Entry)
}

// RTA is a deployed analytics pipeline.
type RTA struct {
	Topology rta.Topology
	Spec     RTASpec
	Injector *fault.Injector
	// QoS is the installed tenancy runtime (nil without a Tenancy block).
	QoS *qos.Runtime
}

// AppName implements App.
func (r *RTA) AppName() string { return "rta" }

// FaultInjector implements App.
func (r *RTA) FaultInjector() *fault.Injector { return r.Injector }

// QoSRuntime implements App.
func (r *RTA) QoSRuntime() *qos.Runtime { return r.QoS }

// Validate implements Spec.
func (s RTASpec) Validate() error {
	if s.Node == nil || s.Aggregator == nil {
		return &ValidationError{Spec: "RTASpec", Field: "Node",
			Reason: "needs pipeline and aggregator nodes"}
	}
	return s.Common.validate("RTASpec")
}

// DeployApp implements Spec.
func (s RTASpec) DeployApp() (App, error) { return s.Deploy() }

// Deploy stands up the spec.
func (s RTASpec) Deploy() (*RTA, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	topo := rta.Topology{
		Filter:     s.BaseID,
		Counter:    s.BaseID + 1,
		Ranker:     s.BaseID + 2,
		Aggregator: s.BaseID + 3,
	}
	agg, _ := rta.NewAggregator(topo.Aggregator, s.TopN, s.OnUpdate)
	if err := s.Aggregator.Register(agg, false, 0); err != nil {
		return nil, err
	}
	f, _ := rta.NewFilter(topo.Filter, topo, s.Discard)
	c, _ := rta.NewCounter(topo.Counter, topo, rta.CounterConfig{})
	r, _ := rta.NewRanker(topo.Ranker, topo, s.TopN)
	for _, a := range []*actor.Actor{f, c, r} {
		if err := s.Node.Register(a, s.Placement.OnNIC, 0); err != nil {
			return nil, err
		}
	}
	out := &RTA{Topology: topo, Spec: s}
	var err error
	if out.Injector, err = installFaults(s.Node.Cluster(), s.Faults); err != nil {
		return nil, err
	}
	nodes := []*core.Node{s.Node, s.Aggregator}
	if s.Aggregator == s.Node {
		nodes = nodes[:1]
	}
	if out.QoS, err = installTenancy(s.Node.Cluster(), nodes, s.Tenancy); err != nil {
		return nil, err
	}
	return out, nil
}

// --- Network functions -------------------------------------------------

// FirewallSpec deploys a software-TCAM firewall actor.
type FirewallSpec struct {
	// Common is the shared policy block (Retry and Failover unused).
	Common
	Node  *core.Node
	ID    actor.ID
	Rules []nf.Rule
}

// Firewall is a deployed firewall actor.
type Firewall struct {
	Spec     FirewallSpec
	Injector *fault.Injector
	// QoS is the installed tenancy runtime (nil without a Tenancy block).
	QoS *qos.Runtime
}

// AppName implements App.
func (f *Firewall) AppName() string { return "firewall" }

// FaultInjector implements App.
func (f *Firewall) FaultInjector() *fault.Injector { return f.Injector }

// QoSRuntime implements App.
func (f *Firewall) QoSRuntime() *qos.Runtime { return f.QoS }

// Validate implements Spec.
func (s FirewallSpec) Validate() error {
	if s.Node == nil {
		return &ValidationError{Spec: "FirewallSpec", Field: "Node", Reason: "needs a node"}
	}
	return s.Common.validate("FirewallSpec")
}

// DeployApp implements Spec.
func (s FirewallSpec) DeployApp() (App, error) { return s.Deploy() }

// Deploy stands up the spec.
func (s FirewallSpec) Deploy() (*Firewall, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	fw := nf.NewFirewall(s.ID, nf.NewTCAM(s.Rules))
	if err := s.Node.Register(fw, s.Placement.OnNIC, 0); err != nil {
		return nil, err
	}
	out := &Firewall{Spec: s}
	var err error
	if out.Injector, err = installFaults(s.Node.Cluster(), s.Faults); err != nil {
		return nil, err
	}
	if out.QoS, err = installTenancy(s.Node.Cluster(), []*core.Node{s.Node}, s.Tenancy); err != nil {
		return nil, err
	}
	return out, nil
}

// IPSecSpec deploys an IPSec gateway actor (AES-256-CTR + SHA-1,
// accelerator-assisted on the NIC).
type IPSecSpec struct {
	// Common is the shared policy block (Retry and Failover unused).
	Common
	Node   *core.Node
	ID     actor.ID
	Key    []byte
	MACKey []byte
}

// IPSec is a deployed gateway actor.
type IPSec struct {
	Spec     IPSecSpec
	Injector *fault.Injector
	// QoS is the installed tenancy runtime (nil without a Tenancy block).
	QoS *qos.Runtime
}

// AppName implements App.
func (i *IPSec) AppName() string { return "ipsec" }

// FaultInjector implements App.
func (i *IPSec) FaultInjector() *fault.Injector { return i.Injector }

// QoSRuntime implements App.
func (i *IPSec) QoSRuntime() *qos.Runtime { return i.QoS }

// Validate implements Spec. Key material is checked here (not at first
// packet) so a bad spec fails before deployment.
func (s IPSecSpec) Validate() error {
	if s.Node == nil {
		return &ValidationError{Spec: "IPSecSpec", Field: "Node", Reason: "needs a node"}
	}
	if _, err := nf.NewIPSecState(s.Key, s.MACKey); err != nil {
		return &ValidationError{Spec: "IPSecSpec", Field: "Key", Reason: err.Error(), Err: err}
	}
	return s.Common.validate("IPSecSpec")
}

// DeployApp implements Spec.
func (s IPSecSpec) DeployApp() (App, error) { return s.Deploy() }

// Deploy stands up the spec.
func (s IPSecSpec) Deploy() (*IPSec, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	st, err := nf.NewIPSecState(s.Key, s.MACKey)
	if err != nil {
		return nil, err
	}
	if err := s.Node.Register(nf.NewIPSecGateway(s.ID, st), s.Placement.OnNIC, 0); err != nil {
		return nil, err
	}
	out := &IPSec{Spec: s}
	if out.Injector, err = installFaults(s.Node.Cluster(), s.Faults); err != nil {
		return nil, err
	}
	if out.QoS, err = installTenancy(s.Node.Cluster(), []*core.Node{s.Node}, s.Tenancy); err != nil {
		return nil, err
	}
	return out, nil
}
