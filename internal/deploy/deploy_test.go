package deploy

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/actor"
	"repro/internal/apps/dt"
	"repro/internal/apps/rkv"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

func rkvTestCluster(t *testing.T, seed uint64, sched fault.Schedule, fo FailoverPolicy) (*core.Cluster, *RKV) {
	t.Helper()
	cl := core.NewCluster(seed)
	var nodes []*core.Node
	for i := 0; i < 3; i++ {
		nodes = append(nodes, cl.AddNode(core.Config{
			Name: fmt.Sprintf("kv%d", i), NIC: spec.LiquidIOII_CN2350(), LinkGbps: 10,
		}))
	}
	d, err := RKVSpec{
		Common: Common{Placement: NIC, Failover: fo, Faults: sched},
		Nodes:  nodes, BaseID: 100, MemLimit: 8 << 20,
	}.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	return cl, d
}

// TestRKVReadsSurviveLeaderCrash is the headline recovery scenario: the
// leader node crashes, the failover monitor triggers a re-election, and
// the store keeps serving — reads from follower memtables throughout
// the outage, writes again once the new leader is installed.
func TestRKVReadsSurviveLeaderCrash(t *testing.T) {
	crashAt := 2 * sim.Millisecond
	sched := fault.Schedule{Faults: []fault.Fault{
		fault.Crash("kv0", crashAt, 3*sim.Millisecond),
	}}
	cl, d := rkvTestCluster(t, 1, sched, FailoverPolicy{})
	client := workload.NewClient(cl, "cli", 10)

	send := func(at sim.Time, node string, id actor.ID, data []byte, status *rkv.Status) {
		cl.Eng.At(at, func() {
			client.Send(workload.Request{
				Node: node, Dst: id, Kind: rkv.KindReq, Data: data, Size: 512,
				OnResp: func(m actor.Msg) { *status = rkv.StatusOf(m.Data) },
			})
		})
	}
	rep := func(i int) (string, actor.ID) {
		r := d.Replicas[i]
		return r.Node.Name, r.Consensus.Actor.ID
	}

	var wrote, readDuring, wroteAfter rkv.Status
	n0, c0 := rep(0)
	n1, c1 := rep(1)
	// Before the crash: write through the leader so the value replicates.
	send(100*sim.Microsecond, n0, c0, rkv.PutReq([]byte("k"), []byte("v")), &wrote)
	// During the outage (past the detection delay): a follower must still
	// serve the read from its memtable.
	send(crashAt+sim.Millisecond, n1, c1, rkv.GetReq([]byte("k")), &readDuring)
	// Still during the outage, after re-election: the new leader (first
	// live replica in order, kv1) must accept a write.
	send(crashAt+1500*sim.Microsecond, n1, c1, rkv.PutReq([]byte("k2"), []byte("v2")), &wroteAfter)
	cl.Eng.Run()

	if wrote != rkv.StatusOK {
		t.Fatalf("pre-crash write status = %v, want OK", wrote)
	}
	if readDuring != rkv.StatusOK {
		t.Fatalf("read during leader outage = %v, want OK (followers serve reads locally)", readDuring)
	}
	if wroteAfter != rkv.StatusOK {
		t.Fatalf("write after re-election = %v, want OK", wroteAfter)
	}
	if d.Elections == 0 {
		t.Fatal("failover monitor never triggered an election")
	}
	// kv1 (first live replica in order) must have won the election. The
	// restarted kv0 may still carry a stale IsLeader flag until it
	// observes the higher ballot — that is expected; what matters is a
	// live leader exists off the crashed node.
	if !d.Replicas[1].Consensus.IsLeader {
		t.Fatal("kv1 did not take over leadership after the crash")
	}
}

// TestRKVFailoverDisabled checks Disabled keeps the monitor out: the
// crash happens, nobody triggers an election.
func TestRKVFailoverDisabled(t *testing.T) {
	sched := fault.Schedule{Faults: []fault.Fault{
		fault.Crash("kv0", sim.Millisecond, sim.Millisecond),
	}}
	cl, d := rkvTestCluster(t, 1, sched, FailoverPolicy{Disabled: true})
	cl.Eng.Run()
	if d.Elections != 0 {
		t.Fatalf("Elections = %d with failover disabled", d.Elections)
	}
}

// twoPartKeys returns write keys for txn i that land on two different
// participants (out of n), so commits genuinely span stores.
func twoPartKeys(i uint64, n int) ([]byte, []byte) {
	a := []byte(fmt.Sprintf("a%d", i))
	pa := dt.Partition(a, n)
	for j := 0; ; j++ {
		b := []byte(fmt.Sprintf("b%d-%d", i, j))
		if dt.Partition(b, n) != pa {
			return a, b
		}
	}
}

// TestDTCoordinatorCrashAtomicity kills the coordinator mid-window and
// checks 2PC's promise the hard way: every transaction's writes are
// all-or-nothing across participants, no transaction both aborts at the
// client and installs data, and no participant is left holding a lock.
func TestDTCoordinatorCrashAtomicity(t *testing.T) {
	cl := core.NewCluster(1)
	mk := func(name string) *core.Node {
		return cl.AddNode(core.Config{Name: name, NIC: spec.LiquidIOII_CN2350(), LinkGbps: 10})
	}
	coord := mk("coord")
	parts := []*core.Node{mk("p1"), mk("p2"), mk("p3")}
	const txnTimeout = 500 * sim.Microsecond
	d, err := DTSpec{
		Common: Common{
			Placement: NIC,
			Faults: fault.Schedule{Faults: []fault.Fault{
				fault.Crash("coord", 800*sim.Microsecond, 600*sim.Microsecond),
			}},
		},
		Coordinator: coord, Participants: parts, BaseID: 100,
		TxnTimeout: txnTimeout, LockLease: sim.Millisecond,
	}.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	client := workload.NewClient(cl, "cli", 10)

	const txns = 100
	outcomes := make(map[uint64]dt.Outcome)
	// Issue times: a steady stream every 25µs, except txns 28–47 fire as
	// a burst at 795µs — the coordinator is still chewing through their
	// 2PC rounds when it dies at 800µs, guaranteeing transactions
	// stranded mid-protocol for the sweep to abort after the restart.
	issueAt := func(i uint64) sim.Time {
		if i >= 28 && i < 48 {
			return 795 * sim.Microsecond
		}
		return sim.Time(i) * 25 * sim.Microsecond
	}
	for i := 0; i < txns; i++ {
		i := uint64(i)
		cl.Eng.At(issueAt(i), func() {
			ka, kb := twoPartKeys(i, len(parts))
			val := []byte(fmt.Sprintf("txn%d", i))
			client.Send(workload.Request{
				Node: "coord", Dst: 100, Kind: dt.KindTxn,
				Data: dt.EncodeTxn(dt.Txn{Writes: []dt.Op{
					{Key: ka, Value: val}, {Key: kb, Value: val},
				}}),
				Size: 512, FlowID: i,
				OnResp: func(m actor.Msg) {
					o, _ := dt.DecodeOutcome(m.Data)
					outcomes[i] = o
				},
			})
		})
	}
	cl.Eng.Run()

	lookup := func(k []byte) []byte {
		for _, st := range d.Stores {
			if r := st.Get(k); r != nil {
				return r.Value
			}
		}
		return nil
	}
	partial, committed := 0, 0
	for i := uint64(0); i < txns; i++ {
		ka, kb := twoPartKeys(i, len(parts))
		val := fmt.Sprintf("txn%d", i)
		installed := 0
		if string(lookup(ka)) == val {
			installed++
		}
		if string(lookup(kb)) == val {
			installed++
		}
		switch outcomes[i] {
		case dt.OutcomeCommitted:
			committed++
			if installed != 2 {
				t.Errorf("txn %d committed at client but %d/2 writes installed", i, installed)
			}
		case dt.OutcomeAborted:
			if installed != 0 {
				t.Errorf("txn %d aborted but %d/2 writes installed", i, installed)
			}
		default:
			// Swallowed by the coordinator outage: either outcome is
			// legal, but it must be atomic.
			if installed == 1 {
				partial++
				t.Errorf("txn %d (no client outcome) partially installed", i)
			}
		}
	}
	if committed == 0 {
		t.Fatal("no transaction committed — scenario did not exercise the commit path")
	}
	if d.Coord.TimeoutAborts == 0 {
		t.Fatal("sweep never timeout-aborted a stranded transaction")
	}
	now := cl.Eng.Now()
	for si, st := range d.Stores {
		if n := st.Locks(now, sim.Millisecond); n != 0 {
			t.Errorf("store %d: %d live locks after drain", si, n)
		}
		if n := st.Locks(0, -1); n != 0 {
			t.Errorf("store %d: %d stale lock flags after drain", si, n)
		}
	}
	_ = partial
}

// TestDTSpecRejectsEmptyParticipants pins the redesign fix: the legacy
// helper silently accepted an empty participant set.
func TestDTSpecRejectsEmptyParticipants(t *testing.T) {
	cl := core.NewCluster(1)
	coord := cl.AddNode(core.Config{Name: "coord", LinkGbps: 10})
	_, err := DTSpec{Coordinator: coord, BaseID: 100}.Deploy()
	if err == nil || !strings.Contains(err.Error(), "participant") {
		t.Fatalf("Deploy with no participants: err = %v, want participant error", err)
	}
	if _, err := (DTSpec{Participants: []*core.Node{coord}, BaseID: 100}).Deploy(); err == nil {
		t.Fatal("Deploy with no coordinator: want error")
	}
}

// TestRKVSpecFaultFreeMatchesLegacy guards the passivity promise: a
// spec deployment with no faults and an idle failover monitor behaves
// exactly like the legacy positional helper.
func TestRKVSpecFaultFreeMatchesLegacy(t *testing.T) {
	run := func(useSpec bool) string {
		cl := core.NewCluster(7)
		var nodes []*core.Node
		for i := 0; i < 3; i++ {
			nodes = append(nodes, cl.AddNode(core.Config{
				Name: fmt.Sprintf("kv%d", i), NIC: spec.LiquidIOII_CN2350(), LinkGbps: 10,
			}))
		}
		var dep *rkv.Deployment
		if useSpec {
			d, err := RKVSpec{Common: Common{Placement: NIC}, Nodes: nodes, BaseID: 100, MemLimit: 8 << 20}.Deploy()
			if err != nil {
				t.Fatal(err)
			}
			dep = d.Deployment
		} else {
			d, err := rkv.Deploy(nodes, 100, 8<<20, true)
			if err != nil {
				t.Fatal(err)
			}
			dep = d
		}
		client := workload.NewClient(cl, "cli", 10)
		var log []string
		for i := 0; i < 40; i++ {
			i := uint64(i)
			cl.Eng.At(sim.Time(i)*20*sim.Microsecond, func() {
				k := []byte(fmt.Sprintf("k%d", i%8))
				data := rkv.PutReq(k, []byte{byte(i)})
				if i%3 == 0 {
					data = rkv.GetReq(k)
				}
				client.Send(workload.Request{
					Node: dep.Replicas[0].Node.Name, Dst: dep.LeaderActor(),
					Kind: rkv.KindReq, Data: data, Size: 512, FlowID: i,
					OnResp: func(m actor.Msg) {
						log = append(log, fmt.Sprintf("%d:%v@%v", i, rkv.StatusOf(m.Data), cl.Eng.Now()))
					},
				})
			})
		}
		cl.Eng.Run()
		return strings.Join(log, "\n")
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("spec deployment diverges from legacy helper on a fault-free run:\nspec:\n%s\nlegacy:\n%s", a, b)
	}
}

func shardedCluster(t *testing.T, seed uint64, nNodes, shards, reps int) (*core.Cluster, *RKV) {
	t.Helper()
	cl := core.NewCluster(seed)
	var nodes []*core.Node
	for i := 0; i < nNodes; i++ {
		nodes = append(nodes, cl.AddNode(core.Config{
			Name: fmt.Sprintf("kv%d", i), NIC: spec.LiquidIOII_CN2350(), LinkGbps: 10,
		}))
	}
	d, err := RKVSpec{
		Common: Common{Placement: NIC},
		Nodes:  nodes, BaseID: 100, MemLimit: 8 << 20,
		Shards: shards, Replicas: reps,
	}.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	return cl, d
}

// TestRKVShardedLayout pins the scale-out deployment shape: one group
// per shard, leaders rotated onto distinct nodes, disjoint actor IDs,
// and the compatibility surface (embedded Deployment = shard 0).
func TestRKVShardedLayout(t *testing.T) {
	_, d := shardedCluster(t, 1, 8, 4, 3)
	if len(d.Groups) != 4 || d.Deployment != d.Groups[0] {
		t.Fatalf("got %d groups, embedded=%v", len(d.Groups), d.Deployment == d.Groups[0])
	}
	seenLeader := map[string]bool{}
	seenID := map[actor.ID]bool{}
	for g, grp := range d.Groups {
		if len(grp.Replicas) != 3 {
			t.Fatalf("shard %d has %d replicas", g, len(grp.Replicas))
		}
		l := grp.Leader()
		if l == nil {
			t.Fatalf("shard %d has no leader", g)
		}
		if want := fmt.Sprintf("kv%d", g); l.Node.Name != want {
			t.Fatalf("shard %d leads on %s, want %s (rotation)", g, l.Node.Name, want)
		}
		if seenLeader[l.Node.Name] {
			t.Fatalf("two shards lead on %s", l.Node.Name)
		}
		seenLeader[l.Node.Name] = true
		for _, rep := range grp.Replicas {
			for _, a := range []*actor.Actor{rep.Consensus.Actor, rep.Memtable.Actor} {
				if seenID[a.ID] {
					t.Fatalf("actor ID %d reused across groups", a.ID)
				}
				seenID[a.ID] = true
				if !a.Sharded || a.Shard != int32(g) {
					t.Fatalf("actor %d shard tag = (%v, %d), want (true, %d)", a.ID, a.Sharded, a.Shard, g)
				}
			}
		}
	}
}

// TestRKVShardedRouting drives writes and reads through the router:
// every request reaches its key's group leader and commits, and the
// keys actually spread over multiple shards.
func TestRKVShardedRouting(t *testing.T) {
	cl, d := shardedCluster(t, 2, 8, 4, 3)
	client := workload.NewClient(cl, "cli", 10)
	used := map[int]bool{}
	ok, n := 0, 24
	for i := 0; i < n; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*100*sim.Microsecond, func() {
			// Even steps write key-i; the following odd step reads it back,
			// routed by the same key so it reaches the same group.
			key := []byte(fmt.Sprintf("key-%d", i-i%2))
			used[d.ShardFor(key)] = true
			node, leader := d.LeaderFor(key)
			data := rkv.PutReq(key, []byte{byte(i)})
			if i%2 == 1 {
				data = rkv.GetReq(key)
			}
			client.Send(workload.Request{
				Node: node, Dst: leader, Kind: rkv.KindReq, Data: data, Size: 256,
				FlowID: uint64(i),
				OnResp: func(m actor.Msg) {
					if rkv.StatusOf(m.Data) == rkv.StatusOK {
						ok++
					}
				},
			})
		})
	}
	cl.Eng.Run()
	if ok != n {
		t.Fatalf("%d of %d routed requests succeeded", ok, n)
	}
	if len(used) < 2 {
		t.Fatalf("all keys landed on %d shard(s); router not spreading", len(used))
	}
}

// TestRKVShardedFailoverIsolated crashes the node leading shard 0
// (which also follows shards 2 and 3): only shard 0 runs an election;
// every other group's leader is untouched.
func TestRKVShardedFailoverIsolated(t *testing.T) {
	cl := core.NewCluster(3)
	var nodes []*core.Node
	for i := 0; i < 4; i++ {
		nodes = append(nodes, cl.AddNode(core.Config{
			Name: fmt.Sprintf("kv%d", i), NIC: spec.LiquidIOII_CN2350(), LinkGbps: 10,
		}))
	}
	d, err := RKVSpec{
		Common: Common{
			Placement: NIC,
			Faults: fault.Schedule{Faults: []fault.Fault{
				// Down for the whole observed run.
				fault.Crash("kv0", sim.Millisecond, 100*sim.Millisecond),
			}},
		},
		Nodes:  nodes, BaseID: 100, MemLimit: 8 << 20,
		Shards: 4, Replicas: 3,
	}.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	cl.Eng.RunUntil(10 * sim.Millisecond)
	if d.Elections != 1 {
		t.Fatalf("%d elections, want exactly 1 (only shard 0 lost its leader)", d.Elections)
	}
	// kv0 keeps a stale IsLeader flag while down (it never observes the
	// higher ballot); what matters is that shard 0's surviving replica
	// took over.
	if !d.Groups[0].Replicas[1].Consensus.IsLeader {
		t.Fatal("shard 0's surviving replica (kv1) did not take over")
	}
	for g := 1; g < 4; g++ {
		l := d.Groups[g].Leader()
		if l == nil || l.Node.Name != fmt.Sprintf("kv%d", g) {
			t.Fatalf("shard %d leader disturbed by kv0's crash: %v", g, l)
		}
	}
}

// TestRKVReshardMovesOneShare removes a shard from the router and
// verifies the consistent-hashing contract at the deployment surface:
// ≈1/N of sampled keys move, all onto surviving groups, and every other
// key keeps its group.
func TestRKVReshardMovesOneShare(t *testing.T) {
	_, d := shardedCluster(t, 4, 8, 8, 2)
	const keys = 4000
	before := make([]int, keys)
	for i := range before {
		before[i] = d.ShardFor([]byte(fmt.Sprintf("key-%d", i)))
	}
	const victim = 5
	d.Reshard(victim)
	moved := 0
	for i := range before {
		after := d.ShardFor([]byte(fmt.Sprintf("key-%d", i)))
		if after == victim {
			t.Fatalf("key %d still routed to removed shard", i)
		}
		if after != before[i] {
			if before[i] != victim {
				t.Fatalf("key %d moved %d→%d though shard %d was removed", i, before[i], after, victim)
			}
			moved++
		}
	}
	if frac := float64(moved) / keys; frac > 1.0/8+0.05 {
		t.Fatalf("reshard moved %.3f of keys, want ≈1/8", frac)
	}
}
