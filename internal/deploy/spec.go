package deploy

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/qos"
	"repro/internal/workload"
)

// This file is the spec-API v2 surface: the policy fields every
// application spec used to duplicate live in one embedded Common block,
// every spec implements the Spec interface, and every deployment
// implements App — so harnesses (ipipe-sim, ipipe-bench, golden replay)
// iterate specs generically instead of switching over five concrete
// types.

// Class re-exports the traffic-class vocabulary so spec authors tag
// tenants and requests without importing internal/qos directly.
type Class = qos.Class

// Traffic classes (see qos.Class): data is the zero value, control is
// never dropped, telemetry is shed first.
const (
	ClassData      = qos.ClassData
	ClassControl   = qos.ClassControl
	ClassTelemetry = qos.ClassTelemetry
)

// Common is the policy block shared by every application spec,
// embedded by value: placement, client retry, leader failover, fault
// schedule, and the multi-tenant QoS tenancy. Zero value = the legacy
// defaults (host placement, no retries, failover enabled with default
// detection where the app has a failover monitor, no faults, no QoS) —
// a spec with a zero Common deploys byte-for-byte like before the
// block existed.
type Common struct {
	// Placement offloads the app's offloadable actors when OnNIC.
	Placement Placement
	// Retry is the suggested client policy (exposed via the deployed
	// app; the deployment itself sends nothing).
	Retry RetryPolicy
	// Failover configures the leader-failover monitor on apps that have
	// one (RKV; ignored elsewhere).
	Failover FailoverPolicy
	// Faults is an optional failure schedule installed at deploy time.
	// Schedules install on classic and partitioned (PDES) clusters
	// alike; cluster-wide arms run at window boundaries (DESIGN.md §12).
	Faults fault.Schedule
	// Tenancy enables multi-tenant QoS: priority lanes on the app's
	// nodes, token-bucket admission on bound clients, and optionally the
	// SLO controller. nil = QoS disabled entirely.
	Tenancy *qos.Tenancy
}

// validate checks the block's policy fields (spec names the enclosing
// spec type for the error).
func (c *Common) validate(spec string) error {
	if err := c.Tenancy.Validate(); err != nil {
		return &ValidationError{Spec: spec, Field: "Tenancy", Reason: err.Error(), Err: err}
	}
	return nil
}

// Spec is a deployable application spec. All five concrete specs
// (RKVSpec, DTSpec, RTASpec, FirewallSpec, IPSecSpec) implement it by
// value, so harnesses hold []deploy.Spec and validate/deploy uniformly;
// the typed Deploy methods remain for callers that need the concrete
// deployment.
type Spec interface {
	// Validate checks the spec without deploying anything. Errors are
	// *ValidationError (never a panic), so harnesses can report the
	// offending spec and field.
	Validate() error
	// DeployApp validates and stands the spec up, returning the common
	// App surface.
	DeployApp() (App, error)
}

// App is the surface every deployed application shares.
type App interface {
	// AppName identifies the application kind ("rkv", "dt", "rta",
	// "firewall", "ipsec").
	AppName() string
	// FaultInjector returns the installed fault injector (nil when the
	// spec had no fault schedule).
	FaultInjector() *fault.Injector
	// QoSRuntime returns the installed tenancy runtime (nil when the
	// spec had no Tenancy block).
	QoSRuntime() *qos.Runtime
}

// ValidationError is a typed spec-validation failure.
type ValidationError struct {
	// Spec is the spec type ("RKVSpec", ...), Field the offending field.
	Spec   string
	Field  string
	Reason string
	// Err is the underlying cause when validation wrapped another typed
	// error (e.g. *qos.ConfigError).
	Err error
}

// Error implements error.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("deploy: invalid %s.%s: %s", e.Spec, e.Field, e.Reason)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ValidationError) Unwrap() error { return e.Err }

// installTenancy wires a spec's Tenancy block over the app's node set
// (no-op returning nil on a nil Tenancy).
func installTenancy(cl *core.Cluster, nodes []*core.Node, t *qos.Tenancy) (*qos.Runtime, error) {
	return qos.Install(cl, nodes, t)
}

// BindClient attaches an app's QoS admission to a workload client; a
// nil runtime (QoS disabled) binds nothing, so callers can wire
// unconditionally.
func BindClient(rt *qos.Runtime, cl *workload.Client) { rt.Bind(cl) }
