package deploy

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/actor"
	"repro/internal/apps/rkv"
	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

// specNodes builds a classic cluster with n offload-capable nodes.
func specNodes(seed uint64, n int) (*core.Cluster, []*core.Node) {
	cl := core.NewCluster(seed)
	var nodes []*core.Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, cl.AddNode(core.Config{
			Name: fmt.Sprintf("n%d", i), NIC: spec.LiquidIOII_CN2350(), LinkGbps: 10,
		}))
	}
	return cl, nodes
}

// TestSpecValidationTable walks the unified Spec surface: every concrete
// spec validates generically through the interface, structural errors
// and Tenancy errors come back as typed *ValidationError naming the
// spec and field (wrapping *qos.ConfigError where qos raised it), and
// nothing panics on garbage input.
func TestSpecValidationTable(t *testing.T) {
	_, nodes := specNodes(1, 3)
	badTenancy := &qos.Tenancy{Tenants: []qos.Tenant{{Name: "t"}}} // RatePerSec 0
	key := make([]byte, 32)

	cases := []struct {
		name     string
		s        Spec
		spec     string // expected ValidationError.Spec ("" = valid)
		field    string // expected ValidationError.Field
		qosField string // expected wrapped qos.ConfigError.Field ("" = none)
	}{
		{"rkv valid", RKVSpec{Nodes: nodes, BaseID: 100, MemLimit: 8 << 20}, "", "", ""},
		{"rkv no nodes", RKVSpec{BaseID: 100}, "RKVSpec", "Nodes", ""},
		{"rkv too many replicas", RKVSpec{Nodes: nodes, Replicas: 5}, "RKVSpec", "Replicas", ""},
		{"rkv negative shards", RKVSpec{Nodes: nodes, Shards: -1}, "RKVSpec", "Shards", ""},
		{"rkv bad tenancy", RKVSpec{Common: Common{Tenancy: badTenancy}, Nodes: nodes},
			"RKVSpec", "Tenancy", "Tenants[0].RatePerSec"},
		{"dt valid", DTSpec{Coordinator: nodes[0], Participants: nodes[1:], BaseID: 200}, "", "", ""},
		{"dt no coordinator", DTSpec{Participants: nodes[1:]}, "DTSpec", "Coordinator", ""},
		{"dt no participants", DTSpec{Coordinator: nodes[0]}, "DTSpec", "Participants", ""},
		{"dt bad tenancy", DTSpec{Common: Common{Tenancy: &qos.Tenancy{
			Controller: qos.ControllerConfig{Enabled: true},
		}}, Coordinator: nodes[0], Participants: nodes[1:]},
			"DTSpec", "Tenancy", "Controller.Enabled"},
		{"rta valid", RTASpec{Node: nodes[0], Aggregator: nodes[1], BaseID: 300, TopN: 4}, "", "", ""},
		{"rta no nodes", RTASpec{TopN: 4}, "RTASpec", "Node", ""},
		{"rta bad tenancy", RTASpec{Common: Common{Tenancy: &qos.Tenancy{
			Lanes: qos.LaneConfig{DataCap: -1},
		}}, Node: nodes[0], Aggregator: nodes[1]},
			"RTASpec", "Tenancy", "Lanes.DataCap"},
		{"firewall valid", FirewallSpec{Node: nodes[0], ID: 400}, "", "", ""},
		{"firewall no node", FirewallSpec{ID: 400}, "FirewallSpec", "Node", ""},
		{"firewall bad tenancy", FirewallSpec{Common: Common{Tenancy: &qos.Tenancy{
			Controller: qos.ControllerConfig{Alpha: 2},
		}}, Node: nodes[0]}, "FirewallSpec", "Tenancy", "Controller.Alpha"},
		{"ipsec valid", IPSecSpec{Node: nodes[0], ID: 500, Key: key}, "", "", ""},
		{"ipsec no node", IPSecSpec{ID: 500, Key: key}, "IPSecSpec", "Node", ""},
		{"ipsec short key", IPSecSpec{Node: nodes[0], ID: 500, Key: key[:5]}, "IPSecSpec", "Key", ""},
		{"ipsec bad tenancy", IPSecSpec{Common: Common{Tenancy: badTenancy},
			Node: nodes[0], ID: 500, Key: key}, "IPSecSpec", "Tenancy", "Tenants[0].RatePerSec"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate()
			if tc.spec == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("Validate() = %v (%T), want *ValidationError", err, err)
			}
			if ve.Spec != tc.spec || ve.Field != tc.field {
				t.Fatalf("ValidationError = %s.%s, want %s.%s", ve.Spec, ve.Field, tc.spec, tc.field)
			}
			if tc.qosField != "" {
				var ce *qos.ConfigError
				if !errors.As(err, &ce) {
					t.Fatalf("error chain %v does not unwrap to *qos.ConfigError", err)
				}
				if ce.Field != tc.qosField {
					t.Fatalf("wrapped ConfigError.Field = %q, want %q", ce.Field, tc.qosField)
				}
			}
		})
	}
}

// TestSpecDeployAppSurface deploys every application kind through the
// generic Spec/App interfaces in one cluster: names are the shared
// vocabulary, and QoSRuntime is nil exactly when the spec had no
// Tenancy block.
func TestSpecDeployAppSurface(t *testing.T) {
	_, nodes := specNodes(1, 6)
	tenancy := &qos.Tenancy{Tenants: []qos.Tenant{{Name: "a", RatePerSec: 1e6}}}
	specs := []struct {
		s       Spec
		name    string
		wantQoS bool
	}{
		{RKVSpec{Common: Common{Placement: NIC, Tenancy: tenancy},
			Nodes: nodes[:3], BaseID: 100, MemLimit: 8 << 20}, "rkv", true},
		{DTSpec{Coordinator: nodes[3], Participants: nodes[4:], BaseID: 300}, "dt", false},
		{RTASpec{Common: Common{Placement: NIC}, Node: nodes[4], Aggregator: nodes[5],
			BaseID: 400, TopN: 4}, "rta", false},
		{FirewallSpec{Common: Common{Placement: NIC, Tenancy: tenancy},
			Node: nodes[5], ID: 500}, "firewall", true},
		{IPSecSpec{Node: nodes[3], ID: 600, Key: make([]byte, 32)}, "ipsec", false},
	}
	for _, tc := range specs {
		app, err := tc.s.DeployApp()
		if err != nil {
			t.Fatalf("%s: DeployApp: %v", tc.name, err)
		}
		if app.AppName() != tc.name {
			t.Errorf("AppName = %q, want %q", app.AppName(), tc.name)
		}
		if got := app.QoSRuntime() != nil; got != tc.wantQoS {
			t.Errorf("%s: QoSRuntime != nil is %v, want %v", tc.name, got, tc.wantQoS)
		}
		if app.FaultInjector() != nil {
			t.Errorf("%s: FaultInjector non-nil without a schedule", tc.name)
		}
	}
}

// TestSpecTenancyControllerRequiresClassicCluster pins the PDES
// restriction at deploy time: a partitioned cluster rejects an
// SLO-controller Tenancy with a typed qos.ConfigError instead of
// deploying a racy loop.
func TestSpecTenancyControllerRequiresClassicCluster(t *testing.T) {
	cl := core.NewPartitionedCluster(1, 2)
	n := cl.AddNode(core.Config{Name: "n0", NIC: spec.LiquidIOII_CN2350(), LinkGbps: 10,
		DisableMigration: true})
	_, err := FirewallSpec{
		Common: Common{Placement: NIC, Tenancy: &qos.Tenancy{
			Tenants:    []qos.Tenant{{Name: "a", RatePerSec: 1e6}},
			Controller: qos.ControllerConfig{Enabled: true},
		}},
		Node: n, ID: 100,
	}.Deploy()
	var ce *qos.ConfigError
	if !errors.As(err, &ce) || ce.Field != "Controller.Enabled" {
		t.Fatalf("partitioned deploy with controller: err = %v, want ConfigError on Controller.Enabled", err)
	}
}

// TestDefaultCommonMatchesPreQoSFingerprint is the legacy-parity gate
// for the spec-API v2 + QoS PR: a deployment with the zero Common block
// (no Tenancy) must reproduce the pre-QoS runtime byte-for-byte — same
// response log, same invariant fingerprint — as the plain apps-layer
// deployment with no QoS code anywhere near the message path.
func TestDefaultCommonMatchesPreQoSFingerprint(t *testing.T) {
	run := func(useSpec bool) (string, string) {
		cl, nodes := specNodes(11, 3)
		chk := invariant.New(cl.Eng)
		cl.EnableInvariants(chk)
		var dep *rkv.Deployment
		if useSpec {
			d, err := RKVSpec{Nodes: nodes, BaseID: 100, MemLimit: 8 << 20}.Deploy()
			if err != nil {
				t.Fatal(err)
			}
			if d.QoS != nil {
				t.Fatal("zero Common installed a QoS runtime")
			}
			dep = d.Deployment
		} else {
			d, err := rkv.Deploy(nodes, 100, 8<<20, false)
			if err != nil {
				t.Fatal(err)
			}
			dep = d
		}
		client := workload.NewClient(cl, "cli", 10)
		var log []string
		for i := 0; i < 64; i++ {
			i := uint64(i)
			cl.Eng.At(sim.Time(i)*15*sim.Microsecond, func() {
				k := []byte(fmt.Sprintf("k%d", i%16))
				data := rkv.PutReq(k, []byte{byte(i)})
				if i%4 == 0 {
					data = rkv.GetReq(k)
				}
				client.Send(workload.Request{
					Node: dep.Replicas[0].Node.Name, Dst: dep.LeaderActor(),
					Kind: rkv.KindReq, Data: data, Size: 256, FlowID: i,
					OnResp: func(m actor.Msg) {
						log = append(log, fmt.Sprintf("%d:%v@%v", i, rkv.StatusOf(m.Data), cl.Eng.Now()))
					},
				})
			})
		}
		cl.Eng.Run()
		return strings.Join(log, "\n"), chk.Fingerprint()
	}

	specLog, specFP := run(true)
	legacyLog, legacyFP := run(false)
	if specLog != legacyLog {
		t.Errorf("response log diverged:\nspec:\n%s\nlegacy:\n%s", specLog, legacyLog)
	}
	if specFP != legacyFP {
		t.Errorf("invariant fingerprint diverged:\nspec:   %s\nlegacy: %s", specFP, legacyFP)
	}
}
