// Package dmo implements iPipe's distributed memory object abstraction
// (§3.3). A DMO is a chunk of memory identified by an object ID rather
// than a pointer; actors index their data structures by object IDs so
// the runtime can relocate all of an actor's objects between NIC and
// host memory during migration without invalidating the actor's state.
//
// Invariants enforced here, straight from the paper:
//
//   - a DMO belongs to exactly one actor; no sharing across actors;
//   - at any time a DMO has exactly one copy, on the NIC or on the host;
//   - actors never read/write objects across the PCIe bus (remote access
//     is ~10x slower): the runtime moves objects with the actor instead;
//   - each registered actor draws from a fixed-size memory region; when
//     it consumes more than the framework provisioned, allocation fails.
package dmo

import (
	"errors"
	"fmt"

	"repro/internal/invariant"
)

// ObjID names a distributed memory object. IDs are unique per deployment
// side-pair (allocated by the Store), never reused.
type ObjID = uint64

// Side identifies which memory holds an object's single copy.
type Side uint8

// The two execution zones.
const (
	NIC Side = iota
	Host
)

// String renders the side.
func (s Side) String() string {
	if s == NIC {
		return "NIC"
	}
	return "Host"
}

// Error values surfaced to actors.
var (
	ErrNoSuchObject    = errors.New("dmo: no such object")
	ErrWrongActor      = errors.New("dmo: object owned by another actor")
	ErrRegionExhausted = errors.New("dmo: actor memory region exhausted")
	ErrBounds          = errors.New("dmo: access out of object bounds")
	ErrNoRegion        = errors.New("dmo: actor has no registered region")
)

type object struct {
	owner uint32
	side  Side
	data  []byte
}

type region struct {
	limit int
	used  int
}

// Store is the object table plus region allocator for one node. Both the
// NIC-side and host-side tables of the paper are views into one Store,
// distinguished by each object's Side; this mirrors the paper's paired
// iPipe-host / iPipe-NIC object tables while keeping migration atomic.
type Store struct {
	objects map[ObjID]*object
	regions map[uint32]*region
	nextID  ObjID

	// Migrations counts object moves for experiment accounting.
	Migrations uint64
	// BytesMigrated accumulates migration volume (drives Figure 18's
	// phase-3 cost).
	BytesMigrated uint64

	// chk/chkLabel: the invariant checker shadows region byte accounting
	// (alloc = free + live, never over limit); nil = disabled.
	chk      *invariant.Checker
	chkLabel string
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{objects: map[ObjID]*object{}, regions: map[uint32]*region{}, nextID: 1}
}

// EnableInvariants attaches the byte-accounting checker; label names
// this store (the node) in reports. Attach before the first Alloc or
// the shadow counts start behind the real ones.
func (s *Store) EnableInvariants(chk *invariant.Checker, label string) {
	if chk == nil || s.chk != nil {
		return
	}
	s.chk = chk
	s.chkLabel = label
}

// Register provisions an actor's memory region of limit bytes. On the
// LiquidIO cards this is carved from the firmware's global bootmem
// region at init time (§3.3). Re-registering resizes the limit.
func (s *Store) Register(actor uint32, limit int) {
	if r, ok := s.regions[actor]; ok {
		r.limit = limit
		return
	}
	s.regions[actor] = &region{limit: limit}
}

// RegionUse reports an actor's (used, limit) bytes.
func (s *Store) RegionUse(actor uint32) (used, limit int) {
	r, ok := s.regions[actor]
	if !ok {
		return 0, 0
	}
	return r.used, r.limit
}

// Alloc creates an object of size bytes for the actor on the given side.
func (s *Store) Alloc(actor uint32, size int, side Side) (ObjID, error) {
	if size < 0 {
		return 0, fmt.Errorf("dmo: negative size %d", size)
	}
	r, ok := s.regions[actor]
	if !ok {
		return 0, ErrNoRegion
	}
	if r.used+size > r.limit {
		return 0, ErrRegionExhausted
	}
	r.used += size
	id := s.nextID
	s.nextID++
	s.objects[id] = &object{owner: actor, side: side, data: make([]byte, size)}
	s.chk.DMOAlloc(s.chkLabel, actor, size, r.used, r.limit)
	return id, nil
}

// lookup fetches an object enforcing ownership. The ownership check is
// the software analogue of the TLB trap of §3.4: an actor touching
// another actor's region gets an error, never the data.
func (s *Store) lookup(actor uint32, id ObjID) (*object, error) {
	o, ok := s.objects[id]
	if !ok {
		return nil, ErrNoSuchObject
	}
	if o.owner != actor {
		return nil, ErrWrongActor
	}
	return o, nil
}

// Free releases an object and returns its bytes to the actor's region.
func (s *Store) Free(actor uint32, id ObjID) error {
	o, err := s.lookup(actor, id)
	if err != nil {
		return err
	}
	s.regions[actor].used -= len(o.data)
	delete(s.objects, id)
	s.chk.DMOFree(s.chkLabel, actor, len(o.data), s.regions[actor].used)
	return nil
}

// Size returns an object's size.
func (s *Store) Size(actor uint32, id ObjID) (int, error) {
	o, err := s.lookup(actor, id)
	if err != nil {
		return 0, err
	}
	return len(o.data), nil
}

// SideOf returns which memory currently holds the object.
func (s *Store) SideOf(actor uint32, id ObjID) (Side, error) {
	o, err := s.lookup(actor, id)
	if err != nil {
		return 0, err
	}
	return o.side, nil
}

// Read copies n bytes at offset off out of the object.
func (s *Store) Read(actor uint32, id ObjID, off, n int) ([]byte, error) {
	o, err := s.lookup(actor, id)
	if err != nil {
		return nil, err
	}
	if off < 0 || n < 0 || off+n > len(o.data) {
		return nil, ErrBounds
	}
	out := make([]byte, n)
	copy(out, o.data[off:off+n])
	return out, nil
}

// Write copies p into the object at offset off.
func (s *Store) Write(actor uint32, id ObjID, off int, p []byte) error {
	o, err := s.lookup(actor, id)
	if err != nil {
		return err
	}
	if off < 0 || off+len(p) > len(o.data) {
		return ErrBounds
	}
	copy(o.data[off:], p)
	return nil
}

// Memset fills [off, off+n) with b (dmo_mmset of Table 4).
func (s *Store) Memset(actor uint32, id ObjID, off, n int, b byte) error {
	o, err := s.lookup(actor, id)
	if err != nil {
		return err
	}
	if off < 0 || n < 0 || off+n > len(o.data) {
		return ErrBounds
	}
	for i := off; i < off+n; i++ {
		o.data[i] = b
	}
	return nil
}

// Memcpy copies n bytes between two objects of the same actor
// (dmo_mmcpy). Source and destination ranges must not alias; both
// objects must be local to the same side, per the no-cross-PCIe rule.
func (s *Store) Memcpy(actor uint32, dst ObjID, dstOff int, src ObjID, srcOff, n int) error {
	d, err := s.lookup(actor, dst)
	if err != nil {
		return err
	}
	sr, err := s.lookup(actor, src)
	if err != nil {
		return err
	}
	if d.side != sr.side {
		return fmt.Errorf("dmo: memcpy across PCIe (src %v, dst %v)", sr.side, d.side)
	}
	if srcOff < 0 || n < 0 || srcOff+n > len(sr.data) || dstOff < 0 || dstOff+n > len(d.data) {
		return ErrBounds
	}
	copy(d.data[dstOff:dstOff+n], sr.data[srcOff:srcOff+n])
	return nil
}

// Memmove is Memcpy that tolerates overlap within a single object.
func (s *Store) Memmove(actor uint32, id ObjID, dstOff, srcOff, n int) error {
	o, err := s.lookup(actor, id)
	if err != nil {
		return err
	}
	if srcOff < 0 || dstOff < 0 || n < 0 || srcOff+n > len(o.data) || dstOff+n > len(o.data) {
		return ErrBounds
	}
	copy(o.data[dstOff:dstOff+n], o.data[srcOff:srcOff+n])
	return nil
}

// MigrateActor moves every object the actor owns to the target side and
// returns the total bytes moved (the dominant cost of migration phase 3,
// Figure 18). Objects already on the target side are untouched.
func (s *Store) MigrateActor(actor uint32, to Side) (bytes int) {
	for _, o := range s.objects {
		if o.owner != actor || o.side == to {
			continue
		}
		o.side = to
		bytes += len(o.data)
	}
	if bytes > 0 {
		s.Migrations++
		s.BytesMigrated += uint64(bytes)
	}
	return bytes
}

// MigrateObject moves a single object (dmo_migrate of Table 4).
func (s *Store) MigrateObject(actor uint32, id ObjID, to Side) (int, error) {
	o, err := s.lookup(actor, id)
	if err != nil {
		return 0, err
	}
	if o.side == to {
		return 0, nil
	}
	o.side = to
	s.Migrations++
	s.BytesMigrated += uint64(len(o.data))
	return len(o.data), nil
}

// ActorBytes returns the total object bytes an actor holds on each side.
func (s *Store) ActorBytes(actor uint32) (nic, host int) {
	for _, o := range s.objects {
		if o.owner != actor {
			continue
		}
		if o.side == NIC {
			nic += len(o.data)
		} else {
			host += len(o.data)
		}
	}
	return nic, host
}

// DestroyActor frees every object and the region of a deregistered
// actor (the DoS watchdog uses this, §3.4).
func (s *Store) DestroyActor(actor uint32) {
	freed := 0
	for id, o := range s.objects {
		if o.owner == actor {
			freed += len(o.data)
			delete(s.objects, id)
		}
	}
	delete(s.regions, actor)
	s.chk.DMODestroy(s.chkLabel, actor, freed)
}

// Objects reports the live object count (tests and leak checks).
func (s *Store) Objects() int { return len(s.objects) }
