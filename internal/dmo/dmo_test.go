package dmo

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newActorStore(t *testing.T, limit int) *Store {
	t.Helper()
	s := NewStore()
	s.Register(1, limit)
	return s
}

func TestAllocReadWrite(t *testing.T) {
	s := newActorStore(t, 1024)
	id, err := s.Alloc(1, 100, NIC)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, id, 10, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(1, id, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Read = %q", got)
	}
	if n, _ := s.Size(1, id); n != 100 {
		t.Fatalf("Size = %d", n)
	}
	if side, _ := s.SideOf(1, id); side != NIC {
		t.Fatalf("SideOf = %v", side)
	}
}

func TestRegionExhaustion(t *testing.T) {
	s := newActorStore(t, 100)
	if _, err := s.Alloc(1, 60, NIC); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(1, 60, NIC); !errors.Is(err, ErrRegionExhausted) {
		t.Fatalf("over-limit alloc err = %v", err)
	}
	// Freeing returns capacity.
	id, _ := s.Alloc(1, 40, NIC)
	if err := s.Free(1, id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(1, 40, NIC); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
	used, limit := s.RegionUse(1)
	if used != 100 || limit != 100 {
		t.Fatalf("RegionUse = %d/%d", used, limit)
	}
}

func TestUnregisteredActorCannotAlloc(t *testing.T) {
	s := NewStore()
	if _, err := s.Alloc(7, 10, NIC); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("err = %v, want ErrNoRegion", err)
	}
}

func TestOwnershipIsolation(t *testing.T) {
	s := NewStore()
	s.Register(1, 1000)
	s.Register(2, 1000)
	id, _ := s.Alloc(1, 50, NIC)
	// Actor 2 must not read, write, free, or resize actor 1's object.
	if _, err := s.Read(2, id, 0, 1); !errors.Is(err, ErrWrongActor) {
		t.Fatalf("cross-actor read err = %v", err)
	}
	if err := s.Write(2, id, 0, []byte{1}); !errors.Is(err, ErrWrongActor) {
		t.Fatalf("cross-actor write err = %v", err)
	}
	if err := s.Free(2, id); !errors.Is(err, ErrWrongActor) {
		t.Fatalf("cross-actor free err = %v", err)
	}
}

func TestBoundsChecks(t *testing.T) {
	s := newActorStore(t, 1000)
	id, _ := s.Alloc(1, 10, NIC)
	cases := []error{
		s.Write(1, id, 8, []byte("toolong")),
		s.Memset(1, id, -1, 5, 0),
		s.Memset(1, id, 5, 6, 0),
		s.Memmove(1, id, 5, 0, 6),
	}
	for i, err := range cases {
		if !errors.Is(err, ErrBounds) {
			t.Errorf("case %d: err = %v, want ErrBounds", i, err)
		}
	}
	if _, err := s.Read(1, id, 5, 6); !errors.Is(err, ErrBounds) {
		t.Errorf("read err = %v", err)
	}
}

func TestNoSuchObject(t *testing.T) {
	s := newActorStore(t, 100)
	if _, err := s.Read(1, 999, 0, 1); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemset(t *testing.T) {
	s := newActorStore(t, 100)
	id, _ := s.Alloc(1, 8, NIC)
	s.Memset(1, id, 2, 4, 0xAB)
	got, _ := s.Read(1, id, 0, 8)
	want := []byte{0, 0, 0xAB, 0xAB, 0xAB, 0xAB, 0, 0}
	if !bytes.Equal(got, want) {
		t.Fatalf("Memset result %x, want %x", got, want)
	}
}

func TestMemcpyBetweenObjects(t *testing.T) {
	s := newActorStore(t, 100)
	a, _ := s.Alloc(1, 10, NIC)
	b, _ := s.Alloc(1, 10, NIC)
	s.Write(1, a, 0, []byte("abcdef"))
	if err := s.Memcpy(1, b, 2, a, 1, 3); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read(1, b, 2, 3)
	if string(got) != "bcd" {
		t.Fatalf("Memcpy result %q", got)
	}
}

func TestMemcpyAcrossPCIeRejected(t *testing.T) {
	s := newActorStore(t, 100)
	a, _ := s.Alloc(1, 10, NIC)
	b, _ := s.Alloc(1, 10, Host)
	if err := s.Memcpy(1, b, 0, a, 0, 5); err == nil {
		t.Fatal("memcpy across PCIe sides should fail (no remote access rule)")
	}
}

func TestMemmoveOverlap(t *testing.T) {
	s := newActorStore(t, 100)
	id, _ := s.Alloc(1, 8, NIC)
	s.Write(1, id, 0, []byte("abcdefgh"))
	if err := s.Memmove(1, id, 2, 0, 6); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read(1, id, 0, 8)
	if string(got) != "ababcdef" {
		t.Fatalf("Memmove overlap result %q", got)
	}
}

func TestMigrateActorMovesAllObjects(t *testing.T) {
	s := NewStore()
	s.Register(1, 1000)
	s.Register(2, 1000)
	a, _ := s.Alloc(1, 100, NIC)
	bID, _ := s.Alloc(1, 200, NIC)
	other, _ := s.Alloc(2, 50, NIC)
	s.Write(1, a, 0, []byte("persist"))
	moved := s.MigrateActor(1, Host)
	if moved != 300 {
		t.Fatalf("moved %d bytes, want 300", moved)
	}
	for _, id := range []ObjID{a, bID} {
		if side, _ := s.SideOf(1, id); side != Host {
			t.Fatalf("object %d not migrated", id)
		}
	}
	if side, _ := s.SideOf(2, other); side != NIC {
		t.Fatal("other actor's object moved")
	}
	// Data survives migration.
	got, _ := s.Read(1, a, 0, 7)
	if string(got) != "persist" {
		t.Fatalf("data lost in migration: %q", got)
	}
	// Idempotent: second migration moves nothing.
	if again := s.MigrateActor(1, Host); again != 0 {
		t.Fatalf("re-migration moved %d bytes", again)
	}
}

func TestMigrateObject(t *testing.T) {
	s := newActorStore(t, 1000)
	id, _ := s.Alloc(1, 64, NIC)
	n, err := s.MigrateObject(1, id, Host)
	if err != nil || n != 64 {
		t.Fatalf("MigrateObject = %d, %v", n, err)
	}
	n, _ = s.MigrateObject(1, id, Host)
	if n != 0 {
		t.Fatal("same-side migration should be free")
	}
}

func TestActorBytes(t *testing.T) {
	s := newActorStore(t, 1000)
	s.Alloc(1, 100, NIC)
	s.Alloc(1, 200, Host)
	nic, host := s.ActorBytes(1)
	if nic != 100 || host != 200 {
		t.Fatalf("ActorBytes = %d/%d", nic, host)
	}
}

func TestDestroyActor(t *testing.T) {
	s := NewStore()
	s.Register(1, 1000)
	s.Register(2, 1000)
	s.Alloc(1, 10, NIC)
	s.Alloc(1, 10, NIC)
	keep, _ := s.Alloc(2, 10, NIC)
	s.DestroyActor(1)
	if s.Objects() != 1 {
		t.Fatalf("Objects = %d, want 1", s.Objects())
	}
	if _, err := s.Read(2, keep, 0, 1); err != nil {
		t.Fatal("survivor object damaged")
	}
	if _, err := s.Alloc(1, 10, NIC); !errors.Is(err, ErrNoRegion) {
		t.Fatal("destroyed actor's region still usable")
	}
}

func TestNegativeAllocRejected(t *testing.T) {
	s := newActorStore(t, 100)
	if _, err := s.Alloc(1, -5, NIC); err == nil {
		t.Fatal("negative alloc succeeded")
	}
}

// Property: region accounting never goes negative and used never
// exceeds limit under random alloc/free sequences.
func TestRegionAccountingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewStore()
		s.Register(1, 4096)
		var live []ObjID
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				i := int(op) % len(live)
				s.Free(1, live[i])
				live = append(live[:i], live[i+1:]...)
			} else {
				if id, err := s.Alloc(1, int(op%512), NIC); err == nil {
					live = append(live, id)
				}
			}
			used, limit := s.RegionUse(1)
			if used < 0 || used > limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
