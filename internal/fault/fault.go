// Package fault is the deterministic failure injector: it turns a
// declarative Schedule of faults — node crash/restart, NIC-complex
// failure, NIC overload bursts, link loss, link flapping, network
// partitions, accelerator stalls — into first-class simulator events on
// the cluster's engine. Every activation and restoration is recorded in
// a byte-deterministic log (same seed + same schedule ⇒ identical
// bytes), and when tracing is enabled each fault appears as a span on a
// dedicated "faults" trace group, so degraded regimes are visible right
// next to the per-core execution lanes they perturb.
//
// The injector only *causes* failures; the recovery mechanisms live
// where they belong — client retry with capped exponential backoff in
// internal/workload, Paxos leader failover in internal/apps/rkv,
// transaction-timeout aborts and lock leases in internal/apps/dt, and
// crash semantics plus NIC-down actor re-homing in internal/core.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// NodeCrash fail-stops the whole node for Dur, then restarts it.
	NodeCrash Kind = iota + 1
	// NICDown kills only the SmartNIC processing complex: its actors
	// re-home to the host and ingress takes the host path.
	NICDown
	// NICOverload dilates NIC-core service times by Factor for Dur.
	NICOverload
	// LinkLoss drops the node's traffic (both directions) with
	// probability Rate for Dur.
	LinkLoss
	// LinkFlap repeatedly severs and heals the node's connectivity:
	// down Period/2, up Period/2, for the whole Dur window.
	LinkFlap
	// Partition severs the Nodes group from every other attached node
	// (including clients) for Dur; the group stays internally connected.
	Partition
	// AccelStall occupies the named accelerator Unit for Dur; invocations
	// queue behind the blockage.
	AccelStall
)

// String names the fault kind for logs and trace spans.
func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "crash"
	case NICDown:
		return "nic-down"
	case NICOverload:
		return "overload"
	case LinkLoss:
		return "loss"
	case LinkFlap:
		return "flap"
	case Partition:
		return "partition"
	case AccelStall:
		return "stall"
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Fault is one scheduled failure. At is absolute virtual time; Dur the
// active window (every kind requires Dur > 0 — open-ended faults would
// make runs dependent on harness stop times, breaking determinism
// comparisons). Jitter, when set, shifts the start by a seed-derived
// offset in [0, Jitter), drawn from the engine's PRNG at install time.
type Fault struct {
	Kind  Kind
	Node  string   // target node (all kinds except Partition)
	Nodes []string // Partition: the group to cut off

	At  sim.Time
	Dur sim.Time

	Rate   float64  // LinkLoss drop probability (0, 1]
	Factor float64  // NICOverload service-time multiplier (> 1)
	Period sim.Time // LinkFlap cycle (default Dur/4)
	Unit   string   // AccelStall accelerator name
	Jitter sim.Time // optional seed-derived start offset
}

// label renders the fault for the deterministic log and trace spans.
func (f Fault) label() string {
	switch f.Kind {
	case NICOverload:
		return fmt.Sprintf("%s %s x%.3g", f.Kind, f.Node, f.Factor)
	case LinkLoss:
		return fmt.Sprintf("%s %s %.3g", f.Kind, f.Node, f.Rate)
	case Partition:
		return fmt.Sprintf("%s [%s]", f.Kind, strings.Join(f.Nodes, " "))
	case AccelStall:
		return fmt.Sprintf("%s %s %s", f.Kind, f.Node, f.Unit)
	}
	return fmt.Sprintf("%s %s", f.Kind, f.Node)
}

// Crash builds a node crash/restart fault.
func Crash(node string, at, dur sim.Time) Fault {
	return Fault{Kind: NodeCrash, Node: node, At: at, Dur: dur}
}

// NICFail builds a SmartNIC-complex failure.
func NICFail(node string, at, dur sim.Time) Fault {
	return Fault{Kind: NICDown, Node: node, At: at, Dur: dur}
}

// Overload builds a NIC overload burst (service times × factor).
func Overload(node string, at, dur sim.Time, factor float64) Fault {
	return Fault{Kind: NICOverload, Node: node, At: at, Dur: dur, Factor: factor}
}

// Loss builds a lossy-link window on the node's traffic.
func Loss(node string, at, dur sim.Time, rate float64) Fault {
	return Fault{Kind: LinkLoss, Node: node, At: at, Dur: dur, Rate: rate}
}

// Flap builds a flapping-link window (down Period/2, up Period/2).
func Flap(node string, at, dur, period sim.Time) Fault {
	return Fault{Kind: LinkFlap, Node: node, At: at, Dur: dur, Period: period}
}

// Cut builds a partition isolating the given group from everyone else.
func Cut(at, dur sim.Time, nodes ...string) Fault {
	return Fault{Kind: Partition, Nodes: nodes, At: at, Dur: dur}
}

// Stall builds an accelerator stall on the node's named unit.
func Stall(node, unit string, at, dur sim.Time) Fault {
	return Fault{Kind: AccelStall, Node: node, Unit: unit, At: at, Dur: dur}
}

// Schedule is a declarative set of faults, the Faults field of the
// deployment specs (internal/deploy).
type Schedule struct {
	Faults []Fault
}

// Validate checks the schedule against a cluster: known target nodes,
// positive windows, sane parameters. Partition/LinkLoss/LinkFlap targets
// may name client endpoints (attached to the network but not cluster
// nodes), so only node-runtime faults require a cluster node.
func (s Schedule) Validate(cl *core.Cluster) error {
	for i, f := range s.Faults {
		where := func(msg string, args ...any) error {
			return fmt.Errorf("fault %d (%s): %s", i, f.label(), fmt.Sprintf(msg, args...))
		}
		if f.At < 0 {
			return where("negative start time %v", f.At)
		}
		if f.Dur <= 0 {
			return where("fault window must be positive, got %v", f.Dur)
		}
		switch f.Kind {
		case NodeCrash, NICDown, NICOverload, AccelStall:
			if cl.Node(f.Node) == nil {
				return where("unknown node %q", f.Node)
			}
		case LinkLoss, LinkFlap:
			if f.Node == "" {
				return where("needs a target node")
			}
		case Partition:
			if len(f.Nodes) == 0 {
				return where("needs a non-empty group")
			}
		default:
			return where("unknown fault kind")
		}
		switch f.Kind {
		case NICOverload:
			if f.Factor <= 1 {
				return where("overload factor must exceed 1, got %g", f.Factor)
			}
		case LinkLoss:
			if f.Rate <= 0 || f.Rate > 1 {
				return where("loss rate must be in (0, 1], got %g", f.Rate)
			}
		case AccelStall:
			if f.Unit == "" {
				return where("needs an accelerator unit name")
			}
		}
	}
	return nil
}

// Injector is an installed schedule: its events are on the engine, its
// trace lane is registered, and its activation log fills in as the run
// progresses.
type Injector struct {
	cl    *core.Cluster
	eng   *sim.Engine
	tr    *obs.Tracer
	track obs.TrackID
	// chk, when the cluster has invariant checking on, receives a
	// fingerprint epoch at every activation and restoration, so the
	// conservation counters are snapshotted per fault window.
	chk *invariant.Checker

	// Injected counts fault activations; Active tracks currently-active
	// windows (both useful to tests and experiment rows).
	Injected int
	Active   int

	applied []string
}

// Install validates the schedule and schedules every fault on the
// cluster's engine. Call before Run; faults whose windows start in the
// past are rejected by the engine (sim.At panics), which is the
// intended loud failure for a mis-built schedule. Installing an empty
// schedule is allowed and yields an injector that never fires.
func Install(cl *core.Cluster, s Schedule) (*Injector, error) {
	if cl.Partitions() > 1 && len(s.Faults) > 0 {
		// Fault mechanisms (crash drains, loss-rate writes, partition
		// cuts) mutate cluster-wide state that PDES partitions read
		// concurrently; the classic engine remains the fault vehicle.
		return nil, errors.New("fault: injection is not supported on partitioned (PDES) clusters")
	}
	if err := s.Validate(cl); err != nil {
		return nil, err
	}
	in := &Injector{cl: cl, eng: cl.Eng, tr: cl.Tracer(), track: obs.NoTrack, chk: cl.Checker()}
	if in.tr.Enabled() && len(s.Faults) > 0 {
		g := in.tr.Group(cl.ObsPrefix() + "faults")
		in.track = in.tr.NewTrack(g, "injector")
	}
	// Stable order: sort by start time, preserving schedule order for
	// ties, so jitter draws and log lines never depend on input order
	// quirks.
	faults := append([]Fault(nil), s.Faults...)
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].At < faults[j].At })
	for _, f := range faults {
		start := f.At
		if f.Jitter > 0 {
			start += sim.Time(in.eng.Rand().Float64() * float64(f.Jitter))
		}
		f := f
		in.eng.At(start, func() { in.activate(f, start) })
	}
	return in, nil
}

// Log returns the activation log: one line per fault start and end, in
// event order, with virtual timestamps. Byte-deterministic for a given
// seed and schedule.
func (in *Injector) Log() []string { return in.applied }

// Fingerprint joins the log into one comparable string.
func (in *Injector) Fingerprint() string { return strings.Join(in.applied, "\n") }

func (in *Injector) logf(format string, args ...any) {
	in.applied = append(in.applied, fmt.Sprintf(format, args...))
}

// activate applies a fault now and schedules its restoration.
func (in *Injector) activate(f Fault, start sim.Time) {
	revert := in.apply(f)
	in.Injected++
	in.Active++
	in.logf("t=%d +%s", int64(in.eng.Now()), f.label())
	in.chk.Epoch("+" + f.label())
	end := start + f.Dur
	// The span is emitted at activation (the window is known up front):
	// per-lane timestamps then stay monotonic even when windows overlap.
	in.tr.Span(in.track, f.label(), start, end, obs.Args{})
	in.eng.At(end, func() {
		if revert != nil {
			revert()
		}
		in.Active--
		in.logf("t=%d -%s", int64(in.eng.Now()), f.label())
		in.chk.Epoch("-" + f.label())
	})
}

// apply performs a fault's effect and returns its undo (nil when the
// effect self-expires).
func (in *Injector) apply(f Fault) func() {
	net := in.cl.Net
	switch f.Kind {
	case NodeCrash:
		n := in.cl.Node(f.Node)
		n.Fail()
		return n.Recover
	case NICDown:
		n := in.cl.Node(f.Node)
		n.FailNIC()
		return n.RecoverNIC
	case NICOverload:
		n := in.cl.Node(f.Node)
		n.SetNICSlowdown(f.Factor)
		return func() { n.SetNICSlowdown(1) }
	case LinkLoss:
		net.SetNodeLoss(f.Node, f.Rate)
		return func() { net.SetNodeLoss(f.Node, 0) }
	case LinkFlap:
		others := in.peersOf(f.Node)
		cut := func(on bool) {
			for _, o := range others {
				net.SetBlocked(f.Node, o, on)
			}
		}
		half := f.Period / 2
		if half <= 0 {
			half = f.Dur / 8
		}
		if half <= 0 {
			half = 1
		}
		end := in.eng.Now() + f.Dur
		down := true
		cut(true)
		var toggle func()
		toggle = func() {
			if in.eng.Now() >= end {
				return
			}
			down = !down
			cut(down)
			if down {
				in.tr.Instant(in.track, "flap down "+f.Node, in.eng.Now())
			} else {
				in.tr.Instant(in.track, "flap up "+f.Node, in.eng.Now())
			}
			in.eng.After(half, toggle)
		}
		in.eng.After(half, toggle)
		return func() { cut(false) }
	case Partition:
		group := map[string]bool{}
		for _, a := range f.Nodes {
			group[a] = true
		}
		var others []string
		for _, name := range in.allEndpoints() {
			if !group[name] {
				others = append(others, name)
			}
		}
		for _, a := range f.Nodes {
			for _, b := range others {
				net.SetBlocked(a, b, true)
			}
		}
		a := append([]string(nil), f.Nodes...)
		return func() {
			for _, x := range a {
				for _, b := range others {
					net.SetBlocked(x, b, false)
				}
			}
		}
	case AccelStall:
		n := in.cl.Node(f.Node)
		if n.Accels == nil || !n.Accels.Stall(f.Unit, f.Dur) {
			in.logf("t=%d skip %s (no unit)", int64(in.eng.Now()), f.label())
		}
		return nil // the station drains the stall by itself
	}
	return nil
}

// allEndpoints returns every network-attached name (nodes and clients),
// sorted for determinism.
func (in *Injector) allEndpoints() []string {
	names := in.cl.Net.Nodes()
	sort.Strings(names)
	return names
}

// peersOf returns every attached endpoint except the given one, sorted.
func (in *Injector) peersOf(node string) []string {
	var out []string
	for _, name := range in.allEndpoints() {
		if name != node {
			out = append(out, name)
		}
	}
	return out
}
