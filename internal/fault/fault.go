// Package fault is the deterministic failure injector: it turns a
// declarative Schedule of faults — node crash/restart, NIC-complex
// failure, NIC overload bursts, link loss, link flapping, network
// partitions, accelerator stalls — into first-class simulator events on
// the cluster's engine. Every activation and restoration is recorded in
// a byte-deterministic log (same seed + same schedule ⇒ identical
// bytes), and when tracing is enabled each fault appears as a span on a
// dedicated "faults" trace group, so degraded regimes are visible right
// next to the per-core execution lanes they perturb.
//
// The injector only *causes* failures; the recovery mechanisms live
// where they belong — client retry with capped exponential backoff in
// internal/workload, Paxos leader failover in internal/apps/rkv,
// transaction-timeout aborts and lock leases in internal/apps/dt, and
// crash semantics plus NIC-down actor re-homing in internal/core.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// NodeCrash fail-stops the whole node for Dur, then restarts it.
	NodeCrash Kind = iota + 1
	// NICDown kills only the SmartNIC processing complex: its actors
	// re-home to the host and ingress takes the host path.
	NICDown
	// NICOverload dilates NIC-core service times by Factor for Dur.
	NICOverload
	// LinkLoss drops the node's traffic (both directions) with
	// probability Rate for Dur.
	LinkLoss
	// LinkFlap repeatedly severs and heals the node's connectivity:
	// down Period/2, up Period/2, for the whole Dur window.
	LinkFlap
	// Partition severs the Nodes group from every other attached node
	// (including clients) for Dur; the group stays internally connected.
	Partition
	// AccelStall occupies the named accelerator Unit for Dur; invocations
	// queue behind the blockage.
	AccelStall
)

// String names the fault kind for logs and trace spans.
func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "crash"
	case NICDown:
		return "nic-down"
	case NICOverload:
		return "overload"
	case LinkLoss:
		return "loss"
	case LinkFlap:
		return "flap"
	case Partition:
		return "partition"
	case AccelStall:
		return "stall"
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Fault is one scheduled failure. At is absolute virtual time; Dur the
// active window (every kind requires Dur > 0 — open-ended faults would
// make runs dependent on harness stop times, breaking determinism
// comparisons). Jitter, when set, shifts the start by a seed-derived
// offset in [0, Jitter), drawn from the engine's PRNG at install time.
type Fault struct {
	Kind  Kind
	Node  string   // target node (all kinds except Partition)
	Nodes []string // Partition: the group to cut off

	At  sim.Time
	Dur sim.Time

	Rate   float64  // LinkLoss drop probability (0, 1]
	Factor float64  // NICOverload service-time multiplier (> 1)
	Period sim.Time // LinkFlap cycle (default Dur/4)
	Unit   string   // AccelStall accelerator name
	Jitter sim.Time // optional seed-derived start offset
}

// label renders the fault for the deterministic log and trace spans.
func (f Fault) label() string {
	switch f.Kind {
	case NICOverload:
		return fmt.Sprintf("%s %s x%.3g", f.Kind, f.Node, f.Factor)
	case LinkLoss:
		return fmt.Sprintf("%s %s %.3g", f.Kind, f.Node, f.Rate)
	case Partition:
		return fmt.Sprintf("%s [%s]", f.Kind, strings.Join(f.Nodes, " "))
	case AccelStall:
		return fmt.Sprintf("%s %s %s", f.Kind, f.Node, f.Unit)
	}
	return fmt.Sprintf("%s %s", f.Kind, f.Node)
}

// Crash builds a node crash/restart fault.
func Crash(node string, at, dur sim.Time) Fault {
	return Fault{Kind: NodeCrash, Node: node, At: at, Dur: dur}
}

// NICFail builds a SmartNIC-complex failure.
func NICFail(node string, at, dur sim.Time) Fault {
	return Fault{Kind: NICDown, Node: node, At: at, Dur: dur}
}

// Overload builds a NIC overload burst (service times × factor).
func Overload(node string, at, dur sim.Time, factor float64) Fault {
	return Fault{Kind: NICOverload, Node: node, At: at, Dur: dur, Factor: factor}
}

// Loss builds a lossy-link window on the node's traffic.
func Loss(node string, at, dur sim.Time, rate float64) Fault {
	return Fault{Kind: LinkLoss, Node: node, At: at, Dur: dur, Rate: rate}
}

// Flap builds a flapping-link window (down Period/2, up Period/2).
func Flap(node string, at, dur, period sim.Time) Fault {
	return Fault{Kind: LinkFlap, Node: node, At: at, Dur: dur, Period: period}
}

// Cut builds a partition isolating the given group from everyone else.
func Cut(at, dur sim.Time, nodes ...string) Fault {
	return Fault{Kind: Partition, Nodes: nodes, At: at, Dur: dur}
}

// Stall builds an accelerator stall on the node's named unit.
func Stall(node, unit string, at, dur sim.Time) Fault {
	return Fault{Kind: AccelStall, Node: node, Unit: unit, At: at, Dur: dur}
}

// Schedule is a declarative set of faults, the Faults field of the
// deployment specs (internal/deploy).
type Schedule struct {
	Faults []Fault
}

// ScheduleError is the typed validation failure for one fault in a
// Schedule, returned by Validate (and therefore Install): it identifies
// the offending fault by index and rendered label so a mis-built
// schedule fails loudly before any event reaches the engine.
type ScheduleError struct {
	Index  int    // position in Schedule.Faults
	Label  string // the offending Fault's label
	Reason string
}

// Error implements error with the stable "fault N (label): reason" form.
func (e *ScheduleError) Error() string {
	return fmt.Sprintf("fault %d (%s): %s", e.Index, e.Label, e.Reason)
}

// Validate checks the schedule against a cluster: known target nodes,
// positive windows that do not start before the engine's current time,
// sane parameters. Partition/LinkLoss/LinkFlap targets may name client
// endpoints (attached to the network but not cluster nodes), so only
// node-runtime faults require a cluster node. Every failure is a
// *ScheduleError.
func (s Schedule) Validate(cl *core.Cluster) error {
	for i, f := range s.Faults {
		where := func(msg string, args ...any) error {
			return &ScheduleError{Index: i, Label: f.label(), Reason: fmt.Sprintf(msg, args...)}
		}
		if f.At < 0 {
			return where("negative start time %v", f.At)
		}
		if now := cl.Eng.Now(); f.At < now {
			return where("window starts in the past (start %v, engine now %v)", f.At, now)
		}
		if f.Dur <= 0 {
			return where("fault window must be positive, got %v", f.Dur)
		}
		switch f.Kind {
		case NodeCrash, NICDown, NICOverload, AccelStall:
			if cl.Node(f.Node) == nil {
				return where("unknown node %q", f.Node)
			}
		case LinkLoss, LinkFlap:
			if f.Node == "" {
				return where("needs a target node")
			}
		case Partition:
			if len(f.Nodes) == 0 {
				return where("needs a non-empty group")
			}
		default:
			return where("unknown fault kind")
		}
		switch f.Kind {
		case NICOverload:
			if f.Factor <= 1 {
				return where("overload factor must exceed 1, got %g", f.Factor)
			}
		case LinkLoss:
			if f.Rate <= 0 || f.Rate > 1 {
				return where("loss rate must be in (0, 1], got %g", f.Rate)
			}
		case AccelStall:
			if f.Unit == "" {
				return where("needs an accelerator unit name")
			}
		}
	}
	return nil
}

// Injector is an installed schedule: its events are on the engine (or,
// on a partitioned cluster, split between partition engines and the
// group's window-boundary barrier queue), its trace lanes are
// registered, and its activation log fills in as the run progresses.
type Injector struct {
	cl  *core.Cluster
	eng *sim.Engine
	g   *sim.Group // non-nil on partitioned clusters
	tr  *obs.Tracer
	// chks, on partitioned clusters, holds every partition's checker:
	// cluster-wide barrier arms epoch all of them at the barrier time.
	chks []*invariant.Checker

	// srcs holds one log/counter/trace slot per emitting source:
	// srcs[0] is the classic engine (or, under PDES, the coordinator
	// running barrier arms), srcs[1+p] is partition p running its local
	// arms. Each slot is only ever written by its owning goroutine —
	// the coordinator between windows, partition p inside its own
	// window — so the injector needs no locks; reads (Log, Injected,
	// Active) are for after the run, like every other counter.
	srcs []injSrc
}

// injSrc is one source's private injector state.
type injSrc struct {
	part  int16 // -1 for the coordinator/classic source
	eng   *sim.Engine
	chk   *invariant.Checker // owning checker (nil for the PDES coordinator)
	sink  *obs.Sink
	track obs.TrackID

	injected int
	active   int
	seq      int32
	log      []logEntry
}

// logEntry is one activation-log line with its deterministic sort key:
// merged output is ordered by (time, source, per-source seq), which is
// a pure function of the simulation — barrier actions at t sort before
// partition-local activity at t, matching their execution order.
type logEntry struct {
	t    sim.Time
	part int16
	seq  int32
	text string
}

// barrierArm reports whether the fault kind mutates cluster-wide state
// (membership, the network's loss and blocked-link tables) and must run
// as a window-boundary barrier action on a partitioned cluster. The
// remaining kinds touch only the owning node's partition-local state
// and run on its partition engine.
func (f Fault) barrierArm() bool {
	switch f.Kind {
	case NodeCrash, LinkLoss, LinkFlap, Partition:
		return true
	}
	return false
}

// Install validates the schedule and schedules every fault. On a
// classic cluster every fault is an engine event. On a partitioned
// (PDES) cluster, cluster-wide arms (crash, loss, flap, partition cuts)
// become sim.Group.AtBarrier window-boundary actions — they mutate
// shared state between conservative windows, race-free and
// deterministically at any worker count — while partition-local arms
// (overload, accel stall, NIC-down) are scheduled on the owning
// partition's engine, with jitter drawn from that partition's seeded
// PRNG stream. A mis-built schedule (unknown node, non-positive window,
// start before the engine's current time) is rejected with a
// *ScheduleError before anything reaches the engine. Installing an
// empty schedule is allowed and yields an injector that never fires.
func Install(cl *core.Cluster, s Schedule) (*Injector, error) {
	if err := s.Validate(cl); err != nil {
		return nil, err
	}
	in := &Injector{cl: cl, eng: cl.Eng, tr: cl.Tracer()}
	parts := 1
	if cl.Partitions() > 1 {
		in.g = cl.Group
		in.chks = cl.Checkers()
		parts = cl.Partitions()
	}
	nsrc := 1
	if in.g != nil {
		nsrc = 1 + parts
	}
	in.srcs = make([]injSrc, nsrc)
	in.srcs[0] = injSrc{part: -1, eng: cl.Eng, sink: in.tr.Sink(0), track: obs.NoTrack}
	if in.g == nil {
		in.srcs[0].chk = cl.Checker()
	}
	for p := 1; p < nsrc; p++ {
		in.srcs[p] = injSrc{
			part:  int16(p - 1),
			eng:   in.g.Engine(p - 1),
			chk:   cl.CheckerAt(p - 1),
			sink:  in.tr.Sink(p - 1),
			track: obs.NoTrack,
		}
	}

	// Stable order: sort by start time, preserving schedule order for
	// ties, so jitter draws and log lines never depend on input order
	// quirks.
	faults := append([]Fault(nil), s.Faults...)
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].At < faults[j].At })

	// Trace lanes (coordinator-only registration, at install): the
	// classic/barrier lane, plus one per partition owning local arms.
	if in.tr.Enabled() && len(faults) > 0 {
		grp := in.tr.Group(cl.ObsPrefix() + "faults")
		needCoord := in.g == nil
		needPart := make([]bool, parts)
		for _, f := range faults {
			if in.g == nil {
				break
			}
			if f.barrierArm() {
				needCoord = true
			} else {
				needPart[cl.Node(f.Node).Part] = true
			}
		}
		if needCoord {
			in.srcs[0].track = in.tr.NewTrack(grp, "injector")
		}
		for p := 0; p < parts && in.g != nil; p++ {
			if needPart[p] {
				in.srcs[1+p].track = in.tr.NewTrack(grp, fmt.Sprintf("injector-p%d", p))
			}
		}
	}

	for _, f := range faults {
		f := f
		start := f.At
		if in.g == nil {
			if f.Jitter > 0 {
				start += sim.Time(in.eng.Rand().Float64() * float64(f.Jitter))
			}
			in.eng.At(start, func() { in.activate(0, f, start) })
			continue
		}
		if f.barrierArm() {
			// Coordinator jitter stream: partition 0's engine PRNG —
			// deterministic because install order is the stable sort.
			if f.Jitter > 0 {
				start += sim.Time(in.eng.Rand().Float64() * float64(f.Jitter))
			}
			in.g.AtBarrier(start, func() { in.activateBarrier(f, start) })
			continue
		}
		p := cl.Node(f.Node).Part
		if f.Jitter > 0 {
			start += sim.Time(in.g.Engine(p).Rand().Float64() * float64(f.Jitter))
		}
		in.g.Engine(p).At(start, func() { in.activate(1+p, f, start) })
	}
	return in, nil
}

// Injected counts fault activations so far, across all sources.
func (in *Injector) Injected() int {
	n := 0
	for i := range in.srcs {
		n += in.srcs[i].injected
	}
	return n
}

// Active counts currently-active fault windows, across all sources.
func (in *Injector) Active() int {
	n := 0
	for i := range in.srcs {
		n += in.srcs[i].active
	}
	return n
}

// Log returns the activation log: one line per fault start and end,
// with virtual timestamps, merged across sources in (time, source,
// seq) order. Byte-deterministic for a given seed and schedule at any
// PDES worker count; on classic clusters the merge is the identity.
// Call between runs, not from inside one.
func (in *Injector) Log() []string {
	var all []logEntry
	for i := range in.srcs {
		all = append(all, in.srcs[i].log...)
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].t != all[b].t {
			return all[a].t < all[b].t
		}
		if all[a].part != all[b].part {
			return all[a].part < all[b].part
		}
		return all[a].seq < all[b].seq
	})
	out := make([]string, len(all))
	for i := range all {
		out[i] = all[i].text
	}
	return out
}

// Fingerprint joins the log into one comparable string.
func (in *Injector) Fingerprint() string { return strings.Join(in.Log(), "\n") }

// logAt appends a log line to the source's private vector, stamped for
// the deterministic merge.
func (in *Injector) logAt(src int, t sim.Time, text string) {
	s := &in.srcs[src]
	s.seq++
	s.log = append(s.log, logEntry{t: t, part: s.part, seq: s.seq, text: text})
}

// activate applies a fault on its owning engine (the classic engine, or
// a partition engine for local arms) and schedules its restoration.
func (in *Injector) activate(src int, f Fault, start sim.Time) {
	revert := in.apply(src, f, start)
	s := &in.srcs[src]
	s.injected++
	s.active++
	in.logAt(src, start, fmt.Sprintf("t=%d +%s", int64(start), f.label()))
	s.chk.Epoch("+" + f.label())
	end := start + f.Dur
	// The span is emitted at activation (the window is known up front):
	// per-lane timestamps then stay monotonic even when windows overlap.
	s.sink.Span(s.track, f.label(), start, end, obs.Args{})
	s.eng.At(end, func() {
		if revert != nil {
			revert()
		}
		s.active--
		in.logAt(src, end, fmt.Sprintf("t=%d -%s", int64(end), f.label()))
		s.chk.Epoch("-" + f.label())
	})
}

// activateBarrier applies a cluster-wide fault between conservative
// windows and chains its restoration as another barrier action. Log
// lines and epochs are stamped with the barrier time (partition clocks
// sit one tick behind it during the action).
func (in *Injector) activateBarrier(f Fault, start sim.Time) {
	revert := in.applyBarrier(f, start)
	s := &in.srcs[0]
	s.injected++
	s.active++
	in.logAt(0, start, fmt.Sprintf("t=%d +%s", int64(start), f.label()))
	in.epochAll("+"+f.label(), start)
	end := start + f.Dur
	s.sink.Span(s.track, f.label(), start, end, obs.Args{})
	in.g.AtBarrier(end, func() {
		if revert != nil {
			revert()
		}
		s.active--
		in.logAt(0, end, fmt.Sprintf("t=%d -%s", int64(end), f.label()))
		in.epochAll("-"+f.label(), end)
	})
}

// epochAll stamps a fault epoch on every partition's ledger at the
// barrier time: a cluster-wide mutation is visible to all of them.
func (in *Injector) epochAll(label string, t sim.Time) {
	for _, chk := range in.chks {
		chk.EpochAt(label, t)
	}
}

// apply performs a fault's effect and returns its undo (nil when the
// effect self-expires). Engine-path only — on a partitioned cluster
// this runs solely for partition-local arms, on the owning engine.
func (in *Injector) apply(src int, f Fault, start sim.Time) func() {
	net := in.cl.Net
	s := &in.srcs[src]
	switch f.Kind {
	case NodeCrash:
		n := in.cl.Node(f.Node)
		n.Fail()
		return n.Recover
	case NICDown:
		n := in.cl.Node(f.Node)
		n.FailNIC()
		return n.RecoverNIC
	case NICOverload:
		n := in.cl.Node(f.Node)
		n.SetNICSlowdown(f.Factor)
		return func() { n.SetNICSlowdown(1) }
	case LinkLoss:
		net.SetNodeLoss(f.Node, f.Rate)
		return func() { net.SetNodeLoss(f.Node, 0) }
	case LinkFlap:
		others := in.peersOf(f.Node)
		cut := func(on bool) {
			for _, o := range others {
				net.SetBlocked(f.Node, o, on)
			}
		}
		half := flapHalf(f)
		end := s.eng.Now() + f.Dur
		down := true
		cut(true)
		var toggle func()
		toggle = func() {
			if s.eng.Now() >= end {
				return
			}
			down = !down
			cut(down)
			if down {
				s.sink.Instant(s.track, "flap down "+f.Node, s.eng.Now())
			} else {
				s.sink.Instant(s.track, "flap up "+f.Node, s.eng.Now())
			}
			s.eng.After(half, toggle)
		}
		s.eng.After(half, toggle)
		return func() { cut(false) }
	case Partition:
		return in.applyCut(f)
	case AccelStall:
		n := in.cl.Node(f.Node)
		if n.Accels == nil || !n.Accels.Stall(f.Unit, f.Dur) {
			in.logAt(src, start, fmt.Sprintf("t=%d skip %s (no unit)", int64(start), f.label()))
		}
		return nil // the station drains the stall by itself
	}
	return nil
}

// applyBarrier performs a cluster-wide fault's effect from a barrier
// action and returns its undo. Flap toggles chain as further barrier
// actions at explicit times (no engine owns them).
func (in *Injector) applyBarrier(f Fault, start sim.Time) func() {
	net := in.cl.Net
	switch f.Kind {
	case NodeCrash:
		n := in.cl.Node(f.Node)
		n.Fail()
		return n.Recover
	case LinkLoss:
		net.SetNodeLoss(f.Node, f.Rate)
		return func() { net.SetNodeLoss(f.Node, 0) }
	case LinkFlap:
		others := in.peersOf(f.Node)
		cut := func(on bool) {
			for _, o := range others {
				net.SetBlocked(f.Node, o, on)
			}
		}
		half := flapHalf(f)
		end := start + f.Dur
		down := true
		cut(true)
		s := &in.srcs[0]
		var toggle func(at sim.Time)
		toggle = func(at sim.Time) {
			if at >= end {
				return
			}
			down = !down
			cut(down)
			if down {
				s.sink.Instant(s.track, "flap down "+f.Node, at)
			} else {
				s.sink.Instant(s.track, "flap up "+f.Node, at)
			}
			in.g.AtBarrier(at+half, func() { toggle(at + half) })
		}
		in.g.AtBarrier(start+half, func() { toggle(start + half) })
		return func() { cut(false) }
	case Partition:
		return in.applyCut(f)
	}
	return nil
}

// flapHalf derives a flap's half-period with the documented defaults.
func flapHalf(f Fault) sim.Time {
	half := f.Period / 2
	if half <= 0 {
		half = f.Dur / 8
	}
	if half <= 0 {
		half = 1
	}
	return half
}

// applyCut severs the fault's group from every other attached endpoint
// and returns the heal. Pure blocked-table writes — shared between the
// classic engine path and the barrier path.
func (in *Injector) applyCut(f Fault) func() {
	net := in.cl.Net
	group := map[string]bool{}
	for _, a := range f.Nodes {
		group[a] = true
	}
	var others []string
	for _, name := range in.allEndpoints() {
		if !group[name] {
			others = append(others, name)
		}
	}
	for _, a := range f.Nodes {
		for _, b := range others {
			net.SetBlocked(a, b, true)
		}
	}
	a := append([]string(nil), f.Nodes...)
	return func() {
		for _, x := range a {
			for _, b := range others {
				net.SetBlocked(x, b, false)
			}
		}
	}
}

// allEndpoints returns every network-attached name (nodes and clients),
// sorted for determinism.
func (in *Injector) allEndpoints() []string {
	names := in.cl.Net.Nodes()
	sort.Strings(names)
	return names
}

// peersOf returns every attached endpoint except the given one, sorted.
func (in *Injector) peersOf(node string) []string {
	var out []string
	for _, name := range in.allEndpoints() {
		if name != node {
			out = append(out, name)
		}
	}
	return out
}
