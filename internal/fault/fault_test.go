package fault

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spec"
)

func testCluster(seed uint64, n int) (*core.Cluster, []*core.Node) {
	cl := core.NewCluster(seed)
	var nodes []*core.Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, cl.AddNode(core.Config{
			Name: fmt.Sprintf("n%d", i), NIC: spec.LiquidIOII_CN2350(), LinkGbps: 10,
		}))
	}
	return cl, nodes
}

func TestValidateRejectsBadFaults(t *testing.T) {
	cl, _ := testCluster(1, 2)
	cases := []struct {
		name string
		f    Fault
		want string
	}{
		{"unknown node", Crash("nope", 0, sim.Millisecond), "unknown"},
		{"zero duration", Crash("n0", 0, 0), "window"},
		{"negative start", Crash("n0", -1, sim.Millisecond), "negative"},
		{"loss rate over 1", Loss("n0", 0, sim.Millisecond, 1.5), "rate"},
		{"loss rate zero", Loss("n0", 0, sim.Millisecond, 0), "rate"},
		{"overload factor", Overload("n0", 0, sim.Millisecond, 0.5), "factor"},
		{"empty partition", Cut(0, sim.Millisecond), "group"},
		{"stall without unit", Stall("n0", "", 0, sim.Millisecond), "unit"},
	}
	for _, c := range cases {
		err := Schedule{Faults: []Fault{c.f}}.Validate(cl)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	ok := Schedule{Faults: []Fault{
		Crash("n1", sim.Millisecond, sim.Millisecond),
		Loss("n0", 0, sim.Millisecond, 0.5),
		Cut(0, sim.Millisecond, "n0"),
	}}
	if err := ok.Validate(cl); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestCrashWindowDropsAndRestores(t *testing.T) {
	cl, nodes := testCluster(1, 2)
	var handled []sim.Time
	echo := &actor.Actor{ID: 50, OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
		handled = append(handled, ctx.Now())
		return 200 * sim.Nanosecond
	}}
	if err := nodes[0].Register(echo, true, 0); err != nil {
		t.Fatal(err)
	}
	in, err := Install(cl, Schedule{Faults: []Fault{
		Crash("n0", sim.Millisecond, sim.Millisecond),
	}})
	if err != nil {
		t.Fatal(err)
	}
	// One message before, one during, one after the crash window.
	for _, at := range []sim.Time{0, 1500 * sim.Microsecond, 2500 * sim.Microsecond} {
		at := at
		cl.Eng.At(at, func() { nodes[0].Inject(actor.Msg{Kind: 1, Dst: 50}) })
	}
	cl.Eng.Run()
	if len(handled) != 2 {
		t.Fatalf("handled %d messages, want 2 (one dropped mid-crash): %v", len(handled), handled)
	}
	if handled[0] >= sim.Millisecond || handled[1] < 2*sim.Millisecond {
		t.Fatalf("handled at %v, want one pre-crash and one post-restart", handled)
	}
	if nodes[0].Down() {
		t.Fatal("node still down after the window")
	}
	if in.Injected != 1 || in.Active != 0 {
		t.Fatalf("Injected=%d Active=%d, want 1/0", in.Injected, in.Active)
	}
}

// TestFingerprintDeterminism is the byte-determinism contract: the same
// seed and schedule produce the same activation log, bytes for bytes,
// including jittered start times drawn from the engine PRNG.
func TestFingerprintDeterminism(t *testing.T) {
	sched := func() Schedule {
		return Schedule{Faults: []Fault{
			Crash("n0", sim.Millisecond, sim.Millisecond),
			Loss("n1", 500*sim.Microsecond, sim.Millisecond, 0.3),
			Flap("n2", 2*sim.Millisecond, sim.Millisecond, 200*sim.Microsecond),
			Cut(3*sim.Millisecond, sim.Millisecond, "n0", "n1"),
			{Kind: NodeCrash, Node: "n2", At: 4 * sim.Millisecond, Dur: sim.Millisecond,
				Jitter: 300 * sim.Microsecond},
		}}
	}
	run := func(seed uint64) string {
		cl, _ := testCluster(seed, 3)
		in, err := Install(cl, sched())
		if err != nil {
			t.Fatal(err)
		}
		cl.Eng.Run()
		return in.Fingerprint()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed, different fault logs:\n%s\n----\n%s", a, b)
	}
	if len(strings.Split(a, "\n")) < 5 {
		t.Fatalf("suspiciously short fault log:\n%s", a)
	}
	// A different seed moves the jittered fault: logs must differ (the
	// jitter draw really comes from the seeded PRNG).
	if c := run(43); a == c {
		t.Fatal("jittered schedule produced identical logs across seeds")
	}
}

func TestLossWindowDropsSomeTraffic(t *testing.T) {
	cl, nodes := testCluster(1, 2)
	var got int
	sink := &actor.Actor{ID: 50, OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
		got++
		return 100 * sim.Nanosecond
	}}
	if err := nodes[1].Register(sink, true, 0); err != nil {
		t.Fatal(err)
	}
	src := &actor.Actor{ID: 40, OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
		ctx.Send(50, actor.Msg{Kind: 1})
		return 100 * sim.Nanosecond
	}}
	if err := nodes[0].Register(src, true, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Install(cl, Schedule{Faults: []Fault{
		Loss("n1", 0, 10*sim.Millisecond, 0.5),
	}}); err != nil {
		t.Fatal(err)
	}
	const sent = 400
	for i := 0; i < sent; i++ {
		at := sim.Time(i) * 20 * sim.Microsecond
		cl.Eng.At(at, func() { nodes[0].Inject(actor.Msg{Kind: 1, Dst: 40}) })
	}
	cl.Eng.Run()
	if got == 0 || got == sent {
		t.Fatalf("received %d/%d with 50%% loss active, want strictly between", got, sent)
	}
}

func TestPartitionSeversOnlyAcrossGroups(t *testing.T) {
	cl, nodes := testCluster(1, 3)
	recv := map[string]int{}
	mkSink := func(n *core.Node, id actor.ID) {
		name := n.Name
		a := &actor.Actor{ID: id, OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			recv[name]++
			return 100 * sim.Nanosecond
		}}
		if err := n.Register(a, true, 0); err != nil {
			t.Fatal(err)
		}
	}
	mkSink(nodes[1], 51) // same side as n0
	mkSink(nodes[2], 52) // other side
	src := &actor.Actor{ID: 40, OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
		ctx.Send(51, actor.Msg{Kind: 1})
		ctx.Send(52, actor.Msg{Kind: 1})
		return 100 * sim.Nanosecond
	}}
	if err := nodes[0].Register(src, true, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Install(cl, Schedule{Faults: []Fault{
		Cut(0, 10*sim.Millisecond, "n0", "n1"),
	}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * 100 * sim.Microsecond
		cl.Eng.At(at, func() { nodes[0].Inject(actor.Msg{Kind: 1, Dst: 40}) })
	}
	cl.Eng.Run()
	if recv["n1"] != 20 {
		t.Fatalf("intra-group traffic n0→n1 = %d/20, partition must keep the group connected", recv["n1"])
	}
	if recv["n2"] != 0 {
		t.Fatalf("cross-group traffic n0→n2 = %d, want 0 while partitioned", recv["n2"])
	}
}
