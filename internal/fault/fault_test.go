package fault

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spec"
)

func testCluster(seed uint64, n int) (*core.Cluster, []*core.Node) {
	cl := core.NewCluster(seed)
	var nodes []*core.Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, cl.AddNode(core.Config{
			Name: fmt.Sprintf("n%d", i), NIC: spec.LiquidIOII_CN2350(), LinkGbps: 10,
		}))
	}
	return cl, nodes
}

func TestValidateRejectsBadFaults(t *testing.T) {
	cl, _ := testCluster(1, 2)
	cases := []struct {
		name string
		f    Fault
		want string
	}{
		{"unknown node", Crash("nope", 0, sim.Millisecond), "unknown"},
		{"zero duration", Crash("n0", 0, 0), "window"},
		{"negative start", Crash("n0", -1, sim.Millisecond), "negative"},
		{"loss rate over 1", Loss("n0", 0, sim.Millisecond, 1.5), "rate"},
		{"loss rate zero", Loss("n0", 0, sim.Millisecond, 0), "rate"},
		{"overload factor", Overload("n0", 0, sim.Millisecond, 0.5), "factor"},
		{"empty partition", Cut(0, sim.Millisecond), "group"},
		{"stall without unit", Stall("n0", "", 0, sim.Millisecond), "unit"},
	}
	for _, c := range cases {
		err := Schedule{Faults: []Fault{c.f}}.Validate(cl)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	ok := Schedule{Faults: []Fault{
		Crash("n1", sim.Millisecond, sim.Millisecond),
		Loss("n0", 0, sim.Millisecond, 0.5),
		Cut(0, sim.Millisecond, "n0"),
	}}
	if err := ok.Validate(cl); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestCrashWindowDropsAndRestores(t *testing.T) {
	cl, nodes := testCluster(1, 2)
	var handled []sim.Time
	echo := &actor.Actor{ID: 50, OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
		handled = append(handled, ctx.Now())
		return 200 * sim.Nanosecond
	}}
	if err := nodes[0].Register(echo, true, 0); err != nil {
		t.Fatal(err)
	}
	in, err := Install(cl, Schedule{Faults: []Fault{
		Crash("n0", sim.Millisecond, sim.Millisecond),
	}})
	if err != nil {
		t.Fatal(err)
	}
	// One message before, one during, one after the crash window.
	for _, at := range []sim.Time{0, 1500 * sim.Microsecond, 2500 * sim.Microsecond} {
		at := at
		cl.Eng.At(at, func() { nodes[0].Inject(actor.Msg{Kind: 1, Dst: 50}) })
	}
	cl.Eng.Run()
	if len(handled) != 2 {
		t.Fatalf("handled %d messages, want 2 (one dropped mid-crash): %v", len(handled), handled)
	}
	if handled[0] >= sim.Millisecond || handled[1] < 2*sim.Millisecond {
		t.Fatalf("handled at %v, want one pre-crash and one post-restart", handled)
	}
	if nodes[0].Down() {
		t.Fatal("node still down after the window")
	}
	if in.Injected() != 1 || in.Active() != 0 {
		t.Fatalf("Injected=%d Active=%d, want 1/0", in.Injected(), in.Active())
	}
}

// TestFingerprintDeterminism is the byte-determinism contract: the same
// seed and schedule produce the same activation log, bytes for bytes,
// including jittered start times drawn from the engine PRNG.
func TestFingerprintDeterminism(t *testing.T) {
	sched := func() Schedule {
		return Schedule{Faults: []Fault{
			Crash("n0", sim.Millisecond, sim.Millisecond),
			Loss("n1", 500*sim.Microsecond, sim.Millisecond, 0.3),
			Flap("n2", 2*sim.Millisecond, sim.Millisecond, 200*sim.Microsecond),
			Cut(3*sim.Millisecond, sim.Millisecond, "n0", "n1"),
			{Kind: NodeCrash, Node: "n2", At: 4 * sim.Millisecond, Dur: sim.Millisecond,
				Jitter: 300 * sim.Microsecond},
		}}
	}
	run := func(seed uint64) string {
		cl, _ := testCluster(seed, 3)
		in, err := Install(cl, sched())
		if err != nil {
			t.Fatal(err)
		}
		cl.Eng.Run()
		return in.Fingerprint()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed, different fault logs:\n%s\n----\n%s", a, b)
	}
	if len(strings.Split(a, "\n")) < 5 {
		t.Fatalf("suspiciously short fault log:\n%s", a)
	}
	// A different seed moves the jittered fault: logs must differ (the
	// jitter draw really comes from the seeded PRNG).
	if c := run(43); a == c {
		t.Fatal("jittered schedule produced identical logs across seeds")
	}
}

func TestLossWindowDropsSomeTraffic(t *testing.T) {
	cl, nodes := testCluster(1, 2)
	var got int
	sink := &actor.Actor{ID: 50, OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
		got++
		return 100 * sim.Nanosecond
	}}
	if err := nodes[1].Register(sink, true, 0); err != nil {
		t.Fatal(err)
	}
	src := &actor.Actor{ID: 40, OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
		ctx.Send(50, actor.Msg{Kind: 1})
		return 100 * sim.Nanosecond
	}}
	if err := nodes[0].Register(src, true, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Install(cl, Schedule{Faults: []Fault{
		Loss("n1", 0, 10*sim.Millisecond, 0.5),
	}}); err != nil {
		t.Fatal(err)
	}
	const sent = 400
	for i := 0; i < sent; i++ {
		at := sim.Time(i) * 20 * sim.Microsecond
		cl.Eng.At(at, func() { nodes[0].Inject(actor.Msg{Kind: 1, Dst: 40}) })
	}
	cl.Eng.Run()
	if got == 0 || got == sent {
		t.Fatalf("received %d/%d with 50%% loss active, want strictly between", got, sent)
	}
}

func TestPartitionSeversOnlyAcrossGroups(t *testing.T) {
	cl, nodes := testCluster(1, 3)
	recv := map[string]int{}
	mkSink := func(n *core.Node, id actor.ID) {
		name := n.Name
		a := &actor.Actor{ID: id, OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
			recv[name]++
			return 100 * sim.Nanosecond
		}}
		if err := n.Register(a, true, 0); err != nil {
			t.Fatal(err)
		}
	}
	mkSink(nodes[1], 51) // same side as n0
	mkSink(nodes[2], 52) // other side
	src := &actor.Actor{ID: 40, OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
		ctx.Send(51, actor.Msg{Kind: 1})
		ctx.Send(52, actor.Msg{Kind: 1})
		return 100 * sim.Nanosecond
	}}
	if err := nodes[0].Register(src, true, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Install(cl, Schedule{Faults: []Fault{
		Cut(0, 10*sim.Millisecond, "n0", "n1"),
	}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * 100 * sim.Microsecond
		cl.Eng.At(at, func() { nodes[0].Inject(actor.Msg{Kind: 1, Dst: 40}) })
	}
	cl.Eng.Run()
	if recv["n1"] != 20 {
		t.Fatalf("intra-group traffic n0→n1 = %d/20, partition must keep the group connected", recv["n1"])
	}
	if recv["n2"] != 0 {
		t.Fatalf("cross-group traffic n0→n2 = %d, want 0 while partitioned", recv["n2"])
	}
}

// TestInstallRejectsPastStart pins the past-start contract: scheduling a
// fault behind the engine clock used to reach sim.At and panic with the
// engine's "event in the past" failure; Validate now catches it and
// Install returns a typed *ScheduleError identifying the fault.
func TestInstallRejectsPastStart(t *testing.T) {
	cl, _ := testCluster(9, 2)
	cl.Eng.At(2*sim.Millisecond, func() {})
	cl.Eng.Run() // advance the clock to 2ms
	_, err := Install(cl, Schedule{Faults: []Fault{
		Crash("n1", 0, sim.Millisecond),
		Crash("n0", sim.Millisecond, sim.Millisecond),
	}})
	if err == nil {
		t.Fatal("past-start schedule installed without error")
	}
	var se *ScheduleError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v, want *ScheduleError", err, err)
	}
	if se.Index != 0 || !strings.Contains(se.Reason, "past") {
		t.Fatalf("ScheduleError = %+v, want Index 0 with a past-start reason", se)
	}
	// A schedule entirely at/after the clock is fine.
	if _, err := Install(cl, Schedule{Faults: []Fault{
		Crash("n0", 2*sim.Millisecond, sim.Millisecond),
	}}); err != nil {
		t.Fatalf("future schedule on an advanced engine rejected: %v", err)
	}
}

// partCluster builds a partitioned (PDES) cluster with one echo actor
// per node (ID 100+i, NIC-resident) and a self-ticking source on node 0
// that sprays every other node, so fault windows have cross-partition
// traffic to perturb.
func partCluster(t *testing.T, seed uint64, n, parts int) (*core.Cluster, []*core.Node, []int) {
	t.Helper()
	cl := core.NewPartitionedCluster(seed, parts)
	recv := make([]int, n) // recv[i] written only by node i's partition
	var nodes []*core.Node
	for i := 0; i < n; i++ {
		node := cl.AddNode(core.Config{
			Name: fmt.Sprintf("n%d", i), NIC: spec.LiquidIOII_CN2350(),
			LinkGbps: 10, DisableMigration: true,
		})
		i := i
		a := &actor.Actor{ID: actor.ID(100 + i), PinNIC: true,
			OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
				recv[i]++
				return 200 * sim.Nanosecond
			}}
		if err := node.Register(a, true, 0); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	return cl, nodes, recv
}

// sprayAll keeps every node busy: each node's own partition engine
// injects a message to its echo actor every step for the whole window,
// so fault windows always overlap live per-partition work.
func sprayAll(cl *core.Cluster, nodes []*core.Node, dur, step sim.Time) {
	for i, node := range nodes {
		i, node := i, node
		e := cl.Group.Engine(node.Part)
		for at := sim.Time(0); at < dur; at += step {
			e.At(at, func() { node.Inject(actor.Msg{Kind: 1, Dst: actor.ID(100 + i)}) })
		}
	}
}

// fullSchedule exercises every arm class: three barrier arms (crash,
// loss, partition cut, flap) and three partition-local arms (overload,
// accel stall, NIC-down), one of them jittered.
func fullSchedule() Schedule {
	return Schedule{Faults: []Fault{
		Crash("n0", sim.Millisecond, sim.Millisecond),
		Loss("n3", 500*sim.Microsecond, sim.Millisecond, 0.5),
		Flap("n4", 2*sim.Millisecond, sim.Millisecond, 400*sim.Microsecond),
		Cut(3*sim.Millisecond, sim.Millisecond, "n0", "n1"),
		Overload("n2", 500*sim.Microsecond, sim.Millisecond, 2.5),
		Stall("n5", "CRC", sim.Millisecond, sim.Millisecond),
		NICFail("n1", sim.Millisecond, sim.Millisecond),
		{Kind: NodeCrash, Node: "n2", At: 4 * sim.Millisecond, Dur: sim.Millisecond,
			Jitter: 300 * sim.Microsecond},
	}}
}

// TestInstallOnPartitionedCluster is the tentpole contract: Install no
// longer rejects partitioned clusters; every arm class activates and
// restores, and the run completes with no active windows left.
func TestInstallOnPartitionedCluster(t *testing.T) {
	cl, nodes, _ := partCluster(t, 11, 6, 3)
	cl.SetPDESWorkers(3)
	in, err := Install(cl, fullSchedule())
	if err != nil {
		t.Fatalf("Install on a partitioned cluster: %v", err)
	}
	sprayAll(cl, nodes, 6*sim.Millisecond, 50*sim.Microsecond)
	cl.RunUntil(8 * sim.Millisecond)
	if got := in.Injected(); got != 8 {
		t.Fatalf("Injected = %d, want all 8 faults activated:\n%s", got, in.Fingerprint())
	}
	if in.Active() != 0 {
		t.Fatalf("Active = %d after all windows closed, want 0", in.Active())
	}
	for _, n := range nodes {
		if n.Down() {
			t.Fatalf("node %s still down after its window", n.Name)
		}
	}
}

// TestPartitionedFingerprintAcrossWorkers is the tentpole determinism
// property: a faulted partitioned run — jittered schedule, live
// cross-partition traffic — produces byte-identical activation logs and
// delivery counts at 1, 2, and 4 workers.
func TestPartitionedFingerprintAcrossWorkers(t *testing.T) {
	run := func(workers int) (string, string) {
		cl, nodes, recv := partCluster(t, 21, 8, 4)
		cl.SetPDESWorkers(workers)
		in, err := Install(cl, fullSchedule())
		if err != nil {
			t.Fatal(err)
		}
		sprayAll(cl, nodes, 6*sim.Millisecond, 20*sim.Microsecond)
		cl.RunUntil(8 * sim.Millisecond)
		var counts []string
		for i, n := range nodes {
			counts = append(counts, fmt.Sprintf("%s=%d", n.Name, recv[i]))
		}
		return in.Fingerprint(), strings.Join(counts, " ")
	}
	fp1, rc1 := run(1)
	if !strings.Contains(fp1, "+crash n0") || !strings.Contains(fp1, "-nic-down n1") {
		t.Fatalf("fingerprint missing expected arms:\n%s", fp1)
	}
	for _, w := range []int{2, 4} {
		fpN, rcN := run(w)
		if fpN != fp1 {
			t.Fatalf("fault log diverged at %d workers:\n%s\n----\n%s", w, fp1, fpN)
		}
		if rcN != rc1 {
			t.Fatalf("delivery counts diverged at %d workers:\n%s\n----\n%s", w, rc1, rcN)
		}
	}
}

// TestPartitionedCrashDropsTraffic: behavioral check that a barrier-arm
// crash window really drops in-window traffic on a partitioned cluster
// and the node serves again after restart.
func TestPartitionedCrashDropsTraffic(t *testing.T) {
	cl, nodes, recv := partCluster(t, 5, 2, 2)
	cl.SetPDESWorkers(2)
	if _, err := Install(cl, Schedule{Faults: []Fault{
		Crash("n1", sim.Millisecond, sim.Millisecond),
	}}); err != nil {
		t.Fatal(err)
	}
	// Poke n1 before, during, and after its crash window, from n1's own
	// partition engine.
	e := cl.Group.Engine(nodes[1].Part)
	for _, at := range []sim.Time{0, 1500 * sim.Microsecond, 2500 * sim.Microsecond} {
		at := at
		e.At(at, func() { nodes[1].Inject(actor.Msg{Kind: 1, Dst: 101}) })
	}
	cl.RunUntil(4 * sim.Millisecond)
	if got := recv[1]; got != 2 {
		t.Fatalf("n1 handled %d messages, want 2 (one dropped mid-crash)", got)
	}
	if nodes[1].Down() {
		t.Fatal("n1 still down after the window")
	}
}
