// Package hostsim models the host side of an iPipe node: a pool of
// beefy Xeon cores running a decentralized multi-queue scheduler
// (§3.2.1: per-core queues with NIC-side flow steering), executing
// host-resident actors and, for the baselines, entire DPDK applications.
//
// Host CPU usage — the headline metric of Figures 13 and 17 — is the
// measured busy-core integral over the run, i.e. "how many cores' worth
// of cycles did this workload consume".
package hostsim

import (
	"repro/internal/actor"
	"repro/internal/sim"
)

// Hooks connects the host scheduler to the node runtime.
type Hooks struct {
	// Run executes a host-resident actor's handler and returns the
	// host-core service time (already scaled for the host's speed).
	Run func(a *actor.Actor, m actor.Msg) sim.Time
	// Unowned handles a message whose target actor is not host-resident
	// (e.g. it migrated back to the NIC mid-flight). Optional.
	Unowned func(m actor.Msg)
	// OnExec observes each completed execution (tracing/metrics).
	// Optional; must be passive — it may not mutate scheduler state.
	OnExec func(coreID int, a *actor.Actor, m actor.Msg, start, end sim.Time)
}

// Config sizes the host.
type Config struct {
	Cores int
	// Steal enables ZygOS-style work stealing between the per-core
	// queues (the paper cites it for repairing steering imbalance).
	Steal bool
	// PollCost is charged per dequeued message (ring polling, epoll).
	PollCost sim.Time
}

// Host is the host-side execution engine of one node.
type Host struct {
	eng   *sim.Engine
	cfg   Config
	hooks Hooks

	queues [][]actor.Msg
	cores  []*hcore
	actors map[actor.ID]*actor.Actor

	// Completed counts executed messages; Steals counts stolen ones.
	Completed uint64
	Steals    uint64
}

type hcore struct {
	h    *Host
	id   int
	idle bool

	busyAccum sim.Time
	busyStart sim.Time
	busy      bool

	Executed uint64
}

// New builds a host with the given configuration.
func New(eng *sim.Engine, cfg Config, hooks Hooks) *Host {
	if cfg.Cores <= 0 {
		panic("hostsim: need at least one core")
	}
	if hooks.Run == nil {
		panic("hostsim: Run hook required")
	}
	if cfg.PollCost == 0 {
		cfg.PollCost = 100 * sim.Nanosecond
	}
	h := &Host{
		eng:    eng,
		cfg:    cfg,
		hooks:  hooks,
		queues: make([][]actor.Msg, cfg.Cores),
		actors: map[actor.ID]*actor.Actor{},
	}
	for i := 0; i < cfg.Cores; i++ {
		h.cores = append(h.cores, &hcore{h: h, id: i, idle: true})
	}
	return h
}

// AddActor registers a host-resident actor.
func (h *Host) AddActor(a *actor.Actor) {
	h.actors[a.ID] = a
	a.State = actor.Stable
}

// RemoveActor deregisters an actor (e.g. pulled back to the NIC).
func (h *Host) RemoveActor(id actor.ID) { delete(h.actors, id) }

// Actor looks up a host-resident actor.
func (h *Host) Actor(id actor.ID) (*actor.Actor, bool) {
	a, ok := h.actors[id]
	return a, ok
}

// Actors returns the number of host-resident actors.
func (h *Host) Actors() int { return len(h.actors) }

// LeastLoadedActor returns the host actor with the smallest load, the
// pull-migration candidate (§3.2.5); nil when none is eligible. Ties
// break by actor ID: the selection must not depend on map iteration
// order, or runs stop being reproducible.
func (h *Host) LeastLoadedActor() *actor.Actor {
	var best *actor.Actor
	for _, a := range h.actors {
		if a.PinHost || a.State != actor.Stable {
			continue
		}
		if best == nil || a.Load() < best.Load() ||
			(a.Load() == best.Load() && a.ID < best.ID) {
			best = a
		}
	}
	return best
}

// Arrive steers a message to a core queue by flow hash and wakes the
// core. This is the NIC-side flow steering of the paper's host model.
func (h *Host) Arrive(m actor.Msg) {
	m.ArrivedAt = h.eng.Now()
	i := int(m.FlowID % uint64(h.cfg.Cores))
	h.queues[i] = append(h.queues[i], m)
	h.cores[i].kick()
	if h.cfg.Steal {
		// An idle core may steal immediately.
		for _, c := range h.cores {
			if c.idle {
				c.kick()
				break
			}
		}
	}
}

// Backlog reports queued messages across all cores.
func (h *Host) Backlog() int {
	n := 0
	for _, q := range h.queues {
		n += len(q)
	}
	return n
}

// BusyCoreSeconds returns the integral of busy cores over virtual time,
// in core-seconds. Divide by elapsed seconds for "cores used".
func (h *Host) BusyCoreSeconds() float64 {
	var total sim.Time
	now := h.eng.Now()
	for _, c := range h.cores {
		total += c.busyAccum
		if c.busy {
			total += now - c.busyStart
		}
	}
	return total.Seconds()
}

// CoresUsed returns average busy cores since t=0.
func (h *Host) CoresUsed() float64 {
	el := h.eng.Now().Seconds()
	if el <= 0 {
		return 0
	}
	return h.BusyCoreSeconds() / el
}

func (c *hcore) kick() {
	if !c.idle {
		return
	}
	c.idle = false
	c.h.eng.Defer(c.step)
}

func (c *hcore) pop() (actor.Msg, bool) {
	h := c.h
	if q := h.queues[c.id]; len(q) > 0 {
		m := q[0]
		h.queues[c.id] = q[1:]
		return m, true
	}
	if !h.cfg.Steal {
		return actor.Msg{}, false
	}
	victim, best := -1, 0
	for i, q := range h.queues {
		if i != c.id && len(q) > best {
			victim, best = i, len(q)
		}
	}
	if victim == -1 {
		return actor.Msg{}, false
	}
	q := h.queues[victim]
	m := q[len(q)-1]
	h.queues[victim] = q[:len(q)-1]
	h.Steals++
	return m, true
}

func (c *hcore) step() {
	h := c.h
	m, ok := c.pop()
	if !ok {
		c.idle = true
		c.endBusy()
		return
	}
	a, resident := h.actors[m.Dst]
	if !resident {
		c.occupy(h.cfg.PollCost, func() {
			if h.hooks.Unowned != nil {
				h.hooks.Unowned(m)
			}
			c.step()
		})
		return
	}
	if !a.TryAcquire() {
		// Exclusive actor busy elsewhere: park on the actor; the
		// releasing core drains (a requeue would busy-spin).
		c.occupy(h.cfg.PollCost, func() {
			if a.Running() > 0 {
				a.Mailbox.Push(m)
			} else {
				h.queues[c.id] = append(h.queues[c.id], m)
			}
			c.step()
		})
		return
	}
	c.exec(a, m)
}

// exec runs one message and then drains messages parked while the actor
// was exclusively held.
func (c *hcore) exec(a *actor.Actor, m actor.Msg) {
	h := c.h
	start := h.eng.Now()
	service := h.cfg.PollCost + h.hooks.Run(a, m)
	c.occupy(service, func() {
		c.Executed++
		h.Completed++
		a.Observe(h.eng.Now()-m.ArrivedAt, service, m.WireSize)
		if h.hooks.OnExec != nil {
			h.hooks.OnExec(c.id, a, m, start, h.eng.Now())
		}
		if next, ok := a.Mailbox.Pop(); ok {
			c.exec(a, next)
			return
		}
		a.Release()
		c.step()
	})
}

func (c *hcore) occupy(d sim.Time, fn func()) {
	if !c.busy {
		c.busy = true
		c.busyStart = c.h.eng.Now()
	}
	c.h.eng.After(d, func() {
		if c.busy {
			c.busy = false
			c.busyAccum += c.h.eng.Now() - c.busyStart
		}
		fn()
	})
}

func (c *hcore) endBusy() {
	if c.busy {
		c.busy = false
		c.busyAccum += c.h.eng.Now() - c.busyStart
	}
}
