package hostsim

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/sim"
)

type hh struct {
	eng  *sim.Engine
	h    *Host
	cost map[actor.ID]sim.Time
	lost []actor.Msg
}

func newHH(cores int, steal bool) *hh {
	x := &hh{eng: sim.NewEngine(1), cost: map[actor.ID]sim.Time{}}
	x.h = New(x.eng, Config{Cores: cores, Steal: steal}, Hooks{
		Run: func(a *actor.Actor, m actor.Msg) sim.Time {
			if c, ok := x.cost[a.ID]; ok {
				return c
			}
			return sim.Microsecond
		},
		Unowned: func(m actor.Msg) { x.lost = append(x.lost, m) },
	})
	return x
}

func (x *hh) add(id actor.ID, cost sim.Time) *actor.Actor {
	a := &actor.Actor{ID: id}
	x.cost[id] = cost
	x.h.AddActor(a)
	return a
}

func TestHostExecutes(t *testing.T) {
	x := newHH(2, false)
	a := x.add(1, 2*sim.Microsecond)
	for i := 0; i < 10; i++ {
		x.h.Arrive(actor.Msg{Dst: 1, FlowID: uint64(i)})
	}
	x.eng.Run()
	if x.h.Completed != 10 || a.Invoked != 10 {
		t.Fatalf("completed %d, invoked %d", x.h.Completed, a.Invoked)
	}
	if x.h.Backlog() != 0 {
		t.Fatal("backlog left")
	}
}

func TestFlowSteeringWithoutStealingImbalances(t *testing.T) {
	x := newHH(4, false)
	x.add(1, sim.Microsecond)
	// All messages in one flow land on one core.
	for i := 0; i < 20; i++ {
		x.h.Arrive(actor.Msg{Dst: 1, FlowID: 8}) // 8 % 4 = core 0
	}
	x.eng.Run()
	if x.h.cores[0].Executed != 20 {
		t.Fatalf("core 0 executed %d, want all 20", x.h.cores[0].Executed)
	}
	for i := 1; i < 4; i++ {
		if x.h.cores[i].Executed != 0 {
			t.Fatalf("core %d executed %d without stealing", i, x.h.cores[i].Executed)
		}
	}
}

func TestWorkStealingRepairsImbalance(t *testing.T) {
	x := newHH(4, true)
	x.add(1, 5*sim.Microsecond)
	for i := 0; i < 20; i++ {
		x.h.Arrive(actor.Msg{Dst: 1, FlowID: 8})
	}
	x.eng.Run()
	if x.h.Steals == 0 {
		t.Fatal("no steals despite one hot queue")
	}
	others := 0
	for i := 1; i < 4; i++ {
		others += int(x.h.cores[i].Executed)
	}
	if others == 0 {
		t.Fatal("stealing cores executed nothing")
	}
}

func TestUnownedMessages(t *testing.T) {
	x := newHH(1, false)
	x.h.Arrive(actor.Msg{Dst: 42})
	x.eng.Run()
	if len(x.lost) != 1 {
		t.Fatalf("unowned messages seen: %d", len(x.lost))
	}
}

func TestCoresUsedMeasuresLoad(t *testing.T) {
	x := newHH(4, true)
	x.add(1, 10*sim.Microsecond)
	// 100 msgs x 10.1µs ≈ 1010µs of work on 4 cores ≈ 253µs wall →
	// CoresUsed ≈ 4.
	for i := 0; i < 100; i++ {
		x.h.Arrive(actor.Msg{Dst: 1, FlowID: uint64(i)})
	}
	x.eng.Run()
	used := x.h.CoresUsed()
	if used < 3.2 || used > 4.01 {
		t.Fatalf("CoresUsed = %v, want ≈4 under saturation", used)
	}
}

func TestCoresUsedLowUnderLightLoad(t *testing.T) {
	x := newHH(4, true)
	x.add(1, sim.Microsecond)
	// One message every 100µs: utilization ≈ 1.1/100 of one core.
	for i := 0; i < 50; i++ {
		at := sim.Time(i) * 100 * sim.Microsecond
		i := i
		x.eng.At(at, func() { x.h.Arrive(actor.Msg{Dst: 1, FlowID: uint64(i)}) })
	}
	x.eng.Run()
	if used := x.h.CoresUsed(); used > 0.1 {
		t.Fatalf("CoresUsed = %v, want ≈0.01", used)
	}
}

func TestExclusiveHostActor(t *testing.T) {
	x := newHH(4, true)
	a := x.add(1, 5*sim.Microsecond)
	a.Exclusive = true
	maxRun := 0
	for i := 0; i < 12; i++ {
		x.h.Arrive(actor.Msg{Dst: 1, FlowID: uint64(i)})
	}
	for at := sim.Time(0); at < 100*sim.Microsecond; at += sim.Microsecond {
		x.eng.At(at, func() {
			if a.Running() > maxRun {
				maxRun = a.Running()
			}
		})
	}
	x.eng.Run()
	if maxRun > 1 {
		t.Fatalf("exclusive actor concurrency %d", maxRun)
	}
	if a.Invoked != 12 {
		t.Fatalf("invoked %d of 12", a.Invoked)
	}
}

func TestLeastLoadedActor(t *testing.T) {
	x := newHH(1, false)
	hot := x.add(1, sim.Microsecond)
	cold := x.add(2, sim.Microsecond)
	pinned := x.add(3, sim.Microsecond)
	pinned.PinHost = true
	for i := 0; i < 50; i++ {
		x.h.Arrive(actor.Msg{Dst: 1})
	}
	x.h.Arrive(actor.Msg{Dst: 2})
	x.h.Arrive(actor.Msg{Dst: 3})
	x.eng.Run()
	if got := x.h.LeastLoadedActor(); got != cold {
		t.Fatalf("LeastLoadedActor = %v, want cold actor", got)
	}
	_ = hot
}

func TestRemoveActor(t *testing.T) {
	x := newHH(1, false)
	x.add(1, sim.Microsecond)
	x.h.RemoveActor(1)
	if x.h.Actors() != 0 {
		t.Fatal("actor not removed")
	}
	x.h.Arrive(actor.Msg{Dst: 1})
	x.eng.Run()
	if len(x.lost) != 1 {
		t.Fatal("message to removed actor not routed to Unowned")
	}
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	for _, f := range []func(){
		func() { New(eng, Config{Cores: 0}, Hooks{Run: func(*actor.Actor, actor.Msg) sim.Time { return 0 }}) },
		func() { New(eng, Config{Cores: 1}, Hooks{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid config accepted")
				}
			}()
			f()
		}()
	}
}
