package invariant

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestNetHandoffBalancesLedgers models a packet crossing partitions:
// the source ledger injects and hands off, the destination ledger
// receives and delivers. Both must finish balanced with no violations.
func TestNetHandoffBalancesLedgers(t *testing.T) {
	srcEng, dstEng := sim.NewEngine(1), sim.NewEngine(2)
	src, dst := New(srcEng), New(dstEng)

	src.NetInject()
	src.NetHandoffOut()
	dst.NetHandoffIn()
	dst.NetDeliver()

	srcEng.Run()
	dstEng.Run()
	src.Finish()
	dst.Finish()
	if err := src.Err(); err != nil {
		t.Fatalf("source ledger: %v", err)
	}
	if err := dst.Err(); err != nil {
		t.Fatalf("destination ledger: %v", err)
	}
	if !strings.Contains(src.Fingerprint(), "xfer=1/0") {
		t.Fatalf("source fingerprint missing handoff: %v", src.Fingerprint())
	}
}

// TestNetHandoffOverdraw: delivering a packet that was neither injected
// nor handed in must violate immediately.
func TestNetHandoffOverdraw(t *testing.T) {
	chk := New(sim.NewEngine(1))
	chk.NetHandoffIn()
	chk.NetDeliver()
	chk.NetDeliver() // one more than the ledger is responsible for
	if chk.Err() == nil {
		t.Fatalf("over-delivery past the handed-in count not flagged")
	}
}
