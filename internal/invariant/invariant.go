// Package invariant is the opt-in runtime checker for the simulator's
// conservation laws. The paper states correctness properties the
// implementation must uphold but the experiment harness never enforces:
// flow-steered ingress preserves per-flow FIFO order (§3.2.6), DRR gives
// every runnable actor one visit per round (ALG 2), messages and credits
// and buffer bytes are conserved across sched→msgring→nicsim→netsim, and
// Multi-Paxos elects at most one leader per ballot. This package turns
// each of those into a cheap incremental check.
//
// The integration pattern is the same as internal/obs: a *Checker is
// threaded through the substrate packages, every method is safe on a nil
// receiver and returns immediately, so a disabled run (the default) pays
// only a nil comparison at each hook site — no allocation, no branch on
// shared state, and bit-identical simulation results either way.
//
// Besides flagging violations, a Checker accumulates a deterministic
// fingerprint: a line per fault epoch and a final line, each snapshotting
// the conservation counters at that instant (extending the byte-
// deterministic log idea of fault.Injector.Fingerprint to the whole
// dataplane). Two runs of the same cluster — different worker counts,
// same seed — must produce identical fingerprints; the golden-replay
// harness in internal/bench byte-compares them.
package invariant

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Violation is one detected invariant breach at a virtual time.
type Violation struct {
	At     sim.Time
	Rule   string
	Detail string
}

// String renders the violation as a stable log line.
func (v Violation) String() string {
	return fmt.Sprintf("violation t=%d %s: %s", int64(v.At), v.Rule, v.Detail)
}

// Checker accumulates conservation counters and violations for one
// cluster. All methods are nil-safe; a nil *Checker is the disabled
// state (mirroring obs.Tracer).
type Checker struct {
	eng *sim.Engine

	violations []Violation
	checks     uint64 // individual predicate evaluations
	epochs     []string

	// Message conservation at the network layer. Under a partitioned
	// (PDES) run each partition has its own checker, and a packet that
	// crosses partitions is injected on one ledger but delivered on
	// another; the handoff counters reconcile the two so conservation
	// still balances per checker: injected + in = delivered + dropped
	// + out at quiescence.
	netInjected  uint64
	netDelivered uint64
	netDropped   uint64
	netXferOut   uint64 // packets handed off to another partition
	netXferIn    uint64 // packets received from another partition

	// Traffic-gate conservation (admitted packets must all clear the
	// pipeline).
	gateAdmitted  uint64
	gateDelivered uint64

	// Scheduler work counters.
	execCompleted uint64
	drrVisits     uint64

	// Ingress-queue FIFO audit totals (details in the per-queue audits).
	queuePushes uint64
	queuePops   uint64

	// Msgring operation count (each op re-validates the credit state).
	ringOps uint64

	// DMO byte accounting: alloc = free + live, never over limit.
	dmoAlloc  uint64
	dmoFree   uint64
	dmoShadow map[dmoKey]int

	// QoS lane conservation: every enqueued message is eventually
	// delivered (sheds are counted separately and control sheds are
	// violations outright).
	laneEnqueued  uint64
	laneDelivered uint64
	laneShed      uint64

	// QoS admission conservation: every offered request is either
	// admitted or rejected.
	admOffered  uint64
	admAdmitted uint64
	admRejected uint64

	// Migration conservation (§3.2.5 push/pull hand-offs): every begun
	// migration resolves as exactly one commit or abort, and every
	// request buffered at a commit point is forwarded by the protocol's
	// final phase. Under PDES the commits run as deferred
	// window-boundary actions, so these counters double as the ledger
	// proving no hand-off was lost or doubled between a partition's
	// local phases and the coordinator's commit.
	migPushBegun     uint64
	migPushCommitted uint64
	migPullBegun     uint64
	migPullCommitted uint64
	migAborted       uint64
	migBytes         uint64
	migBuffered      uint64
	migForwarded     uint64
	// migInFlight tracks the actor each node is currently migrating:
	// the scheduler's single-migration latch means at most one per node,
	// so a second Begin before the first resolves is a latch breach.
	migInFlight map[string]string

	// DRR round-fairness state, per scheduler instance and core.
	drr map[string]*drrSched

	// Single-leader-per-ballot claims: group → ballot → replica.
	leaders map[string]map[uint64]int
}

type dmoKey struct {
	label string
	owner uint32
}

// New creates an enabled checker bound to the cluster's engine. eng may
// be nil in unit tests; violation timestamps are then zero.
func New(eng *sim.Engine) *Checker {
	return &Checker{
		eng:         eng,
		dmoShadow:   map[dmoKey]int{},
		drr:         map[string]*drrSched{},
		leaders:     map[string]map[uint64]int{},
		migInFlight: map[string]string{},
	}
}

// Enabled reports whether checking is on (the nil test, like
// obs.Tracer.Enabled).
func (c *Checker) Enabled() bool { return c != nil }

func (c *Checker) now() sim.Time {
	if c.eng == nil {
		return 0
	}
	return c.eng.Now()
}

func (c *Checker) violate(rule, format string, args ...any) {
	c.violations = append(c.violations, Violation{
		At:     c.now(),
		Rule:   rule,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Violations returns every breach recorded so far.
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	return c.violations
}

// Checks returns how many predicate evaluations ran (a liveness signal:
// a wired checker on an active cluster must count into the thousands).
func (c *Checker) Checks() uint64 {
	if c == nil {
		return 0
	}
	return c.checks
}

// Err folds violations into a single error, nil when clean.
func (c *Checker) Err() error {
	if c == nil || len(c.violations) == 0 {
		return nil
	}
	lines := make([]string, len(c.violations))
	for i, v := range c.violations {
		lines[i] = v.String()
	}
	return fmt.Errorf("invariant: %d violation(s):\n%s", len(c.violations), strings.Join(lines, "\n"))
}

// --- network conservation ---------------------------------------------

// NetInject records a packet entering the network (past the drop gates).
func (c *Checker) NetInject() {
	if c == nil {
		return
	}
	c.netInjected++
}

// NetDeliver records a packet handed to its destination node and checks
// that deliveries plus drops never exceed injections (in-flight ≥ 0).
func (c *Checker) NetDeliver() {
	if c == nil {
		return
	}
	c.netDelivered++
	c.netBalance()
}

// NetHandoffOut records a packet leaving this checker's partition for
// another one (its delivery or drop will land on the peer's ledger).
func (c *Checker) NetHandoffOut() {
	if c == nil {
		return
	}
	c.netXferOut++
	c.netBalance()
}

// NetHandoffIn records a packet arriving from another partition; from
// here on it is this ledger's responsibility.
func (c *Checker) NetHandoffIn() {
	if c == nil {
		return
	}
	c.netXferIn++
}

// netBalance checks that outcomes (delivered + dropped + handed off)
// never exceed responsibilities (injected + received); the difference
// is the in-flight count, which must stay ≥ 0.
func (c *Checker) netBalance() {
	c.checks++
	if c.netDelivered+c.netDropped+c.netXferOut > c.netInjected+c.netXferIn {
		c.violate("net-conservation",
			"delivered %d + dropped %d + out %d exceeds injected %d + in %d",
			c.netDelivered, c.netDropped, c.netXferOut, c.netInjected, c.netXferIn)
	}
}

// NetDrop records a packet dropped inside the network (unknown node,
// partition, injected loss). Drops at the source gates happen before
// injection and are not counted here.
func (c *Checker) NetDrop(reason string) {
	if c == nil {
		return
	}
	_ = reason
	c.netDropped++
	c.netBalance()
}

// --- traffic-gate conservation ----------------------------------------

// GateAdmit records a packet admitted into the traffic manager.
func (c *Checker) GateAdmit() {
	if c == nil {
		return
	}
	c.gateAdmitted++
}

// GateDeliver records a packet clearing the gate pipeline; it must have
// been admitted first.
func (c *Checker) GateDeliver() {
	if c == nil {
		return
	}
	c.gateDelivered++
	c.checks++
	if c.gateDelivered > c.gateAdmitted {
		c.violate("gate-conservation",
			"delivered %d exceeds admitted %d", c.gateDelivered, c.gateAdmitted)
	}
}

// --- scheduler ---------------------------------------------------------

// Exec records one completed core operation (execution or forward).
func (c *Checker) Exec() {
	if c == nil {
		return
	}
	c.execCompleted++
}

// CoreBusy checks a core's cumulative busy time against wall (virtual)
// time: a core cannot have been busy longer than the run has lasted.
func (c *Checker) CoreBusy(label string, coreID int, busy, now sim.Time) {
	if c == nil {
		return
	}
	c.checks++
	if busy > now {
		c.violate("core-busy",
			"%s core %d busy %d ns exceeds wall %d ns", label, coreID, int64(busy), int64(now))
	}
}

// --- msgring credit conservation ----------------------------------------

// RingOp validates a ring's pointer/credit state after an operation:
// head and tail only move forward, the consumer never outruns the
// producer, the producer's stale credit view never claims more than the
// ring capacity, and the consumed-since-sync count matches the pointer
// gap (the lazy-credit bookkeeping of §3.5). Called on every push, pop,
// and credit sync; wrap is where the arithmetic goes wrong first.
func (c *Checker) RingOp(label string, head, tail, creditHead, consumed, capacity int) {
	if c == nil {
		return
	}
	c.ringOps++
	c.checks++
	switch {
	case tail < head:
		c.violate("ring-credit", "%s: consumer head %d ahead of producer tail %d", label, head, tail)
	case head < creditHead:
		c.violate("ring-credit", "%s: credit head %d ahead of consumer head %d", label, creditHead, head)
	case tail-head > capacity:
		c.violate("ring-credit", "%s: occupancy %d exceeds capacity %d", label, tail-head, capacity)
	case tail-creditHead > capacity:
		c.violate("ring-credit", "%s: producer view %d slots used exceeds capacity %d",
			label, tail-creditHead, capacity)
	case consumed != head-creditHead:
		c.violate("ring-credit", "%s: consumed-since-sync %d != head %d - creditHead %d",
			label, consumed, head, creditHead)
	}
}

// --- DMO byte accounting -------------------------------------------------

// DMOAlloc records an allocation of size bytes for an actor's region and
// cross-checks the store's used/limit accounting against the checker's
// shadow count.
func (c *Checker) DMOAlloc(label string, owner uint32, size, used, limit int) {
	if c == nil {
		return
	}
	c.dmoAlloc += uint64(size)
	k := dmoKey{label, owner}
	c.dmoShadow[k] += size
	c.checks++
	if c.dmoShadow[k] != used {
		c.violate("dmo-bytes", "%s actor %d: region used %d != live bytes %d after alloc %d",
			label, owner, used, c.dmoShadow[k], size)
	}
	if used > limit {
		c.violate("dmo-bytes", "%s actor %d: region used %d exceeds limit %d",
			label, owner, used, limit)
	}
}

// DMOFree records a free returning size bytes to the region.
func (c *Checker) DMOFree(label string, owner uint32, size, used int) {
	if c == nil {
		return
	}
	c.dmoFree += uint64(size)
	k := dmoKey{label, owner}
	c.dmoShadow[k] -= size
	c.checks++
	if c.dmoShadow[k] < 0 {
		c.violate("dmo-bytes", "%s actor %d: freed more bytes than allocated (%d short)",
			label, owner, -c.dmoShadow[k])
	}
	if c.dmoShadow[k] != used {
		c.violate("dmo-bytes", "%s actor %d: region used %d != live bytes %d after free %d",
			label, owner, used, c.dmoShadow[k], size)
	}
}

// DMODestroy records an actor's region teardown releasing bytes live
// object bytes (DoS-watchdog kill or deregistration).
func (c *Checker) DMODestroy(label string, owner uint32, bytes int) {
	if c == nil {
		return
	}
	c.dmoFree += uint64(bytes)
	k := dmoKey{label, owner}
	c.checks++
	if c.dmoShadow[k] != bytes {
		c.violate("dmo-bytes", "%s actor %d: destroy released %d bytes but %d were live",
			label, owner, bytes, c.dmoShadow[k])
	}
	delete(c.dmoShadow, k)
}

// --- QoS lanes & admission ----------------------------------------------

// LaneEnqueue records a message entering a node's priority-lane queue.
func (c *Checker) LaneEnqueue(label string, lane uint8) {
	if c == nil {
		return
	}
	_, _ = label, lane
	c.laneEnqueued++
}

// LaneDeliver records a lane dispatch and audits strict priority:
// higherBacklog is the total depth of strictly-higher-priority lanes at
// dispatch time, which must be zero — a lower lane never dispatches
// past waiting higher-lane work.
func (c *Checker) LaneDeliver(label string, lane uint8, higherBacklog int) {
	if c == nil {
		return
	}
	c.laneDelivered++
	c.checks++
	if higherBacklog > 0 {
		c.violate("lane-priority",
			"%s: lane %d dispatched past %d queued higher-priority message(s)",
			label, lane, higherBacklog)
	}
	c.checks++
	if c.laneDelivered > c.laneEnqueued {
		c.violate("lane-conservation",
			"%s: delivered %d exceeds enqueued %d", label, c.laneDelivered, c.laneEnqueued)
	}
}

// LaneShed records a watermark shed. Only the telemetry lane may shed;
// a control-lane shed (control=true) is an outright violation of the
// never-drop-control contract.
func (c *Checker) LaneShed(label string, lane uint8, control bool) {
	if c == nil {
		return
	}
	c.laneShed++
	c.checks++
	if control {
		c.violate("lane-control-shed",
			"%s: control-lane message shed (lane %d); control traffic must never be dropped",
			label, lane)
	}
}

// AdmissionOffer records a request reaching a tenant admission gate.
func (c *Checker) AdmissionOffer() {
	if c == nil {
		return
	}
	c.admOffered++
}

// AdmissionAdmit records an admitted request and checks outcomes never
// exceed offers.
func (c *Checker) AdmissionAdmit() {
	if c == nil {
		return
	}
	c.admAdmitted++
	c.admissionBalance()
}

// AdmissionReject records a rejected request.
func (c *Checker) AdmissionReject() {
	if c == nil {
		return
	}
	c.admRejected++
	c.admissionBalance()
}

func (c *Checker) admissionBalance() {
	c.checks++
	if c.admAdmitted+c.admRejected > c.admOffered {
		c.violate("admission-conservation",
			"admitted %d + rejected %d exceeds offered %d",
			c.admAdmitted, c.admRejected, c.admOffered)
	}
}

// --- migration conservation ----------------------------------------------

// MigrateBegin records a migration entering its node-local phases
// (push: NIC→host drain/execute/DMO-move; pull: host→NIC object move)
// and audits the scheduler's single-migration latch: a node beginning
// a second migration before the first resolves has broken it.
func (c *Checker) MigrateBegin(node, actor string, push bool) {
	if c == nil {
		return
	}
	if push {
		c.migPushBegun++
	} else {
		c.migPullBegun++
	}
	c.checks++
	if prev, busy := c.migInFlight[node]; busy {
		c.violate("migration-latch",
			"%s begins migrating %q while %q is still in flight (latch not held)",
			node, actor, prev)
		return
	}
	c.migInFlight[node] = actor
}

// MigrateCommit records the cluster-visible commit (table rewrite,
// host/NIC registration) and the requests buffered while the actor was
// in flight; resolutions must never exceed begun migrations.
func (c *Checker) MigrateCommit(node, actor string, push bool, bytes, buffered int) {
	if c == nil {
		return
	}
	if push {
		c.migPushCommitted++
	} else {
		c.migPullCommitted++
	}
	c.migBytes += uint64(bytes)
	c.migBuffered += uint64(buffered)
	c.migrationBalance(node, actor)
}

// MigrateAbort records a migration resolved without a placement change
// (actor killed in flight, or bounced off dead hardware).
func (c *Checker) MigrateAbort(node, actor string, push bool) {
	if c == nil {
		return
	}
	_ = push
	c.migAborted++
	c.migrationBalance(node, actor)
}

// MigrateForward records buffered requests re-dispatched by the final
// phase; forwarding more than was ever buffered means a commit ran
// twice.
func (c *Checker) MigrateForward(node string, n int) {
	if c == nil {
		return
	}
	c.migForwarded += uint64(n)
	c.checks++
	if c.migForwarded > c.migBuffered {
		c.violate("migration-conserve",
			"%s: forwarded %d buffered requests but only %d were ever buffered (double commit?)",
			node, c.migForwarded, c.migBuffered)
	}
}

func (c *Checker) migrationBalance(node, actor string) {
	c.checks++
	if resolved := c.migPushCommitted + c.migPullCommitted + c.migAborted; resolved > c.migPushBegun+c.migPullBegun {
		c.violate("migration-conserve",
			"%s/%s: %d migrations resolved but only %d begun (double commit or double abort)",
			node, actor, resolved, c.migPushBegun+c.migPullBegun)
	}
	delete(c.migInFlight, node)
}

// --- RKV leadership ------------------------------------------------------

// LeaderClaim records a replica claiming leadership of a group at a
// ballot. The BallotOffset scheme (replica k elects only with ballots
// ≡ k mod group size) makes ballots collision-free; two claims on the
// same (group, ballot) by different replicas mean split brain.
func (c *Checker) LeaderClaim(group string, ballot uint64, replica int) {
	if c == nil {
		return
	}
	byBallot := c.leaders[group]
	if byBallot == nil {
		byBallot = map[uint64]int{}
		c.leaders[group] = byBallot
	}
	c.checks++
	if prev, claimed := byBallot[ballot]; claimed && prev != replica {
		c.violate("single-leader",
			"%s: replica %d claims ballot %d already held by replica %d",
			group, replica, ballot, prev)
		return
	}
	byBallot[ballot] = replica
}

// --- epochs & fingerprint ------------------------------------------------

// countersLine renders the conservation counters compactly; identical
// runs produce identical lines.
func (c *Checker) countersLine() string {
	return fmt.Sprintf(
		"net=%d/%d/%d xfer=%d/%d gate=%d/%d exec=%d queue=%d/%d drr=%d ring=%d dmo=%d/%d leaders=%d lanes=%d/%d/%d adm=%d/%d/%d mig=%d/%d/%d/%d/%d migio=%d/%d/%d",
		c.netInjected, c.netDelivered, c.netDropped,
		c.netXferOut, c.netXferIn,
		c.gateAdmitted, c.gateDelivered,
		c.execCompleted, c.queuePushes, c.queuePops, c.drrVisits,
		c.ringOps, c.dmoAlloc, c.dmoFree, c.leaderCount(),
		c.laneEnqueued, c.laneDelivered, c.laneShed,
		c.admOffered, c.admAdmitted, c.admRejected,
		c.migPushBegun, c.migPushCommitted, c.migPullBegun, c.migPullCommitted, c.migAborted,
		c.migBytes, c.migBuffered, c.migForwarded)
}

func (c *Checker) leaderCount() int {
	n := 0
	for _, m := range c.leaders {
		n += len(m)
	}
	return n
}

// Epoch snapshots the counters under a label — the fault injector calls
// it at every fault activation and restoration, so the fingerprint
// carries per-fault-epoch conservation state, not just run totals.
func (c *Checker) Epoch(label string) {
	if c == nil {
		return
	}
	c.EpochAt(label, c.now())
}

// EpochAt is Epoch with an explicit timestamp — the barrier-time form
// for coordinator-side fault actions under PDES, where the partition
// clocks are normalized to one tick before the barrier and c.now()
// would stamp t-1 for a mutation that semantically happens at t.
func (c *Checker) EpochAt(label string, t sim.Time) {
	if c == nil {
		return
	}
	c.epochs = append(c.epochs,
		fmt.Sprintf("epoch t=%d %s %s", int64(t), label, c.countersLine()))
}

// Finish runs the end-of-run checks and seals the final counter line.
// Call once after the engine has drained; calling on a still-armed
// engine only skips the quiescence equalities (cutoff runs legitimately
// strand in-flight work). Idempotent in effect: repeated calls append
// repeated final lines, so callers should invoke it once.
func (c *Checker) Finish() {
	if c == nil {
		return
	}
	if c.eng != nil && c.eng.Pending() == 0 {
		c.checks++
		if inflight := (c.netInjected + c.netXferIn) - (c.netDelivered + c.netDropped + c.netXferOut); inflight != 0 {
			c.violate("net-conservation",
				"engine drained with %d packets unaccounted (injected %d, in %d, delivered %d, dropped %d, out %d)",
				inflight, c.netInjected, c.netXferIn, c.netDelivered, c.netDropped, c.netXferOut)
		}
		c.checks++
		if c.gateAdmitted != c.gateDelivered {
			c.violate("gate-conservation",
				"engine drained with %d admitted packets stuck in the gate (admitted %d, delivered %d)",
				c.gateAdmitted-c.gateDelivered, c.gateAdmitted, c.gateDelivered)
		}
		c.checks++
		if c.laneEnqueued != c.laneDelivered {
			c.violate("lane-conservation",
				"engine drained with %d messages stuck in priority lanes (enqueued %d, delivered %d)",
				c.laneEnqueued-c.laneDelivered, c.laneEnqueued, c.laneDelivered)
		}
		c.checks++
		if c.admOffered != c.admAdmitted+c.admRejected {
			c.violate("admission-conservation",
				"engine drained with %d offered requests unresolved (offered %d, admitted %d, rejected %d)",
				c.admOffered-c.admAdmitted-c.admRejected, c.admOffered, c.admAdmitted, c.admRejected)
		}
	}
	c.epochs = append(c.epochs,
		fmt.Sprintf("final t=%d %s", int64(c.now()), c.countersLine()))
}

// Fingerprint returns the deterministic run summary: the epoch lines in
// event order followed by every violation. Byte-identical across reruns
// of the same cluster at the same seed, whatever the host parallelism.
func (c *Checker) Fingerprint() string {
	if c == nil {
		return ""
	}
	lines := append([]string(nil), c.epochs...)
	for _, v := range c.violations {
		lines = append(lines, v.String())
	}
	return strings.Join(lines, "\n")
}

// Summary is a one-line human-readable digest for CLI output.
func (c *Checker) Summary() string {
	if c == nil {
		return "invariants: disabled"
	}
	return fmt.Sprintf("invariants: %d checks, %d violations", c.checks, len(c.violations))
}

// CrossCheckHandoffs reconciles one cluster's per-partition handoff
// ledgers: every packet some partition handed off (NetHandoffOut) must
// have been claimed by another (NetHandoffIn), so the totals must agree
// once every engine has drained — per-partition conservation only
// proves each ledger is internally consistent; this closes the loop
// across them. Crash drains make the check interesting under faults: a
// cross-partition packet dropped by a downed destination still counts
// as received-then-dropped on the destination ledger, never as lost
// between ledgers. Skipped when any engine still has pending work
// (cutoff runs legitimately strand packets mid-handoff); a mismatch is
// recorded as a violation on the first enabled checker. Call once,
// after the run, alongside Finish.
func CrossCheckHandoffs(chks []*Checker) {
	var first *Checker
	var out, in uint64
	for _, c := range chks {
		if c == nil {
			continue
		}
		if c.eng != nil && c.eng.Pending() > 0 {
			return
		}
		if first == nil {
			first = c
		}
		out += c.netXferOut
		in += c.netXferIn
	}
	if first == nil {
		return
	}
	first.checks++
	if out != in {
		first.violate("net-handoff-reconcile",
			"cross-partition handoffs do not reconcile: out %d, in %d", out, in)
	}
}

// SortFingerprints canonicalizes a set of per-cluster fingerprints: the
// replay harness collects them from sweep workers in completion order,
// which is nondeterministic under parallelism; sorting restores a
// stable multiset representation for byte comparison.
func SortFingerprints(fps []string) string {
	sorted := append([]string(nil), fps...)
	sort.Strings(sorted)
	return strings.Join(sorted, "\n--\n")
}
