package invariant

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// countRule tallies violations recorded under a rule.
func countRule(c *Checker, rule string) int {
	n := 0
	for _, v := range c.Violations() {
		if v.Rule == rule {
			n++
		}
	}
	return n
}

func TestNilCheckerIsSafe(t *testing.T) {
	var c *Checker
	if c.Enabled() {
		t.Fatal("nil checker reports enabled")
	}
	// Every hook must be a no-op on the nil receiver — this is the
	// zero-cost disabled contract the substrate packages rely on.
	c.NetInject()
	c.NetDeliver()
	c.NetDrop("loss")
	c.GateAdmit()
	c.GateDeliver()
	c.Exec()
	c.CoreBusy("n", 0, 5, 1)
	c.RingOp("r", 9, 3, 0, 0, 4)
	c.DMOAlloc("n", 1, 64, 64, 32)
	c.DMOFree("n", 1, 64, 0)
	c.DMODestroy("n", 1, 64)
	c.LeaderClaim("g", 1, 0)
	c.DRRAdd("n", 1)
	c.DRRVisit("n", 0, 1)
	c.DRRRemove("n", 1)
	c.Epoch("+crash")
	c.Finish()
	if c.Err() != nil || c.Checks() != 0 || len(c.Violations()) != 0 {
		t.Fatal("nil checker accumulated state")
	}
	if c.Fingerprint() != "" {
		t.Fatal("nil checker produced a fingerprint")
	}
	var a *QueueAudit
	if seq := a.Push(1); seq != 0 {
		t.Fatalf("nil audit Push = %d, want 0", seq)
	}
	a.Pop(1, 1)
	if a.Queued() != 0 {
		t.Fatal("nil audit queued state")
	}
}

func TestNilCheckerYieldsNilAudit(t *testing.T) {
	var c *Checker
	if a := c.NewQueueAudit("q"); a != nil {
		t.Fatal("nil checker returned a live audit")
	}
}

func TestNetConservation(t *testing.T) {
	c := New(nil)
	c.NetInject()
	c.NetDeliver()
	if countRule(c, "net-conservation") != 0 {
		t.Fatal("clean inject/deliver flagged")
	}
	c.NetDeliver() // delivered 2 > injected 1
	if countRule(c, "net-conservation") != 1 {
		t.Fatal("over-delivery not flagged")
	}
	c2 := New(nil)
	c2.NetDrop("loss") // dropped 1 > injected 0
	if countRule(c2, "net-conservation") != 1 {
		t.Fatal("drop without inject not flagged")
	}
}

func TestGateConservation(t *testing.T) {
	c := New(nil)
	c.GateAdmit()
	c.GateDeliver()
	c.GateDeliver()
	if countRule(c, "gate-conservation") != 1 {
		t.Fatal("gate over-delivery not flagged")
	}
}

func TestCoreBusy(t *testing.T) {
	c := New(nil)
	c.CoreBusy("nic0", 2, 100, 200)
	if len(c.Violations()) != 0 {
		t.Fatal("busy ≤ wall flagged")
	}
	c.CoreBusy("nic0", 2, 300, 200)
	if countRule(c, "core-busy") != 1 {
		t.Fatal("busy > wall not flagged")
	}
}

func TestRingOp(t *testing.T) {
	cases := []struct {
		name                                   string
		head, tail, creditHead, consumed, capN int
		bad                                    bool
	}{
		{"clean", 3, 5, 1, 2, 8, false},
		{"clean-wrap", 100, 104, 98, 2, 8, false},
		{"head-past-tail", 6, 5, 1, 5, 8, true},
		{"credit-past-head", 3, 5, 4, -1, 8, true},
		{"over-capacity", 3, 12, 3, 0, 8, true},
		{"producer-view-over-capacity", 9, 10, 1, 8, 8, true},
		{"consumed-mismatch", 3, 5, 1, 7, 8, true},
	}
	for _, tc := range cases {
		c := New(nil)
		c.RingOp("ring", tc.head, tc.tail, tc.creditHead, tc.consumed, tc.capN)
		got := countRule(c, "ring-credit") > 0
		if got != tc.bad {
			t.Errorf("%s: violation = %v, want %v", tc.name, got, tc.bad)
		}
	}
}

func TestDMOAccounting(t *testing.T) {
	c := New(nil)
	c.DMOAlloc("n0", 7, 64, 64, 1024)
	c.DMOAlloc("n0", 7, 32, 96, 1024)
	c.DMOFree("n0", 7, 32, 64)
	c.DMODestroy("n0", 7, 64)
	if len(c.Violations()) != 0 {
		t.Fatalf("clean alloc/free/destroy flagged: %v", c.Violations())
	}

	c = New(nil)
	c.DMOAlloc("n0", 7, 64, 128, 1024) // store says 128 used, shadow says 64
	if countRule(c, "dmo-bytes") != 1 {
		t.Fatal("used/shadow mismatch not flagged")
	}

	c = New(nil)
	c.DMOAlloc("n0", 7, 64, 64, 32) // over limit
	if countRule(c, "dmo-bytes") != 1 {
		t.Fatal("over-limit alloc not flagged")
	}

	c = New(nil)
	c.DMOFree("n0", 7, 16, 0) // free with nothing allocated
	if countRule(c, "dmo-bytes") == 0 {
		t.Fatal("over-free not flagged")
	}

	c = New(nil)
	c.DMOAlloc("n0", 7, 64, 64, 1024)
	c.DMODestroy("n0", 7, 32) // destroy claims fewer bytes than live
	if countRule(c, "dmo-bytes") != 1 {
		t.Fatal("destroy byte mismatch not flagged")
	}
}

func TestLeaderClaim(t *testing.T) {
	c := New(nil)
	c.LeaderClaim("g00", 1, 0)
	c.LeaderClaim("g00", 1, 0) // same replica re-claims: fine
	c.LeaderClaim("g00", 4, 1) // new ballot: fine
	c.LeaderClaim("g01", 1, 2) // other group, same ballot: fine
	if len(c.Violations()) != 0 {
		t.Fatalf("legitimate claims flagged: %v", c.Violations())
	}
	c.LeaderClaim("g00", 4, 2) // split brain
	if countRule(c, "single-leader") != 1 {
		t.Fatal("two leaders on one ballot not flagged")
	}
}

func TestQueueAuditFIFO(t *testing.T) {
	c := New(nil)
	a := c.NewQueueAudit("q")
	s1 := a.Push(5)
	s2 := a.Push(5)
	s3 := a.Push(9)
	if a.Queued() != 3 {
		t.Fatalf("queued = %d", a.Queued())
	}
	a.Pop(9, s3) // other flow first: per-flow FIFO doesn't order across flows
	a.Pop(5, s1)
	a.Pop(5, s2)
	if len(c.Violations()) != 0 {
		t.Fatalf("in-order pops flagged: %v", c.Violations())
	}
	if a.Queued() != 0 {
		t.Fatalf("queued = %d after drain", a.Queued())
	}
}

func TestQueueAuditDetectsReorder(t *testing.T) {
	c := New(nil)
	a := c.NewQueueAudit("q")
	s1 := a.Push(5)
	s2 := a.Push(5)
	s3 := a.Push(5)
	a.Pop(5, s2) // skipped s1
	if countRule(c, "queue-fifo") != 1 {
		t.Fatal("reorder not flagged")
	}
	// Resync: the remaining pops in order must not cascade violations.
	a.Pop(5, s1)
	a.Pop(5, s3)
	if countRule(c, "queue-fifo") != 1 {
		t.Fatalf("resync failed, violations: %v", c.Violations())
	}
}

func TestQueueAuditDetectsLossAndPhantom(t *testing.T) {
	c := New(nil)
	a := c.NewQueueAudit("q")
	a.Pop(5, 1) // nothing queued
	if countRule(c, "queue-fifo") != 1 {
		t.Fatal("pop from empty flow not flagged")
	}
	a.Push(5)
	a.Pop(5, 99) // seq never pushed: reorder + failed resync
	if countRule(c, "queue-fifo") != 3 {
		t.Fatalf("phantom pop recorded %d violations, want 3", countRule(c, "queue-fifo"))
	}
}

func TestDRRFairness(t *testing.T) {
	c := New(nil)
	c.DRRAdd("n", 1)
	c.DRRAdd("n", 2)
	// Two full fair rounds.
	c.DRRVisit("n", 0, 1)
	c.DRRVisit("n", 0, 2)
	c.DRRVisit("n", 0, 1)
	c.DRRVisit("n", 0, 2)
	if len(c.Violations()) != 0 {
		t.Fatalf("fair rounds flagged: %v", c.Violations())
	}
	// Now the cursor revisits 1 while 2 is still unvisited this round.
	c.DRRVisit("n", 0, 1)
	c.DRRVisit("n", 0, 1)
	if countRule(c, "drr-fairness") != 1 {
		t.Fatal("skipped actor not flagged")
	}
}

func TestDRRFreshActorExempt(t *testing.T) {
	c := New(nil)
	c.DRRAdd("n", 1)
	c.DRRVisit("n", 0, 1)
	c.DRRAdd("n", 2) // joins mid-round: exempt until next round
	c.DRRVisit("n", 0, 1)
	if len(c.Violations()) != 0 {
		t.Fatalf("fresh actor flagged: %v", c.Violations())
	}
	// Next round it is eligible: skipping it now is a violation.
	c.DRRVisit("n", 0, 1)
	if countRule(c, "drr-fairness") != 1 {
		t.Fatal("second-round skip not flagged")
	}
}

func TestDRRRemoveClearsEligibility(t *testing.T) {
	c := New(nil)
	c.DRRAdd("n", 1)
	c.DRRAdd("n", 2)
	c.DRRVisit("n", 0, 1)
	c.DRRRemove("n", 2)
	c.DRRVisit("n", 0, 1)
	c.DRRVisit("n", 0, 1)
	if len(c.Violations()) != 0 {
		t.Fatalf("removed actor still counted: %v", c.Violations())
	}
}

func TestDRRCoresIndependent(t *testing.T) {
	c := New(nil)
	c.DRRAdd("n", 1)
	c.DRRAdd("n", 2)
	// Core 0 scans both; core 1 (spun up later) only ever sees actor 2 —
	// rounds are per-core, so core 0's wrap must not read core 1's state.
	c.DRRVisit("n", 0, 1)
	c.DRRVisit("n", 1, 2)
	c.DRRVisit("n", 0, 2)
	c.DRRVisit("n", 1, 2)
	c.DRRVisit("n", 0, 1)
	if countRule(c, "drr-fairness") != 1 {
		// Core 1 revisited actor 2 while actor 1 went unvisited in *its*
		// stream — that one is a real skip.
		t.Fatalf("per-core rounds broken: %v", c.Violations())
	}
}

func TestFinishQuiescence(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng)
	c.NetInject() // never delivered nor dropped
	c.Finish()    // engine has no pending events: equalities apply
	if countRule(c, "net-conservation") != 1 {
		t.Fatal("stranded packet not flagged at quiescence")
	}

	eng2 := sim.NewEngine(1)
	eng2.After(sim.Microsecond, func() {}) // engine still armed
	c2 := New(eng2)
	c2.NetInject()
	c2.Finish() // cutoff run: equalities must be skipped
	if len(c2.Violations()) != 0 {
		t.Fatalf("in-flight work flagged on armed engine: %v", c2.Violations())
	}
}

func TestFingerprintDeterminism(t *testing.T) {
	mk := func() *Checker {
		c := New(nil)
		c.NetInject()
		c.NetDeliver()
		c.Epoch("+crash kv0")
		c.GateAdmit()
		c.GateDeliver()
		c.Epoch("-crash kv0")
		c.Finish()
		return c
	}
	a, b := mk(), mk()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical runs produced different fingerprints")
	}
	if !strings.Contains(a.Fingerprint(), "epoch t=0 +crash kv0") {
		t.Fatalf("fingerprint missing epoch line:\n%s", a.Fingerprint())
	}
	if !strings.Contains(a.Fingerprint(), "final t=0") {
		t.Fatalf("fingerprint missing final line:\n%s", a.Fingerprint())
	}
	if SortFingerprints([]string{a.Fingerprint(), "zzz"}) !=
		SortFingerprints([]string{"zzz", b.Fingerprint()}) {
		t.Fatal("SortFingerprints is order-sensitive")
	}
}

func TestErr(t *testing.T) {
	c := New(nil)
	if c.Err() != nil {
		t.Fatal("clean checker errors")
	}
	c.GateDeliver()
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "gate-conservation") {
		t.Fatalf("Err() = %v", err)
	}
}
