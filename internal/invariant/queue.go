package invariant

// This file holds the two stateful sub-trackers: the per-flow FIFO
// audit over ingress queues and the DRR round-fairness tracker. Both
// follow the package's nil-receiver discipline so the scheduler hot
// path stays free when checking is off.

// QueueAudit verifies per-flow FIFO and no-loss/no-duplication for one
// ingress queue (§3.2.6: flow steering exists precisely to keep a
// flow's requests ordered; work stealing must not undo it). The queue
// implementation stamps each pushed message with the sequence number
// Push returns and reports it back on Pop; the audit then checks that
// within every flow, messages leave in the order they entered, that
// nothing is popped twice, and that nothing is popped that was never
// pushed.
type QueueAudit struct {
	chk   *Checker
	label string

	nextSeq uint64
	// pending maps a flow to the queued sequence numbers in push order.
	pending map[uint64][]uint64
	queued  int
}

// NewQueueAudit creates an audit reporting into the checker. A nil
// checker yields a nil audit, whose methods are no-ops.
func (c *Checker) NewQueueAudit(label string) *QueueAudit {
	if c == nil {
		return nil
	}
	return &QueueAudit{chk: c, label: label, pending: map[uint64][]uint64{}}
}

// Push records a message entering the queue and returns its audit
// sequence number (0 when disabled; real sequences start at 1).
func (a *QueueAudit) Push(flow uint64) uint64 {
	if a == nil {
		return 0
	}
	a.nextSeq++
	a.pending[flow] = append(a.pending[flow], a.nextSeq)
	a.queued++
	a.chk.queuePushes++
	return a.nextSeq
}

// Pop records a message leaving the queue and checks flow order.
func (a *QueueAudit) Pop(flow, seq uint64) {
	if a == nil {
		return
	}
	a.chk.queuePops++
	a.chk.checks++
	q := a.pending[flow]
	if len(q) == 0 {
		a.chk.violate("queue-fifo",
			"%s: flow %d popped seq %d with nothing queued (lost or duplicated)",
			a.label, flow, seq)
		return
	}
	if q[0] != seq {
		a.chk.violate("queue-fifo",
			"%s: flow %d popped seq %d before seq %d (per-flow FIFO broken)",
			a.label, flow, seq, q[0])
		// Resynchronize on the popped message so one reorder does not
		// cascade into a violation per subsequent pop.
		for i, s := range q {
			if s == seq {
				a.pending[flow] = append(q[:i], q[i+1:]...)
				a.queued--
				return
			}
		}
		a.chk.violate("queue-fifo",
			"%s: flow %d popped seq %d that was never pushed", a.label, flow, seq)
		return
	}
	a.pending[flow] = q[1:]
	if len(a.pending[flow]) == 0 {
		delete(a.pending, flow)
	}
	a.queued--
}

// Queued reports messages pushed but not yet popped (the audit's view;
// must equal the queue's own len()).
func (a *QueueAudit) Queued() int {
	if a == nil {
		return 0
	}
	return a.queued
}

// --- DRR round fairness --------------------------------------------------

// drrSched tracks one scheduler's runnable set and per-core rounds.
type drrSched struct {
	eligible map[uint32]bool
	cores    map[int]*drrRound
}

// drrRound is one DRR core's current scan round: which runnable actors
// its cursor has passed, and which joined the queue since the round
// began (exempt until the next round — ALG 2 appends new actors at the
// tail, so a cursor past that point legitimately misses them once).
type drrRound struct {
	visited map[uint32]bool
	fresh   map[uint32]bool
}

func (c *Checker) drrState(label string) *drrSched {
	s := c.drr[label]
	if s == nil {
		s = &drrSched{eligible: map[uint32]bool{}, cores: map[int]*drrRound{}}
		c.drr[label] = s
	}
	return s
}

// DRRAdd records an actor entering the runnable queue (downgrade, or
// registration under AllDRR).
func (c *Checker) DRRAdd(label string, id uint32) {
	if c == nil {
		return
	}
	s := c.drrState(label)
	s.eligible[id] = true
	for _, r := range s.cores {
		r.fresh[id] = true
	}
}

// DRRRemove records an actor leaving the runnable queue (upgrade,
// migration, kill).
func (c *Checker) DRRRemove(label string, id uint32) {
	if c == nil {
		return
	}
	s := c.drrState(label)
	delete(s.eligible, id)
	for _, r := range s.cores {
		delete(r.visited, id)
		delete(r.fresh, id)
	}
}

// DRRVisit records a core's cursor passing an actor. Fairness (ALG 2's
// round robin): within one core's scan stream, no actor is visited a
// second time while another eligible actor — present since the round
// began — has not been visited at all. The second visit marks the round
// boundary; anything still unvisited at that point was skipped, which
// is exactly what a stale cursor after a runnable-queue removal does.
func (c *Checker) DRRVisit(label string, coreID int, id uint32) {
	if c == nil {
		return
	}
	c.drrVisits++
	s := c.drrState(label)
	r := s.cores[coreID]
	if r == nil {
		r = &drrRound{visited: map[uint32]bool{}, fresh: map[uint32]bool{}}
		s.cores[coreID] = r
	}
	if !r.visited[id] {
		r.visited[id] = true
		return
	}
	// Round boundary: the cursor wrapped back to an already-visited
	// actor. Every actor eligible for the whole round must have been
	// seen. Iterate deterministically for stable violation text.
	c.checks++
	var skipped []uint32
	for e := range s.eligible {
		if !r.visited[e] && !r.fresh[e] {
			skipped = append(skipped, e)
		}
	}
	if len(skipped) > 0 {
		min := skipped[0]
		for _, e := range skipped[1:] {
			if e < min {
				min = e
			}
		}
		c.violate("drr-fairness",
			"%s core %d: actor %d visited twice before actor %d was visited once",
			label, coreID, id, min)
	}
	r.visited = map[uint32]bool{id: true}
	r.fresh = map[uint32]bool{}
}
