// Package isolation implements iPipe's protection mechanisms (§3.4) for
// actors coexisting on a SmartNIC:
//
//   - Actor state corruption: every DMO access is checked against the
//     owner's region (the software analogue of the cnMIPS TLB trap on
//     firmware cards, or per-thread address spaces on full-OS cards);
//     internal/dmo enforces the check, this package counts and reports
//     violations so the runtime can act on offenders.
//   - Denial of service: a per-core timeout watchdog (the LiquidIOII's
//     hardware timer rings, or POSIX signals on full-OS cards) bounds
//     how long one handler invocation may hold a core. A handler that
//     exceeds the budget is killed and its actor deregistered.
package isolation

import (
	"errors"

	"repro/internal/actor"
	"repro/internal/sim"
)

// ErrActorKilled is reported when the watchdog deregisters an actor.
var ErrActorKilled = errors.New("isolation: actor killed by watchdog")

// Mechanism names the enforcement substrate, which depends on the card.
type Mechanism uint8

// The two enforcement substrates of §3.4.
const (
	// FirmwareTimer is the LiquidIOII hardware timer with 16 timer rings
	// plus software-managed TLB traps.
	FirmwareTimer Mechanism = iota
	// OSSignals is per-process address spaces plus POSIX signal timers
	// (BlueField, Stingray).
	OSSignals
)

// String renders the mechanism.
func (m Mechanism) String() string {
	if m == FirmwareTimer {
		return "firmware-timer"
	}
	return "os-signals"
}

// Watchdog bounds per-invocation core occupancy. Each core clears and
// re-arms its dedicated timer around every handler execution; in the
// simulation we compare the modeled service time against the budget,
// which is equivalent to the timer firing mid-execution.
type Watchdog struct {
	// Timeout is the per-invocation budget. Zero disables the watchdog.
	Timeout sim.Time
	// Mechanism is informational (selected from the NIC model).
	Mechanism Mechanism
	// OnKill is invoked when an actor is condemned; the runtime
	// deregisters it, removes it from dispatch/runnable queues, and
	// frees its resources.
	OnKill func(a *actor.Actor)

	// Kills counts condemned actors.
	Kills uint64
}

// NewWatchdog builds a watchdog with the given budget.
func NewWatchdog(timeout sim.Time, mech Mechanism, onKill func(*actor.Actor)) *Watchdog {
	return &Watchdog{Timeout: timeout, Mechanism: mech, OnKill: onKill}
}

// Check inspects one handler invocation's service time. If it exceeds
// the budget the actor is killed and Check reports (clamped, true): the
// core is released after Timeout, not after the runaway service time.
func (w *Watchdog) Check(a *actor.Actor, service sim.Time) (sim.Time, bool) {
	if w == nil || w.Timeout <= 0 || service <= w.Timeout {
		return service, false
	}
	w.Kills++
	if w.OnKill != nil {
		w.OnKill(a)
	}
	return w.Timeout, true
}

// ViolationLog aggregates DMO access violations per actor so the
// runtime (or an operator) can evict repeat offenders.
type ViolationLog struct {
	byActor map[actor.ID]uint64
	total   uint64
}

// NewViolationLog returns an empty log.
func NewViolationLog() *ViolationLog {
	return &ViolationLog{byActor: map[actor.ID]uint64{}}
}

// Record notes one rejected access by an actor.
func (v *ViolationLog) Record(id actor.ID) {
	v.byActor[id]++
	v.total++
}

// Count returns an actor's violation count.
func (v *ViolationLog) Count(id actor.ID) uint64 { return v.byActor[id] }

// Total returns all recorded violations.
func (v *ViolationLog) Total() uint64 { return v.total }
