package isolation

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/sim"
)

func TestWatchdogPassesGoodActors(t *testing.T) {
	w := NewWatchdog(100*sim.Microsecond, FirmwareTimer, nil)
	a := &actor.Actor{ID: 1}
	svc, killed := w.Check(a, 50*sim.Microsecond)
	if killed || svc != 50*sim.Microsecond {
		t.Fatalf("well-behaved actor penalized: %v %v", svc, killed)
	}
	if w.Kills != 0 {
		t.Fatal("spurious kill")
	}
}

func TestWatchdogKillsRunaway(t *testing.T) {
	var killed *actor.Actor
	w := NewWatchdog(100*sim.Microsecond, FirmwareTimer, func(a *actor.Actor) { killed = a })
	a := &actor.Actor{ID: 7}
	svc, dead := w.Check(a, sim.Second) // effectively an infinite loop
	if !dead {
		t.Fatal("runaway not killed")
	}
	if svc != 100*sim.Microsecond {
		t.Fatalf("core held for %v, want clamped to timeout", svc)
	}
	if killed != a || w.Kills != 1 {
		t.Fatalf("OnKill: got %v, kills %d", killed, w.Kills)
	}
}

func TestWatchdogDisabled(t *testing.T) {
	w := NewWatchdog(0, OSSignals, nil)
	if _, dead := w.Check(&actor.Actor{}, sim.Second); dead {
		t.Fatal("disabled watchdog killed an actor")
	}
	var nilW *Watchdog
	if _, dead := nilW.Check(&actor.Actor{}, sim.Second); dead {
		t.Fatal("nil watchdog killed an actor")
	}
}

func TestWatchdogBoundaryExact(t *testing.T) {
	w := NewWatchdog(10*sim.Microsecond, OSSignals, nil)
	if _, dead := w.Check(&actor.Actor{}, 10*sim.Microsecond); dead {
		t.Fatal("service exactly at budget should survive")
	}
	if _, dead := w.Check(&actor.Actor{}, 10*sim.Microsecond+1); !dead {
		t.Fatal("service above budget should die")
	}
}

func TestMechanismString(t *testing.T) {
	if FirmwareTimer.String() != "firmware-timer" || OSSignals.String() != "os-signals" {
		t.Fatal("mechanism names wrong")
	}
}

func TestViolationLog(t *testing.T) {
	v := NewViolationLog()
	v.Record(1)
	v.Record(1)
	v.Record(2)
	if v.Count(1) != 2 || v.Count(2) != 1 || v.Count(3) != 0 {
		t.Fatalf("counts: %d %d %d", v.Count(1), v.Count(2), v.Count(3))
	}
	if v.Total() != 3 {
		t.Fatalf("Total = %d", v.Total())
	}
}
