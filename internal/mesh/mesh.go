// Package mesh builds the datacenter-scale topologies the PDES engine
// exists for: N SmartNIC-equipped server nodes behind one switch, each
// paired with a closed-loop client, all clients issuing small RPCs to
// Zipf-chosen servers. It is the "millions of users hitting a few hot
// nodes" shape of the paper's RKV evaluation blown up past the 8-node
// testbed — the workload is deliberately simple (echo-style RPC with a
// fixed NIC-side service cost) so the experiment measures the engine
// and the fabric, not an application.
//
// Every node (its NIC, host, PCIe and link models) and its client live
// on one engine partition; only the switch hop crosses partitions.
// Results are deterministic for a fixed (seed, nodes, partitions)
// triple regardless of worker count.
//
// Observability: attach a tracer/collector through
// core.SetDefaultObserver before calling Run — the partitioned cluster
// shards the tracer per partition and samples metrics at window
// boundaries, so enabling observability changes neither the results nor
// their worker-count independence (the exported artifacts are
// themselves byte-identical at any worker count).
package mesh

import (
	"fmt"
	"time"

	"repro/internal/actor"
	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config sizes one mesh run.
type Config struct {
	// Nodes is the server count (≥ 2).
	Nodes int
	// Partitions shards the topology across this many engines (default
	// min(8, Nodes)). 1 is the classic serial engine.
	Partitions int
	// Workers bounds the goroutines executing partitions (≤ 1 = serial
	// merge; results are identical either way).
	Workers int
	Seed    uint64
	// Depth is each client's closed-loop outstanding-request window
	// (default 2).
	Depth int
	// Theta is the Zipf skew over destination servers (default 0.99,
	// the paper's RKV skew).
	Theta float64
	// ReqSize is the request wire size in bytes (default 256).
	ReqSize int
	// ServiceNs is the actor's modeled execution cost per request on
	// the reference NIC core (default 1500ns — an RKV-like GET).
	ServiceNs int
	// Window is the measured run length (default 2ms).
	Window sim.Time
	// Check attaches per-partition invariant checkers.
	Check bool
}

// Stats is one run's deterministic outcome plus its wall-clock cost.
// Ops/latency/Events depend only on (Seed, Nodes, Partitions, workload
// shape); Wall is the only field that varies run to run.
type Stats struct {
	Nodes      int
	Partitions int
	Workers    int
	Ops        uint64  // responses received across all clients
	Sent       uint64  // requests issued
	TputKops   float64 // Ops per simulated second, in thousands
	P50us      float64
	P99us      float64
	Events     uint64 // engine events executed
	Crossed    uint64 // cross-partition handoffs
	Rounds     uint64 // synchronization windows (0 when Partitions == 1)
	Wall       time.Duration
	Violations int // ledgers with violations; -1 when Check is off
	// Fingerprint concatenates the per-partition invariant fingerprints
	// (empty when Check is off) — the byte-comparison artifact for the
	// serial-vs-parallel replay axis.
	Fingerprint string
}

func nodeName(i int) string { return fmt.Sprintf("n%03d", i) }

// Run builds the mesh, drives it for the window, and reports.
func Run(cfg Config) Stats {
	if cfg.Nodes < 2 {
		cfg.Nodes = 2
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = cfg.Nodes
		if cfg.Partitions > 8 {
			cfg.Partitions = 8
		}
	}
	if cfg.Partitions > cfg.Nodes {
		cfg.Partitions = cfg.Nodes
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 2
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.99
	}
	if cfg.ReqSize <= 0 {
		cfg.ReqSize = 256
	}
	if cfg.ServiceNs <= 0 {
		cfg.ServiceNs = 1500
	}
	if cfg.Window <= 0 {
		cfg.Window = 2 * sim.Millisecond
	}

	cl := core.NewPartitionedCluster(cfg.Seed, cfg.Partitions)
	cl.SetPDESWorkers(cfg.Workers)
	var chks []*invariant.Checker
	if cfg.Check {
		chks = cl.AttachCheckers()
	}

	serviceCost := sim.Time(cfg.ServiceNs)
	for i := 0; i < cfg.Nodes; i++ {
		n := cl.AddNode(core.Config{
			Name:             nodeName(i),
			NIC:              spec.LiquidIOII_CN2350(),
			DisableMigration: true,
		})
		a := &actor.Actor{
			ID:     actor.ID(1 + i),
			Name:   fmt.Sprintf("svc%03d", i),
			PinNIC: true,
			OnMessage: func(ctx actor.Ctx, m actor.Msg) sim.Time {
				ctx.Reply(m)
				return serviceCost
			},
		}
		if err := n.Register(a, true, 1<<20); err != nil {
			panic(err)
		}
	}

	// One closed-loop client per server node, attached on the same
	// partition so its request generation parallelizes with it.
	clients := make([]*workload.Client, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		node := cl.Node(nodeName(i))
		clients[i] = workload.NewClientAt(cl, fmt.Sprintf("c%03d", i), cl.Net.LinkGbps(node.Name), node.Part)
	}
	for i := 0; i < cfg.Nodes; i++ {
		i := i
		c := clients[i]
		zipf := workload.NewZipf(c.Eng().Rand(), uint64(cfg.Nodes), cfg.Theta)
		c.ClosedLoop(cfg.Depth, cfg.Window, func(k uint64) workload.Request {
			dst := int(zipf.Next())
			if dst == i {
				dst = (dst + 1) % cfg.Nodes // never self: keep traffic on the wire
			}
			return workload.Request{
				Node:   nodeName(dst),
				Dst:    actor.ID(1 + dst),
				Size:   cfg.ReqSize,
				FlowID: uint64(i)<<32 | (k + 1),
			}
		})
	}

	start := time.Now()
	cl.RunUntil(cfg.Window)
	wall := time.Since(start)

	out := Stats{
		Nodes:      cfg.Nodes,
		Partitions: cfg.Partitions,
		Workers:    cfg.Workers,
		Wall:       wall,
		Violations: -1,
	}
	lat := stats.NewSample()
	for _, c := range clients { // fixed order: deterministic percentiles
		out.Ops += c.Received
		out.Sent += c.Sent
		lat.Merge(c.Lat)
	}
	out.TputKops = float64(out.Ops) / cfg.Window.Seconds() / 1e3
	out.P50us = lat.Percentile(50)
	out.P99us = lat.Percentile(99)
	if cl.Group != nil {
		out.Events = cl.Group.ExecutedEvents()
		out.Crossed = cl.Group.Crossed()
		out.Rounds = cl.Group.Rounds()
	} else {
		out.Events = cl.Eng.Executed()
	}
	if cfg.Check {
		out.Violations = 0
		var fp string
		for _, chk := range chks {
			chk.Finish()
			if err := chk.Err(); err != nil {
				out.Violations++
			}
			fp += chk.Fingerprint()
		}
		out.Fingerprint = fp
	}
	return out
}
