package mesh

import "testing"

// TestMeshParallelMatchesSerialMerge is the end-to-end determinism
// property of the PDES engine: a partitioned mesh run in parallel must
// be indistinguishable — ops, latency percentiles, event counts, and
// invariant fingerprints — from the same partitioned mesh executed one
// window at a time on a single goroutine.
func TestMeshParallelMatchesSerialMerge(t *testing.T) {
	base := Config{Nodes: 12, Partitions: 4, Seed: 7, Check: true}
	for _, seed := range []uint64{7, 1234} {
		cfg := base
		cfg.Seed = seed
		cfg.Workers = 1
		serial := Run(cfg)
		cfg.Workers = 4
		parallel := Run(cfg)

		// Wall varies run to run and Workers is the knob under test;
		// every other field must match bit for bit.
		serial.Wall, parallel.Wall = 0, 0
		serial.Workers, parallel.Workers = 0, 0
		if serial != parallel {
			t.Fatalf("seed %d: parallel diverged from serial merge:\n  serial:   %+v\n  parallel: %+v",
				seed, serial, parallel)
		}
		if serial.Ops == 0 || serial.Crossed == 0 {
			t.Fatalf("seed %d: degenerate run: %+v", seed, serial)
		}
		if serial.Violations != 0 {
			t.Fatalf("seed %d: %d ledgers reported violations", seed, serial.Violations)
		}
	}
}

// TestMeshSinglePartitionRuns: Partitions=1 (the classic engine) also
// works and produces traffic — the degenerate case every classic
// experiment relies on under -pdes.
func TestMeshSinglePartitionRuns(t *testing.T) {
	s := Run(Config{Nodes: 4, Partitions: 1, Seed: 3, Check: true})
	if s.Ops == 0 || s.Violations != 0 {
		t.Fatalf("classic mesh degenerate: %+v", s)
	}
	if s.Rounds != 0 || s.Crossed != 0 {
		t.Fatalf("classic mesh should not report PDES sync state: %+v", s)
	}
}

// TestMeshZipfSkew: the hot server must see disproportionate traffic —
// the workload shape the PDES scheduler has to survive.
func TestMeshZipfSkew(t *testing.T) {
	s := Run(Config{Nodes: 8, Partitions: 2, Seed: 1})
	if s.Sent < s.Ops {
		t.Fatalf("received %d more than sent %d", s.Ops, s.Sent)
	}
	if s.P99us < s.P50us || s.P50us <= 0 {
		t.Fatalf("latency percentiles degenerate: p50=%v p99=%v", s.P50us, s.P99us)
	}
}
