// Package microbench implements the representative in-network offloaded
// workloads of Table 3 as real, testable data structures: a count-min
// sketch flow monitor, a key-value cache, a top ranker, a leaky-bucket
// rate limiter, an LPM trie router, a Maglev load balancer, a pFabric
// packet scheduler over a BST, a naive Bayes flow classifier, and chain
// replication. The firewall TCAM lives in internal/apps/nf.
//
// Each workload pairs its functional implementation with the Table 3
// microarchitectural profile, so the Table 3 bench regenerates the
// paper's rows and the scheduler experiments get realistic cost mixes.
package microbench

import (
	"encoding/binary"
	"hash/fnv"

	"repro/internal/actor"
	"repro/internal/sim"
	"repro/internal/spec"
)

// Workload is one Table 3 row: real work plus its cost profile.
type Workload interface {
	// Name matches the spec.Workloads row.
	Name() string
	// Process handles one request payload, returning an opaque result
	// (tests inspect it) — the real computation happens here.
	Process(pkt []byte) uint64
}

// Actor wraps a workload as an iPipe actor charging the Table 3 profile
// scaled by request size.
func Actor(id actor.ID, w Workload) *actor.Actor {
	prof, ok := spec.WorkloadByName(w.Name())
	if !ok {
		panic("microbench: no Table 3 profile for " + w.Name())
	}
	a := &actor.Actor{
		ID:       id,
		Name:     w.Name(),
		MemBound: prof.MemBoundFraction(),
	}
	a.OnMessage = func(ctx actor.Ctx, m actor.Msg) sim.Time {
		w.Process(m.Data)
		if m.Reply != nil {
			resp := m
			resp.Data = []byte{1}
			ctx.Reply(resp)
		}
		scale := float64(len(m.Data)) / 1024.0
		if scale < 0.1 {
			scale = 0.1
		}
		return sim.Time(float64(prof.ExecLat1KB) * scale)
	}
	return a
}

// --- Flow monitor: count-min sketch (2-D array) -----------------------

// CountMin is a count-min sketch over d rows of w counters.
type CountMin struct {
	d, w  int
	cells []uint32
}

// NewCountMin builds a sketch; d rows, w counters per row.
func NewCountMin(d, w int) *CountMin {
	if d <= 0 || w <= 0 {
		panic("microbench: sketch dims must be positive")
	}
	return &CountMin{d: d, w: w, cells: make([]uint32, d*w)}
}

func (c *CountMin) hash(row int, key []byte) int {
	h := fnv.New64a()
	var seed [4]byte
	binary.LittleEndian.PutUint32(seed[:], uint32(row)*0x9e3779b9+1)
	h.Write(seed[:])
	h.Write(key)
	return int(h.Sum64() % uint64(c.w))
}

// Add counts one occurrence of key.
func (c *CountMin) Add(key []byte) {
	for r := 0; r < c.d; r++ {
		c.cells[r*c.w+c.hash(r, key)]++
	}
}

// Estimate returns the (over-)estimate of key's count.
func (c *CountMin) Estimate(key []byte) uint32 {
	est := ^uint32(0)
	for r := 0; r < c.d; r++ {
		v := c.cells[r*c.w+c.hash(r, key)]
		if v < est {
			est = v
		}
	}
	return est
}

// Name implements Workload.
func (c *CountMin) Name() string { return "Flow monitor" }

// Process implements Workload: count the flow key (first 13 bytes).
func (c *CountMin) Process(pkt []byte) uint64 {
	k := pkt
	if len(k) > 13 {
		k = k[:13]
	}
	c.Add(k)
	return uint64(c.Estimate(k))
}

// --- KV cache: hashtable ----------------------------------------------

// KVCache is a bounded hash-map cache with FIFO-ish eviction (the
// paper's KV cache serves read/write/delete against a hashtable).
type KVCache struct {
	m     map[string][]byte
	order []string
	cap   int
	Hits  uint64
	Miss  uint64
}

// NewKVCache bounds the cache at capn entries.
func NewKVCache(capn int) *KVCache {
	return &KVCache{m: map[string][]byte{}, cap: capn}
}

// Put stores a value, evicting the oldest entry when full.
func (k *KVCache) Put(key string, val []byte) {
	if _, ok := k.m[key]; !ok {
		if len(k.m) >= k.cap && len(k.order) > 0 {
			old := k.order[0]
			k.order = k.order[1:]
			delete(k.m, old)
		}
		k.order = append(k.order, key)
	}
	k.m[key] = val
}

// Get fetches a value.
func (k *KVCache) Get(key string) ([]byte, bool) {
	v, ok := k.m[key]
	if ok {
		k.Hits++
	} else {
		k.Miss++
	}
	return v, ok
}

// Del removes a key.
func (k *KVCache) Del(key string) { delete(k.m, key) }

// Len reports entries.
func (k *KVCache) Len() int { return len(k.m) }

// Name implements Workload.
func (k *KVCache) Name() string { return "KV cache" }

// Process implements Workload: op byte + 8B key (+ value for puts).
func (k *KVCache) Process(pkt []byte) uint64 {
	if len(pkt) < 9 {
		return 0
	}
	key := string(pkt[1:9])
	switch pkt[0] {
	case 1: // get
		if _, ok := k.Get(key); ok {
			return 1
		}
	case 2: // put
		k.Put(key, append([]byte(nil), pkt[9:]...))
		return 1
	case 3:
		k.Del(key)
		return 1
	}
	return 0
}

// --- Top ranker: quicksort over a 1-D array ---------------------------

// TopRanker keeps the top-n values seen.
type TopRanker struct {
	n    int
	vals []uint32
}

// NewTopRanker keeps the n largest values.
func NewTopRanker(n int) *TopRanker { return &TopRanker{n: n} }

// Offer adds values and re-ranks (quicksort, as in the paper).
func (t *TopRanker) Offer(vs ...uint32) {
	t.vals = append(t.vals, vs...)
	quicksortDesc(t.vals)
	if len(t.vals) > 4*t.n {
		t.vals = t.vals[:t.n]
	}
}

// Top returns the current top-n (descending).
func (t *TopRanker) Top() []uint32 {
	if len(t.vals) > t.n {
		return t.vals[:t.n]
	}
	return t.vals
}

func quicksortDesc(a []uint32) {
	if len(a) < 2 {
		return
	}
	pivot := a[len(a)/2]
	l, r := 0, len(a)-1
	for l <= r {
		for a[l] > pivot {
			l++
		}
		for a[r] < pivot {
			r--
		}
		if l <= r {
			a[l], a[r] = a[r], a[l]
			l++
			r--
		}
	}
	quicksortDesc(a[:r+1])
	quicksortDesc(a[l:])
}

// Name implements Workload.
func (t *TopRanker) Name() string { return "Top ranker" }

// Process implements Workload: payload is a vector of uint32s.
func (t *TopRanker) Process(pkt []byte) uint64 {
	var vs []uint32
	for len(pkt) >= 4 {
		vs = append(vs, binary.LittleEndian.Uint32(pkt))
		pkt = pkt[4:]
	}
	t.Offer(vs...)
	top := t.Top()
	if len(top) == 0 {
		return 0
	}
	return uint64(top[0])
}

// --- Rate limiter: leaky bucket (FIFO) ---------------------------------

// LeakyBucket is a classic leaky-bucket rate limiter: a queue drained
// at a fixed rate with bounded depth.
type LeakyBucket struct {
	// RatePerSec drains this many units per second; Burst bounds depth.
	RatePerSec float64
	Burst      float64

	level   float64
	last    sim.Time
	Dropped uint64
	Passed  uint64
}

// NewLeakyBucket builds a limiter.
func NewLeakyBucket(rate, burst float64) *LeakyBucket {
	return &LeakyBucket{RatePerSec: rate, Burst: burst}
}

// Allow asks to admit `units` at virtual time now.
func (l *LeakyBucket) Allow(now sim.Time, units float64) bool {
	elapsed := (now - l.last).Seconds()
	l.last = now
	l.level -= elapsed * l.RatePerSec
	if l.level < 0 {
		l.level = 0
	}
	if l.level+units > l.Burst {
		l.Dropped++
		return false
	}
	l.level += units
	l.Passed++
	return true
}

// Name implements Workload.
func (l *LeakyBucket) Name() string { return "Rate limiter" }

// Process implements Workload (time advances one µs per call in the
// standalone benchmark harness).
func (l *LeakyBucket) Process(pkt []byte) uint64 {
	l.last += 0 // time must be supplied via Allow in real use
	if l.Allow(l.last+sim.Microsecond, float64(len(pkt))) {
		return 1
	}
	return 0
}
