package microbench

import (
	"encoding/binary"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/actor"
	"repro/internal/sim"
	"repro/internal/spec"
)

func TestCountMinNeverUndercounts(t *testing.T) {
	c := NewCountMin(4, 1024)
	truth := map[string]uint32{}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("flow-%d", i%200)
		c.Add([]byte(k))
		truth[k]++
	}
	for k, want := range truth {
		if got := c.Estimate([]byte(k)); got < want {
			t.Fatalf("sketch undercounted %s: %d < %d", k, got, want)
		}
	}
}

func TestCountMinAccurateWhenSparse(t *testing.T) {
	c := NewCountMin(4, 4096)
	for i := 0; i < 100; i++ {
		c.Add([]byte("solo"))
	}
	if got := c.Estimate([]byte("solo")); got != 100 {
		t.Fatalf("sparse estimate %d, want exactly 100", got)
	}
	if got := c.Estimate([]byte("never")); got != 0 {
		t.Fatalf("unseen key estimate %d", got)
	}
}

func TestCountMinDimsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCountMin(0, 10)
}

func TestKVCacheEviction(t *testing.T) {
	k := NewKVCache(3)
	for i := 0; i < 5; i++ {
		k.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if k.Len() != 3 {
		t.Fatalf("Len = %d, want capped at 3", k.Len())
	}
	if _, ok := k.Get("k0"); ok {
		t.Fatal("oldest entry not evicted")
	}
	if v, ok := k.Get("k4"); !ok || v[0] != 4 {
		t.Fatal("newest entry lost")
	}
	if k.Hits != 1 || k.Miss != 1 {
		t.Fatalf("hit/miss accounting: %d/%d", k.Hits, k.Miss)
	}
	k.Del("k4")
	if _, ok := k.Get("k4"); ok {
		t.Fatal("delete ineffective")
	}
}

func TestKVCacheOverwriteDoesNotGrow(t *testing.T) {
	k := NewKVCache(2)
	k.Put("a", []byte{1})
	k.Put("a", []byte{2})
	if k.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", k.Len())
	}
	if v, _ := k.Get("a"); v[0] != 2 {
		t.Fatal("overwrite lost")
	}
}

func TestQuicksortDescProperty(t *testing.T) {
	f := func(vs []uint32) bool {
		a := append([]uint32(nil), vs...)
		quicksortDesc(a)
		ref := append([]uint32(nil), vs...)
		sort.Slice(ref, func(i, j int) bool { return ref[i] > ref[j] })
		if len(a) != len(ref) {
			return false
		}
		for i := range a {
			if a[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopRanker(t *testing.T) {
	r := NewTopRanker(3)
	r.Offer(5, 1, 9)
	r.Offer(7, 2)
	top := r.Top()
	want := []uint32{9, 7, 5}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("Top = %v, want %v", top, want)
		}
	}
}

func TestLeakyBucket(t *testing.T) {
	l := NewLeakyBucket(1000, 100) // 1000 units/s, burst 100
	if !l.Allow(0, 100) {
		t.Fatal("burst rejected")
	}
	if l.Allow(0, 1) {
		t.Fatal("over-burst admitted")
	}
	// After 50ms, 50 units drained.
	if !l.Allow(50*sim.Millisecond, 50) {
		t.Fatal("drained capacity rejected")
	}
	if l.Allow(50*sim.Millisecond, 1) {
		t.Fatal("bucket should be full again")
	}
	if l.Passed != 2 || l.Dropped != 2 {
		t.Fatalf("accounting: %d/%d", l.Passed, l.Dropped)
	}
}

func TestLPMTrieLongestMatch(t *testing.T) {
	tr := NewLPMTrie()
	tr.Insert(0x0a000000, 8, 1)  // 10/8 → 1
	tr.Insert(0x0a010000, 16, 2) // 10.1/16 → 2
	tr.Insert(0x0a010100, 24, 3) // 10.1.1/24 → 3
	cases := map[uint32]uint32{
		0x0a000001: 1,
		0x0a010001: 2,
		0x0a010101: 3,
		0x0a020001: 1,
	}
	for addr, want := range cases {
		hop, ok := tr.Lookup(addr)
		if !ok || hop != want {
			t.Fatalf("Lookup(%08x) = %d %v, want %d", addr, hop, ok, want)
		}
	}
	if _, ok := tr.Lookup(0x0b000000); ok {
		t.Fatal("no-route lookup matched")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestLPMDefaultRoute(t *testing.T) {
	tr := NewLPMTrie()
	tr.Insert(0, 0, 99) // default route
	hop, ok := tr.Lookup(0xdeadbeef)
	if !ok || hop != 99 {
		t.Fatal("default route broken")
	}
}

func TestMaglevBalanceAndConsistency(t *testing.T) {
	backends := []string{"b0", "b1", "b2", "b3", "b4"}
	m := NewMaglev(backends, 1021)
	spread := m.Spread()
	if len(spread) != 5 {
		t.Fatalf("backends used: %d", len(spread))
	}
	// Maglev guarantees near-perfect balance: within a few percent.
	min, max := 1<<30, 0
	for _, n := range spread {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if float64(max-min) > 0.05*float64(max) {
		t.Fatalf("imbalance: min=%d max=%d", min, max)
	}
	// Stable: same flow → same backend.
	b1, _ := m.Pick(12345)
	b2, _ := m.Pick(12345)
	if b1 != b2 {
		t.Fatal("unstable pick")
	}
}

func TestMaglevMinimalDisruption(t *testing.T) {
	all := []string{"b0", "b1", "b2", "b3"}
	before := NewMaglev(all, 1021)
	after := NewMaglev(all[:3], 1021) // b3 removed
	moved := 0
	for flow := uint64(0); flow < 2000; flow++ {
		a, _ := before.Pick(flow)
		b, _ := after.Pick(flow)
		if a != "b3" && a != b {
			moved++
		}
	}
	// Consistent hashing: only a small fraction of surviving-backend
	// flows move.
	if moved > 400 {
		t.Fatalf("%d of ~1500 surviving flows moved", moved)
	}
}

func TestMaglevEmptyBackends(t *testing.T) {
	m := NewMaglev(nil, 97)
	if _, ok := m.Pick(1); ok {
		t.Fatal("empty pool returned a backend")
	}
}

func TestPFabricSRPTOrder(t *testing.T) {
	p := NewPFabric()
	p.Enqueue(300, 3)
	p.Enqueue(100, 1)
	p.Enqueue(200, 2)
	p.Enqueue(100, 11) // same priority FIFO
	want := []uint64{1, 11, 2, 3}
	for i, w := range want {
		v, ok := p.Dequeue()
		if !ok || v != w {
			t.Fatalf("dequeue %d = %d %v, want %d", i, v, ok, w)
		}
	}
	if _, ok := p.Dequeue(); ok {
		t.Fatal("empty dequeue succeeded")
	}
}

func TestPFabricLen(t *testing.T) {
	p := NewPFabric()
	for i := uint32(0); i < 50; i++ {
		p.Enqueue(i%5, uint64(i))
	}
	if p.Len() != 50 {
		t.Fatalf("Len = %d", p.Len())
	}
	for i := 0; i < 50; i++ {
		p.Dequeue()
	}
	if p.Len() != 0 {
		t.Fatalf("Len after drain = %d", p.Len())
	}
}

func TestBayesLearnsSeparableClasses(t *testing.T) {
	b := NewBayes(2, 4, 16)
	// Class 0: low feature values; class 1: high.
	for i := 0; i < 500; i++ {
		b.Train(0, []int{i % 4, i % 3, i % 5, i % 2})
		b.Train(1, []int{10 + i%4, 11 + i%3, 12 + i%2, 13 + i%3})
	}
	if got := b.Classify([]int{1, 2, 3, 1}); got != 0 {
		t.Fatalf("low features classified as %d", got)
	}
	if got := b.Classify([]int{12, 12, 13, 14}); got != 1 {
		t.Fatalf("high features classified as %d", got)
	}
}

func TestChainRep(t *testing.T) {
	c := NewChainRep([]string{"head", "mid", "tail"})
	if tail := c.Replicate([]byte("pkt")); tail != 2 {
		t.Fatalf("commit at %d", tail)
	}
	for i, n := range c.Acked {
		if n != 1 {
			t.Fatalf("replica %d acked %d", i, n)
		}
	}
}

func TestAllWorkloadsHaveProfiles(t *testing.T) {
	ws := []Workload{
		NewCountMin(4, 64), NewKVCache(16), NewTopRanker(4),
		NewLeakyBucket(1e6, 1e4), NewLPMTrie(),
		NewMaglev([]string{"a", "b"}, 97), NewPFabric(),
		NewBayes(2, 4, 8), NewChainRep([]string{"a"}),
	}
	for _, w := range ws {
		if _, ok := spec.WorkloadByName(w.Name()); !ok {
			t.Errorf("workload %q has no Table 3 profile", w.Name())
		}
		// Process must be safe on arbitrary small payloads.
		w.Process([]byte{1, 2, 3})
		w.Process(nil)
		w.Process(make([]byte, 64))
	}
}

func TestWorkloadActorChargesProfile(t *testing.T) {
	a := Actor(1, NewCountMin(4, 64))
	prof, _ := spec.WorkloadByName("Flow monitor")
	cost := a.OnMessage(nopCtx{}, actor.Msg{Data: make([]byte, 1024)})
	if cost != prof.ExecLat1KB {
		t.Fatalf("1KB cost %v, want Table 3's %v", cost, prof.ExecLat1KB)
	}
	small := a.OnMessage(nopCtx{}, actor.Msg{Data: make([]byte, 16)})
	if small >= cost {
		t.Fatal("small requests should cost less")
	}
}

func TestWorkloadActorUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unprofiled workload")
		}
	}()
	Actor(1, bogusWorkload{})
}

type bogusWorkload struct{}

func (bogusWorkload) Name() string              { return "Nope" }
func (bogusWorkload) Process(pkt []byte) uint64 { return 0 }

type nopCtx struct{}

func (nopCtx) Now() sim.Time                                         { return 0 }
func (nopCtx) Self() actor.ID                                        { return 0 }
func (nopCtx) Send(dst actor.ID, m actor.Msg)                        {}
func (nopCtx) Reply(m actor.Msg)                                     {}
func (nopCtx) Alloc(size int) (uint64, error)                        { return 1, nil }
func (nopCtx) Free(obj uint64) error                                 { return nil }
func (nopCtx) ObjRead(o uint64, off, n int) ([]byte, error)          { return make([]byte, n), nil }
func (nopCtx) ObjWrite(o uint64, off int, p []byte) error            { return nil }
func (nopCtx) ObjMigrate(o uint64) (int, error)                      { return 0, nil }
func (nopCtx) ObjMemset(o uint64, off, n int, b byte) error          { return nil }
func (nopCtx) ObjMemcpy(d uint64, do int, s uint64, so, n int) error { return nil }
func (nopCtx) ObjMemmove(o uint64, do, so, n int) error              { return nil }
func (nopCtx) Accel(name string, b, bs int) (sim.Time, bool)         { return 0, false }
func (nopCtx) OnNIC() bool                                           { return true }

func binaryPut(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}

func TestTopRankerProcess(t *testing.T) {
	r := NewTopRanker(2)
	payload := append(binaryPut(5), append(binaryPut(50), binaryPut(10)...)...)
	if got := r.Process(payload); got != 50 {
		t.Fatalf("Process = %d", got)
	}
}
