package microbench

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// --- Router: longest-prefix-match trie ---------------------------------

// LPMTrie is a binary trie over IPv4 prefixes (the paper's Router row).
type LPMTrie struct {
	root *trieNode
	n    int
}

type trieNode struct {
	child   [2]*trieNode
	hasHop  bool
	nextHop uint32
}

// NewLPMTrie returns an empty routing table.
func NewLPMTrie() *LPMTrie { return &LPMTrie{root: &trieNode{}} }

// Insert installs a prefix of the given length with a next hop.
func (t *LPMTrie) Insert(prefix uint32, length int, nextHop uint32) {
	n := t.root
	for i := 0; i < length; i++ {
		b := (prefix >> (31 - i)) & 1
		if n.child[b] == nil {
			n.child[b] = &trieNode{}
		}
		n = n.child[b]
	}
	if !n.hasHop {
		t.n++
	}
	n.hasHop = true
	n.nextHop = nextHop
}

// Lookup returns the longest-prefix-match next hop.
func (t *LPMTrie) Lookup(addr uint32) (uint32, bool) {
	n := t.root
	var best uint32
	found := false
	for i := 0; i < 32 && n != nil; i++ {
		if n.hasHop {
			best, found = n.nextHop, true
		}
		b := (addr >> (31 - i)) & 1
		n = n.child[b]
	}
	if n != nil && n.hasHop {
		best, found = n.nextHop, true
	}
	return best, found
}

// Len reports installed prefixes.
func (t *LPMTrie) Len() int { return t.n }

// Name implements Workload.
func (t *LPMTrie) Name() string { return "Router" }

// Process implements Workload: route the destination IP at offset 4.
func (t *LPMTrie) Process(pkt []byte) uint64 {
	if len(pkt) < 8 {
		return 0
	}
	hop, ok := t.Lookup(binary.LittleEndian.Uint32(pkt[4:]))
	if !ok {
		return 0
	}
	return uint64(hop)
}

// --- Load balancer: Maglev hashing --------------------------------------

// Maglev implements Google's Maglev consistent-hashing lookup table
// (the paper's Load balancer row, over a permutation table).
type Maglev struct {
	backends []string
	table    []int
	m        int
}

// NewMaglev builds the permutation-filled lookup table. tableSize
// should be a prime larger than backends (Maglev uses 65537; tests use
// smaller primes).
func NewMaglev(backends []string, tableSize int) *Maglev {
	mg := &Maglev{backends: backends, m: tableSize}
	if len(backends) == 0 {
		mg.table = make([]int, tableSize)
		for i := range mg.table {
			mg.table[i] = -1
		}
		return mg
	}
	offset := make([]int, len(backends))
	skip := make([]int, len(backends))
	for i, b := range backends {
		h1 := fnv.New64a()
		h1.Write([]byte(b))
		offset[i] = int(h1.Sum64() % uint64(tableSize))
		h2 := fnv.New64()
		h2.Write([]byte(b))
		skip[i] = int(h2.Sum64()%uint64(tableSize-1)) + 1
	}
	next := make([]int, len(backends))
	table := make([]int, tableSize)
	for i := range table {
		table[i] = -1
	}
	filled := 0
	for filled < tableSize {
		for i := range backends {
			c := (offset[i] + next[i]*skip[i]) % tableSize
			for table[c] >= 0 {
				next[i]++
				c = (offset[i] + next[i]*skip[i]) % tableSize
			}
			table[c] = i
			next[i]++
			filled++
			if filled == tableSize {
				break
			}
		}
	}
	mg.table = table
	return mg
}

// Pick maps a flow hash to a backend.
func (m *Maglev) Pick(flow uint64) (string, bool) {
	i := m.table[flow%uint64(m.m)]
	if i < 0 {
		return "", false
	}
	return m.backends[i], true
}

// Spread returns per-backend shares of the table (for balance checks).
func (m *Maglev) Spread() map[string]int {
	out := map[string]int{}
	for _, i := range m.table {
		if i >= 0 {
			out[m.backends[i]]++
		}
	}
	return out
}

// Name implements Workload.
func (m *Maglev) Name() string { return "Load balancer" }

// Process implements Workload: pick a backend for the flow hash.
func (m *Maglev) Process(pkt []byte) uint64 {
	h := fnv.New64a()
	if len(pkt) > 13 {
		pkt = pkt[:13]
	}
	h.Write(pkt)
	if _, ok := m.Pick(h.Sum64()); ok {
		return 1
	}
	return 0
}

// --- Packet scheduler: pFabric over a BST --------------------------------

// PFabric schedules packets by smallest remaining flow size using an
// unbalanced BST keyed on priority (remaining bytes), as the paper's
// Packet scheduler row (BST tree, low IPC / high MPKI).
type PFabric struct {
	root *pfNode
	size int
}

type pfNode struct {
	prio        uint32
	left, right *pfNode
	pkts        []uint64
}

// NewPFabric returns an empty scheduler.
func NewPFabric() *PFabric { return &PFabric{} }

// Enqueue inserts a packet with the flow's remaining size as priority.
func (p *PFabric) Enqueue(prio uint32, pkt uint64) {
	p.size++
	n := &p.root
	for *n != nil {
		if prio < (*n).prio {
			n = &(*n).left
		} else if prio > (*n).prio {
			n = &(*n).right
		} else {
			(*n).pkts = append((*n).pkts, pkt)
			return
		}
	}
	*n = &pfNode{prio: prio, pkts: []uint64{pkt}}
}

// Dequeue removes the packet with the smallest priority (SRPT).
func (p *PFabric) Dequeue() (uint64, bool) {
	if p.root == nil {
		return 0, false
	}
	parent := &p.root
	n := p.root
	for n.left != nil {
		parent = &n.left
		n = n.left
	}
	pkt := n.pkts[0]
	n.pkts = n.pkts[1:]
	p.size--
	if len(n.pkts) == 0 {
		*parent = n.right
	}
	return pkt, true
}

// Len reports queued packets.
func (p *PFabric) Len() int { return p.size }

// Name implements Workload.
func (p *PFabric) Name() string { return "Packet scheduler" }

// Process implements Workload: enqueue then dequeue one packet.
func (p *PFabric) Process(pkt []byte) uint64 {
	prio := uint32(len(pkt))
	if len(pkt) >= 4 {
		prio = binary.LittleEndian.Uint32(pkt)
	}
	p.Enqueue(prio, uint64(prio))
	v, _ := p.Dequeue()
	return v
}

// --- Flow classifier: naive Bayes ----------------------------------------

// Bayes is a naive Bayes classifier over discretized packet features
// (the paper's Flow classifier row cites a naive Bayes service
// classifier; 2-D probability array, heavily memory-bound).
type Bayes struct {
	classes  int
	features int
	bins     int
	// counts[c][f*bins+b] with Laplace smoothing.
	counts [][]float64
	prior  []float64
	total  float64
}

// NewBayes builds a classifier with the given dimensions.
func NewBayes(classes, features, bins int) *Bayes {
	b := &Bayes{classes: classes, features: features, bins: bins}
	b.counts = make([][]float64, classes)
	for c := range b.counts {
		b.counts[c] = make([]float64, features*bins)
	}
	b.prior = make([]float64, classes)
	return b
}

// Train adds one observation.
func (b *Bayes) Train(class int, features []int) {
	b.prior[class]++
	b.total++
	for f, v := range features {
		if f >= b.features {
			break
		}
		b.counts[class][f*b.bins+v%b.bins]++
	}
}

// Classify returns the most probable class.
func (b *Bayes) Classify(features []int) int {
	best, bestLL := 0, math.Inf(-1)
	for c := 0; c < b.classes; c++ {
		ll := math.Log((b.prior[c] + 1) / (b.total + float64(b.classes)))
		for f, v := range features {
			if f >= b.features {
				break
			}
			cnt := b.counts[c][f*b.bins+v%b.bins]
			ll += math.Log((cnt + 1) / (b.prior[c] + float64(b.bins)))
		}
		if ll > bestLL {
			best, bestLL = c, ll
		}
	}
	return best
}

// Name implements Workload.
func (b *Bayes) Name() string { return "Flow classifier" }

// Process implements Workload: classify byte-features of the packet.
func (b *Bayes) Process(pkt []byte) uint64 {
	feats := make([]int, 0, b.features)
	for i := 0; i < len(pkt) && len(feats) < b.features; i += 8 {
		feats = append(feats, int(pkt[i]))
	}
	return uint64(b.Classify(feats))
}

// --- Packet replication: chain replication --------------------------------

// ChainRep forwards writes down a chain of replicas (linked list); the
// paper's Packet replication row.
type ChainRep struct {
	chain []string
	// Acked[i] counts packets acknowledged by replica i.
	Acked []uint64
}

// NewChainRep builds a chain.
func NewChainRep(replicas []string) *ChainRep {
	return &ChainRep{chain: replicas, Acked: make([]uint64, len(replicas))}
}

// Replicate walks the chain head→tail and returns the tail's index
// (the commit point in chain replication).
func (c *ChainRep) Replicate(pkt []byte) int {
	for i := range c.chain {
		c.Acked[i]++
	}
	return len(c.chain) - 1
}

// Name implements Workload.
func (c *ChainRep) Name() string { return "Packet replication" }

// Process implements Workload.
func (c *ChainRep) Process(pkt []byte) uint64 {
	return uint64(c.Replicate(pkt))
}
