// Package msgring implements iPipe's host↔NIC communication channels
// (§3.5): per-channel pairs of unidirectional circular buffers resident
// in host memory. NIC cores write messages into the receive ring with
// batched non-blocking DMA writes (scatter-gather aggregated, I6); a
// host core polls it. The send ring works in reverse: the host writes
// locally and the NIC fetches with DMA reads.
//
// Two fidelity details from the paper are reproduced functionally:
//
//   - Lazy header-pointer synchronization: the consumer tells the
//     producer how far it has read only after consuming half the ring,
//     with a dedicated credit message (borrowed from FaRM).
//   - A 4-byte checksum in each message header guards against a DMA
//     engine writing message bytes non-monotonically; consumers verify
//     it and ignore slots whose checksum does not match.
package msgring

import (
	"errors"
	"hash/crc32"

	"repro/internal/invariant"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// HeaderBytes is the wire size of a message header: kind, source,
// destination actor IDs, length, and the 4B checksum.
const HeaderBytes = 16

// ErrRingFull is returned when the producer has no free slot; callers
// back off and retry, which is the backpressure mechanism.
var ErrRingFull = errors.New("msgring: ring full")

// Message is one entry in a ring.
type Message struct {
	Kind     uint16
	SrcActor uint32
	DstActor uint32
	Data     []byte
	// App is an opaque handle to the staged application message; it is
	// runtime-local context (the real system passes a packet-buffer
	// pointer alongside the ring entry), so only Data counts toward the
	// wire size and checksum.
	App any
	// EnqueuedAt is stamped by Push for latency accounting.
	EnqueuedAt sim.Time

	checksum uint32
	ready    bool
}

// WireSize is the message's size on PCIe.
func (m *Message) WireSize() int { return HeaderBytes + len(m.Data) }

func (m *Message) seal()        { m.checksum = crc32.ChecksumIEEE(m.Data) }
func (m *Message) intact() bool { return m.checksum == crc32.ChecksumIEEE(m.Data) }

// Ring is one unidirectional circular buffer. The producer's free-space
// view (credits) lags the consumer's true position until the consumer
// syncs, exactly as with lazy header updates.
type Ring struct {
	slots []Message
	mask  int
	head  int // consumer position
	tail  int // producer position
	// creditHead is the consumer position as last synced to the producer.
	creditHead int
	consumed   int // messages consumed since last credit sync

	// Pushed/Popped/CreditSyncs/ChecksumDrops count events for tests and
	// the framework-overhead experiment (Figure 17).
	Pushed        uint64
	Popped        uint64
	CreditSyncs   uint64
	ChecksumDrops uint64

	// chk/chkLabel: the invariant checker re-validates the pointer and
	// credit relations after every operation (nil = disabled).
	chk      *invariant.Checker
	chkLabel string
}

// NewRing creates a ring with the given power-of-two capacity.
func NewRing(capacity int) *Ring {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("msgring: capacity must be a positive power of two")
	}
	return &Ring{slots: make([]Message, capacity), mask: capacity - 1}
}

// Cap returns the ring capacity in slots.
func (r *Ring) Cap() int { return len(r.slots) }

// EnableInvariants attaches the credit-conservation checker under the
// given label.
func (r *Ring) EnableInvariants(chk *invariant.Checker, label string) {
	if chk == nil || r.chk != nil {
		return
	}
	r.chk = chk
	r.chkLabel = label
}

// check re-validates the pointer/credit relations; nil-checker safe.
func (r *Ring) check() {
	r.chk.RingOp(r.chkLabel, r.head, r.tail, r.creditHead, r.consumed, len(r.slots))
}

// freeFromProducer is the producer's (possibly stale) view of free slots.
func (r *Ring) freeFromProducer() int {
	used := r.tail - r.creditHead
	return len(r.slots) - used
}

// Len returns the number of occupied slots (true view).
func (r *Ring) Len() int { return r.tail - r.head }

// push reserves a slot. The message only becomes visible to the
// consumer once markReady runs (when the modeled DMA write completes).
func (r *Ring) push(m Message) (int, error) {
	if r.freeFromProducer() <= 0 {
		return 0, ErrRingFull
	}
	idx := r.tail & r.mask
	m.seal()
	r.slots[idx] = m
	r.tail++
	r.Pushed++
	r.check()
	return idx, nil
}

func (r *Ring) markReady(idx int) { r.slots[idx].ready = true }

// pop returns the next ready message. A slot that is occupied but not
// yet ready (DMA still in flight, or checksum mismatch) blocks the
// consumer, preserving FIFO order.
func (r *Ring) pop() (Message, bool) {
	if r.head == r.tail {
		return Message{}, false
	}
	idx := r.head & r.mask
	s := &r.slots[idx]
	if !s.ready {
		return Message{}, false
	}
	if !s.intact() {
		// Partial DMA write detected: leave the slot for the engine to
		// finish; the consumer polls again later. Counted so tests can
		// observe the defense firing.
		r.ChecksumDrops++
		return Message{}, false
	}
	m := *s
	s.ready = false
	s.Data = nil
	s.App = nil
	r.head++
	r.Popped++
	r.consumed++
	r.check()
	return m, true
}

// needsCreditSync reports whether the consumer has read half the ring
// since the last sync. The consumed > 0 guard matters for tiny rings:
// with capacity 1, len/2 is 0 and an unguarded comparison fires a
// credit message (and its 40ns doorbell cost) on every poll, including
// empty ones that consumed nothing.
func (r *Ring) needsCreditSync() bool {
	return r.consumed > 0 && r.consumed >= len(r.slots)/2
}

// syncCredits publishes the consumer position to the producer.
func (r *Ring) syncCredits() {
	r.creditHead = r.head
	r.consumed = 0
	r.CreditSyncs++
	r.check()
}

// Corrupt flips a byte in the queued message at logical offset i from
// the consumer head, simulating a non-monotonic DMA write. Test hook.
func (r *Ring) Corrupt(i int) {
	idx := (r.head + i) & r.mask
	if len(r.slots[idx].Data) > 0 {
		r.slots[idx].Data[0] ^= 0xff
	} else {
		r.slots[idx].checksum ^= 0xff
	}
}

// Channel is a bidirectional host↔NIC I/O channel: a NIC→host ring and
// a host→NIC ring sharing one DMA engine, as in the prototype (§3.5).
type Channel struct {
	eng *sim.Engine
	dma *pcie.Engine

	toHost *Ring
	toNIC  *Ring

	// BatchSize is how many NIC-side messages are aggregated into one
	// scatter-gather DMA write before flushing. 1 disables batching.
	BatchSize int
	pending   []int // slot indices awaiting flush
	pendingSz []int

	// creditCost tracks DMA bytes spent on credit messages.
	CreditMessages uint64

	// OnHostReady, if set, fires (once per completed flush) when new
	// NIC→host messages become pollable; the host runtime uses it to
	// drive its polling loop event-style.
	OnHostReady func()
	// OnNICReady fires when the host pushes a message for the NIC.
	OnNICReady func()
}

// DefaultRingSlots matches the prototype's modest per-channel rings.
const DefaultRingSlots = 256

// NewChannel builds a channel over the given DMA engine.
func NewChannel(eng *sim.Engine, dma *pcie.Engine, slots, batch int) *Channel {
	if batch <= 0 {
		batch = 1
	}
	return &Channel{
		eng: eng, dma: dma,
		toHost:    NewRing(slots),
		toNIC:     NewRing(slots),
		BatchSize: batch,
	}
}

// EnableInvariants attaches the checker to both rings; label prefixes
// the per-direction ring labels (typically the node name).
func (c *Channel) EnableInvariants(chk *invariant.Checker, label string) {
	c.toHost.EnableInvariants(chk, label+"/toHost")
	c.toNIC.EnableInvariants(chk, label+"/toNIC")
}

// ToHost exposes the NIC→host ring for inspection.
func (c *Channel) ToHost() *Ring { return c.toHost }

// ToNIC exposes the host→NIC ring for inspection.
func (c *Channel) ToNIC() *Ring { return c.toNIC }

// NICPush queues a message from the NIC to the host. It returns the
// NIC-core occupancy charged (command build + possibly a flush) or
// ErrRingFull when the producer is out of credits.
func (c *Channel) NICPush(m Message) (sim.Time, error) {
	m.EnqueuedAt = c.eng.Now()
	idx, err := c.toHost.push(m)
	if err != nil {
		return 0, err
	}
	c.pending = append(c.pending, idx)
	c.pendingSz = append(c.pendingSz, m.WireSize())
	cost := 50 * sim.Nanosecond // build header, stage descriptor
	if len(c.pending) >= c.BatchSize {
		cost += c.Flush()
	}
	return cost, nil
}

// Flush issues the aggregated DMA write for all pending NIC-side
// messages and returns the NIC-core occupancy.
func (c *Channel) Flush() sim.Time {
	if len(c.pending) == 0 {
		return 0
	}
	idxs := append([]int(nil), c.pending...)
	cost := c.dma.WriteGather(c.pendingSz, func() {
		for _, i := range idxs {
			c.toHost.markReady(i)
		}
		if c.OnHostReady != nil {
			c.OnHostReady()
		}
	})
	c.pending = c.pending[:0]
	c.pendingSz = c.pendingSz[:0]
	return cost
}

// HostPoll drains up to max ready messages on the host side. The host
// core cost is small (local DRAM reads); returned with the messages.
// Consuming past the half-ring mark triggers the lazy credit sync, a
// single 8B DMA-visible doorbell.
func (c *Channel) HostPoll(max int) ([]Message, sim.Time) {
	var out []Message
	var cost sim.Time
	for len(out) < max {
		m, ok := c.toHost.pop()
		if !ok {
			break
		}
		cost += 80 * sim.Nanosecond // header check + pointer chase
		out = append(out, m)
	}
	if c.toHost.needsCreditSync() {
		c.toHost.syncCredits()
		c.CreditMessages++
		cost += 40 * sim.Nanosecond // MMIO doorbell store
	}
	return out, cost
}

// HostPush queues a message from host to NIC. Host writes are local
// stores into the host-resident ring, so the message is immediately
// fetchable; the cost is a local copy.
func (c *Channel) HostPush(m Message) (sim.Time, error) {
	m.EnqueuedAt = c.eng.Now()
	idx, err := c.toNIC.push(m)
	if err != nil {
		return 0, err
	}
	c.toNIC.markReady(idx)
	if c.OnNICReady != nil {
		c.eng.Defer(c.OnNICReady)
	}
	return 60 * sim.Nanosecond, nil
}

// NICPoll fetches up to max messages from the host→NIC ring with one
// batched DMA read; done delivers them when the read lands. The return
// value is the NIC-core occupancy (non-blocking issue).
func (c *Channel) NICPoll(max int, done func([]Message)) sim.Time {
	var msgs []Message
	total := 0
	for len(msgs) < max {
		m, ok := c.toNIC.pop()
		if !ok {
			break
		}
		total += m.WireSize()
		msgs = append(msgs, m)
	}
	if c.toNIC.needsCreditSync() {
		c.toNIC.syncCredits()
		c.CreditMessages++
	}
	if len(msgs) == 0 {
		// An empty poll still costs a peek at the ring header.
		if done != nil {
			c.eng.Defer(func() { done(nil) })
		}
		return 30 * sim.Nanosecond
	}
	return c.dma.ReadAsync(total, func() {
		if done != nil {
			done(msgs)
		}
	})
}
