package msgring

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/spec"
)

func newChannel(slots, batch int) (*sim.Engine, *Channel) {
	eng := sim.NewEngine(1)
	dma := pcie.New(eng, spec.LiquidIOII_CN2350().DMA)
	return eng, NewChannel(eng, dma, slots, batch)
}

func TestNICToHostFIFO(t *testing.T) {
	eng, ch := newChannel(64, 1)
	for i := 0; i < 10; i++ {
		if _, err := ch.NICPush(Message{Kind: uint16(i), Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	msgs, _ := ch.HostPoll(100)
	if len(msgs) != 10 {
		t.Fatalf("polled %d, want 10", len(msgs))
	}
	for i, m := range msgs {
		if int(m.Kind) != i || m.Data[0] != byte(i) {
			t.Fatalf("out of order at %d: %+v", i, m)
		}
	}
}

func TestMessagesInvisibleUntilDMACompletes(t *testing.T) {
	eng, ch := newChannel(64, 1)
	ch.NICPush(Message{Kind: 1})
	// Before the engine runs, the DMA write has not landed.
	if msgs, _ := ch.HostPoll(10); len(msgs) != 0 {
		t.Fatal("message visible before DMA completion")
	}
	eng.Run()
	if msgs, _ := ch.HostPoll(10); len(msgs) != 1 {
		t.Fatal("message not visible after DMA completion")
	}
}

func TestBatchingFlushesAtBatchSize(t *testing.T) {
	eng, ch := newChannel(64, 4)
	for i := 0; i < 3; i++ {
		ch.NICPush(Message{Kind: uint16(i)})
	}
	eng.Run()
	if msgs, _ := ch.HostPoll(10); len(msgs) != 0 {
		t.Fatal("batch flushed early")
	}
	ch.NICPush(Message{Kind: 3}) // 4th triggers flush
	eng.Run()
	if msgs, _ := ch.HostPoll(10); len(msgs) != 4 {
		t.Fatalf("after flush polled %d, want 4", len(msgs))
	}
}

func TestExplicitFlush(t *testing.T) {
	eng, ch := newChannel(64, 16)
	ch.NICPush(Message{Kind: 9})
	ch.Flush()
	eng.Run()
	if msgs, _ := ch.HostPoll(10); len(msgs) != 1 {
		t.Fatal("explicit flush did not deliver")
	}
	// Flushing an empty channel is a no-op.
	if cost := ch.Flush(); cost != 0 {
		t.Fatalf("empty flush cost %v", cost)
	}
}

func TestRingFullBackpressure(t *testing.T) {
	_, ch := newChannel(8, 1)
	for i := 0; i < 8; i++ {
		if _, err := ch.NICPush(Message{}); err != nil {
			t.Fatalf("push %d failed: %v", i, err)
		}
	}
	if _, err := ch.NICPush(Message{}); err != ErrRingFull {
		t.Fatalf("9th push err = %v, want ErrRingFull", err)
	}
}

func TestLazyCreditSync(t *testing.T) {
	eng, ch := newChannel(8, 1)
	// Fill, drain fully, then push again: without credit sync the
	// producer would believe the ring is still full; with lazy sync at
	// half-ring it has fresh credits.
	for i := 0; i < 8; i++ {
		ch.NICPush(Message{})
	}
	eng.Run()
	msgs, _ := ch.HostPoll(8)
	if len(msgs) != 8 {
		t.Fatalf("drained %d", len(msgs))
	}
	if ch.ToHost().CreditSyncs == 0 {
		t.Fatal("no credit sync after draining a full ring")
	}
	if _, err := ch.NICPush(Message{}); err != nil {
		t.Fatalf("push after credit sync failed: %v", err)
	}
}

func TestCreditSyncIsLazyNotEager(t *testing.T) {
	eng, ch := newChannel(16, 1)
	for i := 0; i < 3; i++ {
		ch.NICPush(Message{})
	}
	eng.Run()
	ch.HostPoll(3) // below half ring (8): no sync yet
	if ch.ToHost().CreditSyncs != 0 {
		t.Fatal("credit sync fired below the half-ring threshold")
	}
}

func TestChecksumGuardsPartialWrites(t *testing.T) {
	eng, ch := newChannel(16, 1)
	ch.NICPush(Message{Data: []byte("payload")})
	eng.Run()
	ch.ToHost().Corrupt(0)
	msgs, _ := ch.HostPoll(10)
	if len(msgs) != 0 {
		t.Fatal("corrupted message was delivered")
	}
	if ch.ToHost().ChecksumDrops == 0 {
		t.Fatal("checksum defense did not fire")
	}
}

func TestHostToNICRoundTrip(t *testing.T) {
	eng, ch := newChannel(64, 1)
	for i := 0; i < 5; i++ {
		if _, err := ch.HostPush(Message{Kind: uint16(i), Data: []byte(fmt.Sprint(i))}); err != nil {
			t.Fatal(err)
		}
	}
	var got []Message
	ch.NICPoll(10, func(ms []Message) { got = ms })
	eng.Run()
	if len(got) != 5 {
		t.Fatalf("NIC polled %d, want 5", len(got))
	}
	for i, m := range got {
		if int(m.Kind) != i {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestNICPollEmptyStillCallsBack(t *testing.T) {
	eng, ch := newChannel(16, 1)
	called := false
	ch.NICPoll(4, func(ms []Message) {
		called = true
		if ms != nil {
			t.Errorf("expected nil batch, got %v", ms)
		}
	})
	eng.Run()
	if !called {
		t.Fatal("empty poll should still call back")
	}
}

func TestNICPushCostIncludesFlushAtBatchBoundary(t *testing.T) {
	_, ch := newChannel(64, 2)
	c1, _ := ch.NICPush(Message{})
	c2, _ := ch.NICPush(Message{}) // triggers flush
	if c2 <= c1 {
		t.Fatalf("flush-triggering push cost %v should exceed plain push %v", c2, c1)
	}
}

func TestRingCapacityValidation(t *testing.T) {
	for _, capn := range []int{0, -1, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity %d did not panic", capn)
				}
			}()
			NewRing(capn)
		}()
	}
}

func TestWireSize(t *testing.T) {
	m := Message{Data: make([]byte, 100)}
	if m.WireSize() != HeaderBytes+100 {
		t.Fatalf("WireSize = %d", m.WireSize())
	}
}

// Property: any interleaving of pushes and full drains preserves count
// and FIFO order, and never duplicates or loses messages.
func TestPushPopProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		eng, ch := newChannel(32, 1)
		next, want := 0, 0
		for _, op := range ops {
			if op%3 != 0 { // two thirds pushes
				if _, err := ch.NICPush(Message{Kind: uint16(next)}); err == nil {
					next++
				}
			} else {
				eng.Run()
				msgs, _ := ch.HostPoll(32)
				for _, m := range msgs {
					if int(m.Kind) != want {
						return false
					}
					want++
				}
			}
		}
		eng.Run()
		for {
			msgs, _ := ch.HostPoll(32)
			if len(msgs) == 0 {
				break
			}
			for _, m := range msgs {
				if int(m.Kind) != want {
					return false
				}
				want++
			}
		}
		return want == next
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadyCallbacksFire(t *testing.T) {
	eng, ch := newChannel(32, 2)
	hostReady, nicReady := 0, 0
	ch.OnHostReady = func() { hostReady++ }
	ch.OnNICReady = func() { nicReady++ }
	ch.NICPush(Message{Kind: 1})
	ch.NICPush(Message{Kind: 2}) // triggers the batch flush
	eng.Run()
	if hostReady != 1 {
		t.Fatalf("OnHostReady fired %d times, want once per flush", hostReady)
	}
	ch.HostPush(Message{Kind: 3})
	eng.Run()
	if nicReady != 1 {
		t.Fatalf("OnNICReady fired %d times", nicReady)
	}
}

// Drive a ring through ≥4 full wraps at capacity with uneven drain
// chunk sizes, crossing the half-ring credit boundary at every offset:
// FIFO order must hold, nothing may be lost or duplicated, and the
// producer's stale credit view may never lag by more than half a ring —
// after a full drain it must accept at least slots/2 pushes (the lazy
// half-ring sync liveness contract).
func TestWrapBoundaryCreditAccounting(t *testing.T) {
	const slots = 8
	const total = slots * 6 // ≥ 4 full wraps of the buffer
	eng, ch := newChannel(slots, 1)
	next, want := 0, 0
	chunks := []int{3, 1, 8, 2, 5, 4, 7, 6} // uneven drains hit every boundary offset
	for iter := 0; next < total; iter++ {
		// Fill until the producer's credit view says full.
		filled := 0
		for {
			if _, err := ch.NICPush(Message{Kind: uint16(next)}); err != nil {
				break
			}
			next++
			filled++
		}
		if filled < slots/2 {
			t.Fatalf("iteration %d: only %d credits after a full drain (sync lagged past half ring)", iter, filled)
		}
		eng.Run()
		for want < next {
			n := chunks[(want+iter)%len(chunks)]
			msgs, _ := ch.HostPoll(n)
			if len(msgs) == 0 {
				t.Fatalf("iteration %d: poll returned nothing with %d queued", iter, next-want)
			}
			for _, m := range msgs {
				if int(m.Kind) != want {
					t.Fatalf("iteration %d: got kind %d, want %d (FIFO broken across wrap)", iter, m.Kind, want)
				}
				want++
			}
		}
	}
	if want != next {
		t.Fatalf("drained %d of %d pushed", want, next)
	}
	r := ch.ToHost()
	if r.Pushed != uint64(next) || r.Popped != uint64(want) {
		t.Fatalf("counters Pushed=%d Popped=%d, want %d", r.Pushed, r.Popped, next)
	}
	// Lazy sync economics: a sync needs at least half a ring consumed, so
	// the count is bounded by consumed/(slots/2) and must be well below
	// one per message.
	maxSyncs := uint64(want / (slots / 2))
	if r.CreditSyncs < 4 || r.CreditSyncs > maxSyncs {
		t.Fatalf("CreditSyncs=%d outside [4, %d]", r.CreditSyncs, maxSyncs)
	}
}

// Regression: with a capacity-1 ring, half-ring is 0 and the unguarded
// threshold fired a credit sync (and billed its doorbell cost) on every
// poll — even empty ones that consumed nothing.
func TestCapacityOneRingNoSpuriousCreditSync(t *testing.T) {
	eng, ch := newChannel(1, 1)
	for i := 0; i < 5; i++ {
		ch.HostPoll(4) // empty polls: nothing consumed, nothing to sync
	}
	if n := ch.ToHost().CreditSyncs; n != 0 {
		t.Fatalf("empty polls fired %d credit syncs", n)
	}
	if ch.CreditMessages != 0 {
		t.Fatalf("empty polls sent %d credit messages", ch.CreditMessages)
	}
	// Real traffic still syncs: consume the single slot and the producer
	// must get its credit back.
	for i := 0; i < 3; i++ {
		if _, err := ch.NICPush(Message{Kind: uint16(i)}); err != nil {
			t.Fatalf("push %d: %v (credit never returned)", i, err)
		}
		eng.Run()
		msgs, _ := ch.HostPoll(1)
		if len(msgs) != 1 || int(msgs[0].Kind) != i {
			t.Fatalf("poll %d returned %v", i, msgs)
		}
	}
	if ch.ToHost().CreditSyncs != 3 {
		t.Fatalf("CreditSyncs=%d, want one per consumed message", ch.ToHost().CreditSyncs)
	}
}

func TestAppHandleSurvivesRing(t *testing.T) {
	eng, ch := newChannel(16, 1)
	type payload struct{ v int }
	ch.NICPush(Message{Kind: 5, App: &payload{v: 42}})
	eng.Run()
	msgs, _ := ch.HostPoll(4)
	if len(msgs) != 1 {
		t.Fatal("no message")
	}
	p, ok := msgs[0].App.(*payload)
	if !ok || p.v != 42 {
		t.Fatalf("App handle lost: %v", msgs[0].App)
	}
}
