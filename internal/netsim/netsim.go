// Package netsim simulates the testbed network: full-duplex Ethernet
// links with serialization and propagation delay, a store-and-forward
// ToR switch, and a topology connecting named nodes. It stands in for
// the Arista/Cavium switches and Intel NICs of the paper's 8-node
// testbed (§2.2.1).
package netsim

import (
	"fmt"
	"sort"

	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spec"
)

// Packet is a frame in flight. Payload carries the application message;
// Size is the frame size on the wire (quoted packet size, excluding
// preamble/IFG which the link model adds).
type Packet struct {
	Src, Dst string
	Size     int
	Payload  any
	// SentAt records when the packet entered the source link, for
	// end-to-end latency accounting.
	SentAt sim.Time
	// FlowID steers the packet at receivers that hash flows to cores.
	FlowID uint64
}

// Handler consumes packets delivered to a node.
type Handler interface {
	// Deliver is invoked when the last bit of the packet arrives.
	Deliver(pkt *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(pkt *Packet)

// Deliver implements Handler.
func (f HandlerFunc) Deliver(pkt *Packet) { f(pkt) }

// link is one direction of a full-duplex port: a serializer modeled as a
// single-server FIFO whose service time is the frame's wire time.
type link struct {
	gbps    float64
	station *sim.Station
	// propagation covers cable + switch cut-through overheads.
	propagation sim.Time
}

func newLink(eng *sim.Engine, gbps float64, prop sim.Time) *link {
	return &link{gbps: gbps, station: sim.NewStation(eng, 1), propagation: prop}
}

// Network is a star topology: every node connects to one switch. That is
// exactly the testbed shape (a ToR switch with client and server boxes).
//
// A network is either classic — every port on one engine — or
// partitioned (NewPartitioned): ports are pinned to the engines of a
// sim.Group and the switch becomes the PDES synchronization boundary.
// A packet whose source and destination live on different partitions is
// handed across at the moment it leaves the source uplink, via
// Group.Inject; the propagation + switch-fabric floor of the slowest
// such hop is exactly the lookahead the group needs, and AttachOn
// registers it. Delivery counters live on the (partition-pinned) ports
// so the hot path stays lock-free; the Network aggregates them on read.
type Network struct {
	eng *sim.Engine
	// group is non-nil on partitioned networks.
	group *sim.Group
	// SwitchLatency models store-and-forward plus fabric latency.
	SwitchLatency sim.Time

	nodes map[string]*port
	// orphanDrops counts packets sent from unknown nodes (no port to
	// account them on).
	orphanDrops uint64

	// LossRate drops each packet independently with this probability
	// (failure injection; the testbed's switch is otherwise lossless).
	LossRate float64

	// nodeLoss holds per-node loss probabilities (applied to traffic in
	// either direction); blocked holds severed directed pairs. Both are
	// fault-injection state, nil until first used.
	nodeLoss map[string]float64
	blocked  map[[2]string]bool

	tracer  *obs.Tracer
	groupOf func(node string) obs.GroupID
	// domain is the tracing domain stamped into cross-partition handoff
	// spans (obs.Tracer.NewDomain); -1 until tracing is enabled on a
	// partitioned network.
	domain int32
	// chks holds one conservation checker per partition (index 0 on
	// classic networks). Sparse: entries may be nil.
	chks []*invariant.Checker
}

type port struct {
	name    string
	eng     *sim.Engine // the partition engine this port lives on
	part    int
	up      *link // node → switch
	down    *link // switch → node
	handler Handler

	// Per-port conservation counters. delivered counts packets this
	// port received; the drop buckets count packets this port sent that
	// never made it. Each is only ever touched from the port's own
	// partition, so no synchronization is needed.
	delivered      uint64
	drops          uint64
	lost           uint64
	partitionDrops uint64

	// Trace tracks for the two link directions (obs.NoTrack when tracing
	// is off — the zero TrackID is a real track, so these must be
	// initialized explicitly). sink is the partition-private emit buffer
	// all of this port's spans go through (nil when tracing is off);
	// xTrack is the cross-partition handoff lane, registered only on
	// partitioned networks.
	txTrack obs.TrackID
	rxTrack obs.TrackID
	xTrack  obs.TrackID
	sink    *obs.Sink
}

// DefaultSwitchLatency is a typical ToR port-to-port latency.
const DefaultSwitchLatency = 600 * sim.Nanosecond

// New creates an empty network on the engine.
func New(eng *sim.Engine) *Network {
	return &Network{eng: eng, SwitchLatency: DefaultSwitchLatency, nodes: map[string]*port{}}
}

// NewPartitioned creates an empty network whose ports attach to the
// partitions of g (see AttachOn). With a single-partition group this is
// exactly New on that partition's engine.
func NewPartitioned(g *sim.Group) *Network {
	n := New(g.Engine(0))
	if g.Partitions() > 1 {
		n.group = g
	}
	return n
}

// Engine returns the underlying simulation engine (partition 0's on
// partitioned networks).
func (n *Network) Engine() *sim.Engine { return n.eng }

// EnableInvariants attaches the message-conservation checker: every
// packet entering the fabric must eventually be delivered or counted
// into a drop bucket (injected = delivered + dropped + in-flight).
// Partitioned networks need one checker per partition — use
// EnableInvariantsAt.
func (n *Network) EnableInvariants(chk *invariant.Checker) {
	if n.group != nil {
		panic("netsim: partitioned networks take one checker per partition (EnableInvariantsAt)")
	}
	n.EnableInvariantsAt(0, chk)
}

// EnableInvariantsAt attaches the conservation checker for one
// partition's ledger. Cross-partition packets are reconciled between
// ledgers with handoff counters at the switch boundary.
func (n *Network) EnableInvariantsAt(part int, chk *invariant.Checker) {
	if chk == nil {
		return
	}
	for len(n.chks) <= part {
		n.chks = append(n.chks, nil)
	}
	if n.chks[part] == nil {
		n.chks[part] = chk
	}
}

// chkAt returns partition part's checker; nil (the disabled checker)
// when none is attached.
func (n *Network) chkAt(part int) *invariant.Checker {
	if part < len(n.chks) {
		return n.chks[part]
	}
	return nil
}

// Attach connects a node with the given link speed and registers its
// receive handler. Attaching a duplicate name panics: it is a topology
// construction bug. On partitioned networks the port lands on
// partition 0; use AttachOn to place it.
func (n *Network) Attach(name string, gbps float64, h Handler) {
	n.AttachOn(name, gbps, h, 0)
}

// AttachOn is Attach pinning the port to a partition of the network's
// group. Everything that runs on behalf of this node — its link
// serializers, its receive handler — executes on that partition's
// engine.
func (n *Network) AttachOn(name string, gbps float64, h Handler, part int) {
	if _, dup := n.nodes[name]; dup {
		panic(fmt.Sprintf("netsim: node %q attached twice", name))
	}
	eng := n.eng
	if n.group != nil {
		eng = n.group.Engine(part)
	} else if part != 0 {
		panic(fmt.Sprintf("netsim: partition %d on an unpartitioned network", part))
	}
	prop := 300 * sim.Nanosecond // NIC MAC + cable
	p := &port{
		name:    name,
		eng:     eng,
		part:    part,
		up:      newLink(eng, gbps, prop),
		down:    newLink(eng, gbps, prop),
		handler: h,
		txTrack: obs.NoTrack,
		rxTrack: obs.NoTrack,
		xTrack:  obs.NoTrack,
	}
	n.nodes[name] = p
	if n.group != nil {
		// The switch hop is the minimum cross-partition latency: a
		// handoff happens after uplink serialization, and covers
		// propagation to the switch plus the fabric delay.
		n.group.TightenLookahead(prop + n.SwitchLatency)
	}
	if n.tracer != nil {
		n.tracePort(p)
	}
}

// Delivered counts successfully delivered packets.
func (n *Network) Delivered() uint64 {
	var total uint64
	for _, p := range n.nodes {
		total += p.delivered
	}
	return total
}

// Drops counts packets addressed to (or sent from) unknown nodes.
func (n *Network) Drops() uint64 {
	total := n.orphanDrops
	for _, p := range n.nodes {
		total += p.drops
	}
	return total
}

// Lost counts packets dropped by injected loss.
func (n *Network) Lost() uint64 {
	var total uint64
	for _, p := range n.nodes {
		total += p.lost
	}
	return total
}

// PartitionDrops counts packets dropped by severed node pairs.
func (n *Network) PartitionDrops() uint64 {
	var total uint64
	for _, p := range n.nodes {
		total += p.partitionDrops
	}
	return total
}

// EnableTracing registers one trace track per link direction for every
// attached node, and for every node attached afterwards. group maps a
// node name to its trace group. Already-attached ports are visited in
// sorted name order so track numbering — and hence the trace bytes —
// does not depend on map iteration order; later Attach calls register in
// program order, which is equally deterministic.
//
// On a partitioned network each port emits through its partition's
// obs.Sink (no shared span buffer across partitions) and gets an extra
// "xpart" lane carrying cross-partition handoff spans stamped with the
// (domain, src partition, Inject seq) merge identity.
func (n *Network) EnableTracing(tr *obs.Tracer, group func(node string) obs.GroupID) {
	if !tr.Enabled() {
		return
	}
	n.tracer = tr
	n.groupOf = group
	n.domain = -1
	if n.group != nil {
		n.domain = tr.NewDomain()
	}
	names := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n.tracePort(n.nodes[name])
	}
}

func (n *Network) tracePort(p *port) {
	g := n.groupOf(p.name)
	p.sink = n.tracer.Sink(p.part)
	p.txTrack = n.tracer.NewTrack(g, "link tx")
	p.rxTrack = n.tracer.NewTrack(g, "link rx")
	if n.group != nil {
		p.xTrack = n.tracer.NewTrack(g, "xpart")
	}
}

// SetHandler replaces the receive handler for a node (used when a
// runtime boots after topology construction).
func (n *Network) SetHandler(name string, h Handler) {
	p, ok := n.nodes[name]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown node %q", name))
	}
	p.handler = h
}

// Nodes returns the attached node names (order unspecified).
func (n *Network) Nodes() []string {
	out := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		out = append(out, name)
	}
	return out
}

// LinkGbps returns a node's link speed.
func (n *Network) LinkGbps(name string) float64 {
	p, ok := n.nodes[name]
	if !ok {
		return 0
	}
	return p.up.gbps
}

// SetNodeLoss sets (rate > 0) or clears (rate ≤ 0) an independent drop
// probability applied to every packet entering or leaving the node. The
// effective loss for a packet is the maximum of the global LossRate and
// the two endpoints' node rates.
func (n *Network) SetNodeLoss(name string, rate float64) {
	if n.nodeLoss == nil {
		n.nodeLoss = map[string]float64{}
	}
	if rate <= 0 {
		delete(n.nodeLoss, name)
		return
	}
	n.nodeLoss[name] = rate
}

// SetBlocked severs (or, with cut=false, heals) the a↔b pair in both
// directions — the switch stops forwarding between them, modeling a
// network partition. Unknown names are accepted: the pair simply never
// matches live traffic.
func (n *Network) SetBlocked(a, b string, cut bool) {
	if n.blocked == nil {
		n.blocked = map[[2]string]bool{}
	}
	if cut {
		n.blocked[[2]string{a, b}] = true
		n.blocked[[2]string{b, a}] = true
		return
	}
	delete(n.blocked, [2]string{a, b})
	delete(n.blocked, [2]string{b, a})
}

// Blocked reports whether the a→b direction is currently severed.
func (n *Network) Blocked(a, b string) bool { return n.blocked[[2]string{a, b}] }

// effectiveLoss returns the drop probability for a src→dst packet.
func (n *Network) effectiveLoss(src, dst string) float64 {
	loss := n.LossRate
	if len(n.nodeLoss) > 0 {
		if r := n.nodeLoss[src]; r > loss {
			loss = r
		}
		if r := n.nodeLoss[dst]; r > loss {
			loss = r
		}
	}
	return loss
}

// Send injects a packet at its source node. The packet serializes on the
// source uplink, crosses the switch, serializes on the destination
// downlink, and is then delivered. Sending from or to an unknown node
// drops the packet (counted in Drops), mirroring a real switch flooding
// to nowhere.
//
// Send must be called from the source node's partition. When the
// destination lives on another partition the packet is injected across
// at the moment it has left the source uplink — the remaining
// propagation + fabric delay is the lookahead that makes the handoff
// safe — and everything from the downlink queue on runs on the
// destination's engine.
func (n *Network) Send(pkt *Packet) {
	src, ok := n.nodes[pkt.Src]
	if !ok {
		n.orphanDrops++
		chk := n.chkAt(0)
		chk.NetInject()
		chk.NetDrop("unknown-src")
		return
	}
	chk := n.chkAt(src.part)
	dst, ok := n.nodes[pkt.Dst]
	if !ok {
		src.drops++
		chk.NetInject()
		chk.NetDrop("unknown-dst")
		return
	}
	if len(n.blocked) > 0 && n.blocked[[2]string{pkt.Src, pkt.Dst}] {
		src.partitionDrops++
		chk.NetInject()
		chk.NetDrop("partition")
		return
	}
	if loss := n.effectiveLoss(pkt.Src, pkt.Dst); loss > 0 && src.eng.Rand().Float64() < loss {
		src.lost++
		chk.NetInject()
		chk.NetDrop("loss")
		return
	}
	pkt.SentAt = src.eng.Now()
	chk.NetInject()
	wire := spec.SerializationDelay(src.up.gbps, pkt.Size)
	src.up.station.Submit(&sim.Job{
		Service: wire,
		Done: func(enq, started, fin sim.Time) {
			src.sink.Span(src.txTrack, "frame", started, fin,
				obs.Args{Req: pkt.FlowID, HasReq: pkt.FlowID != 0, Bytes: pkt.Size, Wait: started - enq})
			// Propagation to switch, then queue on the downlink after
			// the switch fabric delay.
			hop := src.up.propagation + n.SwitchLatency
			if n.group == nil || src.part == dst.part {
				src.eng.After(hop, func() { n.arrive(dst, pkt) })
				return
			}
			n.chkAt(src.part).NetHandoffOut()
			now := src.eng.Now()
			arriveAt := now + hop
			// seq is assigned by Inject below, before this window ends;
			// the "handoff in" closure reads it in a later window on the
			// destination partition (the round barrier orders the two).
			var seq uint64
			seq = n.group.Inject(src.part, dst.part, arriveAt, func() {
				n.chkAt(dst.part).NetHandoffIn()
				dst.sink.Span(dst.xTrack, "handoff in", arriveAt, arriveAt, obs.Args{
					Req: pkt.FlowID, HasReq: pkt.FlowID != 0, Bytes: pkt.Size,
					XC: n.domain, XSrc: int32(src.part), XSeq: seq, HasX: true,
				})
				n.arrive(dst, pkt)
			})
			src.sink.Span(src.xTrack, "handoff out", now, arriveAt, obs.Args{
				Req: pkt.FlowID, HasReq: pkt.FlowID != 0, Bytes: pkt.Size,
				XC: n.domain, XSrc: int32(src.part), XSeq: seq, HasX: true,
			})
		},
	})
}

// arrive runs on the destination's partition: the packet queues on the
// downlink, serializes, propagates, and is delivered.
func (n *Network) arrive(dst *port, pkt *Packet) {
	down := spec.SerializationDelay(dst.down.gbps, pkt.Size)
	dst.down.station.Submit(&sim.Job{
		Service: down,
		Done: func(enq, started, fin sim.Time) {
			dst.sink.Span(dst.rxTrack, "frame", started, fin,
				obs.Args{Req: pkt.FlowID, HasReq: pkt.FlowID != 0, Bytes: pkt.Size, Wait: started - enq})
			dst.eng.After(dst.down.propagation, func() {
				dst.delivered++
				n.chkAt(dst.part).NetDeliver()
				if dst.handler != nil {
					dst.handler.Deliver(pkt)
				}
			})
		},
	})
}

// OneWayBaseLatency returns the unloaded one-way latency for a frame
// size between two nodes, useful for analytical checks in tests.
func (n *Network) OneWayBaseLatency(src, dst string, size int) sim.Time {
	s, d := n.nodes[src], n.nodes[dst]
	if s == nil || d == nil {
		return 0
	}
	return spec.SerializationDelay(s.up.gbps, size) + s.up.propagation +
		n.SwitchLatency +
		spec.SerializationDelay(d.down.gbps, size) + d.down.propagation
}
