package netsim

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/spec"
)

func twoNodeNet(t *testing.T, gbps float64) (*sim.Engine, *Network, *[]*Packet) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := New(eng)
	var got []*Packet
	net.Attach("a", gbps, nil)
	net.Attach("b", gbps, HandlerFunc(func(p *Packet) { got = append(got, p) }))
	return eng, net, &got
}

func TestDeliveryLatencyUnloaded(t *testing.T) {
	eng, net, got := twoNodeNet(t, 10)
	net.Send(&Packet{Src: "a", Dst: "b", Size: 1500})
	eng.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(*got))
	}
	want := net.OneWayBaseLatency("a", "b", 1500)
	if eng.Now() != want {
		t.Fatalf("delivery at %v, want %v", eng.Now(), want)
	}
	// Sanity: 1500B at 10GbE serializes in ≈1.2µs per hop; total should
	// be in single-digit microseconds.
	if want < 2*sim.Microsecond || want > 5*sim.Microsecond {
		t.Fatalf("base latency %v implausible", want)
	}
}

func TestSerializationQueueing(t *testing.T) {
	eng, net, got := twoNodeNet(t, 10)
	// Two back-to-back packets: the second waits for the first's wire time
	// on the shared uplink.
	net.Send(&Packet{Src: "a", Dst: "b", Size: 1500})
	net.Send(&Packet{Src: "a", Dst: "b", Size: 1500})
	eng.Run()
	if len(*got) != 2 {
		t.Fatalf("delivered %d, want 2", len(*got))
	}
	gap := eng.Now() - net.OneWayBaseLatency("a", "b", 1500)
	wire := spec.SerializationDelay(10, 1500)
	if gap != wire {
		t.Fatalf("second packet delayed by %v, want one wire time %v", gap, wire)
	}
}

func TestLineRateThroughput(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng)
	delivered := 0
	net.Attach("src", 10, nil)
	net.Attach("dst", 10, HandlerFunc(func(p *Packet) { delivered++ }))
	// Offer 2x line rate for 10ms of virtual time; deliveries must be
	// capped at line rate by the serializer.
	const size = 512
	line := spec.LineRatePPS(10, size)
	interval := sim.Time(0.5e9 / line)
	for at := sim.Time(0); at < 10*sim.Millisecond; at += interval {
		at := at
		eng.At(at, func() { net.Send(&Packet{Src: "src", Dst: "dst", Size: size}) })
	}
	eng.Run()
	elapsed := eng.Now().Seconds()
	gbps := spec.GoodputGbps(float64(delivered)/elapsed, size)
	if gbps > 10.01 {
		t.Fatalf("goodput %v exceeds link speed", gbps)
	}
	if gbps < 9.0 {
		t.Fatalf("goodput %v too far below line rate", gbps)
	}
}

func TestUnknownNodesDrop(t *testing.T) {
	eng, net, got := twoNodeNet(t, 10)
	net.Send(&Packet{Src: "a", Dst: "ghost", Size: 64})
	net.Send(&Packet{Src: "ghost", Dst: "b", Size: 64})
	eng.Run()
	if len(*got) != 0 {
		t.Fatal("packets to/from unknown nodes must not deliver")
	}
	if net.Drops() != 2 {
		t.Fatalf("Drops = %d, want 2", net.Drops())
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng)
	net.Attach("a", 10, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach did not panic")
		}
	}()
	net.Attach("a", 10, nil)
}

func TestSetHandler(t *testing.T) {
	eng, net, _ := twoNodeNet(t, 25)
	n := 0
	net.SetHandler("a", HandlerFunc(func(p *Packet) { n++ }))
	net.Send(&Packet{Src: "b", Dst: "a", Size: 64})
	eng.Run()
	if n != 1 {
		t.Fatalf("replacement handler saw %d packets, want 1", n)
	}
}

func TestMixedLinkSpeeds(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng)
	var at sim.Time
	net.Attach("fast", 25, nil)
	net.Attach("slow", 10, HandlerFunc(func(p *Packet) { at = eng.Now() }))
	net.Send(&Packet{Src: "fast", Dst: "slow", Size: 1024})
	eng.Run()
	want := net.OneWayBaseLatency("fast", "slow", 1024)
	if at != want {
		t.Fatalf("arrival %v, want %v", at, want)
	}
	// The slow downlink dominates serialization.
	fastWire := spec.SerializationDelay(25, 1024)
	slowWire := spec.SerializationDelay(10, 1024)
	if slowWire <= fastWire {
		t.Fatal("expected slower downlink serialization")
	}
}

func TestFlowIDAndPayloadPreserved(t *testing.T) {
	eng, net, got := twoNodeNet(t, 10)
	net.Send(&Packet{Src: "a", Dst: "b", Size: 128, FlowID: 42, Payload: "hello"})
	eng.Run()
	p := (*got)[0]
	if p.FlowID != 42 || p.Payload != "hello" {
		t.Fatalf("packet fields not preserved: %+v", p)
	}
	if p.SentAt != 0 {
		t.Fatalf("SentAt = %v, want 0 (sent at t=0)", p.SentAt)
	}
}

func TestLossInjection(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng)
	delivered := 0
	net.Attach("a", 10, nil)
	net.Attach("b", 10, HandlerFunc(func(p *Packet) { delivered++ }))
	net.LossRate = 0.5
	for i := 0; i < 400; i++ {
		net.Send(&Packet{Src: "a", Dst: "b", Size: 64})
	}
	eng.Run()
	if net.Lost() == 0 || delivered == 0 {
		t.Fatalf("loss injection degenerate: lost=%d delivered=%d", net.Lost(), delivered)
	}
	if net.Lost()+uint64(delivered) != 400 {
		t.Fatalf("accounting: %d + %d != 400", net.Lost(), delivered)
	}
	// Roughly half lost.
	if net.Lost() < 120 || net.Lost() > 280 {
		t.Fatalf("lost %d of 400 at 50%% rate", net.Lost())
	}
}
