package netsim

import (
	"testing"

	"repro/internal/invariant"
	"repro/internal/sim"
)

// buildPair attaches two nodes on separate partitions with a sink
// handler and returns the group, network, and delivery log.
func buildPair(seed uint64) (*sim.Group, *Network, *[]sim.Time) {
	g := sim.NewGroup(seed, 2)
	n := NewPartitioned(g)
	var arrivals []sim.Time
	n.AttachOn("a", 10, nil, 0)
	n.AttachOn("b", 10, HandlerFunc(func(pkt *Packet) {
		arrivals = append(arrivals, g.Engine(1).Now())
	}), 1)
	return g, n, &arrivals
}

// TestCrossPartitionDeliveryLatency: a packet crossing partitions must
// arrive after exactly the same unloaded latency as on one engine.
func TestCrossPartitionDeliveryLatency(t *testing.T) {
	g, n, arrivals := buildPair(1)
	want := n.OneWayBaseLatency("a", "b", 256)
	g.Engine(0).Defer(func() {
		n.Send(&Packet{Src: "a", Dst: "b", Size: 256})
	})
	g.RunUntil(sim.Millisecond, 2)
	if len(*arrivals) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(*arrivals))
	}
	if got := (*arrivals)[0]; got != want {
		t.Fatalf("cross-partition latency %v, want %v", got, want)
	}
	if n.Delivered() != 1 {
		t.Fatalf("Delivered() = %d, want 1", n.Delivered())
	}
	if g.Crossed() != 1 {
		t.Fatalf("Crossed() = %d, want 1 handoff", g.Crossed())
	}
}

// TestCrossPartitionLedgersBalance: per-partition checkers must agree
// at quiescence via the handoff counters.
func TestCrossPartitionLedgersBalance(t *testing.T) {
	g, n, _ := buildPair(2)
	chks := []*invariant.Checker{invariant.New(g.Engine(0)), invariant.New(g.Engine(1))}
	n.EnableInvariantsAt(0, chks[0])
	n.EnableInvariantsAt(1, chks[1])
	g.Engine(0).Defer(func() {
		for i := 0; i < 50; i++ {
			n.Send(&Packet{Src: "a", Dst: "b", Size: 128})
		}
	})
	g.Run(2)
	for i, chk := range chks {
		chk.Finish()
		if err := chk.Err(); err != nil {
			t.Fatalf("partition %d ledger: %v", i, err)
		}
	}
	if n.Delivered() != 50 {
		t.Fatalf("Delivered() = %d, want 50", n.Delivered())
	}
}

// TestPartitionedMatchesSerialWindows: the same partitioned topology
// must deliver identically with 1 and 2 workers (bidirectional bursty
// traffic, so windows genuinely interleave).
func TestPartitionedMatchesSerialWindows(t *testing.T) {
	run := func(workers int) [2][]sim.Time {
		g := sim.NewGroup(7, 2)
		n := NewPartitioned(g)
		var logs [2][]sim.Time // one per partition: no cross-goroutine sharing
		mk := func(self string, part int, eng *sim.Engine, peer string) HandlerFunc {
			return func(pkt *Packet) {
				logs[part] = append(logs[part], eng.Now())
				if len(logs[part]) < 100 { // ping-pong chain
					n.Send(&Packet{Src: self, Dst: peer, Size: 64 + len(logs[part])%512})
				}
			}
		}
		n.AttachOn("a", 10, mk("a", 0, g.Engine(0), "b"), 0)
		n.AttachOn("b", 25, mk("b", 1, g.Engine(1), "a"), 1)
		g.Engine(0).Defer(func() {
			for i := 0; i < 4; i++ {
				n.Send(&Packet{Src: "a", Dst: "b", Size: 64})
			}
		})
		g.Run(workers)
		return logs
	}
	serial, parallel := run(1), run(2)
	for p := 0; p < 2; p++ {
		if len(serial[p]) != len(parallel[p]) || len(serial[p]) == 0 {
			t.Fatalf("partition %d delivery counts differ: %d vs %d", p, len(serial[p]), len(parallel[p]))
		}
		for i := range serial[p] {
			if serial[p][i] != parallel[p][i] {
				t.Fatalf("partition %d delivery %d at %v (serial) vs %v (parallel)",
					p, i, serial[p][i], parallel[p][i])
			}
		}
	}
}
