// Package nicsim models the SmartNIC device itself: the traffic manager
// (including its packets-per-second ceiling), the bank of hardware
// accelerators (Table 3), and the standalone echo server used by the
// paper's traffic-control characterization (Figures 2–5). The actor
// scheduler that runs *on* the NIC cores lives in internal/sched; the
// node runtime in internal/core composes the two.
package nicsim

import (
	"fmt"
	"sort"

	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spec"
)

// TrafficGate models the traffic manager / NIC switch ingress bound: a
// single pipeline stage admitting at most PPSCap packets per second.
// With PPSCap == 0 the gate is transparent.
type TrafficGate struct {
	eng     *sim.Engine
	station *sim.Station
	perPkt  sim.Time

	Admitted uint64

	sink  *obs.Sink
	track obs.TrackID
	chk   *invariant.Checker
}

// NewTrafficGate builds a gate for the model's PPSCap.
func NewTrafficGate(eng *sim.Engine, m *spec.NICModel) *TrafficGate {
	g := &TrafficGate{eng: eng, track: obs.NoTrack}
	if m.PPSCap > 0 {
		g.perPkt = sim.Time(1e9 / m.PPSCap)
		g.station = sim.NewStation(eng, 1)
	}
	return g
}

// EnableTracing records the gate's pipeline occupancy as a "traffic mgr"
// lane in the given trace group, emitting through the owning
// partition's sink (sink 0 on classic clusters).
func (g *TrafficGate) EnableTracing(sk *obs.Sink, group obs.GroupID) {
	if sk == nil {
		return
	}
	g.sink = sk
	g.track = sk.NewTrack(group, "traffic mgr")
}

// EnableInvariants attaches the admission-conservation checker: every
// admitted packet must clear the pipeline (the gate delays, it never
// drops).
func (g *TrafficGate) EnableInvariants(chk *invariant.Checker) {
	if chk == nil || g.chk != nil {
		return
	}
	g.chk = chk
}

// Admit passes a packet through the gate; deliver runs when the packet
// clears the pipeline stage. flow and bytes annotate the trace span (a
// transparent gate emits no span — there is no occupancy to show).
func (g *TrafficGate) Admit(flow uint64, bytes int, deliver func()) {
	g.Admitted++
	g.chk.GateAdmit()
	if g.station == nil {
		g.chk.GateDeliver()
		deliver()
		return
	}
	g.station.Submit(&sim.Job{Service: g.perPkt, Done: func(enq, started, fin sim.Time) {
		g.sink.Span(g.track, "admit", started, fin,
			obs.Args{Req: flow, HasReq: flow != 0, Bytes: bytes, Wait: started - enq})
		g.chk.GateDeliver()
		deliver()
	}})
}

// AccelBank is the NIC's set of domain-specific accelerator units. Each
// unit serializes invocations (one engine per function block); the
// invoking core waits for completion, as the paper observes (§2.2.3:
// "invoking an accelerator is not free since the NIC core has to wait").
type AccelBank struct {
	eng   *sim.Engine
	units map[string]*accelUnit
	sink  *obs.Sink
}

type accelUnit struct {
	prof    spec.AccelProfile
	station *sim.Station
	Invokes uint64
	Stalls  uint64
	track   obs.TrackID
}

// NewAccelBank instantiates the model's accelerators.
func NewAccelBank(eng *sim.Engine, m *spec.NICModel) *AccelBank {
	b := &AccelBank{eng: eng, units: map[string]*accelUnit{}}
	for name, prof := range m.Accels {
		b.units[name] = &accelUnit{prof: prof, station: sim.NewStation(eng, 1), track: obs.NoTrack}
	}
	return b
}

// EnableTracing registers one lane per accelerator unit in the given
// group, emitting through the owning partition's sink. Units are
// registered in sorted name order so track numbering does not depend on
// map iteration order.
func (b *AccelBank) EnableTracing(sk *obs.Sink, group obs.GroupID) {
	if sk == nil {
		return
	}
	b.sink = sk
	names := make([]string, 0, len(b.units))
	for name := range b.units {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.units[name].track = sk.NewTrack(group, "accel "+name)
	}
}

// Has reports whether the bank has a unit by that name.
func (b *AccelBank) Has(name string) bool {
	_, ok := b.units[name]
	return ok
}

// Cost returns the modeled core-side wait for processing n bytes at the
// given batch size, without submitting work (for planning/what-if).
// Table 3's latencies are per-request at 1KB; cost scales linearly in
// payload with a floor of the fixed invocation overhead.
func (b *AccelBank) Cost(name string, bytes, batch int) (sim.Time, bool) {
	u, ok := b.units[name]
	if !ok {
		return 0, false
	}
	per1KB, ok := u.prof.Latency(batch)
	if !ok {
		return 0, false
	}
	scale := float64(bytes) / 1024.0
	if scale < 0.25 {
		scale = 0.25 // invocation overhead floor
	}
	return sim.Time(float64(per1KB) * scale), true
}

// Invoke submits work to a unit and returns the modeled core wait; the
// core model should stay busy for that long. Contention on the unit is
// reflected through the station (done fires when the unit finishes).
func (b *AccelBank) Invoke(name string, bytes, batch int, done func()) (sim.Time, bool) {
	cost, ok := b.Cost(name, bytes, batch)
	if !ok {
		return 0, false
	}
	u := b.units[name]
	u.Invokes++
	u.station.Submit(&sim.Job{Service: cost, Done: func(enq, started, fin sim.Time) {
		b.sink.Span(u.track, name, started, fin,
			obs.Args{Bytes: bytes, Wait: started - enq})
		if done != nil {
			done()
		}
	}})
	return cost, true
}

// Stall occupies a unit for the given duration: a firmware hiccup or
// thermal throttle during which invocations queue behind the blockage
// (fault injection). Returns false if the bank has no such unit.
func (b *AccelBank) Stall(name string, d sim.Time) bool {
	u, ok := b.units[name]
	if !ok {
		return false
	}
	u.Stalls++
	u.station.Submit(&sim.Job{Service: d, Done: func(enq, started, fin sim.Time) {
		b.sink.Span(u.track, name+" [stall]", started, fin,
			obs.Args{Wait: started - enq})
	}})
	return true
}

// Stalls reports a unit's injected-stall count.
func (b *AccelBank) Stalls(name string) uint64 {
	if u, ok := b.units[name]; ok {
		return u.Stalls
	}
	return 0
}

// Invokes reports a unit's invocation count.
func (b *AccelBank) Invokes(name string) uint64 {
	if u, ok := b.units[name]; ok {
		return u.Invokes
	}
	return 0
}

// EchoServer is the characterization workload of §2.2.2: the NIC
// receives packets, touches them, and retransmits, using a configurable
// number of cores pulling from the shared traffic-manager queue. It
// reproduces Figures 2, 3 (bandwidth vs cores), 4 (bandwidth vs added
// per-packet latency) and 5 (latency at peak throughput).
type EchoServer struct {
	eng   *sim.Engine
	model *spec.NICModel
	gate  *TrafficGate
	cores *sim.Station
	// ExtraLatency is added per-packet processing (Figure 4's x-axis).
	ExtraLatency sim.Time

	Echoed uint64
	// OnEcho, if set, observes each completion with the packet's sojourn
	// time (arrival at gate → retransmission).
	OnEcho func(sojourn sim.Time)
}

// NewEchoServer builds an echo server using n of the model's cores.
func NewEchoServer(eng *sim.Engine, m *spec.NICModel, n int) *EchoServer {
	if n <= 0 || n > m.Cores {
		panic(fmt.Sprintf("nicsim: echo server cores %d out of range 1..%d", n, m.Cores))
	}
	return &EchoServer{
		eng:   eng,
		model: m,
		gate:  NewTrafficGate(eng, m),
		cores: sim.NewStation(eng, n),
	}
}

// Receive handles one arriving frame of the given size.
func (e *EchoServer) Receive(size int) {
	arrived := e.eng.Now()
	e.gate.Admit(0, size, func() {
		service := e.model.EchoCost.Cost(size) + e.ExtraLatency
		e.cores.Submit(&sim.Job{Service: service, Done: func(_, _, fin sim.Time) {
			e.Echoed++
			if e.OnEcho != nil {
				e.OnEcho(fin - arrived)
			}
		}})
	})
}

// Backlog returns queued packets at the cores.
func (e *EchoServer) Backlog() int { return e.cores.QueueLen() }
