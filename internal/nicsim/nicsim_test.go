package nicsim

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/spec"
)

// offeredLoad drives an echo server at the line rate of the model's link
// for the given frame size over a window, returning achieved Gbps.
func achievedGbps(m *spec.NICModel, cores, size int, extra sim.Time) float64 {
	eng := sim.NewEngine(1)
	e := NewEchoServer(eng, m, cores)
	e.ExtraLatency = extra
	pps := spec.LineRatePPS(m.LinkGbps, size)
	interval := sim.Time(1e9 / pps)
	window := 5 * sim.Millisecond
	for at := sim.Time(0); at < window; at += interval {
		eng.At(at, func() { e.Receive(size) })
	}
	eng.RunUntil(window)
	return spec.GoodputGbps(float64(e.Echoed)/window.Seconds(), size)
}

// TestFig2EndToEnd replays Figure 2 through the event-driven echo
// server: the core counts at which line rate is reached must match the
// analytic calibration and the paper.
func TestFig2EndToEnd(t *testing.T) {
	m := spec.LiquidIOII_CN2350()
	line := func(size int) float64 {
		return spec.GoodputGbps(spec.LineRatePPS(10, size), size)
	}
	cases := map[int]int{256: 10, 512: 6, 1024: 4, 1500: 3}
	for size, cores := range cases {
		got := achievedGbps(m, cores, size, 0)
		if got < 0.98*line(size) {
			t.Errorf("%dB@%d cores: %.2f Gbps, want ≥ line %.2f", size, cores, got, line(size))
		}
		under := achievedGbps(m, cores-1, size, 0)
		if under >= 0.99*line(size) {
			t.Errorf("%dB@%d cores already reaches line rate %.2f", size, cores-1, under)
		}
	}
}

func TestSmallPacketsNeverReachLine(t *testing.T) {
	m := spec.LiquidIOII_CN2350()
	got := achievedGbps(m, m.Cores, 64, 0)
	if got >= 9.0 {
		t.Fatalf("64B with all cores reached %.2f Gbps", got)
	}
	if got < 2.0 {
		t.Fatalf("64B throughput %.2f Gbps implausibly low", got)
	}
}

func TestStingrayPPSCapBites(t *testing.T) {
	m := spec.Stingray_PS225()
	got := achievedGbps(m, m.Cores, 128, 0)
	line := spec.GoodputGbps(spec.LineRatePPS(25, 128), 128)
	if got >= 0.99*line {
		t.Fatalf("128B should be capped by the 18Mpps switch: %.2f vs line %.2f", got, line)
	}
	// But the cap admits ≈18Mpps ≈ 18.4Gbps of 128B goodput.
	if got < 15 {
		t.Fatalf("128B goodput %.2f Gbps far below the cap", got)
	}
}

// TestFig4ExtraLatencyDegrades: beyond the computing headroom,
// bandwidth falls off.
func TestFig4ExtraLatencyDegrades(t *testing.T) {
	m := spec.LiquidIOII_CN2350()
	base := achievedGbps(m, m.Cores, 1024, 0)
	light := achievedGbps(m, m.Cores, 1024, 2*sim.Microsecond)
	heavy := achievedGbps(m, m.Cores, 1024, 16*sim.Microsecond)
	if light < 0.95*base {
		t.Fatalf("2µs extra within headroom should keep ≈line rate: %.2f vs %.2f", light, base)
	}
	if heavy >= 0.8*base {
		t.Fatalf("16µs extra should degrade bandwidth: %.2f vs %.2f", heavy, base)
	}
}

// TestFig5SharedQueueScaling: going from 6 to 12 cores at the same
// (6-core max) load must not inflate latency — the shared queue has no
// synchronization penalty in the hardware traffic manager model.
func TestFig5SharedQueueScaling(t *testing.T) {
	m := spec.LiquidIOII_CN2350()
	run := func(cores int) float64 {
		eng := sim.NewEngine(1)
		e := NewEchoServer(eng, m, cores)
		var sum float64
		var n int
		e.OnEcho = func(s sim.Time) { sum += s.Micros(); n++ }
		// Load that exactly saturates 6 cores at 512B.
		perPkt := m.EchoCost.Cost(512)
		interval := perPkt / 6
		for at := sim.Time(0); at < 2*sim.Millisecond; at += interval {
			eng.At(at, func() { e.Receive(512) })
		}
		eng.Run()
		return sum / float64(n)
	}
	avg6, avg12 := run(6), run(12)
	if avg12 > avg6*1.10 {
		t.Fatalf("12-core avg latency %.2fµs should not exceed 6-core %.2fµs by >10%%", avg12, avg6)
	}
}

func TestTrafficGateTransparentWithoutCap(t *testing.T) {
	eng := sim.NewEngine(1)
	m := spec.LiquidIOII_CN2350() // PPSCap == 0
	g := NewTrafficGate(eng, m)
	delivered := false
	g.Admit(0, 0, func() { delivered = true })
	if !delivered {
		t.Fatal("transparent gate should deliver synchronously")
	}
	if g.Admitted != 1 {
		t.Fatalf("Admitted = %d", g.Admitted)
	}
}

func TestAccelBankCosts(t *testing.T) {
	eng := sim.NewEngine(1)
	m := spec.LiquidIOII_CN2350()
	b := NewAccelBank(eng, m)
	if !b.Has("MD5") || b.Has("WARP") {
		t.Fatal("bank contents wrong")
	}
	c1, ok := b.Cost("MD5", 1024, 1)
	if !ok || c1 != sim.Micros(5.0) {
		t.Fatalf("MD5 1KB bsz1 = %v, want 5µs (Table 3)", c1)
	}
	c32, _ := b.Cost("MD5", 1024, 32)
	if c32 >= c1 {
		t.Fatal("batching should amortize")
	}
	// Payload scaling with an invocation floor.
	cSmall, _ := b.Cost("MD5", 16, 1)
	if cSmall != sim.Time(float64(sim.Micros(5.0))*0.25) {
		t.Fatalf("small payload should hit the floor: %v", cSmall)
	}
	cBig, _ := b.Cost("MD5", 4096, 1)
	if cBig != 4*c1 {
		t.Fatalf("4KB cost %v, want 4x 1KB %v", cBig, c1)
	}
}

func TestAccelInvokeSerializes(t *testing.T) {
	eng := sim.NewEngine(1)
	b := NewAccelBank(eng, spec.LiquidIOII_CN2350())
	var t1, t2 sim.Time
	b.Invoke("AES", 1024, 1, func() { t1 = eng.Now() })
	b.Invoke("AES", 1024, 1, func() { t2 = eng.Now() })
	eng.Run()
	if t2 != 2*t1 {
		t.Fatalf("second invocation at %v, want serialized after %v", t2, t1)
	}
	if b.Invokes("AES") != 2 {
		t.Fatalf("Invokes = %d", b.Invokes("AES"))
	}
}

func TestAccelMissingUnit(t *testing.T) {
	eng := sim.NewEngine(1)
	b := NewAccelBank(eng, spec.Stingray_PS225()) // no ZIP/DFA on ARM bank
	if _, ok := b.Cost("ZIP", 1024, 1); ok {
		t.Fatal("Stingray bank should lack ZIP")
	}
	if _, ok := b.Invoke("ZIP", 1024, 1, nil); ok {
		t.Fatal("invoke on missing unit should fail")
	}
}

func TestEchoServerValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	m := spec.LiquidIOII_CN2350()
	for _, n := range []int{0, 13, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cores=%d accepted", n)
				}
			}()
			NewEchoServer(eng, m, n)
		}()
	}
}

func TestMemoryAccessCostWorkingSet(t *testing.T) {
	m := spec.LiquidIOII_CN2350().Memory
	small := m.AccessCost(1<<20, 10)  // 1MB fits 4MB L2
	large := m.AccessCost(64<<20, 10) // 64MB spills to DRAM
	if small != 10*m.L2 || large != 10*m.DRAM {
		t.Fatalf("AccessCost: %v %v", small, large)
	}
	h := spec.IntelHost().Memory
	if h.AccessCost(1<<20, 1) != h.L3 {
		t.Fatal("host should charge L3 for cached sets")
	}
}
