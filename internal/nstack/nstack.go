// Package nstack is iPipe's shim customized networking stack (Appendix
// B.1, Table 4's Nstack API): simple Layer-2/Layer-3 protocol
// processing — packet encapsulation and decapsulation, checksum
// generation and verification — built over the packet-processing
// accelerators on the SmartNIC. Work queue entries (WQEs) carry a
// packet plus metadata through the NIC, mirroring the OCTEON firmware
// objects the LiquidIOII exposes.
//
// The wire formats are real: Ethernet II framing, IPv4 headers with a
// correct internet checksum, and UDP. When building a packet whose
// header and payload are not colocated, SerializeGather returns the
// segment list a DMA scatter-gather transfer would use (§2.2.5, I6).
package nstack

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Header sizes.
const (
	EthHeaderLen  = 14
	IPv4HeaderLen = 20
	UDPHeaderLen  = 8
	// HeaderOverhead is the full encapsulation cost of a UDP datagram.
	HeaderOverhead = EthHeaderLen + IPv4HeaderLen + UDPHeaderLen
)

// EtherTypeIPv4 is the only EtherType the shim stack speaks.
const EtherTypeIPv4 = 0x0800

// ProtoUDP is the IPv4 protocol number for UDP.
const ProtoUDP = 17

// Errors surfaced by decapsulation.
var (
	ErrTruncated   = errors.New("nstack: truncated packet")
	ErrEtherType   = errors.New("nstack: not IPv4")
	ErrBadVersion  = errors.New("nstack: bad IP version/IHL")
	ErrBadChecksum = errors.New("nstack: IPv4 header checksum mismatch")
	ErrNotUDP      = errors.New("nstack: not UDP")
	ErrBadLength   = errors.New("nstack: inconsistent lengths")
)

// MAC is an Ethernet address.
type MAC [6]byte

// String renders the address in colon-hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Addr is an endpoint: MAC, IPv4 address, UDP port.
type Addr struct {
	MAC  MAC
	IP   uint32
	Port uint16
}

// Headers describes a decapsulated packet.
type Headers struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	TTL              uint8
}

// WQE is a work queue entry: the unit the PKI hands to NIC cores
// (nstack_new_wqe / nstack_get_wqe in Table 4).
type WQE struct {
	// Packet is the full frame.
	Packet []byte
	// Headers are filled by Decap.
	Headers Headers
	// Payload aliases the UDP payload inside Packet after Decap.
	Payload []byte
	// Port is the ingress port index.
	Port int
}

// NewWQE wraps a frame (nstack_new_wqe).
func NewWQE(frame []byte, port int) *WQE {
	return &WQE{Packet: frame, Port: port}
}

// ipv4Checksum computes the internet checksum over a header.
func ipv4Checksum(h []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(h); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(h[i : i+2]))
	}
	if len(h)%2 == 1 {
		sum += uint32(h[len(h)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Encap builds a complete Ethernet/IPv4/UDP frame around payload
// (nstack_hdr_cap + header construction). The IPv4 checksum is real;
// UDP checksum is zero (legal for IPv4, and what the firmware's
// hardware checksum offload produces when disabled).
func Encap(src, dst Addr, payload []byte, ttl uint8) []byte {
	frame := make([]byte, HeaderOverhead+len(payload))
	// Ethernet.
	copy(frame[0:6], dst.MAC[:])
	copy(frame[6:12], src.MAC[:])
	binary.BigEndian.PutUint16(frame[12:14], EtherTypeIPv4)
	// IPv4.
	ip := frame[EthHeaderLen : EthHeaderLen+IPv4HeaderLen]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(IPv4HeaderLen+UDPHeaderLen+len(payload)))
	ip[8] = ttl
	ip[9] = ProtoUDP
	binary.BigEndian.PutUint32(ip[12:16], src.IP)
	binary.BigEndian.PutUint32(ip[16:20], dst.IP)
	binary.BigEndian.PutUint16(ip[10:12], 0)
	binary.BigEndian.PutUint16(ip[10:12], ipv4Checksum(ip))
	// UDP.
	udp := frame[EthHeaderLen+IPv4HeaderLen : EthHeaderLen+IPv4HeaderLen+UDPHeaderLen]
	binary.BigEndian.PutUint16(udp[0:2], src.Port)
	binary.BigEndian.PutUint16(udp[2:4], dst.Port)
	binary.BigEndian.PutUint16(udp[4:6], uint16(UDPHeaderLen+len(payload)))
	copy(frame[HeaderOverhead:], payload)
	return frame
}

// Decap parses and verifies a frame in place, filling the WQE's Headers
// and Payload (nstack_recv's parsing half).
func (w *WQE) Decap() error {
	f := w.Packet
	if len(f) < HeaderOverhead {
		return ErrTruncated
	}
	if binary.BigEndian.Uint16(f[12:14]) != EtherTypeIPv4 {
		return ErrEtherType
	}
	ip := f[EthHeaderLen:]
	if ip[0] != 0x45 {
		return ErrBadVersion
	}
	if ipv4Checksum(ip[:IPv4HeaderLen]) != 0 {
		return ErrBadChecksum
	}
	if ip[9] != ProtoUDP {
		return ErrNotUDP
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if totalLen < IPv4HeaderLen+UDPHeaderLen || EthHeaderLen+totalLen > len(f) {
		return ErrBadLength
	}
	udp := ip[IPv4HeaderLen:]
	udpLen := int(binary.BigEndian.Uint16(udp[4:6]))
	if udpLen < UDPHeaderLen || IPv4HeaderLen+udpLen > totalLen {
		return ErrBadLength
	}
	copy(w.Headers.DstMAC[:], f[0:6])
	copy(w.Headers.SrcMAC[:], f[6:12])
	w.Headers.SrcIP = binary.BigEndian.Uint32(ip[12:16])
	w.Headers.DstIP = binary.BigEndian.Uint32(ip[16:20])
	w.Headers.TTL = ip[8]
	w.Headers.SrcPort = binary.BigEndian.Uint16(udp[0:2])
	w.Headers.DstPort = binary.BigEndian.Uint16(udp[2:4])
	w.Payload = udp[UDPHeaderLen:udpLen][:udpLen-UDPHeaderLen]
	return nil
}

// Reverse swaps the frame's source and destination at every layer and
// recomputes the IPv4 checksum — the echo server's retransmit path.
func (w *WQE) Reverse() error {
	f := w.Packet
	if len(f) < HeaderOverhead {
		return ErrTruncated
	}
	for i := 0; i < 6; i++ {
		f[i], f[6+i] = f[6+i], f[i]
	}
	ip := f[EthHeaderLen:]
	for i := 0; i < 4; i++ {
		ip[12+i], ip[16+i] = ip[16+i], ip[12+i]
	}
	binary.BigEndian.PutUint16(ip[10:12], 0)
	binary.BigEndian.PutUint16(ip[10:12], ipv4Checksum(ip[:IPv4HeaderLen]))
	udp := ip[IPv4HeaderLen:]
	for i := 0; i < 2; i++ {
		udp[i], udp[2+i] = udp[2+i], udp[i]
	}
	return nil
}

// Segment is one piece of a scatter-gather transfer.
type Segment struct {
	Data []byte
}

// SerializeGather produces the DMA scatter-gather segment list for a
// packet whose header block and payload live at different addresses
// (§3.5: "when building a packet, it uses the DMA scatter-gather
// technique to combine the header and payload if they are not
// colocated"). The returned segments reference the inputs; no copy.
func SerializeGather(src, dst Addr, payload []byte, ttl uint8) []Segment {
	hdr := Encap(src, dst, nil, ttl)
	// Patch lengths for the detached payload.
	ip := hdr[EthHeaderLen:]
	binary.BigEndian.PutUint16(ip[2:4], uint16(IPv4HeaderLen+UDPHeaderLen+len(payload)))
	binary.BigEndian.PutUint16(ip[10:12], 0)
	binary.BigEndian.PutUint16(ip[10:12], ipv4Checksum(ip[:IPv4HeaderLen]))
	udp := ip[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(udp[4:6], uint16(UDPHeaderLen+len(payload)))
	return []Segment{{Data: hdr}, {Data: payload}}
}

// Coalesce joins segments into one frame (what the DMA engine's gather
// does on the wire side).
func Coalesce(segs []Segment) []byte {
	n := 0
	for _, s := range segs {
		n += len(s.Data)
	}
	out := make([]byte, 0, n)
	for _, s := range segs {
		out = append(out, s.Data...)
	}
	return out
}
