package nstack

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

var (
	srcAddr = Addr{MAC: MAC{0x02, 0, 0, 0, 0, 1}, IP: 0x0a000001, Port: 7000}
	dstAddr = Addr{MAC: MAC{0x02, 0, 0, 0, 0, 2}, IP: 0x0a000002, Port: 9000}
)

func TestEncapDecapRoundTrip(t *testing.T) {
	payload := []byte("hello smartnic")
	frame := Encap(srcAddr, dstAddr, payload, 64)
	if len(frame) != HeaderOverhead+len(payload) {
		t.Fatalf("frame len %d", len(frame))
	}
	w := NewWQE(frame, 0)
	if err := w.Decap(); err != nil {
		t.Fatal(err)
	}
	h := w.Headers
	if h.SrcIP != srcAddr.IP || h.DstIP != dstAddr.IP {
		t.Fatalf("IPs: %x → %x", h.SrcIP, h.DstIP)
	}
	if h.SrcPort != 7000 || h.DstPort != 9000 {
		t.Fatalf("ports: %d → %d", h.SrcPort, h.DstPort)
	}
	if h.SrcMAC != srcAddr.MAC || h.DstMAC != dstAddr.MAC {
		t.Fatalf("MACs: %v → %v", h.SrcMAC, h.DstMAC)
	}
	if h.TTL != 64 {
		t.Fatalf("TTL %d", h.TTL)
	}
	if !bytes.Equal(w.Payload, payload) {
		t.Fatalf("payload %q", w.Payload)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	frame := Encap(srcAddr, dstAddr, []byte("x"), 64)
	frame[EthHeaderLen+15] ^= 0x40 // flip a bit in the source IP
	w := NewWQE(frame, 0)
	if err := w.Decap(); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want checksum mismatch", err)
	}
}

func TestDecapRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"short":     make([]byte, 10),
		"not-ipv4":  make([]byte, HeaderOverhead+4),
		"truncated": Encap(srcAddr, dstAddr, make([]byte, 100), 64)[:30],
	}
	for name, frame := range cases {
		w := NewWQE(frame, 0)
		if err := w.Decap(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Wrong EtherType specifically.
	f := Encap(srcAddr, dstAddr, []byte("x"), 64)
	f[12], f[13] = 0x86, 0xdd // IPv6
	if err := NewWQE(f, 0).Decap(); !errors.Is(err, ErrEtherType) {
		t.Errorf("ethertype err = %v", err)
	}
	// Non-UDP protocol.
	f = Encap(srcAddr, dstAddr, []byte("x"), 64)
	ip := f[EthHeaderLen:]
	ip[9] = 6 // TCP
	// Fix the checksum for the modified header so the proto check fires.
	ip[10], ip[11] = 0, 0
	c := ipv4Checksum(ip[:IPv4HeaderLen])
	ip[10], ip[11] = byte(c>>8), byte(c)
	if err := NewWQE(f, 0).Decap(); !errors.Is(err, ErrNotUDP) {
		t.Errorf("proto err = %v", err)
	}
}

func TestInconsistentLengthsRejected(t *testing.T) {
	f := Encap(srcAddr, dstAddr, []byte("abcdef"), 64)
	ip := f[EthHeaderLen:]
	// Claim a total length beyond the frame.
	ip[2], ip[3] = 0x40, 0x00
	ip[10], ip[11] = 0, 0
	c := ipv4Checksum(ip[:IPv4HeaderLen])
	ip[10], ip[11] = byte(c>>8), byte(c)
	if err := NewWQE(f, 0).Decap(); !errors.Is(err, ErrBadLength) {
		t.Fatalf("err = %v, want bad length", err)
	}
}

func TestReverseEchoPath(t *testing.T) {
	frame := Encap(srcAddr, dstAddr, []byte("ping"), 64)
	w := NewWQE(frame, 0)
	if err := w.Reverse(); err != nil {
		t.Fatal(err)
	}
	if err := w.Decap(); err != nil {
		t.Fatalf("reversed frame invalid: %v (checksum must be recomputed)", err)
	}
	h := w.Headers
	if h.SrcIP != dstAddr.IP || h.DstIP != srcAddr.IP {
		t.Fatal("IPs not swapped")
	}
	if h.SrcPort != 9000 || h.DstPort != 7000 {
		t.Fatal("ports not swapped")
	}
	if h.SrcMAC != dstAddr.MAC || h.DstMAC != srcAddr.MAC {
		t.Fatal("MACs not swapped")
	}
	if string(w.Payload) != "ping" {
		t.Fatal("payload damaged by reverse")
	}
}

func TestScatterGatherEquivalence(t *testing.T) {
	payload := bytes.Repeat([]byte{0xab}, 300)
	segs := SerializeGather(srcAddr, dstAddr, payload, 32)
	if len(segs) != 2 {
		t.Fatalf("segments = %d", len(segs))
	}
	// Coalescing the gather list must equal a colocated Encap.
	joined := Coalesce(segs)
	direct := Encap(srcAddr, dstAddr, payload, 32)
	if !bytes.Equal(joined, direct) {
		t.Fatal("gathered frame differs from colocated encapsulation")
	}
	// No copy: the payload segment aliases the input.
	if &segs[1].Data[0] != &payload[0] {
		t.Fatal("gather copied the payload")
	}
}

// Property: Encap→Decap is the identity on (addresses, payload) for
// arbitrary payloads and TTLs.
func TestEncapDecapProperty(t *testing.T) {
	f := func(payload []byte, ttl uint8, sp, dp uint16, sip, dip uint32) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		src := Addr{MAC: MAC{1, 2, 3, 4, 5, 6}, IP: sip, Port: sp}
		dst := Addr{MAC: MAC{6, 5, 4, 3, 2, 1}, IP: dip, Port: dp}
		w := NewWQE(Encap(src, dst, payload, ttl), 0)
		if err := w.Decap(); err != nil {
			return false
		}
		return w.Headers.SrcIP == sip && w.Headers.DstIP == dip &&
			w.Headers.SrcPort == sp && w.Headers.DstPort == dp &&
			w.Headers.TTL == ttl && bytes.Equal(w.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: single-bit flips anywhere in the IPv4 header are caught.
func TestChecksumCatchesHeaderBitflips(t *testing.T) {
	f := func(bit uint16) bool {
		frame := Encap(srcAddr, dstAddr, []byte("payload"), 64)
		idx := EthHeaderLen + int(bit)%IPv4HeaderLen
		mask := byte(1 << (bit % 8))
		frame[idx] ^= mask
		w := NewWQE(frame, 0)
		err := w.Decap()
		// Flips in version/IHL trip ErrBadVersion; everything else must
		// trip the checksum (or length consistency).
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Fatalf("String = %s", m.String())
	}
}
