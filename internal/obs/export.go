// Exporters: Chrome trace_event JSON (loadable in chrome://tracing and
// https://ui.perfetto.dev) for the tracer, NDJSON for metric snapshots.
//
// Both writers are hand-rolled rather than reflection-based so output is
// byte-deterministic: field order is fixed, numbers are formatted through
// one code path, and events are stably sorted by (track, start time)
// before writing — which also guarantees monotonically ordered `ts`
// within every (pid, tid) lane, a property `make trace-smoke` checks.
package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"

	"repro/internal/sim"
)

// writeMicros appends a sim.Time as decimal microseconds with exact
// nanosecond precision ("12.345"); trace_event timestamps are in µs.
func writeMicros(b []byte, t sim.Time) []byte {
	ns := int64(t)
	if ns < 0 {
		ns = 0
	}
	b = strconv.AppendInt(b, ns/1000, 10)
	frac := ns % 1000
	if frac != 0 {
		b = append(b, '.')
		b = append(b, byte('0'+frac/100), byte('0'+(frac/10)%10), byte('0'+frac%10))
	}
	return b
}

// appendQuoted appends a JSON string literal.
func appendQuoted(b []byte, s string) []byte {
	return strconv.AppendQuote(b, s)
}

// WriteChromeTrace renders the buffered spans as a Chrome trace_event
// JSON object: {"traceEvents":[...],"displayTimeUnit":"ns"}.
//
// Layout: each group becomes a process (pid = group index + 1) named by
// a process_name metadata event; each track becomes a thread (tid =
// track index + 1) with thread_name and thread_sort_index metadata, so
// the viewer shows lanes in registration order. Spans are "X" (complete)
// events with ts/dur in microseconds and args {req, bytes, wait_us,
// shard, xc/xsrc/xseq}; instants are "i" events with thread scope.
//
// Shard merge: events are gathered from every partition sink in sink
// index order, then stably sorted by (track, start). Because each track
// is owned by exactly one partition (tracks belong to a node; a node
// lives on one partition), within-track order is the owning partition's
// deterministic emission order, so the merged artifact is byte-identical
// at any PDES worker count — the tracing analogue of the (at, src, seq)
// event merge.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var b []byte
	put := func() error {
		_, err := bw.Write(b)
		b = b[:0]
		return err
	}

	b = append(b, `{"displayTimeUnit":"ns","traceEvents":[`...)

	first := true
	sep := func() {
		if first {
			first = false
		} else {
			b = append(b, ',')
		}
		b = append(b, '\n')
	}

	if t != nil {
		// Metadata: process and thread names.
		for gi, gname := range t.groups {
			sep()
			b = append(b, `{"name":"process_name","ph":"M","pid":`...)
			b = strconv.AppendInt(b, int64(gi)+1, 10)
			b = append(b, `,"tid":0,"args":{"name":`...)
			b = appendQuoted(b, gname)
			b = append(b, `}}`...)
		}
		for ti, tk := range t.tracks {
			sep()
			b = append(b, `{"name":"thread_name","ph":"M","pid":`...)
			b = strconv.AppendInt(b, int64(tk.group)+1, 10)
			b = append(b, `,"tid":`...)
			b = strconv.AppendInt(b, int64(ti)+1, 10)
			b = append(b, `,"args":{"name":`...)
			b = appendQuoted(b, tk.name)
			b = append(b, `}},`...)
			b = append(b, "\n"...)
			b = append(b, `{"name":"thread_sort_index","ph":"M","pid":`...)
			b = strconv.AppendInt(b, int64(tk.group)+1, 10)
			b = append(b, `,"tid":`...)
			b = strconv.AppendInt(b, int64(ti)+1, 10)
			b = append(b, `,"args":{"sort_index":`...)
			b = strconv.AppendInt(b, int64(ti), 10)
			b = append(b, `}}`...)
			if err := put(); err != nil {
				return err
			}
		}

		// Concatenate the partition sinks in index order, then stable
		// sort by (track, start): per-lane monotonic timestamps, and a
		// deterministic merge (see the function comment).
		var allSpans []span
		var allInsts []instant
		for _, sk := range t.sinks {
			allSpans = append(allSpans, sk.spans...)
			allInsts = append(allInsts, sk.instants...)
		}
		spans := make([]int, len(allSpans))
		for i := range spans {
			spans[i] = i
		}
		sort.SliceStable(spans, func(i, j int) bool {
			a, c := &allSpans[spans[i]], &allSpans[spans[j]]
			if a.track != c.track {
				return a.track < c.track
			}
			return a.start < c.start
		})
		for _, si := range spans {
			sp := &allSpans[si]
			tk := t.tracks[sp.track]
			sep()
			b = append(b, `{"name":`...)
			b = appendQuoted(b, sp.name)
			b = append(b, `,"cat":"span","ph":"X","ts":`...)
			b = writeMicros(b, sp.start)
			b = append(b, `,"dur":`...)
			b = writeMicros(b, sp.end-sp.start)
			b = append(b, `,"pid":`...)
			b = strconv.AppendInt(b, int64(tk.group)+1, 10)
			b = append(b, `,"tid":`...)
			b = strconv.AppendInt(b, int64(sp.track)+1, 10)
			b = append(b, `,"args":{`...)
			afirst := true
			arg := func(k string) {
				if !afirst {
					b = append(b, ',')
				}
				afirst = false
				b = append(b, '"')
				b = append(b, k...)
				b = append(b, `":`...)
			}
			if sp.args.HasReq {
				arg("req")
				b = strconv.AppendUint(b, sp.args.Req, 10)
			}
			if sp.args.Bytes > 0 {
				arg("bytes")
				b = strconv.AppendInt(b, int64(sp.args.Bytes), 10)
			}
			if sp.args.Wait > 0 {
				arg("wait_us")
				b = writeMicros(b, sp.args.Wait)
			}
			if sp.args.HasShard {
				arg("shard")
				b = strconv.AppendInt(b, int64(sp.args.Shard), 10)
			}
			if sp.args.HasX {
				arg("xc")
				b = strconv.AppendInt(b, int64(sp.args.XC), 10)
				arg("xsrc")
				b = strconv.AppendInt(b, int64(sp.args.XSrc), 10)
				arg("xseq")
				b = strconv.AppendUint(b, sp.args.XSeq, 10)
			}
			b = append(b, `}}`...)
			if err := put(); err != nil {
				return err
			}
		}

		insts := make([]int, len(allInsts))
		for i := range insts {
			insts[i] = i
		}
		sort.SliceStable(insts, func(i, j int) bool {
			a, c := &allInsts[insts[i]], &allInsts[insts[j]]
			if a.track != c.track {
				return a.track < c.track
			}
			return a.at < c.at
		})
		for _, ii := range insts {
			in := &allInsts[ii]
			tk := t.tracks[in.track]
			sep()
			b = append(b, `{"name":`...)
			b = appendQuoted(b, in.name)
			b = append(b, `,"cat":"sched","ph":"i","s":"t","ts":`...)
			b = writeMicros(b, in.at)
			b = append(b, `,"pid":`...)
			b = strconv.AppendInt(b, int64(tk.group)+1, 10)
			b = append(b, `,"tid":`...)
			b = strconv.AppendInt(b, int64(in.track)+1, 10)
			b = append(b, `}`...)
			if err := put(); err != nil {
				return err
			}
		}
	}

	b = append(b, "\n]}\n"...)
	if err := put(); err != nil {
		return err
	}
	return bw.Flush()
}

// appendFloat formats a gauge value deterministically (shortest
// round-trip representation).
func appendFloat(b []byte, f float64) []byte {
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// WriteNDJSON renders the buffered metric snapshots, one JSON object per
// line:
//
//	{"t_us":100,"reg":"kv0","metrics":{"fcfs_cores":3,...,"nic_sojourn_us":{"count":12,...}}}
//
// Metric order within a record follows registration order; counters are
// integers, gauges floats, histograms nested objects with
// count/mean/p50/p99/max.
func (c *Collector) WriteNDJSON(w io.Writer) error {
	if c == nil {
		return nil
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var b []byte
	for _, s := range c.snaps {
		r := c.regs[s.reg]
		b = b[:0]
		b = append(b, `{"t_us":`...)
		b = writeMicros(b, s.at)
		b = append(b, `,"reg":`...)
		b = appendQuoted(b, r.name)
		b = append(b, `,"metrics":{`...)
		for i, v := range s.vals {
			if i >= len(r.items) {
				break
			}
			if i > 0 {
				b = append(b, ',')
			}
			b = appendQuoted(b, r.items[i].name)
			b = append(b, ':')
			switch r.items[i].kind {
			case kindCounter:
				b = strconv.AppendUint(b, v.u, 10)
			case kindGauge:
				b = appendFloat(b, v.f)
			case kindHist:
				b = append(b, `{"count":`...)
				b = strconv.AppendUint(b, v.h.count, 10)
				b = append(b, `,"mean":`...)
				b = appendFloat(b, v.h.mean)
				b = append(b, `,"p50":`...)
				b = appendFloat(b, v.h.p50)
				b = append(b, `,"p99":`...)
				b = appendFloat(b, v.h.p99)
				b = append(b, `,"max":`...)
				b = appendFloat(b, v.h.max)
				b = append(b, '}')
			}
		}
		b = append(b, "}}\n"...)
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}
