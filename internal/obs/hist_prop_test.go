package obs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// The histogram's quantile contract, checked property-style against the
// exact nearest-rank quantiles of stats.Sample: both use rank ceil(q·n)
// clamped to ≥ 1, and the histogram reports the upper bound of the
// bucket holding that rank's sample, so in the clamp-free range
//
//	exact ≤ Histogram.Quantile(q) ≤ exact · 2^(1/4)
//
// (4 buckets per octave = one quarter-octave of quantization error,
// never an underestimate).

// quantileBound is the histogram's worst-case overestimate factor.
var quantileBound = math.Pow(2, 0.25)

// randClampFree draws a log-uniform value in [2^-6, 2^13] — inside the
// bucket table (no bucket-0 or top-bucket clamping) with range to spare.
func randClampFree(rng *rand.Rand) float64 {
	return math.Pow(2, -6+rng.Float64()*19)
}

func TestHistogramQuantileMatchesExact(t *testing.T) {
	qs := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 1}
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(1000)
		h := &Histogram{}
		s := stats.NewSample()
		for i := 0; i < n; i++ {
			v := randClampFree(rng)
			h.Observe(v)
			s.Observe(v)
		}
		for _, q := range qs {
			exact := s.Quantile(q)
			got := h.Quantile(q)
			if got < exact*(1-1e-12) || got > exact*quantileBound*(1+1e-12) {
				t.Fatalf("seed %d n %d q %.2f: hist quantile %.9g outside [%.9g, %.9g]",
					seed, n, q, got, exact, exact*quantileBound)
			}
		}
		// Monotonic in q, like any quantile function.
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("seed %d: quantile not monotone: q=%.2f gives %.9g after %.9g", seed, q, v, prev)
			}
			prev = v
		}
	}
}

// TestHistogramBucketBoundaries checks the bucket indexing invariant
// directly: every clamp-free value lands in a bucket whose quarter-octave
// range [2^((b-base)/4), 2^((b+1-base)/4)) contains it (up to float
// rounding at the boundaries).
func TestHistogramBucketBoundaries(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			v := randClampFree(rng)
			b := histBucket(v)
			if b <= 0 || b >= histBuckets-1 {
				t.Fatalf("seed %d: value %.9g clamped to bucket %d — not clamp-free", seed, v, b)
			}
			lb := math.Pow(2, float64(b-histBucketBase)/4)
			ub := math.Pow(2, float64(b+1-histBucketBase)/4)
			if v < lb*(1-1e-9) || v > ub*(1+1e-9) {
				t.Fatalf("seed %d: value %.9g in bucket %d outside [%.9g, %.9g)", seed, v, b, lb, ub)
			}
		}
	}
	// The non-positive catch-all.
	if histBucket(0) != 0 || histBucket(-3) != 0 {
		t.Fatal("non-positive values must land in bucket 0")
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(4)
	// A single sample is every quantile: rank clamps to 1 at q=0 and
	// stays 1 at q=1; the reported value is the bucket bound capped at
	// the exact max.
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got < 4 || got > 4*quantileBound {
			t.Fatalf("single-sample quantile(%.1f) = %.9g, want within [4, %.9g]", q, got, 4*quantileBound)
		}
	}
	// Merge: exact fields stay exact.
	a, b := &Histogram{}, &Histogram{}
	a.Observe(1)
	a.Observe(2)
	b.Observe(8)
	a.Merge(b)
	a.Merge(nil)
	if a.Count() != 3 || a.Max() != 8 || math.Abs(a.Mean()-11.0/3) > 1e-12 {
		t.Fatalf("merge lost exact fields: count %d max %g mean %g", a.Count(), a.Max(), a.Mean())
	}
}
