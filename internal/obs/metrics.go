package obs

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Metric kinds within a Registry.
const (
	kindCounter uint8 = iota
	kindGauge
	kindHist
)

type regItem struct {
	name string
	kind uint8
	c    func() uint64
	g    func() float64
	h    *Histogram
}

// Registry is a named, ordered set of metrics belonging to one entity
// (typically one node). Metrics are sampled — counters and gauges are
// closures over live state — so registration costs nothing on the hot
// path; all cost is paid at snapshot time.
//
// Register all metrics before the first snapshot: snapshots pair values
// with items by index, so the item list must only grow append-only.
type Registry struct {
	name  string
	items []regItem
	seen  map[string]bool
}

// NewRegistry creates an empty registry. Prefer Collector.Registry,
// which also enrolls it for periodic snapshotting.
func NewRegistry(name string) *Registry {
	return &Registry{name: name, seen: map[string]bool{}}
}

// Name returns the registry's name (the "reg" field of NDJSON records).
func (r *Registry) Name() string { return r.name }

func (r *Registry) add(it regItem) {
	if r.seen[it.name] {
		panic(fmt.Sprintf("obs: duplicate metric %q in registry %q", it.name, r.name))
	}
	r.seen[it.name] = true
	r.items = append(r.items, it)
}

// Counter registers a monotonically-increasing value sampled via f.
func (r *Registry) Counter(name string, f func() uint64) {
	r.add(regItem{name: name, kind: kindCounter, c: f})
}

// Gauge registers an instantaneous value sampled via f.
func (r *Registry) Gauge(name string, f func() float64) {
	r.add(regItem{name: name, kind: kindGauge, g: f})
}

// Histogram registers and returns a new histogram under the given name.
// The caller feeds it with Observe; snapshots emit count/mean/p50/p99/max.
func (r *Registry) Histogram(name string) *Histogram {
	h := &Histogram{}
	r.add(regItem{name: name, kind: kindHist, h: h})
	return h
}

// histBuckets gives 4 buckets per octave across ~2^-10 .. 2^14, enough
// resolution for microsecond-scale latencies spanning ns..tens of ms.
const histBuckets = 96

// histBucketBase is the exponent offset: bucket i covers values v with
// floor(4*log2(v)) == i - histBucketBase.
const histBucketBase = 40

// Histogram is a log-bucketed streaming histogram (4 buckets/octave).
// Quantiles are approximate (bucket upper bound); count, mean and max
// are exact. It is deliberately fixed-size and allocation-free.
type Histogram struct {
	n       uint64
	sum     float64
	max     float64
	buckets [histBuckets]uint64
}

// Observe folds in one sample. Non-positive samples land in bucket 0.
func (h *Histogram) Observe(v float64) {
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[histBucket(v)]++
}

func histBucket(v float64) int {
	if v <= 0 {
		return 0
	}
	b := int(math.Floor(4*math.Log2(v))) + histBucketBase
	if b < 0 {
		return 0
	}
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the exact mean (0 before any samples).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the largest sample (0 before any samples).
func (h *Histogram) Max() float64 { return h.max }

// Merge folds other's samples into h at bucket granularity: count, sum
// and max stay exact; quantiles keep bucket resolution. Used by the
// report layer to aggregate per-node sojourn histograms into one
// per-experiment distribution. A nil other is a no-op.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
}

// Quantile returns the q-th quantile (q in [0,1]) as the upper bound of
// the bucket holding the q·n-th sample; 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return 0
			}
			// Upper bound of bucket i: 2^((i+1-base)/4).
			ub := math.Pow(2, float64(i+1-histBucketBase)/4)
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// histSnap is a histogram's frozen summary inside a snapshot.
type histSnap struct {
	count          uint64
	mean, p50, p99 float64
	max            float64
}

// value is one metric's frozen value inside a snapshot.
type value struct {
	u uint64
	f float64
	h histSnap
}

type snapshot struct {
	at   sim.Time
	reg  int
	vals []value
}

// Collector schedules periodic snapshots of its registries on a
// simulation engine and buffers the records for NDJSON export.
//
// The tick is self-limiting: after sampling, it reschedules only while
// the engine still has other pending events, so an Engine.Run() drains
// normally once the simulation itself goes quiet. Sampling is read-only
// — it never mutates simulation state or consumes randomness — so
// enabling metrics cannot change simulation results.
//
// On a partitioned (PDES) simulation the collector must not schedule
// engine events at all: a sampling event would change the conservative
// window structure (the safe horizon T is the earliest pending event)
// and with it the deterministic (at, src, seq) merge of cross-partition
// traffic. AttachGroup switches the collector to window mode, where the
// round coordinator drives sampling at window boundaries instead — see
// windowFlush.
type Collector struct {
	eng      *sim.Engine
	interval sim.Time
	regs     []*Registry
	snaps    []snapshot
	started  bool

	// group is non-nil in window mode; next is the earliest un-sampled
	// grid point (multiples of interval, first at interval — the same
	// grid the classic tick walks).
	group *sim.Group
	next  sim.Time
}

// DefaultMetricsInterval is the default snapshot spacing (sim time).
const DefaultMetricsInterval = 100 * sim.Microsecond

// NewCollector creates a collector sampling every interval of virtual
// time (0 uses DefaultMetricsInterval).
func NewCollector(eng *sim.Engine, interval sim.Time) *Collector {
	if interval <= 0 {
		interval = DefaultMetricsInterval
	}
	return &Collector{eng: eng, interval: interval}
}

// Interval returns the snapshot spacing.
func (c *Collector) Interval() sim.Time { return c.interval }

// Registry creates a registry enrolled with this collector. Names should
// be unique; duplicate names produce distinguishable NDJSON records only
// by order, so don't.
func (c *Collector) Registry(name string) *Registry {
	r := NewRegistry(name)
	c.regs = append(c.regs, r)
	return r
}

// Enroll adds an externally-created registry.
func (c *Collector) Enroll(r *Registry) { c.regs = append(c.regs, r) }

// AttachGroup switches the collector to window mode for a partitioned
// simulation: sampling is driven by the group's round coordinator at
// conservative-window boundaries, and Start schedules nothing on the
// engine (observation must not perturb the window structure). No-op for
// a nil or single-partition group, which run the classic engine path.
// Attach once, before Start and before the group runs.
func (c *Collector) AttachGroup(g *sim.Group) {
	if c == nil || g == nil || g.Partitions() <= 1 || c.group != nil {
		return
	}
	c.group = g
	g.OnRound(c.windowFlush)
}

// Start schedules the periodic sampling. Idempotent. In window mode
// (AttachGroup) it only arms the grid; the group coordinator does the
// sampling.
func (c *Collector) Start() {
	if c == nil || c.started {
		return
	}
	c.started = true
	if c.group != nil {
		c.next = c.interval
		return
	}
	c.eng.After(c.interval, c.tick)
}

// windowFlush is the window-mode sampler, invoked by the round
// coordinator after every partition has executed its events strictly
// before limit. If one or more grid points fell inside the window just
// completed, it records one snapshot stamped at the latest such point:
// every record then reflects a consistent cross-partition cut at a
// window boundary — samples never straddle a conservative window (the
// same boundary-flush shape as sim.Engine's per-window executed-counter
// flush). Values are read here, between rounds, so no lock is needed.
func (c *Collector) windowFlush(limit sim.Time) {
	if !c.started || c.next >= limit {
		return
	}
	at := c.next + ((limit-1-c.next)/c.interval)*c.interval
	c.snapshotAt(at)
	c.next = at + c.interval
}

func (c *Collector) tick() {
	c.Snapshot()
	// Reschedule only while the simulation itself still has work; the
	// collector must not keep an otherwise-drained engine alive forever.
	if c.eng.Pending() == 0 {
		return
	}
	c.eng.After(c.interval, c.tick)
}

// Snapshot samples every registry once, immediately, stamped with the
// engine's current virtual time. The CLIs call it after the run for a
// final end-state record.
func (c *Collector) Snapshot() {
	if c == nil {
		return
	}
	c.snapshotAt(c.eng.Now())
}

func (c *Collector) snapshotAt(now sim.Time) {
	for ri, r := range c.regs {
		vals := make([]value, len(r.items))
		for i, it := range r.items {
			switch it.kind {
			case kindCounter:
				vals[i].u = it.c()
			case kindGauge:
				vals[i].f = it.g()
			case kindHist:
				vals[i].h = histSnap{
					count: it.h.Count(),
					mean:  it.h.Mean(),
					p50:   it.h.Quantile(0.50),
					p99:   it.h.Quantile(0.99),
					max:   it.h.Max(),
				}
			}
		}
		c.snaps = append(c.snaps, snapshot{at: now, reg: ri, vals: vals})
	}
}

// Snapshots reports the number of buffered snapshot records.
func (c *Collector) Snapshots() int {
	if c == nil {
		return 0
	}
	return len(c.snaps)
}

// Watermarks returns the maximum sampled value per gauge name across
// every registry and buffered snapshot — the high-water marks of queue
// depths, core counts and backlogs over the run. The report layer
// aggregates these per experiment.
func (c *Collector) Watermarks() map[string]float64 {
	if c == nil {
		return nil
	}
	out := map[string]float64{}
	for _, s := range c.snaps {
		r := c.regs[s.reg]
		for i, v := range s.vals {
			if i >= len(r.items) || r.items[i].kind != kindGauge {
				continue
			}
			name := r.items[i].name
			if cur, ok := out[name]; !ok || v.f > cur {
				out[name] = v.f
			}
		}
	}
	return out
}

// CounterTotals samples every counter once, now, and returns the values
// summed per metric name across registries — the end-of-run totals the
// report layer folds into per-experiment counters.
func (c *Collector) CounterTotals() map[string]uint64 {
	if c == nil {
		return nil
	}
	out := map[string]uint64{}
	for _, r := range c.regs {
		for _, it := range r.items {
			if it.kind == kindCounter {
				out[it.name] += it.c()
			}
		}
	}
	return out
}

// MergedHistogram returns a fresh histogram holding the bucket-level
// merge of every registered histogram with the given name (one per
// node, typically), or nil if none exist.
func (c *Collector) MergedHistogram(name string) *Histogram {
	if c == nil {
		return nil
	}
	var out *Histogram
	for _, r := range c.regs {
		for _, it := range r.items {
			if it.kind == kindHist && it.name == name {
				if out == nil {
					out = &Histogram{}
				}
				out.Merge(it.h)
			}
		}
	}
	return out
}
