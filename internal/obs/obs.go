// Package obs is the observability layer of the reproduction: a
// span-based request tracer and a metrics registry for the simulated
// iPipe substrates (links, NIC cores, scheduler, DMA engines, host
// cores).
//
// The paper's analysis (§2 characterization, §3.2.3 scheduler behaviour,
// Figures 11–15) hinges on *where time goes* as a request crosses
// link → NIC cores → scheduler → DMA → host. The tracer records that
// journey as spans keyed on virtual time (sim.Time, never wall clock),
// so traces are as deterministic as the simulation itself: identical
// seeds produce byte-identical trace files.
//
// Design rules:
//
//   - Disabled means free. Every emit method is nil-safe: a nil *Tracer
//     returns immediately, allocating nothing. Instrumentation sites
//     call unconditionally and pay one predictable branch.
//   - Observation never perturbs. The tracer schedules no events and
//     touches no PRNG; simulation results with tracing on are identical
//     to results with it off (enforced by tests).
//   - Export is deterministic. Track and group numbering follow
//     registration order; events are stably sorted by (track, start)
//     before writing, so every track's timestamps are monotonic.
//
// Track layout: groups map to Chrome trace "processes" (one per node,
// plus one per client port), tracks to "threads" (one per NIC core,
// host core, link direction, DMA engine, accelerator unit, plus a
// "sched" lane for instantaneous scheduler decisions).
package obs

import (
	"sort"

	"repro/internal/sim"
)

// GroupID identifies a trace group (a Chrome trace "process"; one per
// simulated node).
type GroupID int32

// TrackID identifies one horizontal lane of the trace (a Chrome trace
// "thread": one core, one link direction, one DMA engine...).
type TrackID int32

// NoGroup/NoTrack are returned by registration on a nil tracer; emitting
// against them is a no-op.
const (
	NoGroup GroupID = -1
	NoTrack TrackID = -1
)

// Args carries optional span annotations. It is passed by value so the
// disabled path allocates nothing.
type Args struct {
	// Req is the request-correlation id (the message/packet FlowID);
	// only emitted when HasReq is set, since 0 is a valid id.
	Req    uint64
	HasReq bool
	// Bytes annotates the payload size; emitted when > 0.
	Bytes int
	// Wait annotates queueing delay spent before the span started
	// (enqueue → service); emitted when > 0.
	Wait sim.Time
	// Shard attributes the span to a scale-out shard; only emitted when
	// HasShard is set, since shard 0 is a valid id.
	Shard    int32
	HasShard bool
	// XC/XSrc/XSeq annotate a cross-partition handoff with its
	// deterministic merge stamp: the tracing domain (one per partitioned
	// cluster sharing the tracer), the source partition, and the
	// source-local sequence from sim.Group.Inject. The pair of spans
	// carrying the same (XC, XSrc, XSeq) are the two halves of one
	// crossing; only emitted when HasX is set.
	XC   int32
	XSrc int32
	XSeq uint64
	HasX bool
}

// span is one completed occupancy interval on a track.
type span struct {
	track TrackID
	name  string
	start sim.Time
	end   sim.Time
	args  Args
}

// instant is a point event on a track (scheduler decisions: mode
// switches, migrations, autoscaling moves).
type instant struct {
	track TrackID
	name  string
	at    sim.Time
}

type trackInfo struct {
	group GroupID
	name  string
}

// Tracer buffers spans in memory until exported. Buffering is unbounded
// by design — traces are an offline debugging artifact, bounded by the
// (finite) simulated window, exactly like Chrome's own tracing.
//
// Under the parallel engine the tracer is sharded: each PDES partition
// emits into its own Sink (a private buffer — no cross-partition locks
// on the emit path), and export merges the shards deterministically
// (see WriteChromeTrace). Registration (Group/NewTrack/Sink/NewDomain)
// is coordinator-only: call it while building the topology, never from
// concurrent window execution. Classic single-engine runs use the
// tracer's own Span/Instant, which delegate to sink 0.
//
// The zero value is not useful; construct with NewTracer. A nil *Tracer
// is the disabled tracer: every method no-ops.
type Tracer struct {
	groups  []string
	gindex  map[string]GroupID
	tracks  []trackInfo
	sinks   []*Sink
	domains int32
}

// NewTracer returns an empty, enabled tracer.
func NewTracer() *Tracer {
	return &Tracer{gindex: map[string]GroupID{}}
}

// Sink is one partition's private span buffer. Emitting through a Sink
// takes no locks and shares no mutable state with other sinks, so
// partitions can trace concurrently inside PDES windows; determinism of
// the merged artifact follows from each track being owned by exactly
// one partition (see WriteChromeTrace). A nil *Sink — from a nil tracer
// — no-ops every method, preserving the zero-cost disabled path.
type Sink struct {
	t        *Tracer
	spans    []span
	instants []instant
}

// Sink returns partition part's emit buffer, creating buffers up
// through part on first use. Coordinator-only (it grows the sink
// table); call during topology build. A nil tracer returns a nil Sink.
func (t *Tracer) Sink(part int) *Sink {
	if t == nil || part < 0 {
		return nil
	}
	for len(t.sinks) <= part {
		t.sinks = append(t.sinks, &Sink{t: t})
	}
	return t.sinks[part]
}

// NewDomain allocates a tracing-domain id for cross-partition handoff
// stamps. One partitioned cluster = one domain: (domain, src partition,
// Inject seq) is then unique across every cluster sharing this tracer
// (a bench sweep traces many clusters into one file, each cluster's
// Inject seqs restarting at 1).
func (t *Tracer) NewDomain() int32 {
	if t == nil {
		return -1
	}
	t.domains++
	return t.domains - 1
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Group registers (or finds) a trace group by name. Groups render as
// processes in chrome://tracing / Perfetto; use one per node.
func (t *Tracer) Group(name string) GroupID {
	if t == nil {
		return NoGroup
	}
	if g, ok := t.gindex[name]; ok {
		return g
	}
	g := GroupID(len(t.groups))
	t.groups = append(t.groups, name)
	t.gindex[name] = g
	return g
}

// NewTrack registers a lane within a group. Lane order in the viewer
// follows registration order.
func (t *Tracer) NewTrack(g GroupID, name string) TrackID {
	if t == nil || g < 0 {
		return NoTrack
	}
	id := TrackID(len(t.tracks))
	t.tracks = append(t.tracks, trackInfo{group: g, name: name})
	return id
}

// Span records a completed occupancy [start, end] on a track, through
// sink 0 (the classic single-engine path). Calls on a nil tracer or
// against NoTrack are free.
func (t *Tracer) Span(tr TrackID, name string, start, end sim.Time, a Args) {
	if t == nil {
		return
	}
	t.Sink(0).Span(tr, name, start, end, a)
}

// Instant records a point event on a track (a scheduler decision, a
// migration phase boundary), through sink 0.
func (t *Tracer) Instant(tr TrackID, name string, at sim.Time) {
	if t == nil {
		return
	}
	t.Sink(0).Instant(tr, name, at)
}

// Spans reports the number of buffered spans across all sinks
// (instants excluded).
func (t *Tracer) Spans() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, s := range t.sinks {
		n += len(s.spans)
	}
	return n
}

// Group delegates track-group registration to the parent tracer, so a
// substrate holding only a Sink can still name its lanes.
// Coordinator-only, like Tracer.Group.
func (s *Sink) Group(name string) GroupID {
	if s == nil {
		return NoGroup
	}
	return s.t.Group(name)
}

// NewTrack delegates lane registration to the parent tracer.
// Coordinator-only, like Tracer.NewTrack.
func (s *Sink) NewTrack(g GroupID, name string) TrackID {
	if s == nil {
		return NoTrack
	}
	return s.t.NewTrack(g, name)
}

// Span records a completed occupancy [start, end] into this sink's
// private buffer. Safe to call from the partition's window goroutine.
func (s *Sink) Span(tr TrackID, name string, start, end sim.Time, a Args) {
	if s == nil || tr < 0 {
		return
	}
	if end < start {
		end = start
	}
	s.spans = append(s.spans, span{track: tr, name: name, start: start, end: end, args: a})
}

// Instant records a point event into this sink's private buffer.
func (s *Sink) Instant(tr TrackID, name string, at sim.Time) {
	if s == nil || tr < 0 {
		return
	}
	s.instants = append(s.instants, instant{track: tr, name: name, at: at})
}

// Tracks reports the number of registered tracks.
func (t *Tracer) Tracks() int {
	if t == nil {
		return 0
	}
	return len(t.tracks)
}

// EachInstant invokes fn for every buffered instant with its owning
// group's name, in deterministic merged order: ascending time, ties in
// sink index then emission order. The report layer builds its
// mode-switch/migration timelines from this.
func (t *Tracer) EachInstant(fn func(group, name string, at sim.Time)) {
	if t == nil {
		return
	}
	var all []instant
	for _, s := range t.sinks {
		all = append(all, s.instants...)
	}
	idx := make([]int, len(all))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return all[idx[i]].at < all[idx[j]].at })
	for _, i := range idx {
		in := &all[i]
		fn(t.groups[t.tracks[in.track].group], in.name, in.at)
	}
}
