// Package obs is the observability layer of the reproduction: a
// span-based request tracer and a metrics registry for the simulated
// iPipe substrates (links, NIC cores, scheduler, DMA engines, host
// cores).
//
// The paper's analysis (§2 characterization, §3.2.3 scheduler behaviour,
// Figures 11–15) hinges on *where time goes* as a request crosses
// link → NIC cores → scheduler → DMA → host. The tracer records that
// journey as spans keyed on virtual time (sim.Time, never wall clock),
// so traces are as deterministic as the simulation itself: identical
// seeds produce byte-identical trace files.
//
// Design rules:
//
//   - Disabled means free. Every emit method is nil-safe: a nil *Tracer
//     returns immediately, allocating nothing. Instrumentation sites
//     call unconditionally and pay one predictable branch.
//   - Observation never perturbs. The tracer schedules no events and
//     touches no PRNG; simulation results with tracing on are identical
//     to results with it off (enforced by tests).
//   - Export is deterministic. Track and group numbering follow
//     registration order; events are stably sorted by (track, start)
//     before writing, so every track's timestamps are monotonic.
//
// Track layout: groups map to Chrome trace "processes" (one per node,
// plus one per client port), tracks to "threads" (one per NIC core,
// host core, link direction, DMA engine, accelerator unit, plus a
// "sched" lane for instantaneous scheduler decisions).
package obs

import (
	"repro/internal/sim"
)

// GroupID identifies a trace group (a Chrome trace "process"; one per
// simulated node).
type GroupID int32

// TrackID identifies one horizontal lane of the trace (a Chrome trace
// "thread": one core, one link direction, one DMA engine...).
type TrackID int32

// NoGroup/NoTrack are returned by registration on a nil tracer; emitting
// against them is a no-op.
const (
	NoGroup GroupID = -1
	NoTrack TrackID = -1
)

// Args carries optional span annotations. It is passed by value so the
// disabled path allocates nothing.
type Args struct {
	// Req is the request-correlation id (the message/packet FlowID);
	// only emitted when HasReq is set, since 0 is a valid id.
	Req    uint64
	HasReq bool
	// Bytes annotates the payload size; emitted when > 0.
	Bytes int
	// Wait annotates queueing delay spent before the span started
	// (enqueue → service); emitted when > 0.
	Wait sim.Time
	// Shard attributes the span to a scale-out shard; only emitted when
	// HasShard is set, since shard 0 is a valid id.
	Shard    int32
	HasShard bool
}

// span is one completed occupancy interval on a track.
type span struct {
	track TrackID
	name  string
	start sim.Time
	end   sim.Time
	args  Args
}

// instant is a point event on a track (scheduler decisions: mode
// switches, migrations, autoscaling moves).
type instant struct {
	track TrackID
	name  string
	at    sim.Time
}

type trackInfo struct {
	group GroupID
	name  string
}

// Tracer buffers spans in memory until exported. Buffering is unbounded
// by design — traces are an offline debugging artifact, bounded by the
// (finite) simulated window, exactly like Chrome's own tracing.
//
// The zero value is not useful; construct with NewTracer. A nil *Tracer
// is the disabled tracer: every method no-ops.
type Tracer struct {
	groups  []string
	gindex  map[string]GroupID
	tracks  []trackInfo
	spans   []span
	instants []instant
}

// NewTracer returns an empty, enabled tracer.
func NewTracer() *Tracer {
	return &Tracer{gindex: map[string]GroupID{}}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Group registers (or finds) a trace group by name. Groups render as
// processes in chrome://tracing / Perfetto; use one per node.
func (t *Tracer) Group(name string) GroupID {
	if t == nil {
		return NoGroup
	}
	if g, ok := t.gindex[name]; ok {
		return g
	}
	g := GroupID(len(t.groups))
	t.groups = append(t.groups, name)
	t.gindex[name] = g
	return g
}

// NewTrack registers a lane within a group. Lane order in the viewer
// follows registration order.
func (t *Tracer) NewTrack(g GroupID, name string) TrackID {
	if t == nil || g < 0 {
		return NoTrack
	}
	id := TrackID(len(t.tracks))
	t.tracks = append(t.tracks, trackInfo{group: g, name: name})
	return id
}

// Span records a completed occupancy [start, end] on a track. Calls on a
// nil tracer or against NoTrack are free.
func (t *Tracer) Span(tr TrackID, name string, start, end sim.Time, a Args) {
	if t == nil || tr < 0 {
		return
	}
	if end < start {
		end = start
	}
	t.spans = append(t.spans, span{track: tr, name: name, start: start, end: end, args: a})
}

// Instant records a point event on a track (a scheduler decision, a
// migration phase boundary).
func (t *Tracer) Instant(tr TrackID, name string, at sim.Time) {
	if t == nil || tr < 0 {
		return
	}
	t.instants = append(t.instants, instant{track: tr, name: name, at: at})
}

// Spans reports the number of buffered spans (instants excluded).
func (t *Tracer) Spans() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Tracks reports the number of registered tracks.
func (t *Tracer) Tracks() int {
	if t == nil {
		return 0
	}
	return len(t.tracks)
}
