package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// buildSampleTrace fills a tracer the way the runtime does: groups per
// node, tracks per substrate, spans and instants in simulation order.
func buildSampleTrace(t *Tracer) {
	g := t.Group("kv0")
	link := t.NewTrack(g, "link rx")
	core0 := t.NewTrack(g, "nic core 0")
	sched := t.NewTrack(g, "sched")
	g1 := t.Group("cli")
	tx := t.NewTrack(g1, "link tx")

	t.Span(tx, "frame", 0, 410, Args{Req: 7, HasReq: true, Bytes: 512})
	t.Span(link, "frame", 1300, 1710, Args{Req: 7, HasReq: true, Bytes: 512})
	t.Span(core0, "kv-leader", 1800, 4200, Args{Req: 7, HasReq: true, Wait: 90})
	t.Span(core0, "kv-leader", 4200, 6100, Args{Req: 8, HasReq: true})
	t.Instant(sched, "downgrade kv-leader", 5000)
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer()
	buildSampleTrace(tr)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	st, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("validate: %v\n%s", err, buf.String())
	}
	if st.Spans != 4 || st.Instants != 1 {
		t.Fatalf("got %d spans %d instants, want 4/1", st.Spans, st.Instants)
	}
	if st.Processes != 2 {
		t.Fatalf("got %d processes, want 2", st.Processes)
	}
	for _, want := range []string{`"kv0"`, `"cli"`, `"nic core 0"`, `"req":7`, `"bytes":512`, `"wait_us":0.090`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	render := func() []byte {
		tr := NewTracer()
		buildSampleTrace(tr)
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("identical tracer contents rendered differently")
	}
}

func TestValidateCatchesDisorder(t *testing.T) {
	bad := `{"traceEvents":[
		{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"n"}},
		{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"t"}},
		{"name":"b","cat":"span","ph":"X","ts":50,"dur":1,"pid":1,"tid":1,"args":{}},
		{"name":"a","cat":"span","ph":"X","ts":10,"dur":1,"pid":1,"tid":1,"args":{}}
	]}`
	if _, err := ValidateChromeTrace(strings.NewReader(bad)); err == nil {
		t.Fatal("out-of-order ts not rejected")
	}
	if _, err := ValidateChromeTrace(strings.NewReader("{nope")); err == nil {
		t.Fatal("malformed JSON not rejected")
	}
	unnamed := `{"traceEvents":[{"name":"a","ph":"X","ts":1,"dur":1,"pid":9,"tid":1,"args":{}}]}`
	if _, err := ValidateChromeTrace(strings.NewReader(unnamed)); err == nil {
		t.Fatal("unnamed pid not rejected")
	}
}

// TestDisabledTracerZeroAlloc is the overhead guard the issue requires:
// the disabled (nil) tracer path must not allocate, ever — it is on the
// hot path of every simulated packet and actor execution.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	g := tr.Group("n")
	track := tr.NewTrack(g, "t")
	if g != NoGroup || track != NoTrack {
		t.Fatalf("nil tracer registration: got %d/%d", g, track)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Span(track, "x", 0, 10, Args{Req: 1, HasReq: true, Bytes: 64, Wait: 2})
		tr.Instant(track, "y", 5)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestDisabledCollectorSafe(t *testing.T) {
	var c *Collector
	c.Start()
	c.Snapshot()
	if c.Snapshots() != 0 {
		t.Fatal("nil collector recorded snapshots")
	}
	if err := c.WriteNDJSON(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil collector write: %v", err)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	track := tr.NewTrack(tr.Group("n"), "t")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(track, "x", sim.Time(i), sim.Time(i+10), Args{Req: uint64(i), HasReq: true})
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer()
	track := tr.NewTrack(tr.Group("n"), "t")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(track, "x", sim.Time(i), sim.Time(i+10), Args{Req: uint64(i), HasReq: true})
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if m := h.Mean(); m != 50.5 {
		t.Fatalf("mean %v, want 50.5", m)
	}
	if h.Max() != 100 {
		t.Fatalf("max %v", h.Max())
	}
	p50 := h.Quantile(0.5)
	if p50 < 40 || p50 > 70 {
		t.Fatalf("p50 %v implausible for uniform 1..100", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 90 || p99 > 100 {
		t.Fatalf("p99 %v implausible for uniform 1..100", p99)
	}
	if p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
	// Non-positive samples must not panic and land in the lowest bucket.
	h.Observe(0)
	h.Observe(-3)
	if h.Count() != 102 {
		t.Fatal("non-positive samples dropped")
	}
}

func TestCollectorSnapshotsAndNDJSON(t *testing.T) {
	eng := sim.NewEngine(1)
	col := NewCollector(eng, 10*sim.Microsecond)
	reg := col.Registry("node0")
	var completed uint64
	backlog := 3.5
	reg.Counter("completed", func() uint64 { return completed })
	reg.Gauge("backlog", func() float64 { return backlog })
	hist := reg.Histogram("lat_us")

	// Simulated activity for 50µs; the collector must sample alongside
	// and stop once the engine drains.
	for i := 1; i <= 5; i++ {
		i := i
		eng.At(sim.Time(i)*10*sim.Microsecond, func() {
			completed++
			hist.Observe(float64(i))
		})
	}
	col.Start()
	eng.Run()

	if col.Snapshots() < 5 {
		t.Fatalf("got %d snapshots, want >= 5", col.Snapshots())
	}
	col.Snapshot() // final end-state record
	var buf bytes.Buffer
	if err := col.WriteNDJSON(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	st, err := ValidateMetricsNDJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("validate: %v\n%s", err, buf.String())
	}
	if st.Records != col.Snapshots() || st.Registries != 1 {
		t.Fatalf("stats %+v, want %d records / 1 registry", st, col.Snapshots())
	}
	if !strings.Contains(buf.String(), `"completed":5`) {
		t.Errorf("final record missing completed=5:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"lat_us":{"count":5`) {
		t.Errorf("histogram record missing:\n%s", buf.String())
	}
}

func TestCollectorDoesNotKeepEngineAlive(t *testing.T) {
	eng := sim.NewEngine(1)
	col := NewCollector(eng, sim.Microsecond)
	col.Registry("r").Gauge("g", func() float64 { return 0 })
	eng.At(5*sim.Microsecond, func() {})
	col.Start()
	done := make(chan struct{})
	go func() { eng.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("engine did not drain with collector running")
	}
}
