// The run-report layer: a versioned, machine-readable summary of an
// observed experiment suite — per-experiment latency histograms,
// queue-depth watermarks, scheduler-decision timelines, handoff
// counters, and execution cost — plus the comparison gate that turns
// two such artifacts into a pass/fail perf-trajectory check
// (`ipipe-bench -report -baseline BENCH_obs.json`, `make obs-gate`).
//
// Two kinds of field live in a report, gated differently:
//
//   - Deterministic fields (ops, sojourn quantiles, events, counters,
//     watermarks, rounds/handoffs) are pure functions of (seed, code).
//     The gate compares them at a tight relative tolerance: ANY drift
//     means behavior changed, and the baseline must be regenerated
//     intentionally (make obs-baseline), never silently absorbed.
//   - Cost fields (allocs, alloc bytes) wobble with the runtime; the
//     gate applies a multiplicative band and only fails on growth.
//     Wall time is recorded but not gated by default — CI machines are
//     too noisy for it.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// ReportVersion is the current artifact schema version. The gate
// refuses to compare artifacts across versions.
const ReportVersion = 1

// Report is the top-level run-summary artifact (BENCH_obs.json).
type Report struct {
	Version     int                 `json:"version"`
	Seed        uint64              `json:"seed"`
	Quick       bool                `json:"quick"`
	GoMaxProcs  int                 `json:"gomaxprocs"`
	Note        string              `json:"note,omitempty"`
	Experiments []ExperimentSummary `json:"experiments"`
}

// HistSummary is a histogram's frozen five-number summary.
type HistSummary struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
}

// SummarizeHistogram freezes a histogram into its report form. A nil
// histogram summarizes to the zero value.
func SummarizeHistogram(h *Histogram) HistSummary {
	if h == nil {
		return HistSummary{}
	}
	return HistSummary{
		Count:  h.Count(),
		MeanUs: h.Mean(),
		P50Us:  h.Quantile(0.50),
		P99Us:  h.Quantile(0.99),
		MaxUs:  h.Max(),
	}
}

// TimelineEvent is one scheduler decision (mode switch, migration,
// autoscale move) on an experiment's timeline.
type TimelineEvent struct {
	TUs   float64 `json:"t_us"`
	Group string  `json:"group"`
	Name  string  `json:"name"`
}

// ExperimentSummary is one experiment's entry in a Report.
type ExperimentSummary struct {
	ID string `json:"id"`
	// Ops is the completed-operation total (NIC + host) across every
	// cluster the experiment built.
	Ops uint64 `json:"ops"`
	// SojournUs summarizes the merged per-node request-sojourn
	// histograms.
	SojournUs HistSummary `json:"sojourn_us"`
	// Watermarks holds the maximum sampled value per gauge name (queue
	// backlogs, core counts) across the run.
	Watermarks map[string]float64 `json:"watermarks,omitempty"`
	// Timeline holds the first scheduler decisions (bounded; see
	// TimelineTotal for the full count).
	Timeline      []TimelineEvent `json:"timeline,omitempty"`
	TimelineTotal int             `json:"timeline_total"`
	// Counters holds the end-of-run counter totals per metric name.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Handoffs/Rounds aggregate PDES cross-partition crossings and
	// synchronization windows over the experiment's partitioned
	// clusters (0 for classic experiments).
	Handoffs uint64 `json:"handoffs"`
	Rounds   uint64 `json:"rounds"`
	// Execution cost. WallMS and EventsPerSec vary run to run; Events
	// is deterministic; Allocs/AllocBytes are near-deterministic and
	// gated with a band.
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Allocs       uint64  `json:"allocs"`
	AllocBytes   uint64  `json:"alloc_bytes"`
}

// WriteReport renders the artifact as indented JSON. encoding/json
// sorts map keys, so the bytes are deterministic for identical
// contents.
func (r *Report) WriteReport(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses an artifact and checks its schema version.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	if r.Version != ReportVersion {
		return nil, fmt.Errorf("report: schema version %d, this build reads %d (regenerate the baseline)",
			r.Version, ReportVersion)
	}
	return &r, nil
}

// GateOptions tunes CompareReports.
type GateOptions struct {
	// RelTol is the relative tolerance for deterministic metrics
	// (default 1e-6 — effectively exact, allowing only float
	// formatting slack).
	RelTol float64
	// AllocFactor fails the gate when current allocs exceed baseline ×
	// factor (default 2; growth-only, shrinking is never a regression).
	AllocFactor float64
	// GateWall also bands wall time by WallFactor (default off: CI
	// machines are too noisy).
	GateWall   bool
	WallFactor float64
}

func (o GateOptions) relTol() float64 {
	if o.RelTol <= 0 {
		return 1e-6
	}
	return o.RelTol
}

func (o GateOptions) allocFactor() float64 {
	if o.AllocFactor <= 1 {
		return 2
	}
	return o.AllocFactor
}

func (o GateOptions) wallFactor() float64 {
	if o.WallFactor <= 1 {
		return 3
	}
	return o.WallFactor
}

// CompareReports checks current against baseline and returns one line
// per regression (empty = gate passes). Deterministic fields must match
// within RelTol in either direction — drift means behavior changed and
// the baseline needs an intentional regen; cost fields fail only on
// growth beyond their band. Experiments present in the baseline but
// missing from the current run fail; extra current experiments are
// ignored (they have no baseline to regress against).
func CompareReports(baseline, current *Report, opt GateOptions) []string {
	var bad []string
	fail := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }

	if baseline.Version != current.Version {
		fail("schema version: baseline %d vs current %d", baseline.Version, current.Version)
		return bad
	}
	if baseline.Quick != current.Quick || baseline.Seed != current.Seed {
		fail("run shape: baseline (quick=%v seed=%d) vs current (quick=%v seed=%d) — not comparable",
			baseline.Quick, baseline.Seed, current.Quick, current.Seed)
		return bad
	}

	cur := map[string]*ExperimentSummary{}
	for i := range current.Experiments {
		cur[current.Experiments[i].ID] = &current.Experiments[i]
	}
	for i := range baseline.Experiments {
		b := &baseline.Experiments[i]
		c, ok := cur[b.ID]
		if !ok {
			fail("%s: in baseline but missing from current run", b.ID)
			continue
		}
		det := func(metric string, want, got float64) {
			if !within(want, got, opt.relTol()) {
				fail("%s: %s drifted: baseline %g vs current %g", b.ID, metric, want, got)
			}
		}
		det("ops", float64(b.Ops), float64(c.Ops))
		det("events", float64(b.Events), float64(c.Events))
		det("sojourn count", float64(b.SojournUs.Count), float64(c.SojournUs.Count))
		det("sojourn p50_us", b.SojournUs.P50Us, c.SojournUs.P50Us)
		det("sojourn p99_us", b.SojournUs.P99Us, c.SojournUs.P99Us)
		det("handoffs", float64(b.Handoffs), float64(c.Handoffs))
		det("rounds", float64(b.Rounds), float64(c.Rounds))
		det("timeline events", float64(b.TimelineTotal), float64(c.TimelineTotal))
		for _, name := range sortedKeys(b.Counters) {
			det("counter "+name, float64(b.Counters[name]), float64(c.Counters[name]))
		}
		for _, name := range sortedKeys(b.Watermarks) {
			det("watermark "+name, b.Watermarks[name], c.Watermarks[name])
		}
		if band := float64(b.Allocs) * opt.allocFactor(); b.Allocs > 0 && float64(c.Allocs) > band {
			fail("%s: allocs regressed: baseline %d, current %d (> %.0f)", b.ID, b.Allocs, c.Allocs, band)
		}
		if band := float64(b.AllocBytes) * opt.allocFactor(); b.AllocBytes > 0 && float64(c.AllocBytes) > band {
			fail("%s: alloc bytes regressed: baseline %d, current %d (> %.0f)", b.ID, b.AllocBytes, c.AllocBytes, band)
		}
		if opt.GateWall {
			if band := b.WallMS * opt.wallFactor(); b.WallMS > 0 && c.WallMS > band {
				fail("%s: wall time regressed: baseline %.1fms, current %.1fms (> %.1fms)",
					b.ID, b.WallMS, c.WallMS, band)
			}
		}
	}
	return bad
}

// within reports |a-b| ≤ tol·max(|a|,|b|) (with exact equality always
// passing, including 0 vs 0).
func within(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
