package obs

import (
	"bytes"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Version:    ReportVersion,
		Seed:       1,
		Quick:      true,
		GoMaxProcs: 4,
		Experiments: []ExperimentSummary{{
			ID:  "fig17",
			Ops: 11572,
			SojournUs: HistSummary{
				Count: 11572, MeanUs: 1.24, P50Us: 0.84, P99Us: 2.83, MaxUs: 4.59,
			},
			Watermarks:    map[string]float64{"host_backlog": 3, "host_cores_used": 2.64},
			Counters:      map[string]uint64{"host_completed": 11572},
			TimelineTotal: 7,
			Handoffs:      0,
			Rounds:        0,
			WallMS:        68.2,
			Events:        81411,
			EventsPerSec:  1.19e6,
			Allocs:        259545,
			AllocBytes:    30219024,
		}, {
			ID:        "scale-nodes",
			Ops:       2733,
			SojournUs: HistSummary{Count: 2733, MeanUs: 2.076, P50Us: 2.076, P99Us: 2.076, MaxUs: 2.076},
			Counters:  map[string]uint64{"nic_completed": 2733},
			Handoffs:  9556,
			Rounds:    528,
			Events:    61000,
			Allocs:    100000,
		}},
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := sampleReport()
	var buf bytes.Buffer
	if err := rep.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if bad := CompareReports(rep, back, GateOptions{}); len(bad) != 0 {
		t.Fatalf("round-tripped report fails its own gate: %v", bad)
	}
	// Determinism of the bytes themselves.
	var buf2 bytes.Buffer
	if err := rep.WriteReport(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("identical report marshalled to different bytes")
	}
	// Version skew is rejected at read time.
	skew := strings.Replace(buf.String(), `"version": 1`, `"version": 999`, 1)
	if _, err := ReadReport(strings.NewReader(skew)); err == nil {
		t.Fatal("ReadReport accepted a future schema version")
	}
}

// expectFail asserts the gate reports at least one regression whose text
// mentions want.
func expectFail(t *testing.T, base, cur *Report, want string) {
	t.Helper()
	bad := CompareReports(base, cur, GateOptions{})
	if len(bad) == 0 {
		t.Fatalf("gate passed, want a regression mentioning %q", want)
	}
	for _, line := range bad {
		if strings.Contains(line, want) {
			return
		}
	}
	t.Fatalf("no regression mentions %q; got %v", want, bad)
}

// TestCompareReportsSyntheticRegressions is the -baseline contract: a
// run identical to the baseline passes, and each class of injected
// drift fails with an explanatory line.
func TestCompareReportsSyntheticRegressions(t *testing.T) {
	base := sampleReport()

	if bad := CompareReports(base, sampleReport(), GateOptions{}); len(bad) != 0 {
		t.Fatalf("identical reports must pass the gate, got %v", bad)
	}

	cur := sampleReport()
	cur.Experiments[0].Ops += 13 // deterministic drift, either direction
	expectFail(t, base, cur, "ops")

	cur = sampleReport()
	cur.Experiments[0].SojournUs.P99Us *= 0.9 // improvement still fails: behavior changed
	expectFail(t, base, cur, "p99")

	cur = sampleReport()
	cur.Experiments[1].Handoffs--
	expectFail(t, base, cur, "handoffs")

	cur = sampleReport()
	cur.Experiments[0].Counters["host_completed"] += 1
	expectFail(t, base, cur, "host_completed")

	cur = sampleReport()
	cur.Experiments[0].Watermarks["host_backlog"] = 11
	expectFail(t, base, cur, "host_backlog")

	cur = sampleReport()
	cur.Experiments[0].Allocs *= 3 // past the 2x band
	expectFail(t, base, cur, "allocs")

	cur = sampleReport()
	cur.Experiments[0].Allocs = cur.Experiments[0].Allocs * 3 / 2 // inside the band
	if bad := CompareReports(base, cur, GateOptions{}); len(bad) != 0 {
		t.Fatalf("1.5x allocs is inside the default 2x band, got %v", bad)
	}
	cur.Experiments[0].Allocs = base.Experiments[0].Allocs / 2 // shrinking never fails
	if bad := CompareReports(base, cur, GateOptions{}); len(bad) != 0 {
		t.Fatalf("fewer allocs must pass, got %v", bad)
	}

	cur = sampleReport()
	cur.Experiments = cur.Experiments[:1] // baseline experiment missing
	expectFail(t, base, cur, "missing")

	cur = sampleReport()
	cur.Seed = 2 // different run shape is not comparable
	expectFail(t, base, cur, "not comparable")

	cur = sampleReport()
	cur.Experiments[0].WallMS = base.Experiments[0].WallMS * 10
	if bad := CompareReports(base, cur, GateOptions{}); len(bad) != 0 {
		t.Fatalf("wall time is not gated by default, got %v", bad)
	}
	expectFail2 := CompareReports(base, cur, GateOptions{GateWall: true})
	if len(expectFail2) == 0 {
		t.Fatal("GateWall must fail a 10x wall regression")
	}
}
