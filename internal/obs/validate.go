// Validation of emitted artifacts, used by `make trace-smoke` (via
// cmd/ipipe-trace) and by tests: a trace file must be well-formed
// trace_event JSON with monotonically ordered timestamps per track, and
// a metrics file must be well-formed NDJSON.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent mirrors the subset of the trace_event schema we emit.
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	Pid  int64           `json:"pid"`
	Tid  int64           `json:"tid"`
	Args json.RawMessage `json:"args"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// TraceStats summarizes a validated trace.
type TraceStats struct {
	Events    int // all events, metadata included
	Spans     int // "X" complete events
	Instants  int // "i" events
	Processes int // distinct pids with a process_name
	Tracks    int // distinct (pid, tid) lanes carrying spans or instants
}

// ValidateChromeTrace parses a trace_event JSON document and checks the
// invariants the exporter promises:
//
//   - well-formed JSON with a traceEvents array,
//   - every event has a known phase (M, X, or i) and pid/tid,
//   - "X" events have non-negative ts and dur,
//   - per (pid, tid) lane, "X" timestamps are monotonically
//     non-decreasing (spans on one track never go back in time),
//   - every pid carrying spans has a process_name, and every lane a
//     thread_name.
func ValidateChromeTrace(r io.Reader) (TraceStats, error) {
	var st TraceStats
	var doc chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return st, fmt.Errorf("trace: not valid JSON: %w", err)
	}

	type lane struct{ pid, tid int64 }
	lastTs := map[lane]float64{}
	namedProc := map[int64]bool{}
	namedLane := map[lane]bool{}
	usedProc := map[int64]bool{}
	usedLane := map[lane]bool{}

	for i, ev := range doc.TraceEvents {
		st.Events++
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				namedProc[ev.Pid] = true
			case "thread_name":
				namedLane[lane{ev.Pid, ev.Tid}] = true
			case "thread_sort_index":
				// layout hint only
			default:
				return st, fmt.Errorf("trace: event %d: unknown metadata %q", i, ev.Name)
			}
		case "X":
			st.Spans++
			if ev.Ts < 0 || ev.Dur < 0 {
				return st, fmt.Errorf("trace: event %d (%q): negative ts/dur", i, ev.Name)
			}
			l := lane{ev.Pid, ev.Tid}
			if prev, ok := lastTs[l]; ok && ev.Ts < prev {
				return st, fmt.Errorf("trace: event %d (%q): ts %.3f before %.3f on pid=%d tid=%d",
					i, ev.Name, ev.Ts, prev, ev.Pid, ev.Tid)
			}
			lastTs[l] = ev.Ts
			usedProc[ev.Pid] = true
			usedLane[l] = true
		case "i":
			st.Instants++
			if ev.Ts < 0 {
				return st, fmt.Errorf("trace: event %d (%q): negative ts", i, ev.Name)
			}
			usedProc[ev.Pid] = true
			usedLane[lane{ev.Pid, ev.Tid}] = true
		default:
			return st, fmt.Errorf("trace: event %d (%q): unknown phase %q", i, ev.Name, ev.Ph)
		}
	}
	for pid := range usedProc {
		if !namedProc[pid] {
			return st, fmt.Errorf("trace: pid %d carries events but has no process_name", pid)
		}
	}
	for l := range usedLane {
		if !namedLane[l] {
			return st, fmt.Errorf("trace: pid %d tid %d carries events but has no thread_name", l.pid, l.tid)
		}
	}
	st.Processes = len(namedProc)
	st.Tracks = len(usedLane)
	return st, nil
}

// MetricsStats summarizes a validated metrics file.
type MetricsStats struct {
	Records    int
	Registries int
}

// ValidateMetricsNDJSON checks a metric-snapshot file: every line is a
// JSON object with a non-negative t_us, a reg name, and a metrics
// object, and per registry t_us is monotonically non-decreasing.
func ValidateMetricsNDJSON(r io.Reader) (MetricsStats, error) {
	var st MetricsStats
	last := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec struct {
			TUs     float64                    `json:"t_us"`
			Reg     string                     `json:"reg"`
			Metrics map[string]json.RawMessage `json:"metrics"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return st, fmt.Errorf("metrics: line %d: %w", line, err)
		}
		if rec.TUs < 0 {
			return st, fmt.Errorf("metrics: line %d: negative t_us", line)
		}
		if rec.Reg == "" {
			return st, fmt.Errorf("metrics: line %d: missing reg", line)
		}
		if rec.Metrics == nil {
			return st, fmt.Errorf("metrics: line %d: missing metrics object", line)
		}
		if prev, ok := last[rec.Reg]; ok && rec.TUs < prev {
			return st, fmt.Errorf("metrics: line %d: t_us %.3f before %.3f for reg %q",
				line, rec.TUs, prev, rec.Reg)
		}
		last[rec.Reg] = rec.TUs
		st.Records++
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("metrics: %w", err)
	}
	st.Registries = len(last)
	return st, nil
}
