// Validation of emitted artifacts, used by `make trace-smoke` (via
// cmd/ipipe-trace) and by tests: a trace file must be well-formed
// trace_event JSON with monotonically ordered timestamps per track, and
// a metrics file must be well-formed NDJSON.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// chromeEvent mirrors the subset of the trace_event schema we emit.
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	Pid  int64           `json:"pid"`
	Tid  int64           `json:"tid"`
	Args json.RawMessage `json:"args"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// TraceStats summarizes a validated trace.
type TraceStats struct {
	Events    int // all events, metadata included
	Spans     int // "X" complete events
	Instants  int // "i" events
	Processes int // distinct pids with a process_name
	Tracks    int // distinct (pid, tid) lanes carrying spans or instants
	Handoffs  int // paired cross-partition handoff crossings
	// HandoffsInFlight counts "handoff out" spans whose arrival lies
	// beyond the last completed event — packets still on the wire when
	// the run window closed, legitimately missing their "in" half.
	HandoffsInFlight int
}

// xstamp is a cross-partition handoff identity: tracing domain, source
// partition, and source-local Inject sequence.
type xstamp struct {
	xc, xsrc int64
	xseq     uint64
}

// xhalf is one side of a crossing as seen in the artifact.
type xhalf struct {
	seen bool
	ts   float64 // "out": departure; "in": arrival
	dur  float64
}

// ValidateChromeTrace parses a trace_event JSON document and checks the
// invariants the exporter promises:
//
//   - well-formed JSON with a traceEvents array,
//   - every event has a known phase (M, X, or i) and pid/tid,
//   - "X" events have non-negative ts and dur,
//   - per (pid, tid) lane, "X" timestamps are monotonically
//     non-decreasing, and "i" timestamps likewise (spans and instants
//     on one track never go back in time),
//   - every pid carrying spans has a process_name, and every lane a
//     thread_name,
//   - merged partitioned artifacts pair up: every (xc, xsrc, xseq)
//     handoff stamp appears exactly once as a "handoff out" span and
//     once as a "handoff in" span (no duplicate stamps across partition
//     shards), and the in side starts where the out side ends. An out
//     half whose arrival lies beyond the last completed event is exempt
//     (the packet was in flight when the run window closed — under the
//     conservative engine every partition has advanced past any earlier
//     arrival, so a missing in there would have been recorded).
func ValidateChromeTrace(r io.Reader) (TraceStats, error) {
	var st TraceStats
	var doc chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return st, fmt.Errorf("trace: not valid JSON: %w", err)
	}

	type lane struct{ pid, tid int64 }
	lastTs := map[lane]float64{}
	lastInst := map[lane]float64{}
	namedProc := map[int64]bool{}
	namedLane := map[lane]bool{}
	usedProc := map[int64]bool{}
	usedLane := map[lane]bool{}
	outs := map[xstamp]xhalf{}
	ins := map[xstamp]xhalf{}

	// maxCompleted tracks the latest time any event finished. "handoff
	// out" is the only prospective span (emitted at departure, ending at
	// a future arrival), so it contributes its start, not its end.
	var maxCompleted float64

	for i, ev := range doc.TraceEvents {
		st.Events++
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				namedProc[ev.Pid] = true
			case "thread_name":
				namedLane[lane{ev.Pid, ev.Tid}] = true
			case "thread_sort_index":
				// layout hint only
			default:
				return st, fmt.Errorf("trace: event %d: unknown metadata %q", i, ev.Name)
			}
		case "X":
			st.Spans++
			if ev.Ts < 0 || ev.Dur < 0 {
				return st, fmt.Errorf("trace: event %d (%q): negative ts/dur", i, ev.Name)
			}
			l := lane{ev.Pid, ev.Tid}
			if prev, ok := lastTs[l]; ok && ev.Ts < prev {
				return st, fmt.Errorf("trace: event %d (%q): ts %.3f before %.3f on pid=%d tid=%d",
					i, ev.Name, ev.Ts, prev, ev.Pid, ev.Tid)
			}
			lastTs[l] = ev.Ts
			usedProc[ev.Pid] = true
			usedLane[l] = true
			if end := ev.Ts + ev.Dur; ev.Name == "handoff out" {
				if ev.Ts > maxCompleted {
					maxCompleted = ev.Ts
				}
			} else if end > maxCompleted {
				maxCompleted = end
			}
			if stamp, ok, err := handoffStamp(ev); err != nil {
				return st, fmt.Errorf("trace: event %d (%q): %w", i, ev.Name, err)
			} else if ok {
				var side map[xstamp]xhalf
				switch ev.Name {
				case "handoff out":
					side = outs
				case "handoff in":
					side = ins
				default:
					return st, fmt.Errorf("trace: event %d: handoff stamp on non-handoff span %q", i, ev.Name)
				}
				if side[stamp].seen {
					return st, fmt.Errorf("trace: event %d: duplicate %q stamp (xc=%d xsrc=%d xseq=%d)",
						i, ev.Name, stamp.xc, stamp.xsrc, stamp.xseq)
				}
				side[stamp] = xhalf{seen: true, ts: ev.Ts, dur: ev.Dur}
			}
		case "i":
			st.Instants++
			if ev.Ts < 0 {
				return st, fmt.Errorf("trace: event %d (%q): negative ts", i, ev.Name)
			}
			l := lane{ev.Pid, ev.Tid}
			if prev, ok := lastInst[l]; ok && ev.Ts < prev {
				return st, fmt.Errorf("trace: event %d (%q): instant ts %.3f before %.3f on pid=%d tid=%d",
					i, ev.Name, ev.Ts, prev, ev.Pid, ev.Tid)
			}
			lastInst[l] = ev.Ts
			usedProc[ev.Pid] = true
			usedLane[l] = true
			if ev.Ts > maxCompleted {
				maxCompleted = ev.Ts
			}
		default:
			return st, fmt.Errorf("trace: event %d (%q): unknown phase %q", i, ev.Name, ev.Ph)
		}
	}
	for pid := range usedProc {
		if !namedProc[pid] {
			return st, fmt.Errorf("trace: pid %d carries events but has no process_name", pid)
		}
	}
	for l := range usedLane {
		if !namedLane[l] {
			return st, fmt.Errorf("trace: pid %d tid %d carries events but has no thread_name", l.pid, l.tid)
		}
	}
	st.Processes = len(namedProc)
	st.Tracks = len(usedLane)

	// Pair the handoff halves: the merged artifact must contain both
	// sides of every crossing, and the in side must start at the ns the
	// out side ends (compare at nanosecond grain — ts values are decimal
	// microseconds that are not exactly representable in binary floats).
	for stamp, out := range outs {
		in, ok := ins[stamp]
		if !ok {
			if nanos(out.ts+out.dur) > nanos(maxCompleted) {
				st.HandoffsInFlight++
				continue
			}
			return st, fmt.Errorf("trace: handoff out (xc=%d xsrc=%d xseq=%d) has no matching handoff in",
				stamp.xc, stamp.xsrc, stamp.xseq)
		}
		if nanos(out.ts+out.dur) != nanos(in.ts) {
			return st, fmt.Errorf("trace: handoff (xc=%d xsrc=%d xseq=%d): out ends at %.3fµs but in starts at %.3fµs",
				stamp.xc, stamp.xsrc, stamp.xseq, out.ts+out.dur, in.ts)
		}
		st.Handoffs++
	}
	for stamp := range ins {
		if !outs[stamp].seen {
			return st, fmt.Errorf("trace: handoff in (xc=%d xsrc=%d xseq=%d) has no matching handoff out",
				stamp.xc, stamp.xsrc, stamp.xseq)
		}
	}
	return st, nil
}

// nanos rounds a microsecond timestamp to integer nanoseconds.
func nanos(us float64) int64 { return int64(math.Round(us * 1000)) }

// handoffStamp extracts the (xc, xsrc, xseq) annotation from a span's
// args, reporting whether one is present. A partial stamp is an error.
func handoffStamp(ev chromeEvent) (xstamp, bool, error) {
	if len(ev.Args) == 0 {
		return xstamp{}, false, nil
	}
	var a struct {
		XC   *int64  `json:"xc"`
		XSrc *int64  `json:"xsrc"`
		XSeq *uint64 `json:"xseq"`
	}
	if err := json.Unmarshal(ev.Args, &a); err != nil {
		return xstamp{}, false, fmt.Errorf("bad args: %w", err)
	}
	if a.XC == nil && a.XSrc == nil && a.XSeq == nil {
		return xstamp{}, false, nil
	}
	if a.XC == nil || a.XSrc == nil || a.XSeq == nil {
		return xstamp{}, false, fmt.Errorf("partial handoff stamp (need xc, xsrc, xseq)")
	}
	return xstamp{xc: *a.XC, xsrc: *a.XSrc, xseq: *a.XSeq}, true, nil
}

// MetricsStats summarizes a validated metrics file.
type MetricsStats struct {
	Records    int
	Registries int
}

// ValidateMetricsNDJSON checks a metric-snapshot file: every line is a
// JSON object with a non-negative t_us, a reg name, and a metrics
// object, and per registry t_us is monotonically non-decreasing.
func ValidateMetricsNDJSON(r io.Reader) (MetricsStats, error) {
	var st MetricsStats
	last := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec struct {
			TUs     float64                    `json:"t_us"`
			Reg     string                     `json:"reg"`
			Metrics map[string]json.RawMessage `json:"metrics"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return st, fmt.Errorf("metrics: line %d: %w", line, err)
		}
		if rec.TUs < 0 {
			return st, fmt.Errorf("metrics: line %d: negative t_us", line)
		}
		if rec.Reg == "" {
			return st, fmt.Errorf("metrics: line %d: missing reg", line)
		}
		if rec.Metrics == nil {
			return st, fmt.Errorf("metrics: line %d: missing metrics object", line)
		}
		if prev, ok := last[rec.Reg]; ok && rec.TUs < prev {
			return st, fmt.Errorf("metrics: line %d: t_us %.3f before %.3f for reg %q",
				line, rec.TUs, prev, rec.Reg)
		}
		last[rec.Reg] = rec.TUs
		st.Records++
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("metrics: %w", err)
	}
	st.Registries = len(last)
	return st, nil
}
