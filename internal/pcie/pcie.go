// Package pcie models the SmartNIC↔host communication path of §2.2.5:
// DMA engines issuing blocking and non-blocking reads/writes over PCIe
// Gen3 x8, scatter-gather aggregation, and the RDMA-verb interface that
// off-path cards expose instead of native DMA. Latency and throughput
// follow the curves of Figures 7–10 via the spec.DMAProfile parameters.
//
// Two costs matter per operation and are deliberately separate:
//
//   - the issuing core's occupancy (how long a NIC core is tied up), and
//   - the engine occupancy (how long the shared DMA engine moves bytes).
//
// Blocking operations tie up the core for the full completion latency;
// non-blocking ones only for the command-insertion cost (I6), which is
// why the iPipe message rings use batched non-blocking ops.
package pcie

import (
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spec"
)

// IssueOccupancy is the core-side cost of inserting one non-blocking DMA
// command into the engine's command queue. It is below the observed
// non-blocking op latency (spec.DMAProfile.NonBlockingIssue) because
// command insertion pipelines: Figure 8's ≈10Mops/core small-payload
// non-blocking rate implies ≈0.1µs of core time per issue.
const IssueOccupancy = 100 * sim.Nanosecond

// Engine is one DMA engine instance (SmartNICs have several; iPipe uses
// one per I/O channel). It serializes transfers FIFO.
type Engine struct {
	eng     *sim.Engine
	prof    spec.DMAProfile
	station *sim.Station

	// Counters for experiment reporting.
	Reads, Writes   uint64
	BytesRead       uint64
	BytesWritten    uint64
	GatherTransfers uint64

	sink  *obs.Sink
	track obs.TrackID
}

// New creates a DMA engine with the given profile.
func New(eng *sim.Engine, prof spec.DMAProfile) *Engine {
	return &Engine{eng: eng, prof: prof, station: sim.NewStation(eng, 1), track: obs.NoTrack}
}

// EnableTracing records the engine's byte-transfer occupancy as a "dma"
// lane in the given trace group, emitting through the owning
// partition's sink (sink 0 on classic clusters).
func (e *Engine) EnableTracing(sk *obs.Sink, group obs.GroupID) {
	if sk == nil {
		return
	}
	e.sink = sk
	e.track = sk.NewTrack(group, "dma")
}

// Profile returns the engine's cost profile.
func (e *Engine) Profile() spec.DMAProfile { return e.prof }

// op submits a transfer and fires done when the completion word would be
// observed. latency is the unloaded completion latency for this op; the
// engine occupancy is the byte-transfer time, so contention adds
// queueing on top of the unloaded latency. name labels the trace span.
func (e *Engine) op(name string, bytes int, latency sim.Time, done func()) {
	transfer := e.prof.TransferTime(bytes)
	overhead := latency - transfer
	if overhead < 0 {
		overhead = 0
	}
	e.station.Submit(&sim.Job{
		Service: transfer,
		Done: func(enq, started, fin sim.Time) {
			e.sink.Span(e.track, name, started, fin,
				obs.Args{Bytes: bytes, Wait: started - enq})
			if done == nil {
				return
			}
			e.eng.After(overhead, done)
		},
	})
}

// ReadBlocking starts a host-memory read. done fires when the completion
// word arrives; the caller (a core model) should stay busy until then.
// It returns the unloaded completion latency so callers can charge core
// occupancy without waiting for the callback.
func (e *Engine) ReadBlocking(bytes int, done func()) sim.Time {
	e.Reads++
	e.BytesRead += uint64(bytes)
	lat := e.prof.ReadLatency(bytes)
	e.op("read", bytes, lat, done)
	return lat
}

// WriteBlocking starts a host-memory write; see ReadBlocking.
func (e *Engine) WriteBlocking(bytes int, done func()) sim.Time {
	e.Writes++
	e.BytesWritten += uint64(bytes)
	lat := e.prof.WriteLatency(bytes)
	e.op("write", bytes, lat, done)
	return lat
}

// ReadAsync issues a non-blocking read: the core pays only
// IssueOccupancy; done fires when the data lands. The returned value is
// the core-side cost.
func (e *Engine) ReadAsync(bytes int, done func()) sim.Time {
	e.Reads++
	e.BytesRead += uint64(bytes)
	e.op("read async", bytes, e.prof.ReadLatency(bytes), done)
	return IssueOccupancy
}

// WriteAsync issues a non-blocking write; see ReadAsync.
func (e *Engine) WriteAsync(bytes int, done func()) sim.Time {
	e.Writes++
	e.BytesWritten += uint64(bytes)
	e.op("write async", bytes, e.prof.WriteLatency(bytes), done)
	return IssueOccupancy
}

// WriteGather aggregates several segments into one PCIe transfer using
// DMA scatter-gather (I6: "aggregate transfers into large PCIe
// messages"). One fixed protocol cost covers all segments.
func (e *Engine) WriteGather(segments []int, done func()) sim.Time {
	total := 0
	for _, s := range segments {
		total += s
	}
	e.GatherTransfers++
	return e.WriteAsync(total, done)
}

// InFlight reports queued-plus-active transfers, used by backpressure
// logic in the message rings.
func (e *Engine) InFlight() int { return e.station.QueueLen() + e.station.InService() }

// RDMA wraps an Engine with verb-flavoured naming for off-path cards.
// One-sided verbs behave like blocking DMA ops with the RDMA profile's
// higher software overheads (Figures 9–10).
type RDMA struct{ *Engine }

// NewRDMA creates an RDMA interface; the profile should have RDMA set.
func NewRDMA(eng *sim.Engine, prof spec.DMAProfile) RDMA {
	return RDMA{New(eng, prof)}
}

// ReadOneSided performs a one-sided RDMA read.
func (r RDMA) ReadOneSided(bytes int, done func()) sim.Time {
	return r.ReadBlocking(bytes, done)
}

// WriteOneSided performs a one-sided RDMA write.
func (r RDMA) WriteOneSided(bytes int, done func()) sim.Time {
	return r.WriteBlocking(bytes, done)
}
