package pcie

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/spec"
)

func liquidEngine() (*sim.Engine, *Engine) {
	eng := sim.NewEngine(1)
	return eng, New(eng, spec.LiquidIOII_CN2350().DMA)
}

func TestBlockingReadLatencyUnloaded(t *testing.T) {
	eng, dma := liquidEngine()
	var done sim.Time
	want := dma.ReadBlocking(64, func() { done = eng.Now() })
	eng.Run()
	if done != want {
		t.Fatalf("completion at %v, want %v", done, want)
	}
	// Figure 7: small blocking reads land near 1µs.
	if want < sim.Micros(0.9) || want > sim.Micros(1.3) {
		t.Fatalf("64B blocking read latency %v implausible", want)
	}
}

func TestBlockingLatencyGrowsWithPayload(t *testing.T) {
	_, dma := liquidEngine()
	small := dma.Profile().ReadLatency(4)
	big := dma.Profile().ReadLatency(2048)
	if big <= small {
		t.Fatal("blocking latency must grow with payload")
	}
	// Figure 7: ≈3.6µs at 2KB.
	if big < sim.Micros(3.0) || big > sim.Micros(4.2) {
		t.Fatalf("2KB blocking read = %v, want ≈3.6µs", big)
	}
}

func TestNonBlockingCoreCostIsFlat(t *testing.T) {
	_, dma := liquidEngine()
	c1 := dma.WriteAsync(4, nil)
	c2 := dma.WriteAsync(2048, nil)
	if c1 != c2 || c1 != IssueOccupancy {
		t.Fatalf("async issue costs %v/%v, want flat %v", c1, c2, IssueOccupancy)
	}
}

func TestEngineContentionQueues(t *testing.T) {
	eng, dma := liquidEngine()
	var first, second sim.Time
	dma.WriteBlocking(2048, func() { first = eng.Now() })
	dma.WriteBlocking(2048, func() { second = eng.Now() })
	eng.Run()
	if second <= first {
		t.Fatal("second transfer should finish after first")
	}
	// The second waits one engine transfer time behind the first.
	gap := second - first
	want := dma.Profile().TransferTime(2048)
	if gap != want {
		t.Fatalf("queueing gap %v, want %v", gap, want)
	}
}

// TestFig8ThroughputShape: non-blocking small-payload throughput is
// core-issue-bound (≈10Mops); large payloads become engine-bandwidth
// bound; blocking is latency-bound and much lower.
func TestFig8ThroughputShape(t *testing.T) {
	_, dma := liquidEngine()
	smallAsync := 1.0 / IssueOccupancy.Seconds()
	largeAsync := 1.0 / dma.Profile().TransferTime(2048).Seconds()
	blocking64 := 1.0 / dma.Profile().WriteLatency(64).Seconds()
	if smallAsync < 8e6 {
		t.Fatalf("small async rate %.2e, want ≈1e7", smallAsync)
	}
	if largeAsync > smallAsync/5 {
		t.Fatalf("large async should be bandwidth-bound well below small: %.2e vs %.2e", largeAsync, smallAsync)
	}
	if blocking64 > smallAsync/3 {
		t.Fatalf("blocking rate %.2e should trail async %.2e", blocking64, smallAsync)
	}
}

func TestWriteGatherAggregates(t *testing.T) {
	eng, dma := liquidEngine()
	var gathered sim.Time
	segs := []int{64, 128, 256}
	dma.WriteGather(segs, func() { gathered = eng.Now() })
	eng.Run()
	// One transfer of 448B, not three fixed costs.
	want := dma.Profile().WriteLatency(448)
	if gathered != want {
		t.Fatalf("gather completion %v, want %v", gathered, want)
	}
	if dma.GatherTransfers != 1 || dma.Writes != 1 {
		t.Fatalf("gather should count as one write: %d/%d", dma.GatherTransfers, dma.Writes)
	}
	// Aggregation beats three separate blocking writes.
	separate := dma.Profile().WriteLatency(64) + dma.Profile().WriteLatency(128) + dma.Profile().WriteLatency(256)
	if want >= separate {
		t.Fatal("scatter-gather should beat separate transfers")
	}
}

func TestRDMALatencyDoubling(t *testing.T) {
	eng := sim.NewEngine(1)
	rdma := NewRDMA(eng, spec.BlueField_1M332A().DMA)
	dma := New(eng, spec.LiquidIOII_CN2350().DMA)
	for _, size := range []int{4, 64, 256} {
		r := float64(rdma.Profile().ReadLatency(size)) / float64(dma.Profile().ReadLatency(size))
		if r < 1.5 || r > 2.6 {
			t.Fatalf("RDMA/DMA latency ratio at %dB = %.2f, want ≈2 (Fig 9)", size, r)
		}
	}
}

func TestRDMAOneSidedCompletes(t *testing.T) {
	eng := sim.NewEngine(1)
	rdma := NewRDMA(eng, spec.BlueField_1M332A().DMA)
	var rAt, wAt sim.Time
	rdma.ReadOneSided(512, func() { rAt = eng.Now() })
	eng.Run()
	rdma.WriteOneSided(512, func() { wAt = eng.Now() })
	eng.Run()
	if rAt == 0 || wAt == 0 {
		t.Fatal("one-sided verbs did not complete")
	}
	if wAt-rAt >= rAt {
		t.Fatal("write should be cheaper than read")
	}
}

func TestCounters(t *testing.T) {
	eng, dma := liquidEngine()
	dma.ReadBlocking(100, nil)
	dma.WriteAsync(200, nil)
	eng.Run()
	if dma.Reads != 1 || dma.Writes != 1 {
		t.Fatalf("counters %d/%d", dma.Reads, dma.Writes)
	}
	if dma.BytesRead != 100 || dma.BytesWritten != 200 {
		t.Fatalf("bytes %d/%d", dma.BytesRead, dma.BytesWritten)
	}
}

func TestInFlightBackpressureSignal(t *testing.T) {
	eng, dma := liquidEngine()
	for i := 0; i < 5; i++ {
		dma.WriteAsync(2048, nil)
	}
	if got := dma.InFlight(); got != 5 {
		t.Fatalf("InFlight = %d, want 5", got)
	}
	eng.Run()
	if got := dma.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d", got)
	}
}
