package qos

import (
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/sim"
)

// bucket is a deterministic token bucket refilled on virtual time.
type bucket struct {
	rate   float64 // tokens per virtual second
	burst  float64
	tokens float64
	last   sim.Time
}

func (b *bucket) take(now sim.Time) bool {
	if now > b.last {
		b.tokens += b.rate * (now - b.last).Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Gate is one client edge's admission controller: a token bucket per
// tenant, consulted by workload.Client before a request is sent.
// Control-class requests always pass (admission must never starve the
// control plane). Each Gate lives on one client's engine partition, so
// partitioned clusters race-freely run one gate per client; the Runtime
// aggregates the per-gate counters after the run.
type Gate struct {
	tenants []Tenant
	buckets []bucket
	chk     *invariant.Checker
	ctl     *Controller

	// Per-tenant counters, indexed like Tenancy.Tenants.
	Offered  []uint64
	Admitted []uint64
	Rejected []uint64
}

// newGate builds a gate from the resolved tenant table. chk and ctl may
// be nil.
func newGate(tenants []Tenant, chk *invariant.Checker, ctl *Controller) *Gate {
	g := &Gate{
		tenants:  tenants,
		buckets:  make([]bucket, len(tenants)),
		chk:      chk,
		ctl:      ctl,
		Offered:  make([]uint64, len(tenants)),
		Admitted: make([]uint64, len(tenants)),
		Rejected: make([]uint64, len(tenants)),
	}
	for i, t := range tenants {
		burst := t.Burst
		if burst <= 0 {
			burst = DefaultBurst
		}
		g.buckets[i] = bucket{rate: t.RatePerSec, burst: burst, tokens: burst}
	}
	return g
}

// Admit implements workload.QoSHook: charge one request against the
// tenant's bucket. Unknown tenants (beyond the table) are admitted —
// untagged legacy traffic is unconstrained.
func (g *Gate) Admit(tenant uint16, class uint8, now sim.Time) bool {
	if int(tenant) >= len(g.buckets) {
		return true
	}
	g.Offered[tenant]++
	g.chk.AdmissionOffer()
	if Class(class) == ClassControl || g.buckets[tenant].take(now) {
		g.Admitted[tenant]++
		g.chk.AdmissionAdmit()
		return true
	}
	g.Rejected[tenant]++
	g.chk.AdmissionReject()
	return false
}

// Latency implements workload.QoSHook: feed one response latency into
// the SLO controller's per-tenant EWMA.
func (g *Gate) Latency(tenant uint16, class uint8, us float64) {
	if g.ctl != nil {
		g.ctl.Observe(tenant, us)
	}
	_ = class
}

// RegisterMetrics exposes the gate's per-tenant admission counters.
func (g *Gate) RegisterMetrics(reg *obs.Registry) {
	for i := range g.tenants {
		i := i
		name := g.tenants[i].Name
		reg.Counter(name+"_offered", func() uint64 { return g.Offered[i] })
		reg.Counter(name+"_admitted", func() uint64 { return g.Admitted[i] })
		reg.Counter(name+"_rejected", func() uint64 { return g.Rejected[i] })
	}
}
