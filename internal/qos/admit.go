package qos

import (
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/sim"
)

// bucket is a deterministic token bucket in GCRA (virtual-scheduling)
// form on integer virtual time: tat is the theoretical arrival time of
// the next conforming request, inc the emission interval (one token's
// worth of time), tau the burst tolerance. Admission is then a pure
// function of the request time — splitting a refill interval (a denied
// probe at t1 between takes at t0 and t2) cannot perturb the outcome
// at t2, because denied takes don't mutate and granted ones advance
// tat by exactly inc. The earlier float-accumulator form refilled
// `tokens += rate·Δt` on every call, including denied ones, so the
// admitted sequence depended on how the interval happened to be split
// — a float-drift hazard now that gates run per-partition under
// faulted PDES runs (see TestBucketSplitRefillDeterminism).
type bucket struct {
	inc sim.Time // emission interval: Second/rate, floored at 1
	tau sim.Time // burst tolerance: (burst-1)·inc
	tat sim.Time
}

// newBucket derives the GCRA parameters. rate ≤ 0 (rejected upstream
// by Tenancy validation) degrades to an effectively-never-refilling
// bucket rather than dividing by zero.
func newBucket(rate, burst float64) bucket {
	if burst < 1 {
		burst = 1
	}
	var inc sim.Time
	if rate <= 0 {
		inc = sim.MaxTime / 4
	} else {
		inc = sim.Time(float64(sim.Second) / rate)
		if inc < 1 {
			inc = 1
		}
	}
	return bucket{inc: inc, tau: sim.Time((burst - 1) * float64(inc))}
}

func (b *bucket) take(now sim.Time) bool {
	t := b.tat
	if t < now {
		t = now
	}
	if t-now > b.tau {
		return false
	}
	b.tat = t + b.inc
	return true
}

// Gate is one client edge's admission controller: a token bucket per
// tenant, consulted by workload.Client before a request is sent.
// Control-class requests always pass (admission must never starve the
// control plane). Each Gate lives on one client's engine partition, so
// partitioned clusters race-freely run one gate per client; the Runtime
// aggregates the per-gate counters after the run.
type Gate struct {
	tenants []Tenant
	buckets []bucket
	chk     *invariant.Checker
	ctl     *Controller

	// Per-tenant counters, indexed like Tenancy.Tenants.
	Offered  []uint64
	Admitted []uint64
	Rejected []uint64
}

// newGate builds a gate from the resolved tenant table. chk and ctl may
// be nil.
func newGate(tenants []Tenant, chk *invariant.Checker, ctl *Controller) *Gate {
	g := &Gate{
		tenants:  tenants,
		buckets:  make([]bucket, len(tenants)),
		chk:      chk,
		ctl:      ctl,
		Offered:  make([]uint64, len(tenants)),
		Admitted: make([]uint64, len(tenants)),
		Rejected: make([]uint64, len(tenants)),
	}
	for i, t := range tenants {
		burst := t.Burst
		if burst <= 0 {
			burst = DefaultBurst
		}
		g.buckets[i] = newBucket(t.RatePerSec, burst)
	}
	return g
}

// Admit implements workload.QoSHook: charge one request against the
// tenant's bucket. Unknown tenants (beyond the table) are admitted —
// untagged legacy traffic is unconstrained.
func (g *Gate) Admit(tenant uint16, class uint8, now sim.Time) bool {
	if int(tenant) >= len(g.buckets) {
		return true
	}
	g.Offered[tenant]++
	g.chk.AdmissionOffer()
	if Class(class) == ClassControl || g.buckets[tenant].take(now) {
		g.Admitted[tenant]++
		g.chk.AdmissionAdmit()
		return true
	}
	g.Rejected[tenant]++
	g.chk.AdmissionReject()
	return false
}

// Latency implements workload.QoSHook: feed one response latency into
// the SLO controller's per-tenant EWMA.
func (g *Gate) Latency(tenant uint16, class uint8, us float64) {
	if g.ctl != nil {
		g.ctl.Observe(tenant, us)
	}
	_ = class
}

// RegisterMetrics exposes the gate's per-tenant admission counters.
func (g *Gate) RegisterMetrics(reg *obs.Registry) {
	for i := range g.tenants {
		i := i
		name := g.tenants[i].Name
		reg.Counter(name+"_offered", func() uint64 { return g.Offered[i] })
		reg.Counter(name+"_admitted", func() uint64 { return g.Admitted[i] })
		reg.Counter(name+"_rejected", func() uint64 { return g.Rejected[i] })
	}
}
