package qos

import (
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Controller is the SLO control loop: it tracks a latency EWMA per
// tenant (fed by the admission gates from client response times),
// compares against each tenant's p99 objective, and when an objective
// is breached drives the runtime's existing knobs, cheapest first:
//
//  1. shrink the client batching window (lower queueing delay at the
//     cost of train amortization),
//  2. tighten the scheduler's MeanThresh so the §3.2.3 EWMA migration
//     signal fires and sheds NIC-core load to the host,
//  3. reshard — drop the hottest shard from the router ring so its key
//     range remaps to the surviving groups (at most once per run).
//
// Actions are spaced by a cooldown so the loop observes each knob's
// effect before escalating. Ticks ride engine timers with the
// drained-engine guard, so an idle simulation still terminates.
// The controller requires a classic (single-engine) cluster: it reads
// cross-node scheduler state, which partitioned clusters forbid.
type Controller struct {
	eng *sim.Engine
	cfg ControllerConfig

	tenants []Tenant
	ewma    []float64
	seen    []bool

	scheds   []*sched.Scheduler
	batchers []*workload.Batcher
	hottest  func() int
	reshard  func(int)

	resharded  bool
	lastAction sim.Time
	started    bool

	// Action counters, for reports and metrics.
	BatchShrinks   uint64
	ThreshTightens uint64
	Reshards       uint64
	Ticks          uint64
}

// NewController builds the loop; call the Bind* methods to hand it
// knobs, then Start.
func NewController(eng *sim.Engine, cfg ControllerConfig, tenants []Tenant) *Controller {
	if cfg.Period <= 0 {
		cfg.Period = DefaultPeriod
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 0.3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.MinBatchWindow <= 0 {
		cfg.MinBatchWindow = DefaultMinBatchWindow
	}
	if cfg.ThreshFactor <= 0 {
		cfg.ThreshFactor = 0.6
	}
	return &Controller{
		eng:     eng,
		cfg:     cfg,
		tenants: tenants,
		ewma:    make([]float64, len(tenants)),
		seen:    make([]bool, len(tenants)),
	}
}

// BindScheduler hands the controller a node scheduler whose migration
// thresholds it may tighten.
func (c *Controller) BindScheduler(s *sched.Scheduler) {
	if s != nil {
		c.scheds = append(c.scheds, s)
	}
}

// BindBatcher hands the controller a client batcher whose window it may
// shrink.
func (c *Controller) BindBatcher(b *workload.Batcher) {
	if b != nil {
		c.batchers = append(c.batchers, b)
	}
}

// BindReshard hands the controller the scale-out knob: hottest names
// the shard to drop, reshard removes it from the router ring. Used at
// most once per run.
func (c *Controller) BindReshard(hottest func() int, reshard func(int)) {
	c.hottest, c.reshard = hottest, reshard
}

// Observe feeds one response latency (µs) into the tenant's EWMA.
func (c *Controller) Observe(tenant uint16, us float64) {
	if int(tenant) >= len(c.ewma) {
		return
	}
	if !c.seen[tenant] {
		c.seen[tenant] = true
		c.ewma[tenant] = us
		return
	}
	c.ewma[tenant] = c.cfg.Alpha*us + (1-c.cfg.Alpha)*c.ewma[tenant]
}

// TenantEWMA returns the tenant's smoothed latency (0 before the first
// response).
func (c *Controller) TenantEWMA(tenant int) float64 {
	if tenant < 0 || tenant >= len(c.ewma) {
		return 0
	}
	return c.ewma[tenant]
}

// Start arms the periodic tick. The ticker stops re-arming once it is
// the only pending event, so a drained simulation terminates (the same
// guard the DT sweep and obs.Collector use).
func (c *Controller) Start() {
	if c.started {
		return
	}
	c.started = true
	var tick func()
	tick = func() {
		if c.eng.Pending() == 0 {
			return
		}
		c.step()
		c.eng.After(c.cfg.Period, tick)
	}
	c.eng.After(c.cfg.Period, tick)
}

// worstBreach returns the largest ewma/SLO ratio across tenants with an
// objective (0 when nothing breaches).
func (c *Controller) worstBreach() float64 {
	worst := 0.0
	for i, t := range c.tenants {
		if t.SLOp99Us <= 0 || !c.seen[i] {
			continue
		}
		if r := c.ewma[i] / t.SLOp99Us; r > worst {
			worst = r
		}
	}
	return worst
}

// step runs one control decision.
func (c *Controller) step() {
	c.Ticks++
	if c.worstBreach() <= 1 {
		return
	}
	now := c.eng.Now()
	if c.lastAction != 0 && now-c.lastAction < c.cfg.Cooldown {
		return
	}
	if c.shrinkBatch() || c.tightenThresh() || c.doReshard() {
		c.lastAction = now
	}
}

// shrinkBatch halves every bound batching window still above the floor.
func (c *Controller) shrinkBatch() bool {
	acted := false
	for _, b := range c.batchers {
		if b.Window > c.cfg.MinBatchWindow {
			b.Window = b.Window / 2
			if b.Window < c.cfg.MinBatchWindow {
				b.Window = c.cfg.MinBatchWindow
			}
			acted = true
		}
	}
	if acted {
		c.BatchShrinks++
	}
	return acted
}

// tightenThresh scales every bound scheduler's MeanThresh down by
// ThreshFactor (floored at 1µs), so the §3.2.3 migration signal fires
// at lower FCFS sojourn means and pushes load to the host.
func (c *Controller) tightenThresh() bool {
	acted := false
	for _, s := range c.scheds {
		_, mean := s.Thresholds()
		if mean > 1 {
			next := mean * c.cfg.ThreshFactor
			if next < 1 {
				next = 1
			}
			s.SetThresholds(0, next)
			acted = true
		}
	}
	if acted {
		c.ThreshTightens++
	}
	return acted
}

// doReshard drops the hottest shard from the router ring, once.
func (c *Controller) doReshard() bool {
	if c.resharded || c.reshard == nil {
		return false
	}
	g := 0
	if c.hottest != nil {
		g = c.hottest()
	}
	c.reshard(g)
	c.resharded = true
	c.Reshards++
	return true
}

// RegisterMetrics exposes the controller's state on a registry.
func (c *Controller) RegisterMetrics(reg *obs.Registry) {
	reg.Counter("ticks", func() uint64 { return c.Ticks })
	reg.Counter("batch_shrinks", func() uint64 { return c.BatchShrinks })
	reg.Counter("thresh_tightens", func() uint64 { return c.ThreshTightens })
	reg.Counter("reshards", func() uint64 { return c.Reshards })
	for i := range c.tenants {
		i := i
		reg.Gauge(c.tenants[i].Name+"_ewma_us", func() float64 { return c.ewma[i] })
	}
}
