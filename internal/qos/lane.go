package qos

import (
	"repro/internal/actor"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/sim"
)

// laneQueue is a FIFO with amortized O(1) pop (head cursor, buffer
// recycled when drained).
type laneQueue struct {
	buf  []actor.Msg
	head int
}

func (q *laneQueue) depth() int { return len(q.buf) - q.head }

func (q *laneQueue) push(m actor.Msg) { q.buf = append(q.buf, m) }

func (q *laneQueue) pop() actor.Msg {
	m := q.buf[q.head]
	q.buf[q.head] = actor.Msg{}
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return m
}

// LaneSched is one node's strict-priority lane front: wire messages are
// offered here after traffic-gate admission and before the FCFS/DRR
// actor scheduler. Lanes dispatch in priority order (control > data >
// telemetry), spaced by a fixed dispatch cost; per-lane watermarks
// trigger the RK-03 actions — shed telemetry, backpressure data, never
// touch control.
//
// All state changes happen on the owning node's engine, so a
// partitioned cluster runs one LaneSched per node with no shared state
// and byte-identical results at any worker count.
type LaneSched struct {
	eng     *sim.Engine
	cfg     LaneConfig
	deliver func(actor.Msg)
	label   string

	queues  [NumLanes]laneQueue
	pumping bool

	chk *invariant.Checker

	sink   *obs.Sink
	tracks [NumLanes]obs.TrackID

	// Per-lane counters (indexed by Lane).
	Enqueued  [NumLanes]uint64
	Delivered [NumLanes]uint64
	Shed      [NumLanes]uint64
	// Backpressured counts data-lane deferrals (the message is offered
	// again after BackpressureDelay; it is never dropped).
	Backpressured uint64
}

// NewLaneSched builds a lane scheduler delivering into the node's actor
// scheduler. label names the node in invariant reports and metrics.
func NewLaneSched(eng *sim.Engine, cfg LaneConfig, label string, deliver func(actor.Msg)) *LaneSched {
	return &LaneSched{
		eng:     eng,
		cfg:     cfg.withDefaults(),
		label:   label,
		deliver: deliver,
	}
}

// EnableInvariants attaches the runtime checker: every enqueue,
// delivery, and shed feeds the lane-conservation ledger, deliveries are
// audited for strict priority, and control sheds are violations.
func (ls *LaneSched) EnableInvariants(chk *invariant.Checker) {
	if chk.Enabled() && ls.chk == nil {
		ls.chk = chk
	}
}

// EnableTracing adds one trace track per lane to the node's group
// (named by Lane.String, so trace lanes, metric prefixes, and checker
// reports share the vocabulary); watermark actions emit instants.
func (ls *LaneSched) EnableTracing(sink *obs.Sink, g obs.GroupID) {
	if sink == nil || ls.sink != nil {
		return
	}
	ls.sink = sink
	for l := Lane(0); l < NumLanes; l++ {
		ls.tracks[l] = sink.NewTrack(g, l.String())
	}
}

// RegisterMetrics exposes the per-lane counters on a registry.
func (ls *LaneSched) RegisterMetrics(reg *obs.Registry) {
	for l := Lane(0); l < NumLanes; l++ {
		l := l
		reg.Counter(l.String()+"_enqueued", func() uint64 { return ls.Enqueued[l] })
		reg.Counter(l.String()+"_delivered", func() uint64 { return ls.Delivered[l] })
		reg.Counter(l.String()+"_shed", func() uint64 { return ls.Shed[l] })
	}
	reg.Counter("backpressured", func() uint64 { return ls.Backpressured })
	reg.Gauge("lane_backlog", func() float64 { return float64(ls.backlog(NumLanes)) })
}

// cap returns the lane's queue bound (0 = unbounded).
func (ls *LaneSched) cap(l Lane) int {
	switch l {
	case LaneData:
		return ls.cfg.DataCap
	case LaneTelemetry:
		return ls.cfg.TelemetryCap
	}
	return 0 // control: never bounded
}

// backlog sums queue depths of lanes strictly above limit priority
// (pass NumLanes for the total backlog).
func (ls *LaneSched) backlog(limit Lane) int {
	n := 0
	for l := Lane(0); l < limit; l++ {
		n += ls.queues[l].depth()
	}
	return n
}

// Offer implements core.LaneDispatcher: route one admitted wire message
// through its class's lane. Called on the node's engine.
func (ls *LaneSched) Offer(m actor.Msg) {
	lane := LaneOf(Class(m.Class))
	if c := ls.cap(lane); c > 0 && ls.queues[lane].depth() >= c {
		switch lane {
		case LaneTelemetry:
			// Watermark action: shed. Telemetry is lossy by contract.
			ls.Shed[lane]++
			ls.chk.LaneShed(ls.label, uint8(lane), lane == LaneControl)
			if ls.sink != nil {
				ls.sink.Instant(ls.tracks[lane], "shed", ls.eng.Now())
			}
			return
		default:
			// Watermark action: backpressure. The message is deferred and
			// re-offered; data is never dropped.
			ls.Backpressured++
			if ls.sink != nil {
				ls.sink.Instant(ls.tracks[lane], "backpressure", ls.eng.Now())
			}
			ls.eng.After(ls.cfg.BackpressureDelay, func() { ls.Offer(m) })
			return
		}
	}
	ls.queues[lane].push(m)
	ls.Enqueued[lane]++
	ls.chk.LaneEnqueue(ls.label, uint8(lane))
	if !ls.pumping {
		ls.pumping = true
		ls.pump()
	}
}

// pump dispatches the head of the highest-priority non-empty lane, then
// stays busy for the dispatch cost before looking again. The busy window
// is held even when the delivery empties the queues — a message arriving
// inside it queues behind the in-flight dispatch, which is what lets
// sub-DispatchCost arrival bursts build backlog and trip the watermarks.
func (ls *LaneSched) pump() {
	var lane Lane
	for lane = 0; lane < NumLanes; lane++ {
		if ls.queues[lane].depth() > 0 {
			break
		}
	}
	if lane == NumLanes {
		ls.pumping = false
		return
	}
	m := ls.queues[lane].pop()
	ls.Delivered[lane]++
	// Strict priority: when this delivery happens, every higher lane
	// must already be empty.
	ls.chk.LaneDeliver(ls.label, uint8(lane), ls.backlog(lane))
	ls.deliver(m)
	ls.eng.After(ls.cfg.DispatchCost, ls.pump)
}
