// Package qos adds multi-tenant quality of service to the iPipe
// runtime: tenant- and class-tagged traffic, a strict-priority lane
// scheduler in front of each node's FCFS/DRR actor scheduler, per-tenant
// token-bucket admission control at the workload edge, and an SLO
// controller that closes the loop by driving the knobs the earlier
// layers already expose — the §3.2.3 EWMA migration thresholds, the
// client batching window, and shard.Ring resharding.
//
// The design follows the RSPP RK-03 lane-scheduler contract: three
// lanes ordered control > data > telemetry, bounded per-lane queues,
// and watermark actions per lane — telemetry over its cap is shed,
// data over its cap is backpressured (deferred, never dropped), and
// control is never dropped and never bounded.
//
// Everything is deterministic in virtual time: token buckets refill on
// the engine clock, the lane pump spaces deliveries by a fixed dispatch
// cost, and the controller ticks on engine timers — so QoS-enabled runs
// fingerprint identically at any PDES worker count, and a deployment
// without a Tenancy block behaves byte-for-byte as before.
package qos

import (
	"fmt"

	"repro/internal/sim"
)

// Class tags a request's traffic class at the workload edge. The zero
// value is ClassData, so untagged legacy traffic rides the data lane.
type Class uint8

// Traffic classes, in the order clients tag them.
const (
	// ClassData is ordinary application traffic (the zero value).
	ClassData Class = iota
	// ClassControl is cluster-control traffic (elections, membership,
	// sweeps): highest priority, never shed.
	ClassControl
	// ClassTelemetry is observability traffic: lowest priority, shed
	// first under pressure.
	ClassTelemetry
	numClasses
)

// String names the class for metrics and span labels.
func (c Class) String() string {
	switch c {
	case ClassControl:
		return "control"
	case ClassData:
		return "data"
	case ClassTelemetry:
		return "telemetry"
	}
	return fmt.Sprintf("class-%d", uint8(c))
}

// Valid reports whether c names a defined class.
func (c Class) Valid() bool { return c < numClasses }

// Lane is a priority lane of the node-front scheduler. Lower values
// dispatch first: LaneControl preempts LaneData preempts LaneTelemetry.
type Lane uint8

// Lanes in strict priority order.
const (
	LaneControl Lane = iota
	LaneData
	LaneTelemetry
	// NumLanes sizes per-lane arrays.
	NumLanes
)

// String names the lane; used verbatim for obs track names and metric
// prefixes so every layer agrees on the vocabulary.
func (l Lane) String() string {
	switch l {
	case LaneControl:
		return "lane-control"
	case LaneData:
		return "lane-data"
	case LaneTelemetry:
		return "lane-telemetry"
	}
	return fmt.Sprintf("lane-%d", uint8(l))
}

// LaneOf maps a traffic class onto its lane.
func LaneOf(c Class) Lane {
	switch c {
	case ClassControl:
		return LaneControl
	case ClassTelemetry:
		return LaneTelemetry
	}
	return LaneData
}

// Tenant configures one tenant's admission budget and latency SLO.
type Tenant struct {
	// Name labels the tenant in metrics and reports.
	Name string
	// RatePerSec is the admitted request rate (token refill); ≤ 0 is
	// invalid — an unlimited tenant simply omits admission by leaving
	// Tenancy.Tenants empty.
	RatePerSec float64
	// Burst is the bucket depth in requests (0 = DefaultBurst).
	Burst float64
	// SLOp99Us is the tenant's p99 latency objective in microseconds
	// observed by the SLO controller (0 = no objective; the tenant is
	// admission-controlled but not steered).
	SLOp99Us float64
}

// DefaultBurst is the token-bucket depth used when a tenant leaves
// Burst zero.
const DefaultBurst = 16

// LaneConfig bounds the per-lane queues and prices the lane pump.
type LaneConfig struct {
	// DataCap / TelemetryCap bound the data and telemetry queues
	// (0 = defaults). The control lane is never bounded.
	DataCap      int
	TelemetryCap int
	// DispatchCost spaces successive lane deliveries (0 = default).
	DispatchCost sim.Time
	// BackpressureDelay is how long an over-watermark data message is
	// deferred before re-offering (0 = default).
	BackpressureDelay sim.Time
}

// Lane defaults.
const (
	DefaultDataCap           = 256
	DefaultTelemetryCap      = 64
	DefaultDispatchCost      = 40 * sim.Nanosecond
	DefaultBackpressureDelay = 2 * sim.Microsecond
)

// withDefaults resolves zero fields.
func (c LaneConfig) withDefaults() LaneConfig {
	if c.DataCap <= 0 {
		c.DataCap = DefaultDataCap
	}
	if c.TelemetryCap <= 0 {
		c.TelemetryCap = DefaultTelemetryCap
	}
	if c.DispatchCost <= 0 {
		c.DispatchCost = DefaultDispatchCost
	}
	if c.BackpressureDelay <= 0 {
		c.BackpressureDelay = DefaultBackpressureDelay
	}
	return c
}

// ControllerConfig tunes the SLO control loop.
type ControllerConfig struct {
	// Enabled arms the controller. It requires a classic (single-engine)
	// cluster: the loop reads cross-node state, which a partitioned
	// cluster forbids.
	Enabled bool
	// Period is the control-loop tick (0 = DefaultPeriod).
	Period sim.Time
	// Alpha is the per-tenant latency EWMA smoothing (0 = 0.3).
	Alpha float64
	// Cooldown is the minimum spacing between corrective actions
	// (0 = DefaultCooldown).
	Cooldown sim.Time
	// MinBatchWindow floors the batching-window shrink knob
	// (0 = DefaultMinBatchWindow).
	MinBatchWindow sim.Time
	// ThreshFactor multiplies the scheduler MeanThresh when tightening
	// the migration signal; must be in (0, 1) when set (0 = 0.6).
	ThreshFactor float64
}

// Controller defaults.
const (
	DefaultPeriod         = 500 * sim.Microsecond
	DefaultCooldown       = 2 * sim.Millisecond
	DefaultMinBatchWindow = 500 * sim.Nanosecond
)

// Tenancy is the multi-tenant QoS block a deploy spec carries: the
// tenant table, the lane bounds, and the control loop. A nil *Tenancy
// on a spec disables QoS entirely (the legacy single-tenant behavior).
type Tenancy struct {
	Tenants    []Tenant
	Lanes      LaneConfig
	Controller ControllerConfig
}

// Validate checks the block without deploying anything. It returns
// *ConfigError (never panics) so spec validation can surface precise
// field diagnostics.
func (t *Tenancy) Validate() error {
	if t == nil {
		return nil
	}
	for i, tn := range t.Tenants {
		if tn.RatePerSec <= 0 {
			return &ConfigError{Field: fmt.Sprintf("Tenants[%d].RatePerSec", i),
				Reason: fmt.Sprintf("must be > 0 (got %g); omit the tenant table to disable admission", tn.RatePerSec)}
		}
		if tn.Burst < 0 {
			return &ConfigError{Field: fmt.Sprintf("Tenants[%d].Burst", i),
				Reason: fmt.Sprintf("must be >= 0 (got %g)", tn.Burst)}
		}
		if tn.SLOp99Us < 0 {
			return &ConfigError{Field: fmt.Sprintf("Tenants[%d].SLOp99Us", i),
				Reason: fmt.Sprintf("must be >= 0 (got %g)", tn.SLOp99Us)}
		}
	}
	if t.Lanes.DataCap < 0 {
		return &ConfigError{Field: "Lanes.DataCap", Reason: fmt.Sprintf("must be >= 0 (got %d)", t.Lanes.DataCap)}
	}
	if t.Lanes.TelemetryCap < 0 {
		return &ConfigError{Field: "Lanes.TelemetryCap", Reason: fmt.Sprintf("must be >= 0 (got %d)", t.Lanes.TelemetryCap)}
	}
	if t.Lanes.DispatchCost < 0 {
		return &ConfigError{Field: "Lanes.DispatchCost", Reason: "must be >= 0"}
	}
	if t.Lanes.BackpressureDelay < 0 {
		return &ConfigError{Field: "Lanes.BackpressureDelay", Reason: "must be >= 0"}
	}
	c := t.Controller
	if c.Period < 0 {
		return &ConfigError{Field: "Controller.Period", Reason: "must be >= 0"}
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return &ConfigError{Field: "Controller.Alpha", Reason: fmt.Sprintf("must be in [0, 1] (got %g)", c.Alpha)}
	}
	if c.ThreshFactor < 0 || c.ThreshFactor >= 1 {
		return &ConfigError{Field: "Controller.ThreshFactor", Reason: fmt.Sprintf("must be in [0, 1) (got %g)", c.ThreshFactor)}
	}
	if c.Enabled && len(t.Tenants) == 0 {
		return &ConfigError{Field: "Controller.Enabled",
			Reason: "the SLO controller needs a tenant table to steer"}
	}
	return nil
}

// ConfigError is a typed Tenancy validation failure.
type ConfigError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("qos: invalid Tenancy.%s: %s", e.Field, e.Reason)
}
