package qos

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/actor"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestValidateTable walks every rule in Tenancy.Validate: each invalid
// field yields a typed *ConfigError naming exactly that field, and no
// configuration panics.
func TestValidateTable(t *testing.T) {
	oneTenant := []Tenant{{Name: "a", RatePerSec: 1000}}
	cases := []struct {
		name  string
		t     *Tenancy
		field string // "" = expect nil error
	}{
		{"nil block", nil, ""},
		{"empty block", &Tenancy{}, ""},
		{"valid full", &Tenancy{
			Tenants: []Tenant{{Name: "a", RatePerSec: 1e5, Burst: 32, SLOp99Us: 100}},
			Lanes:   LaneConfig{DataCap: 64, TelemetryCap: 8, DispatchCost: 100, BackpressureDelay: 1000},
			Controller: ControllerConfig{Enabled: true, Period: 1000, Alpha: 0.5,
				ThreshFactor: 0.5},
		}, ""},
		{"zero rate", &Tenancy{Tenants: []Tenant{{Name: "a"}}}, "Tenants[0].RatePerSec"},
		{"negative rate", &Tenancy{Tenants: []Tenant{{RatePerSec: -1}}}, "Tenants[0].RatePerSec"},
		{"second tenant bad", &Tenancy{Tenants: []Tenant{
			{RatePerSec: 1000}, {RatePerSec: 1000, Burst: -2},
		}}, "Tenants[1].Burst"},
		{"negative slo", &Tenancy{Tenants: []Tenant{
			{RatePerSec: 1000, SLOp99Us: -5},
		}}, "Tenants[0].SLOp99Us"},
		{"negative data cap", &Tenancy{Lanes: LaneConfig{DataCap: -1}}, "Lanes.DataCap"},
		{"negative telemetry cap", &Tenancy{Lanes: LaneConfig{TelemetryCap: -1}}, "Lanes.TelemetryCap"},
		{"negative dispatch cost", &Tenancy{Lanes: LaneConfig{DispatchCost: -1}}, "Lanes.DispatchCost"},
		{"negative backpressure", &Tenancy{Lanes: LaneConfig{BackpressureDelay: -1}}, "Lanes.BackpressureDelay"},
		{"negative period", &Tenancy{Controller: ControllerConfig{Period: -1}}, "Controller.Period"},
		{"alpha too big", &Tenancy{Controller: ControllerConfig{Alpha: 1.5}}, "Controller.Alpha"},
		{"alpha negative", &Tenancy{Controller: ControllerConfig{Alpha: -0.1}}, "Controller.Alpha"},
		{"thresh factor one", &Tenancy{Controller: ControllerConfig{ThreshFactor: 1}}, "Controller.ThreshFactor"},
		{"thresh factor negative", &Tenancy{Controller: ControllerConfig{ThreshFactor: -0.5}}, "Controller.ThreshFactor"},
		{"controller without tenants", &Tenancy{Tenants: oneTenant[:0],
			Controller: ControllerConfig{Enabled: true}}, "Controller.Enabled"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.t.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate() = %v (%T), want *ConfigError", err, err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
			if !strings.Contains(ce.Error(), "Tenancy."+tc.field) {
				t.Fatalf("Error() = %q does not name the field", ce.Error())
			}
		})
	}
}

// TestClassLaneVocabulary pins the class→lane mapping and the shared
// string vocabulary that obs tracks, metrics, and checker reports use.
func TestClassLaneVocabulary(t *testing.T) {
	if LaneOf(ClassControl) != LaneControl || LaneOf(ClassData) != LaneData ||
		LaneOf(ClassTelemetry) != LaneTelemetry {
		t.Fatal("LaneOf does not map classes onto their namesake lanes")
	}
	if LaneOf(Class(42)) != LaneData {
		t.Fatal("unknown classes must ride the data lane")
	}
	if !ClassData.Valid() || !ClassControl.Valid() || !ClassTelemetry.Valid() || Class(42).Valid() {
		t.Fatal("Class.Valid vocabulary wrong")
	}
	for l, want := range map[Lane]string{
		LaneControl: "lane-control", LaneData: "lane-data", LaneTelemetry: "lane-telemetry",
	} {
		if l.String() != want {
			t.Fatalf("%d.String() = %q, want %q", l, l.String(), want)
		}
	}
}

// laneHarness builds a LaneSched recording delivery order.
func laneHarness(t *testing.T, cfg LaneConfig) (*sim.Engine, *LaneSched, *[]uint8) {
	t.Helper()
	eng := sim.NewEngine(1)
	var order []uint8
	ls := NewLaneSched(eng, cfg, "n0", func(m actor.Msg) {
		order = append(order, m.Class)
	})
	return eng, ls, &order
}

func msg(c Class) actor.Msg { return actor.Msg{Class: uint8(c)} }

// TestLaneStrictPriority offers one message per class back-to-back: the
// first dispatches immediately, the rest drain control-before-data-
// before-telemetry regardless of arrival order.
func TestLaneStrictPriority(t *testing.T) {
	eng, ls, order := laneHarness(t, LaneConfig{DispatchCost: 100 * sim.Nanosecond})
	eng.At(0, func() {
		ls.Offer(msg(ClassTelemetry)) // dispatches immediately (idle pump)
		ls.Offer(msg(ClassTelemetry))
		ls.Offer(msg(ClassData))
		ls.Offer(msg(ClassControl))
	})
	eng.Run()
	want := []uint8{uint8(ClassTelemetry), uint8(ClassControl), uint8(ClassData), uint8(ClassTelemetry)}
	if len(*order) != len(want) {
		t.Fatalf("delivered %d messages, want %d", len(*order), len(want))
	}
	for i := range want {
		if (*order)[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", *order, want)
		}
	}
}

// TestLaneBusyWindow is the regression test for the pump's busy-window
// semantics: a delivery holds the lane busy for DispatchCost even when
// it empties the queues, so a second message arriving inside the window
// must queue (not dispatch instantly), and sub-DispatchCost bursts can
// build backlog.
func TestLaneBusyWindow(t *testing.T) {
	const cost = 1 * sim.Microsecond
	eng, ls, _ := laneHarness(t, LaneConfig{DispatchCost: cost, TelemetryCap: 1})
	var depthAt500 int
	eng.At(0, func() { ls.Offer(msg(ClassTelemetry)) }) // delivered at t=0, busy until 1µs
	eng.At(500, func() {
		ls.Offer(msg(ClassTelemetry)) // inside the busy window: must queue
		depthAt500 = ls.queues[LaneTelemetry].depth()
	})
	eng.At(600, func() { ls.Offer(msg(ClassTelemetry)) }) // cap 1 exceeded: shed
	eng.Run()
	if depthAt500 != 1 {
		t.Fatalf("telemetry depth inside the busy window = %d, want 1 (pump released the lane too early)", depthAt500)
	}
	if ls.Shed[LaneTelemetry] != 1 {
		t.Fatalf("Shed[telemetry] = %d, want 1", ls.Shed[LaneTelemetry])
	}
	if ls.Delivered[LaneTelemetry] != 2 {
		t.Fatalf("Delivered[telemetry] = %d, want 2", ls.Delivered[LaneTelemetry])
	}
}

// TestLaneTelemetryShed floods telemetry past its cap in one instant:
// overflow is shed, never delivered late, and the ledger balances.
func TestLaneTelemetryShed(t *testing.T) {
	eng, ls, _ := laneHarness(t, LaneConfig{TelemetryCap: 2, DispatchCost: sim.Microsecond})
	eng.At(0, func() {
		for i := 0; i < 6; i++ {
			ls.Offer(msg(ClassTelemetry))
		}
	})
	eng.Run()
	// First delivers immediately, two queue at the cap, three shed.
	if ls.Shed[LaneTelemetry] != 3 {
		t.Fatalf("Shed = %d, want 3", ls.Shed[LaneTelemetry])
	}
	if ls.Enqueued[LaneTelemetry] != 3 || ls.Delivered[LaneTelemetry] != 3 {
		t.Fatalf("enq/del = %d/%d, want 3/3", ls.Enqueued[LaneTelemetry], ls.Delivered[LaneTelemetry])
	}
}

// TestLaneDataBackpressure floods data past its cap: overflow is
// deferred by BackpressureDelay and re-offered — every message is
// eventually delivered, none shed.
func TestLaneDataBackpressure(t *testing.T) {
	eng, ls, order := laneHarness(t, LaneConfig{
		DataCap: 1, DispatchCost: 100 * sim.Nanosecond, BackpressureDelay: 2 * sim.Microsecond})
	const n = 5
	eng.At(0, func() {
		for i := 0; i < n; i++ {
			ls.Offer(msg(ClassData))
		}
	})
	eng.Run()
	if ls.Backpressured == 0 {
		t.Fatal("burst past DataCap never backpressured")
	}
	if ls.Shed[LaneData] != 0 {
		t.Fatalf("data lane shed %d messages; data is deferred, never dropped", ls.Shed[LaneData])
	}
	if len(*order) != n {
		t.Fatalf("delivered %d of %d data messages", len(*order), n)
	}
}

// TestLaneControlUnbounded offers a control burst far past every other
// lane's cap: control is never shed, never backpressured.
func TestLaneControlUnbounded(t *testing.T) {
	eng, ls, order := laneHarness(t, LaneConfig{
		DataCap: 1, TelemetryCap: 1, DispatchCost: 50 * sim.Nanosecond})
	const n = 500
	eng.At(0, func() {
		for i := 0; i < n; i++ {
			ls.Offer(msg(ClassControl))
		}
	})
	eng.Run()
	if ls.Shed[LaneControl] != 0 || ls.Backpressured != 0 {
		t.Fatalf("control burst: shed=%d backpressured=%d, want 0/0",
			ls.Shed[LaneControl], ls.Backpressured)
	}
	if len(*order) != n {
		t.Fatalf("delivered %d of %d control messages", len(*order), n)
	}
}

// TestBucketRefill pins the token bucket's virtual-time determinism:
// burst-limited at one instant, refilled exactly rate*dt later, capped
// at burst.
func TestBucketRefill(t *testing.T) {
	b := newBucket(1e6, 2) // 1 token per µs, burst 2
	if !b.take(0) || !b.take(0) {
		t.Fatal("full bucket refused its burst")
	}
	if b.take(0) {
		t.Fatal("empty bucket granted a token")
	}
	if !b.take(1 * sim.Microsecond) {
		t.Fatal("1µs at 1 token/µs did not refill one token")
	}
	if b.take(1 * sim.Microsecond) {
		t.Fatal("bucket granted more than the elapsed-time refill")
	}
	// A long idle period caps at burst, not rate*dt.
	if !b.take(1*sim.Second) || !b.take(1*sim.Second) || b.take(1*sim.Second) {
		t.Fatal("idle refill not capped at burst")
	}
}

// TestGateAdmission covers the admission gate: per-tenant budgets,
// control-class bypass, and the untabled-tenant passthrough that keeps
// legacy traffic unconstrained and uncounted.
func TestGateAdmission(t *testing.T) {
	g := newGate([]Tenant{{Name: "a", RatePerSec: 1e6, Burst: 2}}, nil, nil)

	// Burst then reject.
	if !g.Admit(0, uint8(ClassData), 0) || !g.Admit(0, uint8(ClassData), 0) {
		t.Fatal("burst refused")
	}
	if g.Admit(0, uint8(ClassData), 0) {
		t.Fatal("over-burst request admitted")
	}
	// Control never takes tokens, even with the bucket empty.
	if !g.Admit(0, uint8(ClassControl), 0) {
		t.Fatal("control request rejected; admission must never starve the control plane")
	}
	if g.Offered[0] != 4 || g.Admitted[0] != 3 || g.Rejected[0] != 1 {
		t.Fatalf("counters offered/admitted/rejected = %d/%d/%d, want 4/3/1",
			g.Offered[0], g.Admitted[0], g.Rejected[0])
	}
	// Untabled tenant: admitted unconditionally, no counters.
	if !g.Admit(7, uint8(ClassData), 0) {
		t.Fatal("untabled tenant rejected")
	}
	if g.Offered[0] != 4 {
		t.Fatal("untabled tenant charged a tabled tenant's counters")
	}
	// Virtual-time refill admits again.
	if !g.Admit(0, uint8(ClassData), 2*sim.Microsecond) {
		t.Fatal("bucket did not refill on the engine clock")
	}
}

// TestControllerEscalation drives a sustained SLO breach through the
// loop and checks the escalation ladder: batch shrink first (repeated,
// cooldown-spaced, floored at MinBatchWindow), then threshold tighten,
// then exactly one reshard.
func TestControllerEscalation(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := ControllerConfig{
		Enabled:        true,
		Period:         100 * sim.Microsecond,
		Cooldown:       100 * sim.Microsecond,
		MinBatchWindow: 500 * sim.Nanosecond,
		Alpha:          0.3,
		ThreshFactor:   0.5,
	}
	ctl := NewController(eng, cfg, []Tenant{{Name: "a", RatePerSec: 1e5, SLOp99Us: 100}})

	b := &workload.Batcher{Window: 2 * sim.Microsecond, MaxBatch: 8}
	ctl.BindBatcher(b)
	s := sched.New(eng, sched.Config{Cores: 1, MeanThresh: 40},
		sched.Hooks{
			Run:    func(a *actor.Actor, m actor.Msg) sim.Time { return 0 },
			FwdTax: func(bytes int) sim.Time { return 0 },
		})
	ctl.BindScheduler(s)
	var resharded []int
	ctl.BindReshard(func() int { return 3 }, func(g int) { resharded = append(resharded, g) })

	// Sustained breach: feed latencies far above the 100µs objective,
	// and keep the engine non-drained so the ticker keeps re-arming.
	for i := sim.Time(0); i < 3*sim.Millisecond; i += 20 * sim.Microsecond {
		eng.At(i, func() { ctl.Observe(0, 1000) })
	}
	ctl.Start()
	eng.Run()

	if ctl.Ticks == 0 {
		t.Fatal("controller never ticked")
	}
	if ctl.TenantEWMA(0) <= 100 {
		t.Fatalf("EWMA %.1f did not track the 1000µs breach", ctl.TenantEWMA(0))
	}
	// Ladder: 2 shrinks take the 2µs window to the 500ns floor, then one
	// tighten (40 → 20, then MeanThresh still > 1 so it keeps acting...)
	if ctl.BatchShrinks != 2 {
		t.Fatalf("BatchShrinks = %d, want 2 (2µs → 1µs → 500ns floor)", ctl.BatchShrinks)
	}
	if b.Window != cfg.MinBatchWindow {
		t.Fatalf("batch window %v, want the %v floor", b.Window, cfg.MinBatchWindow)
	}
	if ctl.ThreshTightens == 0 {
		t.Fatal("controller never tightened the migration threshold after exhausting batch shrink")
	}
	if _, mean := s.Thresholds(); mean >= 40 {
		t.Fatalf("MeanThresh %.1f not tightened below its initial 40", mean)
	}
	if ctl.Reshards != 1 || len(resharded) != 1 || resharded[0] != 3 {
		t.Fatalf("reshard fired %d times on %v, want once on shard 3", ctl.Reshards, resharded)
	}
}

// TestControllerRequiresBreach feeds latencies comfortably inside the
// objective: the loop ticks but never acts.
func TestControllerRequiresBreach(t *testing.T) {
	eng := sim.NewEngine(1)
	ctl := NewController(eng, ControllerConfig{Enabled: true, Period: 100 * sim.Microsecond},
		[]Tenant{{Name: "a", RatePerSec: 1e5, SLOp99Us: 100}})
	b := &workload.Batcher{Window: 2 * sim.Microsecond}
	ctl.BindBatcher(b)
	for i := sim.Time(0); i < sim.Millisecond; i += 20 * sim.Microsecond {
		eng.At(i, func() { ctl.Observe(0, 50) })
	}
	ctl.Start()
	eng.Run()
	if ctl.Ticks == 0 {
		t.Fatal("controller never ticked")
	}
	if ctl.BatchShrinks+ctl.ThreshTightens+ctl.Reshards != 0 {
		t.Fatalf("controller acted without a breach: shrinks=%d tightens=%d reshards=%d",
			ctl.BatchShrinks, ctl.ThreshTightens, ctl.Reshards)
	}
	if b.Window != 2*sim.Microsecond {
		t.Fatalf("batch window moved to %v without a breach", b.Window)
	}
}

// TestControllerCooldown checks action spacing: with a long cooldown,
// a sustained breach still produces at most one action per cooldown
// interval.
func TestControllerCooldown(t *testing.T) {
	eng := sim.NewEngine(1)
	ctl := NewController(eng, ControllerConfig{
		Enabled: true, Period: 100 * sim.Microsecond, Cooldown: sim.Millisecond,
	}, []Tenant{{Name: "a", RatePerSec: 1e5, SLOp99Us: 100}})
	// Deep window so shrink stays available the whole run.
	b := &workload.Batcher{Window: 1 * sim.Second}
	ctl.BindBatcher(b)
	const horizon = 2*sim.Millisecond + 50*sim.Microsecond
	for i := sim.Time(0); i < horizon; i += 20 * sim.Microsecond {
		eng.At(i, func() { ctl.Observe(0, 1000) })
	}
	ctl.Start()
	eng.Run()
	// ~2ms of breach at 1ms cooldown: first action at the first tick,
	// then at most one per cooldown → ≤ 3 total.
	if ctl.BatchShrinks < 2 || ctl.BatchShrinks > 3 {
		t.Fatalf("BatchShrinks = %d over ~2ms at 1ms cooldown, want 2-3", ctl.BatchShrinks)
	}
}

// TestObserveEWMA pins the EWMA update rule: first sample seeds, later
// samples blend by Alpha, out-of-table tenants are ignored.
func TestObserveEWMA(t *testing.T) {
	eng := sim.NewEngine(1)
	ctl := NewController(eng, ControllerConfig{Alpha: 0.5},
		[]Tenant{{Name: "a", RatePerSec: 1}})
	ctl.Observe(0, 100)
	if got := ctl.TenantEWMA(0); got != 100 {
		t.Fatalf("first sample EWMA = %g, want 100 (seed)", got)
	}
	ctl.Observe(0, 200)
	if got := ctl.TenantEWMA(0); got != 150 {
		t.Fatalf("EWMA after 0.5-blend = %g, want 150", got)
	}
	ctl.Observe(9, 1e9) // untabled: ignored
	if got := ctl.TenantEWMA(9); got != 0 {
		t.Fatalf("untabled tenant EWMA = %g, want 0", got)
	}
}

// TestBucketSplitRefillDeterminism is the split-interval property behind
// the GCRA rewrite: a denied probe between two takes must not perturb
// the admit sequence at the original times. Two identical buckets run in
// lockstep over randomized rates, bursts, and arrival times (8 seeds);
// bucket B additionally absorbs denied probes at random intermediate
// instants. Because denied takes don't mutate GCRA state, B's answers at
// the shared times must match A's bit for bit — the old float
// accumulator refilled on every call and failed exactly this property.
func TestBucketSplitRefillDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := sim.NewRand(seed)
		rate := 1e3 + float64(rng.Int63n(1_000_000)) // 1e3..~1e6 req/s
		burst := 1 + float64(rng.Int63n(32))
		a := newBucket(rate, burst)
		b := newBucket(rate, burst)

		now := sim.Time(0)
		probes := 0
		for step := 0; step < 2000; step++ {
			now += sim.Time(rng.Int63n(int64(2 * sim.Microsecond)))

			// Splice denied probes into B's timeline strictly before the
			// shared take. A value-copy trial tells us whether the probe
			// would be granted; granted probes are skipped (they would
			// legitimately change the sequence — not the property under
			// test).
			for p := 0; p < rng.Intn(3); p++ {
				pt := now - sim.Time(rng.Int63n(int64(sim.Microsecond))+1)
				if pt < 0 {
					pt = 0
				}
				if trial := b; !trial.take(pt) {
					before := b
					if b.take(pt) {
						t.Fatalf("seed %d: trial denied but real take granted at %v", seed, pt)
					}
					if b != before {
						t.Fatalf("seed %d: denied take mutated bucket state at %v: %+v -> %+v",
							seed, pt, before, b)
					}
					probes++
				}
			}

			ga, gb := a.take(now), b.take(now)
			if ga != gb {
				t.Fatalf("seed %d step %d t=%v: split timeline diverged (a=%v b=%v after %d probes)",
					seed, step, now, ga, gb, probes)
			}
		}
		if probes == 0 {
			t.Fatalf("seed %d: no denied probes exercised; property vacuous", seed)
		}
	}
}
