package qos

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// Runtime is an installed Tenancy: one LaneSched per offloaded node,
// one admission Gate per bound client edge, and (on classic clusters)
// the SLO controller. Deploy specs install it via deploy.Common; tests
// and benches can also call Install directly.
type Runtime struct {
	Tenancy *Tenancy
	// Lanes holds one lane scheduler per offloaded node, in install
	// order.
	Lanes []*LaneSched
	// Controller is the SLO loop (nil unless Tenancy.Controller.Enabled).
	Controller *Controller

	cl    *core.Cluster
	gates []*Gate
}

// Install validates t and wires it into the cluster: every offloaded
// node in nodes gets a strict-priority LaneSched between traffic-gate
// admission and the actor scheduler, and — when the controller is
// enabled — the SLO loop starts on the cluster engine. A nil Tenancy
// installs nothing and returns (nil, nil): the legacy single-tenant
// path stays byte-for-byte untouched.
//
// The controller requires a classic cluster; lanes and admission are
// per-node/per-client state on the owning partition engine, so they
// work (and stay fingerprint-deterministic) under PDES.
func Install(cl *core.Cluster, nodes []*core.Node, t *Tenancy) (*Runtime, error) {
	if t == nil {
		return nil, nil
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.Controller.Enabled && cl.Partitions() > 1 {
		return nil, &ConfigError{Field: "Controller.Enabled",
			Reason: "the SLO controller reads cross-node state and requires a classic (single-partition) cluster"}
	}
	rt := &Runtime{Tenancy: t, cl: cl}
	if t.Controller.Enabled {
		rt.Controller = NewController(cl.Eng, t.Controller, t.Tenants)
	}
	for _, n := range nodes {
		if n == nil || !n.Offloaded() {
			continue
		}
		sched := n.Sched
		ls := NewLaneSched(n.Eng(), t.Lanes, n.Name, sched.Arrive)
		ls.EnableInvariants(cl.CheckerAt(n.Part))
		if tr := cl.Tracer(); tr != nil {
			g := tr.Group(cl.ObsPrefix() + n.Name)
			ls.EnableTracing(tr.Sink(n.Part), g)
		}
		if col := cl.Collector(); col != nil {
			ls.RegisterMetrics(col.Registry(cl.ObsPrefix() + n.Name + "-qos"))
		}
		n.SetLaneDispatcher(ls)
		rt.Lanes = append(rt.Lanes, ls)
		if rt.Controller != nil {
			rt.Controller.BindScheduler(sched)
		}
	}
	if rt.Controller != nil {
		if col := cl.Collector(); col != nil {
			rt.Controller.RegisterMetrics(col.Registry(cl.ObsPrefix() + "qos-controller"))
		}
		rt.Controller.Start()
	}
	return rt, nil
}

// Bind attaches per-tenant admission control to one client edge: the
// client consults a fresh Gate (living on the client's partition, so
// PDES runs race-freely) before sending, and feeds response latencies
// back into the SLO controller. Nil-safe: a nil Runtime binds nothing.
func (rt *Runtime) Bind(c *workload.Client) *Gate {
	if rt == nil || c == nil {
		return nil
	}
	g := newGate(rt.Tenancy.Tenants, rt.cl.CheckerAt(c.Part()), rt.Controller)
	if col := rt.cl.Collector(); col != nil {
		g.RegisterMetrics(col.Registry(rt.cl.ObsPrefix() + c.Name + "-adm"))
	}
	c.SetQoS(g)
	rt.gates = append(rt.gates, g)
	return g
}

// BindBatcher hands a batching window to the controller (no-op without
// a controller).
func (rt *Runtime) BindBatcher(b *workload.Batcher) {
	if rt != nil && rt.Controller != nil {
		rt.Controller.BindBatcher(b)
	}
}

// BindReshard hands the controller the shard scale-out knob (no-op
// without a controller).
func (rt *Runtime) BindReshard(hottest func() int, reshard func(int)) {
	if rt != nil && rt.Controller != nil {
		rt.Controller.BindReshard(hottest, reshard)
	}
}

// tenantCount sums one per-gate counter slice across all bound gates.
func (rt *Runtime) tenantCount(pick func(*Gate) []uint64, tenant int) uint64 {
	if rt == nil {
		return 0
	}
	var sum uint64
	for _, g := range rt.gates {
		s := pick(g)
		if tenant < len(s) {
			sum += s[tenant]
		}
	}
	return sum
}

// OfferedTo returns total requests offered by the tenant across all
// bound clients.
func (rt *Runtime) OfferedTo(tenant int) uint64 {
	return rt.tenantCount(func(g *Gate) []uint64 { return g.Offered }, tenant)
}

// AdmittedTo returns total requests admitted for the tenant.
func (rt *Runtime) AdmittedTo(tenant int) uint64 {
	return rt.tenantCount(func(g *Gate) []uint64 { return g.Admitted }, tenant)
}

// RejectedTo returns total requests rejected for the tenant.
func (rt *Runtime) RejectedTo(tenant int) uint64 {
	return rt.tenantCount(func(g *Gate) []uint64 { return g.Rejected }, tenant)
}

// LaneTotals sums the per-lane enqueue/deliver/shed counters across all
// node lane schedulers, plus data-lane backpressure deferrals.
func (rt *Runtime) LaneTotals() (enq, del, shed [NumLanes]uint64, backpressured uint64) {
	if rt == nil {
		return
	}
	for _, ls := range rt.Lanes {
		for l := Lane(0); l < NumLanes; l++ {
			enq[l] += ls.Enqueued[l]
			del[l] += ls.Delivered[l]
			shed[l] += ls.Shed[l]
		}
		backpressured += ls.Backpressured
	}
	return
}
