package sched

import (
	"repro/internal/actor"
	"repro/internal/sim"
)

// core is one NIC core running either the FCFS loop (ALG 1) or the DRR
// loop (ALG 2). Cores are event-driven state machines: kick() starts the
// loop when work may be available; the loop parks (idle=true) when it
// finds none.
type core struct {
	s    *Scheduler
	id   int
	mode Mode
	idle bool

	// drrPos is this core's round-robin cursor into the runnable queue.
	drrPos int

	// Busy-time accounting.
	busyAccum sim.Time
	busyStart sim.Time
	busy      bool
	// winU is the busy fraction over the monitor's last window; winPrev
	// the accumulator snapshot at the previous monitor tick.
	winU    float64
	winPrev sim.Time

	// Executed counts completed actor invocations on this core.
	Executed uint64
}

func newCore(s *Scheduler, id int) *core {
	return &core{s: s, id: id, mode: FCFS, idle: true}
}

func (c *core) setMode(m Mode) {
	from := c.mode
	c.mode = m
	if from != m && c.s.hooks.OnAutoscale != nil {
		c.s.hooks.OnAutoscale(c.id, from, m)
	}
	c.kick()
}

// kick schedules the core's loop if it is parked.
func (c *core) kick() {
	if !c.idle {
		return
	}
	c.idle = false
	c.s.eng.Defer(c.step)
}

// occupy charges d of busy time, then continues with fn.
func (c *core) occupy(d sim.Time, fn func()) {
	c.beginBusy()
	c.s.eng.After(d, func() {
		c.endBusy()
		fn()
	})
}

func (c *core) beginBusy() {
	if !c.busy {
		c.busy = true
		c.busyStart = c.s.eng.Now()
	}
}

func (c *core) endBusy() {
	if c.busy {
		c.busy = false
		c.busyAccum += c.s.eng.Now() - c.busyStart
	}
}

// settle folds any in-progress busy period into the accumulator (for
// utilization snapshots).
func (c *core) settle() {
	if c.busy {
		now := c.s.eng.Now()
		c.busyAccum += now - c.busyStart
		c.busyStart = now
	}
}

// step is the core's main loop body.
func (c *core) step() {
	switch c.mode {
	case FCFS:
		c.stepFCFS()
	case DRR:
		c.stepDRR()
	case Dispatch:
		c.stepDispatch()
	}
}

// stepDispatch is the IOKernel dispatcher loop (§3.2.6): drain the
// central ingress buffer into per-worker queues, one routing decision
// per DispatcherCost.
func (c *core) stepDispatch() {
	s := c.s
	q, ok := s.queue.(*iokQueue)
	if !ok {
		c.idle = true
		return
	}
	worker, any := q.dispatchOne()
	if !any {
		c.idle = true
		c.endBusy()
		return
	}
	c.occupy(s.cfg.DispatcherCost, func() {
		if worker < len(s.cores) {
			s.cores[worker].kick()
		}
		c.step()
	})
}

// stepFCFS implements ALG 1: fetch from the shared queue, dispatch to
// the target actor, run to completion; push DRR-resident actors'
// messages to their mailboxes instead.
func (c *core) stepFCFS() {
	s := c.s
	m, ok := s.queue.pop(c.id)
	if !ok {
		c.idle = true
		c.endBusy()
		return
	}
	tax := s.hooks.FwdTax(m.WireSize)
	a, resident := s.actors[m.Dst]
	switch {
	case !resident || a.State == actor.Gone || a.State == actor.Clean:
		// Host-bound traffic (or an actor that just left): forward.
		start := s.eng.Now()
		c.occupy(tax, func() {
			s.Forwarded++
			s.observeFCFS(m)
			if s.hooks.OnExec != nil {
				s.hooks.OnExec(c.id, FCFS, nil, m, start, s.eng.Now())
			}
			if s.hooks.Forward != nil {
				s.hooks.Forward(m)
			}
			c.afterOp()
		})
	case a.State == actor.Prepare || a.State == actor.Ready:
		// Migrating: buffer in the runtime mailbox; phase 4 forwards it.
		c.occupy(s.cfg.DispatchCost, func() {
			a.Mailbox.Push(m)
			c.afterOp()
		})
	case a.InDRR:
		c.occupy(tax+s.cfg.DispatchCost, func() {
			// Re-check: the actor may have been upgraded back to FCFS
			// while this dispatch was in flight; its mailbox would then
			// never be drained.
			if a.InDRR {
				a.Mailbox.Push(m)
				s.wakeDRR()
			} else {
				s.queue.push(m)
				s.wakeFCFS()
			}
			c.afterOp()
		})
	default:
		if !a.TryAcquire() {
			// Exclusive actor busy on another core: park the message on
			// the actor; the releasing core drains it. (A naive requeue
			// would busy-spin the shared queue.)
			c.occupy(s.cfg.DispatchCost, func() {
				if a.Running() > 0 || a.InDRR || a.State != actor.Stable {
					a.Mailbox.Push(m)
				} else {
					s.queue.push(m)
					s.wakeFCFS()
				}
				c.afterOp()
			})
			return
		}
		c.execFCFS(a, m, tax)
	}
}

// execFCFS runs one message to completion and then drains any messages
// parked on the actor while it was exclusively held.
func (c *core) execFCFS(a *actor.Actor, m actor.Msg, tax sim.Time) {
	s := c.s
	start := s.eng.Now()
	service := tax + s.cfg.ExtraDispatch + s.hooks.Run(a, m)
	c.occupy(service, func() {
		c.Executed++
		s.Completed++
		s.chk.Exec()
		sojourn := s.eng.Now() - m.ArrivedAt
		a.Observe(sojourn, service, m.WireSize)
		s.observeFCFS(m)
		if s.hooks.OnExec != nil {
			s.hooks.OnExec(c.id, FCFS, a, m, start, s.eng.Now())
		}
		// ALG 1 lines 13–16: downgrade on tail breach. The group tail is
		// degenerate below two samples (stats.EWMA.Ready) — without the
		// guard the very first completion, whose "tail" is just its own
		// sojourn, could evict an actor the population never implicated.
		if s.cfg.TailThresh > 0 && s.fcfsStats.Ready() && s.fcfsStats.Tail() > s.cfg.TailThresh {
			s.downgrade()
		}
		if a.State == actor.Stable && !a.InDRR {
			if next, ok := a.Mailbox.Pop(); ok {
				// Keep the lock; run the parked message immediately.
				c.execFCFS(a, next, s.hooks.FwdTax(next.WireSize))
				return
			}
		}
		a.Release()
		c.afterOp()
	})
}

// afterOp runs the time-gated management duties and continues the loop.
func (c *core) afterOp() {
	c.s.maybeMonitor()
	c.step()
}

// observeFCFS records the sojourn time of one FCFS operation.
func (s *Scheduler) observeFCFS(m actor.Msg) {
	s.fcfsStats.Observe((s.eng.Now() - m.ArrivedAt).Micros())
}

// stepDRR implements ALG 2: scan runnable actors round-robin, crediting
// each visited non-empty actor with its quantum and executing one
// request when the deficit covers the actor's estimated latency.
func (c *core) stepDRR() {
	s := c.s
	n := len(s.drrRunnable)
	if n == 0 {
		c.idle = true
		c.endBusy()
		// No runnable actors: this core is only useful as FCFS again;
		// the scheduler collapses DRR cores on upgrade, but an actor may
		// also have been migrated away — collapse here too.
		s.collapseDRRCores()
		return
	}
	// Visit up to n actors; if none can execute, park until new mail.
	for i := 0; i < n; i++ {
		if len(s.drrRunnable) == 0 {
			break
		}
		c.drrPos %= len(s.drrRunnable)
		a := s.drrRunnable[c.drrPos]
		c.drrPos++
		s.chk.DRRVisit(s.chkLabel, c.id, uint32(a.ID))
		if a.Mailbox.Len() == 0 {
			a.Deficit = 0 // ALG 2 lines 15–17
			continue
		}
		if a.State != actor.Stable {
			continue
		}
		// Update deficit with the actor's quantum.
		q := sim.Microsecond
		if s.hooks.Quantum != nil {
			q = s.hooks.Quantum(int(a.SizeStats.Mean()))
		}
		a.Deficit += q
		est := sim.Micros(a.ServiceStats.Mean())
		if a.Deficit <= est {
			// Not enough credit yet; the scan itself costs time.
			c.occupy(s.cfg.ScanCost, c.step)
			return
		}
		if !a.TryAcquire() {
			continue
		}
		m, _ := a.Mailbox.Pop()
		a.Deficit -= est
		start := s.eng.Now()
		service := s.hooks.Run(a, m)
		c.occupy(s.cfg.ScanCost+service, func() {
			a.Release()
			c.Executed++
			s.Completed++
			s.chk.Exec()
			sojourn := s.eng.Now() - m.ArrivedAt
			a.Observe(sojourn, service, m.WireSize)
			if s.hooks.OnExec != nil {
				s.hooks.OnExec(c.id, DRR, a, m, start, s.eng.Now())
			}
			// ALG 2 lines 10–12: upgrade on tail recovery. A truly empty
			// FCFS group (zero samples) has no tail problem and may accept
			// the actor back; but with exactly one sample Tail collapses to
			// the bare mean, which is not evidence of recovery — hold off
			// until the estimate is Ready().
			if !s.cfg.AllDRR && s.cfg.TailThresh > 0 &&
				(s.fcfsStats.Count() == 0 || s.fcfsStats.Ready()) &&
				s.fcfsStats.Tail() < (1-s.cfg.Alpha)*s.cfg.TailThresh {
				s.upgrade()
			}
			c.s.maybeMonitor()
			// ALG 2 lines 18–20: mailbox overflow forces migration.
			if s.hooks.PushToHost != nil && s.cfg.QThresh > 0 &&
				a.Mailbox.Len() > s.cfg.QThresh && !s.migrationInFlight &&
				a.State == actor.Stable && !a.PinNIC {
				s.migrationInFlight = true
				s.lastMigration = s.eng.Now()
				s.PushMigrations++
				a.State = actor.Prepare
				if s.hooks.OnMigrate != nil {
					s.hooks.OnMigrate(a, true)
				}
				s.hooks.PushToHost(a)
			}
			c.step()
		})
		return
	}
	// Every runnable actor had an empty mailbox (or was busy elsewhere).
	c.idle = true
	c.endBusy()
}
