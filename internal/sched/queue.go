package sched

import "repro/internal/actor"

// inQueue abstracts the ingress path feeding FCFS cores. On-path NICs
// have a hardware traffic manager providing a shared queue with
// negligible synchronization cost (I2); off-path NICs get a software
// shuffle layer: per-core queues steered by flow with ZygOS-style work
// stealing when a core runs dry (§3.2.6).
type inQueue interface {
	push(m actor.Msg)
	// pop fetches the next message for the given core.
	pop(coreID int) (actor.Msg, bool)
	len() int
}

// sharedQueue is the hardware traffic manager model: one FIFO, any core.
type sharedQueue struct {
	q []actor.Msg
}

func newSharedQueue() *sharedQueue { return &sharedQueue{} }

func (s *sharedQueue) push(m actor.Msg) { s.q = append(s.q, m) }

func (s *sharedQueue) pop(int) (actor.Msg, bool) {
	if len(s.q) == 0 {
		return actor.Msg{}, false
	}
	m := s.q[0]
	s.q = s.q[1:]
	return m, true
}

func (s *sharedQueue) len() int { return len(s.q) }

// shuffleQueue is the software alternative: a single-producer,
// multi-consumer shuffle layer steering flows to per-core queues, with
// work stealing to repair the load imbalance flow steering causes.
type shuffleQueue struct {
	perCore [][]actor.Msg
	// Steals counts stolen messages, exposing the imbalance repair rate.
	Steals uint64
}

func newShuffleQueue(cores int) *shuffleQueue {
	return &shuffleQueue{perCore: make([][]actor.Msg, cores)}
}

func (s *shuffleQueue) push(m actor.Msg) {
	i := int(m.FlowID % uint64(len(s.perCore)))
	s.perCore[i] = append(s.perCore[i], m)
}

func (s *shuffleQueue) pop(coreID int) (actor.Msg, bool) {
	n := len(s.perCore)
	if coreID >= n {
		coreID = coreID % n
	}
	if q := s.perCore[coreID]; len(q) > 0 {
		m := q[0]
		s.perCore[coreID] = q[1:]
		return m, true
	}
	// Steal from the longest victim queue.
	victim, best := -1, 0
	for i, q := range s.perCore {
		if i != coreID && len(q) > best {
			victim, best = i, len(q)
		}
	}
	if victim == -1 {
		return actor.Msg{}, false
	}
	q := s.perCore[victim]
	m := q[len(q)-1] // steal from the tail, as work stealers do
	s.perCore[victim] = q[:len(q)-1]
	s.Steals++
	return m, true
}

func (s *shuffleQueue) len() int {
	n := 0
	for _, q := range s.perCore {
		n += len(q)
	}
	return n
}

// iokQueue is the second §3.2.6 alternative for NICs without a hardware
// traffic manager: a Shenango-IOKernel-style design where one dedicated
// core drains a central ingress buffer and distributes messages to
// per-worker queues. The dispatcher core is lost to actor execution;
// workers read only their own queue (no stealing — the dispatcher is
// responsible for balance).
type iokQueue struct {
	central []actor.Msg
	perCore [][]actor.Msg
	// Dispatched counts messages routed by the dispatcher core.
	Dispatched uint64
	// rr is the dispatcher's round-robin cursor.
	rr int
}

func newIOKQueue(workers int) *iokQueue {
	return &iokQueue{perCore: make([][]actor.Msg, workers)}
}

func (q *iokQueue) push(m actor.Msg) { q.central = append(q.central, m) }

// pop serves a worker core from its own queue only.
func (q *iokQueue) pop(coreID int) (actor.Msg, bool) {
	if coreID >= len(q.perCore) {
		return actor.Msg{}, false // the dispatcher core never executes
	}
	if buf := q.perCore[coreID]; len(buf) > 0 {
		m := buf[0]
		q.perCore[coreID] = buf[1:]
		return m, true
	}
	return actor.Msg{}, false
}

// dispatchOne moves one message from the central buffer to the least
// loaded worker queue (round-robin with shortest-queue preference).
func (q *iokQueue) dispatchOne() (int, bool) {
	if len(q.central) == 0 {
		return 0, false
	}
	m := q.central[0]
	q.central = q.central[1:]
	best := q.rr % len(q.perCore)
	for i := range q.perCore {
		if len(q.perCore[i]) < len(q.perCore[best]) {
			best = i
		}
	}
	q.rr++
	q.perCore[best] = append(q.perCore[best], m)
	q.Dispatched++
	return best, true
}

func (q *iokQueue) len() int {
	n := len(q.central)
	for _, buf := range q.perCore {
		n += len(buf)
	}
	return n
}
