package sched

import (
	"repro/internal/actor"
	"repro/internal/invariant"
)

// inQueue abstracts the ingress path feeding FCFS cores. On-path NICs
// have a hardware traffic manager providing a shared queue with
// negligible synchronization cost (I2); off-path NICs get a software
// shuffle layer: per-core queues steered by flow with ZygOS-style work
// stealing when a core runs dry (§3.2.6).
type inQueue interface {
	push(m actor.Msg)
	// pop fetches the next message for the given core.
	pop(coreID int) (actor.Msg, bool)
	len() int
	// setAudit attaches the per-flow FIFO audit (nil = disabled).
	setAudit(a *invariant.QueueAudit)
}

// msgFIFO is a head-indexed message queue. Popping advances head instead
// of reslicing (q = q[1:] would pin the consumed prefix of the backing
// array — and every Msg.Data payload in it — for the queue's lifetime);
// consumed slots are zeroed so payloads release immediately, and the
// live region is copied down once the dead prefix dominates, so a
// steady-state queue reuses one backing array with no per-op allocation.
type msgFIFO struct {
	buf  []actor.Msg
	head int
}

// compactAt is the dead-prefix watermark: copy-down only past it, so
// short bursts never pay the copy.
const compactAt = 32

func (f *msgFIFO) push(m actor.Msg) { f.buf = append(f.buf, m) }

func (f *msgFIFO) pop() (actor.Msg, bool) {
	if f.head == len(f.buf) {
		return actor.Msg{}, false
	}
	m := f.buf[f.head]
	f.buf[f.head] = actor.Msg{}
	f.head++
	f.maybeCompact()
	return m, true
}

func (f *msgFIFO) maybeCompact() {
	if f.head == len(f.buf) {
		// Empty: rewind in place, keeping the array for reuse.
		f.buf = f.buf[:0]
		f.head = 0
		return
	}
	if f.head > compactAt && f.head*2 >= len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		for i := n; i < len(f.buf); i++ {
			f.buf[i] = actor.Msg{}
		}
		f.buf = f.buf[:n]
		f.head = 0
	}
}

func (f *msgFIFO) len() int { return len(f.buf) - f.head }

// sharedQueue is the hardware traffic manager model: one FIFO, any core.
type sharedQueue struct {
	q     msgFIFO
	audit *invariant.QueueAudit
}

func newSharedQueue() *sharedQueue { return &sharedQueue{} }

func (s *sharedQueue) push(m actor.Msg) {
	m.AuditSeq = s.audit.Push(m.FlowID)
	s.q.push(m)
}

func (s *sharedQueue) pop(int) (actor.Msg, bool) {
	m, ok := s.q.pop()
	if ok {
		s.audit.Pop(m.FlowID, m.AuditSeq)
	}
	return m, ok
}

func (s *sharedQueue) len() int { return s.q.len() }

func (s *sharedQueue) setAudit(a *invariant.QueueAudit) { s.audit = a }

// shuffleQueue is the software alternative: a single-producer,
// multi-consumer shuffle layer steering flows to per-core queues, with
// work stealing to repair the load imbalance flow steering causes.
type shuffleQueue struct {
	perCore []msgFIFO
	audit   *invariant.QueueAudit
	// Steals counts stolen messages, exposing the imbalance repair rate.
	Steals uint64
}

func newShuffleQueue(cores int) *shuffleQueue {
	if cores < 1 {
		// A degenerate group (dispatcher-less config asking for zero
		// steered queues) still needs one bucket, or push's FlowID
		// modulus divides by zero.
		cores = 1
	}
	return &shuffleQueue{perCore: make([]msgFIFO, cores)}
}

func (s *shuffleQueue) push(m actor.Msg) {
	m.AuditSeq = s.audit.Push(m.FlowID)
	i := int(m.FlowID % uint64(len(s.perCore)))
	s.perCore[i].push(m)
}

func (s *shuffleQueue) pop(coreID int) (actor.Msg, bool) {
	n := len(s.perCore)
	if coreID >= n {
		coreID = coreID % n
	}
	if m, ok := s.perCore[coreID].pop(); ok {
		s.audit.Pop(m.FlowID, m.AuditSeq)
		return m, true
	}
	// Steal from the longest victim queue. Take the victim's *oldest*
	// message: all of a flow's messages sit in one steered queue in
	// arrival order, so stealing the head preserves per-flow FIFO, while
	// a classic tail steal would run a flow's newest request ahead of
	// its queued predecessors (§3.2.6 steers flows precisely to keep
	// them ordered).
	victim, best := -1, 0
	for i := range s.perCore {
		if i != coreID && s.perCore[i].len() > best {
			victim, best = i, s.perCore[i].len()
		}
	}
	if victim == -1 {
		return actor.Msg{}, false
	}
	m, _ := s.perCore[victim].pop()
	s.Steals++
	s.audit.Pop(m.FlowID, m.AuditSeq)
	return m, true
}

func (s *shuffleQueue) len() int {
	n := 0
	for i := range s.perCore {
		n += s.perCore[i].len()
	}
	return n
}

func (s *shuffleQueue) setAudit(a *invariant.QueueAudit) { s.audit = a }

// iokQueue is the second §3.2.6 alternative for NICs without a hardware
// traffic manager: a Shenango-IOKernel-style design where one dedicated
// core drains a central ingress buffer and distributes messages to
// per-worker queues. The dispatcher core is lost to actor execution;
// workers read only their own queue (no stealing — the dispatcher is
// responsible for balance).
type iokQueue struct {
	central msgFIFO
	perCore []msgFIFO
	audit   *invariant.QueueAudit
	// flows pins a flow with queued messages to its worker: routing by
	// queue depth alone would scatter one flow across workers draining
	// at different rates, reordering it. A flow re-routes (rebalances)
	// only once its queued messages have drained.
	flows map[uint64]*iokFlow
	// Dispatched counts messages routed by the dispatcher core.
	Dispatched uint64
}

type iokFlow struct {
	worker  int
	pending int
}

func newIOKQueue(workers int) *iokQueue {
	return &iokQueue{perCore: make([]msgFIFO, workers), flows: map[uint64]*iokFlow{}}
}

func (q *iokQueue) push(m actor.Msg) {
	m.AuditSeq = q.audit.Push(m.FlowID)
	q.central.push(m)
}

// pop serves a worker core from its own queue only.
func (q *iokQueue) pop(coreID int) (actor.Msg, bool) {
	if coreID >= len(q.perCore) {
		return actor.Msg{}, false // the dispatcher core never executes
	}
	m, ok := q.perCore[coreID].pop()
	if !ok {
		return actor.Msg{}, false
	}
	if fl := q.flows[m.FlowID]; fl != nil {
		fl.pending--
		if fl.pending == 0 {
			delete(q.flows, m.FlowID)
		}
	}
	q.audit.Pop(m.FlowID, m.AuditSeq)
	return m, true
}

// dispatchOne moves one message from the central buffer to a worker
// queue: the flow's pinned worker while it has messages queued, else
// the least-loaded worker (lowest index on ties, keeping routing
// deterministic).
func (q *iokQueue) dispatchOne() (int, bool) {
	m, ok := q.central.pop()
	if !ok {
		return 0, false
	}
	fl := q.flows[m.FlowID]
	if fl == nil {
		best := 0
		for i := 1; i < len(q.perCore); i++ {
			if q.perCore[i].len() < q.perCore[best].len() {
				best = i
			}
		}
		fl = &iokFlow{worker: best}
		q.flows[m.FlowID] = fl
	}
	fl.pending++
	q.perCore[fl.worker].push(m)
	q.Dispatched++
	return fl.worker, true
}

func (q *iokQueue) len() int {
	n := q.central.len()
	for i := range q.perCore {
		n += q.perCore[i].len()
	}
	return n
}

func (q *iokQueue) setAudit(a *invariant.QueueAudit) { q.audit = a }
