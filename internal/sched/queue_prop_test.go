package sched

// Property tests over the three ingress-queue implementations and the
// DRR runnable-queue bookkeeping, driven through internal/invariant:
// randomized push/pop/steal/dispatch interleavings must preserve
// per-flow FIFO and lose or duplicate nothing, and removing an actor
// from the runnable queue mid-round must not skip its neighbors.

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/invariant"
	"repro/internal/sim"
)

// drainPop empties q via pops from rotating cores, dispatching for the
// IOKernel variant as needed.
func drainPop(q inQueue, cores int, sink func(actor.Msg)) {
	iok, isIOK := q.(*iokQueue)
	for q.len() > 0 {
		if isIOK {
			for {
				if _, ok := iok.dispatchOne(); !ok {
					break
				}
			}
		}
		progressed := false
		for core := 0; core < cores; core++ {
			if m, ok := q.pop(core); ok {
				sink(m)
				progressed = true
			}
		}
		if !progressed {
			panic("queue reports backlog but no core can pop")
		}
	}
}

func TestInQueueProperties(t *testing.T) {
	const cores = 4
	impls := []struct {
		name string
		mk   func() inQueue
	}{
		{"shared", func() inQueue { return newSharedQueue() }},
		{"shuffle", func() inQueue { return newShuffleQueue(cores) }},
		{"iokernel", func() inQueue { return newIOKQueue(cores - 1) }},
	}
	for _, im := range impls {
		im := im
		t.Run(im.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 8; seed++ {
				rng := sim.NewEngine(seed).Rand()
				chk := invariant.New(nil)
				q := im.mk()
				q.setAudit(chk.NewQueueAudit(im.name))
				iok, isIOK := q.(*iokQueue)

				// Independent ground truth: per-flow FIFO expectation via a
				// payload sequence carried in Msg.Data, separate from the
				// audit's own bookkeeping.
				expect := map[uint64][]byte{}
				var pushes, pops int
				take := func(m actor.Msg) {
					e := expect[m.FlowID]
					if len(e) == 0 {
						t.Fatalf("seed %d: flow %d popped with nothing expected", seed, m.FlowID)
					}
					if m.Data[0] != e[0] {
						t.Fatalf("seed %d: flow %d popped payload %d, want %d (FIFO broken)",
							seed, m.FlowID, m.Data[0], e[0])
					}
					expect[m.FlowID] = e[1:]
					pops++
				}
				flowSeq := map[uint64]byte{}

				for op := 0; op < 4000; op++ {
					switch r := rng.Intn(10); {
					case r < 5: // push
						flow := uint64(rng.Intn(5))
						b := flowSeq[flow]
						flowSeq[flow]++
						expect[flow] = append(expect[flow], b)
						q.push(actor.Msg{FlowID: flow, Data: []byte{b}})
						pushes++
					case isIOK && r < 7: // dispatch central → worker
						iok.dispatchOne()
					default: // pop from a random core (steals on shuffle)
						if m, ok := q.pop(rng.Intn(cores)); ok {
							take(m)
						}
					}
				}
				drainPop(q, cores, take)

				if pops != pushes {
					t.Fatalf("seed %d: pushed %d, popped %d", seed, pushes, pops)
				}
				for flow, e := range expect {
					if len(e) != 0 {
						t.Fatalf("seed %d: flow %d lost %d messages", seed, flow, len(e))
					}
				}
				if err := chk.Err(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if chk.Checks() == 0 {
					t.Fatalf("seed %d: audit never ran", seed)
				}
			}
		})
	}
}

func TestNewShuffleQueueZeroCores(t *testing.T) {
	// A zero-core request (degenerate config) must not build a queue
	// whose push divides by zero.
	q := newShuffleQueue(0)
	q.push(actor.Msg{FlowID: 7})
	if m, ok := q.pop(0); !ok || m.FlowID != 7 {
		t.Fatalf("pop = %v %v", m, ok)
	}
}

func TestMsgFIFOReleasesConsumedSlots(t *testing.T) {
	var f msgFIFO
	f.push(actor.Msg{Data: make([]byte, 1024)})
	f.push(actor.Msg{Data: make([]byte, 1024)})
	f.pop()
	// The consumed slot must not pin its payload: head-advance without
	// zeroing would hold every popped Data alive as long as the queue.
	if f.buf[0].Data != nil {
		t.Fatal("consumed slot still references its payload")
	}
}

func TestMsgFIFOCompactionPreservesOrder(t *testing.T) {
	var f msgFIFO
	for i := 0; i < 100; i++ {
		f.push(actor.Msg{Kind: actor.Kind(i)})
	}
	// Interleave pops and pushes across the compaction watermark.
	next := 100
	for i := 0; i < 300; i++ {
		m, ok := f.pop()
		if !ok || int(m.Kind) != i {
			t.Fatalf("pop %d = kind %d ok=%v", i, m.Kind, ok)
		}
		f.push(actor.Msg{Kind: actor.Kind(next)})
		next++
	}
	if f.len() == 0 {
		t.Fatal("expected residual backlog")
	}
}

func TestMsgFIFOSteadyStateAllocFree(t *testing.T) {
	var f msgFIFO
	// Warm up the backing array.
	for i := 0; i < 64; i++ {
		f.push(actor.Msg{})
	}
	for i := 0; i < 64; i++ {
		f.pop()
	}
	// A steady-state producer/consumer must reuse the array: the reslice
	// idiom (q = q[1:]) this replaced re-allocated on every burst because
	// append could never reuse the consumed prefix.
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 48; i++ {
			f.push(actor.Msg{})
		}
		for i := 0; i < 48; i++ {
			f.pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocs/run = %v, want 0", allocs)
	}
}

// BenchmarkMsgFIFOSteadyState is the alloc-regression benchmark for the
// ingress FIFO: a balanced producer/consumer must report 0 allocs/op.
func BenchmarkMsgFIFOSteadyState(b *testing.B) {
	var f msgFIFO
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.push(actor.Msg{WireSize: 64})
		f.pop()
	}
}

// TestDRRDequeueAdjustsCursors is the white-box regression for the
// cursor-skew bug: removing a runnable actor at an index below a core's
// cursor shifts the later actors down one slot, so an unadjusted cursor
// silently skips the actor that moved into the vacated position.
func TestDRRDequeueAdjustsCursors(t *testing.T) {
	cfg := baseConfig(2)
	cfg.AllDRR = true
	h := newHarness(t, cfg)
	h.addActor(1, sim.Microsecond)
	h.addActor(2, sim.Microsecond)
	a3 := h.addActor(3, sim.Microsecond)
	var dc *core
	for _, c := range h.s.cores {
		if c.mode == DRR {
			dc = c
		}
	}
	if dc == nil {
		t.Fatal("AllDRR spawned no DRR core")
	}
	dc.drrPos = 2 // cursor points at actor 3
	h.s.RemoveActor(1)
	if dc.drrPos != 1 {
		t.Fatalf("drrPos = %d after removal below cursor, want 1", dc.drrPos)
	}
	if h.s.drrRunnable[dc.drrPos] != a3 {
		t.Fatalf("cursor points at actor %d, want 3", h.s.drrRunnable[dc.drrPos].ID)
	}
	// Removal at/above the cursor must leave it alone.
	h.s.RemoveActor(3)
	if dc.drrPos != 1 {
		t.Fatalf("drrPos = %d after removal at cursor, want 1", dc.drrPos)
	}
}

// TestDRRFairnessUnderChurn runs the full scheduler with the invariant
// checker attached while the runnable queue churns mid-round; the
// checker's round tracker flags any actor skipped by a stale cursor.
func TestDRRFairnessUnderChurn(t *testing.T) {
	cfg := baseConfig(3)
	cfg.AllDRR = true
	h := newHarness(t, cfg)
	chk := invariant.New(h.eng)
	h.s.EnableInvariants(chk, "test")
	for id := actor.ID(1); id <= 4; id++ {
		h.addActor(id, 2*sim.Microsecond)
	}
	for i := 0; i < 400; i++ {
		i := i
		h.eng.After(sim.Time(i)*sim.Microsecond, func() {
			h.s.Arrive(actor.Msg{Dst: actor.ID(1 + i%4), FlowID: uint64(i % 4), WireSize: 64})
		})
	}
	// Churn: drop the first runnable actor mid-run (its index sits below
	// any advanced cursor), then a middle one later.
	h.eng.After(151*sim.Microsecond, func() { h.s.RemoveActor(1) })
	h.eng.After(287*sim.Microsecond, func() { h.s.RemoveActor(3) })
	h.eng.Run()
	chk.Finish()
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
	if chk.Checks() == 0 {
		t.Fatal("checker never ran")
	}
}

// TestSchedulerInvariantsCleanAcrossQueues drives each ingress model
// through the real scheduler with checking on; any FIFO break, fairness
// skip, or busy-time overrun fails the test.
func TestSchedulerInvariantsCleanAcrossQueues(t *testing.T) {
	for _, mode := range []string{"shared", "shuffle", "iokernel"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			cfg := baseConfig(4)
			switch mode {
			case "shuffle":
				cfg.Shuffle = true
			case "iokernel":
				cfg.IOKernel = true
			}
			h := newHarness(t, cfg)
			chk := invariant.New(h.eng)
			h.s.EnableInvariants(chk, mode)
			h.addActor(1, 3*sim.Microsecond)
			h.addActor(2, sim.Microsecond)
			for i := 0; i < 300; i++ {
				i := i
				h.eng.After(sim.Time(i)*sim.Microsecond/2, func() {
					h.s.Arrive(actor.Msg{Dst: actor.ID(1 + i%2), FlowID: uint64(i % 8), WireSize: 128})
				})
			}
			h.eng.Run()
			chk.Finish()
			if err := chk.Err(); err != nil {
				t.Fatal(err)
			}
			if chk.Checks() == 0 {
				t.Fatal("checker never ran")
			}
		})
	}
}
